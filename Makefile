# Convenience wrappers around dune; `make check` is the one command CI
# and contributors run before pushing.

.PHONY: all build test bench bench-smoke bench-flow bench-serve bench-journal bench-loadgen bench-shard bench-chaos serve-smoke chaos-smoke chaos-shard-smoke loadgen-smoke journal-smoke shard-smoke flow-smoke fmt check clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Fast parallel sanity run: two figures at toy scale on two domains, with
# the per-figure timing JSON.  The cram test test/cli/bench.t pins the
# flag parsing and JSON schema under `dune runtest` (and thus @check).
bench-smoke:
	dune exec bench/main.exe -- fig3-K ablation-batch \
	  --scale 0.05 --reps 2 --jobs 2 --json bench-smoke.json

# Streaming pipeline pin: the cram test test/cli/serve.t pipes an NDJSON
# arrival stream through `ltc serve`, kills it mid-stream, resumes from
# the journal and diffs the concatenated decisions against the
# uninterrupted run.  Runs under `dune runtest` (and thus @check) too.
serve-smoke:
	dune build @serve-smoke

chaos-smoke:
	dune build @chaos-smoke

chaos-shard-smoke:
	dune build @chaos-shard-smoke

# Load-generation pin: the cram test test/cli/loadgen.t drives `ltc
# loadgen` over shaped virtual-clock traffic and pins the report, the
# flight-record schema and the Chrome-trace shape.  Also in @runtest.
loadgen-smoke:
	dune build @loadgen-smoke

# Journal tooling pin: the cram test test/cli/journal.t serves the same
# stream under both codecs, converts the journals both ways, checks the
# restore fingerprints agree, and runs chaos on a binary group-commit
# journal.  Also in @runtest.
journal-smoke:
	dune build @journal-smoke

# Sharded serving pin: the cram test test/cli/shard.t feeds a clustered
# shard-local stream through `ltc serve --shards K`, diffs it against
# the single-session run, and exercises sharded kill/resume via the
# manifest.  Also in @runtest.
shard-smoke:
	dune build @shard-smoke

# Flow-solver pin: the cram test test/cli/flow.t lists the solver
# registry, checks backend parity of MCF-LTC under --mcf-solver
# (sspa/spfa/incremental) and exercises the --mcf-budget-rounds anytime
# cutoff with its degraded telemetry.  Also in @runtest.
flow-smoke:
	dune build @flow-smoke

# Min-cost-flow hot path: cold per-batch solves vs the reused
# arena/workspace with DAG-layer and warm-started potentials.  Refreshes
# the committed BENCH_flow_batch.json snapshot.
bench-flow:
	dune exec bench/main.exe -- flow-batch-reuse --json BENCH_flow_batch.json

# Streaming service: plain feed vs journaled feed vs checkpoint/restore.
# Refreshes the committed BENCH_serve_replay.json snapshot.
bench-serve:
	dune exec bench/main.exe -- serve-replay --json BENCH_serve_replay.json

# Journal codec comparison: the serve-replay bench times the feed under
# the text codec, the binary codec with group commit, and no journal at
# all, and reports the per-codec rates plus journal_speedup.  Alias of
# bench-serve — both refresh BENCH_serve_replay.json.
bench-journal: bench-serve

# Open-loop SLO measurement: one deterministic Loadgen flash-crowd pass,
# timed.  Refreshes the committed BENCH_loadgen.json snapshot.
bench-loadgen:
	dune exec bench/main.exe -- loadgen --json BENCH_loadgen.json

# Chaos survival cost: one Chaos.run kill/restore pass plus the
# supervised sharded scenario (per-shard scoped faults, online shard
# restores).  Refreshes the committed BENCH_chaos_replay.json snapshot.
bench-chaos:
	dune exec bench/main.exe -- chaos-replay --json BENCH_chaos_replay.json

# Sharded serving: single session vs 1/2/4/8 spatial shards on a
# clustered shard-local stream, with a core-scaled speedup bar.
# Refreshes the committed BENCH_serve_shard.json snapshot.
bench-shard:
	dune exec bench/main.exe -- serve-shard --json BENCH_serve_shard.json

fmt:
	dune build @fmt --auto-promote

check:
	dune build @check

clean:
	dune clean
