# Convenience wrappers around dune; `make check` is the one command CI
# and contributors run before pushing.

.PHONY: all build test bench fmt check clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

fmt:
	dune build @fmt --auto-promote

check:
	dune build @check

clean:
	dune clean
