(* ltc — command-line interface to the LTC library.

   Subcommands:
     ltc run      generate a workload and run one or all algorithms
     ltc sweep    run a registered experiment (same registry as bench/)
     ltc bounds   print the Theorem-2 latency bounds for a configuration
     ltc example  replay the paper's running example (Tables I-II)           *)

open Cmdliner

(* ----------------------------------------------------- shared observability *)

let metrics_format_conv =
  let parse s =
    match Ltc_util.Snapshot.format_of_string s with
    | Ok f -> Ok f
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Ltc_util.Snapshot.pp_format)

(* "SRC:LEVEL" pairs for Log.setup's per-source levels, e.g. "obs:debug". *)
let log_spec_conv =
  let parse s =
    match String.index_opt s ':' with
    | None -> Error (`Msg (Printf.sprintf "expected SRC:LEVEL, got %S" s))
    | Some i ->
      let src = String.sub s 0 i in
      let lvl = String.sub s (i + 1) (String.length s - i - 1) in
      (match Logs.level_of_string lvl with
      | Ok (Some l) -> Ok (src, l)
      | Ok None -> Ok (src, Logs.Error)
      | Error (`Msg m) -> Error (`Msg m))
  in
  let print fmt (src, l) =
    Format.fprintf fmt "%s:%s" src (Logs.level_to_string (Some l))
  in
  Arg.conv (parse, print)

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Enable the metrics registry and span tracing, and write a \
                 snapshot to $(docv) after the run ($(b,-) for stdout).")

let metrics_format_arg =
  Arg.(value & opt metrics_format_conv Ltc_util.Snapshot.Json
       & info [ "metrics-format" ] ~docv:"FMT"
           ~doc:"Snapshot format: $(b,json) (metrics + span tree) or \
                 $(b,prom) (Prometheus text exposition).")

let log_arg =
  Arg.(value & opt_all log_spec_conv []
       & info [ "log" ] ~docv:"SRC:LEVEL"
           ~doc:"Per-source log level, e.g. $(b,obs:debug) or \
                 $(b,flow:info); repeatable.  Overrides $(b,--verbose) for \
                 the named source.")

let setup_observability ~verbose ~log_levels ~metrics =
  Ltc_util.Log.setup
    ?level:(if verbose then Some Logs.Debug else None)
    ~src_levels:log_levels ();
  if metrics <> None then begin
    Ltc_util.Metrics.set_enabled true;
    Ltc_util.Trace.set_enabled true
  end

let write_snapshot ~metrics ~metrics_format =
  Option.iter
    (fun path -> Ltc_util.Snapshot.write ~path metrics_format)
    metrics

(* ------------------------------------------------------------ run command *)

type workload_kind = Synthetic | New_york | Tokyo

let workload_conv =
  let parse = function
    | "synthetic" -> Ok Synthetic
    | "ny" | "new-york" -> Ok New_york
    | "tokyo" -> Ok Tokyo
    | s -> Error (`Msg (Printf.sprintf "unknown workload %S" s))
  in
  let print fmt = function
    | Synthetic -> Format.fprintf fmt "synthetic"
    | New_york -> Format.fprintf fmt "ny"
    | Tokyo -> Format.fprintf fmt "tokyo"
  in
  Arg.conv (parse, print)

let build_instance ~workload ~scale ~tasks ~workers ~capacity ~epsilon ~seed =
  let rng = Ltc_util.Rng.create ~seed in
  match workload with
  | Synthetic ->
    let spec =
      {
        Ltc_workload.Spec.default_synthetic with
        Ltc_workload.Spec.n_tasks =
          Option.value tasks
            ~default:Ltc_workload.Spec.default_synthetic.Ltc_workload.Spec.n_tasks;
        n_workers =
          Option.value workers
            ~default:
              Ltc_workload.Spec.default_synthetic.Ltc_workload.Spec.n_workers;
        capacity =
          Option.value capacity
            ~default:
              Ltc_workload.Spec.default_synthetic.Ltc_workload.Spec.capacity;
        epsilon =
          Option.value epsilon
            ~default:
              Ltc_workload.Spec.default_synthetic.Ltc_workload.Spec.epsilon;
      }
    in
    let spec = Ltc_workload.Spec.scale_synthetic scale spec in
    Ltc_workload.Synthetic.generate rng spec
  | New_york | Tokyo ->
    let base =
      if workload = New_york then Ltc_workload.Spec.new_york
      else Ltc_workload.Spec.tokyo
    in
    let base =
      {
        base with
        Ltc_workload.Spec.c_n_tasks =
          Option.value tasks ~default:base.Ltc_workload.Spec.c_n_tasks;
        c_n_workers =
          Option.value workers ~default:base.Ltc_workload.Spec.c_n_workers;
        c_capacity =
          Option.value capacity ~default:base.Ltc_workload.Spec.c_capacity;
        c_epsilon =
          Option.value epsilon ~default:base.Ltc_workload.Spec.c_epsilon;
      }
    in
    Ltc_workload.City.generate rng (Ltc_workload.Spec.scale_city scale base)

let run_cmd_impl workload scale tasks workers capacity epsilon seed algo
    mcf_solver mcf_budget validate simulate load report save_arrangement
    screen verbose svg log_levels metrics metrics_format =
  setup_observability ~verbose ~log_levels ~metrics;
  (match mcf_solver with
  | Some name
    when not
           (List.mem (String.lowercase_ascii name) (Ltc_flow.Solver.names ()))
    ->
    Format.eprintf "unknown solver %S (try: %s)@." name
      (String.concat ", " (Ltc_flow.Solver.names ()));
    exit 1
  | _ -> ());
  let instance =
    match load with
    | Some path -> Ltc_core.Serialize.load_instance ~path
    | None ->
      build_instance ~workload ~scale ~tasks ~workers ~capacity ~epsilon ~seed
  in
  Format.printf "%a@.@." Ltc_core.Instance.pp instance;
  if screen then begin
    let verdict = Ltc_algo.Feasibility.screen instance in
    Format.printf "feasibility screen: %a@." Ltc_algo.Feasibility.pp_verdict
      verdict;
    (match Ltc_algo.Feasibility.latency_lower_bound instance with
    | Some low -> Format.printf "flow lower bound on latency: %d workers@.@." low
    | None -> Format.printf "flow lower bound: instance cannot complete@.@.")
  end;
  let algorithms =
    match algo with
    | None -> Ltc_algo.Algorithm.paper
    | Some name -> (
      match Ltc_algo.Algorithm.find_opt name with
      | Some a -> [ a ]
      | None ->
        Format.eprintf "unknown algorithm %S (try: %s)@." name
          (String.concat ", " (Ltc_algo.Algorithm.names ()));
        exit 1)
  in
  let algorithms =
    (* --mcf-solver / --mcf-budget-rounds reconfigure only the MCF-LTC
       registry entry; the other algorithms never touch the flow solver. *)
    if mcf_solver = None && mcf_budget = None then algorithms
    else begin
      let config =
        {
          Ltc_algo.Mcf_ltc.default_config with
          Ltc_algo.Mcf_ltc.solver =
            Option.value mcf_solver
              ~default:Ltc_algo.Mcf_ltc.default_config.Ltc_algo.Mcf_ltc.solver;
          budget =
            Option.map (fun r -> Ltc_flow.Mcmf.Rounds r) mcf_budget;
        }
      in
      List.map
        (fun (a : Ltc_algo.Algorithm.t) ->
          if a.Ltc_algo.Algorithm.name = Ltc_algo.Mcf_ltc.name then
            {
              a with
              Ltc_algo.Algorithm.run =
                (fun ~seed:_ i -> Ltc_algo.Mcf_ltc.run ~config i);
            }
          else a)
        algorithms
    end
  in
  List.iter
    (fun (a : Ltc_algo.Algorithm.t) ->
      let outcome, dt = Ltc_util.Timer.time (fun () -> a.run ~seed instance) in
      Format.printf "%a  (%.3f s)@." Ltc_algo.Engine.pp_outcome outcome dt;
      if validate then begin
        match
          Ltc_core.Arrangement.validate instance
            outcome.Ltc_algo.Engine.arrangement
        with
        | Ok () -> Format.printf "  constraints: all satisfied@."
        | Error vs ->
          Format.printf "  constraint violations (%d):@." (List.length vs);
          List.iter
            (Format.printf "    %a@." Ltc_core.Arrangement.pp_violation)
            (List.filteri (fun i _ -> i < 10) vs)
      end;
      if report then
        Format.printf "  --- report ---@.  @[<v>%a@]@."
          Ltc_core.Analysis.pp
          (Ltc_core.Analysis.of_arrangement instance
             outcome.Ltc_algo.Engine.arrangement);
      if simulate then begin
        let report =
          Ltc_core.Truth_sim.run ~trials:1000
            (Ltc_util.Rng.create ~seed:(seed + 1))
            instance outcome.Ltc_algo.Engine.arrangement
        in
        Format.printf
          "  voting simulation: mean error %.4f, max error %.4f (promise <= \
           %.2f)@."
          report.Ltc_core.Truth_sim.mean_error
          report.Ltc_core.Truth_sim.max_error report.Ltc_core.Truth_sim.epsilon
      end;
      (match svg with
      | None -> ()
      | Some path ->
        Ltc_core.Svg.save ~path
          ~arrangement:outcome.Ltc_algo.Engine.arrangement instance;
        Format.printf "  map rendered to %s@." path);
      match save_arrangement with
      | None -> ()
      | Some path ->
        Ltc_core.Serialize.save_arrangement ~path
          outcome.Ltc_algo.Engine.arrangement;
        Format.printf "  arrangement saved to %s@." path)
    algorithms;
  write_snapshot ~metrics ~metrics_format;
  0

let scale_arg =
  Arg.(value & opt float 0.1
       & info [ "scale" ] ~docv:"S"
           ~doc:"Density-preserving workload scale (1.0 = paper size).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let run_cmd =
  let workload =
    Arg.(value & opt workload_conv Synthetic
         & info [ "workload"; "w" ] ~docv:"KIND"
             ~doc:"Workload: $(b,synthetic), $(b,ny) or $(b,tokyo).")
  in
  let tasks =
    Arg.(value & opt (some int) None
         & info [ "tasks"; "T" ] ~docv:"N" ~doc:"Task count (pre-scaling).")
  in
  let workers =
    Arg.(value & opt (some int) None
         & info [ "workers"; "W" ] ~docv:"N" ~doc:"Worker count (pre-scaling).")
  in
  let capacity =
    Arg.(value & opt (some int) None
         & info [ "capacity"; "K" ] ~docv:"K" ~doc:"Per-worker capacity.")
  in
  let epsilon =
    Arg.(value & opt (some float) None
         & info [ "epsilon"; "e" ] ~docv:"EPS" ~doc:"Tolerable error rate.")
  in
  let algo =
    Arg.(value & opt (some string) None
         & info [ "algo"; "a" ] ~docv:"NAME"
             ~doc:"Run a single algorithm (default: all five).")
  in
  let mcf_solver =
    Arg.(value & opt (some string) None
         & info [ "mcf-solver" ] ~docv:"NAME"
             ~doc:"Flow backend for MCF-LTC's per-batch solves: \
                   $(b,sspa) (default), $(b,spfa) or $(b,incremental) \
                   (see $(b,ltc solvers)).  Only affects MCF-LTC.")
  in
  let mcf_budget =
    Arg.(value & opt (some int) None
         & info [ "mcf-budget-rounds" ] ~docv:"N"
             ~doc:"Anytime cutoff for MCF-LTC: at most $(docv) \
                   augmentation rounds per batch solve; exhausted batches \
                   are completed greedily and counted as degraded.")
  in
  let validate =
    Arg.(value & flag
         & info [ "validate" ] ~doc:"Check every Definition-6 constraint.")
  in
  let simulate =
    Arg.(value & flag
         & info [ "simulate" ]
             ~doc:"Monte-Carlo voting simulation of the result quality.")
  in
  let load =
    Arg.(value & opt (some string) None
         & info [ "load" ] ~docv:"FILE"
             ~doc:"Load the instance from a file written by $(b,ltc \
                   generate) instead of generating one.")
  in
  let report =
    Arg.(value & flag
         & info [ "report" ]
             ~doc:"Print load / travel / margin statistics per algorithm.")
  in
  let save_arrangement =
    Arg.(value & opt (some string) None
         & info [ "save-arrangement" ] ~docv:"FILE"
             ~doc:"Write the (last) algorithm's arrangement to $(docv).")
  in
  let screen =
    Arg.(value & flag
         & info [ "screen" ]
             ~doc:"Run the feasibility screen and the flow lower bound \
                   before any algorithm.")
  in
  let verbose =
    Arg.(value & flag
         & info [ "verbose"; "v" ] ~doc:"Debug logging to stderr.")
  in
  let svg =
    Arg.(value & opt (some string) None
         & info [ "svg" ] ~docv:"FILE"
             ~doc:"Render the instance and the (last) algorithm's \
                   arrangement as an SVG map.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"generate a workload and run LTC algorithms on it")
    Term.(
      const run_cmd_impl $ workload $ scale_arg $ tasks $ workers $ capacity
      $ epsilon $ seed_arg $ algo $ mcf_solver $ mcf_budget $ validate
      $ simulate $ load $ report $ save_arrangement $ screen $ verbose $ svg
      $ log_arg $ metrics_arg $ metrics_format_arg)

(* ------------------------------------------------------- generate command *)

let generate_cmd =
  let impl workload scale tasks workers capacity epsilon seed out =
    let instance =
      build_instance ~workload ~scale ~tasks ~workers ~capacity ~epsilon ~seed
    in
    Ltc_core.Serialize.save_instance ~path:out instance;
    Format.printf "%a@.saved to %s@." Ltc_core.Instance.pp instance out;
    0
  in
  let workload =
    Arg.(value & opt workload_conv Synthetic
         & info [ "workload"; "w" ] ~docv:"KIND"
             ~doc:"Workload: $(b,synthetic), $(b,ny) or $(b,tokyo).")
  in
  let tasks =
    Arg.(value & opt (some int) None
         & info [ "tasks"; "T" ] ~docv:"N" ~doc:"Task count (pre-scaling).")
  in
  let workers =
    Arg.(value & opt (some int) None
         & info [ "workers"; "W" ] ~docv:"N" ~doc:"Worker count (pre-scaling).")
  in
  let capacity =
    Arg.(value & opt (some int) None
         & info [ "capacity"; "K" ] ~docv:"K" ~doc:"Per-worker capacity.")
  in
  let epsilon =
    Arg.(value & opt (some float) None
         & info [ "epsilon"; "e" ] ~docv:"EPS" ~doc:"Tolerable error rate.")
  in
  let out =
    Arg.(required & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output instance file.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"generate a workload and save it to a file")
    Term.(
      const impl $ workload $ scale_arg $ tasks $ workers $ capacity
      $ epsilon $ seed_arg $ out)

(* ---------------------------------------------------------- sweep command *)

let sweep_cmd_impl id scale reps seed jobs csv plot log_levels metrics
    metrics_format =
  setup_observability ~verbose:false ~log_levels ~metrics;
  if jobs < 1 then begin
    Format.eprintf "--jobs must be at least 1 (got %d)@." jobs;
    1
  end
  else
  match Ltc_experiments.Figures.find id with
  | None ->
    Format.eprintf "unknown experiment %S; available: %s@." id
      (String.concat ", " (Ltc_experiments.Figures.ids ()));
    1
  | Some e ->
    let scale = Option.value scale ~default:e.Ltc_experiments.Figures.default_scale in
    Format.printf "%s (%s), scale=%g reps=%d seed=%d jobs=%d@.@."
      e.Ltc_experiments.Figures.id e.Ltc_experiments.Figures.panels scale reps
      seed jobs;
    List.iter
      (fun o ->
        Ltc_experiments.Runner.print o;
        if plot then
          Option.iter
            (fun p ->
              print_newline ();
              print_string p)
            (Ltc_experiments.Runner.to_plot o);
        (match csv with
        | None -> ()
        | Some dir ->
          Format.printf "(csv: %s)@."
            (Ltc_experiments.Runner.write_csv ~dir o));
        print_newline ())
      (e.Ltc_experiments.Figures.run ~jobs ~scale ~reps ~seed);
    write_snapshot ~metrics ~metrics_format;
    0

let sweep_cmd =
  let id =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"EXPERIMENT" ~doc:"Experiment id (see bench --list).")
  in
  let scale =
    Arg.(value & opt (some float) None
         & info [ "scale" ] ~docv:"S" ~doc:"Workload scale override.")
  in
  let reps =
    Arg.(value & opt int 3 & info [ "reps" ] ~docv:"N" ~doc:"Repetitions.")
  in
  let jobs =
    Arg.(value & opt int (Ltc_util.Pool.default_jobs ())
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Domains used for the independent experiment cells \
                   (default: the machine's recommended domain count). \
                   Everything except wall-clock runtime tables is identical \
                   for every value.")
  in
  let csv =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"DIR" ~doc:"Also write tables as CSV files.")
  in
  let plot =
    Arg.(value & flag
         & info [ "plot" ] ~doc:"Render an ASCII chart under every table.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"run one registered experiment")
    Term.(
      const sweep_cmd_impl $ id $ scale $ reps $ seed_arg $ jobs $ csv $ plot
      $ log_arg $ metrics_arg $ metrics_format_arg)

(* --------------------------------------------------------- bounds command *)

let bounds_cmd_impl n_tasks epsilon capacity =
  let delta = Ltc_core.Quality.delta ~epsilon in
  let low = Ltc_algo.Bounds.lower ~n_tasks ~delta ~k:capacity in
  let high = Ltc_algo.Bounds.upper ~n_tasks ~delta ~k:capacity in
  Format.printf "|T| = %d, eps = %g, K = %d@." n_tasks epsilon capacity;
  Format.printf "delta (2 ln 1/eps)          = %.4f@." delta;
  Format.printf "Theorem-2 lower bound       = %.1f workers@." low;
  Format.printf "Theorem-2 upper bound       = %.1f workers@." high;
  Format.printf "McNaughton optimum at r=1   = %d workers@."
    (Ltc_algo.Bounds.mcnaughton ~n_tasks ~delta ~k:capacity ~r:1.0);
  Format.printf "McNaughton optimum at r=0.5 = %d workers@."
    (Ltc_algo.Bounds.mcnaughton ~n_tasks ~delta ~k:capacity ~r:0.5);
  0

let bounds_cmd =
  let n_tasks =
    Arg.(value & opt int 3000 & info [ "tasks"; "T" ] ~docv:"N" ~doc:"Tasks.")
  in
  let epsilon =
    Arg.(value & opt float 0.14
         & info [ "epsilon"; "e" ] ~docv:"EPS" ~doc:"Error rate.")
  in
  let capacity =
    Arg.(value & opt int 6 & info [ "capacity"; "K" ] ~docv:"K" ~doc:"Capacity.")
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"print the Theorem-2 latency bounds")
    Term.(const bounds_cmd_impl $ n_tasks $ epsilon $ capacity)

(* ---------------------------------------------------------- infer command *)

(* Answer files: one observation per line, `worker task Y|N`, '#' comments. *)
let read_observations path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let observations = ref [] in
      let line_no = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr line_no;
           let line =
             match String.index_opt line '#' with
             | None -> line
             | Some i -> String.sub line 0 i
           in
           match
             String.split_on_char ' ' (String.trim line)
             |> List.filter (( <> ) "")
           with
           | [] -> ()
           | [ worker; task; answer ] ->
             let answer =
               match String.uppercase_ascii answer with
               | "Y" | "YES" | "+1" -> Ltc_core.Task.Yes
               | "N" | "NO" | "-1" -> Ltc_core.Task.No
               | other ->
                 failwith
                   (Printf.sprintf "line %d: bad answer %S" !line_no other)
             in
             observations :=
               {
                 Ltc_core.Truth_infer.worker = int_of_string worker;
                 task = int_of_string task;
                 answer;
               }
               :: !observations
           | _ -> failwith (Printf.sprintf "line %d: expected 3 fields" !line_no)
         done
       with End_of_file -> ());
      List.rev !observations)

let infer_cmd =
  let impl path two_coin =
    let observations = read_observations path in
    let n_workers =
      List.fold_left
        (fun acc o -> max acc o.Ltc_core.Truth_infer.worker)
        0 observations
    in
    let n_tasks =
      List.fold_left
        (fun acc o -> max acc (o.Ltc_core.Truth_infer.task + 1))
        0 observations
    in
    Format.printf "%d observations, %d workers, %d tasks@.@."
      (List.length observations) n_workers n_tasks;
    if two_coin then begin
      let r =
        Ltc_core.Truth_infer.run_two_coin ~n_workers ~n_tasks observations
      in
      Format.printf
        "two-coin EM: %d iterations%s, prevalence %.3f@.@.worker  alpha           beta   p_w@."
        r.Ltc_core.Truth_infer.tc_iterations
        (if r.Ltc_core.Truth_infer.tc_converged then "" else " (not converged)")
        r.Ltc_core.Truth_infer.prevalence;
      Array.iteri
        (fun w a ->
          Format.printf "w%-5d  %.3f  %.3f  %.3f@." (w + 1) a
            r.Ltc_core.Truth_infer.specificities.(w)
            r.Ltc_core.Truth_infer.tc_accuracies.(w))
        r.Ltc_core.Truth_infer.sensitivities
    end
    else begin
      let r = Ltc_core.Truth_infer.run ~n_workers ~n_tasks observations in
      Format.printf "one-coin EM: %d iterations%s@.@.worker  p_w@."
        r.Ltc_core.Truth_infer.iterations
        (if r.Ltc_core.Truth_infer.converged then "" else " (not converged)");
      Array.iteri
        (fun w p -> Format.printf "w%-5d  %.3f@." (w + 1) p)
        r.Ltc_core.Truth_infer.accuracies
    end;
    0
  in
  let path =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ANSWERS"
             ~doc:"Answer file: one `worker task Y|N` triple per line.")
  in
  let two_coin =
    Arg.(value & flag
         & info [ "two-coin" ]
             ~doc:"Full Dawid-Skene (separate sensitivity/specificity).")
  in
  Cmd.v
    (Cmd.info "infer"
       ~doc:"estimate worker accuracies from raw answers (truth inference)")
    Term.(const impl $ path $ two_coin)

(* -------------------------------------------------------- example command *)

let example_cmd =
  let impl () =
    (* The example binary contains the full walkthrough; point there. *)
    Format.printf
      "The paper's running example lives in examples/facebook_editor.ml:@.@.  \
       dune exec examples/facebook_editor.exe@.@.Quick summary on this \
       build:@.";
    let fixture scoring epsilon =
      let table1 =
        [|
          [| 0.96; 0.98; 0.98; 0.98; 0.96; 0.96; 0.94; 0.94 |];
          [| 0.98; 0.96; 0.96; 0.98; 0.94; 0.96; 0.96; 0.94 |];
          [| 0.96; 0.96; 0.96; 0.98; 0.94; 0.94; 0.96; 0.96 |];
        |]
      in
      let tasks =
        Array.init 3 (fun id ->
            Ltc_core.Task.make ~id
              ~loc:(Ltc_geo.Point.make ~x:(float_of_int id) ~y:0.0)
              ())
      in
      let workers =
        Array.init 8 (fun i ->
            Ltc_core.Worker.make ~index:(i + 1)
              ~loc:(Ltc_geo.Point.make ~x:(float_of_int i) ~y:1.0)
              ~accuracy:table1.(0).(i) ~capacity:2)
      in
      Ltc_core.Instance.create
        ~accuracy:
          (Ltc_core.Accuracy.Custom
             {
               name = "table1";
               f = (fun w t -> table1.(t.Ltc_core.Task.id).(w.Ltc_core.Worker.index - 1));
             })
        ~scoring ~tasks ~workers ~epsilon ()
    in
    let i = fixture Ltc_core.Quality.Hoeffding 0.2 in
    List.iter
      (fun (a : Ltc_algo.Algorithm.t) ->
        let o = a.run ~seed:1 i in
        Format.printf "  %-8s latency = %d@." a.name o.Ltc_algo.Engine.latency)
      Ltc_algo.Algorithm.paper;
    0
  in
  Cmd.v
    (Cmd.info "example" ~doc:"replay the paper's running example")
    Term.(const impl $ const ())

(* ---------------------------------------------------------- serve command *)

(* NDJSON arrivals on stdin, one NDJSON decision per processed arrival on
   stdout (flushed line by line, so the command composes with pipes and
   survives kill -9 mid-stream).  Arrivals at or below the session's
   consumed index are skipped silently, which makes resumption idempotent:
   re-piping the whole stream after `--resume` emits exactly the decisions
   the interrupted run still owed. *)
let serve_stream ~on_bad_input session =
  let consumed_at_start = Ltc_service.Session.consumed session in
  let skipped = ref 0 in
  let bad = ref 0 in
  let m_bad =
    Ltc_util.Metrics.counter
      ~help:"malformed arrival lines dropped by --on-bad-input=skip"
      ~labels:[ ("algo", Ltc_service.Session.algorithm_name session) ]
      "ltc_service_bad_input_total"
  in
  (* Raw input position (blank lines included), so diagnostics point at
     the line an operator would find with sed -n '<N>p'. *)
  let line_no = ref 0 in
  let rec loop () =
    match input_line stdin with
    | exception End_of_file -> ()
    | line ->
      incr line_no;
      if String.trim line = "" then loop ()
      else begin
        match Ltc_service.Ndjson.arrival_exn ~line:!line_no line with
        | exception Ltc_service.Ndjson.Bad_input { line; text; reason }
          when on_bad_input = `Skip ->
          incr bad;
          Ltc_util.Metrics.Counter.incr m_bad;
          Format.eprintf "serve: dropping bad input at line %d: %s: %S@."
            line reason text;
          loop ()
        | w ->
          if w.Ltc_core.Worker.index <= Ltc_service.Session.consumed session
          then begin
            incr skipped;
            loop ()
          end
          else begin
            let d = Ltc_service.Session.feed session w in
            print_string
              (Ltc_service.Ndjson.decision_to_line
                 ~degraded:d.Ltc_service.Session.degraded
                 ~worker:d.Ltc_service.Session.worker
                 ~assigned:d.Ltc_service.Session.assigned
                 ~answered:d.Ltc_service.Session.answered
                 ~completed:d.Ltc_service.Session.completed
                 ~latency:d.Ltc_service.Session.latency ());
            print_newline ();
            flush stdout;
            (* Stop at completion: the batch loop consumes nothing past
               it, so acknowledging further arrivals would only differ
               between an uninterrupted run and a resumed one. *)
            if not d.Ltc_service.Session.completed then loop ()
          end
      end
  in
  loop ();
  Format.eprintf "serve: algorithm=%s consumed=%d (resumed at %d, skipped \
                  %d, bad %d) latency=%d completed=%b@."
    (Ltc_service.Session.algorithm_name session)
    (Ltc_service.Session.consumed session)
    consumed_at_start !skipped !bad
    (Ltc_service.Session.latency session)
    (Ltc_service.Session.completed session)

(* Sharded variant of [serve_stream]: every arrival from index 1 is fed
   (a resumed server skips already-durable arrivals internally and emits
   nothing for them), released decisions are printed in global order, and
   the stream stops once the completing decision has been printed — acks
   released behind it are dropped so the output matches an un-sharded
   serve byte for byte. *)
let serve_stream_sharded ~on_bad_input server =
  let module Srv = Ltc_service.Shard_server in
  let bad = ref 0 in
  let m_bad =
    Ltc_util.Metrics.counter
      ~help:"malformed arrival lines dropped by --on-bad-input=skip"
      ~labels:[ ("algo", Srv.algorithm_name server) ]
      "ltc_service_bad_input_total"
  in
  let line_no = ref 0 in
  let done_ = ref false in
  let emit ds =
    List.iter
      (fun (d : Ltc_service.Session.decision) ->
        if not !done_ then begin
          print_string
            (Ltc_service.Ndjson.decision_to_line
               ~degraded:d.Ltc_service.Session.degraded
               ~worker:d.Ltc_service.Session.worker
               ~assigned:d.Ltc_service.Session.assigned
               ~answered:d.Ltc_service.Session.answered
               ~completed:d.Ltc_service.Session.completed
               ~latency:d.Ltc_service.Session.latency ());
          print_newline ();
          flush stdout;
          if d.Ltc_service.Session.completed then done_ := true
        end)
      ds
  in
  let rec loop () =
    if not !done_ then
      match input_line stdin with
      | exception End_of_file -> ()
      | line ->
        incr line_no;
        if String.trim line = "" then loop ()
        else begin
          match Ltc_service.Ndjson.arrival_exn ~line:!line_no line with
          | exception Ltc_service.Ndjson.Bad_input { line; text; reason }
            when on_bad_input = `Skip ->
            incr bad;
            Ltc_util.Metrics.Counter.incr m_bad;
            Format.eprintf "serve: dropping bad input at line %d: %s: %S@."
              line reason text;
            loop ()
          | w ->
            emit (Srv.feed server w);
            loop ()
        end
  in
  loop ();
  emit (Srv.flush server);
  Format.eprintf
    "serve: algorithm=%s shards=%d consumed=%d (resumed at %d, skipped %d, \
     bad %d) latency=%d completed=%b stalls=%d@."
    (Srv.algorithm_name server) (Srv.shards server) (Srv.consumed server)
    (Srv.resumed_at server) (Srv.replayed server) !bad (Srv.latency server)
    (Srv.completed server) (Srv.stalls server);
  if Srv.supervised server then
    Format.eprintf "serve: supervision: restarts=%d quarantined=%d shed=%d@."
      (Srv.restarts server) (Srv.quarantined server) (Srv.shed server)

let die fmt =
  Format.kasprintf (fun m -> Format.eprintf "%s@." m; exit 1) fmt

let resolve_algorithm name =
  match Ltc_algo.Algorithm.find_opt name with
  | Some a -> a
  | None ->
    die "unknown algorithm %S (try: %s)" name
      (String.concat ", " (Ltc_algo.Algorithm.names ()))

let resolve_deadline deadline_s fallback_name =
  match (deadline_s, fallback_name) with
  | None, None -> None
  | None, Some _ -> die "--fallback only makes sense with --deadline"
  | Some budget_s, name ->
    let fallback = resolve_algorithm (Option.value name ~default:"Nearest") in
    Some { Ltc_service.Session.budget_s; fallback }

(* Journal codec / group-commit flags, shared by serve, loadgen and
   chaos. *)
let journal_format_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("text", Ltc_service.Session.Text);
             ("binary", Ltc_service.Session.Binary);
           ])
        Ltc_service.Session.Text
    & info [ "journal-format" ] ~docv:"text|binary"
        ~doc:
          "On-disk journal codec: $(b,text) (line-oriented, default) or \
           $(b,binary) (length-prefixed CRC32-framed records — the fast \
           path).  Restore auto-detects the codec from the header.")

let group_commit_arg =
  Arg.(
    value & opt int 1
    & info [ "group-commit" ] ~docv:"N"
        ~doc:
          "Coalesce up to $(docv) journal records into one write (and, \
           with --fsync, one fsync).  A crash loses at most the \
           uncommitted group — those arrivals are simply replayed, like \
           a torn tail.")

(* Sharded-serving flags, shared by serve and loadgen. *)
let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"K"
        ~doc:
          "Partition the task universe into $(docv) spatial shards, each \
           served by its own journaled session on its own domain \
           (journals land at PATH.shard0..PATH.shard<K-1> with a \
           manifest at PATH).  Without this flag a single session serves \
           the whole instance.")

let mailbox_arg =
  Arg.(
    value & opt int 64
    & info [ "mailbox" ] ~docv:"N"
        ~doc:
          "Bound each shard's arrival mailbox at $(docv) entries; a full \
           mailbox blocks the router (counted as a stall), never drops.")

(* Shard supervision flags (serve and loadgen).  Supervision switches on
   when either flag departs from "unsupervised" defaults: a restart
   budget, or shed-on-overload. *)
let max_restarts_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-restarts" ] ~docv:"N"
        ~doc:
          "Supervise the shard domains (requires --shards): a shard whose \
           session crashes is restored online from its own journal, up to \
           $(docv) times per shard with exponential backoff; beyond that \
           the shard is quarantined and its arrivals are acknowledged as \
           explicit unassigned decisions.  $(docv) > 0 requires \
           --journal.")

let overload_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("block", Ltc_service.Supervisor.Block);
             ("shed", Ltc_service.Supervisor.Shed);
           ])
        Ltc_service.Supervisor.Block
    & info [ "overload" ] ~docv:"block|shed"
        ~doc:
          "What a full shard mailbox does to an arrival (requires \
           --shards): $(b,block) (default) applies backpressure; \
           $(b,shed) acknowledges it immediately as an unassigned \
           degraded decision (counted in ltc_shard_shed_total) without \
           touching the shard.")

let resolve_supervise ~max_restarts ~overload =
  match (max_restarts, overload) with
  | None, Ltc_service.Supervisor.Block -> None
  | _ ->
    (* --overload shed alone supervises with a zero restart budget
       (quarantine-on-crash), which needs no journal. *)
    Some
      {
        Ltc_service.Supervisor.max_restarts =
          Option.value max_restarts ~default:0;
        backoff = Ltc_service.Supervisor.default.Ltc_service.Supervisor.backoff;
        overload;
      }

let serve_cmd_impl load algo_name seed accept_rate journal checkpoint_every
    resume fsync journal_format group_commit shards mailbox max_restarts
    overload deadline_s fallback_name on_bad_input log_levels metrics
    metrics_format =
  setup_observability ~verbose:false ~log_levels ~metrics;
  let fail fmt = Format.kasprintf (fun m -> Format.eprintf "%s@." m; exit 1) fmt in
  let supervise = resolve_supervise ~max_restarts ~overload in
  if supervise <> None && shards = None && resume = None then
    fail "--max-restarts/--overload supervise shard domains; they need \
          --shards (or --resume of a sharded journal)";
  (match supervise with
  | Some c
    when c.Ltc_service.Supervisor.max_restarts > 0
         && journal = None && resume = None ->
    fail "--max-restarts > 0 restores shards from their journals; add \
          --journal PATH"
  | _ -> ());
  let require_fresh_args () =
    let load =
      match load with
      | Some p -> p
      | None -> fail "serve needs --load FILE (or --resume PATH)"
    in
    let algorithm =
      match algo_name with
      | None -> fail "serve needs --algorithm NAME (or --resume PATH)"
      | Some name -> resolve_algorithm name
    in
    let deadline = resolve_deadline deadline_s fallback_name in
    (Ltc_core.Serialize.load_instance ~path:load, algorithm, deadline)
  in
  let fresh ~journal () =
    let instance, algorithm, deadline = require_fresh_args () in
    Ltc_service.Session.create ?accept_rate ?deadline ?journal
      ~checkpoint_every ~fsync ~format:journal_format ~group_commit
      ~algorithm ~seed instance
  in
  let fresh_sharded ~shards () =
    let instance, algorithm, deadline = require_fresh_args () in
    Ltc_service.Shard_server.create ?accept_rate ?deadline ?journal
      ?supervise ~checkpoint_every ~fsync ~format:journal_format
      ~group_commit ~mailbox ~mode:Ltc_service.Shard_server.Domains ~shards
      ~algorithm ~seed instance
  in
  let finish_sharded server =
    serve_stream_sharded ~on_bad_input server;
    Ltc_service.Shard_server.close server;
    write_snapshot ~metrics ~metrics_format;
    0
  in
  let reject_resume_overrides () =
    if load <> None || algo_name <> None then
      fail "--resume restores the instance and algorithm from the journal; \
            drop --load/--algorithm";
    if deadline_s <> None || fallback_name <> None then
      fail "--resume restores the deadline from the journal; drop \
            --deadline/--fallback"
  in
  match resume with
  | Some _ when shards <> None ->
    fail "--resume restores the shard count from the manifest; drop --shards"
  | Some path when Ltc_service.Shard_server.is_manifest path ->
    (* A sharded journal: the manifest at the base path names the shard
       count, instance and session options. *)
    reject_resume_overrides ();
    finish_sharded
      (Ltc_service.Shard_server.restore ~mailbox ?supervise
         ~mode:Ltc_service.Shard_server.Domains ~fsync ~group_commit ~path ())
  | resume -> (
    match shards with
    | Some shards -> finish_sharded (fresh_sharded ~shards ())
    | None ->
      let session =
        match resume with
        | Some path when Ltc_service.Session.is_empty_journal path ->
          (* The journaled run died before its header became durable, so
             there is nothing to restore — start over into the same
             file. *)
          Format.eprintf
            "serve: journal %s is empty; starting a fresh session@." path;
          fresh ~journal:(Some (Option.value journal ~default:path)) ()
        | Some path ->
          reject_resume_overrides ();
          Ltc_service.Session.restore ?journal ~fsync ~group_commit ~path ()
        | None -> fresh ~journal ()
      in
      serve_stream ~on_bad_input session;
      Ltc_service.Session.close session;
      write_snapshot ~metrics ~metrics_format;
      0)

let serve_cmd =
  let load =
    Arg.(value & opt (some string) None
         & info [ "load" ] ~docv:"FILE"
             ~doc:"Instance file written by $(b,ltc generate); its embedded \
                   workers are ignored — arrivals come from stdin.")
  in
  let algo =
    Arg.(value & opt (some string) None
         & info [ "algorithm"; "a" ] ~docv:"NAME"
             ~doc:"Online algorithm serving the stream (one with a \
                   per-arrival policy: LAF, AAM, Random, LGF-only, \
                   LRF-only, Nearest).")
  in
  let accept_rate =
    Arg.(value & opt (some float) None
         & info [ "accept-rate" ] ~docv:"Q"
             ~doc:"Simulate no-shows: each assignment is honoured with \
                   probability $(docv) in (0, 1].")
  in
  let journal =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"PATH"
             ~doc:"Append every arrival and decision to $(docv), with \
                   periodic snapshots, so the session survives a crash.")
  in
  let checkpoint_every =
    Arg.(value & opt int 256
         & info [ "checkpoint-every" ] ~docv:"N"
             ~doc:"Compact the journal to a snapshot every $(docv) events.")
  in
  let resume =
    Arg.(value & opt (some string) None
         & info [ "resume" ] ~docv:"PATH"
             ~doc:"Restore the session from a journal before reading \
                   stdin; arrivals already journaled are skipped.  An \
                   empty (zero-byte) journal starts a fresh session \
                   instead — supply --load/--algorithm for that case.")
  in
  let fsync =
    Arg.(value & flag
         & info [ "fsync" ]
             ~doc:"fsync the journal after every event, not only at \
                   checkpoints — survives power loss, not just crashes.")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:"Per-arrival solve budget; an arrival whose decision \
                   takes longer is re-decided by the fallback algorithm \
                   and marked \"degraded\" on the wire.")
  in
  let fallback =
    Arg.(value & opt (some string) None
         & info [ "fallback" ] ~docv:"NAME"
             ~doc:"Algorithm that decides deadline-missing arrivals \
                   (default Nearest).  Requires --deadline.")
  in
  let on_bad_input =
    Arg.(value
         & opt (enum [ ("fail", `Fail); ("skip", `Skip) ]) `Fail
         & info [ "on-bad-input" ] ~docv:"fail|skip"
             ~doc:"What a malformed arrival line does: $(b,fail) (default) \
                   stops the stream with a structured error naming the \
                   line; $(b,skip) drops the line, warns on stderr and \
                   bumps ltc_service_bad_input_total.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"serve an NDJSON arrival stream with a resumable session")
    Term.(
      const serve_cmd_impl $ load $ algo $ seed_arg $ accept_rate $ journal
      $ checkpoint_every $ resume $ fsync $ journal_format_arg
      $ group_commit_arg $ shards_arg $ mailbox_arg $ max_restarts_arg
      $ overload_arg $ deadline $ fallback $ on_bad_input $ log_arg
      $ metrics_arg $ metrics_format_arg)

(* -------------------------------------------------------- loadgen command *)

(* Open-loop SLO measurement: drive a session with a shaped arrival
   schedule (Ltc_service.Loadgen), report coordinated-omission-corrected
   latency quantiles, and optionally dump the flight recorder as NDJSON
   and as a Perfetto-loadable Chrome trace.  The default virtual timing
   makes the whole report a pure function of the flags. *)
let loadgen_cmd_impl load algo_name seed accept_rate journal checkpoint_every
    journal_format group_commit shards mailbox max_restarts overload
    deadline_s fallback_name shape_spec rate arrivals service_mean
    service_dist timing poisson slo flight_out flight_capacity trace_out
    log_levels metrics metrics_format =
  setup_observability ~verbose:false ~log_levels ~metrics;
  let supervise = resolve_supervise ~max_restarts ~overload in
  if supervise <> None && shards = None then
    die "loadgen: --max-restarts/--overload supervise shard domains; they \
         need --shards";
  (match supervise with
  | Some c
    when c.Ltc_service.Supervisor.max_restarts > 0 && journal = None ->
    die "loadgen: --max-restarts > 0 restores shards from their journals; \
         add --journal PATH"
  | _ -> ());
  let algorithm = resolve_algorithm algo_name in
  let deadline = resolve_deadline deadline_s fallback_name in
  let instance = Ltc_core.Serialize.load_instance ~path:load in
  let workers = instance.Ltc_core.Instance.workers in
  if Array.length workers = 0 then
    die "loadgen: instance %s embeds no workers to offer" load;
  let shape_spec =
    if not poisson then shape_spec
    else
      shape_spec
      ^ (if String.contains shape_spec ':' then "," else ":")
      ^ "poisson=true"
  in
  let shape =
    match Ltc_workload.Shape.of_string ~rate shape_spec with
    | Ok s -> s
    | Error m -> die "bad --shape %S: %s" shape_spec m
  in
  let config =
    {
      Ltc_service.Loadgen.shape;
      arrivals = Option.value arrivals ~default:(Array.length workers);
      service =
        (match service_dist with
        | `Fixed -> Ltc_service.Loadgen.Fixed service_mean
        | `Exp -> Ltc_service.Loadgen.Exponential service_mean);
      seed;
      timing =
        (match timing with
        | `Virtual -> Ltc_service.Loadgen.Virtual
        | `Wall -> Ltc_service.Loadgen.Wall);
      slo_s = slo;
      recorder_capacity = flight_capacity;
    }
  in
  (* On the first breach the ring is dumped immediately — the black-box
     snapshot of what led up to it — and overwritten at the end of the run
     with the final state. *)
  let on_breach =
    Option.map
      (fun path ~seq recorder ->
        Ltc_service.Flight_recorder.dump recorder ~path;
        Format.eprintf
          "loadgen: SLO breached at arrival %d; flight record in %s@." seq
          path)
      flight_out
  in
  let report =
    match shards with
    | None ->
      let session =
        Ltc_service.Session.create ?accept_rate ?deadline ?journal
          ~checkpoint_every ~format:journal_format ~group_commit ~algorithm
          ~seed instance
      in
      let report =
        Ltc_service.Loadgen.run ?on_breach ~session ~workers config
      in
      Ltc_service.Session.close session;
      Format.printf "%a" Ltc_service.Loadgen.pp_report report;
      report
    | Some shards ->
      (* Virtual timing drives the process-global fault clock, so the
         shard sessions must run inline; wall timing gets the real
         domain-per-shard runtime. *)
      let mode =
        match config.Ltc_service.Loadgen.timing with
        | Ltc_service.Loadgen.Virtual -> Ltc_service.Shard_server.Inline
        | Ltc_service.Loadgen.Wall -> Ltc_service.Shard_server.Domains
      in
      let server =
        Ltc_service.Shard_server.create ?accept_rate ?deadline ?journal
          ?supervise ~checkpoint_every ~format:journal_format ~group_commit
          ~mailbox ~mode ~shards ~algorithm ~seed instance
      in
      let sharded =
        Ltc_service.Loadgen.run_sharded ?on_breach ~server ~workers config
      in
      Ltc_service.Shard_server.close server;
      Format.printf "%a" Ltc_service.Loadgen.pp_sharded_report sharded;
      sharded.Ltc_service.Loadgen.sr_report
  in
  Option.iter
    (fun path ->
      Ltc_service.Flight_recorder.dump report.Ltc_service.Loadgen.r_recorder
        ~path;
      Format.printf "flight record: %s@." path)
    flight_out;
  Option.iter
    (fun path ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc
            (Ltc_service.Flight_recorder.to_chrome_json
               report.Ltc_service.Loadgen.r_recorder));
      Format.printf "chrome trace: %s@." path)
    trace_out;
  write_snapshot ~metrics ~metrics_format;
  0

let loadgen_cmd =
  let load =
    Arg.(required & opt (some string) None
         & info [ "load" ] ~docv:"FILE"
             ~doc:"Instance file written by $(b,ltc generate); its embedded \
                   workers are the arrival stream, in index order.")
  in
  let algo =
    Arg.(required & opt (some string) None
         & info [ "algorithm"; "a" ] ~docv:"NAME"
             ~doc:"Online algorithm under load.")
  in
  let accept_rate =
    Arg.(value & opt (some float) None
         & info [ "accept-rate" ] ~docv:"Q"
             ~doc:"Simulate no-shows with probability 1-$(docv), exactly as \
                   $(b,ltc serve).")
  in
  let journal =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"PATH"
             ~doc:"Journal the session to $(docv) while under load, so the \
                   report includes journal I/O and per-arrival journal \
                   bytes.")
  in
  let checkpoint_every =
    Arg.(value & opt int 256
         & info [ "checkpoint-every" ] ~docv:"N"
             ~doc:"Compact the journal every $(docv) events.")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:"Per-arrival solve budget; decisions whose (injected) \
                   service time overruns it degrade to the fallback.")
  in
  let fallback =
    Arg.(value & opt (some string) None
         & info [ "fallback" ] ~docv:"NAME"
             ~doc:"Deadline fallback algorithm (default Nearest).  \
                   Requires --deadline.")
  in
  let shape =
    Arg.(value & opt string "constant"
         & info [ "shape" ] ~docv:"SPEC"
             ~doc:"Arrival shape: $(b,constant), \
                   $(b,rampup)[:from=R,over=S], \
                   $(b,diurnal)[:amp=A,period=S], \
                   $(b,burst)[:factor=F,at=S,dur=S] or \
                   $(b,pausing)[:on=S,off=S]; any shape also accepts \
                   $(b,poisson=true).")
  in
  let rate =
    Arg.(value & opt float 1000.0
         & info [ "rate" ] ~docv:"R"
             ~doc:"Base offered rate in arrivals per second.")
  in
  let arrivals =
    Arg.(value & opt (some int) None
         & info [ "arrivals"; "n" ] ~docv:"N"
             ~doc:"Arrivals to offer (default: all embedded workers).")
  in
  let service_mean =
    Arg.(value & opt float 1e-4
         & info [ "service-mean" ] ~docv:"S"
             ~doc:"Synthetic per-decision service time in seconds \
                   (virtual timing only).")
  in
  let service_dist =
    Arg.(value
         & opt (enum [ ("fixed", `Fixed); ("exp", `Exp) ]) `Fixed
         & info [ "service-dist" ] ~docv:"fixed|exp"
             ~doc:"Service-time distribution: $(b,fixed) (deterministic) \
                   or $(b,exp) (i.i.d. exponential with the given mean).")
  in
  let timing =
    Arg.(value
         & opt (enum [ ("virtual", `Virtual); ("wall", `Wall) ]) `Virtual
         & info [ "timing" ] ~docv:"virtual|wall"
             ~doc:"$(b,virtual) (default) runs on the deterministic fault \
                   clock with injected service times; $(b,wall) paces \
                   real time and measures actual policy latency \
                   (non-deterministic).")
  in
  let poisson =
    Arg.(value & flag
         & info [ "poisson" ]
             ~doc:"Jitter the schedule into a non-homogeneous Poisson \
                   process (same as $(b,poisson=true) in --shape).")
  in
  let slo =
    Arg.(value & opt (some float) None
         & info [ "slo" ] ~docv:"SECONDS"
             ~doc:"Corrected-latency SLO; breaches are counted and the \
                   first one dumps the flight recorder (with \
                   --flight-out).")
  in
  let flight_out =
    Arg.(value & opt (some string) None
         & info [ "flight-out" ] ~docv:"FILE"
             ~doc:"Dump the flight-recorder ring as NDJSON to $(docv) \
                   (immediately on the first SLO breach, and at the end \
                   of the run).")
  in
  let flight_capacity =
    Arg.(value & opt int 4096
         & info [ "flight-capacity" ] ~docv:"N"
             ~doc:"Flight-recorder ring capacity (oldest records are \
                   overwritten beyond it).")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write the run as Chrome trace-event JSON (one slice \
                   per arrival), loadable in chrome://tracing or \
                   Perfetto.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"drive a session open-loop with shaped traffic and report SLO \
             latency quantiles")
    Term.(
      const loadgen_cmd_impl $ load $ algo $ seed_arg $ accept_rate $ journal
      $ checkpoint_every $ journal_format_arg $ group_commit_arg $ shards_arg
      $ mailbox_arg $ max_restarts_arg $ overload_arg $ deadline $ fallback
      $ shape $ rate $ arrivals
      $ service_mean $ service_dist $ timing $ poisson $ slo $ flight_out
      $ flight_capacity $ trace_out $ log_arg $ metrics_arg
      $ metrics_format_arg)

(* ---------------------------------------------------------- chaos command *)

(* Replay a workload under a seeded fault plan, killing and restoring the
   session at every injected crash, and diff the surviving decision stream
   against the fault-free baseline (Ltc_service.Chaos).  Exit 0 iff the
   streams are identical. *)
let chaos_cmd =
  let impl load algo_name seed accept_rate fault_seed crashes io_errors
      torn_writes delays horizon checkpoint_every journal journal_format
      group_commit shards max_restarts deadline_s fallback_name log_levels =
    setup_observability ~verbose:false ~log_levels ~metrics:None;
    let algorithm = resolve_algorithm algo_name in
    let deadline = resolve_deadline deadline_s fallback_name in
    let instance = Ltc_core.Serialize.load_instance ~path:load in
    match shards with
    | Some shards ->
      (* Sharded chaos: a supervised [`Domains] server under per-shard
         scoped faults, diffed against the inline unsupervised baseline.
         Runs deadline-free — see Chaos.run_sharded. *)
      if deadline_s <> None || fallback_name <> None then
        die "chaos --shards runs deadline-free; drop --deadline/--fallback";
      let plan =
        Ltc_service.Chaos.sharded_plan ~crashes ~io_errors ~torn_writes
          ~delays ~horizon ~seed:fault_seed ~shards ()
      in
      let supervise =
        Option.map
          (fun n ->
            { Ltc_service.Supervisor.default with
              Ltc_service.Supervisor.max_restarts = n })
          max_restarts
      in
      let journal_path, cleanup_base =
        match journal with
        | Some p -> (p, fun () -> ())
        | None ->
          let p = Filename.temp_file "ltc-chaos" ".journal" in
          (p, fun () -> try Sys.remove p with Sys_error _ -> ())
      in
      let cleanup () =
        cleanup_base ();
        if journal = None then
          for k = 0 to shards - 1 do
            try
              Sys.remove
                (Ltc_service.Shard_server.shard_journal_path
                   ~base:journal_path ~shard:k)
            with Sys_error _ -> ()
          done
      in
      let r =
        Fun.protect ~finally:cleanup (fun () ->
            Ltc_service.Chaos.run_sharded ?accept_rate ?supervise
              ~checkpoint_every ~format:journal_format ~group_commit ~plan
              ~shards ~algorithm ~seed ~journal:journal_path instance)
      in
      let open Ltc_service.Chaos in
      Format.printf
        "chaos: algorithm=%s shards=%d arrivals=%d seed=%d fault-seed=%d@."
        algorithm.Ltc_algo.Algorithm.name r.s_shards r.s_arrivals seed
        fault_seed;
      Format.printf
        "chaos: plan: %d crashes, %d io-errors, %d torn-writes, %d delays \
         per shard (horizon %d)@."
        crashes io_errors torn_writes delays horizon;
      Format.printf
        "chaos: fired: crashes=%d io-errors=%d torn-writes=%d delays=%d@."
        r.s_stats.Ltc_util.Fault.crashes r.s_stats.Ltc_util.Fault.io_errors
        r.s_stats.Ltc_util.Fault.torn_writes
        r.s_stats.Ltc_util.Fault.delays;
      Format.printf
        "chaos: restarts=%d (%s) quarantined=%d shed=%d degraded=%d@."
        r.s_restarts
        (String.concat ","
           (Array.to_list (Array.map string_of_int r.s_shard_restarts)))
        r.s_quarantined r.s_shed r.s_degraded;
      if r.s_identical then begin
        Format.printf
          "chaos: merged decision stream identical to fault-free baseline@.";
        0
      end
      else begin
        Format.printf "chaos: DIVERGED: %s@."
          (Option.value r.s_divergence ~default:"(no detail)");
        1
      end
    | None ->
    if max_restarts <> None then
      die "chaos: --max-restarts only applies to --shards runs";
    let plan =
      Ltc_util.Fault.plan ~crashes ~io_errors ~torn_writes ~delays ~horizon
        ~seed:fault_seed
        ~sites:
          [
            "journal.header"; "journal.append.fsync";
            "journal.checkpoint.fsync"; "journal.checkpoint.rename";
            "journal.checkpoint.dir";
          ]
        ~write_sites:[ "journal.append"; "journal.checkpoint.write" ]
        ~delay_sites:[ "session.decide" ] ()
    in
    let journal_path, cleanup =
      match journal with
      | Some p -> (p, fun () -> ())
      | None ->
        let p = Filename.temp_file "ltc-chaos" ".journal" in
        (p, fun () -> try Sys.remove p with Sys_error _ -> ())
    in
    let report =
      Fun.protect ~finally:cleanup (fun () ->
          Ltc_service.Chaos.run ?accept_rate ?deadline ~checkpoint_every
            ~format:journal_format ~group_commit ~plan ~algorithm ~seed
            ~journal:journal_path instance)
    in
    let open Ltc_service.Chaos in
    Format.printf "chaos: algorithm=%s arrivals=%d seed=%d fault-seed=%d@."
      algorithm.Ltc_algo.Algorithm.name report.arrivals seed fault_seed;
    Format.printf
      "chaos: plan: %d crashes, %d io-errors, %d torn-writes, %d delays \
       (horizon %d)@."
      crashes io_errors torn_writes delays horizon;
    Format.printf
      "chaos: fired: crashes=%d io-errors=%d torn-writes=%d delays=%d@."
      report.stats.Ltc_util.Fault.crashes
      report.stats.Ltc_util.Fault.io_errors
      report.stats.Ltc_util.Fault.torn_writes
      report.stats.Ltc_util.Fault.delays;
    Format.printf "chaos: kills=%d restores=%d degraded=%d@." report.crashes
      report.restores report.degraded;
    if report.identical then begin
      Format.printf "chaos: decision stream identical to fault-free \
                     baseline@.";
      0
    end
    else begin
      Format.printf "chaos: DIVERGED: %s@."
        (Option.value report.divergence ~default:"(no detail)");
      1
    end
  in
  let load =
    Arg.(required & opt (some string) None
         & info [ "load" ] ~docv:"FILE"
             ~doc:"Instance file written by $(b,ltc generate); its \
                   embedded workers are the arrival stream.")
  in
  let algo =
    Arg.(required & opt (some string) None
         & info [ "algorithm"; "a" ] ~docv:"NAME"
             ~doc:"Online algorithm under test.")
  in
  let accept_rate =
    Arg.(value & opt (some float) None
         & info [ "accept-rate" ] ~docv:"Q"
             ~doc:"Simulate no-shows with probability 1-$(docv), exactly \
                   as $(b,ltc serve).")
  in
  let fault_seed =
    Arg.(value & opt int 11
         & info [ "fault-seed" ] ~docv:"N"
             ~doc:"Seed for the fault plan (independent of the session \
                   seed).")
  in
  let n_of name ~default doc =
    Arg.(value & opt int default & info [ name ] ~docv:"N" ~doc)
  in
  let crashes = n_of "crashes" ~default:3 "Scripted crash faults." in
  let io_errors =
    n_of "io-errors" ~default:2 "Scripted transient I/O faults."
  in
  let torn_writes =
    n_of "torn-writes" ~default:2 "Scripted torn (partial) writes."
  in
  let delays = n_of "delays" ~default:2 "Scripted solver slowdowns." in
  let horizon =
    n_of "horizon" ~default:30
      "Faults fire within the first N visits of their site."
  in
  let checkpoint_every =
    n_of "checkpoint-every" ~default:8
      "Compact the journal every N events (small values exercise the \
       compaction fault sites)."
  in
  let journal =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"PATH"
             ~doc:"Journal path for the chaos run (default: a temp file, \
                   deleted afterwards).")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:"Enable deadline degradation during the runs.  Injected \
                   delays then change decisions (in both runs alike), and \
                   byte-identity is only guaranteed while no crash forces \
                   an arrival to be re-decided.")
  in
  let fallback =
    Arg.(value & opt (some string) None
         & info [ "fallback" ] ~docv:"NAME"
             ~doc:"Deadline fallback algorithm (default Nearest).")
  in
  let shards =
    Arg.(value & opt (some int) None
         & info [ "shards" ] ~docv:"K"
             ~doc:"Run the sharded variant: a supervised domain-per-shard \
                   server under per-shard scoped fault plans (the fault \
                   counts apply to $(b,each) shard), killing and \
                   restoring individual shards online, diffed against an \
                   unsupervised inline baseline.")
  in
  let max_restarts =
    Arg.(value & opt (some int) None
         & info [ "max-restarts" ] ~docv:"N"
             ~doc:"Per-shard restart budget for --shards runs (default: \
                   large enough that the plan can never quarantine).  \
                   Small values exercise quarantine, which diverges by \
                   design.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"replay a workload under scripted faults and verify the \
             decision stream survives kill/restore byte-identically")
    Term.(
      const impl $ load $ algo $ seed_arg $ accept_rate $ fault_seed
      $ crashes $ io_errors $ torn_writes $ delays $ horizon
      $ checkpoint_every $ journal $ journal_format_arg $ group_commit_arg
      $ shards $ max_restarts $ deadline $ fallback $ log_arg)

(* -------------------------------------------------------- journal command *)

(* Offline journal tooling (Ltc_service.Session.Journal): inspect a
   journal's header and record structure without building a session, or
   transcode it between the text and binary codecs. *)
let journal_cmd =
  let path_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PATH" ~doc:"Journal file to read.")
  in
  (* A missing or directory path would otherwise surface as a raw
     Sys_error; name the problem in one structured line instead. *)
  let require_journal_file ~cmd path =
    if not (Sys.file_exists path) then
      die "journal %s: %s: no such file" cmd path;
    if Sys.is_directory path then
      die "journal %s: %s is a directory, not a journal file" cmd path
  in
  let inspect_cmd =
    (* One shard journal, summarized on a single line: codec, record
       counts, durable prefix and torn-tail status. *)
    let inspect_shard ~base k =
      let module J = Ltc_service.Session.Journal in
      let path =
        Ltc_service.Shard_server.shard_journal_path ~base ~shard:k
      in
      if not (Sys.file_exists path) then
        Format.printf "shard %d: %s: missing (fresh on restore)@." k path
      else if Ltc_service.Session.is_empty_journal path then
        Format.printf "shard %d: %s: empty (fresh on restore)@." k path
      else
        let info = J.inspect ~path in
        Format.printf
          "shard %d: %s: codec=%s snapshots=%d events=%d consumed=%d \
           bytes=%d %s@."
          k path
          (Ltc_service.Session.codec_name info.J.codec)
          info.J.snapshots info.J.events info.J.consumed info.J.file_bytes
          (if info.J.torn_bytes = 0 then "clean"
           else Printf.sprintf "torn-tail=%dB" info.J.torn_bytes)
    in
    let inspect_manifest path =
      let module S = Ltc_service.Shard_server in
      let mi = S.manifest_info ~path in
      Format.printf "manifest: %s@." path;
      Format.printf "shards: %d@." mi.S.mi_shards;
      Format.printf "mailbox: %d@." mi.S.mi_mailbox;
      Format.printf "algorithm: %s@." mi.S.mi_algorithm;
      Format.printf "seed: %d@." mi.S.mi_seed;
      (match mi.S.mi_accept_rate with
      | None -> Format.printf "accept_rate: none@."
      | Some q -> Format.printf "accept_rate: %g@." q);
      Format.printf "checkpoint_every: %d@." mi.S.mi_checkpoint_every;
      Format.printf "fsync: %b@." mi.S.mi_fsync;
      Format.printf "codec: %s@."
        (Ltc_service.Session.codec_name mi.S.mi_format);
      Format.printf "group_commit: %d@." mi.S.mi_group_commit;
      (match mi.S.mi_deadline with
      | None -> Format.printf "deadline: none@."
      | Some (budget_s, fallback) ->
        Format.printf "deadline: %g %s@." budget_s fallback);
      Format.printf "tasks: %d@." mi.S.mi_tasks;
      for k = 0 to mi.S.mi_shards - 1 do
        inspect_shard ~base:path k
      done;
      0
    in
    let impl path fingerprint =
      require_journal_file ~cmd:"inspect" path;
      if Ltc_service.Shard_server.is_manifest path then begin
        if fingerprint then
          die "journal inspect: --fingerprint applies to plain session \
               journals, not shard manifests";
        inspect_manifest path
      end
      else begin
      let module J = Ltc_service.Session.Journal in
      let info = J.inspect ~path in
      Format.printf "journal: %s@." path;
      Format.printf "version: v%d@." info.J.version;
      Format.printf "codec: %s@."
        (Ltc_service.Session.codec_name info.J.codec);
      Format.printf "algorithm: %s@." info.J.algorithm;
      Format.printf "seed: %d@." info.J.seed;
      (match info.J.accept_rate with
      | None -> Format.printf "accept_rate: none@."
      | Some q -> Format.printf "accept_rate: %g@." q);
      Format.printf "checkpoint_every: %d@." info.J.checkpoint_every;
      (match info.J.deadline with
      | None -> Format.printf "deadline: none@."
      | Some (budget_s, fallback) ->
        Format.printf "deadline: %g %s@." budget_s fallback);
      Format.printf "tasks: %d@." info.J.tasks;
      Format.printf "file_bytes: %d@." info.J.file_bytes;
      Format.printf "torn_bytes: %d@." info.J.torn_bytes;
      Format.printf "snapshots: %d@." info.J.snapshots;
      Format.printf "events: %d@." info.J.events;
      Format.printf "consumed: %d@." info.J.consumed;
      (match info.J.snapshot_offsets with
      | [] -> Format.printf "snapshot_offsets: none@."
      | offs ->
        Format.printf "snapshot_offsets:%s@."
          (String.concat ""
             (List.map (Printf.sprintf " %d") offs)));
      if fingerprint then begin
        (* Restore through a throwaway redirect journal so the inspected
           file is never written to. *)
        let tmp = Filename.temp_file "ltc-journal" ".inspect" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
          (fun () ->
            let s = Ltc_service.Session.restore ~journal:tmp ~path () in
            let policy, noshow = Ltc_service.Session.rng_states s in
            Format.printf
              "fingerprint: consumed=%d latency=%d rng=%Ld,%Ld \
               completed=%b@."
              (Ltc_service.Session.consumed s)
              (Ltc_service.Session.latency s)
              policy noshow
              (Ltc_service.Session.completed s);
            Ltc_service.Session.close s)
      end;
      0
      end
    in
    let fingerprint =
      Arg.(
        value & flag
        & info [ "fingerprint" ]
            ~doc:
              "Additionally restore the session (into a throwaway \
               redirect journal — $(docv) itself is not modified) and \
               print its determinism fingerprint: consumed, latency and \
               both RNG states.")
    in
    Cmd.v
      (Cmd.info "inspect"
         ~doc:"print a journal's header, codec, record counts and \
               checkpoint positions; on a shard manifest, enumerate and \
               summarize every shard journal")
      Term.(const impl $ path_pos $ fingerprint)
  in
  let convert_cmd =
    let impl src dst format =
      if src = dst then die "journal convert: SRC and DST must differ";
      require_journal_file ~cmd:"convert" src;
      let module J = Ltc_service.Session.Journal in
      J.convert ~src ~dst format;
      let info = J.inspect ~path:dst in
      Format.printf "converted %s -> %s (%s, %d bytes, %d snapshots, %d \
                     events)@."
        src dst
        (Ltc_service.Session.codec_name info.J.codec)
        info.J.file_bytes info.J.snapshots info.J.events;
      0
    in
    let src =
      Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"SRC" ~doc:"Journal file to convert.")
    in
    let dst =
      Arg.(
        required
        & pos 1 (some string) None
        & info [] ~docv:"DST"
            ~doc:"Output path (truncated if it exists).")
    in
    let to_format =
      Arg.(
        required
        & opt
            (some
               (enum
                  [
                    ("text", Ltc_service.Session.Text);
                    ("binary", Ltc_service.Session.Binary);
                  ]))
            None
        & info [ "to" ] ~docv:"text|binary" ~doc:"Target codec.")
    in
    Cmd.v
      (Cmd.info "convert"
         ~doc:"re-encode a journal between the text and binary codecs, \
               record for record")
      Term.(const impl $ src $ dst $ to_format)
  in
  Cmd.group
    (Cmd.info "journal"
       ~doc:"inspect and convert session journal files offline")
    [ inspect_cmd; convert_cmd ]

(* ------------------------------------------------------- solvers command *)

let solvers_cmd =
  let impl () =
    Format.printf "%-12s %-12s %-11s %s@." "NAME" "INCREMENTAL"
      "POTENTIALS" "ANYTIME";
    List.iter
      (fun (c : Ltc_flow.Solver.capabilities) ->
        Format.printf "%-12s %-12b %-11b %b@." c.Ltc_flow.Solver.solver_name
          c.Ltc_flow.Solver.incremental c.Ltc_flow.Solver.potentials
          c.Ltc_flow.Solver.anytime)
      (Ltc_flow.Solver.all_capabilities ());
    0
  in
  Cmd.v
    (Cmd.info "solvers"
       ~doc:"list the registered min-cost-flow solver backends and their \
             capabilities (select one with $(b,ltc run --mcf-solver))")
    Term.(const impl $ const ())

let main =
  let doc = "latency-oriented task completion via spatial crowdsourcing" in
  Cmd.group
    (Cmd.info "ltc" ~doc ~version:"1.0.0")
    [
      run_cmd; generate_cmd; sweep_cmd; bounds_cmd; infer_cmd; example_cmd;
      serve_cmd; loadgen_cmd; chaos_cmd; journal_cmd; solvers_cmd;
    ]

(* Turn expected failures (missing files, corrupt inputs, bad parameters)
   into clean error messages instead of backtraces. *)
let () =
  match Cmd.eval' ~catch:false main with
  | code -> exit code
  | exception Sys_error message ->
    Format.eprintf "ltc: %s@." message;
    exit 2
  | exception Ltc_core.Serialize.Parse_error { line; message } ->
    Format.eprintf "ltc: parse error at line %d: %s@." line message;
    exit 2
  | exception Ltc_service.Ndjson.Malformed message ->
    Format.eprintf "ltc: bad NDJSON event: %s@." message;
    exit 2
  | exception Ltc_service.Ndjson.Bad_input { line; text; reason } ->
    Format.eprintf "ltc: bad input at line %d: %s: %S@." line reason text;
    exit 2
  | exception Ltc_service.Session.Corrupt_journal { path; message } ->
    Format.eprintf "ltc: corrupt journal %s: %s@." path message;
    exit 2
  | exception Invalid_argument message ->
    Format.eprintf "ltc: invalid argument: %s@." message;
    exit 2
  | exception Failure message ->
    Format.eprintf "ltc: %s@." message;
    exit 2
