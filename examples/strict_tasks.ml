(* Platform-operator scenario: mixed-criticality questions.

   Definition 1 allows each task its own tolerable error rate; the paper's
   evaluation uses one platform-wide epsilon.  Here a platform runs mostly
   routine questions (eps = 0.2) plus a few safety-critical ones (eps =
   0.02, e.g. "is this pharmacy still open?"), screens the instance for
   feasibility before dispatching, runs AAM, and audits the outcome.

     dune exec examples/strict_tasks.exe *)

open Ltc_core

let () =
  let rng = Ltc_util.Rng.create ~seed:7 in
  let side = 100.0 in
  let random_point () =
    Ltc_geo.Point.make
      ~x:(Ltc_util.Rng.float rng side)
      ~y:(Ltc_util.Rng.float rng side)
  in
  (* 20 routine tasks; every fifth is safety-critical. *)
  let tasks =
    Array.init 20 (fun id ->
        if id mod 5 = 0 then
          Task.make ~epsilon:0.02 ~id ~loc:(random_point ()) ()
        else Task.make ~id ~loc:(random_point ()) ())
  in
  let accuracy_dist = Ltc_util.Distribution.accuracy_normal ~mu:0.86 in
  let workers =
    Array.init 4000 (fun i ->
        Worker.make ~index:(i + 1) ~loc:(random_point ())
          ~accuracy:(Ltc_util.Distribution.sample rng accuracy_dist)
          ~capacity:4)
  in
  let instance = Instance.create ~tasks ~workers ~epsilon:0.2 () in
  Format.printf "%a@." Instance.pp instance;
  Format.printf "routine threshold  delta(0.20) = %.2f@." (Instance.threshold_of instance 1);
  Format.printf "critical threshold delta(0.02) = %.2f@.@." (Instance.threshold_of instance 0);

  (* 1. Screen before dispatching anything. *)
  let verdict = Ltc_algo.Feasibility.screen instance in
  Format.printf "feasibility screen: %a@." Ltc_algo.Feasibility.pp_verdict verdict;
  (match Ltc_algo.Feasibility.latency_lower_bound instance with
  | Some low -> Format.printf "no algorithm can finish before worker %d@.@." low
  | None -> Format.printf "instance cannot complete at all@.@.");

  if verdict.Ltc_algo.Feasibility.feasible_maybe then begin
    (* 2. Dispatch with AAM. *)
    let outcome = Ltc_algo.Aam.run instance in
    Format.printf "%a@.@." Ltc_algo.Engine.pp_outcome outcome;

    (* 3. Audit: strict tasks must carry far more votes. *)
    let votes task =
      List.length (Arrangement.workers_of_task outcome.Ltc_algo.Engine.arrangement task)
    in
    Format.printf "votes on critical tasks: %s@."
      (String.concat ", "
         (List.filter_map
            (fun (t : Task.t) ->
              if t.epsilon <> None then Some (string_of_int (votes t.id))
              else None)
            (Array.to_list tasks)));
    Format.printf "votes on routine tasks (first five): %s@.@."
      (String.concat ", "
         (List.map (fun id -> string_of_int (votes id)) [ 1; 2; 3; 4; 6 ]));

    Format.printf "--- arrangement report ---@.%a@.@." Analysis.pp
      (Analysis.of_arrangement instance outcome.Ltc_algo.Engine.arrangement);

    (* 4. Verify the differentiated guarantee empirically. *)
    let report =
      Truth_sim.run ~trials:5000
        (Ltc_util.Rng.create ~seed:11)
        instance outcome.Ltc_algo.Engine.arrangement
    in
    Array.iter
      (fun (tr : Truth_sim.task_report) ->
        let promised =
          match tasks.(tr.task).Task.epsilon with Some e -> e | None -> 0.2
        in
        if tr.task mod 5 = 0 then
          Format.printf
            "critical task %2d: empirical error %.4f (promised <= %.2f)@."
            tr.task tr.error_rate promised)
      report.Truth_sim.tasks
  end
