(* City-scale scenario: the Table-V "New York" workload (scaled down so the
   example runs in seconds) — clustered POIs, check-ins concentrated on hot
   neighbourhoods, chronological arrivals.  All five algorithms compete on
   the same instance.

     dune exec examples/city_checkins.exe            # default 3% scale
     dune exec examples/city_checkins.exe 0.2        # bigger slice *)

open Ltc_workload

let () =
  let scale =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.03
  in
  let spec = Spec.scale_city scale Spec.new_york in
  Format.printf "Workload: %a@.@." Spec.pp_city spec;

  let rng = Ltc_util.Rng.create ~seed:99 in
  let hotspot_rng = Ltc_util.Rng.copy rng in
  let instance = City.generate rng spec in

  (* Where is the action?  (Same RNG prefix reproduces the mixture.) *)
  let spots = City.hotspots hotspot_rng spec in
  print_endline "Busiest neighbourhoods (hot-spot centres, zipf weights):";
  Array.iteri
    (fun k (centre, weight) ->
      if k < 5 then
        Format.printf "  #%d %a  weight %.3f@." (k + 1) Ltc_geo.Point.pp centre
          weight)
    spots;
  print_newline ();

  let bound_low, bound_high = Ltc_algo.Bounds.of_instance instance in
  (* Theorem 2 idealizes away the candidate radius (any worker may serve
     any task), so real spatial workloads can exceed the upper end. *)
  Format.printf
    "Theorem-2 latency bounds (spatially unconstrained): [%.0f, %.0f]@.@."
    bound_low bound_high;

  print_endline "algorithm   kind     latency  assignments  runtime    completed";
  print_endline "---------   -------  -------  -----------  ---------  ---------";
  List.iter
    (fun (algo : Ltc_algo.Algorithm.t) ->
      let outcome, dt =
        Ltc_util.Timer.time (fun () -> algo.run ~seed:5 instance)
      in
      Format.printf "%-11s %-8s %7d  %11d  %7.3f s  %b@." algo.name
        (Format.asprintf "%a" Ltc_algo.Algorithm.pp_kind algo.kind)
        outcome.Ltc_algo.Engine.latency
        (Ltc_core.Arrangement.size outcome.Ltc_algo.Engine.arrangement)
        dt outcome.Ltc_algo.Engine.completed)
    Ltc_algo.Algorithm.paper;

  print_newline ();
  print_endline
    "Expected shape (paper Fig. 4c): AAM needs the fewest workers among the \
     online algorithms; Random the most; MCF-LTC is the strongest offline \
     method but costs the most runtime."
