(* Quickstart: the smallest end-to-end use of the library.

   Build an instance (tasks + arriving workers), run an online algorithm,
   inspect the arrangement, and check the quality guarantee by Monte-Carlo
   simulation.

     dune exec examples/quickstart.exe *)

open Ltc_core

let point = Ltc_geo.Point.make

let () =
  (* Three POI questions in a small neighbourhood. *)
  let tasks =
    [|
      Task.make ~id:0 ~loc:(point ~x:10.0 ~y:10.0) ();
      Task.make ~id:1 ~loc:(point ~x:25.0 ~y:12.0) ();
      Task.make ~id:2 ~loc:(point ~x:18.0 ~y:30.0) ();
    |]
  in
  (* Fifty workers check in around the neighbourhood, in arrival order;
     each answers at most 2 questions per check-in. *)
  let rng = Ltc_util.Rng.create ~seed:2024 in
  let accuracy_dist = Ltc_util.Distribution.accuracy_normal ~mu:0.86 in
  let workers =
    Array.init 50 (fun i ->
        Worker.make ~index:(i + 1)
          ~loc:
            (point
               ~x:(Ltc_util.Rng.float rng 40.0)
               ~y:(Ltc_util.Rng.float rng 40.0))
          ~accuracy:(Ltc_util.Distribution.sample rng accuracy_dist)
          ~capacity:2)
  in
  (* Tolerable error rate 10%: every task must accumulate
     Acc* >= delta = 2 ln(1/0.1) ~ 4.6 before it counts as completed. *)
  let instance = Instance.create ~tasks ~workers ~epsilon:0.1 () in
  Format.printf "Instance: %a@." Instance.pp instance;
  Format.printf "Completion threshold (delta): %.3f@.@." (Instance.threshold instance);

  (* Run the paper's best online algorithm. *)
  let outcome = Ltc_algo.Aam.run instance in
  Format.printf "%a@.@." Ltc_algo.Engine.pp_outcome outcome;

  (* Who does what? *)
  List.iter
    (fun (a : Arrangement.assignment) ->
      let w = workers.(a.worker - 1) in
      Format.printf "  worker %2d (p=%.2f) -> task %d  (Acc* %.3f)@." a.worker
        w.Worker.accuracy a.task
        (Instance.score instance w a.task))
    (Arrangement.to_list outcome.Ltc_algo.Engine.arrangement);

  (* The arrangement satisfies every constraint of the problem. *)
  (match Arrangement.validate instance outcome.Ltc_algo.Engine.arrangement with
  | Ok () -> Format.printf "@.Arrangement validates: all constraints hold.@."
  | Error vs ->
    Format.printf "@.Violations:@.";
    List.iter (Format.printf "  %a@." Arrangement.pp_violation) vs);

  (* And the Hoeffding guarantee holds empirically. *)
  let report =
    Truth_sim.run ~trials:5000
      (Ltc_util.Rng.create ~seed:7)
      instance outcome.Ltc_algo.Engine.arrangement
  in
  Format.printf
    "@.Monte-Carlo voting check (%d trials): mean error %.4f, max error \
     %.4f, promised <= %.2f@."
    report.Truth_sim.trials report.Truth_sim.mean_error
    report.Truth_sim.max_error report.Truth_sim.epsilon;

  (* Finally, draw the run: tasks (green = completed), check-ins, and who
     answered what. *)
  let svg_path = Filename.temp_file "ltc_quickstart" ".svg" in
  Svg.save ~path:svg_path ~arrangement:outcome.Ltc_algo.Engine.arrangement
    instance;
  Format.printf "@.Map of the run written to %s@." svg_path
