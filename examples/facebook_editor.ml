(* The paper's running example (Fig. 1): a Facebook-Editor-style platform
   wants three POI questions answered — Think Cafe (t1), Yee Shun (t2),
   SOGO (t3) — while eight users w1..w8 check in nearby.  Table I gives the
   workers' historical accuracy per task; each worker answers at most two
   questions per check-in.

   This program replays Examples 1-4 of the paper and prints each
   algorithm's arrangement as a marked Table-I grid.

     dune exec examples/facebook_editor.exe *)

open Ltc_core

let table1 =
  [|
    [| 0.96; 0.98; 0.98; 0.98; 0.96; 0.96; 0.94; 0.94 |];
    [| 0.98; 0.96; 0.96; 0.98; 0.94; 0.96; 0.96; 0.94 |];
    [| 0.96; 0.96; 0.96; 0.98; 0.94; 0.94; 0.96; 0.96 |];
  |]

let accuracy =
  Accuracy.Custom
    { name = "table1"; f = (fun w t -> table1.(t.Task.id).(w.Worker.index - 1)) }

let instance ~scoring ~epsilon =
  let tasks =
    Array.init 3 (fun id ->
        Task.make ~id ~loc:(Ltc_geo.Point.make ~x:(float_of_int id) ~y:0.0) ())
  in
  let workers =
    Array.init 8 (fun i ->
        Worker.make ~index:(i + 1)
          ~loc:(Ltc_geo.Point.make ~x:(float_of_int i) ~y:1.0)
          ~accuracy:table1.(0).(i) ~capacity:2)
  in
  Instance.create ~accuracy ~scoring ~tasks ~workers ~epsilon ()

(* Print Table I with the algorithm's chosen cells marked in [brackets]. *)
let print_grid (arrangement : Arrangement.t) =
  let chosen = Hashtbl.create 16 in
  List.iter
    (fun (a : Arrangement.assignment) -> Hashtbl.add chosen (a.task, a.worker) ())
    (Arrangement.to_list arrangement);
  let header =
    "    " :: List.init 8 (fun w -> Printf.sprintf "  w%d  " (w + 1))
  in
  print_endline (String.concat "" header);
  Array.iteri
    (fun t row ->
      let cells =
        Array.to_list
          (Array.mapi
             (fun w acc ->
               if Hashtbl.mem chosen (t, w + 1) then
                 Printf.sprintf "[%.2f]" acc
               else Printf.sprintf " %.2f " acc)
             row)
      in
      Printf.printf "t%d  %s\n" (t + 1) (String.concat " " cells))
    table1;
  print_newline ()

let () =
  print_endline "The running example of the paper (Tables I-II, Examples 1-4)";
  print_endline "============================================================\n";

  (* Example 1: quality aggregation = plain sum of accuracies >= 2.92. *)
  let i1 = instance ~scoring:(Quality.Sum_accuracy { threshold = 2.92 }) ~epsilon:0.14 in
  print_endline "Example 1 — offline optimum (sum of accuracies >= 2.92):";
  (match Ltc_algo.Optimal.solve i1 with
  | Some (latency, arrangement) ->
    Printf.printf "  optimal latency = %d (paper: 5)\n\n" latency;
    print_grid arrangement
  | None -> print_endline "  unexpectedly infeasible");

  (* Examples 2-4: Hoeffding quality with eps = 0.2 (delta ~ 3.22). *)
  let i2 = instance ~scoring:Quality.Hoeffding ~epsilon:0.2 in
  Printf.printf "Examples 2-4 use eps = 0.2, delta = %.3f\n\n"
    (Instance.threshold i2);

  let show name (outcome : Ltc_algo.Engine.outcome) note =
    Printf.printf "%s: latency = %d%s\n\n" name outcome.Ltc_algo.Engine.latency
      note;
    print_grid outcome.Ltc_algo.Engine.arrangement
  in
  show "Example 2 — MCF-LTC (offline, 7.5-approx)" (Ltc_algo.Mcf_ltc.run i2)
    "  (paper prose says 6, but the cost-optimal flow must recruit past w6; \
     see DESIGN.md)";
  show "Example 3 — LAF (online)" (Ltc_algo.Laf.run i2) "  (matches the paper)";
  show "Example 4 — AAM (online)" (Ltc_algo.Aam.run i2)
    "  (paper prose says 7; faithful Algorithm 3 switches to LRF at w3 and \
     finishes at 6)";

  (* And the exact optimum for the Hoeffding variant, for reference. *)
  match Ltc_algo.Optimal.solve i2 with
  | Some (latency, _) ->
    Printf.printf "Exact optimum for Examples 2-4's setting: %d\n" latency
  | None -> print_endline "Exact optimum: infeasible"
