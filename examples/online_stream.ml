(* The online scenario up close: workers arrive one by one and the platform
   must commit immediately (Definition 7's temporal constraint).  This
   example drives the engine with a verbose wrapper policy so you can watch
   AAM switch between its two strategies (LGF while the workload is broad,
   LRF once a hard task becomes the bottleneck).

     dune exec examples/online_stream.exe *)

open Ltc_core

let () =
  let spec =
    {
      Ltc_workload.Spec.default_synthetic with
      Ltc_workload.Spec.n_tasks = 8;
      n_workers = 400;
      capacity = 3;
      epsilon = 0.2;
      world_side = 60.0;
    }
  in
  let instance =
    Ltc_workload.Synthetic.generate (Ltc_util.Rng.create ~seed:31) spec
  in
  Format.printf "Instance: %a@." Instance.pp instance;
  Format.printf "delta = %.3f per task@.@." (Instance.threshold instance);

  (* Wrap AAM's policy to narrate each decision. *)
  let narrating_policy instance tracker progress =
    let aam_decide = Ltc_algo.Aam.policy instance tracker progress in
    fun (w : Worker.t) ->
      let avg =
        Progress.sum_remaining progress /. float_of_int w.Worker.capacity
      in
      let max_remain = Progress.max_remaining progress in
      let strategy = if avg >= max_remain then "LGF" else "LRF" in
      let chosen = aam_decide w in
      if chosen <> [] then
        Format.printf
          "w%-3d at %s p=%.2f | avg %5.2f vs max %5.2f -> %s | tasks %s@."
          w.Worker.index
          (Ltc_geo.Point.to_string w.Worker.loc)
          w.Worker.accuracy avg max_remain strategy
          (String.concat ", " (List.map string_of_int chosen));
      chosen
  in
  let outcome =
    Ltc_algo.Engine.run ~name:"AAM (narrated)" narrating_policy instance
  in
  Format.printf "@.%a@." Ltc_algo.Engine.pp_outcome outcome;

  (* Compare against LAF and Random on the same stream. *)
  Format.printf "@.LAF    on the same stream: latency %d@."
    (Ltc_algo.Laf.run instance).Ltc_algo.Engine.latency;
  Format.printf "Random on the same stream: latency %d@."
    (Ltc_algo.Random_assign.run ~seed:1 instance).Ltc_algo.Engine.latency;
  Format.printf "AAM    on the same stream: latency %d@."
    outcome.Ltc_algo.Engine.latency
