(* Shared fixtures: the paper's running example (Fig. 1, Tables I-II) and
   small random instances for property tests. *)

open Ltc_core

(* Table I: historical accuracy of workers w1..w8 on tasks t1..t3. *)
let table1 =
  [|
    [| 0.96; 0.98; 0.98; 0.98; 0.96; 0.96; 0.94; 0.94 |];
    [| 0.98; 0.96; 0.96; 0.98; 0.94; 0.96; 0.96; 0.94 |];
    [| 0.96; 0.96; 0.96; 0.98; 0.94; 0.94; 0.96; 0.96 |];
  |]

let example_accuracy =
  Accuracy.Custom
    {
      name = "table1";
      f = (fun w t -> table1.(t.Task.id).(w.Worker.index - 1));
    }

(* Locations are irrelevant under the Custom model; spread workers on a line
   so that spatial code paths still see distinct points. *)
let example_instance ~scoring ~epsilon =
  let tasks =
    Array.init 3 (fun id ->
        Task.make ~id ~loc:(Ltc_geo.Point.make ~x:(float_of_int id) ~y:0.0) ())
  in
  let workers =
    Array.init 8 (fun i ->
        Worker.make ~index:(i + 1)
          ~loc:(Ltc_geo.Point.make ~x:(float_of_int i) ~y:1.0)
          ~accuracy:table1.(0).(i) ~capacity:2)
  in
  Instance.create ~accuracy:example_accuracy ~scoring ~tasks ~workers ~epsilon
    ()

(* Example 1: quality = plain sum of accuracies, threshold 2.92. *)
let example1 () =
  example_instance ~scoring:(Quality.Sum_accuracy { threshold = 2.92 })
    ~epsilon:0.14

(* Examples 2-4: Hoeffding scoring with eps = 0.2 (delta ~ 3.22). *)
let example2 () = example_instance ~scoring:Quality.Hoeffding ~epsilon:0.2

(* A small uniform random instance for property tests: dense enough that all
   algorithms complete. *)
let small_random ~seed ?(n_tasks = 12) ?(n_workers = 600) ?(capacity = 3)
    ?(epsilon = 0.14) () =
  let spec =
    {
      Ltc_workload.Spec.default_synthetic with
      n_tasks;
      n_workers;
      capacity;
      epsilon;
      world_side = 80.0;
    }
  in
  Ltc_workload.Synthetic.generate (Ltc_util.Rng.create ~seed) spec

(* A micro instance solvable by the exact optimum. *)
let micro_random ~seed () =
  let spec =
    {
      Ltc_workload.Spec.default_synthetic with
      n_tasks = 3;
      n_workers = 14;
      capacity = 2;
      epsilon = 0.2;
      world_side = 12.0;
    }
  in
  Ltc_workload.Synthetic.generate (Ltc_util.Rng.create ~seed) spec
