let () =
  Alcotest.run "ltc"
    (Test_util.suite @ Test_fault.suite @ Test_obs.suite @ Test_geo.suite @ Test_flow.suite
   @ Test_core.suite @ Test_algo.suite @ Test_service.suite
   @ Test_workload.suite @ Test_experiments.suite @ Test_parallel.suite)
