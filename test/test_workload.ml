open Ltc_core
open Ltc_workload

(* ------------------------------------------------------------------ Spec *)

let test_defaults_match_table4 () =
  let s = Spec.default_synthetic in
  Alcotest.(check int) "|T|" 3000 s.Spec.n_tasks;
  Alcotest.(check int) "|W|" 40000 s.Spec.n_workers;
  Alcotest.(check int) "K" 6 s.Spec.capacity;
  Alcotest.(check (float 1e-9)) "eps" 0.14 s.Spec.epsilon;
  Alcotest.(check (float 1e-9)) "dmax" 30.0 s.Spec.dmax;
  Alcotest.(check bool) "normal 0.86" true (s.Spec.accuracy = Spec.Normal_acc 0.86)

let test_sweeps_match_table4 () =
  Alcotest.(check (list int)) "tasks" [ 1000; 2000; 3000; 4000; 5000 ]
    Spec.n_tasks_sweep;
  Alcotest.(check (list int)) "capacity" [ 4; 5; 6; 7; 8 ] Spec.capacity_sweep;
  Alcotest.(check int) "scalability rows" 6 (List.length Spec.scalability_sweep);
  List.iter
    (fun (_, w) -> Alcotest.(check int) "400k workers" 400_000 w)
    Spec.scalability_sweep

let test_table5_cardinalities () =
  Alcotest.(check int) "NY tasks" 3717 Spec.new_york.Spec.c_n_tasks;
  Alcotest.(check int) "NY workers" 227_428 Spec.new_york.Spec.c_n_workers;
  Alcotest.(check int) "Tokyo tasks" 9317 Spec.tokyo.Spec.c_n_tasks;
  Alcotest.(check int) "Tokyo workers" 573_703 Spec.tokyo.Spec.c_n_workers

let test_scaling_preserves_density () =
  let s = Spec.scale_synthetic 0.25 Spec.default_synthetic in
  Alcotest.(check int) "tasks" 750 s.Spec.n_tasks;
  Alcotest.(check int) "workers" 10000 s.Spec.n_workers;
  Alcotest.(check (float 1e-6)) "side" 500.0 s.Spec.world_side;
  (* density = n / side^2 invariant *)
  let density spec =
    float_of_int spec.Spec.n_tasks /. (spec.Spec.world_side ** 2.0)
  in
  Alcotest.(check (float 1e-9)) "task density"
    (density Spec.default_synthetic) (density s);
  Alcotest.(check int) "identity at 1"
    Spec.default_synthetic.Spec.n_tasks
    (Spec.scale_synthetic 1.0 Spec.default_synthetic).Spec.n_tasks

let test_scaling_invalid () =
  Alcotest.check_raises "zero factor"
    (Invalid_argument "Spec.scale_synthetic: factor <= 0") (fun () ->
      ignore (Spec.scale_synthetic 0.0 Spec.default_synthetic))

(* -------------------------------------------------------------- Synthetic *)

let small_spec =
  Spec.
    {
      default_synthetic with
      n_tasks = 50;
      n_workers = 400;
      world_side = 200.0;
    }

let test_synthetic_shape () =
  let i = Synthetic.generate (Ltc_util.Rng.create ~seed:1) small_spec in
  Alcotest.(check int) "tasks" 50 (Instance.task_count i);
  Alcotest.(check int) "workers" 400 (Instance.worker_count i);
  Array.iteri
    (fun k (w : Worker.t) ->
      Alcotest.(check int) "arrival order" (k + 1) w.index;
      Alcotest.(check int) "capacity" 6 w.capacity;
      Alcotest.(check bool) "trusted accuracy" true
        (w.accuracy >= 0.66 && w.accuracy <= 1.0);
      Alcotest.(check bool) "in world" true
        (w.loc.Ltc_geo.Point.x >= 0.0
        && w.loc.Ltc_geo.Point.x <= 200.0
        && w.loc.Ltc_geo.Point.y >= 0.0
        && w.loc.Ltc_geo.Point.y <= 200.0))
    i.Instance.workers

let test_synthetic_deterministic () =
  let gen seed = Synthetic.generate (Ltc_util.Rng.create ~seed) small_spec in
  let a = gen 7 and b = gen 7 and c = gen 8 in
  Alcotest.(check bool) "same seed, same workers" true
    (a.Instance.workers = b.Instance.workers);
  Alcotest.(check bool) "different seed differs" false
    (a.Instance.workers = c.Instance.workers)

let test_synthetic_uniform_accuracy_model () =
  let spec = { small_spec with Spec.accuracy = Spec.Uniform_acc 0.9 } in
  let i = Synthetic.generate (Ltc_util.Rng.create ~seed:2) spec in
  Array.iter
    (fun (w : Worker.t) ->
      Alcotest.(check bool) "in uniform band" true
        (w.accuracy >= 0.82 && w.accuracy <= 0.98 +. 1e-9))
    i.Instance.workers

(* ------------------------------------------------------------------ City *)

let tiny_city =
  Spec.
    {
      new_york with
      c_n_tasks = 60;
      c_n_workers = 1500;
      c_side = 300.0;
      c_clusters = 6;
    }

let test_city_shape () =
  let i = City.generate (Ltc_util.Rng.create ~seed:3) tiny_city in
  Alcotest.(check int) "tasks" 60 (Instance.task_count i);
  Alcotest.(check int) "workers" 1500 (Instance.worker_count i);
  Array.iter
    (fun (t : Task.t) ->
      Alcotest.(check bool) "task in city" true
        (t.loc.Ltc_geo.Point.x >= 0.0 && t.loc.Ltc_geo.Point.x <= 300.0))
    i.Instance.tasks

let test_city_is_clustered () =
  (* Check-ins concentrate: the busiest 10% of grid cells should hold far
     more than 10% of the workers (they would under a uniform layout they
     would hold ~10%). *)
  let i = City.generate (Ltc_util.Rng.create ~seed:4) tiny_city in
  let cells = 10 in
  let histogram = Array.make (cells * cells) 0 in
  Array.iter
    (fun (w : Worker.t) ->
      let cx =
        min (cells - 1) (int_of_float (w.loc.Ltc_geo.Point.x /. 300.0 *. 10.0))
      in
      let cy =
        min (cells - 1) (int_of_float (w.loc.Ltc_geo.Point.y /. 300.0 *. 10.0))
      in
      histogram.((cy * cells) + cx) <- histogram.((cy * cells) + cx) + 1)
    i.Instance.workers;
  Array.sort (fun a b -> compare b a) histogram;
  let top10 = Array.fold_left ( + ) 0 (Array.sub histogram 0 10) in
  (* Under a uniform layout the busiest 10% of cells would hold ~10% of the
     1500 workers (~150); the mixture concentrates at least twice that. *)
  Alcotest.(check bool)
    (Printf.sprintf "top 10 cells hold %d of 1500" top10)
    true (top10 > 300)

let test_city_hotspot_weights () =
  let spots = City.hotspots (Ltc_util.Rng.create ~seed:5) tiny_city in
  Alcotest.(check int) "cluster count" 6 (Array.length spots);
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 spots in
  Alcotest.(check (float 1e-9)) "weights sum to 1" 1.0 total;
  (* Zipf: first weight is the largest. *)
  let w0 = snd spots.(0) in
  Array.iter (fun (_, w) -> Alcotest.(check bool) "zipf head" true (w <= w0)) spots

let test_city_completable () =
  (* The algorithms must be able to finish a city workload. *)
  let i = City.generate (Ltc_util.Rng.create ~seed:6) tiny_city in
  let o = Ltc_algo.Aam.run i in
  Alcotest.(check bool) "AAM completes" true o.Ltc_algo.Engine.completed

let suite =
  [
    ( "workload.spec",
      [
        Alcotest.test_case "Table IV defaults" `Quick test_defaults_match_table4;
        Alcotest.test_case "Table IV sweeps" `Quick test_sweeps_match_table4;
        Alcotest.test_case "Table V cardinalities" `Quick
          test_table5_cardinalities;
        Alcotest.test_case "density-preserving scaling" `Quick
          test_scaling_preserves_density;
        Alcotest.test_case "invalid scaling" `Quick test_scaling_invalid;
      ] );
    ( "workload.synthetic",
      [
        Alcotest.test_case "shape" `Quick test_synthetic_shape;
        Alcotest.test_case "deterministic" `Quick test_synthetic_deterministic;
        Alcotest.test_case "uniform accuracy model" `Quick
          test_synthetic_uniform_accuracy_model;
      ] );
    ( "workload.city",
      [
        Alcotest.test_case "shape" `Quick test_city_shape;
        Alcotest.test_case "clustered" `Quick test_city_is_clustered;
        Alcotest.test_case "hotspot weights" `Quick test_city_hotspot_weights;
        Alcotest.test_case "completable" `Quick test_city_completable;
      ] );
  ]
