open Ltc_core
open Ltc_workload

(* ------------------------------------------------------------------ Spec *)

let test_defaults_match_table4 () =
  let s = Spec.default_synthetic in
  Alcotest.(check int) "|T|" 3000 s.Spec.n_tasks;
  Alcotest.(check int) "|W|" 40000 s.Spec.n_workers;
  Alcotest.(check int) "K" 6 s.Spec.capacity;
  Alcotest.(check (float 1e-9)) "eps" 0.14 s.Spec.epsilon;
  Alcotest.(check (float 1e-9)) "dmax" 30.0 s.Spec.dmax;
  Alcotest.(check bool) "normal 0.86" true (s.Spec.accuracy = Spec.Normal_acc 0.86)

let test_sweeps_match_table4 () =
  Alcotest.(check (list int)) "tasks" [ 1000; 2000; 3000; 4000; 5000 ]
    Spec.n_tasks_sweep;
  Alcotest.(check (list int)) "capacity" [ 4; 5; 6; 7; 8 ] Spec.capacity_sweep;
  Alcotest.(check int) "scalability rows" 6 (List.length Spec.scalability_sweep);
  List.iter
    (fun (_, w) -> Alcotest.(check int) "400k workers" 400_000 w)
    Spec.scalability_sweep

let test_table5_cardinalities () =
  Alcotest.(check int) "NY tasks" 3717 Spec.new_york.Spec.c_n_tasks;
  Alcotest.(check int) "NY workers" 227_428 Spec.new_york.Spec.c_n_workers;
  Alcotest.(check int) "Tokyo tasks" 9317 Spec.tokyo.Spec.c_n_tasks;
  Alcotest.(check int) "Tokyo workers" 573_703 Spec.tokyo.Spec.c_n_workers

let test_scaling_preserves_density () =
  let s = Spec.scale_synthetic 0.25 Spec.default_synthetic in
  Alcotest.(check int) "tasks" 750 s.Spec.n_tasks;
  Alcotest.(check int) "workers" 10000 s.Spec.n_workers;
  Alcotest.(check (float 1e-6)) "side" 500.0 s.Spec.world_side;
  (* density = n / side^2 invariant *)
  let density spec =
    float_of_int spec.Spec.n_tasks /. (spec.Spec.world_side ** 2.0)
  in
  Alcotest.(check (float 1e-9)) "task density"
    (density Spec.default_synthetic) (density s);
  Alcotest.(check int) "identity at 1"
    Spec.default_synthetic.Spec.n_tasks
    (Spec.scale_synthetic 1.0 Spec.default_synthetic).Spec.n_tasks

let test_scaling_invalid () =
  Alcotest.check_raises "zero factor"
    (Invalid_argument "Spec.scale_synthetic: factor <= 0") (fun () ->
      ignore (Spec.scale_synthetic 0.0 Spec.default_synthetic))

(* -------------------------------------------------------------- Synthetic *)

let small_spec =
  Spec.
    {
      default_synthetic with
      n_tasks = 50;
      n_workers = 400;
      world_side = 200.0;
    }

let test_synthetic_shape () =
  let i = Synthetic.generate (Ltc_util.Rng.create ~seed:1) small_spec in
  Alcotest.(check int) "tasks" 50 (Instance.task_count i);
  Alcotest.(check int) "workers" 400 (Instance.worker_count i);
  Array.iteri
    (fun k (w : Worker.t) ->
      Alcotest.(check int) "arrival order" (k + 1) w.index;
      Alcotest.(check int) "capacity" 6 w.capacity;
      Alcotest.(check bool) "trusted accuracy" true
        (w.accuracy >= 0.66 && w.accuracy <= 1.0);
      Alcotest.(check bool) "in world" true
        (w.loc.Ltc_geo.Point.x >= 0.0
        && w.loc.Ltc_geo.Point.x <= 200.0
        && w.loc.Ltc_geo.Point.y >= 0.0
        && w.loc.Ltc_geo.Point.y <= 200.0))
    i.Instance.workers

let test_synthetic_deterministic () =
  let gen seed = Synthetic.generate (Ltc_util.Rng.create ~seed) small_spec in
  let a = gen 7 and b = gen 7 and c = gen 8 in
  Alcotest.(check bool) "same seed, same workers" true
    (a.Instance.workers = b.Instance.workers);
  Alcotest.(check bool) "different seed differs" false
    (a.Instance.workers = c.Instance.workers)

let test_synthetic_uniform_accuracy_model () =
  let spec = { small_spec with Spec.accuracy = Spec.Uniform_acc 0.9 } in
  let i = Synthetic.generate (Ltc_util.Rng.create ~seed:2) spec in
  Array.iter
    (fun (w : Worker.t) ->
      Alcotest.(check bool) "in uniform band" true
        (w.accuracy >= 0.82 && w.accuracy <= 0.98 +. 1e-9))
    i.Instance.workers

(* ------------------------------------------------------------------ City *)

let tiny_city =
  Spec.
    {
      new_york with
      c_n_tasks = 60;
      c_n_workers = 1500;
      c_side = 300.0;
      c_clusters = 6;
    }

let test_city_shape () =
  let i = City.generate (Ltc_util.Rng.create ~seed:3) tiny_city in
  Alcotest.(check int) "tasks" 60 (Instance.task_count i);
  Alcotest.(check int) "workers" 1500 (Instance.worker_count i);
  Array.iter
    (fun (t : Task.t) ->
      Alcotest.(check bool) "task in city" true
        (t.loc.Ltc_geo.Point.x >= 0.0 && t.loc.Ltc_geo.Point.x <= 300.0))
    i.Instance.tasks

let test_city_is_clustered () =
  (* Check-ins concentrate: the busiest 10% of grid cells should hold far
     more than 10% of the workers (they would under a uniform layout they
     would hold ~10%). *)
  let i = City.generate (Ltc_util.Rng.create ~seed:4) tiny_city in
  let cells = 10 in
  let histogram = Array.make (cells * cells) 0 in
  Array.iter
    (fun (w : Worker.t) ->
      let cx =
        min (cells - 1) (int_of_float (w.loc.Ltc_geo.Point.x /. 300.0 *. 10.0))
      in
      let cy =
        min (cells - 1) (int_of_float (w.loc.Ltc_geo.Point.y /. 300.0 *. 10.0))
      in
      histogram.((cy * cells) + cx) <- histogram.((cy * cells) + cx) + 1)
    i.Instance.workers;
  Array.sort (fun a b -> compare b a) histogram;
  let top10 = Array.fold_left ( + ) 0 (Array.sub histogram 0 10) in
  (* Under a uniform layout the busiest 10% of cells would hold ~10% of the
     1500 workers (~150); the mixture concentrates at least twice that. *)
  Alcotest.(check bool)
    (Printf.sprintf "top 10 cells hold %d of 1500" top10)
    true (top10 > 300)

let test_city_hotspot_weights () =
  let spots = City.hotspots (Ltc_util.Rng.create ~seed:5) tiny_city in
  Alcotest.(check int) "cluster count" 6 (Array.length spots);
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 spots in
  Alcotest.(check (float 1e-9)) "weights sum to 1" 1.0 total;
  (* Zipf: first weight is the largest. *)
  let w0 = snd spots.(0) in
  Array.iter (fun (_, w) -> Alcotest.(check bool) "zipf head" true (w <= w0)) spots

let test_city_completable () =
  (* The algorithms must be able to finish a city workload. *)
  let i = City.generate (Ltc_util.Rng.create ~seed:6) tiny_city in
  let o = Ltc_algo.Aam.run i in
  Alcotest.(check bool) "AAM completes" true o.Ltc_algo.Engine.completed

(* ----------------------------------------------------------------- Shape *)

(* Deterministic constant shape: arrival i lands exactly at (i+1)/rate —
   one unit of integrated rate per arrival, no jitter. *)
let test_shape_constant_spacing () =
  let s = Shape.make ~rate:100.0 Shape.Constant in
  let ts = Shape.times s ~seed:0 ~n:5 in
  Alcotest.(check int) "n arrivals" 5 (Array.length ts);
  Array.iteri
    (fun i t ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "arrival %d" i)
        (float_of_int (i + 1) /. 100.0)
        t)
    ts

let test_shape_deterministic () =
  let s =
    Shape.make ~poisson:true ~rate:50.0
      (Shape.Diurnal { amplitude = 0.5; period_s = 10.0 })
  in
  let a = Shape.times s ~seed:9 ~n:200 in
  let b = Shape.times s ~seed:9 ~n:200 in
  Alcotest.(check bool) "same seed, bit-equal schedule" true (a = b);
  let c = Shape.times s ~seed:10 ~n:200 in
  Alcotest.(check bool) "different seed, different jitter" true (a <> c)

(* A flash crowd multiplies the arrival density inside its window by the
   configured factor (deterministic integration, so the counts are
   exact up to the one straddling arrival). *)
let test_shape_burst_density () =
  let s =
    Shape.make ~rate:100.0
      (Shape.Burst { factor = 10.0; at_s = 1.0; dur_s = 1.0 })
  in
  let ts = Shape.times s ~seed:0 ~n:1500 in
  let inside =
    Array.fold_left
      (fun acc t -> if t >= 1.0 && t < 2.0 then acc + 1 else acc)
      0 ts
  in
  Alcotest.(check bool)
    (Printf.sprintf "~1000 arrivals in the burst window (got %d)" inside)
    true
    (abs (inside - 1000) <= 1);
  (* The first 1 s runs at the base rate. *)
  let before =
    Array.fold_left (fun acc t -> if t < 1.0 then acc + 1 else acc) 0 ts
  in
  Alcotest.(check bool)
    (Printf.sprintf "~100 arrivals before it (got %d)" before)
    true
    (abs (before - 100) <= 1)

(* Pausing shapes never schedule an arrival inside an off window. *)
let test_shape_pausing_windows () =
  let on_s = 1.0 and off_s = 2.0 in
  let s = Shape.make ~rate:100.0 (Shape.Pausing { on_s; off_s }) in
  let ts = Shape.times s ~seed:0 ~n:400 in
  Array.iter
    (fun t ->
      let phase = Float.rem t (on_s +. off_s) in
      Alcotest.(check bool)
        (Printf.sprintf "arrival at %.6f is in an on-window" t)
        true
        (phase <= on_s +. 1e-6))
    ts;
  (* 400 arrivals at 100/s need 4 s of on-time = 4 full cycles = 12 s
     of span (minus the trailing off window). *)
  Alcotest.(check bool) "lulls stretch the span" true (ts.(399) >= 9.0)

let test_shape_parse () =
  let parse spec =
    match Shape.of_string ~rate:500.0 spec with
    | Ok s -> Shape.to_string s
    | Error e -> "error: " ^ e
  in
  Alcotest.(check string) "constant" "constant(rate=500)" (parse "constant");
  Alcotest.(check string) "alias + params"
    "burst(rate=500,factor=2,at=1,dur=3)" (parse "flash:factor=2,at=1,dur=3");
  Alcotest.(check string) "defaults fill in"
    "rampup(rate=500,from=125,over=10)" (parse "rampup");
  Alcotest.(check string) "poisson suffix"
    "pausing(rate=500,on=5,off=5)+poisson" (parse "pause:poisson=true");
  let fails spec affix =
    match Shape.of_string ~rate:500.0 spec with
    | Ok _ -> Alcotest.failf "%s unexpectedly parsed" spec
    | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s error mentions %s" spec affix)
        true
        (Astring.String.is_infix ~affix e)
  in
  fails "sawtooth" "unknown shape";
  fails "burst:zap=1" "zap";
  fails "diurnal:amp=1.5" "amplitude";
  fails "burst:factor=oops" "oops"

let prop_shape_schedule_sound =
  QCheck2.Test.make
    ~name:"any shape: schedule is finite, positive and non-decreasing"
    ~count:200
    QCheck2.Gen.(
      let* rate = float_range 1.0 1000.0 in
      let* poisson = bool in
      let* seed = int_range 0 1000 in
      let* k = int_range 0 4 in
      return (rate, poisson, seed, k))
    (fun (rate, poisson, seed, k) ->
      let kind =
        match k with
        | 0 -> Shape.Constant
        | 1 -> Shape.Ramp { from_rate = rate /. 4.0; over_s = 2.0 }
        | 2 -> Shape.Diurnal { amplitude = 0.9; period_s = 5.0 }
        | 3 -> Shape.Burst { factor = 8.0; at_s = 0.5; dur_s = 0.5 }
        | _ -> Shape.Pausing { on_s = 0.5; off_s = 0.5 }
      in
      let s = Shape.make ~poisson ~rate kind in
      let ts = Shape.times s ~seed ~n:100 in
      if Array.length ts <> 100 then
        QCheck2.Test.fail_reportf "expected 100 arrivals, got %d"
          (Array.length ts);
      Array.iteri
        (fun i t ->
          if not (Float.is_finite t) || t < 0.0 then
            QCheck2.Test.fail_reportf "arrival %d at %f" i t;
          if i > 0 && t < ts.(i - 1) then
            QCheck2.Test.fail_reportf "schedule decreases at %d (%f < %f)" i t
              ts.(i - 1);
          if Shape.rate_at s t < 0.0 then
            QCheck2.Test.fail_reportf "negative rate at %f" t)
        ts;
      true)

let suite =
  [
    ( "workload.spec",
      [
        Alcotest.test_case "Table IV defaults" `Quick test_defaults_match_table4;
        Alcotest.test_case "Table IV sweeps" `Quick test_sweeps_match_table4;
        Alcotest.test_case "Table V cardinalities" `Quick
          test_table5_cardinalities;
        Alcotest.test_case "density-preserving scaling" `Quick
          test_scaling_preserves_density;
        Alcotest.test_case "invalid scaling" `Quick test_scaling_invalid;
      ] );
    ( "workload.synthetic",
      [
        Alcotest.test_case "shape" `Quick test_synthetic_shape;
        Alcotest.test_case "deterministic" `Quick test_synthetic_deterministic;
        Alcotest.test_case "uniform accuracy model" `Quick
          test_synthetic_uniform_accuracy_model;
      ] );
    ( "workload.city",
      [
        Alcotest.test_case "shape" `Quick test_city_shape;
        Alcotest.test_case "clustered" `Quick test_city_is_clustered;
        Alcotest.test_case "hotspot weights" `Quick test_city_hotspot_weights;
        Alcotest.test_case "completable" `Quick test_city_completable;
      ] );
    ( "workload.shape",
      [
        Alcotest.test_case "constant spacing" `Quick test_shape_constant_spacing;
        Alcotest.test_case "seeded determinism" `Quick test_shape_deterministic;
        Alcotest.test_case "burst density" `Quick test_shape_burst_density;
        Alcotest.test_case "pausing windows" `Quick test_shape_pausing_windows;
        Alcotest.test_case "spec parsing" `Quick test_shape_parse;
        QCheck_alcotest.to_alcotest prop_shape_schedule_sound;
      ] );
  ]
