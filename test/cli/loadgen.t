Open-loop load generation: shaped arrival schedules drive a session on
the virtual clock, with latency corrected for coordinated omission
(measured from the intended arrival time, not the fed time).

  $ ltc generate -T 200 -W 20000 --scale 0.05 --seed 3 -o wl.inst
  instance{|T|=10, |W|=1000, eps=0.14, acc=sigmoid(dmax=30), scoring=hoeffding, radius=30.}
  saved to wl.inst

A plain burst run completes at arrival 269 — the same completion point
as the batch engine in ltc.t and the serve pipeline in serve.t — and the
report is fully deterministic (virtual timing, fixed seed):

  $ ltc loadgen --load wl.inst -a LAF --shape burst --rate 500 --arrivals 400 --seed 7 --service-mean 0.0002
  loadgen: shape=burst(rate=500,factor=8,at=10,dur=5) timing=virtual algo=LAF seed=7
    arrivals: offered=269 consumed=269 completed=true degraded=0
    throughput: offered=500/s achieved=499.814/s makespan=0.5382s
    latency: mean=0.0002s p50=0.0002s p99=0.0002s p999=0.0002s max=0.0002s
    flight recorder: 269 records (capacity 4096, dropped 0)

Byte-identical across reruns at a fixed seed:

  $ ltc loadgen --load wl.inst -a LAF --shape burst --rate 500 --arrivals 400 --seed 7 --service-mean 0.0002 > r1.txt
  $ ltc loadgen --load wl.inst -a LAF --shape burst --rate 500 --arrivals 400 --seed 7 --service-mean 0.0002 > r2.txt
  $ cmp r1.txt r2.txt && echo identical
  identical

A flash crowd against a deadline session: the burst overruns the 2 ms
budget, the fallback degrades 41 decisions, and the corrected latencies
carry the queueing delay (p99 well above the 1 ms service mean).  The
first SLO breach dumps the flight recorder as it stood:

  $ ltc loadgen --load wl.inst -a LAF --shape burst:factor=8,at=0.1,dur=0.2 --rate 500 --seed 7 --service-dist exp --service-mean 0.001 --deadline 0.002 --slo 0.005 --journal lg.j --checkpoint-every 512 --flight-out fr.ndjson --trace-out trace.json --metrics lg.prom --metrics-format prom
  loadgen: SLO breached at arrival 17; flight record in fr.ndjson
  loadgen: shape=burst(rate=500,factor=8,at=0.1,dur=0.2) timing=virtual algo=LAF seed=7
    arrivals: offered=269 consumed=269 completed=true degraded=41
    throughput: offered=1738.29/s achieved=845.497/s makespan=0.318156s
    latency: mean=0.067937s p50=0.0683362s p99=0.160801s p999=0.163406s max=0.163406s
    slo: threshold=0.005s breaches=219 first=17
    flight recorder: 269 records (capacity 4096, dropped 0)
  flight record: fr.ndjson
  chrome trace: trace.json

The degraded count agrees with the journal's own degraded-decision
records (checkpoint-every 512 > 269, so no compaction folded them away):

  $ grep -c '^D ' lg.j
  41

The flight record is one NDJSON object per arrival, schema-stable:

  $ wc -l < fr.ndjson
  269
  $ head -1 fr.ndjson | sed -E 's/: ?-?[0-9][0-9.e+-]*/: _/g'
  {"seq": _,"offered_s": _,"actual_s": _,"done_s": _,"latency_s": _,"assigned": _,"degraded":false,"journal_bytes": _}

The Chrome trace is a JSON array of complete ("ph":"X") events — one
decide slice per arrival plus a queued slice wherever the generator fell
behind schedule — loadable in Perfetto / chrome://tracing:

  $ head -c 1 trace.json
  [
  $ grep -c '"ph":"X"' trace.json
  505
  $ grep -o '"name":"[a-z]*"' trace.json | sort | uniq -c
      269 "name":"decide"
      236 "name":"queued"

Latency quantiles land in the shared metrics registry:

  $ grep '^ltc_service_loadgen' lg.prom
  ltc_service_loadgen_latency_seconds{algo="LAF",quantile="0.5"} 0.0683361753
  ltc_service_loadgen_latency_seconds{algo="LAF",quantile="0.99"} 0.160801025
  ltc_service_loadgen_latency_seconds{algo="LAF",quantile="0.999"} 0.16340622
  ltc_service_loadgen_latency_seconds{algo="LAF",quantile="max"} 0.16340622
  $ grep '^ltc_engine_degraded_total' lg.prom
  ltc_engine_degraded_total{algo="LAF",fallback="Nearest"} 41

A pausing shape with Poisson jitter: 2000/s for 50 ms, silent for
150 ms — the offered rate over the span is the 25% duty cycle:

  $ ltc loadgen --load wl.inst -a LAF --shape pause:on=0.05,off=0.15 --rate 2000 --arrivals 100 --seed 9 --poisson
  loadgen: shape=pausing(rate=2000,on=0.05,off=0.15)+poisson timing=virtual algo=LAF seed=9
    arrivals: offered=100 consumed=100 completed=false degraded=0
    throughput: offered=496.695/s achieved=496.448/s makespan=0.201431s
    latency: mean=0.000110812s p50=0.0001s p99=0.000200598s p999=0.000269734s max=0.000269734s
    flight recorder: 100 records (capacity 4096, dropped 0)

Unknown shapes fail fast with the menu:

  $ ltc loadgen --load wl.inst -a LAF --shape sawtooth --rate 500
  bad --shape "sawtooth": unknown shape "sawtooth" (try: constant, rampup, diurnal, burst, pausing)
  [1]
