Resumable serving: stream a workload's workers as NDJSON arrivals and
check that a killed-and-resumed session emits exactly the decisions the
uninterrupted run does.

  $ ltc generate -T 200 -W 20000 --scale 0.05 --seed 3 -o wl.inst
  instance{|T|=10, |W|=1000, eps=0.14, acc=sigmoid(dmax=30), scoring=hoeffding, radius=30.}
  saved to wl.inst

The instance file's own worker lines double as the arrival stream (the
serve command ignores embedded workers; arrivals come from stdin):

  $ awk '/^w /{printf "{\"index\":%d,\"x\":%s,\"y\":%s,\"accuracy\":%s,\"capacity\":%d}\n",$2,$3,$4,$5,$6}' wl.inst > arrivals.ndjson
  $ wc -l < arrivals.ndjson
  1000

The uninterrupted run completes at arrival 269 — same point as the batch
engine in ltc.t — and stops emitting there:

  $ ltc serve --load wl.inst -a LAF --journal full.j --checkpoint-every 64 < arrivals.ndjson > full.out
  serve: algorithm=LAF consumed=269 (resumed at 0, skipped 0, bad 0) latency=269 completed=true
  $ wc -l < full.out
  269
  $ tail -1 full.out
  {"index":269,"assigned":[4],"answered":[4],"completed":true,"latency":269}

Kill the session after 100 arrivals, resume from the journal, and re-pipe
the whole stream: already-journaled arrivals are skipped, so the two
outputs concatenate to exactly the uninterrupted run's decisions:

  $ head -100 arrivals.ndjson | ltc serve --load wl.inst -a LAF --journal part.j --checkpoint-every 64 > part1.out
  serve: algorithm=LAF consumed=100 (resumed at 0, skipped 0, bad 0) latency=100 completed=false
  $ ltc serve --resume part.j < arrivals.ndjson > part2.out
  serve: algorithm=LAF consumed=269 (resumed at 100, skipped 100, bad 0) latency=269 completed=true
  $ cat part1.out part2.out | cmp - full.out && echo identical
  identical

Compaction keeps the journal bounded: after 269 events with snapshots
every 64, the file holds one snapshot and only the post-snapshot tail:

  $ grep -c '^snapshot$' full.j
  1
  $ grep -c '^w ' full.j
  13

ltc_service_* metrics flow through the shared registry (5 compactions of
50 events at --checkpoint-every 10):

  $ head -50 arrivals.ndjson | ltc serve --load wl.inst -a LAF --journal m.j --checkpoint-every 10 --metrics m.prom --metrics-format prom > /dev/null
  serve: algorithm=LAF consumed=50 (resumed at 0, skipped 0, bad 0) latency=48 completed=false
  $ grep -o '^ltc_service_[a-z_]*' m.prom | sort -u
  ltc_service_bad_input_total
  ltc_service_feed_seconds_bucket
  ltc_service_feed_seconds_count
  ltc_service_feed_seconds_sum
  ltc_service_io_retries_total
  ltc_service_journal_bytes
  ltc_service_snapshots_total
  $ grep '^ltc_service_snapshots_total' m.prom
  ltc_service_snapshots_total{algo="LAF"} 5

Errors are reported cleanly — serving needs an online policy:

  $ ltc serve --load wl.inst -a NOPE < /dev/null
  unknown algorithm "NOPE" (try: Base-off, MCF-LTC, Random, LAF, AAM, LGF-only, LRF-only, Nearest, LAF-dyn, AAM-dyn, Random-dyn)
  [1]
  $ ltc serve --load wl.inst -a MCF-LTC < /dev/null
  ltc: invalid argument: Session: MCF-LTC cannot serve an arrival stream (offline or release-scheduled algorithm)
  [2]
  $ ltc serve < /dev/null
  serve needs --load FILE (or --resume PATH)
  [1]

Malformed arrival lines: the default (--on-bad-input fail) stops the
stream with a structured error naming the raw input line; skip drops the
line with a stderr warning, keeps serving, and counts it in
ltc_service_bad_input_total:

  $ { head -3 arrivals.ndjson; echo '{"index":4,"x":oops}'; } | ltc serve --load wl.inst -a LAF > bad.out
  ltc: bad input at line 4: unexpected character 'o' in "{\"index\":4,\"x\":oops}": "{\"index\":4,\"x\":oops}"
  [2]
  $ { head -3 arrivals.ndjson; echo 'not json at all'; sed -n '4,5p' arrivals.ndjson; } | ltc serve --load wl.inst -a LAF --on-bad-input skip --metrics bad.prom --metrics-format prom > skip.out
  serve: dropping bad input at line 4: unexpected character 'n' in "not json at all": "not json at all"
  serve: algorithm=LAF consumed=5 (resumed at 0, skipped 0, bad 1) latency=5 completed=false
  $ wc -l < skip.out
  5
  $ grep '^ltc_service_bad_input_total' bad.prom
  ltc_service_bad_input_total{algo="LAF"} 1

Resuming an empty (zero-byte) journal is a fresh start, not an error —
the previous run died before the header became durable:

  $ touch empty.j
  $ head -5 arrivals.ndjson | ltc serve --resume empty.j --load wl.inst -a LAF > fresh.out
  serve: journal empty.j is empty; starting a fresh session
  serve: algorithm=LAF consumed=5 (resumed at 0, skipped 0, bad 0) latency=5 completed=false
  $ grep -c '^w ' empty.j
  5

A per-arrival deadline is recorded in the journal header (v2) and
restored on resume; with a generous budget the stream is untouched:

  $ head -100 arrivals.ndjson | ltc serve --load wl.inst -a LAF --journal dl.j --deadline 100 > dl1.out
  serve: algorithm=LAF consumed=100 (resumed at 0, skipped 0, bad 0) latency=100 completed=false
  $ ltc serve --resume dl.j < arrivals.ndjson > dl2.out
  serve: algorithm=LAF consumed=269 (resumed at 100, skipped 100, bad 0) latency=269 completed=true
  $ cat dl1.out dl2.out | cmp - full.out && echo identical
  identical
  $ ltc serve --resume dl.j --deadline 5 < /dev/null
  --resume restores the deadline from the journal; drop --deadline/--fallback
  [1]
  $ ltc serve --load wl.inst -a LAF --fallback Nearest < /dev/null
  --fallback only makes sense with --deadline
  [1]
