Resumable serving: stream a workload's workers as NDJSON arrivals and
check that a killed-and-resumed session emits exactly the decisions the
uninterrupted run does.

  $ ltc generate -T 200 -W 20000 --scale 0.05 --seed 3 -o wl.inst
  instance{|T|=10, |W|=1000, eps=0.14, acc=sigmoid(dmax=30), scoring=hoeffding, radius=30.}
  saved to wl.inst

The instance file's own worker lines double as the arrival stream (the
serve command ignores embedded workers; arrivals come from stdin):

  $ awk '/^w /{printf "{\"index\":%d,\"x\":%s,\"y\":%s,\"accuracy\":%s,\"capacity\":%d}\n",$2,$3,$4,$5,$6}' wl.inst > arrivals.ndjson
  $ wc -l < arrivals.ndjson
  1000

The uninterrupted run completes at arrival 269 — same point as the batch
engine in ltc.t — and stops emitting there:

  $ ltc serve --load wl.inst -a LAF --journal full.j --checkpoint-every 64 < arrivals.ndjson > full.out
  serve: algorithm=LAF consumed=269 (resumed at 0, skipped 0) latency=269 completed=true
  $ wc -l < full.out
  269
  $ tail -1 full.out
  {"index":269,"assigned":[4],"answered":[4],"completed":true,"latency":269}

Kill the session after 100 arrivals, resume from the journal, and re-pipe
the whole stream: already-journaled arrivals are skipped, so the two
outputs concatenate to exactly the uninterrupted run's decisions:

  $ head -100 arrivals.ndjson | ltc serve --load wl.inst -a LAF --journal part.j --checkpoint-every 64 > part1.out
  serve: algorithm=LAF consumed=100 (resumed at 0, skipped 0) latency=100 completed=false
  $ ltc serve --resume part.j < arrivals.ndjson > part2.out
  serve: algorithm=LAF consumed=269 (resumed at 100, skipped 100) latency=269 completed=true
  $ cat part1.out part2.out | cmp - full.out && echo identical
  identical

Compaction keeps the journal bounded: after 269 events with snapshots
every 64, the file holds one snapshot and only the post-snapshot tail:

  $ grep -c '^snapshot$' full.j
  1
  $ grep -c '^w ' full.j
  13

ltc_service_* metrics flow through the shared registry (5 compactions of
50 events at --checkpoint-every 10):

  $ head -50 arrivals.ndjson | ltc serve --load wl.inst -a LAF --journal m.j --checkpoint-every 10 --metrics m.prom --metrics-format prom > /dev/null
  serve: algorithm=LAF consumed=50 (resumed at 0, skipped 0) latency=48 completed=false
  $ grep -o '^ltc_service_[a-z_]*' m.prom | sort -u
  ltc_service_feed_seconds_bucket
  ltc_service_feed_seconds_count
  ltc_service_feed_seconds_sum
  ltc_service_journal_bytes
  ltc_service_snapshots_total
  $ grep '^ltc_service_snapshots_total' m.prom
  ltc_service_snapshots_total{algo="LAF"} 5

Errors are reported cleanly — serving needs an online policy:

  $ ltc serve --load wl.inst -a NOPE < /dev/null
  unknown algorithm "NOPE" (try: Base-off, MCF-LTC, Random, LAF, AAM, LGF-only, LRF-only, Nearest, LAF-dyn, AAM-dyn, Random-dyn)
  [1]
  $ ltc serve --load wl.inst -a MCF-LTC < /dev/null
  ltc: invalid argument: Session: MCF-LTC cannot serve an arrival stream (offline or release-scheduled algorithm)
  [2]
  $ ltc serve < /dev/null
  serve needs --load FILE (or --resume PATH)
  [1]
