The solver registry is listed by `ltc solvers` — one row per backend
with its capability bits (session protocol, potential warm starts,
anytime budgets):

  $ ltc solvers
  NAME         INCREMENTAL  POTENTIALS  ANYTIME
  sspa         false        true        true
  spfa         false        false       true
  incremental  true         false       true

`ltc run --mcf-solver` selects the per-batch flow backend of MCF-LTC.
All backends route the same min-cost flow, so the arrangement — and the
whole outcome line — is identical across them (wall-clock normalised):

  $ ltc run --scale 0.004 --seed 7 --algo MCF-LTC --validate \
  >   | sed 's/([0-9.]* s)/(T s)/' > sspa.out
  $ cat sspa.out
  instance{|T|=12, |W|=160, eps=0.14, acc=sigmoid(dmax=30), scoring=hoeffding, radius=30.}
  
  MCF-LTC: latency=36 assignments=94 completed=true consumed=36 mem=0.01MB  (T s)
    constraints: all satisfied


  $ ltc run --scale 0.004 --seed 7 --algo MCF-LTC --validate --mcf-solver spfa \
  >   | sed 's/([0-9.]* s)/(T s)/' | diff sspa.out -

  $ ltc run --scale 0.004 --seed 7 --algo MCF-LTC --validate --mcf-solver incremental \
  >   | sed 's/([0-9.]* s)/(T s)/' | diff sspa.out -

Unknown backends fail like unknown algorithms do, listing the registry:

  $ ltc run --scale 0.004 --algo MCF-LTC --mcf-solver simplex
  unknown solver "simplex" (try: sspa, spfa, incremental)
  [1]

--mcf-budget-rounds is the anytime cutoff.  A zero budget exhausts every
batch solve, so the greedy completion pass decides everything; the result
is still feasible and complete, and the outcome line reports the degraded
batches (also exported as the solver-anytime degradation counter,
separate from the engine's fallback-policy label):

  $ ltc run --scale 0.004 --seed 7 --algo MCF-LTC --validate \
  >   --mcf-budget-rounds 0 --metrics snap.prom --metrics-format prom \
  >   | sed 's/([0-9.]* s)/(T s)/'
  instance{|T|=12, |W|=160, eps=0.14, acc=sigmoid(dmax=30), scoring=hoeffding, radius=30.}
  
  MCF-LTC: latency=33 assignments=96 completed=true consumed=36 mem=0.01MB degraded=4  (T s)
    constraints: all satisfied


  $ grep '^ltc_engine_degraded_total' snap.prom
  ltc_engine_degraded_total{algo="MCF-LTC",fallback="solver-anytime"} 4

A lavish budget never fires and reproduces the exact solve:

  $ ltc run --scale 0.004 --seed 7 --algo MCF-LTC --validate \
  >   --mcf-budget-rounds 100000 | sed 's/([0-9.]* s)/(T s)/' | diff sspa.out -
