Sharded chaos: drive a supervised domain-per-shard server under
per-shard scoped fault plans — each shard gets its own seeded schedule
of crashes, torn writes, transient I/O errors and decide delays — and
verify that killing and restoring individual shards online leaves the
merged decision stream byte-identical to an unsupervised fault-free
baseline.

  $ ltc generate -T 6 -W 40 --scale 1.0 --seed 3 -o wl.inst
  instance{|T|=6, |W|=40, eps=0.14, acc=sigmoid(dmax=30), scoring=hoeffding, radius=30.}
  saved to wl.inst

Every shard is killed several times (the per-shard restart vector), every
kill is restored online with its mailbox re-fed, nothing is quarantined,
and the merge layer loses and duplicates nothing (exit 0 = identical):

  $ ltc chaos --load wl.inst -a LAF --seed 7 --fault-seed 29 --shards 3 --horizon 8 --journal chaos.j
  chaos: algorithm=LAF shards=3 arrivals=40 seed=7 fault-seed=29
  chaos: plan: 3 crashes, 2 io-errors, 2 torn-writes, 2 delays per shard (horizon 8)
  chaos: fired: crashes=4 io-errors=4 torn-writes=6 delays=6
  chaos: restarts=13 (4,5,4) quarantined=0 shed=0 degraded=0
  chaos: merged decision stream identical to fault-free baseline

The base path left behind is a shard manifest, and `journal inspect`
enumerates every shard journal under it — codec, record counts, durable
prefix and torn-tail status:

  $ head -1 chaos.j
  ltc-shard-manifest v1

  $ ltc journal inspect chaos.j
  manifest: chaos.j
  shards: 3
  mailbox: 64
  algorithm: LAF
  seed: 7
  accept_rate: none
  checkpoint_every: 8
  fsync: true
  codec: text
  group_commit: 1
  deadline: none
  tasks: 6
  shard 0: chaos.j.shard0: codec=text snapshots=1 events=6 consumed=21 bytes=758 clean
  shard 1: chaos.j.shard1: codec=text snapshots=1 events=2 consumed=12 bytes=599 clean
  shard 2: chaos.j.shard2: codec=text snapshots=1 events=2 consumed=7 bytes=518 clean

A zero restart budget quarantines each shard at its first crash instead:
the quarantined shards' arrivals come back as explicit unassigned
degraded acks — every arrival is still acknowledged, the merge layer
never hangs — but the stream diverges from the baseline by design
(exit 1):

  $ ltc chaos --load wl.inst -a LAF --seed 7 --fault-seed 29 --shards 3 --horizon 8 --max-restarts 0 --journal q.j
  chaos: algorithm=LAF shards=3 arrivals=40 seed=7 fault-seed=29
  chaos: plan: 3 crashes, 2 io-errors, 2 torn-writes, 2 delays per shard (horizon 8)
  chaos: fired: crashes=1 io-errors=1 torn-writes=1 delays=0
  chaos: restarts=0 (0,0,0) quarantined=3 shed=0 degraded=38
  chaos: DIVERGED: arrival 2: baseline {assigned=[]; answered=[]; completed=false; latency=0} vs survived {assigned=[]; answered=[]; completed=false; latency=0; degraded}
  [1]
