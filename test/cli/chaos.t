Chaos replay: run a workload under a seeded fault plan — crashes, torn
writes, transient I/O errors, injected solver slowdowns — killing and
restoring the journaled session at every injected crash, and verify the
surviving decision stream is byte-identical to the fault-free baseline.

  $ ltc generate -T 6 -W 40 --scale 1.0 --seed 3 -o wl.inst
  instance{|T|=6, |W|=40, eps=0.14, acc=sigmoid(dmax=30), scoring=hoeffding, radius=30.}
  saved to wl.inst

All four fault classes fire with this plan; the journal survives every
kill (exit 0 = identical stream):

  $ ltc chaos --load wl.inst -a LAF --seed 7 --fault-seed 7 --journal chaos.j
  chaos: algorithm=LAF arrivals=40 seed=7 fault-seed=7
  chaos: plan: 3 crashes, 2 io-errors, 2 torn-writes, 2 delays (horizon 30)
  chaos: fired: crashes=2 io-errors=2 torn-writes=1 delays=2
  chaos: kills=4 restores=4 degraded=0
  chaos: decision stream identical to fault-free baseline

The journal left behind is a valid compacted session:

  $ head -1 chaos.j
  ltc-journal v2

A crash-free plan of pure delays plus a deadline exercises graceful
degradation: the injected slowdowns blow the budget, the fallback
decides those arrivals (identically in baseline and chaos runs), and
the stream still matches:

  $ ltc chaos --load wl.inst -a LAF --seed 7 --fault-seed 7 --crashes 0 --io-errors 0 --torn-writes 0 --delays 4 --deadline 0.05 --fallback Nearest
  chaos: algorithm=LAF arrivals=40 seed=7 fault-seed=7
  chaos: plan: 0 crashes, 0 io-errors, 0 torn-writes, 4 delays (horizon 30)
  chaos: fired: crashes=0 io-errors=0 torn-writes=0 delays=4
  chaos: kills=0 restores=0 degraded=4
  chaos: decision stream identical to fault-free baseline

Other algorithms ride the same harness:

  $ ltc chaos --load wl.inst -a AAM --seed 9 --fault-seed 13 | tail -2
  chaos: kills=4 restores=3 degraded=0
  chaos: decision stream identical to fault-free baseline
