The --jobs flag is validated the same way in the bench harness and the
sweep subcommand:

  $ ltc-bench fig3-K --jobs 0
  --jobs must be at least 1 (got 0)
  [1]

  $ ltc sweep fig3-K --jobs 0
  --jobs must be at least 1 (got 0)
  [1]

The sweep header reports the parsed jobs value (tables themselves carry
wall-clock runtimes, so only the header is pinned here):

  $ ltc sweep fig3-K --scale 0.004 --reps 1 --seed 7 --jobs 2 | head -1
  fig3-K (Fig 3b, 3f, 3j), scale=0.004 reps=1 seed=7 jobs=2

--json writes one object per figure, keyed BENCH_<id>.  Values are
machine-dependent (wall time, throughput); the schema keys are not:

  $ ltc-bench fig3-K --scale 0.004 --reps 1 --seed 7 --jobs 2 --json bench.json > /dev/null
  $ sed -e 's/: "[^"]*"/: _/g' -e 's/: [0-9][0-9.e+-]*/: _/g' bench.json
  {
    "BENCH_fig3-K": {"id": _, "scale": _, "reps": _, "jobs": _, "seed": _, "wall_s": _, "runs": _, "runs_per_sec": _}
  }

The recorded jobs/reps/seed round-trip the command line exactly:

  $ grep -o '"reps": 1, "jobs": 2, "seed": 7' bench.json
  "reps": 1, "jobs": 2, "seed": 7

The run count is the |settings| x reps x |algorithms| product of the
sweep (5 x 1 x 5 for fig3-K):

  $ grep -o '"runs": 25' bench.json
  "runs": 25

flow-batch-reuse races the min-cost-flow hot-path regimes (cold solves vs
reused arena + DAG/warm potentials) on identical batch sequences.  Its
JSON entry is numeric-only; timings and speedups vary, the schema and the
cross-variant checksums (one per shape: the 8-worker trickle and the
~100x batch) do not.  --scale shrinks the task plane and the 100x batch
width so the smoke run stays fast:

  $ ltc-bench flow-batch-reuse --scale 0.02 --json flow.json > /dev/null
  $ sed -e 's/: [0-9][0-9.e+-]*/: _/g' flow.json
  {
    "BENCH_flow_batch": {"batches": _, "nodes": _, "arcs": _, "flow_units": _, "cold_bf_s": _, "reuse_dag_s": _, "reuse_warm_s": _, "incremental_s": _, "speedup_dag": _, "speedup_warm": _, "speedup_incremental": _, "checksum_ok": _, "x100_batches": _, "x100_nodes": _, "x100_arcs": _, "x100_flow_units": _, "x100_cold_bf_s": _, "x100_reuse_dag_s": _, "x100_reuse_warm_s": _, "x100_incremental_s": _, "x100_speedup_dag": _, "x100_speedup_warm": _, "x100_speedup_incremental": _, "x100_checksum_ok": _}
  }

  $ grep -o '"checksum_ok": 1' flow.json
  "checksum_ok": 1
  $ grep -o '"x100_checksum_ok": 1' flow.json
  "x100_checksum_ok": 1

serve-replay races the streaming service's three regimes — plain feed,
journaled feed and checkpoint/restore — on one arrival stream.  Timings
vary; the schema and the cross-run identity checksum do not:

  $ ltc-bench serve-replay --json serve.json > /dev/null
  $ sed -e 's/: [0-9][0-9.e+-]*/: _/g' serve.json
  {
    "BENCH_serve_replay": {"events": _, "tail_events": _, "tail_events_binary": _, "checkpoint_every": _, "group_commit": _, "feed_s": _, "feed_journal_text_s": _, "feed_journal_binary_s": _, "restore_text_s": _, "restore_binary_s": _, "feed_per_s": _, "feed_journal_text_per_s": _, "feed_journal_binary_per_s": _, "replay_text_per_s": _, "replay_binary_per_s": _, "journal_speedup": _, "identical": _}
  }

  $ grep -o '"identical": 1' serve.json
  "identical": 1

chaos-replay times a full Chaos.run pass — fault-free baseline, then the
same stream under scripted faults with kill/restore at every injected
crash — plus the supervised sharded scenario, where every crash is an
online shard restore under a per-shard scoped plan.  Timings vary; the
schema and both survival checksums do not:

  $ ltc-bench chaos-replay --json chaos.json > /dev/null
  $ sed -e 's/: [0-9][0-9.e+-]*/: _/g' chaos.json
  {
    "BENCH_chaos_replay": {"arrivals": _, "checkpoint_every": _, "plan_faults": _, "kills": _, "restores": _, "degraded": _, "chaos_s": _, "arrivals_per_s": _, "identical": _, "shards": _, "sharded_plan_faults": _, "shard_restarts": _, "shard_quarantined": _, "shard_shed": _, "sharded_chaos_s": _, "sharded_arrivals_per_s": _, "sharded_identical": _}
  }

  $ grep -o '"identical": 1' chaos.json
  "identical": 1

  $ grep -o '"sharded_identical": 1' chaos.json
  "sharded_identical": 1

Every shard was restored online at least once and none were quarantined:

  $ grep -o '"shard_restarts": [0-9]*' chaos.json | awk '{exit !($2 >= 4)}'
  $ grep -o '"shard_quarantined": 0' chaos.json
  "shard_quarantined": 0

loadgen times an open-loop Loadgen pass — a flash crowd with exponential
service times against a deadline session on the virtual clock.  Timings
vary; the schema and the cross-pass determinism checksum do not:

  $ ltc-bench loadgen --json loadgen.json > /dev/null
  $ sed -e 's/: [0-9][0-9.e+-]*/: _/g' loadgen.json
  {
    "BENCH_loadgen": {"arrivals": _, "consumed": _, "degraded": _, "breaches": _, "offered_per_s": _, "achieved_per_s": _, "p50_s": _, "p99_s": _, "p999_s": _, "max_s": _, "loadgen_s": _, "arrivals_per_s": _, "identical": _}
  }

  $ grep -o '"identical": 1' loadgen.json
  "identical": 1

serve-shard races the sharded server (1/2/4/8 spatial shards, one
domain per shard) against a single session on a clustered, shard-local
arrival stream.  Timings and the core-scaled speedup bar vary by host;
the schema and the cross-variant identity checksum do not:

  $ ltc-bench serve-shard --json shard.json > /dev/null
  $ sed -e 's/: [0-9][0-9.e+-]*/: _/g' shard.json
  {
    "BENCH_serve_shard": {"arrivals": _, "tasks": _, "clusters": _, "cores": _, "feed_single_s": _, "feed_shard1_s": _, "feed_shard2_s": _, "feed_shard4_s": _, "feed_shard8_s": _, "single_per_s": _, "shard4_per_s": _, "speedup_shard4": _, "speedup_shard8": _, "expected_speedup_shard4": _, "scaling_ok": _, "identical": _}
  }

  $ grep -o '"identical": 1' shard.json
  "identical": 1
