The --jobs flag is validated the same way in the bench harness and the
sweep subcommand:

  $ ltc-bench fig3-K --jobs 0
  --jobs must be at least 1 (got 0)
  [1]

  $ ltc sweep fig3-K --jobs 0
  --jobs must be at least 1 (got 0)
  [1]

The sweep header reports the parsed jobs value (tables themselves carry
wall-clock runtimes, so only the header is pinned here):

  $ ltc sweep fig3-K --scale 0.004 --reps 1 --seed 7 --jobs 2 | head -1
  fig3-K (Fig 3b, 3f, 3j), scale=0.004 reps=1 seed=7 jobs=2

--json writes one object per figure, keyed BENCH_<id>.  Values are
machine-dependent (wall time, throughput); the schema keys are not:

  $ ltc-bench fig3-K --scale 0.004 --reps 1 --seed 7 --jobs 2 --json bench.json > /dev/null
  $ sed -e 's/: "[^"]*"/: _/g' -e 's/: [0-9][0-9.e+-]*/: _/g' bench.json
  {
    "BENCH_fig3-K": {"id": _, "scale": _, "reps": _, "jobs": _, "seed": _, "wall_s": _, "runs": _, "runs_per_sec": _}
  }

The recorded jobs/reps/seed round-trip the command line exactly:

  $ grep -o '"reps": 1, "jobs": 2, "seed": 7' bench.json
  "reps": 1, "jobs": 2, "seed": 7

The run count is the |settings| x reps x |algorithms| product of the
sweep (5 x 1 x 5 for fig3-K):

  $ grep -o '"runs": 25' bench.json
  "runs": 25
