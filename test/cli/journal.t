Offline journal tooling: inspect a session journal's header and record
structure, convert between the text and binary codecs, and prove the
conversion preserves the restore fingerprint exactly.

  $ ltc generate -T 6 -W 40 --scale 1.0 --seed 3 -o wl.inst
  instance{|T|=6, |W|=40, eps=0.14, acc=sigmoid(dmax=30), scoring=hoeffding, radius=30.}
  saved to wl.inst
  $ awk '/^w /{printf "{\"index\":%d,\"x\":%s,\"y\":%s,\"accuracy\":%s,\"capacity\":%d}\n",$2,$3,$4,$5,$6}' wl.inst > arrivals.ndjson

Serve the same stream under both codecs.  The binary session batches 8
records per write (group commit); the decision streams are identical:

  $ ltc serve --load wl.inst -a LAF --journal text.j --checkpoint-every 16 < arrivals.ndjson > text.out
  serve: algorithm=LAF consumed=40 (resumed at 0, skipped 0, bad 0) latency=0 completed=false
  $ ltc serve --load wl.inst -a LAF --journal bin.j --checkpoint-every 16 --journal-format binary --group-commit 8 < arrivals.ndjson > bin.out
  serve: algorithm=LAF consumed=40 (resumed at 0, skipped 0, bad 0) latency=0 completed=false
  $ cmp text.out bin.out && echo identical
  identical

inspect reads the header and walks the records without building a
session.  The text journal compacted at every checkpoint; the binary
journal appends snapshots instead (compaction only every 16th), so it
keeps the full event history:

  $ ltc journal inspect text.j
  journal: text.j
  version: v2
  codec: text
  algorithm: LAF
  seed: 42
  accept_rate: none
  checkpoint_every: 16
  deadline: none
  tasks: 6
  file_bytes: 997
  torn_bytes: 0
  snapshots: 1
  events: 8
  consumed: 40
  snapshot_offsets: 293
  $ ltc journal inspect bin.j
  journal: bin.j
  version: v3
  codec: binary
  algorithm: LAF
  seed: 42
  accept_rate: none
  checkpoint_every: 16
  deadline: none
  tasks: 6
  file_bytes: 2090
  torn_bytes: 0
  snapshots: 2
  events: 40
  consumed: 40
  snapshot_offsets: 914 1654

convert re-encodes record for record, in both directions:

  $ ltc journal convert text.j conv-bin.j --to binary
  converted text.j -> conv-bin.j (binary, 742 bytes, 1 snapshots, 8 events)
  $ ltc journal convert bin.j conv-text.j --to text
  converted bin.j -> conv-text.j (text, 2877 bytes, 2 snapshots, 40 events)

All four journals restore to the same fingerprint (consumed, latency,
both RNG states) — conversion loses nothing the session depends on:

  $ ltc journal inspect text.j --fingerprint | tail -1 > fp.expected
  $ cat fp.expected
  fingerprint: consumed=40 latency=0 rng=-4767286540954276203,2949826092126892291 completed=false
  $ for f in bin.j conv-bin.j conv-text.j; do ltc journal inspect $f --fingerprint | tail -1; done | uniq | cmp - fp.expected && echo parity
  parity

Chaos replay rides the binary codec too: crashes and torn writes land
inside group-commit batches, every kill restores from the last commit
boundary, and the surviving stream still matches the fault-free
baseline byte for byte:

  $ ltc generate -T 40 -W 600 --scale 1.0 --seed 3 -o big.inst
  instance{|T|=40, |W|=600, eps=0.14, acc=sigmoid(dmax=30), scoring=hoeffding, radius=30.}
  saved to big.inst
  $ ltc chaos --load big.inst -a LAF --seed 7 --fault-seed 9 --journal-format binary --group-commit 8 --checkpoint-every 64 --journal chaos.j
  chaos: algorithm=LAF arrivals=600 seed=7 fault-seed=9
  chaos: plan: 3 crashes, 2 io-errors, 2 torn-writes, 2 delays (horizon 30)
  chaos: fired: crashes=2 io-errors=0 torn-writes=2 delays=2
  chaos: kills=4 restores=3 degraded=0
  chaos: decision stream identical to fault-free baseline

The journal that survives the chaos run is a valid v3 binary journal:

  $ ltc journal inspect chaos.j | grep -E '^(version|codec|consumed):'
  version: v3
  codec: binary
  consumed: 600

Errors are reported cleanly — a missing or non-file path is a
structured one-line diagnostic with a nonzero exit, not a raw Sys_error
backtrace:

  $ ltc journal convert text.j text.j --to binary
  journal convert: SRC and DST must differ
  [1]
  $ ltc journal inspect missing.j
  journal inspect: missing.j: no such file
  [1]
  $ mkdir journal.d
  $ ltc journal inspect journal.d
  journal inspect: journal.d is a directory, not a journal file
  [1]
  $ ltc journal convert missing.j out.j --to binary
  journal convert: missing.j: no such file
  [1]
