The Theorem-2 bounds command is pure arithmetic and fully deterministic:

  $ ltc bounds -T 3000 -e 0.14 -K 6
  |T| = 3000, eps = 0.14, K = 6
  delta (2 ln 1/eps)          = 3.9322
  Theorem-2 lower bound       = 1966.1 workers
  Theorem-2 upper bound       = 20162.1 workers
  McNaughton optimum at r=1   = 2000 workers
  McNaughton optimum at r=0.5 = 4000 workers

The running example replays Tables I-II (see DESIGN.md for why MCF-LTC
and AAM differ from the paper's prose):

  $ ltc example
  The paper's running example lives in examples/facebook_editor.ml:
  
    dune exec examples/facebook_editor.exe
  
  Quick summary on this build:
    Base-off latency = 8
    MCF-LTC  latency = 7
    Random   latency = 6
    LAF      latency = 8
    AAM      latency = 6

Generate a dense (completable) workload, save, reload, run and audit.
Wall-clock timings are normalised so the expectation stays stable:

  $ ltc generate -T 200 -W 20000 --scale 0.05 --seed 3 -o wl.inst
  instance{|T|=10, |W|=1000, eps=0.14, acc=sigmoid(dmax=30), scoring=hoeffding, radius=30.}
  saved to wl.inst

  $ ltc run --load wl.inst --algo LAF --validate | sed 's/([0-9.]* s)/(T s)/'
  instance{|T|=10, |W|=1000, eps=0.14, acc=sigmoid(dmax=30), scoring=hoeffding, radius=30.}
  
  LAF: latency=269 assignments=92 completed=true consumed=269 mem=0.00MB  (T s)
    constraints: all satisfied

  $ ltc run --load wl.inst --algo AAM --save-arrangement out.arr | sed 's/([0-9.]* s)/(T s)/'
  instance{|T|=10, |W|=1000, eps=0.14, acc=sigmoid(dmax=30), scoring=hoeffding, radius=30.}
  
  AAM: latency=269 assignments=92 completed=true consumed=269 mem=0.00MB  (T s)
    arrangement saved to out.arr

  $ head -2 out.arr
  ltc-arrangement v1
  assignments 92

The observability layer: --metrics - appends a snapshot to stdout after
the run.  Wall-clock durations live in histogram sums (not pinned), but
counters and histogram counts are deterministic for a fixed instance:

  $ ltc run --load wl.inst --metrics - --metrics-format prom > snap.prom
  $ grep -E '^(ltc_engine_arrivals_total|ltc_engine_stops_total|ltc_flow_mcmf_runs_total|ltc_mcf_batches_total)' snap.prom
  ltc_engine_arrivals_total{algo="AAM"} 269
  ltc_engine_arrivals_total{algo="Base-off"} 269
  ltc_engine_arrivals_total{algo="LAF"} 269
  ltc_engine_arrivals_total{algo="Random"} 269
  ltc_engine_stops_total{algo="AAM",reason="completed"} 1
  ltc_engine_stops_total{algo="Base-off",reason="completed"} 1
  ltc_engine_stops_total{algo="LAF",reason="completed"} 1
  ltc_engine_stops_total{algo="Random",reason="completed"} 1
  ltc_flow_mcmf_runs_total{solver="spfa"} 0
  ltc_flow_mcmf_runs_total{solver="sspa"} 45
  ltc_mcf_batches_total 45

  $ grep -c '^ltc_engine_decision_seconds_bucket{algo="LAF"' snap.prom
  13

The JSON snapshot additionally carries the span tree: one engine span
per run, with one child per MCF-LTC batch and one grandchild per flow
solve:

  $ ltc run --load wl.inst --algo MCF-LTC --metrics - --metrics-format json | tail -1 > snap.json
  $ grep -o '"name":"engine:MCF-LTC"' snap.json | wc -l
  1
  $ grep -o '"name":"mcf-ltc.batch"' snap.json | wc -l
  45
  $ grep -o '"name":"mcmf.solve"' snap.json | wc -l
  45
  $ grep -o '"dropped_spans":[0-9]*' snap.json
  "dropped_spans":0

Snapshots can go to a file instead, and --log tunes one source without
drowning in the others (the obs source reports the write):

  $ ltc run --load wl.inst --algo LAF --metrics laf.json --log obs:info 2>&1 >/dev/null
  [info] ltc.obs metrics snapshot (json) written to laf.json
  $ grep -c '"name":"ltc_engine_decision_seconds"' laf.json
  1

A sparse workload is caught by the feasibility screen before any
algorithm wastes time on it:

  $ ltc generate -T 6 -W 120 --scale 1 --seed 3 -o sparse.inst
  instance{|T|=6, |W|=120, eps=0.14, acc=sigmoid(dmax=30), scoring=hoeffding, radius=30.}
  saved to sparse.inst

  $ ltc run --load sparse.inst --algo AAM --screen | grep -E "screen|bound"
  feasibility screen: certified infeasible (routed 0 of 0 demand units; 6 starved tasks)
  flow lower bound: instance cannot complete

Unknown algorithms are rejected with a helpful message:

  $ ltc run --load wl.inst --algo Astar
  instance{|T|=10, |W|=1000, eps=0.14, acc=sigmoid(dmax=30), scoring=hoeffding, radius=30.}
  
  unknown algorithm "Astar" (try: Base-off, MCF-LTC, Random, LAF, AAM, LGF-only, LRF-only, Nearest, LAF-dyn, AAM-dyn, Random-dyn)
  [1]

Missing and corrupt input files fail cleanly (no backtrace):

  $ ltc run --load does-not-exist.inst
  ltc: does-not-exist.inst: No such file or directory
  [2]

  $ echo "not an instance" > corrupt.inst
  $ ltc run --load corrupt.inst
  ltc: parse error at line 1: bad header "not an instance"
  [2]

Truth inference from a raw answer file (workers 1-3 vote on tasks 0-1;
worker 3 is a contrarian):

  $ cat > answers.txt <<'ANSWERS'
  > 1 0 Y
  > 2 0 Y
  > 3 0 N
  > 1 1 N
  > 2 1 N
  > 3 1 Y
  > ANSWERS

  $ ltc infer answers.txt
  6 observations, 3 workers, 2 tasks
  
  one-coin EM: 5 iterations
  
  worker  p_w
  w1      0.990
  w2      0.990
  w3      0.510

  $ ltc infer answers.txt --two-coin | head -4
  6 observations, 3 workers, 2 tasks
  
  two-coin EM: 5 iterations, prevalence 0.500
  

  $ echo "1 0 MAYBE" > bad.txt
  $ ltc infer bad.txt
  ltc: line 1: bad answer "MAYBE"
  [2]
