Sharded serving: spatial partitioning over a domain-per-shard runtime.
On a clustered, shard-local workload (every candidate task in its
worker's own grid cell) the merged decision stream is byte-identical to
a single un-sharded session.

Hand-build a two-cluster instance — clusters at x=15 and x=105 with
candidate radius 30, so grid cells (side = radius) never mix them:

  $ awk 'BEGIN{
  >   print "ltc-instance v1";
  >   print "epsilon 0.25";
  >   print "accuracy sigmoid 30";
  >   print "scoring hoeffding";
  >   print "radius 30";
  >   print "tasks 4";
  >   print "t 0 10 10"; print "t 1 20 10";
  >   print "t 2 100 10"; print "t 3 110 10";
  >   n = 40; print "workers " n;
  >   for (i = 1; i <= n; i++) {
  >     c = i % 2; x = 15 + 90*c + (i%5)*2 - 4;
  >     printf "w %d %d 10 %.2f 1\n", i, x, 0.8 + (i%3)*0.05;
  >   }
  > }' > clustered.inst
  $ awk '/^w /{printf "{\"index\":%d,\"x\":%s,\"y\":%s,\"accuracy\":%s,\"capacity\":%d}\n",$2,$3,$4,$5,$6}' clustered.inst > arrivals.ndjson

The single-session baseline:

  $ ltc serve --load clustered.inst -a LAF < arrivals.ndjson > single.out
  serve: algorithm=LAF consumed=25 (resumed at 0, skipped 0, bad 0) latency=25 completed=true

The same stream through 2 spatial shards (one domain per shard) emits
byte-identical decisions in the same global order:

  $ ltc serve --load clustered.inst -a LAF --shards 2 < arrivals.ndjson > shard2.out
  serve: algorithm=LAF shards=2 consumed=25 (resumed at 0, skipped 0, bad 0) latency=25 completed=true stalls=0
  $ cmp single.out shard2.out && echo identical
  identical

So does a deliberately over-sharded run (empty shards are harmless):

  $ ltc serve --load clustered.inst -a LAF --shards 4 < arrivals.ndjson > shard4.out
  serve: algorithm=LAF shards=4 consumed=25 (resumed at 0, skipped 0, bad 0) latency=25 completed=true stalls=0
  $ cmp single.out shard4.out && echo identical
  identical

With --journal BASE the manifest lands at BASE and each shard journals
to BASE.shard<k>:

  $ head -14 arrivals.ndjson | ltc serve --load clustered.inst -a LAF --shards 2 --journal s.j > part1.out
  serve: algorithm=LAF shards=2 consumed=14 (resumed at 0, skipped 0, bad 0) latency=14 completed=false stalls=0
  $ head -1 s.j
  ltc-shard-manifest v1
  $ ls s.j.shard*
  s.j.shard0
  s.j.shard1

--resume auto-detects the manifest (no --shards needed — the shard
count, algorithm and instance are restored from it); re-piping the whole
stream skips already-durable arrivals per shard, so the two outputs
concatenate to exactly the uninterrupted run's decisions:

  $ ltc serve --resume s.j < arrivals.ndjson > part2.out
  serve: algorithm=LAF shards=2 consumed=25 (resumed at 14, skipped 14, bad 0) latency=25 completed=true stalls=0
  $ cat part1.out part2.out | cmp - shard2.out && echo identical
  identical

The open-loop load generator drives the same sharded runtime (virtual
timing, so the run is deterministic) and reports per-shard percentiles
plus mailbox backpressure stalls next to the merged report:

  $ ltc loadgen --load clustered.inst -a LAF --shape burst --rate 500 --arrivals 40 --seed 7 --service-mean 0.0002 --shards 2
  loadgen: shape=burst(rate=500,factor=8,at=10,dur=5) timing=virtual algo=LAF seed=7
    arrivals: offered=25 consumed=25 completed=true degraded=0
    throughput: offered=500/s achieved=498.008/s makespan=0.0502s
    latency: mean=0.0002s p50=0.0002s p99=0.0002s p999=0.0002s max=0.0002s
    flight recorder: 25 records (capacity 4096, dropped 0)
    shards: 2 mailbox_stalls=0 restarts=0 quarantined=0 shed=0
      shard 0: arrivals=13 p50=0.0002s p99=0.0002s
      shard 1: arrivals=12 p50=0.0002s p99=0.0002s

Errors are reported cleanly:

  $ ltc serve --load clustered.inst -a LAF --shards 0 < /dev/null
  ltc: invalid argument: Shard_server.create: shards must be >= 1
  [2]
  $ ltc serve --resume s.j --shards 2 < /dev/null
  --resume restores the shard count from the manifest; drop --shards
  [1]
