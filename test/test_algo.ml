open Ltc_core
open Ltc_algo

(* ------------------------------------------- the paper's running example *)

(* Example 1: optimal offline arrangement needs 5 workers (Table I, bold). *)
let test_example1_optimal () =
  let i = Fixtures.example1 () in
  match Optimal.solve i with
  | None -> Alcotest.fail "example must be solvable"
  | Some (latency, arrangement) ->
    Alcotest.(check int) "optimal latency" 5 latency;
    (match Arrangement.validate i arrangement with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "optimal witness must validate")

(* Example 2: the paper's prose claims MCF-LTC stops at worker 6, but that
   contradicts its own reduction: the minimum-cost max-flow on Table I is
   5 x 0.9216 + 7 x 0.8464 (total Acc* 10.533), and no selection confined to
   w1..w6 reaches that value (best is 10.461), so a cost-optimal flow MUST
   recruit beyond w6 — the paper's Fig. 2b flow is not cost-optimal.  Our
   SSPA finds the equal-cost solution with the smallest max index: 7. *)
let test_example2_mcf () =
  let i = Fixtures.example2 () in
  let o = Mcf_ltc.run i in
  Alcotest.(check bool) "completed" true o.Engine.completed;
  Alcotest.(check int) "latency 7 (cost-optimal flow)" 7 o.Engine.latency;
  match Arrangement.validate i o.Engine.arrangement with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "MCF arrangement must validate"

(* Example 3: LAF needs all 8 workers. *)
let test_example3_laf () =
  let i = Fixtures.example2 () in
  let o = Laf.run i in
  Alcotest.(check bool) "completed" true o.Engine.completed;
  Alcotest.(check int) "latency 8" 8 o.Engine.latency

(* Example 4: the paper's hand trace reports 7, but it deviates from
   Algorithm 3 at w3: with S = {1.768, 1.768, 0} the pseudocode computes
   avg = 6.121/2 = 3.06 < maxRemain = 3.22 and must already switch to LRF
   (the prose keeps LGF "same as LAF" for w3).  Following Algorithm 3
   faithfully, w3 takes {t3, t1}, and everything completes at worker 6 —
   beating both the paper's trace and LAF by two workers. *)
let test_example4_aam () =
  let i = Fixtures.example2 () in
  let o = Aam.run i in
  Alcotest.(check bool) "completed" true o.Engine.completed;
  Alcotest.(check int) "latency 6 (faithful Algorithm 3)" 6 o.Engine.latency

(* The w3 LRF switch that the paper's prose misses. *)
let test_example4_aam_trace () =
  let i = Fixtures.example2 () in
  let o = Aam.run i in
  let a = o.Engine.arrangement in
  Alcotest.(check (list int)) "w1 takes t1, t2" [ 0; 1 ]
    (Arrangement.tasks_of_worker a 1);
  Alcotest.(check (list int)) "w2 takes t1, t2" [ 0; 1 ]
    (Arrangement.tasks_of_worker a 2);
  Alcotest.(check (list int)) "w3 switches to LRF: t1, t3" [ 0; 2 ]
    (Arrangement.tasks_of_worker a 3)

(* The LAF trace of Example 3: w1..w4 all work on t1 and t2. *)
let test_example3_laf_trace () =
  let i = Fixtures.example2 () in
  let o = Laf.run i in
  let a = o.Engine.arrangement in
  List.iter
    (fun w ->
      Alcotest.(check (list int))
        (Printf.sprintf "worker %d on t1, t2" w)
        [ 0; 1 ] (Arrangement.tasks_of_worker a w))
    [ 1; 2; 3; 4 ];
  (* w5..w8 mop up t3. *)
  List.iter
    (fun w ->
      Alcotest.(check (list int))
        (Printf.sprintf "worker %d on t3" w)
        [ 2 ] (Arrangement.tasks_of_worker a w))
    [ 5; 6; 7; 8 ]

(* Theorem 4: the adversarial instance on which every deterministic online
   algorithm is at least 5.5-competitive.  delta = 1 (eps = e^-0.5), K = 1,
   two tasks; w1 has Acc* = 1 on both; every later worker has Acc* = 1 on
   the task the algorithm gave w1 and Acc* = 0.1 on the other.  The
   optimum is 2 (w1 takes the task the adversary will starve); the online
   algorithm needs 1 + ceil(1/0.1) = 11. *)
let theorem4_instance ~first_choice =
  let epsilon = exp (-0.5) in
  (* Acc values realizing Acc* = 1 and Acc* = 0.1. *)
  let acc_of_star star = (1.0 +. sqrt star) /. 2.0 in
  let accuracy =
    Accuracy.Custom
      {
        name = "theorem4";
        f =
          (fun w t ->
            if w.Worker.index = 1 then 1.0
            else if t.Task.id = first_choice then acc_of_star 1.0
            else acc_of_star 0.1);
      }
  in
  let tasks =
    Array.init 2 (fun id ->
        Task.make ~id ~loc:(Ltc_geo.Point.make ~x:(float_of_int id) ~y:0.0) ())
  in
  let workers =
    Array.init 12 (fun i ->
        Worker.make ~index:(i + 1)
          ~loc:(Ltc_geo.Point.make ~x:0.5 ~y:0.0)
          ~accuracy:0.9 ~capacity:1)
  in
  Instance.create ~accuracy ~tasks ~workers ~epsilon ()

let test_theorem4_adversary () =
  (* LAF's deterministic tie-break gives w1 task 0, so the adversary makes
     task 1 the starved one. *)
  let i = theorem4_instance ~first_choice:0 in
  let o = Laf.run i in
  Alcotest.(check bool) "completed" true o.Engine.completed;
  Alcotest.(check (list int)) "w1 got task 0" [ 0 ]
    (Arrangement.tasks_of_worker o.Engine.arrangement 1);
  Alcotest.(check int) "online latency 11" 11 o.Engine.latency;
  match Optimal.solve i with
  | None -> Alcotest.fail "theorem-4 instance must be solvable"
  | Some (opt, _) ->
    Alcotest.(check int) "optimum 2" 2 opt;
    Alcotest.(check bool) "ratio = 5.5 as in Theorem 4" true
      (float_of_int o.Engine.latency /. float_of_int opt = 5.5)

(* ----------------------------------------------------------- the engine *)

let test_engine_stops_at_completion () =
  let i = Fixtures.small_random ~seed:1 () in
  let o = Laf.run i in
  Alcotest.(check bool) "completed" true o.Engine.completed;
  Alcotest.(check bool) "did not consume every worker" true
    (o.Engine.workers_consumed < Instance.worker_count i);
  Alcotest.(check int) "consumed = latency for busy online runs"
    o.Engine.latency o.Engine.workers_consumed

let test_engine_presents_workers_in_arrival_order () =
  let i = Fixtures.small_random ~seed:4 () in
  let seen = ref [] in
  let spy_policy _ _ _ (w : Worker.t) =
    seen := w.Worker.index :: !seen;
    []
  in
  let o = Engine.run ~name:"spy" spy_policy i in
  let seen = List.rev !seen in
  Alcotest.(check int) "consumed everything (policy never assigns)"
    (Instance.worker_count i) o.Engine.workers_consumed;
  Alcotest.(check (list int)) "indexes are 1..n in order"
    (List.init (Instance.worker_count i) (fun k -> k + 1))
    seen

let test_engine_rejects_over_capacity () =
  let i = Fixtures.small_random ~seed:2 () in
  let greedy_policy _ _ _ (w : Worker.t) =
    List.init (w.Worker.capacity + 1) (fun k -> k)
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Engine.run ~name:"bad" greedy_policy i);
       false
     with Engine.Invalid_decision _ -> true)

let test_engine_rejects_duplicates () =
  let i = Fixtures.small_random ~seed:3 () in
  let dup_policy _ _ _ _ = [ 0; 0 ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Engine.run ~name:"dup" dup_policy i);
       false
     with Engine.Invalid_decision _ -> true)

let test_engine_rejects_non_candidates () =
  (* Tasks far apart, radius 30: a policy assigning a remote task dies. *)
  let i = Fixtures.example2 () in
  let i_spatial =
    Instance.create ~accuracy:(Accuracy.Sigmoid { dmax = 1.0 })
      ~tasks:
        [| Task.make ~id:0 ~loc:(Ltc_geo.Point.make ~x:0.0 ~y:0.0) ();
           Task.make ~id:1 ~loc:(Ltc_geo.Point.make ~x:100.0 ~y:0.0) () |]
      ~workers:i.Instance.workers ~epsilon:0.2 ()
  in
  let far_policy _ _ _ _ = [ 1 ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Engine.run ~name:"far" far_policy i_spatial);
       false
     with Engine.Invalid_decision _ -> true)

let test_engine_incomplete_when_starved () =
  (* Two tasks, one worker with capacity 1: cannot complete. *)
  let tasks =
    [| Task.make ~id:0 ~loc:(Ltc_geo.Point.make ~x:0.0 ~y:0.0) () |]
  in
  let workers =
    [| Worker.make ~index:1 ~loc:(Ltc_geo.Point.make ~x:0.0 ~y:0.0)
         ~accuracy:0.9 ~capacity:1 |]
  in
  let i = Instance.create ~tasks ~workers ~epsilon:0.05 () in
  let o = Laf.run i in
  Alcotest.(check bool) "not completed" false o.Engine.completed;
  Alcotest.(check int) "consumed all" 1 o.Engine.workers_consumed

(* -------------------------------------- validity across all algorithms *)

let all_algorithms = Algorithm.paper

(* Registry runs in these suites share one fixed seed; only the Random
   baselines consume it. *)
let run_fixed (algo : Algorithm.t) i = algo.run ~seed:4242 i

let test_all_valid_on_random_instances () =
  List.iter
    (fun seed ->
      let i = Fixtures.small_random ~seed () in
      List.iter
        (fun (algo : Algorithm.t) ->
          let o = run_fixed algo i in
          if not o.Engine.completed then
            Alcotest.failf "%s did not complete (seed %d)" algo.name seed;
          match Arrangement.validate i o.Engine.arrangement with
          | Ok () -> ()
          | Error vs ->
            Alcotest.failf "%s invalid on seed %d: %a" algo.name seed
              (Format.pp_print_list Arrangement.pp_violation)
              vs)
        all_algorithms)
    [ 11; 12; 13 ]

let test_latency_never_below_optimal () =
  List.iter
    (fun seed ->
      let i = Fixtures.micro_random ~seed () in
      match Optimal.solve i with
      | None -> () (* instance not solvable at all: skip *)
      | Some (opt, _) ->
        List.iter
          (fun (algo : Algorithm.t) ->
            let o = run_fixed algo i in
            if o.Engine.completed then
              Alcotest.(check bool)
                (Printf.sprintf "%s >= OPT (seed %d)" algo.name seed)
                true
                (o.Engine.latency >= opt))
          all_algorithms)
    [ 21; 22; 23; 24 ]

let test_theorem2_lower_bound () =
  (* No completed arrangement can beat |T| delta / K when it must route all
     score through capacity-K workers with Acc* <= 1. *)
  List.iter
    (fun seed ->
      let i = Fixtures.small_random ~seed () in
      let low, _ = Bounds.of_instance i in
      List.iter
        (fun (algo : Algorithm.t) ->
          let o = run_fixed algo i in
          if o.Engine.completed then
            Alcotest.(check bool)
              (Printf.sprintf "%s above Theorem-2 lower bound" algo.name)
              true
              (float_of_int o.Engine.latency >= Float.floor low))
        all_algorithms)
    [ 31; 32 ]

let test_mcnaughton () =
  (* 4 tasks, delta 3, r=1, K=2: each task needs 3 workers, 12 assignments
     over capacity 2 => 6 workers; and ceil(delta/r)=3 <= 6. *)
  Alcotest.(check int) "spread bound" 6
    (Bounds.mcnaughton ~n_tasks:4 ~delta:3.0 ~k:2 ~r:1.0);
  (* 1 task, delta 3, K=8: the per-task chain dominates. *)
  Alcotest.(check int) "per-task bound" 3
    (Bounds.mcnaughton ~n_tasks:1 ~delta:3.0 ~k:8 ~r:1.0)

let test_bounds_order () =
  let i = Fixtures.small_random ~seed:5 () in
  let low, high = Bounds.of_instance i in
  Alcotest.(check bool) "lower < upper" true (low < high)

(* ------------------------------------------------- determinism & config *)

let test_runs_deterministic () =
  let i = Fixtures.small_random ~seed:6 () in
  List.iter
    (fun (algo : Algorithm.t) ->
      let a = (run_fixed algo i).Engine.latency in
      let b = (run_fixed algo i).Engine.latency in
      Alcotest.(check int) (algo.name ^ " deterministic") a b)
    all_algorithms

let test_random_seed_changes_runs () =
  let i = Fixtures.small_random ~seed:7 () in
  let a = (Random_assign.run ~seed:1 i).Engine.latency in
  let b = (Random_assign.run ~seed:2 i).Engine.latency in
  let c = (Random_assign.run ~seed:3 i).Engine.latency in
  (* At least one of three seeds should differ (overwhelmingly likely). *)
  Alcotest.(check bool) "seeds matter" true (a <> b || b <> c)

let test_mcf_batch_config () =
  let i = Fixtures.small_random ~seed:8 () in
  let o =
    Mcf_ltc.run
      ~config:
        {
          Mcf_ltc.default_config with
          first_batch_factor = 0.5;
          batch_factor = 0.5;
        }
      i
  in
  Alcotest.(check bool) "small batches still complete" true o.Engine.completed;
  Alcotest.check_raises "invalid factor"
    (Invalid_argument "Mcf_ltc.run: batch factors must be positive") (fun () ->
      ignore
        (Mcf_ltc.run
           ~config:
             { Mcf_ltc.default_config with first_batch_factor = 0.0 }
           i))

let test_mcf_solver_backends () =
  (* Every registered flow backend must yield the same arrangement quality:
     same latency, same assignment count, valid and complete.  The
     incremental session additionally exercises the cross-batch
     residual-reuse path end to end. *)
  List.iter
    (fun seed ->
      let i = Fixtures.small_random ~seed () in
      let run solver =
        Mcf_ltc.run ~config:{ Mcf_ltc.default_config with solver } i
      in
      let base = run "sspa" in
      Alcotest.(check int) "sspa telemetry clean" 0
        base.Engine.telemetry.Engine.degraded;
      List.iter
        (fun solver ->
          let o = run solver in
          (match Arrangement.validate i o.Engine.arrangement with
          | Ok () -> ()
          | Error _ ->
            Alcotest.failf "%s produced an invalid arrangement" solver);
          Alcotest.(check bool) (solver ^ " completes") true
            o.Engine.completed;
          Alcotest.(check int)
            (Printf.sprintf "%s latency (seed %d)" solver seed)
            base.Engine.latency o.Engine.latency;
          Alcotest.(check int)
            (Printf.sprintf "%s assignments (seed %d)" solver seed)
            (Arrangement.size base.Engine.arrangement)
            (Arrangement.size o.Engine.arrangement))
        [ "spfa"; "incremental" ])
    [ 8; 21 ];
  Alcotest.check_raises "unknown solver name surfaces"
    (Invalid_argument
       "Solver.create: unknown solver \"simplex\" (try: sspa, spfa, \
        incremental)") (fun () ->
      ignore
        (Mcf_ltc.run
           ~config:{ Mcf_ltc.default_config with solver = "simplex" }
           (Fixtures.small_random ~seed:8 ())))

let test_mcf_anytime_budget () =
  let i = Fixtures.small_random ~seed:9 () in
  let run ?budget solver =
    Mcf_ltc.run ~config:{ Mcf_ltc.default_config with solver; budget } i
  in
  let exact = run "sspa" in
  (* A budget that can never fire changes nothing and reports clean. *)
  let lavish = run ~budget:(Ltc_flow.Mcmf.Rounds max_int) "sspa" in
  Alcotest.(check int) "lavish budget = exact latency" exact.Engine.latency
    lavish.Engine.latency;
  Alcotest.(check int) "lavish budget never degrades" 0
    lavish.Engine.telemetry.Engine.degraded;
  (* A zero budget starves every batch solve; the greedy completion must
     still produce a feasible, complete arrangement, and every batch is
     counted as degraded. *)
  List.iter
    (fun solver ->
      let o = run ~budget:(Ltc_flow.Mcmf.Rounds 0) solver in
      (match Arrangement.validate i o.Engine.arrangement with
      | Ok () -> ()
      | Error _ ->
        Alcotest.failf "%s starved arrangement invalid" solver);
      Alcotest.(check bool)
        (solver ^ " greedy completion still completes")
        true o.Engine.completed;
      Alcotest.(check bool)
        (solver ^ " degraded batches counted")
        true
        (o.Engine.telemetry.Engine.degraded > 0))
    [ "sspa"; "incremental" ]

let test_mcf_empty_instance () =
  let i =
    Instance.create ~tasks:[||]
      ~workers:
        [| Worker.make ~index:1 ~loc:(Ltc_geo.Point.make ~x:0.0 ~y:0.0)
             ~accuracy:0.9 ~capacity:2 |]
      ~epsilon:0.2 ()
  in
  let o = Mcf_ltc.run i in
  Alcotest.(check bool) "trivially complete" true o.Engine.completed;
  Alcotest.(check int) "latency 0" 0 o.Engine.latency

(* ------------------------------------------------------------ tie_cost *)

(* Pins the documented interplay between the tie perturbation and the flow
   solver's reduced-cost tolerance (Ltc_flow.Mcmf's epsilon = 1e-9): the
   perturbation steers adjacent-worker ties only while |W| < 50, always
   separates workers more than |W|/50 indices apart, and stays far too
   small to outweigh a genuine accuracy difference. *)
let test_tie_cost_epsilon () =
  let mk index =
    Worker.make ~index ~loc:(Ltc_geo.Point.make ~x:0.0 ~y:0.0) ~accuracy:0.9
      ~capacity:1
  in
  let epsilon = 1e-9 in
  for n_workers = 1 to 49 do
    let gap =
      Mcf_ltc.tie_cost ~n_workers (mk 2) -. Mcf_ltc.tie_cost ~n_workers (mk 1)
    in
    Alcotest.(check bool) "adjacent gap above epsilon while |W| < 50" true
      (gap > epsilon)
  done;
  let n_workers = 100 in
  let adjacent =
    Mcf_ltc.tie_cost ~n_workers (mk 8) -. Mcf_ltc.tie_cost ~n_workers (mk 7)
  in
  Alcotest.(check bool) "adjacent gap below epsilon at |W| = 100" true
    (adjacent < epsilon);
  let distant =
    Mcf_ltc.tie_cost ~n_workers (mk 10) -. Mcf_ltc.tie_cost ~n_workers (mk 7)
  in
  Alcotest.(check bool) "3-index gap above epsilon at |W| = 100" true
    (distant > epsilon);
  Alcotest.(check bool) "perturbation bounded by 5e-8" true
    (Mcf_ltc.tie_cost ~n_workers (mk n_workers) <= 5e-8)

let test_tie_prefers_earlier_worker () =
  let tasks =
    [| Task.make ~id:0 ~loc:(Ltc_geo.Point.make ~x:0.0 ~y:0.0) () |]
  in
  let mk index =
    Worker.make ~index ~loc:(Ltc_geo.Point.make ~x:0.0 ~y:0.0) ~accuracy:0.9
      ~capacity:2
  in
  (* epsilon 0.9: Hoeffding threshold 2 ln(1/0.9) ~ 0.21 < Acc* ~ 0.64, so a
     single answer completes the task and the flow routes exactly one unit. *)
  let i = Instance.create ~tasks ~workers:[| mk 1; mk 2 |] ~epsilon:0.9 () in
  (* One buffer holding both (identical) workers: the flow alone decides who
     performs the task, and the tie perturbation must pick worker 1. *)
  let o = Mcf_ltc.run_buffered ~buffer:2 i in
  Alcotest.(check bool) "completed" true o.Engine.completed;
  Alcotest.(check int) "earlier worker preferred" 1 o.Engine.latency

(* ------------------------------------------------------------- optimal *)

let test_optimal_infeasible () =
  let tasks = [| Task.make ~id:0 ~loc:(Ltc_geo.Point.make ~x:0.0 ~y:0.0) () |] in
  let workers =
    [| Worker.make ~index:1 ~loc:(Ltc_geo.Point.make ~x:0.0 ~y:0.0)
         ~accuracy:0.9 ~capacity:1 |]
  in
  let i = Instance.create ~tasks ~workers ~epsilon:0.05 () in
  Alcotest.(check bool) "infeasible" true (Optimal.solve i = None)

let test_optimal_monotone_prefix () =
  let i = Fixtures.micro_random ~seed:33 () in
  match Optimal.solve i with
  | None -> ()
  | Some (opt, _) ->
    Alcotest.(check bool) "prefix opt-1 infeasible" true
      (Optimal.feasible_with i (opt - 1) = None);
    Alcotest.(check bool) "prefix opt feasible" true
      (Optimal.feasible_with i opt <> None)

(* ------------------------------------------------- component strategies *)

let test_strategies_complete_and_validate () =
  let i = Fixtures.small_random ~seed:51 () in
  List.iter
    (fun (algo : Algorithm.t) ->
      let o = run_fixed algo i in
      Alcotest.(check bool) (algo.name ^ " completes") true o.Engine.completed;
      match Arrangement.validate i o.Engine.arrangement with
      | Ok () -> ()
      | Error _ -> Alcotest.failf "%s produced an invalid arrangement" algo.name)
    [ Algorithm.lgf; Algorithm.lrf ]

let test_aam_equals_lgf_before_switch () =
  (* While avg >= maxRemain, AAM must make exactly LGF's choices: on the
     running example both pick the same tasks for w1 and w2. *)
  let i = Fixtures.example2 () in
  let aam = (Aam.run i).Engine.arrangement in
  let lgf = (Strategies.lgf i).Engine.arrangement in
  List.iter
    (fun w ->
      Alcotest.(check (list int))
        (Printf.sprintf "worker %d agrees" w)
        (Arrangement.tasks_of_worker lgf w)
        (Arrangement.tasks_of_worker aam w))
    [ 1; 2 ]

(* ------------------------------------------------------------ feasibility *)

let test_feasibility_screen_passes () =
  let i = Fixtures.small_random ~seed:61 () in
  let v = Feasibility.screen i in
  Alcotest.(check bool) "maybe feasible" true v.Feasibility.feasible_maybe;
  Alcotest.(check (list int)) "no starved tasks" [] v.Feasibility.starved_tasks;
  Alcotest.(check bool) "routed everything" true
    (v.Feasibility.routable_units >= v.Feasibility.required_units)

let test_feasibility_detects_starvation () =
  (* One task, one nearby worker, strict epsilon: the worker's single unit
     cannot reach delta ~ 6. *)
  let tasks = [| Task.make ~id:0 ~loc:(Ltc_geo.Point.make ~x:0.0 ~y:0.0) () |] in
  let workers =
    [| Worker.make ~index:1 ~loc:(Ltc_geo.Point.make ~x:0.0 ~y:0.0)
         ~accuracy:0.9 ~capacity:1 |]
  in
  let i = Instance.create ~tasks ~workers ~epsilon:0.05 () in
  let v = Feasibility.screen i in
  Alcotest.(check bool) "certified infeasible" false v.Feasibility.feasible_maybe;
  Alcotest.(check (list int)) "task 0 starved" [ 0 ] v.Feasibility.starved_tasks

let test_feasibility_agrees_with_optimal () =
  (* On micro instances: whenever the exact solver finds a solution, the
     screen must not have certified infeasibility. *)
  List.iter
    (fun seed ->
      let i = Fixtures.micro_random ~seed () in
      let v = Feasibility.screen i in
      match Optimal.solve i with
      | Some _ ->
        Alcotest.(check bool)
          (Printf.sprintf "screen sound on seed %d" seed)
          true v.Feasibility.feasible_maybe
      | None -> ())
    [ 71; 72; 73; 74; 75 ]

let test_flow_lower_bound_sound () =
  (* The relaxation bound must never exceed the exact optimum. *)
  List.iter
    (fun seed ->
      let i = Fixtures.micro_random ~seed () in
      match (Optimal.solve i, Feasibility.latency_lower_bound i) with
      | Some (opt, _), Some low ->
        Alcotest.(check bool)
          (Printf.sprintf "bound %d <= OPT %d (seed %d)" low opt seed)
          true (low <= opt)
      | Some _, None ->
        Alcotest.fail "relaxation infeasible but exact solver succeeded"
      | None, _ -> ())
    [ 81; 82; 83; 84; 85 ]

let test_flow_lower_bound_tighter_than_theorem2 () =
  (* On a spatially sparse instance the geometry-aware bound dominates the
     Theorem-2 bound (which ignores the candidate radius). *)
  let i = Fixtures.small_random ~seed:86 () in
  match Feasibility.latency_lower_bound i with
  | None -> Alcotest.fail "dense fixture must be feasible"
  | Some low ->
    let t2, _ = Bounds.of_instance i in
    Alcotest.(check bool)
      (Printf.sprintf "flow bound %d vs Theorem-2 %.1f" low t2)
      true
      (float_of_int low >= Float.floor t2)

let test_flow_lower_bound_empty () =
  let i =
    Instance.create ~tasks:[||]
      ~workers:
        [| Worker.make ~index:1 ~loc:(Ltc_geo.Point.make ~x:0.0 ~y:0.0)
             ~accuracy:0.9 ~capacity:2 |]
      ~epsilon:0.2 ()
  in
  Alcotest.(check bool) "zero tasks" true
    (Feasibility.latency_lower_bound i = Some 0)

(* ---------------------------------------------------------------- noshow *)

let noshow_config ~accept_rate ~seed =
  {
    Engine.accept_rate = Some accept_rate;
    rng = Some (Ltc_util.Rng.create ~seed);
    tracker = None;
    degrade = None;
  }

let test_noshow_full_rate_equals_plain_run () =
  let i = Fixtures.small_random ~seed:91 () in
  let a = Laf.run i in
  let b =
    Engine.run
      ~config:(noshow_config ~accept_rate:1.0 ~seed:1)
      ~name:"LAF" Laf.policy i
  in
  Alcotest.(check int) "same latency at q=1" a.Engine.latency b.Engine.latency;
  Alcotest.(check int) "same size" (Arrangement.size a.Engine.arrangement)
    (Arrangement.size b.Engine.arrangement)

let test_noshow_costs_latency () =
  let i = Fixtures.small_random ~seed:92 () in
  let run rate =
    (Engine.run
       ~config:(noshow_config ~accept_rate:rate ~seed:5)
       ~name:"AAM" Aam.policy i)
      .Engine
      .latency
  in
  (* Dropping half the answers cannot make completion faster. *)
  Alcotest.(check bool) "latency grows under no-shows" true
    (run 0.5 >= run 1.0)

let test_noshow_validates () =
  let i = Fixtures.small_random ~seed:93 () in
  let o =
    Engine.run
      ~config:(noshow_config ~accept_rate:0.7 ~seed:3)
      ~name:"AAM" Aam.policy i
  in
  Alcotest.(check bool) "completed" true o.Engine.completed;
  match Arrangement.validate i o.Engine.arrangement with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "answered-only arrangement must validate"

let test_noshow_invalid_rate () =
  let i = Fixtures.small_random ~seed:94 () in
  Alcotest.check_raises "rate 0"
    (Invalid_argument "Engine.run: accept_rate must be in (0, 1]") (fun () ->
      ignore
        (Engine.run
           ~config:(noshow_config ~accept_rate:0.0 ~seed:1)
           ~name:"x" Laf.policy i));
  Alcotest.check_raises "rate without rng"
    (Invalid_argument "Engine.run: accept_rate requires an rng") (fun () ->
      ignore
        (Engine.run
           ~config:
             {
               Engine.accept_rate = Some 0.5;
               rng = None;
               tracker = None;
               degrade = None;
             }
           ~name:"x" Laf.policy i))

(* --------------------------------------------------- qcheck: whole-stack *)

let algo_instance_gen =
  QCheck2.Gen.(
    let* n_tasks = int_range 2 6 in
    let* capacity = int_range 1 4 in
    let* epsilon_centi = int_range 10 30 in
    let* seed = int_range 0 10_000 in
    return (n_tasks, capacity, float_of_int epsilon_centi /. 100.0, seed))

let prop_algorithms_sound =
  QCheck2.Test.make ~name:"any algorithm, any instance: valid and bounded"
    ~count:60 algo_instance_gen
    (fun (n_tasks, capacity, epsilon, seed) ->
      let spec =
        {
          Ltc_workload.Spec.default_synthetic with
          Ltc_workload.Spec.n_tasks;
          n_workers = 300;
          capacity;
          epsilon;
          world_side = 40.0;
        }
      in
      let i =
        Ltc_workload.Synthetic.generate (Ltc_util.Rng.create ~seed) spec
      in
      let flow_bound = Feasibility.latency_lower_bound i in
      List.for_all
        (fun (algo : Algorithm.t) ->
          let o = algo.run ~seed:(seed + 1) i in
          if not o.Engine.completed then true
          else begin
            let valid = Arrangement.validate i o.Engine.arrangement = Ok () in
            let above_flow_bound =
              match flow_bound with
              | None -> false (* completed but relaxation says impossible *)
              | Some low -> o.Engine.latency >= low
            in
            let theorem2 =
              let low, _ = Bounds.of_instance i in
              float_of_int o.Engine.latency >= Float.floor low
            in
            valid && above_flow_bound && theorem2
          end)
        Algorithm.all)

(* ---------------------------------------------------------------- buffered *)

let test_buffered_validates_and_brackets () =
  let i = Fixtures.small_random ~seed:95 () in
  let aam = Aam.run i in
  List.iter
    (fun buffer ->
      let o = Mcf_ltc.run_buffered ~buffer i in
      Alcotest.(check bool)
        (Printf.sprintf "B=%d completes" buffer)
        true o.Engine.completed;
      (match Arrangement.validate i o.Engine.arrangement with
      | Ok () -> ()
      | Error _ -> Alcotest.failf "B=%d invalid" buffer);
      (* Sanity: stays within 3x of AAM on a dense instance. *)
      Alcotest.(check bool)
        (Printf.sprintf "B=%d latency %d sane vs AAM %d" buffer
           o.Engine.latency aam.Engine.latency)
        true
        (o.Engine.latency <= 3 * aam.Engine.latency))
    [ 1; 7; 40 ];
  Alcotest.check_raises "B=0 rejected"
    (Invalid_argument "Mcf_ltc.run_buffered: buffer must be >= 1") (fun () ->
      ignore (Mcf_ltc.run_buffered ~buffer:0 i))

(* ----------------------------------------------------------------- dynamic *)

let test_dynamic_upfront_equals_static () =
  (* With every task released at 0, the dynamic drivers must reproduce the
     static online algorithms exactly. *)
  let i = Fixtures.small_random ~seed:96 () in
  let release = Array.make (Instance.task_count i) 0 in
  let dyn_laf = Dynamic.run ~strategy:Dynamic.Laf_d ~release i in
  let dyn_aam = Dynamic.run ~strategy:Dynamic.Aam_d ~release i in
  Alcotest.(check int) "LAF-dyn = LAF" (Laf.run i).Engine.latency
    dyn_laf.Dynamic.engine.Engine.latency;
  Alcotest.(check int) "AAM-dyn = AAM" (Aam.run i).Engine.latency
    dyn_aam.Dynamic.engine.Engine.latency;
  Alcotest.(check bool) "responses = completion indexes" true
    (dyn_laf.Dynamic.max_response
    = Arrangement.latency dyn_laf.Dynamic.engine.Engine.arrangement)

let test_dynamic_respects_releases () =
  let i = Fixtures.small_random ~seed:97 () in
  let n_tasks = Instance.task_count i in
  (* Every task held back until worker 40. *)
  let release = Array.make n_tasks 40 in
  let o = Dynamic.run ~strategy:Dynamic.Aam_d ~release i in
  Alcotest.(check bool) "completed" true o.Dynamic.engine.Engine.completed;
  List.iter
    (fun (a : Arrangement.assignment) ->
      Alcotest.(check bool) "no assignment before release" true (a.worker >= 40))
    (Arrangement.to_list o.Dynamic.engine.Engine.arrangement);
  (* Response time is measured from release, not from the stream start. *)
  Alcotest.(check bool) "response < latency" true
    (o.Dynamic.max_response
    < o.Dynamic.engine.Engine.latency);
  match Arrangement.validate i o.Dynamic.engine.Engine.arrangement with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "dynamic arrangement must validate"

let test_dynamic_never_completes_unreleased () =
  let i = Fixtures.small_random ~seed:98 () in
  let n_tasks = Instance.task_count i in
  let release = Array.make n_tasks 0 in
  (* One task released far beyond the stream. *)
  release.(0) <- Instance.worker_count i + 100;
  let o = Dynamic.run ~strategy:Dynamic.Laf_d ~release i in
  Alcotest.(check bool) "not completed" false o.Dynamic.engine.Engine.completed;
  Alcotest.(check int) "all others done" (n_tasks - 1) o.Dynamic.completed_tasks;
  Alcotest.(check (list int)) "task 0 untouched" []
    (Arrangement.workers_of_task o.Dynamic.engine.Engine.arrangement 0)

let test_dynamic_validation () =
  let i = Fixtures.small_random ~seed:99 () in
  Alcotest.check_raises "shape mismatch"
    (Invalid_argument "Dynamic.run: release array must have one entry per task")
    (fun () ->
      ignore (Dynamic.run ~strategy:Dynamic.Laf_d ~release:[| 0 |] i));
  Alcotest.check_raises "fraction out of range"
    (Invalid_argument "Dynamic.uniform_releases: fraction out of [0, 1]")
    (fun () ->
      ignore
        (Dynamic.uniform_releases
           (Ltc_util.Rng.create ~seed:1)
           ~n_tasks:3 ~horizon:10 ~upfront_fraction:1.5))

let test_dynamic_uniform_releases_shape () =
  let r =
    Dynamic.uniform_releases
      (Ltc_util.Rng.create ~seed:2)
      ~n_tasks:10 ~horizon:50 ~upfront_fraction:0.5
  in
  Alcotest.(check int) "length" 10 (Array.length r);
  Alcotest.(check int) "five upfront" 5
    (Array.length (Array.of_list (List.filter (( = ) 0) (Array.to_list r))));
  Array.iter
    (fun x -> Alcotest.(check bool) "within horizon" true (x >= 0 && x <= 50))
    r

(* ------------------------------------------------------------- transforms *)

let heterogeneous_instance () =
  let tasks =
    [| Task.make ~id:0 ~loc:(Ltc_geo.Point.make ~x:0.0 ~y:0.0) () |]
  in
  let workers =
    [|
      Worker.make ~index:1 ~loc:(Ltc_geo.Point.make ~x:1.0 ~y:0.0)
        ~accuracy:0.9 ~capacity:5;
      Worker.make ~index:2 ~loc:(Ltc_geo.Point.make ~x:2.0 ~y:0.0)
        ~accuracy:0.8 ~capacity:2;
      Worker.make ~index:3 ~loc:(Ltc_geo.Point.make ~x:3.0 ~y:0.0)
        ~accuracy:0.7 ~capacity:7;
    |]
  in
  Instance.create ~tasks ~workers ~epsilon:0.2 ()

let test_uniform_capacity_split () =
  let i = heterogeneous_instance () in
  let j = Ltc_workload.Transform.uniform_capacity ~k:3 i in
  (* 5 -> 3+2 (2 clones), 2 -> 2 (1), 7 -> 3+3+1 (3 clones): 6 workers. *)
  Alcotest.(check int) "clone count" 6 (Instance.worker_count j);
  let total_capacity inst =
    Array.fold_left
      (fun acc (w : Worker.t) -> acc + w.capacity)
      0 inst.Instance.workers
  in
  Alcotest.(check int) "capacity preserved" (total_capacity i) (total_capacity j);
  Array.iteri
    (fun idx (w : Worker.t) ->
      Alcotest.(check int) "contiguous indexes" (idx + 1) w.index;
      Alcotest.(check bool) "capacity bounded" true (w.capacity <= 3))
    j.Instance.workers;
  (* Clones keep their originator's location and accuracy. *)
  let w1 = j.Instance.workers.(0) and w2 = j.Instance.workers.(1) in
  Alcotest.(check bool) "clones colocated" true
    (Ltc_geo.Point.equal w1.Worker.loc w2.Worker.loc
    && w1.Worker.accuracy = w2.Worker.accuracy)

let test_uniform_capacity_noop () =
  let i = Fixtures.small_random ~seed:87 () in
  let j = Ltc_workload.Transform.uniform_capacity ~k:10 i in
  Alcotest.(check int) "unchanged worker count" (Instance.worker_count i)
    (Instance.worker_count j)

let test_restrict_workers () =
  let i = Fixtures.small_random ~seed:88 () in
  let o = Ltc_algo.Aam.run i in
  let j = Ltc_workload.Transform.restrict_workers i ~prefix:o.Engine.latency in
  Alcotest.(check int) "prefix length" o.Engine.latency
    (Instance.worker_count j);
  (* Replaying AAM on exactly the consumed prefix reproduces the result. *)
  let o2 = Ltc_algo.Aam.run j in
  Alcotest.(check int) "same latency on replay" o.Engine.latency
    o2.Engine.latency

let prop_uniform_capacity_laws =
  QCheck2.Test.make ~name:"uniform_capacity preserves totals and bounds caps"
    ~count:100
    QCheck2.Gen.(
      pair (int_range 1 6)
        (list_size (int_range 1 12) (int_range 1 9)))
    (fun (k, capacities) ->
      let tasks =
        [| Task.make ~id:0 ~loc:(Ltc_geo.Point.make ~x:0.0 ~y:0.0) () |]
      in
      let workers =
        Array.of_list
          (List.mapi
             (fun idx capacity ->
               Worker.make ~index:(idx + 1)
                 ~loc:(Ltc_geo.Point.make ~x:(float_of_int idx) ~y:0.0)
                 ~accuracy:0.8 ~capacity)
             capacities)
      in
      let i = Instance.create ~tasks ~workers ~epsilon:0.2 ~candidate_radius:None () in
      let j = Ltc_workload.Transform.uniform_capacity ~k i in
      let total inst =
        Array.fold_left
          (fun acc (w : Worker.t) -> acc + w.capacity)
          0 inst.Instance.workers
      in
      let expected_clones =
        List.fold_left (fun acc c -> acc + ((c + k - 1) / k)) 0 capacities
      in
      total i = total j
      && Instance.worker_count j = expected_clones
      && Array.for_all (fun (w : Worker.t) -> w.capacity <= k && w.capacity >= 1)
           j.Instance.workers
      && Array.for_all
           (fun idx -> j.Instance.workers.(idx).Worker.index = idx + 1)
           (Array.init (Instance.worker_count j) Fun.id))

(* --------------------------------------------------- per-task error rates *)

let per_task_instance () =
  (* Two co-located tasks, one with a much stricter error rate. *)
  let tasks =
    [| Task.make ~id:0 ~loc:(Ltc_geo.Point.make ~x:0.0 ~y:0.0) ();
       Task.make ~epsilon:0.02 ~id:1 ~loc:(Ltc_geo.Point.make ~x:2.0 ~y:0.0) () |]
  in
  let workers =
    Array.init 40 (fun i ->
        Worker.make ~index:(i + 1)
          ~loc:(Ltc_geo.Point.make ~x:1.0 ~y:(float_of_int (i mod 3)))
          ~accuracy:0.9 ~capacity:2)
  in
  Instance.create ~tasks ~workers ~epsilon:0.2 ()

let test_per_task_thresholds () =
  let i = per_task_instance () in
  Alcotest.(check (float 1e-9)) "default task threshold"
    (Quality.delta ~epsilon:0.2)
    (Instance.threshold_of i 0);
  Alcotest.(check (float 1e-9)) "strict task threshold"
    (Quality.delta ~epsilon:0.02)
    (Instance.threshold_of i 1);
  Alcotest.(check bool) "thresholds array agrees" true
    (Instance.thresholds i = [| Instance.threshold_of i 0; Instance.threshold_of i 1 |])

let test_per_task_epsilon_respected_by_algorithms () =
  let i = per_task_instance () in
  let strict_needed =
    int_of_float
      (Float.ceil (Quality.delta ~epsilon:0.02 /. 0.64))
      (* Acc* at p=0.9 ~ 0.64 *)
  in
  List.iter
    (fun (algo : Algorithm.t) ->
      let o = run_fixed algo i in
      Alcotest.(check bool) (algo.name ^ " completes") true o.Engine.completed;
      (match Arrangement.validate i o.Engine.arrangement with
      | Ok () -> ()
      | Error vs ->
        Alcotest.failf "%s violates per-task thresholds: %a" algo.name
          (Format.pp_print_list Arrangement.pp_violation)
          vs);
      (* The strict task must have received notably more workers. *)
      let strict = List.length (Arrangement.workers_of_task o.Engine.arrangement 1) in
      let lax = List.length (Arrangement.workers_of_task o.Engine.arrangement 0) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: strict task got >= %d workers (got %d, lax %d)"
           algo.name strict_needed strict lax)
        true
        (strict >= strict_needed && strict > lax))
    all_algorithms

let test_task_epsilon_validation () =
  Alcotest.check_raises "epsilon 1.2"
    (Invalid_argument "Task.make: epsilon must lie in (0, 1)") (fun () ->
      ignore
        (Task.make ~epsilon:1.2 ~id:0 ~loc:(Ltc_geo.Point.make ~x:0.0 ~y:0.0)
           ()))

(* Algorithm registry *)

let test_registry () =
  Alcotest.(check int) "five paper algorithms" 5 (List.length Algorithm.paper);
  Alcotest.(check (list string)) "paper order"
    [ "Base-off"; "MCF-LTC"; "Random"; "LAF"; "AAM" ]
    (List.map (fun (a : Algorithm.t) -> a.name) Algorithm.paper);
  Alcotest.(check (list string)) "full registry"
    [ "Base-off"; "MCF-LTC"; "Random"; "LAF"; "AAM"; "LGF-only"; "LRF-only";
      "Nearest"; "LAF-dyn"; "AAM-dyn"; "Random-dyn" ]
    (Algorithm.names ());
  Alcotest.(check bool) "find is case-insensitive" true
    (match Algorithm.find_opt "aam" with
    | Some a -> a.Algorithm.name = "AAM"
    | None -> false);
  Alcotest.(check bool) "find raises with the known names" true
    (try
       ignore (Algorithm.find "Astar");
       false
     with Invalid_argument msg ->
       String.length msg > 0
       && msg.[String.length msg - 1] = ')'
       && Astring.String.is_infix ~affix:"Nearest" msg);
  (* Online strategies expose a policy for the streaming service; offline
     and dynamic-release entries do not. *)
  List.iter
    (fun (name, streamable) ->
      Alcotest.(check bool)
        (name ^ " streamable")
        streamable
        (Option.is_some (Algorithm.find name).Algorithm.policy))
    [
      ("Base-off", false); ("MCF-LTC", false); ("Random", true);
      ("LAF", true); ("AAM", true); ("LGF-only", true); ("LRF-only", true);
      ("Nearest", true); ("LAF-dyn", false);
    ]

let suite =
  [
    ( "algo.examples",
      [
        Alcotest.test_case "Example 1: optimal = 5" `Quick test_example1_optimal;
        Alcotest.test_case "Example 2: MCF-LTC = 7 (see comment)" `Quick
          test_example2_mcf;
        Alcotest.test_case "Example 3: LAF = 8" `Quick test_example3_laf;
        Alcotest.test_case "Example 4: AAM = 6 (see comment)" `Quick
          test_example4_aam;
        Alcotest.test_case "Example 3 trace" `Quick test_example3_laf_trace;
        Alcotest.test_case "Example 4 trace (w3 LRF switch)" `Quick
          test_example4_aam_trace;
        Alcotest.test_case "Theorem 4 adversarial ratio 5.5" `Quick
          test_theorem4_adversary;
      ] );
    ( "algo.engine",
      [
        Alcotest.test_case "stops at completion" `Quick
          test_engine_stops_at_completion;
        Alcotest.test_case "arrival order" `Quick
          test_engine_presents_workers_in_arrival_order;
        Alcotest.test_case "rejects over-capacity" `Quick
          test_engine_rejects_over_capacity;
        Alcotest.test_case "rejects duplicates" `Quick
          test_engine_rejects_duplicates;
        Alcotest.test_case "rejects non-candidates" `Quick
          test_engine_rejects_non_candidates;
        Alcotest.test_case "incomplete when starved" `Quick
          test_engine_incomplete_when_starved;
      ] );
    ( "algo.validity",
      [
        Alcotest.test_case "all algorithms valid on random instances" `Quick
          test_all_valid_on_random_instances;
        Alcotest.test_case "latency >= exact optimum" `Quick
          test_latency_never_below_optimal;
        Alcotest.test_case "Theorem 2 lower bound" `Quick
          test_theorem2_lower_bound;
        Alcotest.test_case "McNaughton bound" `Quick test_mcnaughton;
        Alcotest.test_case "bounds ordered" `Quick test_bounds_order;
      ] );
    ( "algo.behaviour",
      [
        Alcotest.test_case "deterministic runs" `Quick test_runs_deterministic;
        Alcotest.test_case "Random baseline seed-sensitive" `Quick
          test_random_seed_changes_runs;
        Alcotest.test_case "MCF batch config" `Quick test_mcf_batch_config;
        Alcotest.test_case "MCF solver backends agree" `Quick
          test_mcf_solver_backends;
        Alcotest.test_case "MCF anytime budget" `Quick test_mcf_anytime_budget;
        Alcotest.test_case "MCF empty instance" `Quick test_mcf_empty_instance;
        Alcotest.test_case "tie cost vs solver epsilon" `Quick
          test_tie_cost_epsilon;
        Alcotest.test_case "tie prefers earlier worker" `Quick
          test_tie_prefers_earlier_worker;
      ] );
    ( "algo.optimal",
      [
        Alcotest.test_case "infeasible detected" `Quick test_optimal_infeasible;
        Alcotest.test_case "prefix monotonicity" `Quick
          test_optimal_monotone_prefix;
      ] );
    ( "algo.strategies",
      [
        Alcotest.test_case "LGF/LRF complete and validate" `Quick
          test_strategies_complete_and_validate;
        Alcotest.test_case "AAM = LGF before the switch" `Quick
          test_aam_equals_lgf_before_switch;
      ] );
    ( "algo.feasibility",
      [
        Alcotest.test_case "screen passes on dense instances" `Quick
          test_feasibility_screen_passes;
        Alcotest.test_case "detects starvation" `Quick
          test_feasibility_detects_starvation;
        Alcotest.test_case "sound wrt exact optimum" `Quick
          test_feasibility_agrees_with_optimal;
        Alcotest.test_case "flow lower bound <= OPT" `Quick
          test_flow_lower_bound_sound;
        Alcotest.test_case "flow bound vs Theorem 2" `Quick
          test_flow_lower_bound_tighter_than_theorem2;
        Alcotest.test_case "flow bound on empty task set" `Quick
          test_flow_lower_bound_empty;
      ] );
    ( "algo.noshow",
      [
        Alcotest.test_case "q=1 equals plain run" `Quick
          test_noshow_full_rate_equals_plain_run;
        Alcotest.test_case "no-shows cost latency" `Quick
          test_noshow_costs_latency;
        Alcotest.test_case "answered arrangement validates" `Quick
          test_noshow_validates;
        Alcotest.test_case "invalid rate" `Quick test_noshow_invalid_rate;
      ] );
    ( "algo.properties",
      [ QCheck_alcotest.to_alcotest prop_algorithms_sound ] );
    ( "algo.buffered",
      [
        Alcotest.test_case "validates and brackets" `Quick
          test_buffered_validates_and_brackets;
      ] );
    ( "algo.dynamic",
      [
        Alcotest.test_case "upfront = static" `Quick
          test_dynamic_upfront_equals_static;
        Alcotest.test_case "respects releases" `Quick
          test_dynamic_respects_releases;
        Alcotest.test_case "unreleased never completes" `Quick
          test_dynamic_never_completes_unreleased;
        Alcotest.test_case "argument validation" `Quick test_dynamic_validation;
        Alcotest.test_case "uniform_releases shape" `Quick
          test_dynamic_uniform_releases_shape;
      ] );
    ( "algo.transform",
      [
        Alcotest.test_case "uniform capacity split" `Quick
          test_uniform_capacity_split;
        Alcotest.test_case "uniform capacity no-op" `Quick
          test_uniform_capacity_noop;
        Alcotest.test_case "restrict workers replay" `Quick
          test_restrict_workers;
        QCheck_alcotest.to_alcotest prop_uniform_capacity_laws;
      ] );
    ( "algo.per_task_epsilon",
      [
        Alcotest.test_case "thresholds honour overrides" `Quick
          test_per_task_thresholds;
        Alcotest.test_case "algorithms satisfy strict tasks" `Quick
          test_per_task_epsilon_respected_by_algorithms;
        Alcotest.test_case "epsilon validation" `Quick
          test_task_epsilon_validation;
      ] );
    ( "algo.registry", [ Alcotest.test_case "registry" `Quick test_registry ] );
  ]
