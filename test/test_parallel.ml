(* Domain pool semantics, domain-safety of the observability layer, and the
   parallel-sweep determinism contract: every [jobs] setting must produce
   bit-identical latency/memory/completion outputs (DESIGN.md,
   "Parallelism"). *)

open Ltc_experiments
module Pool = Ltc_util.Pool
module Metrics = Ltc_util.Metrics
module Trace = Ltc_util.Trace

let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ pool *)

let test_pool_map_order () =
  List.iter
    (fun jobs ->
      let result = Pool.run ~jobs 64 (fun i -> i * i) in
      Alcotest.(check int) "length" 64 (Array.length result);
      Array.iteri
        (fun i v ->
          Alcotest.(check int) (Printf.sprintf "slot %d" i) (i * i) v)
        result)
    [ 1; 2; 4 ]

let test_pool_empty_and_reuse () =
  Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check int) "jobs" 3 (Pool.jobs pool);
      Alcotest.(check int) "empty map" 0
        (Array.length (Pool.map pool 0 Fun.id));
      (* One pool serves many batches; each stays input-ordered. *)
      for n = 1 to 5 do
        let r = Pool.map pool n (fun i -> i + n) in
        Alcotest.(check int) "first slot" n r.(0);
        Alcotest.(check int) "last slot" (2 * n - 1) r.(n - 1)
      done)

exception Boom of int

let test_pool_exception_lowest_index () =
  (* 3 is the first failing index in claim order for every jobs value, so
     the exception surfaced to the caller is deterministic. *)
  List.iter
    (fun jobs ->
      match Pool.run ~jobs 32 (fun i -> if i mod 7 = 3 then raise (Boom i)) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "lowest failing index" 3 i)
    [ 1; 2; 4 ]

let test_pool_survives_failed_batch () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (match Pool.iter pool 8 (fun i -> if i = 5 then failwith "boom") with
      | () -> Alcotest.fail "expected failure"
      | exception Failure _ -> ());
      let r = Pool.map pool 16 Fun.id in
      Alcotest.(check int) "pool reusable after failure" 15 r.(15))

let test_pool_invalid_args () =
  Alcotest.check_raises "jobs 0"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0));
  Alcotest.check_raises "negative range"
    (Invalid_argument "Pool.run: negative range") (fun () ->
      ignore (Pool.run ~jobs:1 (-1) Fun.id))

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~jobs:2 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.check_raises "use after shutdown"
    (Invalid_argument "Pool: used after shutdown") (fun () ->
      ignore (Pool.map pool 8 Fun.id))

(* ------------------------------------------- observability under domains *)

let with_observability f =
  Metrics.set_enabled true;
  Trace.clear ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Trace.set_enabled false;
      Trace.clear ())
    f

let test_metrics_concurrent_sum_exact () =
  with_observability @@ fun () ->
  let c = Metrics.counter ~help:"test" "ltc_test_parallel_total" in
  let g = Metrics.gauge ~help:"test" "ltc_test_parallel_gauge" in
  let h = Metrics.histogram ~help:"test" "ltc_test_parallel_seconds" in
  let c0 = Metrics.Counter.value c in
  let g0 = Metrics.Gauge.value g in
  let h0 = Metrics.Histogram.count h in
  let per_domain = 25_000 in
  Pool.run ~jobs:4 4 (fun _ ->
      for _ = 1 to per_domain do
        Metrics.Counter.incr c;
        Metrics.Gauge.add g 1.0;
        Metrics.Histogram.observe h 1e-3
      done)
  |> ignore;
  Alcotest.(check int) "counter sums exactly"
    (c0 + (4 * per_domain))
    (Metrics.Counter.value c);
  Alcotest.(check (float 0.0)) "gauge sums exactly"
    (g0 +. float_of_int (4 * per_domain))
    (Metrics.Gauge.value g);
  Alcotest.(check int) "histogram counts exactly"
    (h0 + (4 * per_domain))
    (Metrics.Histogram.count h)

let test_trace_concurrent_spans () =
  with_observability @@ fun () ->
  Pool.run ~jobs:4 4 (fun d ->
      for _ = 1 to 10 do
        Trace.with_span (Printf.sprintf "lane-%d" d) (fun () -> ())
      done)
  |> ignore;
  Alcotest.(check int) "all spans recorded" 40 (List.length (Trace.spans ()));
  Alcotest.(check int) "none dropped" 0 (Trace.dropped ());
  (* Ids are atomic, so no two spans share one. *)
  let ids = List.map (fun s -> s.Trace.id) (Trace.spans ()) in
  Alcotest.(check int) "ids unique" 40
    (List.length (List.sort_uniq compare ids))

let test_mem_tracker_merged_peak () =
  let tracker = Ltc_util.Mem.Tracker.create () in
  (* No removals, so the merged peak is the total added no matter how the
     cells were spread over domains. *)
  Pool.run ~jobs:4 4 (fun _ -> Ltc_util.Mem.Tracker.add_words tracker 1000)
  |> ignore;
  Alcotest.(check (float 1e-12))
    "merged peak = total added"
    (Ltc_util.Mem.words_to_mb 4000)
    (Ltc_util.Mem.Tracker.high_water_mb tracker)

(* ------------------------------------------------------ rep-seed splitting *)

let test_rep_seeds_deterministic () =
  let seeds () =
    let root = Ltc_util.Rng.create ~seed:99 in
    List.init 8 (fun _ -> Ltc_util.Rng.split_seed root)
  in
  Alcotest.(check (list int)) "same base seed, same rep seeds" (seeds ())
    (seeds ());
  Alcotest.(check int) "rep seeds distinct" 8
    (List.length (List.sort_uniq compare (seeds ())))

(* ------------------------------------------------- sweep determinism *)

(* Latency + memory CSVs of a figure entry; the runtime table is wall-clock
   and excluded from the determinism contract. *)
let figure_csvs ~jobs ~seed =
  match Figures.find "fig3-K" with
  | None -> Alcotest.fail "fig3-K missing"
  | Some e ->
    e.Figures.run ~jobs ~scale:0.004 ~reps:2 ~seed
    |> List.filter_map (fun o ->
           if Astring.String.is_infix ~affix:"runtime" o.Runner.title then
             None
           else Some (Runner.to_csv o))

let prop_sweep_identical_across_jobs =
  QCheck2.Test.make ~name:"figure CSV rows identical at jobs 1/2/4" ~count:4
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let reference = figure_csvs ~jobs:1 ~seed in
      List.for_all (fun jobs -> figure_csvs ~jobs ~seed = reference) [ 2; 4 ])

let suite =
  [
    ( "parallel.pool",
      [
        Alcotest.test_case "map ordering" `Quick test_pool_map_order;
        Alcotest.test_case "empty + reuse" `Quick test_pool_empty_and_reuse;
        Alcotest.test_case "exception of lowest index" `Quick
          test_pool_exception_lowest_index;
        Alcotest.test_case "survives failed batch" `Quick
          test_pool_survives_failed_batch;
        Alcotest.test_case "invalid args" `Quick test_pool_invalid_args;
        Alcotest.test_case "shutdown idempotent" `Quick
          test_pool_shutdown_idempotent;
      ] );
    ( "parallel.observability",
      [
        Alcotest.test_case "metrics sum exactly across domains" `Quick
          test_metrics_concurrent_sum_exact;
        Alcotest.test_case "trace spans from domains" `Quick
          test_trace_concurrent_spans;
        Alcotest.test_case "mem tracker merged peak" `Quick
          test_mem_tracker_merged_peak;
      ] );
    ( "parallel.determinism",
      [
        Alcotest.test_case "rep seeds deterministic" `Quick
          test_rep_seeds_deterministic;
        qcheck prop_sweep_identical_across_jobs;
      ] );
  ]
