(* Domain pool semantics, domain-safety of the observability layer, and the
   parallel-sweep determinism contract: every [jobs] setting must produce
   bit-identical latency/memory/completion outputs (DESIGN.md,
   "Parallelism"). *)

open Ltc_experiments
module Pool = Ltc_util.Pool
module Metrics = Ltc_util.Metrics
module Trace = Ltc_util.Trace

let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ pool *)

let test_pool_map_order () =
  List.iter
    (fun jobs ->
      let result = Pool.run ~jobs 64 (fun i -> i * i) in
      Alcotest.(check int) "length" 64 (Array.length result);
      Array.iteri
        (fun i v ->
          Alcotest.(check int) (Printf.sprintf "slot %d" i) (i * i) v)
        result)
    [ 1; 2; 4 ]

let test_pool_empty_and_reuse () =
  Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check int) "jobs" 3 (Pool.jobs pool);
      Alcotest.(check int) "empty map" 0
        (Array.length (Pool.map pool 0 Fun.id));
      (* One pool serves many batches; each stays input-ordered. *)
      for n = 1 to 5 do
        let r = Pool.map pool n (fun i -> i + n) in
        Alcotest.(check int) "first slot" n r.(0);
        Alcotest.(check int) "last slot" (2 * n - 1) r.(n - 1)
      done)

exception Boom of int

let test_pool_exception_lowest_index () =
  (* 3 is the first failing index in claim order for every jobs value, so
     the exception surfaced to the caller is deterministic. *)
  List.iter
    (fun jobs ->
      match Pool.run ~jobs 32 (fun i -> if i mod 7 = 3 then raise (Boom i)) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "lowest failing index" 3 i)
    [ 1; 2; 4 ]

let test_pool_survives_failed_batch () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (match Pool.iter pool 8 (fun i -> if i = 5 then failwith "boom") with
      | () -> Alcotest.fail "expected failure"
      | exception Failure _ -> ());
      let r = Pool.map pool 16 Fun.id in
      Alcotest.(check int) "pool reusable after failure" 15 r.(15))

let test_pool_invalid_args () =
  Alcotest.check_raises "jobs 0"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0));
  Alcotest.check_raises "negative range"
    (Invalid_argument "Pool.run: negative range") (fun () ->
      ignore (Pool.run ~jobs:1 (-1) Fun.id))

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~jobs:2 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.check_raises "use after shutdown"
    (Invalid_argument "Pool: used after shutdown") (fun () ->
      ignore (Pool.map pool 8 Fun.id))

(* A worker dying mid-batch (its body raises) must not strand the other
   lanes: the batch quiesces, the exception reaches the caller, and every
   lane answers the next batch. *)
let test_pool_kill_worker_mid_batch () =
  let completed = Atomic.make 0 in
  Pool.with_pool ~jobs:4 (fun pool ->
      (match
         Pool.iter pool 64 (fun i ->
             if i = 7 then raise (Boom i) else Atomic.incr completed)
       with
      | () -> Alcotest.fail "expected Boom"
      | exception Boom _ -> ());
      Alcotest.(check bool) "other bodies still ran" true
        (Atomic.get completed > 0);
      let r = Pool.map pool 32 Fun.id in
      Alcotest.(check int) "every lane answers the next batch" 31 r.(31))

(* ------------------------------------------------------ persistent lanes *)

let test_workers_fifo_per_lane () =
  let logs = Array.make 4 [] in
  let w =
    Pool.Workers.create ~lanes:4 ~capacity:2 ~handler:(fun ~lane i ->
        logs.(lane) <- i :: logs.(lane))
  in
  Alcotest.(check int) "lanes" 4 (Pool.Workers.lanes w);
  for i = 0 to 39 do
    Pool.Workers.push w ~lane:(i mod 4) i
  done;
  Pool.Workers.quiesce w;
  for k = 0 to 3 do
    Alcotest.(check (list int))
      (Printf.sprintf "lane %d handled its items in push order" k)
      (List.init 10 (fun j -> (4 * j) + k))
      (List.rev logs.(k))
  done;
  Pool.Workers.shutdown w;
  Alcotest.(check bool) "no failure" true
    (Pool.Workers.first_failure w = None)

(* Deterministic backpressure: a 1-slot mailbox whose handler blocks on a
   gate forces the third push to stall; a helper domain opens the gate
   only once the stall is counted, so nothing here depends on timing. *)
let test_workers_backpressure_stalls () =
  let gate = Atomic.make false in
  let handled = Atomic.make 0 in
  let w =
    Pool.Workers.create ~lanes:1 ~capacity:1 ~handler:(fun ~lane:_ first ->
        if first then
          while not (Atomic.get gate) do
            Domain.cpu_relax ()
          done;
        Atomic.incr handled)
  in
  Pool.Workers.push w ~lane:0 true;
  Pool.Workers.push w ~lane:0 false;
  let opener =
    Domain.spawn (fun () ->
        while Pool.Workers.stalls w < 1 do
          Domain.cpu_relax ()
        done;
        Atomic.set gate true)
  in
  Pool.Workers.push w ~lane:0 false;
  Domain.join opener;
  Pool.Workers.quiesce w;
  Alcotest.(check int) "every push handled despite the stall" 3
    (Atomic.get handled);
  Alcotest.(check bool) "stall counted" true (Pool.Workers.stalls w >= 1);
  Pool.Workers.shutdown w

exception Lane_down

(* Kill one persistent worker mid-stream: its queue is discarded, the
   other lanes drain fully, quiesce terminates, a later push to the dead
   lane re-raises the handler's exception, and shutdown re-raises it for
   callers that never pushed again. *)
let test_workers_mid_batch_kill () =
  let handled = Array.make 3 0 in
  let m = Mutex.create () in
  let w =
    Pool.Workers.create ~lanes:3 ~capacity:4 ~handler:(fun ~lane i ->
        if lane = 1 && i = 2 then raise Lane_down;
        Mutex.lock m;
        handled.(lane) <- handled.(lane) + 1;
        Mutex.unlock m)
  in
  let lane1_push_failed = ref false in
  for i = 1 to 30 do
    Pool.Workers.push w ~lane:0 i;
    (try Pool.Workers.push w ~lane:1 i
     with Lane_down -> lane1_push_failed := true);
    Pool.Workers.push w ~lane:2 i
  done;
  Pool.Workers.quiesce w;
  Alcotest.(check int) "lane 0 drained fully" 30 handled.(0);
  Alcotest.(check int) "lane 2 drained fully" 30 handled.(2);
  Alcotest.(check int) "lane 1 stopped at the kill" 1 handled.(1);
  Alcotest.(check bool) "push to the dead lane re-raised" true
    !lane1_push_failed;
  Alcotest.(check bool) "failure recorded" true
    (match Pool.Workers.first_failure w with
    | Some (Lane_down, _) -> true
    | _ -> false);
  (match Pool.Workers.shutdown w with
  | () -> Alcotest.fail "shutdown must re-raise the lane failure"
  | exception Lane_down -> ());
  (* idempotent once the failure has been delivered *)
  Pool.Workers.shutdown w

(* A failed lane retains everything it lost — the failing item first,
   then the queued items in push order — and [restart] hands them back,
   clears the failure and resumes the lane in place, without the
   siblings ever noticing. *)
let test_workers_restart_recovers_lost () =
  let handled = ref [] in
  let m = Mutex.create () in
  let gate = Atomic.make false in
  let armed = Atomic.make true in
  let w =
    Pool.Workers.create ~lanes:2 ~capacity:8 ~handler:(fun ~lane i ->
        if lane = 0 && i = 2 && Atomic.get armed then begin
          while not (Atomic.get gate) do
            Domain.cpu_relax ()
          done;
          raise Lane_down
        end;
        Mutex.lock m;
        handled := (lane, i) :: !handled;
        Mutex.unlock m)
  in
  (* lane 0 sticks at item 2 behind the gate; 3..6 pile up queued *)
  for i = 1 to 6 do
    Pool.Workers.push w ~lane:0 i;
    Pool.Workers.push w ~lane:1 i
  done;
  Atomic.set gate true;
  while Pool.Workers.failure w ~lane:0 = None do
    Domain.cpu_relax ()
  done;
  Alcotest.(check bool) "failure observable" true
    (match Pool.Workers.failure w ~lane:0 with
    | Some (Lane_down, _) -> true
    | _ -> false);
  Atomic.set armed false;
  let lost = Pool.Workers.restart w ~lane:0 in
  Alcotest.(check (list int))
    "lost = failing item, then the queue in push order" [ 2; 3; 4; 5; 6 ]
    lost;
  Alcotest.(check bool) "failure cleared" true
    (Pool.Workers.failure w ~lane:0 = None);
  (* the lane is live again: re-feed what it lost *)
  List.iter (fun i -> Pool.Workers.push w ~lane:0 i) lost;
  Pool.Workers.quiesce w;
  let lane n =
    List.rev (List.filter_map (fun (l, i) -> if l = n then Some i else None)
                !handled)
  in
  Alcotest.(check (list int)) "lane 0 drained everything after restart"
    [ 1; 2; 3; 4; 5; 6 ] (lane 0);
  Alcotest.(check (list int)) "lane 1 untouched" [ 1; 2; 3; 4; 5; 6 ] (lane 1);
  Pool.Workers.shutdown w

(* [try_push] refuses a full mailbox instead of blocking, and admits
   again once the lane drains. *)
let test_workers_try_push () =
  let gate = Atomic.make false in
  let w =
    Pool.Workers.create ~lanes:1 ~capacity:1 ~handler:(fun ~lane:_ _ ->
        while not (Atomic.get gate) do
          Domain.cpu_relax ()
        done)
  in
  Pool.Workers.push w ~lane:0 1;
  (* blocking push parks until the lane dequeues item 1 into the gated
     handler, leaving the single slot free for item 2 *)
  Pool.Workers.push w ~lane:0 2;
  (* the blocking push may legitimately stall while item 1 is still
     queued; only the try_push refusal must not add one *)
  let stalls_before = Pool.Workers.stalls w in
  Alcotest.(check bool) "full mailbox refused" false
    (Pool.Workers.try_push w ~lane:0 3);
  Alcotest.(check int) "refusal is not a stall" stalls_before
    (Pool.Workers.stalls w);
  Atomic.set gate true;
  Pool.Workers.quiesce w;
  Alcotest.(check bool) "admits again once drained" true
    (Pool.Workers.try_push w ~lane:0 3);
  Pool.Workers.quiesce w;
  Pool.Workers.shutdown w

let test_workers_contracts () =
  Alcotest.check_raises "lanes 0"
    (Invalid_argument "Pool.Workers.create: lanes must be >= 1") (fun () ->
      ignore
        (Pool.Workers.create ~lanes:0 ~capacity:1 ~handler:(fun ~lane:_ () ->
             ())));
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Pool.Workers.create: capacity must be >= 1")
    (fun () ->
      ignore
        (Pool.Workers.create ~lanes:1 ~capacity:0 ~handler:(fun ~lane:_ () ->
             ())));
  let w = Pool.Workers.create ~lanes:2 ~capacity:1 ~handler:(fun ~lane:_ () -> ()) in
  Alcotest.check_raises "unknown lane"
    (Invalid_argument "Pool.Workers.push: no such lane") (fun () ->
      Pool.Workers.push w ~lane:5 ());
  Pool.Workers.shutdown w;
  Alcotest.check_raises "push after shutdown"
    (Invalid_argument "Pool.Workers: used after shutdown") (fun () ->
      Pool.Workers.push w ~lane:0 ());
  Pool.Workers.shutdown w

(* ------------------------------------------- observability under domains *)

let with_observability f =
  Metrics.set_enabled true;
  Trace.clear ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Trace.set_enabled false;
      Trace.clear ())
    f

let test_metrics_concurrent_sum_exact () =
  with_observability @@ fun () ->
  let c = Metrics.counter ~help:"test" "ltc_test_parallel_total" in
  let g = Metrics.gauge ~help:"test" "ltc_test_parallel_gauge" in
  let h = Metrics.histogram ~help:"test" "ltc_test_parallel_seconds" in
  let c0 = Metrics.Counter.value c in
  let g0 = Metrics.Gauge.value g in
  let h0 = Metrics.Histogram.count h in
  let per_domain = 25_000 in
  Pool.run ~jobs:4 4 (fun _ ->
      for _ = 1 to per_domain do
        Metrics.Counter.incr c;
        Metrics.Gauge.add g 1.0;
        Metrics.Histogram.observe h 1e-3
      done)
  |> ignore;
  Alcotest.(check int) "counter sums exactly"
    (c0 + (4 * per_domain))
    (Metrics.Counter.value c);
  Alcotest.(check (float 0.0)) "gauge sums exactly"
    (g0 +. float_of_int (4 * per_domain))
    (Metrics.Gauge.value g);
  Alcotest.(check int) "histogram counts exactly"
    (h0 + (4 * per_domain))
    (Metrics.Histogram.count h)

let test_trace_concurrent_spans () =
  with_observability @@ fun () ->
  Pool.run ~jobs:4 4 (fun d ->
      for _ = 1 to 10 do
        Trace.with_span (Printf.sprintf "lane-%d" d) (fun () -> ())
      done)
  |> ignore;
  Alcotest.(check int) "all spans recorded" 40 (List.length (Trace.spans ()));
  Alcotest.(check int) "none dropped" 0 (Trace.dropped ());
  (* Ids are atomic, so no two spans share one. *)
  let ids = List.map (fun s -> s.Trace.id) (Trace.spans ()) in
  Alcotest.(check int) "ids unique" 40
    (List.length (List.sort_uniq compare ids))

let test_mem_tracker_merged_peak () =
  let tracker = Ltc_util.Mem.Tracker.create () in
  (* No removals, so the merged peak is the total added no matter how the
     cells were spread over domains. *)
  Pool.run ~jobs:4 4 (fun _ -> Ltc_util.Mem.Tracker.add_words tracker 1000)
  |> ignore;
  Alcotest.(check (float 1e-12))
    "merged peak = total added"
    (Ltc_util.Mem.words_to_mb 4000)
    (Ltc_util.Mem.Tracker.high_water_mb tracker)

(* ------------------------------------------------------ rep-seed splitting *)

let test_rep_seeds_deterministic () =
  let seeds () =
    let root = Ltc_util.Rng.create ~seed:99 in
    List.init 8 (fun _ -> Ltc_util.Rng.split_seed root)
  in
  Alcotest.(check (list int)) "same base seed, same rep seeds" (seeds ())
    (seeds ());
  Alcotest.(check int) "rep seeds distinct" 8
    (List.length (List.sort_uniq compare (seeds ())))

(* ------------------------------------------------- sweep determinism *)

(* Latency + memory CSVs of a figure entry; the runtime table is wall-clock
   and excluded from the determinism contract. *)
let figure_csvs ~jobs ~seed =
  match Figures.find "fig3-K" with
  | None -> Alcotest.fail "fig3-K missing"
  | Some e ->
    e.Figures.run ~jobs ~scale:0.004 ~reps:2 ~seed
    |> List.filter_map (fun o ->
           if Astring.String.is_infix ~affix:"runtime" o.Runner.title then
             None
           else Some (Runner.to_csv o))

let prop_sweep_identical_across_jobs =
  QCheck2.Test.make ~name:"figure CSV rows identical at jobs 1/2/4" ~count:4
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let reference = figure_csvs ~jobs:1 ~seed in
      List.for_all (fun jobs -> figure_csvs ~jobs ~seed = reference) [ 2; 4 ])

let suite =
  [
    ( "parallel.pool",
      [
        Alcotest.test_case "map ordering" `Quick test_pool_map_order;
        Alcotest.test_case "empty + reuse" `Quick test_pool_empty_and_reuse;
        Alcotest.test_case "exception of lowest index" `Quick
          test_pool_exception_lowest_index;
        Alcotest.test_case "survives failed batch" `Quick
          test_pool_survives_failed_batch;
        Alcotest.test_case "invalid args" `Quick test_pool_invalid_args;
        Alcotest.test_case "shutdown idempotent" `Quick
          test_pool_shutdown_idempotent;
        Alcotest.test_case "kill one worker mid-batch" `Quick
          test_pool_kill_worker_mid_batch;
      ] );
    ( "parallel.workers",
      [
        Alcotest.test_case "per-lane FIFO" `Quick test_workers_fifo_per_lane;
        Alcotest.test_case "backpressure stalls counted" `Quick
          test_workers_backpressure_stalls;
        Alcotest.test_case "kill one lane mid-stream" `Quick
          test_workers_mid_batch_kill;
        Alcotest.test_case "restart recovers the lost items" `Quick
          test_workers_restart_recovers_lost;
        Alcotest.test_case "try_push admission control" `Quick
          test_workers_try_push;
        Alcotest.test_case "contracts" `Quick test_workers_contracts;
      ] );
    ( "parallel.observability",
      [
        Alcotest.test_case "metrics sum exactly across domains" `Quick
          test_metrics_concurrent_sum_exact;
        Alcotest.test_case "trace spans from domains" `Quick
          test_trace_concurrent_spans;
        Alcotest.test_case "mem tracker merged peak" `Quick
          test_mem_tracker_merged_peak;
      ] );
    ( "parallel.determinism",
      [
        Alcotest.test_case "rep seeds deterministic" `Quick
          test_rep_seeds_deterministic;
        qcheck prop_sweep_identical_across_jobs;
      ] );
  ]
