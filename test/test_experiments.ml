open Ltc_experiments

(* Tiny sweeps keep these integration tests fast while exercising the whole
   measurement loop (generation -> 5 algorithms -> aggregation -> tables). *)

let tiny_instance_of ~seed n_tasks =
  let spec =
    {
      Ltc_workload.Spec.default_synthetic with
      Ltc_workload.Spec.n_tasks;
      n_workers = 60 * n_tasks;
      world_side = 12.0 *. sqrt (float_of_int n_tasks);
      capacity = 3;
    }
  in
  Ltc_workload.Synthetic.generate (Ltc_util.Rng.create ~seed) spec

let run_tiny_sweep () =
  Runner.sweep ~reps:2 ~seed:5 ~xs:[ 4; 8 ] ~label:string_of_int
    ~instance_of:tiny_instance_of ()

let test_sweep_shape () =
  let points = run_tiny_sweep () in
  Alcotest.(check int) "two points" 2 (List.length points);
  List.iter
    (fun p ->
      Alcotest.(check int) "five algorithms" 5 (List.length p.Runner.algos);
      List.iter
        (fun a ->
          Alcotest.(check bool)
            (a.Runner.algorithm ^ " completed")
            true a.Runner.all_completed;
          Alcotest.(check bool) "positive latency" true (a.Runner.mean_latency > 0.0);
          Alcotest.(check bool) "non-negative runtime" true
            (a.Runner.mean_runtime_s >= 0.0);
          Alcotest.(check bool) "positive memory" true
            (a.Runner.mean_memory_mb > 0.0))
        p.Runner.algos)
    points

let test_sweep_algorithm_order () =
  let points = run_tiny_sweep () in
  let names p = List.map (fun a -> a.Runner.algorithm) p.Runner.algos in
  Alcotest.(check (list string)) "paper order"
    [ "Base-off"; "MCF-LTC"; "Random"; "LAF"; "AAM" ]
    (names (List.hd points))

let test_sweep_reps_validated () =
  Alcotest.check_raises "reps 0"
    (Invalid_argument "Runner.sweep: reps must be positive") (fun () ->
      ignore
        (Runner.sweep ~reps:0 ~seed:1 ~xs:[ 1 ] ~label:string_of_int
           ~instance_of:tiny_instance_of ()))

let test_tables_render () =
  let points = run_tiny_sweep () in
  let latency = Runner.latency_table ~title:"t" ~x_header:"|T|" points in
  Alcotest.(check int) "header width" 6 (List.length latency.Runner.header);
  Alcotest.(check int) "rows" 2 (List.length latency.Runner.rows);
  let rendered = Runner.render latency in
  Alcotest.(check bool) "mentions AAM" true
    (Astring.String.is_infix ~affix:"AAM" rendered);
  let runtime = Runner.runtime_table ~title:"r" ~x_header:"|T|" points in
  let memory = Runner.memory_table ~title:"m" ~x_header:"|T|" points in
  Alcotest.(check int) "runtime rows" 2 (List.length runtime.Runner.rows);
  Alcotest.(check int) "memory rows" 2 (List.length memory.Runner.rows)

let test_to_plot () =
  let points = run_tiny_sweep () in
  let latency = Runner.latency_table ~title:"t" ~x_header:"|T|" points in
  (match Runner.to_plot latency with
  | None -> Alcotest.fail "expected a plot"
  | Some plot ->
    Alcotest.(check bool) "legend mentions AAM" true
      (Astring.String.is_infix ~affix:"AAM" plot));
  let empty =
    { Runner.title = "e"; header = [ "x" ]; rows = []; float_digits = 0 }
  in
  Alcotest.(check bool) "empty table has no plot" true
    (Runner.to_plot empty = None)

let test_csv_escaping () =
  let output =
    {
      Runner.title = "csv test";
      header = [ "name"; "value" ];
      rows =
        [
          [ Ltc_util.Table.Str "plain"; Ltc_util.Table.Int 3 ];
          [ Ltc_util.Table.Str "comma, quote \" and\nnewline";
            Ltc_util.Table.Float 0.5 ];
        ];
      float_digits = 2;
    }
  in
  let csv = Runner.to_csv output in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check string) "header" "name,value" (List.hd lines);
  Alcotest.(check bool) "quoted field with doubled quotes" true
    (Astring.String.is_infix ~affix:"\"comma, quote \"\" and\nnewline\"" csv)

let test_csv_written_to_disk () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "ltc_csv_test" in
  let output =
    {
      Runner.title = "disk/test: table";
      header = [ "x" ];
      rows = [ [ Ltc_util.Table.Int 1 ] ];
      float_digits = 0;
    }
  in
  let path = Runner.write_csv ~dir output in
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "content" "x" first;
  Alcotest.(check bool) "slugified name" true
    (Filename.basename path = "disk_test__table.csv")

let test_registry_covers_every_panel () =
  let ids = Figures.ids () in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " registered") true (List.mem id ids))
    [
      "fig3-T"; "fig3-K"; "fig3-accN"; "fig3-accU"; "fig4-eps"; "fig4-scal";
      "fig4-ny"; "fig4-tokyo"; "ablation-batch"; "ablation-strategy";
      "ablation-approx"; "ablation-index"; "ablation-solver"; "ext-noshow";
      "ext-buffer"; "ext-dynamic"; "ext-inference"; "hoeffding";
    ];
  Alcotest.(check bool) "find works" true (Figures.find "fig3-T" <> None);
  Alcotest.(check bool) "unknown id" true (Figures.find "fig9-z" = None)

let test_experiment_runs_at_micro_scale () =
  (* Run one real figure experiment end-to-end at a very small scale. *)
  match Figures.find "fig3-K" with
  | None -> Alcotest.fail "fig3-K missing"
  | Some e ->
    let outputs = e.Figures.run ~jobs:1 ~scale:0.004 ~reps:1 ~seed:3 in
    Alcotest.(check int) "three panels" 3 (List.length outputs);
    List.iter
      (fun o ->
        Alcotest.(check int) "five sweep rows" 5 (List.length o.Runner.rows))
      outputs

let test_hoeffding_experiment () =
  match Figures.find "hoeffding" with
  | None -> Alcotest.fail "hoeffding missing"
  | Some e ->
    let outputs = e.Figures.run ~jobs:2 ~scale:0.1 ~reps:1 ~seed:11 in
    (match outputs with
    | [ o ] ->
      Alcotest.(check int) "five eps rows" 5 (List.length o.Runner.rows);
      (* Every row must end with a "yes" verdict: the completion rule must
         actually deliver the promised error rate. *)
      List.iter
        (fun row ->
          match List.rev row with
          | Ltc_util.Table.Str verdict :: _ ->
            Alcotest.(check string) "within bound" "yes" verdict
          | _ -> Alcotest.fail "unexpected row shape")
        o.Runner.rows
    | _ -> Alcotest.fail "expected one table")

let suite =
  [
    ( "experiments.runner",
      [
        Alcotest.test_case "sweep shape" `Quick test_sweep_shape;
        Alcotest.test_case "algorithm order" `Quick test_sweep_algorithm_order;
        Alcotest.test_case "reps validated" `Quick test_sweep_reps_validated;
        Alcotest.test_case "tables render" `Quick test_tables_render;
        Alcotest.test_case "to_plot" `Quick test_to_plot;
        Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
        Alcotest.test_case "csv written to disk" `Quick test_csv_written_to_disk;
      ] );
    ( "experiments.figures",
      [
        Alcotest.test_case "registry covers all panels" `Quick
          test_registry_covers_every_panel;
        Alcotest.test_case "fig3-K at micro scale" `Slow
          test_experiment_runs_at_micro_scale;
        Alcotest.test_case "hoeffding validation" `Slow test_hoeffding_experiment;
      ] );
  ]
