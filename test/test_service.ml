(* Ltc_service.Session: engine parity, kill/restore determinism, journal
   robustness.  The bar is byte-identity — a restored session must be
   indistinguishable from one that never stopped: same arrangement, same
   latency, same consumed count, same RNG states. *)

open Ltc_service

let small_instance ?(n_tasks = 8) ?(n_workers = 25) ?(capacity = 3)
    ?(epsilon = 0.25) ~seed () =
  let spec =
    {
      Ltc_workload.Spec.default_synthetic with
      Ltc_workload.Spec.n_tasks;
      n_workers;
      capacity;
      epsilon;
      world_side = 120.0;
    }
  in
  Ltc_workload.Synthetic.generate (Ltc_util.Rng.create ~seed) spec

let arrivals (i : Ltc_core.Instance.t) = Array.to_list i.Ltc_core.Instance.workers

(* Mirror of the session's seed -> (policy, no-show) stream derivation,
   used to build the Engine.run reference. *)
let reference_rngs ~seed =
  let root = Ltc_util.Rng.create ~seed in
  let policy_rng = Ltc_util.Rng.split root in
  let noshow_rng = Ltc_util.Rng.split root in
  (policy_rng, noshow_rng)

let feed_all session ws = List.map (Session.feed session) ws

let fingerprint session =
  ( Ltc_core.Arrangement.to_list (Session.arrangement session),
    Session.latency session,
    Session.consumed session,
    Session.completed session,
    Session.rng_states session )

let online_algorithms =
  [
    Ltc_algo.Algorithm.laf;
    Ltc_algo.Algorithm.aam;
    Ltc_algo.Algorithm.random;
    Ltc_algo.Algorithm.lgf;
    Ltc_algo.Algorithm.nearest_first;
  ]

(* ------------------------------------------------------- engine parity *)

let check_engine_parity ~accept_rate (algo : Ltc_algo.Algorithm.t) =
  let seed = 1234 in
  let instance = small_instance ~seed:11 () in
  let policy_rng, noshow_rng = reference_rngs ~seed in
  let reference =
    Ltc_algo.Engine.run
      ~config:
        {
          Ltc_algo.Engine.accept_rate;
          rng = (if accept_rate = None then None else Some noshow_rng);
          tracker = None;
          degrade = None;
        }
      ~name:algo.Ltc_algo.Algorithm.name
      ((Option.get algo.Ltc_algo.Algorithm.policy) policy_rng)
      instance
  in
  let session =
    Session.create ?accept_rate ~algorithm:algo ~seed instance
  in
  ignore (feed_all session (arrivals instance));
  let label what = Printf.sprintf "%s %s" algo.Ltc_algo.Algorithm.name what in
  Alcotest.(check (list (pair int int)))
    (label "arrangement")
    (Ltc_core.Arrangement.to_list reference.Ltc_algo.Engine.arrangement
      |> List.map (fun a ->
             (a.Ltc_core.Arrangement.worker, a.Ltc_core.Arrangement.task)))
    (Ltc_core.Arrangement.to_list (Session.arrangement session)
      |> List.map (fun a ->
             (a.Ltc_core.Arrangement.worker, a.Ltc_core.Arrangement.task)));
  Alcotest.(check int)
    (label "latency") reference.Ltc_algo.Engine.latency (Session.latency session);
  Alcotest.(check int)
    (label "consumed") reference.Ltc_algo.Engine.workers_consumed
    (Session.consumed session);
  Alcotest.(check bool)
    (label "completed") reference.Ltc_algo.Engine.completed
    (Session.completed session)

let test_feed_matches_engine () =
  List.iter (check_engine_parity ~accept_rate:None) online_algorithms

let test_feed_matches_engine_noshow () =
  List.iter (check_engine_parity ~accept_rate:(Some 0.7)) online_algorithms

(* --------------------------------------------- kill/restore determinism *)

let with_tmp_journal f =
  let path = Filename.temp_file "ltc_service_test" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* Kill at EVERY arrival index: run k events into a journal, abandon the
   session (no close — crash semantics), restore, feed the rest, and
   demand the full fingerprint of the uninterrupted run. *)
let check_kill_restore_everywhere ~accept_rate ~checkpoint_every algo =
  let seed = 77 in
  let instance = small_instance ~seed:23 () in
  let ws = arrivals instance in
  let uninterrupted =
    let s = Session.create ?accept_rate ~algorithm:algo ~seed instance in
    ignore (feed_all s ws);
    fingerprint s
  in
  let n = List.length ws in
  for k = 0 to n do
    with_tmp_journal @@ fun path ->
    let s =
      Session.create ?accept_rate ~journal:path ~checkpoint_every
        ~algorithm:algo ~seed instance
    in
    List.iteri (fun j w -> if j < k then ignore (Session.feed s w)) ws;
    (* no close: the journal must already be complete on disk *)
    let s' = Session.restore ~path () in
    Alcotest.(check int)
      (Printf.sprintf "consumed after restore at %d" k)
      k (Session.consumed s');
    List.iteri (fun j w -> if j >= k then ignore (Session.feed s' w)) ws;
    Session.close s';
    if fingerprint s' <> uninterrupted then
      Alcotest.failf "%s: restore at arrival %d diverges from the \
                      uninterrupted run"
        algo.Ltc_algo.Algorithm.name k
  done

let test_kill_restore_everywhere () =
  check_kill_restore_everywhere ~accept_rate:None ~checkpoint_every:4
    Ltc_algo.Algorithm.laf;
  check_kill_restore_everywhere ~accept_rate:None ~checkpoint_every:4
    Ltc_algo.Algorithm.random

(* Binary journal with group commit, killed at EVERY arrival index.  A
   kill loses exactly the records buffered past the last committed
   group, so restore must land on the last commit boundary — mirrored
   here from the session's commit discipline (a commit fires when the
   group fills and at every checkpoint) — and re-feeding from there must
   reproduce the uninterrupted fingerprint. *)
let check_kill_restore_group_commit ~accept_rate ~checkpoint_every
    ~group_commit algo =
  let seed = 77 in
  let instance = small_instance ~seed:23 () in
  let ws = arrivals instance in
  let uninterrupted =
    let s = Session.create ?accept_rate ~algorithm:algo ~seed instance in
    ignore (feed_all s ws);
    fingerprint s
  in
  let durable_after k =
    let durable = ref 0 and pending = ref 0 and since = ref 0 in
    for e = 1 to k do
      incr pending;
      incr since;
      if !pending >= group_commit then begin
        durable := e;
        pending := 0
      end;
      if !since >= checkpoint_every then begin
        durable := e;
        pending := 0;
        since := 0
      end
    done;
    !durable
  in
  let n = List.length ws in
  for k = 0 to n do
    with_tmp_journal @@ fun path ->
    let s =
      Session.create ?accept_rate ~journal:path ~checkpoint_every
        ~format:Session.Binary ~group_commit ~algorithm:algo ~seed instance
    in
    List.iteri (fun j w -> if j < k then ignore (Session.feed s w)) ws;
    (* no close: the buffered suffix dies with the kill *)
    let s' = Session.restore ~path () in
    Alcotest.(check int)
      (Printf.sprintf "durable boundary after kill at %d" k)
      (durable_after k) (Session.consumed s');
    List.iteri
      (fun j w -> if j >= Session.consumed s' then ignore (Session.feed s' w))
      ws;
    Session.close s';
    if fingerprint s' <> uninterrupted then
      Alcotest.failf
        "%s: binary group-commit restore at arrival %d diverges from the \
         uninterrupted run"
        algo.Ltc_algo.Algorithm.name k
  done

let test_kill_restore_group_commit () =
  check_kill_restore_group_commit ~accept_rate:None ~checkpoint_every:4
    ~group_commit:3 Ltc_algo.Algorithm.laf;
  check_kill_restore_group_commit ~accept_rate:(Some 0.6) ~checkpoint_every:5
    ~group_commit:4 Ltc_algo.Algorithm.random

(* The two codecs are different encodings of the same journal: the same
   stream journaled under each must restore to identical fingerprints,
   and Journal.convert must carry a file across codecs without moving
   the fingerprint. *)
let test_cross_codec_parity () =
  let algo = Ltc_algo.Algorithm.laf in
  let seed = 19 in
  let instance = small_instance ~seed:47 () in
  let ws = arrivals instance in
  let journaled ~format ~group_commit path =
    let s =
      Session.create ~journal:path ~checkpoint_every:5 ~format ~group_commit
        ~algorithm:algo ~seed instance
    in
    ignore (feed_all s ws);
    Session.close s;
    fingerprint s
  in
  let restored path =
    with_tmp_journal @@ fun redirect ->
    let s = Session.restore ~journal:redirect ~path () in
    let fp = fingerprint s in
    Session.close s;
    fp
  in
  with_tmp_journal @@ fun text_path ->
  with_tmp_journal @@ fun binary_path ->
  let live_text = journaled ~format:Session.Text ~group_commit:1 text_path in
  let live_binary =
    journaled ~format:Session.Binary ~group_commit:3 binary_path
  in
  Alcotest.(check bool) "live fingerprints agree" true (live_text = live_binary);
  Alcotest.(check bool) "text restores to the live state" true
    (restored text_path = live_text);
  Alcotest.(check bool) "binary restores to the live state" true
    (restored binary_path = live_text);
  (* Convert each codec to the other; fingerprints must not move. *)
  with_tmp_journal @@ fun converted ->
  Session.Journal.convert ~src:text_path ~dst:converted Session.Binary;
  Alcotest.(check bool) "text->binary conversion preserves state" true
    (restored converted = live_text);
  Session.Journal.convert ~src:binary_path ~dst:converted Session.Text;
  Alcotest.(check bool) "binary->text conversion preserves state" true
    (restored converted = live_text)

let test_kill_restore_everywhere_noshow () =
  check_kill_restore_everywhere ~accept_rate:(Some 0.6) ~checkpoint_every:4
    Ltc_algo.Algorithm.laf;
  check_kill_restore_everywhere ~accept_rate:(Some 0.6) ~checkpoint_every:4
    Ltc_algo.Algorithm.random

let prop_kill_restore =
  QCheck2.Test.make ~name:"kill/restore reproduces the uninterrupted run"
    ~count:60
    QCheck2.Gen.(
      let* iseed = int_range 0 10_000 in
      let* seed = int_range 0 10_000 in
      let* algo = int_range 0 (List.length online_algorithms - 1) in
      let* kill = int_range 0 25 in
      let* checkpoint_every = int_range 1 9 in
      let* noshow = bool in
      let* binary = bool in
      let* group_commit = int_range 1 5 in
      return
        (iseed, seed, algo, kill, checkpoint_every, noshow, binary, group_commit))
    (fun (iseed, seed, algo, kill, checkpoint_every, noshow, binary, group_commit)
    ->
      let algo = List.nth online_algorithms algo in
      let accept_rate = if noshow then Some 0.65 else None in
      let format = if binary then Session.Binary else Session.Text in
      let instance = small_instance ~seed:iseed () in
      let ws = arrivals instance in
      let uninterrupted =
        let s = Session.create ?accept_rate ~algorithm:algo ~seed instance in
        ignore (feed_all s ws);
        fingerprint s
      in
      with_tmp_journal @@ fun path ->
      let s =
        Session.create ?accept_rate ~journal:path ~checkpoint_every ~format
          ~group_commit ~algorithm:algo ~seed instance
      in
      List.iteri (fun j w -> if j < kill then ignore (Session.feed s w)) ws;
      (* With group commit the buffered suffix dies with the kill; the
         stream re-feeds from the restored (committed) boundary. *)
      let s' = Session.restore ~path () in
      Session.consumed s' <= kill
      &&
      (List.iteri
         (fun j w ->
           if j >= Session.consumed s' then ignore (Session.feed s' w))
         ws;
       Session.close s';
       fingerprint s' = uninterrupted))

(* A torn tail — the file cut off mid-record, as a crash during an append
   would leave it — must never lose acknowledged prefix state silently:
   restore succeeds at some consumed <= k and re-feeding the stream from
   the start converges to the uninterrupted fingerprint. *)
let test_truncated_journal_recovers () =
  let algo = Ltc_algo.Algorithm.laf in
  let seed = 5 in
  let instance = small_instance ~seed:31 () in
  let ws = arrivals instance in
  let uninterrupted =
    let s = Session.create ~algorithm:algo ~seed instance in
    ignore (feed_all s ws);
    fingerprint s
  in
  with_tmp_journal @@ fun path ->
  let s =
    Session.create ~journal:path ~checkpoint_every:6 ~algorithm:algo ~seed
      instance
  in
  let k = 17 in
  List.iteri (fun j w -> if j < k then ignore (Session.feed s w)) ws;
  let full = In_channel.with_open_bin path In_channel.input_all in
  (* Header size = a journal with zero events. *)
  let header_len =
    with_tmp_journal @@ fun p ->
    Session.close (Session.create ~journal:p ~algorithm:algo ~seed instance);
    String.length (In_channel.with_open_bin p In_channel.input_all)
  in
  let cuts = [ 1; 5; 13; 40; 120; String.length full - header_len ] in
  List.iter
    (fun cut ->
      if cut >= 1 && String.length full - cut >= header_len then begin
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc
              (String.sub full 0 (String.length full - cut)));
        let s' = Session.restore ~path () in
        if Session.consumed s' > k then
          Alcotest.failf "restore invented arrivals (cut=%d)" cut;
        List.iteri
          (fun j w ->
            if j >= Session.consumed s' then ignore (Session.feed s' w))
          ws;
        Session.close s';
        Alcotest.(check bool)
          (Printf.sprintf "fingerprint after cut=%d" cut)
          true
          (fingerprint s' = uninterrupted)
      end)
    cuts

(* Compaction keeps recovery bounded: the on-disk journal never holds more
   than checkpoint_every events, however many were fed. *)
let test_compaction_bounds_journal () =
  let algo = Ltc_algo.Algorithm.random in
  let instance = small_instance ~n_tasks:40 ~n_workers:120 ~seed:3 () in
  with_tmp_journal @@ fun path ->
  let s =
    Session.create ~journal:path ~checkpoint_every:8 ~algorithm:algo ~seed:1
      instance
  in
  ignore (feed_all s (arrivals instance));
  Session.close s;
  let events = ref 0 and snapshots = ref 0 in
  In_channel.with_open_text path (fun ic ->
      try
        while true do
          let line = input_line ic in
          if String.length line >= 2 && String.sub line 0 2 = "w " then
            incr events
          else if line = "snapshot" then incr snapshots
        done
      with End_of_file -> ());
  Alcotest.(check bool) "at most checkpoint_every events on disk" true
    (!events <= 8);
  Alcotest.(check int) "exactly one snapshot after compaction" 1 !snapshots

(* ------------------------------------------------------------ contracts *)

let test_create_validation () =
  let instance = small_instance ~seed:2 () in
  Alcotest.check_raises "offline algorithm rejected"
    (Invalid_argument
       "Session: MCF-LTC cannot serve an arrival stream (offline or \
        release-scheduled algorithm)") (fun () ->
      ignore
        (Session.create ~algorithm:Ltc_algo.Algorithm.mcf_ltc ~seed:1 instance));
  Alcotest.check_raises "accept_rate 0 rejected"
    (Invalid_argument "Session.create: accept_rate must be in (0, 1]")
    (fun () ->
      ignore
        (Session.create ~accept_rate:0.0 ~algorithm:Ltc_algo.Algorithm.laf
           ~seed:1 instance));
  Alcotest.check_raises "checkpoint_every 0 rejected"
    (Invalid_argument "Session.create: checkpoint_every must be >= 1")
    (fun () ->
      ignore
        (Session.create ~checkpoint_every:0 ~algorithm:Ltc_algo.Algorithm.laf
           ~seed:1 instance))

let test_feed_contracts () =
  let instance = small_instance ~seed:2 () in
  let s = Session.create ~algorithm:Ltc_algo.Algorithm.laf ~seed:1 instance in
  let w3 = instance.Ltc_core.Instance.workers.(2) in
  Alcotest.check_raises "gap rejected"
    (Invalid_argument "Session.feed: expected arrival 1, got 3") (fun () ->
      ignore (Session.feed s w3));
  (* drive to completion on an easy instance, then keep feeding *)
  let easy = small_instance ~n_tasks:2 ~n_workers:40 ~epsilon:0.4 ~seed:9 () in
  let s = Session.create ~algorithm:Ltc_algo.Algorithm.laf ~seed:1 easy in
  ignore (feed_all s (arrivals easy));
  Alcotest.(check bool) "completed" true (Session.completed s);
  let consumed = Session.consumed s in
  let states = Session.rng_states s in
  let extra =
    Ltc_core.Worker.make ~index:999
      ~loc:(Ltc_geo.Point.make ~x:1.0 ~y:1.0)
      ~accuracy:0.9 ~capacity:2
  in
  let d = Session.feed s extra in
  Alcotest.(check (list int)) "post-completion assigns nothing" []
    d.Session.assigned;
  Alcotest.(check bool) "post-completion ack is completed" true
    d.Session.completed;
  Alcotest.(check int) "post-completion consumes nothing" consumed
    (Session.consumed s);
  Alcotest.(check bool) "post-completion draws no rng" true
    (states = Session.rng_states s);
  Session.close s;
  Alcotest.check_raises "feed after close"
    (Invalid_argument "Session.feed: session is closed") (fun () ->
      ignore (Session.feed s extra))

(* --------------------------------------------------- corruption triage *)

(* A torn tail is forgiven (crash mid-append), but corruption in the
   interior — an unparseable record followed by intact ones — must be
   refused loudly, naming the damage. *)
let test_interior_corruption_diagnosed () =
  let algo = Ltc_algo.Algorithm.laf in
  let instance = small_instance ~seed:31 () in
  with_tmp_journal @@ fun path ->
  let s =
    Session.create ~journal:path ~checkpoint_every:100 ~algorithm:algo ~seed:5
      instance
  in
  List.iteri
    (fun j w -> if j < 12 then ignore (Session.feed s w))
    (arrivals instance);
  Session.close s;
  let lines =
    In_channel.with_open_text path (fun ic -> In_channel.input_lines ic)
  in
  let is_decision l = String.length l >= 2 && (l.[0] = 'd' || l.[0] = 'D') in
  (* index (into [lines]) of the 4th decision record *)
  let decision_idx =
    let rec go i seen = function
      | [] -> Alcotest.fail "journal holds fewer than 4 decisions"
      | l :: rest ->
        if is_decision l then
          if seen = 3 then i else go (i + 1) (seen + 1) rest
        else go (i + 1) seen rest
    in
    go 0 0 lines
  in
  let mangled =
    List.mapi (fun i l -> if i = decision_idx then "d ?!corrupt" else l) lines
  in
  Out_channel.with_open_text path (fun oc ->
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) mangled);
  (match Session.restore ~path () with
  | (_ : Session.t) -> Alcotest.fail "interior corruption must be refused"
  | exception Session.Corrupt_journal { path = p; message } ->
    Alcotest.(check string) "names the file" path p;
    let has affix = Astring.String.is_infix ~affix message in
    Alcotest.(check bool)
      (Printf.sprintf "message locates the damage: %s" message)
      true
      (has "corrupted record" && has "at byte" && has "?!corrupt"
     && has "followed by intact records"));
  (* The same damage at the very end of the file is a torn tail: dropped,
     and the session restores at a smaller consumed count. *)
  let n_lines = List.length lines in
  let tail_mangled =
    List.mapi (fun i l -> if i = n_lines - 1 then "d ?!corrupt" else l) lines
  in
  Out_channel.with_open_text path (fun oc ->
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) tail_mangled);
  let s' = Session.restore ~path () in
  Alcotest.(check int) "torn tail drops exactly the last record" 11
    (Session.consumed s');
  Session.close s'

(* ------------------------------------------------ deadline degradation *)

let delay_at hits =
  List.map
    (fun hit ->
      {
        Ltc_util.Fault.site = "session.decide";
        hit;
        action = Ltc_util.Fault.Delay 0.2;
      })
    hits

let with_faults plan f =
  Fun.protect
    ~finally:(fun () ->
      Ltc_util.Fault.disarm ();
      Ltc_util.Fault.Clock.clear ())
    (fun () ->
      Ltc_util.Fault.arm plan;
      Ltc_util.Fault.Clock.set_virtual 0.0;
      f ())

let nearest_deadline = { Session.budget_s = 0.05; fallback = Ltc_algo.Algorithm.nearest_first }

(* An unexceeded deadline is invisible: same decisions, same fingerprint
   as a session that never had one. *)
let test_deadline_unexceeded_parity () =
  let algo = Ltc_algo.Algorithm.laf in
  let instance = small_instance ~seed:41 () in
  let ws = arrivals instance in
  let plain =
    let s = Session.create ~algorithm:algo ~seed:6 instance in
    let ds = feed_all s ws in
    (ds, fingerprint s)
  in
  with_faults [] @@ fun () ->
  let s =
    Session.create ~deadline:nearest_deadline ~algorithm:algo ~seed:6 instance
  in
  let ds = feed_all s ws in
  Alcotest.(check bool) "same decisions" true (ds = fst plain);
  Alcotest.(check bool) "same fingerprint" true (fingerprint s = snd plain);
  Alcotest.(check int) "nothing degraded" 0 (Session.degraded_total s)

(* Injected slowdowns blow the budget at scripted arrivals: exactly those
   decisions are degraded, the stream stays valid, and a kill/restore of
   the D-tagged journal reproduces the uninterrupted degraded run. *)
let test_deadline_degradation_deterministic () =
  let algo = Ltc_algo.Algorithm.laf in
  let instance = small_instance ~seed:41 () in
  let ws = arrivals instance in
  let slow_hits = [ 3; 7; 11 ] in
  let uninterrupted =
    with_faults (delay_at slow_hits) @@ fun () ->
    let s =
      Session.create ~deadline:nearest_deadline ~algorithm:algo ~seed:6
        instance
    in
    let ds = feed_all s ws in
    Alcotest.(check int) "degraded_total counts the slow arrivals" 3
      (Session.degraded_total s);
    List.iteri
      (fun j (d : Session.decision) ->
        Alcotest.(check bool)
          (Printf.sprintf "arrival %d degraded flag" (j + 1))
          (List.mem (j + 1) slow_hits)
          d.Session.degraded;
        List.iter
          (fun t ->
            Alcotest.(check bool) "assigned task ids valid" true
              (t >= 0 && t < Array.length instance.Ltc_core.Instance.tasks))
          d.Session.assigned)
      ds;
    (ds, fingerprint s)
  in
  (* Same plan, fresh clock: kill after arrival 12 (past every degraded
     decision) and restore.  Replay is journal-driven — the D tags force
     the fallback without consulting the clock — so the surviving run is
     bit-identical. *)
  with_tmp_journal @@ fun path ->
  with_faults (delay_at slow_hits) @@ fun () ->
  let s =
    Session.create ~journal:path ~checkpoint_every:100
      ~deadline:nearest_deadline ~algorithm:algo ~seed:6 instance
  in
  List.iteri (fun j w -> if j < 12 then ignore (Session.feed s w)) ws;
  let s' = Session.restore ~path () in
  Alcotest.(check int) "restore replays to the kill point" 12
    (Session.consumed s');
  List.iteri (fun j w -> if j >= 12 then ignore (Session.feed s' w)) ws;
  Session.close s';
  Alcotest.(check bool) "degraded run survives kill/restore" true
    (fingerprint s' = snd uninterrupted)

(* The ltc_engine_degraded_total counter, the session's degraded_total
   and the journal's capital-D decision records are three views of the
   same events — they must agree, and replaying the journal must rebuild
   the counter from the D tags alone.  checkpoint_every exceeds the
   stream length so compaction never folds the D records into a
   snapshot. *)
let test_degraded_counter_matches_journal () =
  let algo = Ltc_algo.Algorithm.laf in
  let instance = small_instance ~seed:41 () in
  let ws = arrivals instance in
  let slow_hits = [ 2; 5; 9 ] in
  let counter () =
    Ltc_util.Metrics.Counter.value
      (Ltc_algo.Engine.degraded_counter "LAF" "Nearest")
  in
  Ltc_util.Metrics.reset ();
  Ltc_util.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Ltc_util.Metrics.set_enabled false)
  @@ fun () ->
  with_tmp_journal @@ fun path ->
  let d_records () =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.length l > 1 && l.[0] = 'D' && l.[1] = ' ')
    |> List.length
  in
  (with_faults (delay_at slow_hits) @@ fun () ->
   let s =
     Session.create ~journal:path ~checkpoint_every:1000
       ~deadline:nearest_deadline ~algorithm:algo ~seed:6 instance
   in
   ignore (feed_all s ws);
   Session.close s;
   Alcotest.(check int) "three arrivals degraded" 3 (Session.degraded_total s);
   Alcotest.(check int) "journal D records = degraded_total"
     (Session.degraded_total s) (d_records ());
   Alcotest.(check int) "metric counter = degraded_total"
     (Session.degraded_total s) (counter ()));
  (* Kill/restore against a fresh registry: the counter is rebuilt purely
     from the replayed D tags.  (Count them before restoring — restore
     itself compacts the journal, folding the tail into a snapshot.) *)
  let d_count = d_records () in
  Ltc_util.Metrics.reset ();
  let s' = Session.restore ~path () in
  Alcotest.(check int) "replay rebuilds the counter from D records" d_count
    (counter ());
  Alcotest.(check int) "degraded_total restored" 3 (Session.degraded_total s');
  Session.close s'

(* ------------------------------------------------ flight recorder ring *)

let fr_record i =
  {
    Flight_recorder.seq = i;
    offered_s = float_of_int i;
    actual_s = float_of_int i;
    done_s = float_of_int i +. 0.5;
    latency_s = 0.5;
    assigned = 1;
    degraded = i mod 2 = 0;
    journal_bytes = 0;
  }

let test_flight_recorder_ring () =
  let r = Flight_recorder.create ~capacity:3 in
  Alcotest.(check int) "empty length" 0 (Flight_recorder.length r);
  for i = 1 to 5 do
    Flight_recorder.record r (fr_record i)
  done;
  Alcotest.(check int) "length capped at capacity" 3
    (Flight_recorder.length r);
  Alcotest.(check int) "total counts every record" 5
    (Flight_recorder.total r);
  Alcotest.(check int) "dropped = overwritten" 2 (Flight_recorder.dropped r);
  let seen = ref [] in
  Flight_recorder.iter (fun rec_ -> seen := rec_.Flight_recorder.seq :: !seen) r;
  Alcotest.(check (list int)) "iter is oldest-first, survivors only"
    [ 3; 4; 5 ] (List.rev !seen);
  let ndjson = Flight_recorder.to_ndjson r in
  Alcotest.(check int) "one NDJSON line per surviving record" 3
    (List.length
       (List.filter
          (fun l -> l <> "")
          (String.split_on_char '\n' ndjson)));
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Flight_recorder.create: capacity must be >= 1")
    (fun () -> ignore (Flight_recorder.create ~capacity:0))

(* --------------------------------------------------------- loadgen runs *)

(* Virtual-timing loadgen is a pure function of its config: two passes on
   fresh sessions agree field for field, and the latencies carry the
   injected service times through the coordinated-omission correction. *)
let test_loadgen_deterministic () =
  let algo = Ltc_algo.Algorithm.laf in
  let instance = small_instance ~n_workers:40 ~seed:11 () in
  let workers = instance.Ltc_core.Instance.workers in
  let shape =
    Ltc_workload.Shape.make ~rate:200.0
      (Ltc_workload.Shape.Burst { factor = 4.0; at_s = 0.05; dur_s = 0.05 })
  in
  let deadline =
    { Session.budget_s = 0.002; fallback = Ltc_algo.Algorithm.nearest_first }
  in
  let config =
    {
      (Loadgen.default_config ~shape) with
      Loadgen.arrivals = 40;
      service = Loadgen.Exponential 2e-3;
      seed = 5;
      slo_s = Some 0.004;
    }
  in
  let pass () =
    let s = Session.create ~deadline ~algorithm:algo ~seed:3 instance in
    let r = Loadgen.run ~session:s ~workers config in
    Session.close s;
    r
  in
  let r1 = pass () in
  let r2 = pass () in
  let fp (r : Loadgen.report) =
    ( r.Loadgen.r_offered, r.Loadgen.r_consumed, r.Loadgen.r_degraded,
      r.Loadgen.r_breaches, r.Loadgen.r_first_breach, r.Loadgen.r_makespan_s,
      r.Loadgen.r_p50_s, r.Loadgen.r_p99_s, r.Loadgen.r_max_s )
  in
  Alcotest.(check bool) "two passes, identical reports" true (fp r1 = fp r2);
  Alcotest.(check bool) "exponential tail blows the 2ms budget" true
    (r1.Loadgen.r_degraded > 0);
  Alcotest.(check int) "every arrival recorded" r1.Loadgen.r_offered
    (Flight_recorder.total r1.Loadgen.r_recorder);
  (* The report renders without raising and pins its own shape string. *)
  let rendered = Format.asprintf "%a" Loadgen.pp_report r1 in
  Alcotest.(check bool) "report mentions the shape" true
    (Astring.String.is_infix ~affix:r1.Loadgen.r_shape rendered);
  (* A used session is rejected: the schedule would be misaligned. *)
  let s = Session.create ~algorithm:algo ~seed:3 instance in
  ignore (Session.feed s workers.(0));
  Alcotest.check_raises "non-fresh session rejected"
    (Invalid_argument "Loadgen.run: session must be fresh (consumed = 0)")
    (fun () -> ignore (Loadgen.run ~session:s ~workers config))

(* ------------------------------------------------------ sharded serving *)

(* Shard-local clustered workload: task clusters sit at x = 90i + 15
   (tasks within +-10, all in one 30-unit grid cell), workers arrive
   round-robin across clusters jittered +-8 around the centre, so every
   candidate set stays inside the worker's own cell — the regime where
   the sharded server must be byte-identical to one merged session. *)
let clustered_instance ?(clusters = 4) ?(tasks_per = 3) ?(n_arrivals = 48)
    ?(capacity = 2) ~seed () =
  let rng = Ltc_util.Rng.create ~seed in
  let center i = (90.0 *. float_of_int i) +. 15.0 in
  let tasks =
    Array.init (clusters * tasks_per) (fun id ->
        let c = id / tasks_per and j = id mod tasks_per in
        let dx =
          -10.0
          +. (20.0 *. float_of_int j /. float_of_int (max 1 (tasks_per - 1)))
        in
        Ltc_core.Task.make ~id
          ~loc:(Ltc_geo.Point.make ~x:(center c +. dx) ~y:10.0)
          ())
  in
  let workers =
    Array.init n_arrivals (fun i ->
        let c = i mod clusters in
        let dx = Ltc_util.Rng.float rng 16.0 -. 8.0 in
        Ltc_core.Worker.make ~index:(i + 1)
          ~loc:(Ltc_geo.Point.make ~x:(center c +. dx) ~y:10.0)
          ~accuracy:(0.7 +. Ltc_util.Rng.float rng 0.25)
          ~capacity)
  in
  Ltc_core.Instance.create ~tasks ~workers ~epsilon:0.25 ()

let session_fp s =
  ( Ltc_core.Arrangement.to_list (Session.arrangement s),
    Session.latency s,
    Session.consumed s,
    Session.completed s )

let sharded_fp srv =
  ( Ltc_core.Arrangement.to_list (Shard_server.arrangement srv),
    Shard_server.latency srv,
    Shard_server.consumed srv,
    Shard_server.completed srv )

(* Policies whose decisions are candidate-local and RNG-free — the set
   the parity guarantee covers (DESIGN.md S14). *)
let shard_local_algorithms =
  [
    Ltc_algo.Algorithm.laf;
    Ltc_algo.Algorithm.lgf;
    Ltc_algo.Algorithm.lrf;
    Ltc_algo.Algorithm.nearest_first;
  ]

let single_baseline algo instance =
  let s = Session.create ~algorithm:algo ~seed:55 instance in
  let ds = feed_all s (arrivals instance) in
  let fp = session_fp s in
  Session.close s;
  (Array.of_list ds, fp)

let check_shard_parity ~mode ~shards algo =
  let instance = clustered_instance ~seed:3 () in
  let baseline, base_fp = single_baseline algo instance in
  let srv = Shard_server.create ~mode ~shards ~algorithm:algo ~seed:99 instance in
  let streamed =
    List.concat_map (Shard_server.feed srv) (arrivals instance)
  in
  let got = streamed @ Shard_server.flush srv in
  let label what =
    Printf.sprintf "%s K=%d %s" algo.Ltc_algo.Algorithm.name shards what
  in
  Alcotest.(check int)
    (label "one decision per arrival")
    (Array.length baseline) (List.length got);
  List.iteri
    (fun i d ->
      if d <> baseline.(i) then
        Alcotest.fail
          (label (Printf.sprintf "decision %d diverges from merged session" (i + 1))))
    got;
  Alcotest.(check bool) (label "fingerprint") true (sharded_fp srv = base_fp);
  Alcotest.(check int)
    (label "shards own every task")
    (Ltc_core.Instance.task_count instance)
    (Array.fold_left ( + ) 0 (Shard_server.shard_task_counts srv));
  let merged = Shard_server.merged_hdr srv in
  Alcotest.(check int)
    (label "merged hdr holds every shard sample")
    (Array.fold_left ( + ) 0 (Shard_server.shard_consumed srv))
    (Ltc_util.Metrics.Hdr.count merged);
  Shard_server.close srv

let test_shard_parity_inline () =
  List.iter
    (fun algo ->
      List.iter
        (fun shards -> check_shard_parity ~mode:Shard_server.Inline ~shards algo)
        [ 1; 2; 3; 4; 8 ])
    shard_local_algorithms

let test_shard_parity_domains () =
  check_shard_parity ~mode:Shard_server.Domains ~shards:4 Ltc_algo.Algorithm.laf;
  check_shard_parity ~mode:Shard_server.Domains ~shards:2
    Ltc_algo.Algorithm.nearest_first

let shard_paths base =
  base :: List.init 16 (fun k -> Printf.sprintf "%s.shard%d" base k)

let with_tmp_shard_base f =
  let base = Filename.temp_file "ltc_shard_test" ".journal" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        (shard_paths base))
    (fun () -> f base)

let with_crash_at ~hit f =
  Fun.protect
    ~finally:(fun () -> Ltc_util.Fault.disarm ())
    (fun () ->
      Ltc_util.Fault.arm
        [ { Ltc_util.Fault.site = "journal.append"; hit;
            action = Ltc_util.Fault.Crash } ];
      f ())

(* Crash one shard's journal mid-append, abandon the whole server (crash
   semantics: unflushed group-commit buffers on EVERY shard are lost),
   restore all K, re-feed the stream from arrival 1 and demand the
   single-session baseline back: skipped (already-durable) arrivals emit
   nothing, everything else re-decides identically, and the final merged
   fingerprint is unchanged.  Returns whether the fault actually fired,
   so the caller can walk [hit] until the plan stops firing. *)
let sharded_kill_restore ~shards ~format ~group_commit ~hit algo instance
    (baseline, base_fp) =
  with_tmp_shard_base @@ fun base ->
  let check_decision where (d : Session.decision) =
    if d <> baseline.(d.Session.worker - 1) then
      Alcotest.fail
        (Printf.sprintf "K=%d gc=%d hit=%d: %s decision %d diverges" shards
           group_commit hit where d.Session.worker)
  in
  let srv =
    Shard_server.create ~mode:Shard_server.Inline ~journal:base ~format
      ~group_commit ~checkpoint_every:1000 ~shards ~algorithm:algo ~seed:99
      instance
  in
  let crashed = ref false in
  with_crash_at ~hit (fun () ->
      try
        List.iter
          (fun w -> List.iter (check_decision "live") (Shard_server.feed srv w))
          (arrivals instance)
      with Ltc_util.Fault.Injected_crash _ -> crashed := true);
  if not !crashed then begin
    Shard_server.close srv;
    false
  end
  else begin
    (* abandoned, not closed — the crash loses unflushed buffers *)
    let srv' = Shard_server.restore ~mode:Shard_server.Inline ~path:base () in
    Alcotest.(check int)
      (Printf.sprintf "hit=%d: restore reports the durable prefix" hit)
      (Array.fold_left ( + ) 0 (Shard_server.shard_consumed srv'))
      (Shard_server.resumed_at srv');
    List.iter
      (fun w -> List.iter (check_decision "replayed") (Shard_server.feed srv' w))
      (arrivals instance);
    ignore (Shard_server.flush srv');
    if sharded_fp srv' <> base_fp then
      Alcotest.fail
        (Printf.sprintf "K=%d gc=%d hit=%d: restored fingerprint diverges"
           shards group_commit hit);
    Shard_server.close srv';
    true
  end

let test_sharded_kill_restore_everywhere () =
  let algo = Ltc_algo.Algorithm.laf in
  let instance = clustered_instance ~seed:7 () in
  let baseline = single_baseline algo instance in
  List.iter
    (fun shards ->
      let hit = ref 1 in
      while
        sharded_kill_restore ~shards ~format:Session.Text ~group_commit:1
          ~hit:!hit algo instance baseline
      do
        incr hit
      done;
      if !hit < 10 then
        Alcotest.fail
          (Printf.sprintf "K=%d: journal.append fired only %d times" shards
             (!hit - 1)))
    [ 1; 3 ]

(* Random K / codec / group-commit / kill point: the restored sharded
   server always converges to the single-session baseline. *)
let prop_sharded_kill_restore =
  QCheck2.Test.make
    ~name:"sharded kill/restore == single session under random K/codec/gc"
    ~count:25
    QCheck2.Gen.(
      let* iseed = int_range 0 10_000 in
      let* shards = int_range 1 5 in
      let* binary = bool in
      let* group_commit = int_range 1 8 in
      let* hit = int_range 1 40 in
      return (iseed, shards, binary, group_commit, hit))
    (fun (iseed, shards, binary, group_commit, hit) ->
      let algo = Ltc_algo.Algorithm.laf in
      let instance = clustered_instance ~seed:iseed () in
      let baseline = single_baseline algo instance in
      let format = if binary then Session.Binary else Session.Text in
      ignore
        (sharded_kill_restore ~shards ~format ~group_commit ~hit algo instance
           baseline);
      true)

(* The manifest round-trips create-time configuration: a restore with no
   arrivals fed behaves like a fresh server with the same options. *)
let test_shard_manifest_roundtrip () =
  let algo = Ltc_algo.Algorithm.lgf in
  let instance = clustered_instance ~seed:5 () in
  with_tmp_shard_base @@ fun base ->
  let srv =
    Shard_server.create ~mode:Shard_server.Inline ~journal:base
      ~format:Session.Binary ~group_commit:4 ~shards:3 ~algorithm:algo
      ~seed:11 instance
  in
  Alcotest.(check bool) "manifest detected" true (Shard_server.is_manifest base);
  Alcotest.(check bool) "shard journal is no manifest" false
    (Shard_server.is_manifest (base ^ ".shard0"));
  Shard_server.close srv;
  let srv' = Shard_server.restore ~mode:Shard_server.Inline ~path:base () in
  Alcotest.(check string) "algorithm restored"
    Ltc_algo.Algorithm.lgf.Ltc_algo.Algorithm.name
    (Shard_server.algorithm_name srv');
  Alcotest.(check int) "shards restored" 3 (Shard_server.shards srv');
  Alcotest.(check int) "nothing to resume" 0 (Shard_server.resumed_at srv');
  let baseline, base_fp = single_baseline algo instance in
  let got =
    List.concat_map (Shard_server.feed srv') (arrivals instance)
    @ Shard_server.flush srv'
  in
  Alcotest.(check int) "one decision per arrival" (Array.length baseline)
    (List.length got);
  Alcotest.(check bool) "fingerprint via manifest restore" true
    (sharded_fp srv' = base_fp);
  Shard_server.close srv'

(* ------------------------------------------------------- chaos property *)

let chaos_sites =
  [
    "journal.header";
    "journal.append.fsync";
    "journal.checkpoint.fsync";
    "journal.checkpoint.rename";
    "journal.checkpoint.dir";
  ]

let chaos_write_sites = [ "journal.append"; "journal.checkpoint.write" ]

(* Crash-everywhere, seeded: whatever mix of crashes, torn writes,
   transient I/O errors and delays a random plan scripts, the surviving
   decision stream equals the fault-free baseline. *)
let prop_chaos_identical =
  QCheck2.Test.make
    ~name:"chaos: survived stream == fault-free baseline under random plans"
    ~count:25
    QCheck2.Gen.(
      let* iseed = int_range 0 10_000 in
      let* seed = int_range 0 10_000 in
      let* fault_seed = int_range 0 10_000 in
      let* crashes = int_range 0 4 in
      let* io_errors = int_range 0 3 in
      let* torn_writes = int_range 0 3 in
      let* delays = int_range 0 3 in
      let* checkpoint_every = int_range 1 9 in
      return
        (iseed, seed, fault_seed, crashes, io_errors, torn_writes, delays,
         checkpoint_every))
    (fun
      (iseed, seed, fault_seed, crashes, io_errors, torn_writes, delays,
       checkpoint_every)
    ->
      let instance = small_instance ~seed:iseed () in
      let plan =
        Ltc_util.Fault.plan ~crashes ~io_errors ~torn_writes ~delays
          ~horizon:30 ~seed:fault_seed ~sites:chaos_sites
          ~write_sites:chaos_write_sites ~delay_sites:[ "session.decide" ] ()
      in
      with_tmp_journal @@ fun journal ->
      let r =
        Chaos.run ~checkpoint_every ~plan
          ~algorithm:Ltc_algo.Algorithm.laf ~seed ~journal instance
      in
      if not r.Chaos.identical then
        QCheck2.Test.fail_reportf "diverged: %s"
          (Option.value r.Chaos.divergence ~default:"?");
      true)

(* -------------------------------------------------------- supervision *)

(* The restart-budget state machine, in isolation: the first
   [max_restarts] crashes grant backoff-scheduled restarts, everything
   after quarantines, permanently and idempotently. *)
let test_supervisor_budget () =
  let cfg = { Supervisor.default with max_restarts = 2 } in
  let sup = Supervisor.create ~shards:3 cfg in
  let crash shard = Supervisor.on_crash sup ~shard in
  (match crash 1 with
  | `Restart d ->
    Alcotest.(check (float 1e-9))
      "first restart backs off per schedule"
      (Ltc_util.Fault.Retry.backoff_s cfg.Supervisor.backoff 1)
      d
  | `Quarantine -> Alcotest.fail "first crash must restart");
  (match crash 1 with
  | `Restart d ->
    Alcotest.(check (float 1e-9))
      "second restart backs off further"
      (Ltc_util.Fault.Retry.backoff_s cfg.Supervisor.backoff 2)
      d
  | `Quarantine -> Alcotest.fail "second crash must restart");
  (match crash 1 with
  | `Restart _ -> Alcotest.fail "budget exhausted: third crash must quarantine"
  | `Quarantine -> ());
  (match crash 1 with
  | `Restart _ -> Alcotest.fail "quarantine is permanent"
  | `Quarantine -> ());
  Alcotest.(check int) "restarts granted" 2 (Supervisor.restarts sup);
  Alcotest.(check (array int))
    "per-shard restart counts" [| 0; 2; 0 |]
    (Supervisor.shard_restarts sup);
  Alcotest.(check int) "one shard quarantined" 1 (Supervisor.quarantined sup);
  Alcotest.(check bool) "shard 1 quarantined" true
    (Supervisor.is_quarantined sup ~shard:1);
  Alcotest.(check bool) "shard 0 healthy" false
    (Supervisor.is_quarantined sup ~shard:0);
  (* a sibling's quarantine does not touch this shard's budget *)
  (match crash 0 with
  | `Restart _ -> ()
  | `Quarantine -> Alcotest.fail "sibling budget must be independent");
  Supervisor.note_shed sup;
  Supervisor.note_shed sup;
  Alcotest.(check int) "shed accounting" 2 (Supervisor.shed sup);
  Alcotest.(check string) "scope name" "shard2" (Supervisor.scope ~shard:2);
  (* max_restarts = 0 quarantines on the very first crash *)
  let sup0 =
    Supervisor.create ~shards:1 { cfg with Supervisor.max_restarts = 0 }
  in
  (match Supervisor.on_crash sup0 ~shard:0 with
  | `Restart _ -> Alcotest.fail "max_restarts=0 must quarantine immediately"
  | `Quarantine -> ());
  Alcotest.check_raises "shards must be positive"
    (Invalid_argument "Supervisor.create: shards must be >= 1") (fun () ->
      ignore (Supervisor.create ~shards:0 cfg));
  Alcotest.check_raises "negative budget rejected"
    (Invalid_argument "Supervisor.create: max_restarts must be >= 0")
    (fun () ->
      ignore
        (Supervisor.create ~shards:1 { cfg with Supervisor.max_restarts = -1 }))

let with_faults faults f =
  Fun.protect
    ~finally:(fun () -> Ltc_util.Fault.disarm ())
    (fun () ->
      Ltc_util.Fault.arm faults;
      f ())

(* Crash isolation under quarantine: kill shard [kill_shard] at its
   [hit]-th scoped journal append with a zero restart budget.  The shard
   is quarantined, its pending and future arrivals come back as explicit
   unassigned degraded acks (the merge layer never hangs), and every
   {e other} shard's decision substream is byte-identical to the
   unsupervised baseline.  Returns whether the fault actually fired. *)
let shard_crash_isolation ~mode ~shards ~kill_shard ~hit instance =
  let algo = Ltc_algo.Algorithm.laf in
  let n = Array.length instance.Ltc_core.Instance.workers in
  let collect srv =
    let decisions = Array.make n None in
    let record (d : Session.decision) =
      decisions.(d.Session.worker - 1) <- Some d
    in
    List.iter
      (fun w -> List.iter record (Shard_server.feed srv w))
      (arrivals instance);
    List.iter record (Shard_server.flush srv);
    decisions
  in
  let base =
    Shard_server.create ~mode:Shard_server.Inline ~shards ~algorithm:algo
      ~seed:99 instance
  in
  let baseline = collect base in
  Shard_server.close base;
  with_tmp_shard_base @@ fun path ->
  let srv =
    Shard_server.create ~mode ~journal:path ~checkpoint_every:1000
      ~supervise:{ Supervisor.default with Supervisor.max_restarts = 0 }
      ~shards ~algorithm:algo ~seed:99 instance
  in
  let site =
    Ltc_util.Fault.scope_site
      ~scope:(Supervisor.scope ~shard:kill_shard)
      "journal.append"
  in
  let got =
    with_faults
      [ { Ltc_util.Fault.site; hit; action = Ltc_util.Fault.Crash } ]
      (fun () -> collect srv)
  in
  let crashed = Shard_server.quarantined srv = 1 in
  (* Compare per-worker decision content; the merge-global [completed] /
     [latency] watermarks legitimately differ once a shard is
     quarantined (its tasks never complete, its acks never answer). *)
  let substream (d : Session.decision) =
    (d.Session.worker, d.Session.assigned, d.Session.answered,
     d.Session.degraded)
  in
  Array.iteri
    (fun i d ->
      let w = instance.Ltc_core.Instance.workers.(i) in
      let label what =
        Printf.sprintf "K=%d kill=%d hit=%d arrival %d: %s" shards kill_shard
          hit (i + 1) what
      in
      match (d, baseline.(i)) with
      | None, _ -> Alcotest.fail (label "never acknowledged")
      | _, None -> Alcotest.fail (label "baseline never acknowledged")
      | Some d, Some b ->
        if Shard_server.shard_of_point srv w.Ltc_core.Worker.loc <> kill_shard
        then begin
          if substream d <> substream b then
            Alcotest.fail (label "sibling substream diverged")
        end
        else if substream d <> substream b then
          if not (d.Session.assigned = [] && d.Session.degraded) then
            Alcotest.fail
              (label "killed shard's arrival is neither baseline nor dead ack"))
    got;
  Shard_server.close srv;
  crashed

let test_shard_quarantine_isolation () =
  let instance = clustered_instance ~seed:13 () in
  let fired = ref 0 in
  for kill_shard = 0 to 2 do
    if
      shard_crash_isolation ~mode:Shard_server.Domains ~shards:3 ~kill_shard
        ~hit:3 instance
    then incr fired
  done;
  Alcotest.(check int) "every shard reached its third append" 3 !fired

let prop_shard_crash_isolation =
  QCheck2.Test.make
    ~name:"killing shard k leaves every sibling substream byte-identical"
    ~count:25
    QCheck2.Gen.(
      let* iseed = int_range 0 10_000 in
      let* shards = int_range 2 4 in
      let* kill_shard = int_range 0 (shards - 1) in
      let* hit = int_range 1 15 in
      return (iseed, shards, kill_shard, hit))
    (fun (iseed, shards, kill_shard, hit) ->
      let instance = clustered_instance ~seed:iseed () in
      ignore
        (shard_crash_isolation ~mode:Shard_server.Inline ~shards ~kill_shard
           ~hit instance);
      true)

(* Online recovery end-to-end: a plan that provably kills every shard
   (scoped journal.append crashes at small hits, twice per shard) must
   leave the supervised [`Domains] merged stream byte-identical to the
   unsupervised baseline — zero lost, zero duplicated, zero quarantined. *)
let test_sharded_chaos_acceptance () =
  let shards = 3 in
  let instance = clustered_instance ~seed:21 () in
  let plan =
    List.concat
      (List.init shards (fun k ->
           let site =
             Ltc_util.Fault.scope_site
               ~scope:(Supervisor.scope ~shard:k)
               "journal.append"
           in
           [
             { Ltc_util.Fault.site; hit = 2 + k;
               action = Ltc_util.Fault.Crash };
             { Ltc_util.Fault.site; hit = 7 + k;
               action = Ltc_util.Fault.Crash };
           ]))
  in
  with_tmp_shard_base @@ fun journal ->
  let r =
    Chaos.run_sharded ~plan ~shards ~algorithm:Ltc_algo.Algorithm.laf ~seed:77
      ~journal instance
  in
  if not r.Chaos.s_identical then
    Alcotest.fail
      (Printf.sprintf "diverged: %s"
         (Option.value r.Chaos.s_divergence ~default:"?"));
  Alcotest.(check int) "every crash recovered online" (2 * shards)
    r.Chaos.s_restarts;
  Array.iteri
    (fun k c ->
      if c < 1 then
        Alcotest.fail (Printf.sprintf "shard %d never crashed" k))
    r.Chaos.s_shard_restarts;
  Alcotest.(check int) "no quarantine" 0 r.Chaos.s_quarantined;
  Alcotest.(check int) "nothing shed" 0 r.Chaos.s_shed;
  Alcotest.(check int) "one ack per arrival"
    (Array.length instance.Ltc_core.Instance.workers)
    (Array.length r.Chaos.s_survived)

(* Seeded random scoped plans (crashes, torn writes, transient I/O
   errors, delays) against the concurrent supervised runtime: the merged
   stream survives whatever fires. *)
let prop_sharded_chaos_identical =
  QCheck2.Test.make
    ~name:"sharded chaos: survived stream == baseline under random plans"
    ~count:10
    QCheck2.Gen.(
      let* iseed = int_range 0 10_000 in
      let* fault_seed = int_range 0 10_000 in
      let* shards = int_range 2 4 in
      let* crashes = int_range 0 2 in
      let* io_errors = int_range 0 2 in
      let* torn_writes = int_range 0 2 in
      return (iseed, fault_seed, shards, crashes, io_errors, torn_writes))
    (fun (iseed, fault_seed, shards, crashes, io_errors, torn_writes) ->
      let instance = clustered_instance ~seed:iseed () in
      let plan =
        Chaos.sharded_plan ~crashes ~io_errors ~torn_writes ~horizon:10
          ~seed:fault_seed ~shards ()
      in
      with_tmp_shard_base @@ fun journal ->
      let r =
        Chaos.run_sharded ~checkpoint_every:8 ~plan ~shards
          ~algorithm:Ltc_algo.Algorithm.laf ~seed:77 ~journal instance
      in
      if not r.Chaos.s_identical then
        QCheck2.Test.fail_reportf "diverged: %s"
          (Option.value r.Chaos.s_divergence ~default:"?");
      true)

(* Overload shedding: pin shard 0's domain with a scoped decide delay
   behind a 1-slot mailbox; arrivals that find the mailbox full are shed
   as immediate unassigned degraded acks, counted, and nothing is lost
   or duplicated. *)
let test_shard_shed () =
  let instance = clustered_instance ~seed:31 () in
  let n = Array.length instance.Ltc_core.Instance.workers in
  let srv =
    Shard_server.create ~mode:Shard_server.Domains ~mailbox:1
      ~supervise:
        { Supervisor.default with
          Supervisor.max_restarts = 0;
          overload = Supervisor.Shed }
      ~shards:2 ~algorithm:Ltc_algo.Algorithm.laf ~seed:99 instance
  in
  let site =
    Ltc_util.Fault.scope_site ~scope:(Supervisor.scope ~shard:0)
      "session.decide"
  in
  let got = ref [] in
  with_faults
    [ { Ltc_util.Fault.site; hit = 1; action = Ltc_util.Fault.Delay 0.3 } ]
    (fun () ->
      List.iter
        (fun w -> got := List.rev_append (Shard_server.feed srv w) !got)
        (arrivals instance);
      got := List.rev_append (Shard_server.flush srv) !got);
  let got = List.rev !got in
  Alcotest.(check int) "one ack per arrival" n (List.length got);
  let dead =
    List.length
      (List.filter
         (fun (d : Session.decision) ->
           d.Session.assigned = [] && d.Session.degraded)
         got)
  in
  Alcotest.(check int) "shed counter matches dead acks" dead
    (Shard_server.shed srv);
  if Shard_server.shed srv < 1 then
    Alcotest.fail "a 300ms decide stall behind a 1-slot mailbox must shed";
  Alcotest.(check int) "no restarts" 0 (Shard_server.restarts srv);
  Shard_server.close srv

(* Supervision options are validated up front. *)
let test_supervise_validation () =
  let instance = clustered_instance ~seed:3 () in
  Alcotest.check_raises "restart budget without a journal"
    (Invalid_argument
       "Shard_server.create: supervision with restarts requires ~journal \
        (restore needs a shard journal; use max_restarts = 0 to \
        quarantine-on-crash without one)") (fun () ->
      ignore
        (Shard_server.create ~supervise:Supervisor.default ~shards:2
           ~algorithm:Ltc_algo.Algorithm.laf ~seed:1 instance))

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "service.parity",
      [
        Alcotest.test_case "feed == Engine.run" `Quick test_feed_matches_engine;
        Alcotest.test_case "feed == Engine.run under no-show" `Quick
          test_feed_matches_engine_noshow;
      ] );
    ( "service.restore",
      [
        Alcotest.test_case "kill/restore at every arrival" `Slow
          test_kill_restore_everywhere;
        Alcotest.test_case "kill/restore at every arrival (no-show)" `Slow
          test_kill_restore_everywhere_noshow;
        Alcotest.test_case "binary group-commit kill/restore at every arrival"
          `Slow test_kill_restore_group_commit;
        Alcotest.test_case "cross-codec parity and conversion" `Quick
          test_cross_codec_parity;
        qcheck prop_kill_restore;
        Alcotest.test_case "torn tail recovers" `Quick
          test_truncated_journal_recovers;
        Alcotest.test_case "interior corruption diagnosed" `Quick
          test_interior_corruption_diagnosed;
        Alcotest.test_case "compaction bounds the journal" `Quick
          test_compaction_bounds_journal;
      ] );
    ( "service.deadline",
      [
        Alcotest.test_case "unexceeded deadline is invisible" `Quick
          test_deadline_unexceeded_parity;
        Alcotest.test_case "degradation is deterministic and restorable"
          `Quick test_deadline_degradation_deterministic;
        Alcotest.test_case "degraded counter matches journal D records"
          `Quick test_degraded_counter_matches_journal;
      ] );
    ( "service.loadgen",
      [
        Alcotest.test_case "flight recorder ring" `Quick
          test_flight_recorder_ring;
        Alcotest.test_case "virtual loadgen is deterministic" `Quick
          test_loadgen_deterministic;
      ] );
    ( "service.chaos",
      [ qcheck prop_chaos_identical ] );
    ( "service.shard",
      [
        Alcotest.test_case "sharded == merged session at every K" `Quick
          test_shard_parity_inline;
        Alcotest.test_case "domain-per-shard parity" `Quick
          test_shard_parity_domains;
        Alcotest.test_case "sharded kill/restore at every append" `Slow
          test_sharded_kill_restore_everywhere;
        qcheck prop_sharded_kill_restore;
        Alcotest.test_case "manifest roundtrip" `Quick
          test_shard_manifest_roundtrip;
      ] );
    ( "service.supervision",
      [
        Alcotest.test_case "restart budget state machine" `Quick
          test_supervisor_budget;
        Alcotest.test_case "quarantine isolates the killed shard" `Quick
          test_shard_quarantine_isolation;
        qcheck prop_shard_crash_isolation;
        Alcotest.test_case "online recovery: every shard killed twice" `Quick
          test_sharded_chaos_acceptance;
        qcheck prop_sharded_chaos_identical;
        Alcotest.test_case "overload shedding" `Quick test_shard_shed;
        Alcotest.test_case "supervise validation" `Quick
          test_supervise_validation;
      ] );
    ( "service.contracts",
      [
        Alcotest.test_case "create validation" `Quick test_create_validation;
        Alcotest.test_case "feed contracts" `Quick test_feed_contracts;
      ] );
  ]
