(* Observability layer: Metrics registry, Trace spans, engine telemetry and
   the pinned pp_outcome format.

   The registry and the trace ring are process-global, so every test that
   enables them restores the disabled default on the way out (the rest of
   the suite must keep running with free no-op instrumentation). *)

open Ltc_util

let with_obs ?(trace = false) f =
  Metrics.set_enabled true;
  if trace then begin
    Trace.clear ();
    Trace.set_enabled true
  end;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Trace.set_enabled false)
    f

let contains ~affix s = Astring.String.is_infix ~affix s

(* -------------------------------------------------------------- counters *)

let test_counter_semantics () =
  let c = Metrics.counter "test_obs_counter" in
  with_obs (fun () ->
      Metrics.Counter.incr c;
      Metrics.Counter.incr c;
      Metrics.Counter.add c 40;
      Alcotest.(check int) "incr + add accumulate" 42 (Metrics.Counter.value c));
  Metrics.Counter.incr c;
  Alcotest.(check int) "disabled incr is a no-op" 42 (Metrics.Counter.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Metrics.Counter.add: negative amount") (fun () ->
      Metrics.Counter.add c (-1));
  let c' = Metrics.counter "test_obs_counter" in
  with_obs (fun () -> Metrics.Counter.incr c');
  Alcotest.(check int) "re-registration returns the same instance" 43
    (Metrics.Counter.value c)

let test_gauge_semantics () =
  let g = Metrics.gauge "test_obs_gauge" in
  with_obs (fun () ->
      Metrics.Gauge.set g 2.5;
      Metrics.Gauge.add g 0.5;
      Alcotest.(check (float 1e-9)) "set + add" 3.0 (Metrics.Gauge.value g));
  Metrics.Gauge.set g 99.0;
  Alcotest.(check (float 1e-9)) "disabled set is a no-op" 3.0
    (Metrics.Gauge.value g)

let test_histogram_semantics () =
  let h =
    Metrics.histogram ~buckets:[| 1.0; 2.0; 4.0 |] "test_obs_histogram"
  in
  with_obs (fun () ->
      List.iter (Metrics.Histogram.observe h) [ 0.5; 1.0; 1.5; 3.0; 100.0 ]);
  Alcotest.(check int) "count" 5 (Metrics.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 106.0 (Metrics.Histogram.sum h);
  (* Cumulative bucket counts appear in the snapshot: le=1 holds the two
     observations <= 1 (boundary inclusive), +Inf holds all five. *)
  let prom = Metrics.to_prometheus () in
  List.iter
    (fun affix ->
      Alcotest.(check bool) affix true (contains ~affix prom))
    [
      "test_obs_histogram_bucket{le=\"1\"} 2";
      "test_obs_histogram_bucket{le=\"2\"} 3";
      "test_obs_histogram_bucket{le=\"4\"} 4";
      "test_obs_histogram_bucket{le=\"+Inf\"} 5";
      "test_obs_histogram_count 5";
    ]

let test_registration_collisions () =
  ignore (Metrics.counter "test_obs_kind_clash");
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics: \"test_obs_kind_clash\" already registered as a counter")
    (fun () -> ignore (Metrics.gauge "test_obs_kind_clash"));
  ignore (Metrics.histogram ~buckets:[| 1.0 |] "test_obs_bucket_clash");
  Alcotest.check_raises "bucket clash rejected"
    (Invalid_argument "Metrics: \"test_obs_bucket_clash\" already registered with other buckets")
    (fun () ->
      ignore (Metrics.histogram ~buckets:[| 2.0 |] "test_obs_bucket_clash"));
  Alcotest.check_raises "duplicate label keys rejected"
    (Invalid_argument "Metrics: duplicate label key \"k\" on metric \"test_obs_dup_label\"")
    (fun () ->
      ignore
        (Metrics.counter ~labels:[ ("k", "a"); ("k", "b") ] "test_obs_dup_label"));
  Alcotest.check_raises "unordered buckets rejected"
    (Invalid_argument "Metrics.histogram: buckets must be strictly increasing")
    (fun () ->
      ignore (Metrics.histogram ~buckets:[| 2.0; 1.0 |] "test_obs_bad_buckets"))

let test_label_series_independent () =
  let a = Metrics.counter ~labels:[ ("algo", "A") ] "test_obs_labeled"
  and b = Metrics.counter ~labels:[ ("algo", "B") ] "test_obs_labeled" in
  with_obs (fun () ->
      Metrics.Counter.incr a;
      Metrics.Counter.incr a;
      Metrics.Counter.incr b);
  Alcotest.(check int) "series A" 2 (Metrics.Counter.value a);
  Alcotest.(check int) "series B" 1 (Metrics.Counter.value b);
  (* Label order is canonicalised: both spellings name the same series. *)
  let c1 =
    Metrics.counter ~labels:[ ("x", "1"); ("y", "2") ] "test_obs_label_order"
  and c2 =
    Metrics.counter ~labels:[ ("y", "2"); ("x", "1") ] "test_obs_label_order"
  in
  with_obs (fun () -> Metrics.Counter.incr c1);
  Alcotest.(check int) "canonical label order" 1 (Metrics.Counter.value c2)

let test_snapshot_determinism () =
  (* A fixed scenario renders byte-identically, and repeated snapshots of
     the same state are equal. *)
  Metrics.reset ();
  let c = Metrics.counter ~labels:[ ("algo", "X") ] "test_obs_counter" in
  with_obs (fun () -> Metrics.Counter.add c 7);
  let s1 = Metrics.to_prometheus () and s2 = Metrics.to_prometheus () in
  Alcotest.(check string) "stable prometheus snapshot" s1 s2;
  Alcotest.(check bool) "series rendered" true
    (contains ~affix:"test_obs_counter{algo=\"X\"} 7" s1);
  let j1 = Metrics.to_json () and j2 = Metrics.to_json () in
  Alcotest.(check string) "stable json snapshot" j1 j2;
  Alcotest.(check bool) "json series rendered" true
    (contains
       ~affix:
         "{\"name\":\"test_obs_counter\",\"type\":\"counter\",\"help\":\"\",\"labels\":{\"algo\":\"X\"},\"value\":7}"
       j1);
  (* reset zeroes values but keeps registrations. *)
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.Counter.value c);
  Alcotest.(check bool) "registration survives reset" true
    (contains ~affix:"test_obs_counter{algo=\"X\"} 0" (Metrics.to_prometheus ()))

(* ----------------------------------------------------------------- trace *)

let test_trace_nesting () =
  with_obs ~trace:true (fun () ->
      Trace.with_span "outer" (fun () ->
          Trace.with_span "inner-1" (fun () -> ());
          Trace.with_span "inner-2" (fun () ->
              Trace.with_span "leaf" (fun () -> ()))));
  let spans = Trace.spans () in
  Alcotest.(check (list string))
    "start order" [ "outer"; "inner-1"; "inner-2"; "leaf" ]
    (List.map (fun s -> s.Trace.name) spans);
  Alcotest.(check (list int))
    "depths" [ 0; 1; 1; 2 ]
    (List.map (fun s -> s.Trace.depth) spans);
  let outer = List.hd spans in
  List.iter
    (fun s ->
      if s.Trace.depth = 1 then
        Alcotest.(check int)
          (s.Trace.name ^ " parent") outer.Trace.id s.Trace.parent)
    spans;
  Alcotest.(check int) "outer is a root" (-1) outer.Trace.parent

let test_trace_disabled_is_free () =
  Trace.clear ();
  Alcotest.(check int) "returns the function's value" 9
    (Trace.with_span "ignored" (fun () -> 9));
  Alcotest.(check int) "no spans recorded" 0 (List.length (Trace.spans ()));
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped ())

let test_trace_exception_safety () =
  with_obs ~trace:true (fun () ->
      (try
         Trace.with_span "outer" (fun () ->
             Trace.with_span "boom" (fun () -> failwith "boom"))
       with Failure _ -> ());
      Trace.with_span "after" (fun () -> ()));
  let spans = Trace.spans () in
  Alcotest.(check (list string))
    "spans recorded despite raise" [ "outer"; "boom"; "after" ]
    (List.map (fun s -> s.Trace.name) spans);
  let after = List.nth spans 2 in
  Alcotest.(check int) "depth restored after raise" 0 after.Trace.depth

let test_trace_ring_overwrite () =
  Trace.set_capacity 4;
  Fun.protect
    ~finally:(fun () -> Trace.set_capacity 1024)
    (fun () ->
      with_obs ~trace:true (fun () ->
          for i = 1 to 6 do
            Trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
          done);
      Alcotest.(check int) "ring keeps capacity" 4
        (List.length (Trace.spans ()));
      Alcotest.(check int) "overwritten spans counted" 2 (Trace.dropped ());
      Alcotest.(check (list string))
        "newest spans survive" [ "s3"; "s4"; "s5"; "s6" ]
        (List.map (fun s -> s.Trace.name) (Trace.spans ())))

(* ------------------------------------------------- engine telemetry + pp *)

let test_engine_records_metrics () =
  let instance = Fixtures.example2 () in
  Metrics.reset ();
  let outcome =
    with_obs ~trace:true (fun () ->
        (Ltc_algo.Algorithm.laf).Ltc_algo.Algorithm.run ~seed:1 instance)
  in
  let arrivals =
    Metrics.counter ~labels:[ ("algo", "LAF") ] "ltc_engine_arrivals_total"
  in
  Alcotest.(check int) "arrivals counter = workers consumed"
    outcome.Ltc_algo.Engine.workers_consumed
    (Metrics.Counter.value arrivals);
  let t = outcome.Ltc_algo.Engine.telemetry in
  Alcotest.(check int) "telemetry decisions = workers consumed"
    outcome.Ltc_algo.Engine.workers_consumed t.Ltc_algo.Engine.decisions;
  Alcotest.(check bool) "decision time accumulated" true
    (t.Ltc_algo.Engine.decision_seconds_total >= 0.0
    && t.Ltc_algo.Engine.decision_seconds_max
       <= t.Ltc_algo.Engine.decision_seconds_total +. 1e-12);
  Alcotest.(check bool) "engine span recorded" true
    (List.exists
       (fun s -> s.Trace.name = "engine:LAF")
       (Trace.spans ()));
  Metrics.reset ()

let test_pp_outcome_format () =
  let outcome =
    {
      Ltc_algo.Engine.name = "LAF";
      arrangement =
        Ltc_core.Arrangement.add Ltc_core.Arrangement.empty ~worker:3 ~task:0;
      completed = true;
      latency = 3;
      workers_consumed = 5;
      peak_memory_mb = 1.25;
      telemetry = Ltc_algo.Engine.no_telemetry;
    }
  in
  Alcotest.(check string) "pinned format"
    "LAF: latency=3 assignments=1 completed=true consumed=5 mem=1.25MB"
    (Format.asprintf "%a" Ltc_algo.Engine.pp_outcome outcome)

(* ------------------------------------------------------------------- hdr *)

(* Nearest-rank percentile on the raw sample — the ground truth the
   log-bucketed estimate must stay within rel_error of. *)
let exact_percentile sorted q =
  let n = Array.length sorted in
  let rank = max 1 (int_of_float (ceil (q /. 100.0 *. float_of_int n))) in
  sorted.(rank - 1)

let prop_hdr_relative_error =
  QCheck2.Test.make
    ~name:"hdr: every percentile within the configured relative error"
    ~count:100
    QCheck2.Gen.(list_size (int_range 1 500) (float_range 1e-6 1e4))
    (fun xs ->
      let h = Metrics.Hdr.create () in
      List.iter (Metrics.Hdr.observe h) xs;
      let sorted = Array.of_list (List.sort compare xs) in
      if Metrics.Hdr.count h <> Array.length sorted then
        QCheck2.Test.fail_reportf "count %d <> %d" (Metrics.Hdr.count h)
          (Array.length sorted);
      let tol = Metrics.Hdr.rel_error h +. 1e-12 in
      List.iter
        (fun q ->
          let est = Metrics.Hdr.percentile h q in
          let exact = exact_percentile sorted q in
          if Float.abs (est -. exact) > tol *. exact then
            QCheck2.Test.fail_reportf "p%g: estimate %g vs exact %g (tol %g)"
              q est exact tol)
        [ 0.0; 50.0; 90.0; 99.0; 99.9; 100.0 ];
      true)

let prop_hdr_merge_is_concat =
  QCheck2.Test.make
    ~name:"hdr: merge == observing the concatenation" ~count:100
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 200) (float_range 1e-6 1e4))
        (list_size (int_range 0 200) (float_range 1e-6 1e4)))
    (fun (xs, ys) ->
      let ha = Metrics.Hdr.create () in
      let hb = Metrics.Hdr.create () in
      let hc = Metrics.Hdr.create () in
      List.iter (Metrics.Hdr.observe ha) xs;
      List.iter (Metrics.Hdr.observe hb) ys;
      List.iter (Metrics.Hdr.observe hc) (xs @ ys);
      Metrics.Hdr.merge ~into:ha hb;
      if Metrics.Hdr.count ha <> Metrics.Hdr.count hc then
        QCheck2.Test.fail_reportf "count %d <> %d" (Metrics.Hdr.count ha)
          (Metrics.Hdr.count hc);
      if Float.abs (Metrics.Hdr.sum ha -. Metrics.Hdr.sum hc)
         > 1e-9 *. Float.max 1.0 (Metrics.Hdr.sum hc)
      then
        QCheck2.Test.fail_reportf "sum %g <> %g" (Metrics.Hdr.sum ha)
          (Metrics.Hdr.sum hc);
      if Metrics.Hdr.count hc > 0 then begin
        if Metrics.Hdr.min_observed ha <> Metrics.Hdr.min_observed hc then
          QCheck2.Test.fail_report "min diverged";
        if Metrics.Hdr.max_observed ha <> Metrics.Hdr.max_observed hc then
          QCheck2.Test.fail_report "max diverged";
        (* Same bucket counts => bit-equal percentiles. *)
        List.iter
          (fun q ->
            if Metrics.Hdr.percentile ha q <> Metrics.Hdr.percentile hc q then
              QCheck2.Test.fail_reportf "p%g diverged" q)
          [ 50.0; 99.0; 100.0 ]
      end;
      true)

let test_hdr_drops_non_finite () =
  let h = Metrics.Hdr.create () in
  Metrics.Hdr.observe h 1.0;
  Metrics.Hdr.observe h Float.nan;
  Metrics.Hdr.observe h Float.infinity;
  Metrics.Hdr.observe h Float.neg_infinity;
  Alcotest.(check int) "only the finite value counted" 1 (Metrics.Hdr.count h);
  Alcotest.(check int) "three drops recorded" 3 (Metrics.Hdr.dropped h);
  Alcotest.(check (float 0.0)) "sum untouched" 1.0 (Metrics.Hdr.sum h);
  with_obs (fun () ->
      let before = Metrics.dropped_observations () in
      Metrics.Hdr.observe h Float.nan;
      Alcotest.(check int) "registry drop counter bumped" (before + 1)
        (Metrics.dropped_observations ()))

let test_hdr_merge_config_mismatch () =
  let a = Metrics.Hdr.create ~rel_error:0.01 () in
  let b = Metrics.Hdr.create ~rel_error:0.05 () in
  Alcotest.check_raises "different resolutions don't merge"
    (Invalid_argument "Metrics.Hdr.merge: incompatible configurations")
    (fun () -> Metrics.Hdr.merge ~into:a b)

let test_histogram_drops_non_finite () =
  let h = Metrics.histogram "test_obs_hist_nonfinite" in
  with_obs (fun () ->
      Metrics.Histogram.observe h 0.5;
      let before = Metrics.dropped_observations () in
      Metrics.Histogram.observe h Float.nan;
      Metrics.Histogram.observe h Float.infinity;
      Alcotest.(check int) "count unchanged by non-finite" 1
        (Metrics.Histogram.count h);
      Alcotest.(check (float 0.0)) "sum unchanged" 0.5
        (Metrics.Histogram.sum h);
      Alcotest.(check int) "drops counted" (before + 2)
        (Metrics.dropped_observations ()))

(* Prometheus exposition format: label pairs sorted by key, values
   escaped (backslash, quote, newline) — exact bytes. *)
let test_prom_label_escaping () =
  let c =
    Metrics.counter
      ~labels:[ ("z", "plain"); ("a", "a\"b\\c\nd") ]
      "test_obs_escape_total"
  in
  with_obs (fun () ->
      Metrics.Counter.incr c;
      let lines = String.split_on_char '\n' (Metrics.to_prometheus ()) in
      match
        List.find_opt
          (fun l -> Astring.String.is_prefix ~affix:"test_obs_escape_total{" l)
          lines
      with
      | None -> Alcotest.fail "series missing from exposition"
      | Some line ->
        Alcotest.(check string) "sorted + escaped"
          "test_obs_escape_total{a=\"a\\\"b\\\\c\\nd\",z=\"plain\"} 1" line)

let test_trace_chrome_export () =
  with_obs ~trace:true (fun () ->
      Trace.with_span "outer" (fun () -> Trace.with_span "inner" (fun () -> ()));
      let j = Trace.to_chrome_json () in
      Alcotest.(check bool) "JSON array" true
        (String.length j > 2 && j.[0] = '[');
      Alcotest.(check bool) "complete events" true
        (contains ~affix:"\"ph\":\"X\"" j);
      Alcotest.(check bool) "outer span exported" true
        (contains ~affix:"\"name\":\"outer\"" j);
      Alcotest.(check bool) "inner span exported" true
        (contains ~affix:"\"name\":\"inner\"" j))

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
        Alcotest.test_case "gauge semantics" `Quick test_gauge_semantics;
        Alcotest.test_case "histogram semantics" `Quick
          test_histogram_semantics;
        Alcotest.test_case "registration collisions" `Quick
          test_registration_collisions;
        Alcotest.test_case "labeled series independent" `Quick
          test_label_series_independent;
        Alcotest.test_case "snapshot determinism" `Quick
          test_snapshot_determinism;
        Alcotest.test_case "trace nesting" `Quick test_trace_nesting;
        Alcotest.test_case "trace disabled is free" `Quick
          test_trace_disabled_is_free;
        Alcotest.test_case "trace exception safety" `Quick
          test_trace_exception_safety;
        Alcotest.test_case "trace ring overwrite" `Quick
          test_trace_ring_overwrite;
        Alcotest.test_case "engine records metrics" `Quick
          test_engine_records_metrics;
        Alcotest.test_case "pp_outcome format" `Quick test_pp_outcome_format;
      ] );
    ( "obs.hdr",
      [
        QCheck_alcotest.to_alcotest prop_hdr_relative_error;
        QCheck_alcotest.to_alcotest prop_hdr_merge_is_concat;
        Alcotest.test_case "non-finite dropped" `Quick
          test_hdr_drops_non_finite;
        Alcotest.test_case "merge config mismatch" `Quick
          test_hdr_merge_config_mismatch;
        Alcotest.test_case "histogram non-finite dropped" `Quick
          test_histogram_drops_non_finite;
        Alcotest.test_case "prometheus label escaping" `Quick
          test_prom_label_escaping;
        Alcotest.test_case "chrome trace export" `Quick
          test_trace_chrome_export;
      ] );
  ]
