(* Observability layer: Metrics registry, Trace spans, engine telemetry and
   the pinned pp_outcome format.

   The registry and the trace ring are process-global, so every test that
   enables them restores the disabled default on the way out (the rest of
   the suite must keep running with free no-op instrumentation). *)

open Ltc_util

let with_obs ?(trace = false) f =
  Metrics.set_enabled true;
  if trace then begin
    Trace.clear ();
    Trace.set_enabled true
  end;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Trace.set_enabled false)
    f

let contains ~affix s = Astring.String.is_infix ~affix s

(* -------------------------------------------------------------- counters *)

let test_counter_semantics () =
  let c = Metrics.counter "test_obs_counter" in
  with_obs (fun () ->
      Metrics.Counter.incr c;
      Metrics.Counter.incr c;
      Metrics.Counter.add c 40;
      Alcotest.(check int) "incr + add accumulate" 42 (Metrics.Counter.value c));
  Metrics.Counter.incr c;
  Alcotest.(check int) "disabled incr is a no-op" 42 (Metrics.Counter.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Metrics.Counter.add: negative amount") (fun () ->
      Metrics.Counter.add c (-1));
  let c' = Metrics.counter "test_obs_counter" in
  with_obs (fun () -> Metrics.Counter.incr c');
  Alcotest.(check int) "re-registration returns the same instance" 43
    (Metrics.Counter.value c)

let test_gauge_semantics () =
  let g = Metrics.gauge "test_obs_gauge" in
  with_obs (fun () ->
      Metrics.Gauge.set g 2.5;
      Metrics.Gauge.add g 0.5;
      Alcotest.(check (float 1e-9)) "set + add" 3.0 (Metrics.Gauge.value g));
  Metrics.Gauge.set g 99.0;
  Alcotest.(check (float 1e-9)) "disabled set is a no-op" 3.0
    (Metrics.Gauge.value g)

let test_histogram_semantics () =
  let h =
    Metrics.histogram ~buckets:[| 1.0; 2.0; 4.0 |] "test_obs_histogram"
  in
  with_obs (fun () ->
      List.iter (Metrics.Histogram.observe h) [ 0.5; 1.0; 1.5; 3.0; 100.0 ]);
  Alcotest.(check int) "count" 5 (Metrics.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 106.0 (Metrics.Histogram.sum h);
  (* Cumulative bucket counts appear in the snapshot: le=1 holds the two
     observations <= 1 (boundary inclusive), +Inf holds all five. *)
  let prom = Metrics.to_prometheus () in
  List.iter
    (fun affix ->
      Alcotest.(check bool) affix true (contains ~affix prom))
    [
      "test_obs_histogram_bucket{le=\"1\"} 2";
      "test_obs_histogram_bucket{le=\"2\"} 3";
      "test_obs_histogram_bucket{le=\"4\"} 4";
      "test_obs_histogram_bucket{le=\"+Inf\"} 5";
      "test_obs_histogram_count 5";
    ]

let test_registration_collisions () =
  ignore (Metrics.counter "test_obs_kind_clash");
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics: \"test_obs_kind_clash\" already registered as a counter")
    (fun () -> ignore (Metrics.gauge "test_obs_kind_clash"));
  ignore (Metrics.histogram ~buckets:[| 1.0 |] "test_obs_bucket_clash");
  Alcotest.check_raises "bucket clash rejected"
    (Invalid_argument "Metrics: \"test_obs_bucket_clash\" already registered with other buckets")
    (fun () ->
      ignore (Metrics.histogram ~buckets:[| 2.0 |] "test_obs_bucket_clash"));
  Alcotest.check_raises "duplicate label keys rejected"
    (Invalid_argument "Metrics: duplicate label key \"k\" on metric \"test_obs_dup_label\"")
    (fun () ->
      ignore
        (Metrics.counter ~labels:[ ("k", "a"); ("k", "b") ] "test_obs_dup_label"));
  Alcotest.check_raises "unordered buckets rejected"
    (Invalid_argument "Metrics.histogram: buckets must be strictly increasing")
    (fun () ->
      ignore (Metrics.histogram ~buckets:[| 2.0; 1.0 |] "test_obs_bad_buckets"))

let test_label_series_independent () =
  let a = Metrics.counter ~labels:[ ("algo", "A") ] "test_obs_labeled"
  and b = Metrics.counter ~labels:[ ("algo", "B") ] "test_obs_labeled" in
  with_obs (fun () ->
      Metrics.Counter.incr a;
      Metrics.Counter.incr a;
      Metrics.Counter.incr b);
  Alcotest.(check int) "series A" 2 (Metrics.Counter.value a);
  Alcotest.(check int) "series B" 1 (Metrics.Counter.value b);
  (* Label order is canonicalised: both spellings name the same series. *)
  let c1 =
    Metrics.counter ~labels:[ ("x", "1"); ("y", "2") ] "test_obs_label_order"
  and c2 =
    Metrics.counter ~labels:[ ("y", "2"); ("x", "1") ] "test_obs_label_order"
  in
  with_obs (fun () -> Metrics.Counter.incr c1);
  Alcotest.(check int) "canonical label order" 1 (Metrics.Counter.value c2)

let test_snapshot_determinism () =
  (* A fixed scenario renders byte-identically, and repeated snapshots of
     the same state are equal. *)
  Metrics.reset ();
  let c = Metrics.counter ~labels:[ ("algo", "X") ] "test_obs_counter" in
  with_obs (fun () -> Metrics.Counter.add c 7);
  let s1 = Metrics.to_prometheus () and s2 = Metrics.to_prometheus () in
  Alcotest.(check string) "stable prometheus snapshot" s1 s2;
  Alcotest.(check bool) "series rendered" true
    (contains ~affix:"test_obs_counter{algo=\"X\"} 7" s1);
  let j1 = Metrics.to_json () and j2 = Metrics.to_json () in
  Alcotest.(check string) "stable json snapshot" j1 j2;
  Alcotest.(check bool) "json series rendered" true
    (contains
       ~affix:
         "{\"name\":\"test_obs_counter\",\"type\":\"counter\",\"help\":\"\",\"labels\":{\"algo\":\"X\"},\"value\":7}"
       j1);
  (* reset zeroes values but keeps registrations. *)
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.Counter.value c);
  Alcotest.(check bool) "registration survives reset" true
    (contains ~affix:"test_obs_counter{algo=\"X\"} 0" (Metrics.to_prometheus ()))

(* ----------------------------------------------------------------- trace *)

let test_trace_nesting () =
  with_obs ~trace:true (fun () ->
      Trace.with_span "outer" (fun () ->
          Trace.with_span "inner-1" (fun () -> ());
          Trace.with_span "inner-2" (fun () ->
              Trace.with_span "leaf" (fun () -> ()))));
  let spans = Trace.spans () in
  Alcotest.(check (list string))
    "start order" [ "outer"; "inner-1"; "inner-2"; "leaf" ]
    (List.map (fun s -> s.Trace.name) spans);
  Alcotest.(check (list int))
    "depths" [ 0; 1; 1; 2 ]
    (List.map (fun s -> s.Trace.depth) spans);
  let outer = List.hd spans in
  List.iter
    (fun s ->
      if s.Trace.depth = 1 then
        Alcotest.(check int)
          (s.Trace.name ^ " parent") outer.Trace.id s.Trace.parent)
    spans;
  Alcotest.(check int) "outer is a root" (-1) outer.Trace.parent

let test_trace_disabled_is_free () =
  Trace.clear ();
  Alcotest.(check int) "returns the function's value" 9
    (Trace.with_span "ignored" (fun () -> 9));
  Alcotest.(check int) "no spans recorded" 0 (List.length (Trace.spans ()));
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped ())

let test_trace_exception_safety () =
  with_obs ~trace:true (fun () ->
      (try
         Trace.with_span "outer" (fun () ->
             Trace.with_span "boom" (fun () -> failwith "boom"))
       with Failure _ -> ());
      Trace.with_span "after" (fun () -> ()));
  let spans = Trace.spans () in
  Alcotest.(check (list string))
    "spans recorded despite raise" [ "outer"; "boom"; "after" ]
    (List.map (fun s -> s.Trace.name) spans);
  let after = List.nth spans 2 in
  Alcotest.(check int) "depth restored after raise" 0 after.Trace.depth

let test_trace_ring_overwrite () =
  Trace.set_capacity 4;
  Fun.protect
    ~finally:(fun () -> Trace.set_capacity 1024)
    (fun () ->
      with_obs ~trace:true (fun () ->
          for i = 1 to 6 do
            Trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
          done);
      Alcotest.(check int) "ring keeps capacity" 4
        (List.length (Trace.spans ()));
      Alcotest.(check int) "overwritten spans counted" 2 (Trace.dropped ());
      Alcotest.(check (list string))
        "newest spans survive" [ "s3"; "s4"; "s5"; "s6" ]
        (List.map (fun s -> s.Trace.name) (Trace.spans ())))

(* ------------------------------------------------- engine telemetry + pp *)

let test_engine_records_metrics () =
  let instance = Fixtures.example2 () in
  Metrics.reset ();
  let outcome =
    with_obs ~trace:true (fun () ->
        (Ltc_algo.Algorithm.laf).Ltc_algo.Algorithm.run ~seed:1 instance)
  in
  let arrivals =
    Metrics.counter ~labels:[ ("algo", "LAF") ] "ltc_engine_arrivals_total"
  in
  Alcotest.(check int) "arrivals counter = workers consumed"
    outcome.Ltc_algo.Engine.workers_consumed
    (Metrics.Counter.value arrivals);
  let t = outcome.Ltc_algo.Engine.telemetry in
  Alcotest.(check int) "telemetry decisions = workers consumed"
    outcome.Ltc_algo.Engine.workers_consumed t.Ltc_algo.Engine.decisions;
  Alcotest.(check bool) "decision time accumulated" true
    (t.Ltc_algo.Engine.decision_seconds_total >= 0.0
    && t.Ltc_algo.Engine.decision_seconds_max
       <= t.Ltc_algo.Engine.decision_seconds_total +. 1e-12);
  Alcotest.(check bool) "engine span recorded" true
    (List.exists
       (fun s -> s.Trace.name = "engine:LAF")
       (Trace.spans ()));
  Metrics.reset ()

let test_pp_outcome_format () =
  let outcome =
    {
      Ltc_algo.Engine.name = "LAF";
      arrangement =
        Ltc_core.Arrangement.add Ltc_core.Arrangement.empty ~worker:3 ~task:0;
      completed = true;
      latency = 3;
      workers_consumed = 5;
      peak_memory_mb = 1.25;
      telemetry = Ltc_algo.Engine.no_telemetry;
    }
  in
  Alcotest.(check string) "pinned format"
    "LAF: latency=3 assignments=1 completed=true consumed=5 mem=1.25MB"
    (Format.asprintf "%a" Ltc_algo.Engine.pp_outcome outcome)

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
        Alcotest.test_case "gauge semantics" `Quick test_gauge_semantics;
        Alcotest.test_case "histogram semantics" `Quick
          test_histogram_semantics;
        Alcotest.test_case "registration collisions" `Quick
          test_registration_collisions;
        Alcotest.test_case "labeled series independent" `Quick
          test_label_series_independent;
        Alcotest.test_case "snapshot determinism" `Quick
          test_snapshot_determinism;
        Alcotest.test_case "trace nesting" `Quick test_trace_nesting;
        Alcotest.test_case "trace disabled is free" `Quick
          test_trace_disabled_is_free;
        Alcotest.test_case "trace exception safety" `Quick
          test_trace_exception_safety;
        Alcotest.test_case "trace ring overwrite" `Quick
          test_trace_ring_overwrite;
        Alcotest.test_case "engine records metrics" `Quick
          test_engine_records_metrics;
        Alcotest.test_case "pp_outcome format" `Quick test_pp_outcome_format;
      ] );
  ]
