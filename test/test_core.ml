open Ltc_core

let check_float = Alcotest.(check (float 1e-9))

let point ~x ~y = Ltc_geo.Point.make ~x ~y

(* --------------------------------------------------------------- Quality *)

let test_delta () =
  check_float "eps 0.2" (2.0 *. log 5.0) (Quality.delta ~epsilon:0.2);
  check_float "eps 0.14" (2.0 *. log (1.0 /. 0.14)) (Quality.delta ~epsilon:0.14);
  Alcotest.check_raises "eps 0 rejected"
    (Invalid_argument "Quality.delta: epsilon must lie in (0, 1)") (fun () ->
      ignore (Quality.delta ~epsilon:0.0))

let test_delta_hoeffding_consistency () =
  (* By construction: accumulating exactly delta makes the Hoeffding bound
     equal epsilon. *)
  let epsilon = 0.1 in
  let delta = Quality.delta ~epsilon in
  check_float "bound at delta = epsilon" epsilon
    (Quality.hoeffding_error_bound ~acc_star_sum:delta)

let test_majority () =
  Alcotest.(check bool) "yes wins" true
    (Quality.majority [ (0.9, Task.Yes); (0.3, Task.No) ] = Some Task.Yes);
  Alcotest.(check bool) "no wins" true
    (Quality.majority [ (0.2, Task.Yes); (0.8, Task.No) ] = Some Task.No);
  Alcotest.(check bool) "tie" true
    (Quality.majority [ (0.5, Task.Yes); (0.5, Task.No) ] = None);
  Alcotest.(check bool) "empty" true (Quality.majority [] = None)

let test_scoring_threshold () =
  check_float "hoeffding threshold is delta"
    (Quality.delta ~epsilon:0.2)
    (Quality.threshold Quality.Hoeffding ~epsilon:0.2);
  check_float "sum-accuracy threshold fixed" 2.92
    (Quality.threshold (Quality.Sum_accuracy { threshold = 2.92 }) ~epsilon:0.2)

(* -------------------------------------------------------------- Accuracy *)

let worker_at ~x ~y ~p =
  Worker.make ~index:1 ~loc:(point ~x ~y) ~accuracy:p ~capacity:2

let task_at ~x ~y = Task.make ~id:0 ~loc:(point ~x ~y) ()

let test_sigmoid_close () =
  (* Right at the task, the sigmoid is ~ p (exp(-30) vanishes). *)
  let model = Accuracy.Sigmoid { dmax = 30.0 } in
  let w = worker_at ~x:0.0 ~y:0.0 ~p:0.9 in
  let t = task_at ~x:0.0 ~y:0.0 in
  Alcotest.(check bool) "acc ~ p" true
    (Float.abs (Accuracy.acc model w t -. 0.9) < 1e-9)

let test_sigmoid_at_dmax () =
  (* At distance dmax the sigmoid halves the historical accuracy. *)
  let model = Accuracy.Sigmoid { dmax = 30.0 } in
  let w = worker_at ~x:0.0 ~y:0.0 ~p:0.9 in
  let t = task_at ~x:30.0 ~y:0.0 in
  check_float "acc = p/2" 0.45 (Accuracy.acc model w t)

let test_sigmoid_monotone_in_distance () =
  let model = Accuracy.Sigmoid { dmax = 30.0 } in
  let w d = worker_at ~x:d ~y:0.0 ~p:0.9 in
  let t = task_at ~x:0.0 ~y:0.0 in
  let prev = ref infinity in
  List.iter
    (fun d ->
      let a = Accuracy.acc model (w d) t in
      Alcotest.(check bool) "decreasing" true (a <= !prev +. 1e-12);
      prev := a)
    [ 0.0; 5.0; 15.0; 29.0; 30.0; 35.0; 60.0 ]

let test_acc_star () =
  let model = Accuracy.Historical in
  let w = worker_at ~x:0.0 ~y:0.0 ~p:0.96 in
  let t = task_at ~x:9.0 ~y:9.0 in
  check_float "(2*0.96-1)^2" (0.92 *. 0.92) (Accuracy.acc_star model w t)

let test_custom_clamped () =
  let model = Accuracy.Custom { name = "wild"; f = (fun _ _ -> 1.7) } in
  let w = worker_at ~x:0.0 ~y:0.0 ~p:0.9 in
  check_float "clamped to 1" 1.0 (Accuracy.acc model w (task_at ~x:0.0 ~y:0.0))

(* ---------------------------------------------------------------- Worker *)

let test_worker_validation () =
  Alcotest.check_raises "index 0" (Invalid_argument "Worker.make: index must be >= 1")
    (fun () ->
      ignore
        (Worker.make ~index:0 ~loc:(point ~x:0.0 ~y:0.0) ~accuracy:0.9
           ~capacity:1));
  Alcotest.check_raises "accuracy 1.5"
    (Invalid_argument "Worker.make: accuracy out of [0, 1]") (fun () ->
      ignore (Worker.make ~index:1 ~loc:(point ~x:0.0 ~y:0.0) ~accuracy:1.5 ~capacity:1));
  Alcotest.(check bool) "trusted" true
    (Worker.is_trusted (worker_at ~x:0.0 ~y:0.0 ~p:0.7));
  Alcotest.(check bool) "spam" false
    (Worker.is_trusted (worker_at ~x:0.0 ~y:0.0 ~p:0.5))

(* -------------------------------------------------------------- Instance *)

let tiny_instance ?(epsilon = 0.2) ?candidate_radius () =
  let tasks =
    [| Task.make ~id:0 ~loc:(point ~x:0.0 ~y:0.0) ();
       Task.make ~id:1 ~loc:(point ~x:50.0 ~y:0.0) () |]
  in
  let workers =
    [| Worker.make ~index:1 ~loc:(point ~x:1.0 ~y:0.0) ~accuracy:0.9 ~capacity:2;
       Worker.make ~index:2 ~loc:(point ~x:49.0 ~y:0.0) ~accuracy:0.9 ~capacity:2 |]
  in
  Instance.create ?candidate_radius ~tasks ~workers ~epsilon ()

let test_instance_validation () =
  let bad_tasks = [| Task.make ~id:1 ~loc:(point ~x:0.0 ~y:0.0) () |] in
  Alcotest.check_raises "task id mismatch"
    (Invalid_argument "Instance.create: task ids must match their positions")
    (fun () ->
      ignore (Instance.create ~tasks:bad_tasks ~workers:[||] ~epsilon:0.1 ()));
  let tasks = [| Task.make ~id:0 ~loc:(point ~x:0.0 ~y:0.0) () |] in
  let bad_workers =
    [| Worker.make ~index:2 ~loc:(point ~x:0.0 ~y:0.0) ~accuracy:0.9 ~capacity:1 |]
  in
  Alcotest.check_raises "worker order"
    (Invalid_argument
       "Instance.create: workers must be in contiguous 1-based arrival order")
    (fun () ->
      ignore (Instance.create ~tasks ~workers:bad_workers ~epsilon:0.1 ()))

let test_instance_candidates_radius () =
  let i = tiny_instance () in
  (* Default radius = dmax = 30: each worker sees only its nearby task. *)
  Alcotest.(check (list int)) "worker 1 near task 0" [ 0 ]
    (Instance.candidates i i.Instance.workers.(0));
  Alcotest.(check (list int)) "worker 2 near task 1" [ 1 ]
    (Instance.candidates i i.Instance.workers.(1))

let test_instance_candidates_unrestricted () =
  let i = tiny_instance ~candidate_radius:None () in
  Alcotest.(check (list int)) "all tasks" [ 0; 1 ]
    (Instance.candidates i i.Instance.workers.(0));
  Alcotest.(check int) "count" 2
    (Instance.count_candidates i i.Instance.workers.(0))

let test_instance_score_matches_quality () =
  let i = tiny_instance () in
  let w = i.Instance.workers.(0) in
  check_float "score = Acc*"
    (Accuracy.acc_star i.Instance.accuracy w i.Instance.tasks.(0))
    (Instance.score i w 0)

(* ----------------------------------------------------------- Arrangement *)

let test_arrangement_accumulates () =
  let a =
    Arrangement.empty
    |> Arrangement.add ~worker:3 ~task:0
    |> Arrangement.add ~worker:1 ~task:1
  in
  Alcotest.(check int) "size" 2 (Arrangement.size a);
  Alcotest.(check int) "latency = max index" 3 (Arrangement.latency a);
  Alcotest.(check (list int)) "tasks of worker 3" [ 0 ]
    (Arrangement.tasks_of_worker a 3);
  Alcotest.(check (list int)) "workers of task 1" [ 1 ]
    (Arrangement.workers_of_task a 1);
  Alcotest.(check int) "empty latency" 0 (Arrangement.latency Arrangement.empty)

let test_validate_happy () =
  let i = tiny_instance () in
  (* Complete both tasks: delta(0.2) ~ 3.22; Acc* per assignment ~ 0.63
     (p=0.9 close by) so 6 assignments per task exceed it... but capacity
     is 2, so build a bigger instance instead with epsilon large. *)
  let tasks = [| Task.make ~id:0 ~loc:(point ~x:0.0 ~y:0.0) () |] in
  let workers =
    Array.init 8 (fun k ->
        Worker.make ~index:(k + 1) ~loc:(point ~x:1.0 ~y:0.0) ~accuracy:0.9
          ~capacity:2)
  in
  let inst = Instance.create ~tasks ~workers ~epsilon:0.2 () in
  let arrangement =
    Array.to_list workers
    |> List.fold_left
         (fun m (w : Worker.t) -> Arrangement.add m ~worker:w.index ~task:0)
         Arrangement.empty
  in
  (match Arrangement.validate inst arrangement with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "unexpected violations: %a"
      (Format.pp_print_list Arrangement.pp_violation)
      vs);
  ignore i

let test_validate_catches_violations () =
  let i = tiny_instance () in
  let a =
    Arrangement.empty
    |> Arrangement.add ~worker:1 ~task:0
    |> Arrangement.add ~worker:1 ~task:0  (* duplicate *)
    |> Arrangement.add ~worker:1 ~task:1  (* not a candidate *)
    |> Arrangement.add ~worker:9 ~task:0  (* out of range *)
  in
  match Arrangement.validate i a with
  | Ok () -> Alcotest.fail "expected violations"
  | Error vs ->
    let has pred = List.exists pred vs in
    Alcotest.(check bool) "duplicate" true
      (has (function Arrangement.Duplicate_assignment _ -> true | _ -> false));
    Alcotest.(check bool) "not candidate" true
      (has (function Arrangement.Not_a_candidate _ -> true | _ -> false));
    Alcotest.(check bool) "out of range" true
      (has (function Arrangement.Worker_out_of_range _ -> true | _ -> false));
    Alcotest.(check bool) "incomplete tasks" true
      (has (function Arrangement.Task_incomplete _ -> true | _ -> false))

let test_validate_capacity () =
  let tasks =
    Array.init 3 (fun id -> Task.make ~id ~loc:(point ~x:(float_of_int id) ~y:0.0) ())
  in
  let workers =
    [| Worker.make ~index:1 ~loc:(point ~x:1.0 ~y:0.0) ~accuracy:0.9 ~capacity:2 |]
  in
  let i = Instance.create ~tasks ~workers ~epsilon:0.2 () in
  let a =
    Arrangement.empty
    |> Arrangement.add ~worker:1 ~task:0
    |> Arrangement.add ~worker:1 ~task:1
    |> Arrangement.add ~worker:1 ~task:2
  in
  match Arrangement.validate i a with
  | Ok () -> Alcotest.fail "expected capacity violation"
  | Error vs ->
    Alcotest.(check bool) "capacity" true
      (List.exists
         (function Arrangement.Capacity_exceeded _ -> true | _ -> false)
         vs)

(* -------------------------------------------------------------- Progress *)

let test_progress_basic () =
  let p = Progress.create ~threshold:2.0 ~n_tasks:3 in
  Alcotest.(check int) "incomplete" 3 (Progress.incomplete_count p);
  check_float "sum remaining" 6.0 (Progress.sum_remaining p);
  check_float "max remaining" 2.0 (Progress.max_remaining p);
  Progress.record p ~task:1 ~score:1.5;
  check_float "remaining of 1" 0.5 (Progress.remaining p 1);
  check_float "sum" 4.5 (Progress.sum_remaining p);
  Progress.record p ~task:1 ~score:0.6;
  Alcotest.(check bool) "task 1 complete" true (Progress.is_complete p 1);
  Alcotest.(check int) "two left" 2 (Progress.incomplete_count p);
  check_float "max still 2" 2.0 (Progress.max_remaining p);
  Progress.record p ~task:0 ~score:2.0;
  Progress.record p ~task:2 ~score:2.5;
  Alcotest.(check bool) "all done" true (Progress.all_complete p);
  check_float "sum 0" 0.0 (Progress.sum_remaining p);
  check_float "max 0" 0.0 (Progress.max_remaining p)

let test_progress_overshoot () =
  let p = Progress.create ~threshold:1.0 ~n_tasks:1 in
  Progress.record p ~task:0 ~score:5.0;
  Progress.record p ~task:0 ~score:5.0;
  check_float "accumulated keeps growing" 10.0 (Progress.accumulated p 0);
  Alcotest.(check bool) "complete" true (Progress.all_complete p)

let test_progress_zero_tasks () =
  let p = Progress.create ~threshold:1.0 ~n_tasks:0 in
  Alcotest.(check bool) "trivially complete" true (Progress.all_complete p)

let prop_progress_aggregates =
  (* Against a model: random records; sum/max over explicit arrays. *)
  let gen =
    QCheck2.Gen.(
      let* n = int_range 1 8 in
      let* ops = list_size (int_range 0 60)
          (pair (int_range 0 (n - 1)) (float_range 0.0 1.0)) in
      return (n, ops))
  in
  QCheck2.Test.make ~name:"progress aggregates match a model" ~count:300 gen
    (fun (n, ops) ->
      let threshold = 2.0 in
      let p = Progress.create ~threshold ~n_tasks:n in
      let model = Array.make n 0.0 in
      List.iter
        (fun (task, score) ->
          Progress.record p ~task ~score;
          model.(task) <- model.(task) +. score)
        ops;
      let rem i = Float.max 0.0 (threshold -. model.(i)) in
      let sum = ref 0.0 and mx = ref 0.0 and inc = ref 0 in
      for i = 0 to n - 1 do
        sum := !sum +. rem i;
        mx := Float.max !mx (rem i);
        if rem i > 0.0 then incr inc
      done;
      Float.abs (Progress.sum_remaining p -. !sum) < 1e-6
      && Float.abs (Progress.max_remaining p -. !mx) < 1e-6
      && Progress.incomplete_count p = !inc
      && Progress.all_complete p = (!inc = 0))

let prop_progress_iter_incomplete =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 1 8 in
      let* ops = list_size (int_range 0 40)
          (pair (int_range 0 (n - 1)) (float_range 0.5 1.5)) in
      return (n, ops))
  in
  QCheck2.Test.make
    ~name:"iter_incomplete visits exactly the open tasks, ascending"
    ~count:200 gen
    (fun (n, ops) ->
      let p = Progress.create ~threshold:2.0 ~n_tasks:n in
      List.iter (fun (task, score) -> Progress.record p ~task ~score) ops;
      let visited = ref [] in
      Progress.iter_incomplete p (fun task -> visited := task :: !visited);
      (* [iter_incomplete] documents ascending id order (the flow network
         construction relies on it), so the reversed collection must equal
         the filtered range without re-sorting. *)
      let visited = List.rev !visited in
      let expected =
        List.filter (fun i -> not (Progress.is_complete p i))
          (List.init n (fun i -> i))
      in
      visited = expected)

(* ----------------------------------------------------------- Truth_infer *)

(* Planted one-coin model: sample answers, check EM recovers the setup. *)
let planted_observations ~seed ~n_workers ~n_tasks ~answers_per_worker =
  let rng = Ltc_util.Rng.create ~seed in
  let accuracies =
    Array.init n_workers (fun _ -> 0.65 +. Ltc_util.Rng.float rng 0.3)
  in
  let truths =
    Array.init n_tasks (fun _ ->
        if Ltc_util.Rng.bool rng then Task.Yes else Task.No)
  in
  let observations =
    List.concat
      (List.init n_workers (fun wi ->
           List.init answers_per_worker (fun _ ->
               let task = Ltc_util.Rng.int rng n_tasks in
               let correct = Ltc_util.Rng.bernoulli rng accuracies.(wi) in
               {
                 Truth_infer.worker = wi + 1;
                 task;
                 answer =
                   (if correct then truths.(task) else Task.negate truths.(task));
               })))
  in
  (accuracies, truths, observations)

let test_truth_infer_recovers_planted_model () =
  let n_workers = 40 and n_tasks = 60 in
  let accuracies, truths, observations =
    planted_observations ~seed:5 ~n_workers ~n_tasks ~answers_per_worker:60
  in
  let r = Truth_infer.run ~n_workers ~n_tasks observations in
  Alcotest.(check bool) "converged" true r.Truth_infer.converged;
  (* Accuracy estimates close to the planted values on average. *)
  let err = ref 0.0 in
  Array.iteri
    (fun wi p -> err := !err +. Float.abs (p -. accuracies.(wi)))
    r.Truth_infer.accuracies;
  let mean_err = !err /. float_of_int n_workers in
  Alcotest.(check bool)
    (Printf.sprintf "mean accuracy error %.3f < 0.05" mean_err)
    true (mean_err < 0.05);
  (* Inferred labels overwhelmingly correct. *)
  let correct = ref 0 and labelled = ref 0 in
  Array.iteri
    (fun task label ->
      match label with
      | None -> ()
      | Some l ->
        incr labelled;
        if Task.answer_equal l truths.(task) then incr correct)
    r.Truth_infer.labels;
  Alcotest.(check bool)
    (Printf.sprintf "labels %d/%d correct" !correct !labelled)
    true
    (float_of_int !correct /. float_of_int !labelled > 0.95)

let test_truth_infer_beats_majority () =
  (* With polarized worker quality, EM should label at least as well as
     unweighted majority. *)
  let n_workers = 30 and n_tasks = 80 in
  let _, truths, observations =
    planted_observations ~seed:8 ~n_workers ~n_tasks ~answers_per_worker:20
  in
  let score (r : Truth_infer.result) =
    let correct = ref 0 in
    Array.iteri
      (fun task label ->
        match label with
        | Some l when Task.answer_equal l truths.(task) -> incr correct
        | Some _ | None -> ())
      r.Truth_infer.labels;
    !correct
  in
  let em = Truth_infer.run ~n_workers ~n_tasks observations in
  let mv = Truth_infer.majority_baseline ~n_workers ~n_tasks observations in
  Alcotest.(check bool)
    (Printf.sprintf "EM %d >= majority %d" (score em) (score mv))
    true
    (score em >= score mv)

let test_truth_infer_empty_and_validation () =
  let r = Truth_infer.run ~n_workers:3 ~n_tasks:2 [] in
  Alcotest.(check bool) "prior accuracies" true
    (Array.for_all (fun p -> p = 0.75) r.Truth_infer.accuracies);
  Alcotest.(check bool) "no labels" true
    (Array.for_all (( = ) None) r.Truth_infer.labels);
  Alcotest.check_raises "bad worker"
    (Invalid_argument "Truth_infer: worker index out of range") (fun () ->
      ignore
        (Truth_infer.run ~n_workers:1 ~n_tasks:1
           [ { Truth_infer.worker = 2; task = 0; answer = Task.Yes } ]))

let test_truth_infer_accuracy_clamped () =
  (* A worker who always disagrees with everyone cannot fall below 0.51
     (the anchor that prevents label-flipped solutions). *)
  let observations =
    List.concat
      (List.init 10 (fun task ->
           [
             { Truth_infer.worker = 1; task; answer = Task.Yes };
             { Truth_infer.worker = 2; task; answer = Task.Yes };
             { Truth_infer.worker = 3; task; answer = Task.No };
           ]))
  in
  let r = Truth_infer.run ~n_workers:3 ~n_tasks:10 observations in
  Alcotest.(check (float 1e-9)) "contrarian clamped" 0.51
    r.Truth_infer.accuracies.(2);
  Alcotest.(check bool) "agreers near 0.99" true
    (r.Truth_infer.accuracies.(0) > 0.9)

(* Planted asymmetric (two-coin) answers. *)
let planted_two_coin ~seed ~n_workers ~n_tasks ~answers_per_worker =
  let rng = Ltc_util.Rng.create ~seed in
  let alphas = Array.init n_workers (fun _ -> 0.6 +. Ltc_util.Rng.float rng 0.35) in
  let betas = Array.init n_workers (fun _ -> 0.6 +. Ltc_util.Rng.float rng 0.35) in
  let truths =
    Array.init n_tasks (fun _ ->
        if Ltc_util.Rng.bool rng then Task.Yes else Task.No)
  in
  let observations =
    List.concat
      (List.init n_workers (fun wi ->
           List.init answers_per_worker (fun _ ->
               let task = Ltc_util.Rng.int rng n_tasks in
               let says_yes =
                 match truths.(task) with
                 | Task.Yes -> Ltc_util.Rng.bernoulli rng alphas.(wi)
                 | Task.No -> not (Ltc_util.Rng.bernoulli rng betas.(wi))
               in
               {
                 Truth_infer.worker = wi + 1;
                 task;
                 answer = (if says_yes then Task.Yes else Task.No);
               })))
  in
  (alphas, betas, truths, observations)

let test_two_coin_recovers_asymmetry () =
  let n_workers = 30 and n_tasks = 80 in
  let alphas, betas, truths, observations =
    planted_two_coin ~seed:13 ~n_workers ~n_tasks ~answers_per_worker:80
  in
  let r = Truth_infer.run_two_coin ~n_workers ~n_tasks observations in
  Alcotest.(check bool) "converged" true r.Truth_infer.tc_converged;
  let mean_err planted estimated =
    let total = ref 0.0 in
    Array.iteri
      (fun i p ->
        total :=
          !total +. Float.abs (Float.max 0.51 (Float.min 0.99 p) -. estimated.(i)))
      planted;
    !total /. float_of_int n_workers
  in
  Alcotest.(check bool) "sensitivity recovered" true
    (mean_err alphas r.Truth_infer.sensitivities < 0.06);
  Alcotest.(check bool) "specificity recovered" true
    (mean_err betas r.Truth_infer.specificities < 0.06);
  (* Labels nearly perfect with this much evidence. *)
  let correct = ref 0 in
  Array.iteri
    (fun task label ->
      match label with
      | Some l when Task.answer_equal l truths.(task) -> incr correct
      | Some _ | None -> ())
    r.Truth_infer.tc_labels;
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d labels" !correct n_tasks)
    true
    (float_of_int !correct /. float_of_int n_tasks > 0.95)

let test_two_coin_prevalence () =
  (* Strongly skewed truths should show in the estimated prevalence. *)
  let rng = Ltc_util.Rng.create ~seed:21 in
  let observations =
    List.concat
      (List.init 20 (fun wi ->
           List.init 40 (fun _ ->
               let task = Ltc_util.Rng.int rng 40 in
               (* All truths Yes; workers 85% accurate. *)
               let correct = Ltc_util.Rng.bernoulli rng 0.85 in
               {
                 Truth_infer.worker = wi + 1;
                 task;
                 answer = (if correct then Task.Yes else Task.No);
               })))
  in
  let r = Truth_infer.run_two_coin ~n_workers:20 ~n_tasks:40 observations in
  Alcotest.(check bool)
    (Printf.sprintf "prevalence %.2f > 0.8" r.Truth_infer.prevalence)
    true
    (r.Truth_infer.prevalence > 0.8)

let test_two_coin_balanced_accuracy () =
  let r = Truth_infer.run_two_coin ~n_workers:2 ~n_tasks:1 [] in
  Alcotest.(check (float 1e-9)) "balanced accuracy of priors" 0.75
    r.Truth_infer.tc_accuracies.(0)

(* ------------------------------------------------------------- Truth_sim *)

let test_truth_sim_respects_bound () =
  (* A task completed to delta must err at most epsilon (plus sampling
     noise; Hoeffding is loose, so the real error is far below). *)
  let epsilon = 0.2 in
  let tasks = [| Task.make ~id:0 ~loc:(point ~x:0.0 ~y:0.0) () |] in
  let workers =
    Array.init 8 (fun k ->
        Worker.make ~index:(k + 1) ~loc:(point ~x:0.5 ~y:0.0) ~accuracy:0.9
          ~capacity:1)
  in
  let i = Instance.create ~tasks ~workers ~epsilon () in
  let arrangement =
    Array.fold_left
      (fun m (w : Worker.t) -> Arrangement.add m ~worker:w.Worker.index ~task:0)
      Arrangement.empty workers
  in
  (* 8 workers x Acc* ~ 0.63 = 5.1 > delta = 3.22: completed. *)
  (match Arrangement.validate i arrangement with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "fixture must validate");
  let report =
    Truth_sim.run ~trials:2000 (Ltc_util.Rng.create ~seed:99) i arrangement
  in
  Alcotest.(check bool) "error below epsilon" true
    (report.Truth_sim.max_error <= epsilon);
  Alcotest.(check int) "votes" 8 report.Truth_sim.tasks.(0).Truth_sim.votes

let test_truth_sim_unassigned_task_errs () =
  let tasks = [| Task.make ~id:0 ~loc:(point ~x:0.0 ~y:0.0) () |] in
  let workers =
    [| Worker.make ~index:1 ~loc:(point ~x:0.0 ~y:0.0) ~accuracy:0.9 ~capacity:1 |]
  in
  let i = Instance.create ~tasks ~workers ~epsilon:0.2 () in
  let report =
    Truth_sim.run ~trials:50 (Ltc_util.Rng.create ~seed:1) i Arrangement.empty
  in
  check_float "error rate 1" 1.0 report.Truth_sim.tasks.(0).Truth_sim.error_rate

(* -------------------------------------------------------------- Analysis *)

let analysis_fixture () =
  let tasks =
    [| Task.make ~id:0 ~loc:(point ~x:0.0 ~y:0.0) ();
       Task.make ~id:1 ~loc:(point ~x:4.0 ~y:0.0) () |]
  in
  let workers =
    (* 6 workers x Acc* ~ 0.64 = 3.8 > delta(0.2) = 3.22: completable. *)
    Array.init 6 (fun k ->
        Worker.make ~index:(k + 1)
          ~loc:(point ~x:(float_of_int k) ~y:3.0)
          ~accuracy:0.9 ~capacity:2)
  in
  Instance.create ~tasks ~workers ~epsilon:0.2 ()

let test_analysis_counts () =
  let i = analysis_fixture () in
  let a =
    Arrangement.empty
    |> Arrangement.add ~worker:1 ~task:0
    |> Arrangement.add ~worker:1 ~task:1
    |> Arrangement.add ~worker:3 ~task:0
  in
  let r = Analysis.of_arrangement i a in
  Alcotest.(check int) "assignments" 3 r.Analysis.assignments;
  Alcotest.(check int) "workers used" 2 r.Analysis.workers_used;
  Alcotest.(check int) "latency" 3 r.Analysis.latency;
  Alcotest.(check int) "load max" 2 r.Analysis.load_max;
  check_float "load mean" 1.5 r.Analysis.load_mean;
  Alcotest.(check int) "votes min" 1 r.Analysis.votes_min;
  Alcotest.(check int) "votes max" 2 r.Analysis.votes_max;
  check_float "votes mean" 1.5 r.Analysis.votes_mean

let test_analysis_gini () =
  let i = analysis_fixture () in
  (* Perfectly even load: gini 0. *)
  let even =
    Arrangement.empty
    |> Arrangement.add ~worker:1 ~task:0
    |> Arrangement.add ~worker:2 ~task:1
  in
  let r = Analysis.of_arrangement i even in
  check_float "gini 0 on even load" 0.0 r.Analysis.load_gini;
  (* Uneven: 2 tasks on w1, none elsewhere => gini still 0 over recruited
     workers only (single recruited worker). *)
  let solo =
    Arrangement.empty
    |> Arrangement.add ~worker:1 ~task:0
    |> Arrangement.add ~worker:1 ~task:1
  in
  let r = Analysis.of_arrangement i solo in
  check_float "gini single worker" 0.0 r.Analysis.load_gini

let test_analysis_margin_and_bound () =
  let i = analysis_fixture () in
  let a =
    Array.fold_left
      (fun m (w : Worker.t) ->
        Arrangement.add (Arrangement.add m ~worker:w.index ~task:0) ~worker:w.index
          ~task:1)
      Arrangement.empty i.Instance.workers
  in
  let r = Analysis.of_arrangement i a in
  Alcotest.(check bool) "positive margin once complete" true
    (r.Analysis.margin_min > 0.0);
  Alcotest.(check bool) "error bound below epsilon" true
    (r.Analysis.error_bound_worst < 0.2);
  Alcotest.(check bool) "travel max is finite" true
    (r.Analysis.travel_max > 0.0 && r.Analysis.travel_max < 10.0)

let test_analysis_empty () =
  let i = analysis_fixture () in
  let r = Analysis.of_arrangement i Arrangement.empty in
  Alcotest.(check int) "no assignments" 0 r.Analysis.assignments;
  check_float "worst bound is 1 (no votes)" 1.0 r.Analysis.error_bound_worst

(* ------------------------------------------------------------- Serialize *)

let test_serialize_roundtrip () =
  let spec =
    {
      Ltc_workload.Spec.default_synthetic with
      Ltc_workload.Spec.n_tasks = 15;
      n_workers = 60;
      world_side = 100.0;
    }
  in
  let i = Ltc_workload.Synthetic.generate (Ltc_util.Rng.create ~seed:9) spec in
  let s = Serialize.instance_to_string i in
  let j = Serialize.instance_of_string s in
  Alcotest.(check bool) "tasks preserved" true (i.Instance.tasks = j.Instance.tasks);
  Alcotest.(check bool) "workers preserved" true
    (i.Instance.workers = j.Instance.workers);
  Alcotest.(check (float 0.0)) "epsilon preserved" i.Instance.epsilon
    j.Instance.epsilon;
  Alcotest.(check bool) "radius preserved" true
    (i.Instance.candidate_radius = j.Instance.candidate_radius)

let test_serialize_per_task_epsilon () =
  let tasks =
    [| Task.make ~id:0 ~loc:(point ~x:1.0 ~y:2.0) ();
       Task.make ~epsilon:0.03 ~id:1 ~loc:(point ~x:3.0 ~y:4.0) () |]
  in
  let workers =
    [| Worker.make ~index:1 ~loc:(point ~x:1.0 ~y:2.0) ~accuracy:0.8 ~capacity:3 |]
  in
  let i = Instance.create ~tasks ~workers ~epsilon:0.2 () in
  let j = Serialize.instance_of_string (Serialize.instance_to_string i) in
  Alcotest.(check bool) "per-task epsilon survives" true
    (j.Instance.tasks.(1).Task.epsilon = Some 0.03);
  Alcotest.(check bool) "default task epsilon survives" true
    (j.Instance.tasks.(0).Task.epsilon = None)

let test_serialize_file_roundtrip () =
  let i = analysis_fixture () in
  let path = Filename.temp_file "ltc_test" ".inst" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.save_instance ~path i;
      let j = Serialize.load_instance ~path in
      Alcotest.(check bool) "file roundtrip" true
        (i.Instance.tasks = j.Instance.tasks
        && i.Instance.workers = j.Instance.workers))

let test_serialize_arrangement_roundtrip () =
  let a =
    Arrangement.empty
    |> Arrangement.add ~worker:2 ~task:0
    |> Arrangement.add ~worker:5 ~task:3
  in
  let path = Filename.temp_file "ltc_test" ".arr" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.save_arrangement ~path a;
      let b = Serialize.load_arrangement ~path in
      Alcotest.(check bool) "same assignments" true
        (Arrangement.to_list a = Arrangement.to_list b);
      Alcotest.(check int) "same latency" (Arrangement.latency a)
        (Arrangement.latency b))

let test_serialize_rejects_custom_model () =
  let i =
    Instance.create
      ~accuracy:(Accuracy.Custom { name = "m"; f = (fun _ _ -> 0.9) })
      ~tasks:[| Task.make ~id:0 ~loc:(point ~x:0.0 ~y:0.0) () |]
      ~workers:[||] ~epsilon:0.1 ()
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Serialize.instance_to_string i);
       false
     with Invalid_argument _ -> true)

let test_serialize_parse_errors () =
  let bad header =
    try
      ignore (Serialize.instance_of_string header);
      false
    with Serialize.Parse_error _ -> true
  in
  Alcotest.(check bool) "bad magic" true (bad "nonsense v9\n");
  Alcotest.(check bool) "truncated" true (bad "ltc-instance v1\nepsilon 0.1\n");
  Alcotest.(check bool) "bad float" true
    (bad "ltc-instance v1\nepsilon fish\n")

let test_serialize_comments_and_blanks () =
  let i = analysis_fixture () in
  let s = Serialize.instance_to_string i in
  (* Inject comments and blank lines everywhere; the parser must cope. *)
  let noisy =
    String.concat "\n"
      (List.concat_map
         (fun l -> [ ""; "# comment"; l ^ "   # trailing" ])
         (String.split_on_char '\n' s))
  in
  let j = Serialize.instance_of_string noisy in
  Alcotest.(check bool) "noisy parse" true (i.Instance.tasks = j.Instance.tasks)

(* ------------------------------------------------------------------- Svg *)

let test_svg_renders_elements () =
  let i = analysis_fixture () in
  let arrangement =
    Arrangement.empty
    |> Arrangement.add ~worker:1 ~task:0
    |> Arrangement.add ~worker:2 ~task:0
  in
  let svg = Svg.render ~arrangement i in
  let count affix =
    let n = ref 0 in
    let len = String.length affix in
    for k = 0 to String.length svg - len do
      if String.sub svg k len = affix then incr n
    done;
    !n
  in
  Alcotest.(check bool) "well-formed envelope" true
    (Astring.String.is_prefix ~affix:"<?xml" svg
    && Astring.String.is_suffix ~affix:"</svg>\n" svg);
  (* 2 halos + 6 workers + 2 tasks = 10 circles; 2 assignment lines. *)
  Alcotest.(check int) "circles" 10 (count "<circle");
  Alcotest.(check int) "assignment lines" 2 (count "<line");
  (* One incomplete (red) and no completed tasks at this score level... the
     two assignments give task 0 ~1.3 < delta: both tasks red. *)
  Alcotest.(check int) "incomplete tasks red" 2 (count "#d0342c")

let test_svg_without_arrangement () =
  let i = analysis_fixture () in
  let svg = Svg.render ~show_radius:false i in
  Alcotest.(check bool) "neutral task colour" true
    (Astring.String.is_infix ~affix:"#4a90d9" svg);
  Alcotest.(check bool) "no lines" false
    (Astring.String.is_infix ~affix:"<line" svg)

let test_svg_save () =
  let i = analysis_fixture () in
  let path = Filename.temp_file "ltc_test" ".svg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Svg.save ~path i;
      let ic = open_in path in
      let first = input_line ic in
      close_in ic;
      Alcotest.(check bool) "xml header" true
        (Astring.String.is_prefix ~affix:"<?xml" first))

(* --------------------------------------------------- qcheck: core layer *)

let small_instance_gen =
  QCheck2.Gen.(
    let* n_tasks = int_range 1 30 in
    let* n_workers = int_range 0 60 in
    let* capacity = int_range 1 5 in
    let* epsilon_centi = int_range 5 40 in
    let* seed = int_range 0 100_000 in
    return (n_tasks, n_workers, capacity, float_of_int epsilon_centi /. 100.0, seed))

let generate_small (n_tasks, n_workers, capacity, epsilon, seed) =
  let spec =
    {
      Ltc_workload.Spec.default_synthetic with
      Ltc_workload.Spec.n_tasks;
      n_workers;
      capacity;
      epsilon;
      world_side = 150.0;
    }
  in
  Ltc_workload.Synthetic.generate (Ltc_util.Rng.create ~seed) spec

let prop_serialize_rejects_garbage_without_crashing =
  (* Random mutations of a valid file must either parse or raise
     Parse_error — never crash with anything else. *)
  QCheck2.Test.make ~name:"parser total on mutated input" ~count:200
    QCheck2.Gen.(
      triple (int_range 0 100_000) (int_range 0 5000) (int_range 0 255))
    (fun (seed, pos, byte) ->
      let i =
        generate_small (3, 10, 2, 0.2, seed)
      in
      let s = Bytes.of_string (Serialize.instance_to_string i) in
      if Bytes.length s = 0 then true
      else begin
        Bytes.set s (pos mod Bytes.length s) (Char.chr byte);
        match Serialize.instance_of_string (Bytes.to_string s) with
        | (_ : Instance.t) -> true
        | exception Serialize.Parse_error _ -> true
        | exception Invalid_argument _ ->
          (* mutations can corrupt numeric fields into out-of-domain values
             caught by the constructors — also acceptable *)
          true
      end)

let prop_serialize_roundtrip =
  QCheck2.Test.make ~name:"serialize/parse is the identity" ~count:100
    small_instance_gen
    (fun params ->
      let i = generate_small params in
      let j = Serialize.instance_of_string (Serialize.instance_to_string i) in
      i.Instance.tasks = j.Instance.tasks
      && i.Instance.workers = j.Instance.workers
      && i.Instance.epsilon = j.Instance.epsilon
      && i.Instance.candidate_radius = j.Instance.candidate_radius
      && i.Instance.scoring = j.Instance.scoring)

(* State blocks (progress / arrangement / RNG) must round-trip exactly —
   the service journal's correctness rests on parse being a left inverse
   of emit for each of them, bit-for-bit on floats. *)

let prop_progress_roundtrip =
  QCheck2.Test.make ~name:"progress state round-trips exactly" ~count:200
    QCheck2.Gen.(
      let* n_tasks = int_range 1 20 in
      let* records = list_size (int_range 0 60) (pair (int_range 0 100) (int_range 1 500)) in
      let* complete_all = bool in
      return (n_tasks, records, complete_all))
    (fun (n_tasks, records, complete_all) ->
      let thresholds =
        Array.init n_tasks (fun t -> 1.0 +. (float_of_int t /. 7.0))
      in
      let p = Progress.create_per_task ~thresholds in
      List.iter
        (fun (task, centi) ->
          Progress.record p ~task:(task mod n_tasks)
            ~score:(float_of_int centi /. 100.0))
        records;
      if complete_all then
        (* all-tasks-complete edge: sum_remaining pinned at 0 *)
        for task = 0 to n_tasks - 1 do
          Progress.record p ~task ~score:10.0
        done;
      let q = Serialize.progress_of_string (Serialize.progress_to_string p) in
      let sp = Progress.snapshot p and sq = Progress.snapshot q in
      sp.Progress.thresholds = sq.Progress.thresholds
      && sp.Progress.scores = sq.Progress.scores
      && sp.Progress.sum_remaining = sq.Progress.sum_remaining
      && Progress.all_complete p = Progress.all_complete q
      && (not complete_all || Progress.all_complete q))

let prop_arrangement_roundtrip =
  QCheck2.Test.make ~name:"arrangement round-trips exactly (incl. empty)"
    ~count:200
    QCheck2.Gen.(list_size (int_range 0 80) (pair (int_range 1 50) (int_range 0 30)))
    (fun pairs ->
      (* duplicates collapse on add, so compare via to_list *)
      let a =
        List.fold_left
          (fun a (worker, task) -> Arrangement.add a ~worker ~task)
          Arrangement.empty pairs
      in
      let b = Serialize.arrangement_of_string (Serialize.arrangement_to_string a) in
      Arrangement.to_list a = Arrangement.to_list b
      && Arrangement.latency a = Arrangement.latency b
      && Arrangement.size a = Arrangement.size b)

let prop_rng_roundtrip =
  QCheck2.Test.make ~name:"rng state round-trips and streams agree" ~count:200
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 64))
    (fun (seed, burn) ->
      let rng = Ltc_util.Rng.create ~seed in
      for _ = 1 to burn do
        ignore (Ltc_util.Rng.bits64 rng)
      done;
      let copy = Serialize.rng_of_string (Serialize.rng_to_string rng) in
      Ltc_util.Rng.state copy = Ltc_util.Rng.state rng
      && Array.init 8 (fun _ -> Ltc_util.Rng.bits64 copy)
         = Array.init 8 (fun _ -> Ltc_util.Rng.bits64 rng))

let prop_analysis_invariants =
  QCheck2.Test.make ~name:"analysis invariants on random arrangements"
    ~count:100
    QCheck2.Gen.(pair small_instance_gen (int_range 0 100_000))
    (fun (params, aseed) ->
      let i = generate_small params in
      if Instance.worker_count i = 0 then true
      else begin
        (* Random (possibly invalid) arrangement built from candidates. *)
        let rng = Ltc_util.Rng.create ~seed:aseed in
        let arrangement = ref Arrangement.empty in
        Array.iter
          (fun (w : Worker.t) ->
            if Ltc_util.Rng.bool rng then
              List.iteri
                (fun k task ->
                  if k < w.capacity && Ltc_util.Rng.bool rng then
                    arrangement := Arrangement.add !arrangement ~worker:w.index ~task)
                (Instance.candidates i w))
          i.Instance.workers;
        let r = Analysis.of_arrangement i !arrangement in
        let n_assign = Arrangement.size !arrangement in
        r.Analysis.assignments = n_assign
        && r.Analysis.load_gini >= 0.0
        && r.Analysis.load_gini <= 1.0
        && r.Analysis.workers_used <= n_assign
        && r.Analysis.latency = Arrangement.latency !arrangement
        && r.Analysis.error_bound_worst >= 0.0
        && r.Analysis.error_bound_worst <= 1.0
        && (n_assign = 0 || r.Analysis.travel_max <= 30.0 +. 1e-9)
      end)

let prop_candidates_consistent =
  QCheck2.Test.make ~name:"candidates = iter_candidates = count_candidates"
    ~count:100 small_instance_gen
    (fun params ->
      let i = generate_small params in
      Array.for_all
        (fun w ->
          let listed = Instance.candidates i w in
          let iterated = ref [] in
          Instance.iter_candidates i w (fun t -> iterated := t :: !iterated);
          List.sort compare !iterated = listed
          && Instance.count_candidates i w = List.length listed
          && List.for_all
               (fun t ->
                 Ltc_geo.Point.distance w.Worker.loc
                   i.Instance.tasks.(t).Task.loc
                 <= 30.0 +. 1e-9)
               listed)
        i.Instance.workers)

let prop_progress_threshold_per_task =
  QCheck2.Test.make ~name:"per-task thresholds drive completion" ~count:100
    QCheck2.Gen.(
      list_size (int_range 1 6) (pair (float_range 0.5 3.0) (float_range 0.0 4.0)))
    (fun spec ->
      let thresholds = Array.of_list (List.map fst spec) in
      let p = Progress.create_per_task ~thresholds in
      List.iteri
        (fun task (_, score) -> Progress.record p ~task ~score)
        spec;
      List.for_all
        (fun (task, (threshold, score)) ->
          Progress.is_complete p task = (score >= threshold))
        (List.mapi (fun i x -> (i, x)) spec))

(* --------------------------------------------- qcheck: binary codec *)

module B = Serialize.Binary

(* Arbitrary byte strings (the stock string gen skews printable). *)
let bytes_gen =
  QCheck2.Gen.(
    map
      (fun l ->
        let a = Array.of_list l in
        String.init (Array.length a) (fun i -> Char.chr a.(i)))
      (list_size (int_range 0 400) (int_range 0 255)))

let test_crc32_vectors () =
  (* The IEEE 802.3 check value, plus the empty-string fixed point. *)
  Alcotest.(check int32) "check value" 0xCBF43926l (B.crc32 "123456789");
  Alcotest.(check int32) "empty" 0l (B.crc32 "")

let prop_crc32_matches_bitwise_reference =
  (* The sliced-by-8 table implementation against the from-the-definition
     bitwise fold, over arbitrary bytes and lengths (covering every
     remainder-loop tail length). *)
  let reference s =
    let c = ref 0xFFFFFFFF in
    String.iter
      (fun ch ->
        c := !c lxor Char.code ch;
        for _ = 0 to 7 do
          c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
        done)
      s;
    Int32.of_int (lnot !c land 0xFFFFFFFF)
  in
  QCheck2.Test.make ~name:"crc32 matches the bitwise definition" ~count:300
    bytes_gen
    (fun s -> B.crc32 s = reference s)

let prop_varint_roundtrip =
  QCheck2.Test.make ~name:"varint round-trips any non-negative int"
    ~count:300
    QCheck2.Gen.(
      oneof
        [ int_range 0 300; map (fun n -> n land max_int) int ])
    (fun n ->
      let buf = Buffer.create 10 in
      B.add_varint buf n;
      let c = B.cursor (Buffer.contents buf) in
      B.varint c = n && B.at_end c)

let prop_scalar_roundtrip =
  QCheck2.Test.make ~name:"f64/i64 round-trip bit-exactly" ~count:300
    QCheck2.Gen.(pair float int)
    (fun (f, n) ->
      let buf = Buffer.create 16 in
      B.add_f64 buf f;
      B.add_i64 buf (Int64.of_int n);
      let c = B.cursor (Buffer.contents buf) in
      let f' = B.f64 c in
      let n' = B.i64 c in
      (* NaN-proof: compare the payload bits, not the floats. *)
      Int64.bits_of_float f' = Int64.bits_of_float f
      && n' = Int64.of_int n
      && B.at_end c)

let event_gen =
  QCheck2.Gen.(
    let* index = int_range 1 5000 in
    let* x = float_range (-300.0) 300.0 in
    let* y = float_range (-300.0) 300.0 in
    let* accuracy = float_range 0.0 1.0 in
    let* capacity = int_range 1 6 in
    let* degraded = bool in
    let* assigned = list_size (int_range 0 8) (int_range 0 500) in
    let* answered = list_size (int_range 0 8) (int_range 0 500) in
    return
      {
        B.e_worker =
          Worker.make ~index
            ~loc:(Ltc_geo.Point.make ~x ~y)
            ~accuracy ~capacity;
        e_degraded = degraded;
        e_assigned = assigned;
        e_answered = answered;
      })

let prop_event_record_roundtrip =
  QCheck2.Test.make ~name:"event record round-trips through the frame"
    ~count:300 event_gen
    (fun e ->
      let buf = Buffer.create 64 in
      B.add_record_frame buf (B.Event e);
      match B.frame_of_string (Buffer.contents buf) 0 with
      | B.Frame payload -> (
        match B.record_of_payload payload with
        | B.Event e' ->
          e'.B.e_worker = e.B.e_worker
          && e'.B.e_degraded = e.B.e_degraded
          && e'.B.e_assigned = e.B.e_assigned
          && e'.B.e_answered = e.B.e_answered
        | B.Snapshot _ -> false)
      | B.Eof | B.Torn | B.Invalid _ -> false)

let snapshot_gen =
  QCheck2.Gen.(
    let* spec =
      list_size (int_range 1 20) (pair (float_range 0.5 3.0) (float_range 0.0 4.0))
    in
    let* consumed = int_range 0 10_000 in
    let* policy = map Int64.of_int int in
    let* noshow = map Int64.of_int int in
    let* assignments =
      list_size (int_range 0 40) (pair (int_range 1 60) (int_range 0 19))
    in
    return (spec, consumed, policy, noshow, assignments))

let prop_snapshot_record_roundtrip =
  QCheck2.Test.make ~name:"snapshot record round-trips through the frame"
    ~count:200 snapshot_gen
    (fun (spec, consumed, policy, noshow, assignments) ->
      let thresholds = Array.of_list (List.map fst spec) in
      let p = Progress.create_per_task ~thresholds in
      List.iteri (fun task (_, score) -> Progress.record p ~task ~score) spec;
      let arrangement =
        List.fold_left
          (fun a (worker, task) -> Arrangement.add a ~worker ~task)
          Arrangement.empty assignments
      in
      let s =
        {
          B.s_consumed = consumed;
          s_policy = policy;
          s_noshow = noshow;
          s_progress = p;
          s_arrangement = arrangement;
        }
      in
      let buf = Buffer.create 256 in
      B.add_record_frame buf (B.Snapshot s);
      match B.frame_of_string (Buffer.contents buf) 0 with
      | B.Frame payload -> (
        match B.record_of_payload payload with
        | B.Snapshot s' ->
          s'.B.s_consumed = consumed
          && s'.B.s_policy = policy
          && s'.B.s_noshow = noshow
          && Progress.snapshot s'.B.s_progress = Progress.snapshot p
          && Arrangement.to_list s'.B.s_arrangement
             = Arrangement.to_list arrangement
        | B.Event _ -> false)
      | B.Eof | B.Torn | B.Invalid _ -> false)

let test_frame_triage () =
  (* Two frames back to back: clean walk, then every damage class. *)
  let buf = Buffer.create 64 in
  B.add_frame buf "first payload";
  B.add_frame buf "second";
  let s = Buffer.contents buf in
  let first_len = 8 + String.length "first payload" in
  (match B.frame_of_string s 0 with
  | B.Frame p -> Alcotest.(check string) "frame 1" "first payload" p
  | _ -> Alcotest.fail "expected first frame");
  (match B.frame_of_string s first_len with
  | B.Frame p -> Alcotest.(check string) "frame 2" "second" p
  | _ -> Alcotest.fail "expected second frame");
  (match B.frame_of_string s (String.length s) with
  | B.Eof -> ()
  | _ -> Alcotest.fail "expected Eof on the end boundary");
  (* Truncation anywhere inside a frame is a torn tail... *)
  for cut = 1 to String.length s - first_len - 1 do
    match B.frame_of_string (String.sub s 0 (String.length s - cut)) first_len
    with
    | B.Torn -> ()
    | _ -> Alcotest.failf "expected Torn at cut=%d" cut
  done;
  (* ...while wrong bytes inside a complete frame are Invalid: *)
  let flip i s =
    String.mapi
      (fun j ch -> if i = j then Char.chr (Char.code ch lxor 0x40) else ch)
      s
  in
  (match B.frame_of_string (flip (first_len + 9) s) first_len with
  | B.Invalid reason ->
    Alcotest.(check bool) "CRC named" true
      (Astring.String.is_infix ~affix:"CRC" reason)
  | _ -> Alcotest.fail "expected Invalid on a flipped payload byte");
  (match B.frame_of_string (flip 3 s) 0 with
  | B.Invalid _ | B.Torn -> ()
  | _ -> Alcotest.fail "expected Invalid/Torn on a mangled length")

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "core.quality",
      [
        Alcotest.test_case "delta" `Quick test_delta;
        Alcotest.test_case "delta/Hoeffding consistency" `Quick
          test_delta_hoeffding_consistency;
        Alcotest.test_case "majority vote" `Quick test_majority;
        Alcotest.test_case "scoring thresholds" `Quick test_scoring_threshold;
      ] );
    ( "core.accuracy",
      [
        Alcotest.test_case "sigmoid near task" `Quick test_sigmoid_close;
        Alcotest.test_case "sigmoid at dmax" `Quick test_sigmoid_at_dmax;
        Alcotest.test_case "sigmoid monotone" `Quick
          test_sigmoid_monotone_in_distance;
        Alcotest.test_case "acc_star" `Quick test_acc_star;
        Alcotest.test_case "custom clamped" `Quick test_custom_clamped;
      ] );
    ( "core.worker",
      [ Alcotest.test_case "validation and trust" `Quick test_worker_validation ] );
    ( "core.instance",
      [
        Alcotest.test_case "validation" `Quick test_instance_validation;
        Alcotest.test_case "candidate radius" `Quick
          test_instance_candidates_radius;
        Alcotest.test_case "unrestricted candidates" `Quick
          test_instance_candidates_unrestricted;
        Alcotest.test_case "score consistency" `Quick
          test_instance_score_matches_quality;
      ] );
    ( "core.arrangement",
      [
        Alcotest.test_case "accumulates" `Quick test_arrangement_accumulates;
        Alcotest.test_case "validate happy path" `Quick test_validate_happy;
        Alcotest.test_case "validate violations" `Quick
          test_validate_catches_violations;
        Alcotest.test_case "validate capacity" `Quick test_validate_capacity;
      ] );
    ( "core.progress",
      [
        Alcotest.test_case "basics" `Quick test_progress_basic;
        Alcotest.test_case "overshoot" `Quick test_progress_overshoot;
        Alcotest.test_case "zero tasks" `Quick test_progress_zero_tasks;
        qcheck prop_progress_aggregates;
        qcheck prop_progress_iter_incomplete;
      ] );
    ( "core.analysis",
      [
        Alcotest.test_case "counts" `Quick test_analysis_counts;
        Alcotest.test_case "gini" `Quick test_analysis_gini;
        Alcotest.test_case "margin and error bound" `Quick
          test_analysis_margin_and_bound;
        Alcotest.test_case "empty arrangement" `Quick test_analysis_empty;
      ] );
    ( "core.serialize",
      [
        Alcotest.test_case "instance roundtrip" `Quick test_serialize_roundtrip;
        Alcotest.test_case "per-task epsilon survives" `Quick
          test_serialize_per_task_epsilon;
        Alcotest.test_case "file roundtrip" `Quick test_serialize_file_roundtrip;
        Alcotest.test_case "arrangement roundtrip" `Quick
          test_serialize_arrangement_roundtrip;
        Alcotest.test_case "rejects custom model" `Quick
          test_serialize_rejects_custom_model;
        Alcotest.test_case "parse errors" `Quick test_serialize_parse_errors;
        Alcotest.test_case "comments and blanks" `Quick
          test_serialize_comments_and_blanks;
        qcheck prop_serialize_roundtrip;
        qcheck prop_serialize_rejects_garbage_without_crashing;
        qcheck prop_progress_roundtrip;
        qcheck prop_arrangement_roundtrip;
        qcheck prop_rng_roundtrip;
      ] );
    ( "core.binary_codec",
      [
        Alcotest.test_case "crc32 vectors" `Quick test_crc32_vectors;
        Alcotest.test_case "frame triage" `Quick test_frame_triage;
        qcheck prop_crc32_matches_bitwise_reference;
        qcheck prop_varint_roundtrip;
        qcheck prop_scalar_roundtrip;
        qcheck prop_event_record_roundtrip;
        qcheck prop_snapshot_record_roundtrip;
      ] );
    ( "core.svg",
      [
        Alcotest.test_case "renders all elements" `Quick
          test_svg_renders_elements;
        Alcotest.test_case "without arrangement" `Quick
          test_svg_without_arrangement;
        Alcotest.test_case "save to file" `Quick test_svg_save;
      ] );
    ( "core.properties",
      [
        qcheck prop_analysis_invariants;
        qcheck prop_progress_threshold_per_task;
        qcheck prop_candidates_consistent;
      ] );
    ( "core.truth_infer",
      [
        Alcotest.test_case "recovers planted model" `Quick
          test_truth_infer_recovers_planted_model;
        Alcotest.test_case "EM >= majority voting" `Quick
          test_truth_infer_beats_majority;
        Alcotest.test_case "empty input and validation" `Quick
          test_truth_infer_empty_and_validation;
        Alcotest.test_case "accuracy clamped" `Quick
          test_truth_infer_accuracy_clamped;
        Alcotest.test_case "two-coin recovers asymmetry" `Quick
          test_two_coin_recovers_asymmetry;
        Alcotest.test_case "two-coin prevalence" `Quick test_two_coin_prevalence;
        Alcotest.test_case "two-coin balanced accuracy" `Quick
          test_two_coin_balanced_accuracy;
      ] );
    ( "core.truth_sim",
      [
        Alcotest.test_case "respects Hoeffding bound" `Quick
          test_truth_sim_respects_bound;
        Alcotest.test_case "unassigned task errs" `Quick
          test_truth_sim_unassigned_task_errs;
      ] );
  ]
