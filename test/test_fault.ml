open Ltc_util

let check_float = Alcotest.(check (float 1e-12))

(* Every test arms its own plan and must leave the injector disarmed and
   the clock real, even on failure. *)
let isolated f () =
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      Fault.Clock.clear ())
    f

(* -------------------------------------------------------------- probes *)

let test_disarmed_probes_free () =
  Fault.disarm ();
  Fault.check "anywhere";
  Alcotest.(check (option int)) "check_write passes" None
    (Fault.check_write "anywhere" ~len:64);
  Alcotest.(check int) "no counting while disarmed" 0 (Fault.hits "anywhere")

let test_crash_fires_once_at_exact_hit () =
  Fault.arm [ { Fault.site = "s"; hit = 3; action = Fault.Crash } ];
  Fault.check "s";
  Fault.check "s";
  (match Fault.check "s" with
  | () -> Alcotest.fail "hit 3 should have crashed"
  | exception Fault.Injected_crash { site; hit } ->
    Alcotest.(check string) "site" "s" site;
    Alcotest.(check int) "hit" 3 hit);
  (* One-shot: the counter keeps running but the fault never refires. *)
  Fault.check "s";
  Alcotest.(check int) "hits keep counting" 4 (Fault.hits "s");
  Alcotest.(check int) "fired once" 1 (Fault.stats ()).Fault.crashes

let test_io_error_is_transient () =
  Fault.arm [ { Fault.site = "io"; hit = 1; action = Fault.Io_error } ];
  (match Fault.check "io" with
  | () -> Alcotest.fail "hit 1 should have raised Injected_io"
  | exception (Fault.Injected_io _ as e) ->
    Alcotest.(check bool) "transient" true (Fault.Retry.is_transient e));
  Alcotest.(check bool) "crash is not transient" false
    (Fault.Retry.is_transient (Fault.Injected_crash { site = "x"; hit = 1 }));
  Alcotest.(check bool) "EINTR is transient" true
    (Fault.Retry.is_transient (Unix.Unix_error (Unix.EINTR, "write", "")));
  Alcotest.(check bool) "ENOENT is not" false
    (Fault.Retry.is_transient (Unix.Unix_error (Unix.ENOENT, "open", "")))

let test_torn_write_strict_prefix () =
  Fault.arm [ { Fault.site = "w"; hit = 2; action = Fault.Torn_write 23 } ];
  Alcotest.(check (option int)) "hit 1 clean" None
    (Fault.check_write "w" ~len:100);
  Alcotest.(check (option int)) "hit 2 torn at 23" (Some 23)
    (Fault.check_write "w" ~len:100);
  Alcotest.(check int) "counted" 1 (Fault.stats ()).Fault.torn_writes;
  (* A torn length >= the payload is clamped to a strict prefix. *)
  Fault.arm [ { Fault.site = "w"; hit = 1; action = Fault.Torn_write 99 } ];
  Alcotest.(check (option int)) "clamped below len" (Some 9)
    (Fault.check_write "w" ~len:10)

let test_torn_write_inert_at_plain_site () =
  Fault.arm [ { Fault.site = "p"; hit = 1; action = Fault.Torn_write 5 } ];
  (* A plain probe cannot honour a torn write; it must pass through
     without firing the fault (and without crashing). *)
  Fault.check "p";
  Fault.check "p";
  Alcotest.(check int) "never fires" 0 (Fault.stats ()).Fault.torn_writes

let test_delay_advances_virtual_clock () =
  Fault.arm [ { Fault.site = "d"; hit = 2; action = Fault.Delay 0.75 } ];
  Fault.Clock.set_virtual 10.0;
  Fault.check "d";
  check_float "hit 1 leaves time alone" 10.0 (Fault.Clock.now_s ());
  Fault.check "d";
  check_float "hit 2 advances by the delay" 10.75 (Fault.Clock.now_s ());
  Alcotest.(check int) "counted" 1 (Fault.stats ()).Fault.delays

(* --------------------------------------------------------------- clock *)

let test_clock_virtual_semantics () =
  Fault.Clock.set_virtual 3.0;
  Alcotest.(check bool) "virtual" true (Fault.Clock.is_virtual ());
  check_float "reads the set value" 3.0 (Fault.Clock.now_s ());
  Fault.Clock.advance 1.5;
  check_float "advance accumulates" 4.5 (Fault.Clock.now_s ());
  Fault.sleep 0.5;
  check_float "virtual sleep advances" 5.0 (Fault.Clock.now_s ());
  Alcotest.check_raises "negative advance rejected"
    (Invalid_argument "Fault.Clock.advance: negative amount") (fun () ->
      Fault.Clock.advance (-0.1));
  Fault.Clock.clear ();
  Alcotest.(check bool) "real again" false (Fault.Clock.is_virtual ());
  let wall = Unix.gettimeofday () in
  Alcotest.(check bool) "real clock within 60s of gettimeofday" true
    (Float.abs (Fault.Clock.now_s () -. wall) < 60.0)

(* --------------------------------------------------------------- retry *)

let test_backoff_schedule_pinned () =
  let s = Fault.Retry.default in
  Alcotest.(check int) "attempts" 5 s.Fault.Retry.attempts;
  List.iteri
    (fun i expected ->
      check_float
        (Printf.sprintf "backoff before retry %d" (i + 1))
        expected
        (Fault.Retry.backoff_s s (i + 1)))
    [ 0.001; 0.002; 0.004; 0.008; 0.016; 0.016; 0.016 ]

let test_with_backoff_retries_then_succeeds () =
  Fault.Clock.set_virtual 0.0;
  let failures = ref 2 in
  let retried = ref [] in
  let v =
    Fault.Retry.with_backoff
      ~on_retry:(fun ~attempt _ -> retried := attempt :: !retried)
      (fun () ->
        if !failures > 0 then begin
          decr failures;
          raise (Fault.Injected_io { site = "t"; hit = 0 })
        end;
        42)
  in
  Alcotest.(check int) "result" 42 v;
  Alcotest.(check (list int)) "on_retry per failed attempt" [ 1; 2 ]
    (List.rev !retried);
  (* Two virtual back-off sleeps: 1 ms + 2 ms — deterministic. *)
  check_float "virtual time consumed" 0.003 (Fault.Clock.now_s ())

let test_with_backoff_exhausts_and_reraises () =
  Fault.Clock.set_virtual 0.0;
  let calls = ref 0 in
  (match
     Fault.Retry.with_backoff (fun () ->
         incr calls;
         raise (Fault.Injected_io { site = "t"; hit = !calls }))
   with
  | (_ : int) -> Alcotest.fail "should exhaust"
  | exception Fault.Injected_io { hit; _ } ->
    Alcotest.(check int) "last failure propagates" 5 hit);
  Alcotest.(check int) "exactly attempts tries" 5 !calls;
  check_float "slept the full pinned schedule" 0.015 (Fault.Clock.now_s ())

let test_with_backoff_nontransient_immediate () =
  let calls = ref 0 in
  Alcotest.check_raises "non-transient propagates unretried"
    (Failure "boom") (fun () ->
      Fault.Retry.with_backoff (fun () ->
          incr calls;
          failwith "boom"));
  Alcotest.(check int) "single try" 1 !calls

(* ---------------------------------------------------------------- plan *)

let sites = [ "a"; "b" ]
let write_sites = [ "w" ]
let delay_sites = [ "d" ]

let make_plan seed =
  Fault.plan ~crashes:3 ~io_errors:2 ~torn_writes:2 ~delays:2 ~horizon:40
    ~seed ~sites ~write_sites ~delay_sites ()

let test_plan_deterministic () =
  Alcotest.(check bool) "same seed, same plan" true
    (make_plan 11 = make_plan 11);
  Alcotest.(check bool) "different seed, different plan" false
    (make_plan 11 = make_plan 12)

let test_plan_shape () =
  let p = make_plan 11 in
  Alcotest.(check int) "size" 9 (List.length p);
  let slots =
    List.map (fun (f : Fault.fault) -> (f.Fault.site, f.Fault.hit)) p
  in
  Alcotest.(check int) "distinct (site, hit) slots" (List.length p)
    (List.length (List.sort_uniq compare slots));
  List.iter
    (fun (f : Fault.fault) ->
      Alcotest.(check bool) "hit in horizon" true
        (f.Fault.hit >= 1 && f.Fault.hit <= 40);
      match f.Fault.action with
      | Fault.Crash | Fault.Io_error ->
        Alcotest.(check bool) "crash/io over plain+write sites" true
          (List.mem f.Fault.site (sites @ write_sites))
      | Fault.Torn_write n ->
        Alcotest.(check bool) "torn only at write sites" true
          (List.mem f.Fault.site write_sites);
        Alcotest.(check bool) "torn length bounded" true (n >= 0 && n < 80)
      | Fault.Delay s ->
        Alcotest.(check bool) "delay only at delay sites" true
          (List.mem f.Fault.site delay_sites);
        check_float "default delay" 0.25 s)
    p;
  let counts pred = List.length (List.filter pred p) in
  Alcotest.(check int) "crashes" 3
    (counts (fun f -> f.Fault.action = Fault.Crash));
  Alcotest.(check int) "io errors" 2
    (counts (fun f -> f.Fault.action = Fault.Io_error));
  Alcotest.(check int) "torn writes" 2
    (counts (fun f ->
         match f.Fault.action with Fault.Torn_write _ -> true | _ -> false));
  Alcotest.(check int) "delays" 2
    (counts (fun f ->
         match f.Fault.action with Fault.Delay _ -> true | _ -> false))

let test_plan_empty_pools () =
  let p =
    Fault.plan ~crashes:2 ~torn_writes:2 ~delays:2 ~seed:5 ~sites:[ "a" ]
      ~write_sites:[] ~delay_sites:[] ()
  in
  Alcotest.(check int) "only the crash class materialises" 2 (List.length p);
  List.iter
    (fun (f : Fault.fault) ->
      Alcotest.(check bool) "all crashes" true (f.Fault.action = Fault.Crash))
    p

(* -------------------------------------------------------------- scopes *)

let test_scope_resolution () =
  Fault.arm
    [
      { Fault.site = "shard0/s"; hit = 1; action = Fault.Crash };
      { Fault.site = "s"; hit = 1; action = Fault.Io_error };
    ];
  (* outside any scope the bare site fires, not the scoped one *)
  (match Fault.check "s" with
  | () -> Alcotest.fail "bare site should have fired Io_error"
  | exception Fault.Injected_io { site; _ } ->
    Alcotest.(check string) "bare site" "s" site);
  Alcotest.(check (option string)) "no ambient scope" None
    (Fault.current_scope ());
  (* under a scope the same probe resolves to the scoped counter *)
  (match
     Fault.with_scope "shard0" (fun () ->
         Alcotest.(check (option string)) "scope visible" (Some "shard0")
           (Fault.current_scope ());
         Fault.check "s")
   with
  | () -> Alcotest.fail "scoped site should have crashed"
  | exception Fault.Injected_crash { site; hit } ->
    Alcotest.(check string) "scoped site" "shard0/s" site;
    Alcotest.(check int) "scoped hit" 1 hit);
  Alcotest.(check string) "scope_site spelling" "shard0/s"
    (Fault.scope_site ~scope:"shard0" "s");
  Alcotest.(check int) "bare counter untouched by scoped probes" 1
    (Fault.hits "s");
  (* [hits] resolves the ambient scope too *)
  Alcotest.(check int) "scoped counter via with_scope" 1
    (Fault.with_scope "shard0" (fun () -> Fault.hits "s"))

let test_scope_restored_on_exception () =
  Fault.disarm ();
  (try
     Fault.with_scope "outer" (fun () ->
         try Fault.with_scope "inner" (fun () -> failwith "boom")
         with Failure _ ->
           Alcotest.(check (option string)) "inner scope unwound"
             (Some "outer") (Fault.current_scope ());
           failwith "boom again")
   with Failure _ -> ());
  Alcotest.(check (option string)) "outer scope unwound" None
    (Fault.current_scope ())

(* Scoped counters are per (scope, site) pair, so concurrent domains each
   under their own scope never interleave hit counts: every domain sees
   its fault at exactly its scripted hit. *)
let test_scope_domain_isolation () =
  let domains = 4 and probes = 50 in
  Fault.arm
    (List.init domains (fun k ->
         {
           Fault.site = Fault.scope_site ~scope:(Printf.sprintf "d%d" k) "s";
           hit = 10 + k;
           action = Fault.Crash;
         }));
  let results =
    Array.init domains (fun k ->
        Domain.spawn (fun () ->
            Fault.with_scope (Printf.sprintf "d%d" k) (fun () ->
                let fired = ref None in
                for _ = 1 to probes do
                  try Fault.check "s"
                  with Fault.Injected_crash { hit; _ } -> fired := Some hit
                done;
                (!fired, Fault.hits "s"))))
    |> Array.map Domain.join
  in
  Array.iteri
    (fun k (fired, hits) ->
      Alcotest.(check (option int))
        (Printf.sprintf "domain %d crashed at its own scripted hit" k)
        (Some (10 + k)) fired;
      Alcotest.(check int)
        (Printf.sprintf "domain %d counted every probe" k)
        probes hits)
    results;
  Alcotest.(check int) "all crashes fired" domains (Fault.stats ()).Fault.crashes

let test_rearm_resets_state () =
  Fault.arm [ { Fault.site = "s"; hit = 1; action = Fault.Io_error } ];
  (try Fault.check "s" with Fault.Injected_io _ -> ());
  Alcotest.(check int) "fired" 1 (Fault.stats ()).Fault.io_errors;
  Fault.arm [];
  Alcotest.(check int) "stats reset" 0 (Fault.stats ()).Fault.io_errors;
  Alcotest.(check int) "counters reset" 0 (Fault.hits "s");
  Fault.check "s";
  Alcotest.(check int) "empty plan still counts" 1 (Fault.hits "s")

let suite =
  [
    ( "fault.probes",
      [
        Alcotest.test_case "disarmed probes are free" `Quick
          (isolated test_disarmed_probes_free);
        Alcotest.test_case "crash fires once at exact hit" `Quick
          (isolated test_crash_fires_once_at_exact_hit);
        Alcotest.test_case "io error is transient" `Quick
          (isolated test_io_error_is_transient);
        Alcotest.test_case "torn write strict prefix" `Quick
          (isolated test_torn_write_strict_prefix);
        Alcotest.test_case "torn write inert at plain site" `Quick
          (isolated test_torn_write_inert_at_plain_site);
        Alcotest.test_case "delay advances virtual clock" `Quick
          (isolated test_delay_advances_virtual_clock);
        Alcotest.test_case "rearm resets state" `Quick
          (isolated test_rearm_resets_state);
      ] );
    ( "fault.scopes",
      [
        Alcotest.test_case "resolution and spelling" `Quick
          (isolated test_scope_resolution);
        Alcotest.test_case "restored on exception" `Quick
          (isolated test_scope_restored_on_exception);
        Alcotest.test_case "per-domain isolation" `Quick
          (isolated test_scope_domain_isolation);
      ] );
    ( "fault.clock",
      [
        Alcotest.test_case "virtual semantics" `Quick
          (isolated test_clock_virtual_semantics);
      ] );
    ( "fault.retry",
      [
        Alcotest.test_case "backoff schedule pinned" `Quick
          (isolated test_backoff_schedule_pinned);
        Alcotest.test_case "retries then succeeds" `Quick
          (isolated test_with_backoff_retries_then_succeeds);
        Alcotest.test_case "exhausts and re-raises" `Quick
          (isolated test_with_backoff_exhausts_and_reraises);
        Alcotest.test_case "non-transient immediate" `Quick
          (isolated test_with_backoff_nontransient_immediate);
      ] );
    ( "fault.plan",
      [
        Alcotest.test_case "deterministic" `Quick (isolated test_plan_deterministic);
        Alcotest.test_case "shape and bounds" `Quick (isolated test_plan_shape);
        Alcotest.test_case "empty pools" `Quick (isolated test_plan_empty_pools);
      ] );
  ]
