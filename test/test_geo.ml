open Ltc_geo

let check_float = Alcotest.(check (float 1e-9))

let point_gen ~side =
  QCheck2.Gen.(
    map2
      (fun x y -> Point.make ~x ~y)
      (float_range 0.0 side) (float_range 0.0 side))

let points_gen ~side = QCheck2.Gen.(list_size (int_range 0 200) (point_gen ~side))

let brute_within points ~center ~radius =
  let r_sq = radius *. radius in
  points
  |> List.mapi (fun i p -> (i, p))
  |> List.filter (fun (_, p) -> Point.distance_sq p center <= r_sq)
  |> List.map fst

(* ----------------------------------------------------------------- Point *)

let test_point_distance () =
  let a = Point.make ~x:0.0 ~y:0.0 and b = Point.make ~x:3.0 ~y:4.0 in
  check_float "3-4-5" 5.0 (Point.distance a b);
  check_float "squared" 25.0 (Point.distance_sq a b);
  check_float "self" 0.0 (Point.distance a a)

let test_point_equal () =
  let a = Point.make ~x:1.0 ~y:2.0 in
  Alcotest.(check bool) "equal" true (Point.equal a (Point.make ~x:1.0 ~y:2.0));
  Alcotest.(check bool) "not equal" false
    (Point.equal a (Point.make ~x:1.0 ~y:2.1))

(* ------------------------------------------------------------------ Bbox *)

let test_bbox_contains () =
  let b = Bbox.square ~side:10.0 in
  Alcotest.(check bool) "inside" true (Bbox.contains b (Point.make ~x:5.0 ~y:5.0));
  Alcotest.(check bool) "boundary" true
    (Bbox.contains b (Point.make ~x:0.0 ~y:10.0));
  Alcotest.(check bool) "outside" false
    (Bbox.contains b (Point.make ~x:(-0.1) ~y:5.0))

let test_bbox_inverted () =
  Alcotest.check_raises "inverted" (Invalid_argument "Bbox.make: inverted box")
    (fun () ->
      ignore (Bbox.make ~min_x:1.0 ~min_y:0.0 ~max_x:0.0 ~max_y:1.0))

let test_bbox_of_points () =
  let b =
    Bbox.of_points
      [ Point.make ~x:2.0 ~y:5.0; Point.make ~x:(-1.0) ~y:3.0; Point.make ~x:0.0 ~y:9.0 ]
  in
  check_float "min_x" (-1.0) b.Bbox.min_x;
  check_float "max_y" 9.0 b.Bbox.max_y

let test_bbox_distance () =
  let b = Bbox.square ~side:2.0 in
  check_float "inside is 0" 0.0
    (Bbox.distance_sq_to_point b (Point.make ~x:1.0 ~y:1.0));
  check_float "corner distance" 2.0
    (Bbox.distance_sq_to_point b (Point.make ~x:3.0 ~y:3.0))

(* ------------------------------------------------------------ Grid_index *)

let test_grid_basic () =
  let points =
    [| Point.make ~x:1.0 ~y:1.0; Point.make ~x:5.0 ~y:5.0; Point.make ~x:9.0 ~y:9.0 |]
  in
  let g = Grid_index.build ~world:(Bbox.square ~side:10.0) ~cell:2.0 points in
  Alcotest.(check int) "length" 3 (Grid_index.length g);
  Alcotest.(check (list int)) "radius 1 around (5,5)" [ 1 ]
    (Grid_index.query_within g ~center:(Point.make ~x:5.0 ~y:5.0) ~radius:1.0);
  Alcotest.(check (list int)) "radius 7 catches corners" [ 0; 1; 2 ]
    (Grid_index.query_within g ~center:(Point.make ~x:5.0 ~y:5.0) ~radius:7.0)

let test_grid_invalid_cell () =
  Alcotest.check_raises "cell 0"
    (Invalid_argument "Grid_index.build: cell must be positive") (fun () ->
      ignore (Grid_index.build ~world:(Bbox.square ~side:1.0) ~cell:0.0 [||]))

let test_grid_out_of_world_points () =
  (* Points outside the declared world are clamped into boundary cells and
     must still be findable. *)
  let points = [| Point.make ~x:15.0 ~y:15.0 |] in
  let g = Grid_index.build ~world:(Bbox.square ~side:10.0) ~cell:3.0 points in
  Alcotest.(check (list int)) "found" [ 0 ]
    (Grid_index.query_within g ~center:(Point.make ~x:15.0 ~y:15.0) ~radius:0.5)

let prop_grid_matches_brute =
  QCheck2.Test.make ~name:"grid query = brute force" ~count:200
    QCheck2.Gen.(
      triple (points_gen ~side:100.0) (point_gen ~side:100.0)
        (float_range 0.1 40.0))
    (fun (points, center, radius) ->
      let arr = Array.of_list points in
      let g = Grid_index.build ~world:(Bbox.square ~side:100.0) ~cell:10.0 arr in
      Grid_index.query_within g ~center ~radius
      = brute_within points ~center ~radius)

let prop_grid_sorted_iter =
  (* The merged iteration must equal the materialised sorted query: same
     members, globally ascending, each exactly once. *)
  QCheck2.Test.make ~name:"grid iter_within_sorted = sorted query" ~count:200
    QCheck2.Gen.(
      triple (points_gen ~side:100.0) (point_gen ~side:100.0)
        (float_range 0.1 40.0))
    (fun (points, center, radius) ->
      let arr = Array.of_list points in
      let g = Grid_index.build ~world:(Bbox.square ~side:100.0) ~cell:10.0 arr in
      let acc = ref [] in
      Grid_index.iter_within_sorted g ~center ~radius (fun i -> acc := i :: !acc);
      List.rev !acc = Grid_index.query_within g ~center ~radius)

let prop_grid_count =
  QCheck2.Test.make ~name:"grid count = query length" ~count:100
    QCheck2.Gen.(pair (points_gen ~side:50.0) (point_gen ~side:50.0))
    (fun (points, center) ->
      let arr = Array.of_list points in
      let g = Grid_index.build ~world:(Bbox.square ~side:50.0) ~cell:5.0 arr in
      Grid_index.count_within g ~center ~radius:8.0
      = List.length (Grid_index.query_within g ~center ~radius:8.0))

(* --------------------------------------------------------------- Kd_tree *)

let test_kd_empty () =
  let t = Kd_tree.build [||] in
  Alcotest.(check int) "length" 0 (Kd_tree.length t);
  Alcotest.(check (option int)) "nearest none" None
    (Kd_tree.nearest t (Point.make ~x:0.0 ~y:0.0));
  Alcotest.(check (list int)) "query empty" []
    (Kd_tree.query_within t ~center:(Point.make ~x:0.0 ~y:0.0) ~radius:5.0)

let test_kd_single () =
  let t = Kd_tree.build [| Point.make ~x:3.0 ~y:4.0 |] in
  Alcotest.(check (option int)) "nearest" (Some 0)
    (Kd_tree.nearest t (Point.make ~x:0.0 ~y:0.0));
  Alcotest.(check (list int)) "within 5" [ 0 ]
    (Kd_tree.query_within t ~center:(Point.make ~x:0.0 ~y:0.0) ~radius:5.0)

let prop_kd_matches_brute =
  QCheck2.Test.make ~name:"kd query = brute force" ~count:200
    QCheck2.Gen.(
      triple (points_gen ~side:100.0) (point_gen ~side:100.0)
        (float_range 0.1 40.0))
    (fun (points, center, radius) ->
      let t = Kd_tree.build (Array.of_list points) in
      Kd_tree.query_within t ~center ~radius
      = brute_within points ~center ~radius)

let prop_kd_nearest_matches_brute =
  QCheck2.Test.make ~name:"kd nearest = brute force distance" ~count:200
    QCheck2.Gen.(pair (points_gen ~side:100.0) (point_gen ~side:100.0))
    (fun (points, query) ->
      let t = Kd_tree.build (Array.of_list points) in
      match (Kd_tree.nearest t query, points) with
      | None, [] -> true
      | None, _ :: _ | Some _, [] -> false
      | Some i, _ :: _ ->
        let best =
          List.fold_left
            (fun acc p -> Float.min acc (Point.distance_sq p query))
            infinity points
        in
        Float.abs (Point.distance_sq (List.nth points i) query -. best) < 1e-9)

let prop_kd_duplicates =
  QCheck2.Test.make ~name:"kd handles duplicate points" ~count:50
    QCheck2.Gen.(int_range 1 64)
    (fun n ->
      let p = Point.make ~x:1.0 ~y:1.0 in
      let t = Kd_tree.build (Array.make n p) in
      List.length (Kd_tree.query_within t ~center:p ~radius:0.1) = n)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "geo.point",
      [
        Alcotest.test_case "distance" `Quick test_point_distance;
        Alcotest.test_case "equal" `Quick test_point_equal;
      ] );
    ( "geo.bbox",
      [
        Alcotest.test_case "contains" `Quick test_bbox_contains;
        Alcotest.test_case "inverted raises" `Quick test_bbox_inverted;
        Alcotest.test_case "of_points" `Quick test_bbox_of_points;
        Alcotest.test_case "distance to point" `Quick test_bbox_distance;
      ] );
    ( "geo.grid_index",
      [
        Alcotest.test_case "basic queries" `Quick test_grid_basic;
        Alcotest.test_case "invalid cell" `Quick test_grid_invalid_cell;
        Alcotest.test_case "out-of-world points" `Quick
          test_grid_out_of_world_points;
        qcheck prop_grid_matches_brute;
        qcheck prop_grid_sorted_iter;
        qcheck prop_grid_count;
      ] );
    ( "geo.kd_tree",
      [
        Alcotest.test_case "empty" `Quick test_kd_empty;
        Alcotest.test_case "single point" `Quick test_kd_single;
        qcheck prop_kd_matches_brute;
        qcheck prop_kd_nearest_matches_brute;
        qcheck prop_kd_duplicates;
      ] );
  ]
