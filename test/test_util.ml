open Ltc_util

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ Rng *)

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" false
    (Rng.bits64 a = Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 13 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 13)
  done

let test_rng_int_invalid () =
  let rng = Rng.create ~seed:7 in
  Alcotest.check_raises "n = 0 rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_float_bounds () =
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_rng_int_uniformity () =
  (* Chi-square-ish sanity: all 10 buckets within 3x of expectation. *)
  let rng = Rng.create ~seed:123 in
  let buckets = Array.make 10 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let b = Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket near expectation" true
        (c > n / 20 && c < n / 5))
    buckets

let test_rng_split_independent () =
  let a = Rng.create ~seed:5 in
  let b = Rng.split a in
  (* The split stream must not equal the parent's continuation. *)
  let xs = List.init 8 (fun _ -> Rng.bits64 a) in
  let ys = List.init 8 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "streams differ" false (xs = ys)

let test_rng_shuffle_permutation () =
  let rng = Rng.create ~seed:77 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_copy () =
  let a = Rng.create ~seed:11 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a)
    (Rng.bits64 b)

(* --------------------------------------------------------- Distribution *)

let test_dist_uniform_range () =
  let rng = Rng.create ~seed:3 in
  let d = Distribution.Uniform { lo = 0.5; hi = 0.9 } in
  for _ = 1 to 5_000 do
    let x = Distribution.sample rng d in
    Alcotest.(check bool) "in range" true (x >= 0.5 && x <= 0.9)
  done

let test_dist_normal_mean () =
  let rng = Rng.create ~seed:4 in
  let d = Distribution.Normal { mu = 0.86; sigma = 0.05 } in
  let xs = Array.init 20_000 (fun _ -> Distribution.sample rng d) in
  Alcotest.(check bool) "mean close to mu" true
    (Float.abs (Stats.mean xs -. 0.86) < 0.005);
  Alcotest.(check bool) "stddev close to sigma" true
    (Float.abs (Stats.stddev xs -. 0.05) < 0.005)

let test_dist_truncated_band () =
  let rng = Rng.create ~seed:5 in
  let d = Distribution.accuracy_normal ~mu:0.82 in
  for _ = 1 to 5_000 do
    let x = Distribution.sample rng d in
    Alcotest.(check bool) "trusted band" true (x >= 0.66 && x <= 1.0)
  done

let test_dist_accuracy_uniform_band () =
  let rng = Rng.create ~seed:6 in
  let d = Distribution.accuracy_uniform ~mean:0.9 in
  for _ = 1 to 5_000 do
    let x = Distribution.sample rng d in
    Alcotest.(check bool) "clipped at 1" true (x >= 0.82 && x <= 1.0)
  done

let test_dist_constant () =
  let rng = Rng.create ~seed:1 in
  check_float "constant" 0.7 (Distribution.sample rng (Constant 0.7));
  check_float "mean of constant" 0.7 (Distribution.mean (Constant 0.7))

(* ------------------------------------------------------------------ Heap *)

let test_heap_sorts () =
  let h = Heap.create ~leq:(fun a b -> a <= b) () in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 5; 9; 2; 6 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "heapsort" [ 1; 1; 2; 4; 5; 5; 6; 9 ] (drain [])

let test_heap_empty () =
  let h = Heap.create ~leq:(fun (a : int) b -> a <= b) () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek none" None (Heap.peek h);
  Alcotest.(check (option int)) "pop none" None (Heap.pop h);
  Alcotest.check_raises "pop_exn raises"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let test_heap_of_array () =
  let h = Heap.of_array ~leq:(fun a b -> a <= b) [| 3; 1; 2 |] in
  Alcotest.(check (option int)) "min on top" (Some 1) (Heap.peek h);
  Alcotest.(check int) "length" 3 (Heap.length h)

let test_heap_float_instantiation () =
  (* Regression guard: the backing store must cope with unboxed-float
     element types. *)
  let h = Heap.create ~leq:(fun (a : float) b -> a <= b) () in
  List.iter (Heap.push h) [ 3.5; 1.25; 2.0 ];
  Alcotest.(check (option (float 0.0))) "min" (Some 1.25) (Heap.pop h)

let test_heap_clear () =
  let h = Heap.create ~leq:(fun (a : int) b -> a <= b) () in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.length h);
  Heap.push h 9;
  Alcotest.(check (option int)) "reusable" (Some 9) (Heap.pop h)

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck2.Gen.(list int)
    (fun xs ->
      let h = Heap.of_array ~leq:(fun a b -> a <= b) (Array.of_list xs) in
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

(* ---------------------------------------------------------- Bounded_heap *)

let top_k_reference k xs =
  (* Stable: earlier elements win ties. *)
  let indexed = List.mapi (fun i x -> (x, i)) xs in
  let sorted =
    List.sort
      (fun (a, i) (b, j) -> if a = b then compare i j else compare b a)
      indexed
  in
  List.filteri (fun i _ -> i < k) sorted |> List.map fst

let test_bounded_heap_topk () =
  let bh = Bounded_heap.create ~k:3 () in
  List.iteri
    (fun i score -> Bounded_heap.push bh ~score i)
    [ 0.5; 0.9; 0.1; 0.9; 0.7 ];
  let kept = Bounded_heap.pop_all bh in
  Alcotest.(check (list int)) "descending, stable ties" [ 1; 3; 4 ]
    (List.map snd kept);
  Alcotest.(check (list (float 1e-9))) "scores" [ 0.9; 0.9; 0.7 ]
    (List.map fst kept)

let test_bounded_heap_underfill () =
  let bh = Bounded_heap.create ~k:5 () in
  Bounded_heap.push bh ~score:1.0 "a";
  Bounded_heap.push bh ~score:2.0 "b";
  Alcotest.(check (list string)) "all kept" [ "b"; "a" ]
    (List.map snd (Bounded_heap.pop_all bh))

let test_bounded_heap_invalid_k () =
  Alcotest.check_raises "k = 0 rejected"
    (Invalid_argument "Bounded_heap.create: k must be positive") (fun () ->
      ignore (Bounded_heap.create ~k:0 ()))

let prop_bounded_heap_matches_sort =
  QCheck2.Test.make ~name:"bounded heap keeps the k largest (stable)"
    ~count:300
    QCheck2.Gen.(pair (int_range 1 8) (list (float_range 0.0 1.0)))
    (fun (k, scores) ->
      let bh = Bounded_heap.create ~k () in
      List.iteri (fun i s -> Bounded_heap.push bh ~score:s i) scores;
      let kept = List.map fst (Bounded_heap.pop_all bh) in
      kept = top_k_reference k scores)

(* ----------------------------------------------------------------- Stats *)

let test_stats_mean_stddev () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 (Stats.mean xs);
  check_float "sample stddev" (sqrt (32.0 /. 7.0)) (Stats.stddev xs)

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p100" 4.0 (Stats.percentile xs 100.0);
  check_float "p50 interpolates" 2.5 (Stats.percentile xs 50.0)

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 3.0 |] in
  Alcotest.(check int) "n" 2 s.Stats.n;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 3.0 s.Stats.max

let test_stats_empty () =
  Alcotest.check_raises "summarize empty"
    (Invalid_argument "Stats.summarize: empty array") (fun () ->
      ignore (Stats.summarize [||]))

(* ------------------------------------------------------------------- Mem *)

let test_mem_tracker_high_water () =
  let t = Mem.Tracker.create () in
  Mem.Tracker.set_baseline_words t 1024;
  Mem.Tracker.add_words t 4096;
  Mem.Tracker.remove_words t 4096;
  Mem.Tracker.add_words t 100;
  let expected = Mem.words_to_mb (1024 + 4096) in
  check_float "peak includes baseline" expected (Mem.Tracker.high_water_mb t)

let test_mem_words_to_mb () =
  let mb = Mem.words_to_mb (1024 * 1024 / (Sys.word_size / 8)) in
  check_float "1 MB" 1.0 mb

(* ------------------------------------------------------------------- Log *)

let test_log_setup_and_emit () =
  (* Smoke: setting up logging and emitting through every source must not
     raise; the reporter writes to stderr, invisible to assertions. *)
  Log.setup ~level:Logs.Debug ();
  Logs.debug ~src:Log.algo (fun m -> m "algo event %d" 1);
  Logs.info ~src:Log.flow (fun m -> m "flow event");
  Logs.warn ~src:Log.workload (fun m -> m "workload event ~header" ~header:"h");
  (* Restore quiet default so later tests don't spam stderr. *)
  Logs.set_level None;
  Alcotest.(check bool) "sources named" true
    (Logs.Src.name Log.algo = "ltc.algo"
    && Logs.Src.name Log.flow = "ltc.flow"
    && Logs.Src.name Log.workload = "ltc.workload")

(* ----------------------------------------------------------------- Table *)

let test_table_render () =
  let out =
    Table.render ~header:[ "x"; "value" ]
      [ [ Table.Int 1; Table.Float 0.5 ]; [ Table.Int 20; Table.Float 1.25 ] ]
  in
  Alcotest.(check bool) "contains aligned row" true
    (Astring.String.is_infix ~affix:"20" out
    && Astring.String.is_infix ~affix:"1.25" out);
  Alcotest.(check bool) "has rule" true (Astring.String.is_infix ~affix:"---" out)

let test_table_row_width_mismatch () =
  Alcotest.check_raises "bad row"
    (Invalid_argument "Table.render: row 0 has 1 cells, expected 2") (fun () ->
      ignore (Table.render ~header:[ "a"; "b" ] [ [ Table.Int 1 ] ]))

(* ------------------------------------------------------------ Ascii_plot *)

let test_plot_renders_markers_and_legend () =
  let out =
    Ascii_plot.render
      [
        { Ascii_plot.name = "up"; points = [ (0.0, 0.0); (10.0, 10.0) ] };
        { Ascii_plot.name = "down"; points = [ (0.0, 10.0); (10.0, 0.0) ] };
      ]
  in
  Alcotest.(check bool) "first marker" true (String.contains out '*');
  Alcotest.(check bool) "second marker" true (String.contains out '+');
  Alcotest.(check bool) "legend names" true
    (Astring.String.is_infix ~affix:"*=up" out
    && Astring.String.is_infix ~affix:"+=down" out);
  Alcotest.(check bool) "y max labelled" true
    (Astring.String.is_infix ~affix:"10" out)

let test_plot_empty () =
  Alcotest.(check string) "no series" "" (Ascii_plot.render []);
  Alcotest.(check string) "only nan" ""
    (Ascii_plot.render [ { Ascii_plot.name = "n"; points = [ (nan, 1.0) ] } ])

let test_plot_constant_series () =
  (* Degenerate y-range must not divide by zero. *)
  let out =
    Ascii_plot.render
      [ { Ascii_plot.name = "flat"; points = [ (0.0, 5.0); (1.0, 5.0) ] } ]
  in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_plot_marker_positions () =
  (* An increasing series must put the first point in the bottom-left
     region and the last in the top-right region of the canvas. *)
  let out =
    Ascii_plot.render ~width:20 ~height:5 ~connect:false
      [ { Ascii_plot.name = "s"; points = [ (0.0, 0.0); (1.0, 1.0) ] } ]
  in
  let lines = String.split_on_char '\n' out in
  let top = List.nth lines 0 and bottom = List.nth lines 4 in
  Alcotest.(check bool) "max at top right" true
    (String.index top '*' > String.length top - 4);
  Alcotest.(check bool) "min at bottom left" true
    (String.index bottom '*' < 14)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "util.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
        Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
        Alcotest.test_case "int uniformity" `Quick test_rng_int_uniformity;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "shuffle is a permutation" `Quick
          test_rng_shuffle_permutation;
        Alcotest.test_case "copy" `Quick test_rng_copy;
      ] );
    ( "util.distribution",
      [
        Alcotest.test_case "uniform range" `Quick test_dist_uniform_range;
        Alcotest.test_case "normal moments" `Quick test_dist_normal_mean;
        Alcotest.test_case "truncated band" `Quick test_dist_truncated_band;
        Alcotest.test_case "uniform accuracy band" `Quick
          test_dist_accuracy_uniform_band;
        Alcotest.test_case "constant" `Quick test_dist_constant;
      ] );
    ( "util.heap",
      [
        Alcotest.test_case "sorts" `Quick test_heap_sorts;
        Alcotest.test_case "empty behaviour" `Quick test_heap_empty;
        Alcotest.test_case "of_array" `Quick test_heap_of_array;
        Alcotest.test_case "float elements" `Quick test_heap_float_instantiation;
        Alcotest.test_case "clear" `Quick test_heap_clear;
        qcheck prop_heap_sorts;
      ] );
    ( "util.bounded_heap",
      [
        Alcotest.test_case "top-k with stable ties" `Quick test_bounded_heap_topk;
        Alcotest.test_case "underfill" `Quick test_bounded_heap_underfill;
        Alcotest.test_case "invalid k" `Quick test_bounded_heap_invalid_k;
        qcheck prop_bounded_heap_matches_sort;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean/stddev" `Quick test_stats_mean_stddev;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "summary" `Quick test_stats_summary;
        Alcotest.test_case "empty raises" `Quick test_stats_empty;
      ] );
    ( "util.mem",
      [
        Alcotest.test_case "tracker high water" `Quick test_mem_tracker_high_water;
        Alcotest.test_case "words to MB" `Quick test_mem_words_to_mb;
      ] );
    ( "util.log",
      [ Alcotest.test_case "setup and emit" `Quick test_log_setup_and_emit ] );
    ( "util.ascii_plot",
      [
        Alcotest.test_case "markers and legend" `Quick
          test_plot_renders_markers_and_legend;
        Alcotest.test_case "empty inputs" `Quick test_plot_empty;
        Alcotest.test_case "constant series" `Quick test_plot_constant_series;
        Alcotest.test_case "marker positions" `Quick test_plot_marker_positions;
      ] );
    ( "util.table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "row width mismatch" `Quick
          test_table_row_width_mismatch;
      ] );
  ]
