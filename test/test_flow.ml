open Ltc_flow

let check_float = Alcotest.(check (float 1e-6))

(* ----------------------------------------------------------------- Graph *)

let test_graph_basics () =
  let g = Graph.create ~n:3 in
  let a = Graph.add_arc g ~src:0 ~dst:1 ~cap:5 ~cost:2.0 in
  let b = Graph.add_arc g ~src:1 ~dst:2 ~cap:3 ~cost:(-1.0) in
  Alcotest.(check int) "node count" 3 (Graph.node_count g);
  Alcotest.(check int) "arc count" 2 (Graph.arc_count g);
  Alcotest.(check int) "residual" 5 (Graph.residual g a);
  Alcotest.(check int) "flow 0" 0 (Graph.flow g a);
  Graph.push g a 2;
  Alcotest.(check int) "residual after push" 3 (Graph.residual g a);
  Alcotest.(check int) "flow after push" 2 (Graph.flow g a);
  Alcotest.(check int) "reverse residual" 2 (Graph.residual g (a lxor 1));
  check_float "cost" (-1.0) (Graph.cost g b);
  Alcotest.(check int) "src" 1 (Graph.src g b);
  Alcotest.(check int) "dst" 2 (Graph.dst g b)

let test_graph_push_cancel () =
  let g = Graph.create ~n:2 in
  let a = Graph.add_arc g ~src:0 ~dst:1 ~cap:4 ~cost:1.0 in
  Graph.push g a 4;
  (* Pushing on the reverse arc cancels flow. *)
  Graph.push g (a lxor 1) 1;
  Alcotest.(check int) "flow cancelled" 3 (Graph.flow g a)

let test_graph_invalid () =
  let g = Graph.create ~n:2 in
  Alcotest.check_raises "bad node"
    (Invalid_argument "Graph.add_arc: node out of range") (fun () ->
      ignore (Graph.add_arc g ~src:0 ~dst:2 ~cap:1 ~cost:0.0));
  let a = Graph.add_arc g ~src:0 ~dst:1 ~cap:1 ~cost:0.0 in
  Alcotest.check_raises "over-push"
    (Invalid_argument "Graph.push: exceeds residual") (fun () ->
      Graph.push g a 2);
  Alcotest.check_raises "flow of backward arc"
    (Invalid_argument "Graph.flow: backward arc") (fun () ->
      ignore (Graph.flow g (a lxor 1)))

let test_graph_iter_from () =
  let g = Graph.create ~n:3 in
  let a = Graph.add_arc g ~src:0 ~dst:1 ~cap:1 ~cost:0.0 in
  let b = Graph.add_arc g ~src:0 ~dst:2 ~cap:1 ~cost:0.0 in
  let seen = ref [] in
  Graph.iter_arcs_from g 0 (fun arc -> seen := arc :: !seen);
  Alcotest.(check (list int)) "both forward arcs, oldest last" [ a; b ]
    !seen

(* ------------------------------------------------------------- Node_heap *)

let test_node_heap_basic () =
  let h = Node_heap.create ~n:5 in
  Alcotest.(check bool) "empty" true (Node_heap.is_empty h);
  Node_heap.push_or_decrease h 3 2.5;
  Node_heap.push_or_decrease h 1 1.0;
  Node_heap.push_or_decrease h 4 4.0;
  Alcotest.(check bool) "mem" true (Node_heap.mem h 3);
  Alcotest.(check bool) "not mem" false (Node_heap.mem h 0);
  Alcotest.(check int) "size" 3 (Node_heap.size h);
  Alcotest.(check bool) "min first" true (Node_heap.pop_min h = Some (1, 1.0));
  Alcotest.(check bool) "then 3" true (Node_heap.pop_min h = Some (3, 2.5));
  Alcotest.(check bool) "then 4" true (Node_heap.pop_min h = Some (4, 4.0));
  Alcotest.(check bool) "exhausted" true (Node_heap.pop_min h = None)

let test_node_heap_decrease () =
  let h = Node_heap.create ~n:4 in
  Node_heap.push_or_decrease h 0 5.0;
  Node_heap.push_or_decrease h 1 3.0;
  Node_heap.push_or_decrease h 0 1.0;  (* decrease-key *)
  Node_heap.push_or_decrease h 1 9.0;  (* increase: must be ignored *)
  Alcotest.(check bool) "decreased node wins" true
    (Node_heap.pop_min h = Some (0, 1.0));
  Alcotest.(check bool) "increase ignored" true
    (Node_heap.pop_min h = Some (1, 3.0))

let test_node_heap_clear_reuse () =
  let h = Node_heap.create ~n:3 in
  Node_heap.push_or_decrease h 2 1.0;
  Node_heap.clear h;
  Alcotest.(check bool) "cleared" true (Node_heap.is_empty h);
  Alcotest.(check bool) "mem reset" false (Node_heap.mem h 2);
  Node_heap.push_or_decrease h 2 7.0;
  Alcotest.(check bool) "reusable" true (Node_heap.pop_min h = Some (2, 7.0))

let prop_node_heap_sorts =
  QCheck2.Test.make ~name:"node heap pops keys in ascending order" ~count:200
    QCheck2.Gen.(
      let* n = int_range 1 32 in
      let* keys = array_size (return n) (float_range 0.0 100.0) in
      return (n, keys))
    (fun (n, keys) ->
      let h = Node_heap.create ~n in
      Array.iteri (fun v k -> Node_heap.push_or_decrease h v k) keys;
      let rec drain last =
        match Node_heap.pop_min h with
        | None -> true
        | Some (_, k) -> k >= last && drain k
      in
      drain neg_infinity)

(* ------------------------------------------------------------------ Mcmf *)

(* Two units from 0 to 3 over parallel middle arcs of different costs. *)
let test_mcmf_prefers_cheap_path () =
  let g = Graph.create ~n:4 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~cap:1 ~cost:0.0);
  ignore (Graph.add_arc g ~src:0 ~dst:2 ~cap:1 ~cost:0.0);
  ignore (Graph.add_arc g ~src:1 ~dst:3 ~cap:1 ~cost:5.0);
  ignore (Graph.add_arc g ~src:2 ~dst:3 ~cap:1 ~cost:1.0);
  let r = Mcmf.run g ~source:0 ~sink:3 in
  Alcotest.(check int) "max flow" 2 r.Mcmf.flow;
  check_float "total cost" 6.0 r.Mcmf.cost

let test_mcmf_negative_costs () =
  (* The LTC-style network: all middle arcs carry negative cost. *)
  let g = Graph.create ~n:4 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~cap:2 ~cost:0.0);
  let cheap = Graph.add_arc g ~src:1 ~dst:2 ~cap:1 ~cost:(-0.9) in
  let dear = Graph.add_arc g ~src:1 ~dst:2 ~cap:1 ~cost:(-0.4) in
  ignore (Graph.add_arc g ~src:2 ~dst:3 ~cap:1 ~cost:0.0);
  let r = Mcmf.run g ~source:0 ~sink:3 in
  (* Sink capacity admits one unit; it must travel the -0.9 arc. *)
  Alcotest.(check int) "one unit" 1 r.Mcmf.flow;
  check_float "picked min cost" (-0.9) r.Mcmf.cost;
  Alcotest.(check int) "cheap arc used" 1 (Graph.flow g cheap);
  Alcotest.(check int) "dear arc unused" 0 (Graph.flow g dear)

let test_mcmf_rerouting () =
  (* Classic residual test: the cheap greedy path must be partially undone
     to reach the true optimum. *)
  let g = Graph.create ~n:4 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~cap:2 ~cost:1.0);
  ignore (Graph.add_arc g ~src:1 ~dst:3 ~cap:1 ~cost:1.0);
  ignore (Graph.add_arc g ~src:1 ~dst:2 ~cap:1 ~cost:1.0);
  ignore (Graph.add_arc g ~src:0 ~dst:2 ~cap:1 ~cost:4.0);
  ignore (Graph.add_arc g ~src:2 ~dst:3 ~cap:2 ~cost:1.0);
  let r = Mcmf.run g ~source:0 ~sink:3 in
  Alcotest.(check int) "max flow 3" 3 r.Mcmf.flow;
  (* Units: 0-1-3 (2), 0-1-2-3 (3), 0-2-3 (5) = 10. *)
  check_float "optimal cost" 10.0 r.Mcmf.cost

let test_mcmf_max_flow_cap () =
  let g = Graph.create ~n:2 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~cap:10 ~cost:1.0);
  let r = Mcmf.run ~max_flow:4 g ~source:0 ~sink:1 in
  Alcotest.(check int) "capped" 4 r.Mcmf.flow;
  check_float "cost" 4.0 r.Mcmf.cost

let test_mcmf_stop_on_nonnegative () =
  let g = Graph.create ~n:3 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~cap:1 ~cost:(-2.0));
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~cap:1 ~cost:3.0);
  ignore (Graph.add_arc g ~src:1 ~dst:2 ~cap:2 ~cost:0.0);
  let r = Mcmf.run ~stop_on_nonnegative:true g ~source:0 ~sink:2 in
  Alcotest.(check int) "only profitable unit" 1 r.Mcmf.flow;
  check_float "cost" (-2.0) r.Mcmf.cost

let test_mcmf_disconnected () =
  let g = Graph.create ~n:3 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~cap:1 ~cost:1.0);
  let r = Mcmf.run g ~source:0 ~sink:2 in
  Alcotest.(check int) "no flow" 0 r.Mcmf.flow

let test_mcmf_invalid () =
  let g = Graph.create ~n:2 in
  Alcotest.check_raises "source=sink"
    (Invalid_argument "Mcmf.run: source = sink") (fun () ->
      ignore (Mcmf.run g ~source:0 ~sink:0))

(* Brute-force reference: minimum-cost assignment on small bipartite
   instances, compared against the SSPA result. *)
let brute_min_cost_assignment ~n_left ~n_right ~cap_left ~cap_right ~costs =
  (* Enumerate all ways to pick a set of (i, j) pairs respecting caps and
     maximising routed units first, then minimising cost. *)
  let pairs =
    List.concat
      (List.init n_left (fun i -> List.init n_right (fun j -> (i, j))))
  in
  let best_units = ref 0 in
  let best_cost = ref infinity in
  let load_l = Array.make n_left 0 and load_r = Array.make n_right 0 in
  let rec go remaining units cost =
    if units > !best_units || (units = !best_units && cost < !best_cost) then begin
      best_units := units;
      best_cost := cost
    end;
    match remaining with
    | [] -> ()
    | (i, j) :: rest ->
      go rest units cost;
      if load_l.(i) < cap_left && load_r.(j) < cap_right then begin
        load_l.(i) <- load_l.(i) + 1;
        load_r.(j) <- load_r.(j) + 1;
        go rest (units + 1) (cost +. costs.(i).(j));
        load_l.(i) <- load_l.(i) - 1;
        load_r.(j) <- load_r.(j) - 1
      end
  in
  go pairs 0 0.0;
  (!best_units, !best_cost)

let prop_mcmf_matches_brute =
  let gen =
    QCheck2.Gen.(
      let* n_left = int_range 1 3 in
      let* n_right = int_range 1 3 in
      let* cap_left = int_range 1 2 in
      let* cap_right = int_range 1 2 in
      let* costs =
        array_size (return n_left)
          (array_size (return n_right) (float_range (-1.0) 0.0))
      in
      return (n_left, n_right, cap_left, cap_right, costs))
  in
  QCheck2.Test.make ~name:"SSPA = brute force on bipartite instances"
    ~count:150 gen
    (fun (n_left, n_right, cap_left, cap_right, costs) ->
      let n = n_left + n_right + 2 in
      let source = 0 and sink = n - 1 in
      let g = Graph.create ~n in
      for i = 0 to n_left - 1 do
        ignore (Graph.add_arc g ~src:source ~dst:(1 + i) ~cap:cap_left ~cost:0.0)
      done;
      for i = 0 to n_left - 1 do
        for j = 0 to n_right - 1 do
          ignore
            (Graph.add_arc g ~src:(1 + i) ~dst:(1 + n_left + j) ~cap:1
               ~cost:costs.(i).(j))
        done
      done;
      for j = 0 to n_right - 1 do
        ignore
          (Graph.add_arc g ~src:(1 + n_left + j) ~dst:sink ~cap:cap_right
             ~cost:0.0)
      done;
      let r = Mcmf.run g ~source ~sink in
      let units, cost =
        brute_min_cost_assignment ~n_left ~n_right ~cap_left ~cap_right ~costs
      in
      r.Mcmf.flow = units && Float.abs (r.Mcmf.cost -. cost) < 1e-6)

let prop_mcmf_flow_conservation =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 2 6 in
      let* arcs =
        (* Non-negative costs: random topologies with negative arcs can
           contain negative cycles, which Mcmf rejects by design. *)
        list_size (int_range 1 12)
          (triple (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
             (int_range 0 3) (float_range 0.0 2.0))
      in
      return (n, arcs))
  in
  QCheck2.Test.make ~name:"flow conservation at inner nodes" ~count:150 gen
    (fun (n, arcs) ->
      let g = Graph.create ~n in
      List.iter
        (fun ((src, dst), cap, cost) ->
          if src <> dst then ignore (Graph.add_arc g ~src ~dst ~cap ~cost))
        arcs;
      let source = 0 and sink = n - 1 in
      let r = Mcmf.run g ~source ~sink in
      let balance = Array.make n 0 in
      Graph.iter_forward_arcs g (fun a ->
          let f = Graph.flow g a in
          balance.(Graph.src g a) <- balance.(Graph.src g a) - f;
          balance.(Graph.dst g a) <- balance.(Graph.dst g a) + f);
      let ok = ref (balance.(source) = -r.Mcmf.flow && balance.(sink) = r.Mcmf.flow) in
      for v = 0 to n - 1 do
        if v <> source && v <> sink && balance.(v) <> 0 then ok := false
      done;
      !ok)

(* ------------------------------------------------------------- Mcmf_spfa *)

let random_bipartite_gen =
  QCheck2.Gen.(
    let* n_left = int_range 1 4 in
    let* n_right = int_range 1 4 in
    let* cap_left = int_range 1 3 in
    let* cap_right = int_range 1 3 in
    let* costs =
      array_size (return n_left)
        (array_size (return n_right) (float_range (-1.0) 0.0))
    in
    return (n_left, n_right, cap_left, cap_right, costs))

let build_bipartite (n_left, n_right, cap_left, cap_right, costs) =
  let n = n_left + n_right + 2 in
  let source = 0 and sink = n - 1 in
  let g = Graph.create ~n in
  for i = 0 to n_left - 1 do
    ignore (Graph.add_arc g ~src:source ~dst:(1 + i) ~cap:cap_left ~cost:0.0)
  done;
  for i = 0 to n_left - 1 do
    for j = 0 to n_right - 1 do
      ignore
        (Graph.add_arc g ~src:(1 + i) ~dst:(1 + n_left + j) ~cap:1
           ~cost:costs.(i).(j))
    done
  done;
  for j = 0 to n_right - 1 do
    ignore
      (Graph.add_arc g ~src:(1 + n_left + j) ~dst:sink ~cap:cap_right ~cost:0.0)
  done;
  (g, source, sink)

let prop_spfa_agrees_with_sspa =
  QCheck2.Test.make ~name:"SPFA and SSPA solvers agree" ~count:200
    random_bipartite_gen
    (fun input ->
      let g1, source, sink = build_bipartite input in
      let g2, _, _ = build_bipartite input in
      let r1 = Mcmf.run g1 ~source ~sink in
      let r2 = Mcmf_spfa.run g2 ~source ~sink in
      r1.Mcmf.flow = r2.Mcmf.flow
      && Float.abs (r1.Mcmf.cost -. r2.Mcmf.cost) < 1e-6)

let test_spfa_negative_costs () =
  let g = Graph.create ~n:4 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~cap:2 ~cost:0.0);
  ignore (Graph.add_arc g ~src:1 ~dst:2 ~cap:1 ~cost:(-0.9));
  ignore (Graph.add_arc g ~src:1 ~dst:2 ~cap:1 ~cost:(-0.4));
  ignore (Graph.add_arc g ~src:2 ~dst:3 ~cap:1 ~cost:0.0);
  let r = Mcmf_spfa.run g ~source:0 ~sink:3 in
  Alcotest.(check int) "one unit" 1 r.Mcmf.flow;
  check_float "min cost" (-0.9) r.Mcmf.cost

(* ----------------------------------------------------------------- Dinic *)

let test_dinic_simple () =
  let g = Graph.create ~n:4 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~cap:3 ~cost:0.0);
  ignore (Graph.add_arc g ~src:0 ~dst:2 ~cap:2 ~cost:0.0);
  ignore (Graph.add_arc g ~src:1 ~dst:3 ~cap:2 ~cost:0.0);
  ignore (Graph.add_arc g ~src:1 ~dst:2 ~cap:1 ~cost:0.0);
  ignore (Graph.add_arc g ~src:2 ~dst:3 ~cap:3 ~cost:0.0);
  Alcotest.(check int) "max flow 5" 5 (Dinic.max_flow g ~source:0 ~sink:3)

let test_dinic_disconnected () =
  let g = Graph.create ~n:3 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~cap:5 ~cost:0.0);
  Alcotest.(check int) "no flow" 0 (Dinic.max_flow g ~source:0 ~sink:2)

let general_graph_gen =
  QCheck2.Gen.(
    let* n = int_range 2 7 in
    let* arcs =
      list_size (int_range 1 14)
        (triple (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
           (int_range 0 4) (float_range 0.0 3.0))
    in
    return (n, arcs))

let build_general (n, arcs) =
  let g = Graph.create ~n in
  List.iter
    (fun ((src, dst), cap, cost) ->
      if src <> dst then ignore (Graph.add_arc g ~src ~dst ~cap ~cost))
    arcs;
  g

let prop_spfa_agrees_on_general_graphs =
  QCheck2.Test.make ~name:"SPFA = SSPA on general non-negative graphs"
    ~count:150 general_graph_gen
    (fun input ->
      let n, _ = input in
      let g1 = build_general input in
      let g2 = build_general input in
      let r1 = Mcmf.run g1 ~source:0 ~sink:(n - 1) in
      let r2 = Mcmf_spfa.run g2 ~source:0 ~sink:(n - 1) in
      r1.Mcmf.flow = r2.Mcmf.flow
      && Float.abs (r1.Mcmf.cost -. r2.Mcmf.cost) < 1e-6)

let prop_dinic_on_general_graphs =
  QCheck2.Test.make ~name:"Dinic = SSPA flow value on general graphs"
    ~count:150 general_graph_gen
    (fun input ->
      let n, _ = input in
      let g1 = build_general input in
      let g2 = build_general input in
      let r = Mcmf.run g1 ~source:0 ~sink:(n - 1) in
      Dinic.max_flow g2 ~source:0 ~sink:(n - 1) = r.Mcmf.flow)

let prop_dinic_agrees_with_mcmf_flow =
  QCheck2.Test.make ~name:"Dinic max flow = SSPA max flow" ~count:200
    random_bipartite_gen
    (fun input ->
      let g1, source, sink = build_bipartite input in
      let g2, _, _ = build_bipartite input in
      let r = Mcmf.run g1 ~source ~sink in
      Dinic.max_flow g2 ~source ~sink = r.Mcmf.flow)

(* -------------------------------------------- arena / workspace reuse *)

let test_graph_clear_reuse () =
  let g = Graph.create ~n:3 in
  let a = Graph.add_arc g ~src:0 ~dst:1 ~cap:5 ~cost:1.0 in
  Graph.push g a 2;
  ignore (Graph.add_arc g ~src:1 ~dst:2 ~cap:1 ~cost:0.0);
  Graph.clear g ~n:2;
  Alcotest.(check int) "nodes" 2 (Graph.node_count g);
  Alcotest.(check int) "no arcs" 0 (Graph.arc_count g);
  let seen = ref [] in
  Graph.iter_arcs_from g 0 (fun arc -> seen := arc :: !seen);
  Alcotest.(check (list int)) "adjacency reset" [] !seen;
  let b = Graph.add_arc g ~src:0 ~dst:1 ~cap:3 ~cost:0.0 in
  Alcotest.(check int) "arc ids restart at 0" 0 b;
  Alcotest.(check int) "fresh residual" 3 (Graph.residual g b);
  Alcotest.(check int) "fresh reverse residual" 0 (Graph.residual g (b lxor 1));
  (* Growing clear: nodes beyond the old count start with empty adjacency. *)
  Graph.clear g ~n:5;
  let seen = ref [] in
  Graph.iter_arcs_from g 4 (fun arc -> seen := arc :: !seen);
  Alcotest.(check (list int)) "new nodes empty" [] !seen;
  Alcotest.check_raises "bad n"
    (Invalid_argument "Graph.clear: n must be positive") (fun () ->
      Graph.clear g ~n:0)

let test_graph_reserve () =
  let g = Graph.create ~n:2 in
  let before = Graph.memory_words g in
  Graph.reserve g ~nodes:64 ~arcs:100;
  let after = Graph.memory_words g in
  Alcotest.(check bool) "memory_words reports the reservation" true
    (after > before);
  Graph.clear g ~n:64;
  let words = Graph.memory_words g in
  for i = 0 to 99 do
    ignore (Graph.add_arc g ~src:(i mod 63) ~dst:63 ~cap:1 ~cost:0.0)
  done;
  Alcotest.(check int) "no growth within the reservation" words
    (Graph.memory_words g);
  Alcotest.check_raises "negative size"
    (Invalid_argument "Graph.reserve: negative size") (fun () ->
      Graph.reserve g ~nodes:(-1) ~arcs:0)

let test_node_heap_grow () =
  let h = Node_heap.create ~n:2 in
  Node_heap.push_or_decrease h 1 3.0;
  Node_heap.ensure_capacity h ~n:10;
  Alcotest.(check bool) "capacity grew" true (Node_heap.capacity h >= 10);
  Node_heap.push_or_decrease h 7 1.0;
  Alcotest.(check bool) "new node usable" true
    (Node_heap.pop_min h = Some (7, 1.0));
  Alcotest.(check bool) "old entry intact" true
    (Node_heap.pop_min h = Some (1, 3.0))

let test_workspace_growth () =
  let ws = Mcmf.create_workspace ~hint:2 () in
  Alcotest.(check bool) "hint respected" true (Mcmf.workspace_capacity ws >= 2);
  let input =
    (3, 3, 2, 2, [| [| -0.5; -0.2; -0.9 |];
                    [| -0.1; -0.8; -0.3 |];
                    [| -0.7; -0.4; -0.6 |] |])
  in
  let g1, source, sink = build_bipartite input in
  let r1 = Mcmf.run g1 ~workspace:ws ~source ~sink in
  Alcotest.(check bool) "grew to the graph" true
    (Mcmf.workspace_capacity ws >= Graph.node_count g1);
  (* Same solve on the same workspace must be oblivious to stale labels. *)
  let g2, _, _ = build_bipartite input in
  let r2 = Mcmf.run g2 ~workspace:ws ~source ~sink in
  Alcotest.(check int) "flow stable across reuse" r1.Mcmf.flow r2.Mcmf.flow;
  check_float "cost stable across reuse" r1.Mcmf.cost r2.Mcmf.cost

let test_warm_start_invalid () =
  let g = Graph.create ~n:3 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~cap:1 ~cost:0.0);
  ignore (Graph.add_arc g ~src:1 ~dst:2 ~cap:1 ~cost:0.0);
  Alcotest.check_raises "short candidate"
    (Invalid_argument "Mcmf.run: warm-start potentials shorter than node count")
    (fun () ->
      ignore (Mcmf.run g ~init:(`Warm_start [| 0.0 |]) ~source:0 ~sink:2))

(* One workspace shared across every generated case: reuse itself is under
   test.  Exact (=) float comparisons are deliberate — the reused/DAG path
   must be bit-identical to the cold Bellman-Ford path on batch-shaped
   (layered, arcs-in-topological-order) graphs. *)
let prop_dag_init_matches_bf =
  let ws = Mcmf.create_workspace () in
  QCheck2.Test.make
    ~name:"reused workspace + `Dag_topo = fresh Bellman-Ford, exactly"
    ~count:300 random_bipartite_gen (fun input ->
      let g1, source, sink = build_bipartite input in
      let g2, _, _ = build_bipartite input in
      let r1 = Mcmf.run g1 ~source ~sink in
      let r2 = Mcmf.run g2 ~workspace:ws ~init:`Dag_topo ~source ~sink in
      r1.Mcmf.flow = r2.Mcmf.flow
      && r1.Mcmf.cost = r2.Mcmf.cost
      && r1.Mcmf.rounds = r2.Mcmf.rounds)

let prop_dag_init_same_potentials =
  QCheck2.Test.make ~name:"`Dag_topo potentials = Bellman-Ford potentials"
    ~count:300 random_bipartite_gen (fun input ->
      let g1, source, sink = build_bipartite input in
      let g2, _, _ = build_bipartite input in
      let ws1 = Mcmf.create_workspace () in
      let ws2 = Mcmf.create_workspace () in
      (* max_flow:0 runs the initialiser and nothing else, exposing the raw
         initial potentials through the workspace. *)
      ignore (Mcmf.run g1 ~workspace:ws1 ~max_flow:0 ~source ~sink);
      ignore
        (Mcmf.run g2 ~workspace:ws2 ~max_flow:0 ~init:`Dag_topo ~source ~sink);
      let p1 = Mcmf.borrow_potentials ws1 and p2 = Mcmf.borrow_potentials ws2 in
      let ok = ref true in
      for v = 0 to Graph.node_count g1 - 1 do
        if p1.(v) <> p2.(v) then ok := false
      done;
      !ok)

let prop_warm_start_agrees =
  QCheck2.Test.make
    ~name:"warm-started solve = fresh solve (accept or fallback)" ~count:300
    random_bipartite_gen (fun input ->
      let g1, source, sink = build_bipartite input in
      let g2, _, _ = build_bipartite input in
      let g3, _, _ = build_bipartite input in
      let n = Graph.node_count g1 in
      let ws = Mcmf.create_workspace () in
      (* Final potentials of a completed identical solve: valid on the
         solved residual, not necessarily on the fresh graph — exercises
         both the accept and the reject-and-fall-back paths. *)
      ignore (Mcmf.run g3 ~workspace:ws ~source ~sink);
      let cand = Array.sub (Mcmf.borrow_potentials ws) 0 n in
      let r1 = Mcmf.run g1 ~source ~sink in
      let r2 = Mcmf.run g2 ~workspace:ws ~init:(`Warm_start cand) ~source ~sink in
      r1.Mcmf.flow = r2.Mcmf.flow
      && Float.abs (r1.Mcmf.cost -. r2.Mcmf.cost) < 1e-6)

let prop_spfa_workspace_reuse =
  let ws = Mcmf.create_workspace () in
  QCheck2.Test.make ~name:"SPFA with reused workspace = fresh SPFA, exactly"
    ~count:300 random_bipartite_gen (fun input ->
      let g1, source, sink = build_bipartite input in
      let g2, _, _ = build_bipartite input in
      let r1 = Mcmf_spfa.run g1 ~source ~sink in
      let r2 = Mcmf_spfa.run g2 ~workspace:ws ~source ~sink in
      r1.Mcmf.flow = r2.Mcmf.flow && r1.Mcmf.cost = r2.Mcmf.cost)

(* ---------------------------------------------------------------- Solver *)

let test_graph_truncate () =
  let g = Graph.create ~n:4 in
  let a = Graph.add_arc g ~src:0 ~dst:1 ~cap:2 ~cost:0.5 in
  let mark = Graph.arc_slots g in
  let b = Graph.add_arc g ~src:1 ~dst:2 ~cap:1 ~cost:0.0 in
  let c = Graph.add_arc g ~src:1 ~dst:3 ~cap:1 ~cost:0.0 in
  Graph.push g a 1;
  Graph.push g b 1;
  Alcotest.(check int) "arcs before" 3 (Graph.arc_count g);
  Graph.truncate g mark;
  Alcotest.(check int) "arcs after" 1 (Graph.arc_count g);
  Alcotest.(check int) "persistent flow survives" 1 (Graph.flow g a);
  let seen = ref [] in
  Graph.iter_arcs_from g 1 (fun arc -> seen := arc :: !seen);
  (* Only [a]'s backward slot remains in node 1's chain; the retracted
     forward arcs [b]/[c] are gone. *)
  Alcotest.(check (list int)) "adjacency restored" [ a lxor 1 ] !seen;
  (* Re-appending reuses the retracted slots with fresh state. *)
  let b' = Graph.add_arc g ~src:1 ~dst:2 ~cap:3 ~cost:0.0 in
  Alcotest.(check int) "slot reused" b b';
  Alcotest.(check int) "fresh flow" 0 (Graph.flow g b');
  Alcotest.(check int) "fresh residual" 3 (Graph.residual g b');
  ignore c;
  Alcotest.check_raises "odd checkpoint"
    (Invalid_argument "Graph.truncate: bad arc-slot checkpoint") (fun () ->
      Graph.truncate g 1);
  Alcotest.check_raises "checkpoint past end"
    (Invalid_argument "Graph.truncate: bad arc-slot checkpoint") (fun () ->
      Graph.truncate g (Graph.arc_slots g + 2))

let test_graph_set_capacity () =
  let g = Graph.create ~n:2 in
  let a = Graph.add_arc g ~src:0 ~dst:1 ~cap:3 ~cost:0.0 in
  Graph.push g a 2;
  Alcotest.(check int) "flow routed" 2 (Graph.flow g a);
  Graph.set_capacity g a 5;
  Alcotest.(check int) "residual re-dimensioned" 5 (Graph.residual g a);
  Alcotest.(check int) "flow discarded" 0 (Graph.flow g a);
  Graph.set_capacity g a 0;
  Alcotest.(check int) "retired" 0 (Graph.residual g a);
  Alcotest.check_raises "backward arc"
    (Invalid_argument "Graph.set_capacity: backward arc") (fun () ->
      Graph.set_capacity g (a lxor 1) 1);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Graph.set_capacity: negative capacity") (fun () ->
      Graph.set_capacity g a (-1))

let test_copy_potentials () =
  let input =
    (2, 2, 1, 1, [| [| -0.5; -0.2 |]; [| -0.1; -0.8 |] |])
  in
  let g, source, sink = build_bipartite input in
  let ws = Mcmf.create_workspace () in
  ignore (Mcmf.run g ~workspace:ws ~source ~sink);
  let n = Graph.node_count g in
  let copy = Mcmf.copy_potentials ws ~n in
  let live = Mcmf.borrow_potentials ws in
  Alcotest.(check int) "length" n (Array.length copy);
  for v = 0 to n - 1 do
    Alcotest.(check (float 0.0)) "snapshot matches live" live.(v) copy.(v)
  done;
  (* The copy is detached: mutating it leaves the workspace unchanged. *)
  copy.(0) <- 42.0;
  Alcotest.(check bool) "detached" true (live.(0) <> 42.0);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Mcmf.copy_potentials: n out of range") (fun () ->
      ignore (Mcmf.copy_potentials ws ~n:(Array.length live + 1)))

let test_budget_validation () =
  let g = Graph.create ~n:2 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~cap:1 ~cost:0.0);
  Alcotest.check_raises "negative rounds"
    (Invalid_argument "Mcmf.run: negative round budget") (fun () ->
      ignore (Mcmf.run g ~budget:(Mcmf.Rounds (-1)) ~source:0 ~sink:1));
  Alcotest.check_raises "negative deadline"
    (Invalid_argument "Mcmf.run: negative deadline budget") (fun () ->
      ignore (Mcmf.run g ~budget:(Mcmf.Deadline_s (-1.0)) ~source:0 ~sink:1))

let test_budget_rounds () =
  (* Three parallel unit paths: each augmenting round routes one. *)
  let build () =
    let g = Graph.create ~n:5 in
    for i = 0 to 2 do
      ignore
        (Graph.add_arc g ~src:0 ~dst:(1 + i) ~cap:1
           ~cost:(-1.0 +. (0.1 *. float_of_int i)));
      ignore (Graph.add_arc g ~src:(1 + i) ~dst:4 ~cap:1 ~cost:0.0)
    done;
    g
  in
  let r0 = Mcmf.run (build ()) ~budget:(Mcmf.Rounds 0) ~source:0 ~sink:4 in
  Alcotest.(check int) "zero budget routes nothing" 0 r0.Mcmf.flow;
  Alcotest.(check bool) "zero budget exhausts" true r0.Mcmf.exhausted;
  let r1 = Mcmf.run (build ()) ~budget:(Mcmf.Rounds 1) ~source:0 ~sink:4 in
  Alcotest.(check int) "one round, one unit" 1 r1.Mcmf.flow;
  check_float "cheapest path first" (-1.0) r1.Mcmf.cost;
  Alcotest.(check bool) "cut short" true r1.Mcmf.exhausted;
  let exact = Mcmf.run (build ()) ~source:0 ~sink:4 in
  let lavish =
    Mcmf.run (build ()) ~budget:(Mcmf.Rounds max_int) ~source:0 ~sink:4
  in
  Alcotest.(check int) "lavish budget = exact flow" exact.Mcmf.flow
    lavish.Mcmf.flow;
  check_float "lavish budget = exact cost" exact.Mcmf.cost lavish.Mcmf.cost;
  Alcotest.(check bool) "lavish budget never fires" false lavish.Mcmf.exhausted;
  let slow =
    Mcmf.run (build ()) ~budget:(Mcmf.Deadline_s 3600.0) ~source:0 ~sink:4
  in
  Alcotest.(check int) "distant deadline = exact" exact.Mcmf.flow
    slow.Mcmf.flow

(* Budgeted runs return a prefix of the exact augmentation sequence: the k
   units a budget managed to route cost exactly what an exact [max_flow:k]
   solve pays (SSPA prefix-optimality).  Exact float equality is deliberate
   — both runs perform the identical arithmetic. *)
let prop_anytime_prefix_optimal =
  QCheck2.Test.make ~name:"anytime budget yields a min-cost prefix flow"
    ~count:200
    QCheck2.Gen.(pair random_bipartite_gen (int_range 0 4))
    (fun (input, rounds) ->
      let g1, source, sink = build_bipartite input in
      let g2, _, _ = build_bipartite input in
      let budgeted =
        Mcmf.run g1 ~budget:(Mcmf.Rounds rounds) ~source ~sink
      in
      let prefix = Mcmf.run g2 ~max_flow:budgeted.Mcmf.flow ~source ~sink in
      budgeted.Mcmf.flow = prefix.Mcmf.flow
      && budgeted.Mcmf.cost = prefix.Mcmf.cost)

let test_solver_registry () =
  Alcotest.(check (list string))
    "registry order"
    [ "sspa"; "spfa"; "incremental" ]
    (Solver.names ());
  let caps name = Solver.capabilities (Solver.create name) in
  Alcotest.(check bool) "sspa potentials" true (caps "sspa").Solver.potentials;
  Alcotest.(check bool) "sspa scratch" false (caps "sspa").Solver.incremental;
  Alcotest.(check bool) "spfa no potentials" false
    (caps "spfa").Solver.potentials;
  Alcotest.(check bool) "incremental" true
    (caps "incremental").Solver.incremental;
  Alcotest.(check string) "case insensitive" "sspa"
    (Solver.name (Solver.create "SSPA"));
  Alcotest.(check int) "all_capabilities covers registry"
    (List.length (Solver.names ()))
    (List.length (Solver.all_capabilities ()));
  Alcotest.check_raises "unknown solver"
    (Invalid_argument
       "Solver.create: unknown solver \"simplex\" (try: sspa, spfa, \
        incremental)") (fun () -> ignore (Solver.create "simplex"))

let test_solver_scratch_backends () =
  let input =
    (3, 3, 2, 2, [| [| -0.5; -0.2; -0.9 |];
                    [| -0.1; -0.8; -0.3 |];
                    [| -0.7; -0.4; -0.6 |] |])
  in
  let g1, source, sink = build_bipartite input in
  let g2, _, _ = build_bipartite input in
  let sspa = Solver.create "sspa" in
  let spfa = Solver.create "spfa" in
  let r1 = Solver.solve sspa g1 ~source ~sink in
  let r2 = Solver.solve spfa g2 ~source ~sink in
  Alcotest.(check int) "backends agree on flow" r1.Mcmf.flow r2.Mcmf.flow;
  check_float "backends agree on cost" r1.Mcmf.cost r2.Mcmf.cost;
  Alcotest.(check int) "scratch solvers own no graph" 0
    (Solver.memory_words sspa);
  let inc = Solver.create "incremental" in
  Alcotest.check_raises "incremental rejects scratch solves"
    (Invalid_argument
       "Solver.solve: the incremental solver keeps live session state; use \
        the resolve protocol") (fun () ->
      ignore (Solver.solve inc g1 ~source ~sink))

let test_solver_session_discipline () =
  let sspa = Solver.create "sspa" in
  Alcotest.check_raises "session calls need an incremental backend"
    (Invalid_argument "Solver.set_unit: \"sspa\" is not an incremental solver")
    (fun () -> Solver.set_unit sspa ~unit_id:0 ~cap:1);
  let s = Solver.create "incremental" in
  Alcotest.check_raises "add_worker needs an open batch"
    (Invalid_argument "Solver.add_worker: no open batch") (fun () ->
      ignore (Solver.add_worker s ~cap:1));
  Alcotest.check_raises "end_batch needs an open batch"
    (Invalid_argument "Solver.end_batch: no open batch") (fun () ->
      Solver.end_batch s);
  Solver.set_unit s ~unit_id:0 ~cap:1;
  Solver.begin_batch s;
  Alcotest.check_raises "set_unit locked while open"
    (Invalid_argument "Solver.set_unit: batch in progress") (fun () ->
      Solver.set_unit s ~unit_id:1 ~cap:1);
  Alcotest.check_raises "no nested batches"
    (Invalid_argument "Solver.begin_batch: batch already open") (fun () ->
      Solver.begin_batch s);
  let w = Solver.add_worker s ~cap:1 in
  Alcotest.check_raises "links need declared units"
    (Invalid_argument "Solver.add_link: undeclared unit") (fun () ->
      ignore (Solver.add_link s ~worker:w ~unit_id:7 ~cost:0.0));
  let link = Solver.add_link s ~worker:w ~unit_id:0 ~cost:(-0.5) in
  Alcotest.check_raises "flows only after resolve"
    (Invalid_argument "Solver.link_flow: resolve first") (fun () ->
      ignore (Solver.link_flow s link));
  let r = Solver.resolve s () in
  Alcotest.(check int) "unit routed" 1 r.Mcmf.flow;
  check_float "link cost" (-0.5) r.Mcmf.cost;
  Alcotest.(check int) "link carries the unit" 1 (Solver.link_flow s link);
  Solver.end_batch s;
  Alcotest.(check bool) "session owns persistent state" true
    (Solver.memory_words s > 0)

(* The tentpole cross-check: a long-lived incremental session, fed randomized
   batches of worker arrivals and task completions, must match a from-scratch
   SSPA solve of every intermediate state.  The scratch mirror rebuilds the
   bipartite network from the tracked remaining capacities each batch; the
   session only hears about the delta (new workers, units whose demand
   changed).  Flow must agree exactly, cost within float tolerance. *)
let incremental_scenario_gen =
  QCheck2.Gen.(
    let* n_units = int_range 1 4 in
    let* unit_caps = array_size (return n_units) (int_range 1 3) in
    let* batches =
      list_size (int_range 1 5)
        (let* n_w = int_range 1 3 in
         let* wcaps = array_size (return n_w) (int_range 1 2) in
         let* links =
           array_size (return n_w)
             (array_size (return n_units)
                (pair bool (float_range (-1.0) 0.0)))
         in
         (* External completions applied after the batch: tasks answered
            outside this solver's assignments. *)
         let* completions = array_size (return n_units) bool in
         return (wcaps, links, completions))
    in
    return (unit_caps, batches))

let prop_incremental_matches_scratch =
  QCheck2.Test.make
    ~name:"incremental session = from-scratch SSPA on every delta" ~count:300
    incremental_scenario_gen (fun (unit_caps, batches) ->
      let n_units = Array.length unit_caps in
      let sol = Solver.create "incremental" in
      let rem = Array.copy unit_caps in
      Array.iteri (fun u cap -> Solver.set_unit sol ~unit_id:u ~cap) rem;
      List.for_all
        (fun (wcaps, links, completions) ->
          let n_w = Array.length wcaps in
          (* From-scratch mirror of the current remaining demand. *)
          let n = 2 + n_w + n_units in
          let g = Graph.create ~n in
          let src = 0 and snk = n - 1 in
          Array.iteri
            (fun i cap ->
              ignore (Graph.add_arc g ~src ~dst:(1 + i) ~cap ~cost:0.0))
            wcaps;
          Array.iteri
            (fun i row ->
              Array.iteri
                (fun u (present, cost) ->
                  if present then
                    ignore
                      (Graph.add_arc g ~src:(1 + i) ~dst:(1 + n_w + u) ~cap:1
                         ~cost))
                row)
            links;
          Array.iteri
            (fun u cap ->
              ignore
                (Graph.add_arc g ~src:(1 + n_w + u) ~dst:snk ~cap ~cost:0.0))
            rem;
          let rs = Mcmf.run g ~source:src ~sink:snk in
          (* The same batch against the live session. *)
          Solver.begin_batch sol;
          Array.iteri
            (fun i cap -> ignore (Solver.add_worker sol ~cap : int); ignore i)
            wcaps;
          let batch_links = ref [] in
          Array.iteri
            (fun i row ->
              Array.iteri
                (fun u (present, cost) ->
                  if present then
                    batch_links :=
                      (u, Solver.add_link sol ~worker:i ~unit_id:u ~cost)
                      :: !batch_links)
                row)
            links;
          let ri = Solver.resolve sol () in
          let routed = Array.make n_units 0 in
          List.iter
            (fun (u, link) ->
              routed.(u) <- routed.(u) + Solver.link_flow sol link)
            !batch_links;
          Solver.end_batch sol;
          (* Sync the delta: units that received flow, then external
             completions — exactly the caller obligation MCF-LTC honours. *)
          for u = 0 to n_units - 1 do
            let before = rem.(u) in
            rem.(u) <- rem.(u) - routed.(u);
            if completions.(u) && rem.(u) > 0 then rem.(u) <- rem.(u) - 1;
            if rem.(u) <> before || routed.(u) > 0 then
              Solver.set_unit sol ~unit_id:u ~cap:rem.(u)
          done;
          ri.Mcmf.flow = rs.Mcmf.flow
          && Float.abs (ri.Mcmf.cost -. rs.Mcmf.cost) < 1e-6
          && (not ri.Mcmf.exhausted))
        batches)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "flow.graph",
      [
        Alcotest.test_case "basics" `Quick test_graph_basics;
        Alcotest.test_case "push/cancel" `Quick test_graph_push_cancel;
        Alcotest.test_case "invalid args" `Quick test_graph_invalid;
        Alcotest.test_case "iteration" `Quick test_graph_iter_from;
      ] );
    ( "flow.node_heap",
      [
        Alcotest.test_case "basic" `Quick test_node_heap_basic;
        Alcotest.test_case "decrease-key" `Quick test_node_heap_decrease;
        Alcotest.test_case "clear and reuse" `Quick test_node_heap_clear_reuse;
        qcheck prop_node_heap_sorts;
      ] );
    ( "flow.mcmf",
      [
        Alcotest.test_case "prefers cheap path" `Quick
          test_mcmf_prefers_cheap_path;
        Alcotest.test_case "negative costs" `Quick test_mcmf_negative_costs;
        Alcotest.test_case "rerouting through residuals" `Quick
          test_mcmf_rerouting;
        Alcotest.test_case "max_flow cap" `Quick test_mcmf_max_flow_cap;
        Alcotest.test_case "stop on nonnegative" `Quick
          test_mcmf_stop_on_nonnegative;
        Alcotest.test_case "disconnected" `Quick test_mcmf_disconnected;
        Alcotest.test_case "invalid args" `Quick test_mcmf_invalid;
        qcheck prop_mcmf_matches_brute;
        qcheck prop_mcmf_flow_conservation;
      ] );
    ( "flow.mcmf_spfa",
      [
        Alcotest.test_case "negative costs" `Quick test_spfa_negative_costs;
        qcheck prop_spfa_agrees_with_sspa;
        qcheck prop_spfa_agrees_on_general_graphs;
      ] );
    ( "flow.dinic",
      [
        Alcotest.test_case "textbook network" `Quick test_dinic_simple;
        Alcotest.test_case "disconnected" `Quick test_dinic_disconnected;
        qcheck prop_dinic_agrees_with_mcmf_flow;
        qcheck prop_dinic_on_general_graphs;
      ] );
    ( "flow.reuse",
      [
        Alcotest.test_case "graph clear" `Quick test_graph_clear_reuse;
        Alcotest.test_case "graph reserve" `Quick test_graph_reserve;
        Alcotest.test_case "node heap growth" `Quick test_node_heap_grow;
        Alcotest.test_case "workspace growth" `Quick test_workspace_growth;
        Alcotest.test_case "warm start validation" `Quick
          test_warm_start_invalid;
        qcheck prop_dag_init_matches_bf;
        qcheck prop_dag_init_same_potentials;
        qcheck prop_warm_start_agrees;
        qcheck prop_spfa_workspace_reuse;
      ] );
    ( "flow.anytime",
      [
        Alcotest.test_case "budget validation" `Quick test_budget_validation;
        Alcotest.test_case "round budgets" `Quick test_budget_rounds;
        Alcotest.test_case "copy potentials" `Quick test_copy_potentials;
        qcheck prop_anytime_prefix_optimal;
      ] );
    ( "flow.solver",
      [
        Alcotest.test_case "graph truncate" `Quick test_graph_truncate;
        Alcotest.test_case "graph set_capacity" `Quick test_graph_set_capacity;
        Alcotest.test_case "registry" `Quick test_solver_registry;
        Alcotest.test_case "scratch backends" `Quick
          test_solver_scratch_backends;
        Alcotest.test_case "session discipline" `Quick
          test_solver_session_discipline;
        qcheck prop_incremental_matches_scratch;
      ] );
  ]
