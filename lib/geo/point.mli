(** Planar points.

    The paper's world is a 1000x1000 grid where one unit is a 10 m square;
    all distances ([dmax = 30] units = 300 m) are Euclidean in grid units.
    Coordinates are floats so that the city workload generator can place
    check-ins off the lattice. *)

type t = { x : float; y : float }

val make : x:float -> y:float -> t

val distance : t -> t -> float
(** Euclidean distance. *)

val distance_sq : t -> t -> float
(** Squared Euclidean distance; avoids the [sqrt] in pure comparisons. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
