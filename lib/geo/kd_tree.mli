(** Static 2-d tree over a fixed point set.

    Alternative spatial index to {!Grid_index}: better when point density is
    highly non-uniform (the clustered city workloads) because its cells adapt
    to the data.  The [ablation-index] bench compares both against a linear
    scan.  Also provides nearest-neighbour search, which the city generator
    uses to snap check-ins to POIs. *)

type t

val build : Point.t array -> t
(** O(n log n) construction by in-place median partitioning (Hoare-style
    selection); points are identified by their array index. *)

val length : t -> int

val iter_within : t -> center:Point.t -> radius:float -> (int -> unit) -> unit
(** Calls [f i] for each point within Euclidean [radius] of [center], in
    tree order (unspecified but deterministic). *)

val query_within : t -> center:Point.t -> radius:float -> int list
(** Materialised {!iter_within}, ascending point-index order. *)

val nearest : t -> Point.t -> int option
(** Index of a closest point ([None] iff the tree is empty).  Ties are broken
    deterministically by tree order. *)

val memory_words : t -> int
