type t = { min_x : float; min_y : float; max_x : float; max_y : float }

let make ~min_x ~min_y ~max_x ~max_y =
  if min_x > max_x || min_y > max_y then invalid_arg "Bbox.make: inverted box";
  { min_x; min_y; max_x; max_y }

let square ~side = make ~min_x:0.0 ~min_y:0.0 ~max_x:side ~max_y:side

let width t = t.max_x -. t.min_x
let height t = t.max_y -. t.min_y

let contains t (p : Point.t) =
  p.x >= t.min_x && p.x <= t.max_x && p.y >= t.min_y && p.y <= t.max_y

let of_points = function
  | [] -> invalid_arg "Bbox.of_points: empty list"
  | (p : Point.t) :: rest ->
    List.fold_left
      (fun acc (q : Point.t) ->
        {
          min_x = Float.min acc.min_x q.x;
          min_y = Float.min acc.min_y q.y;
          max_x = Float.max acc.max_x q.x;
          max_y = Float.max acc.max_y q.y;
        })
      { min_x = p.x; min_y = p.y; max_x = p.x; max_y = p.y }
      rest

let clamp t (p : Point.t) =
  Point.make
    ~x:(Float.max t.min_x (Float.min t.max_x p.x))
    ~y:(Float.max t.min_y (Float.min t.max_y p.y))

let distance_sq_to_point t p = Point.distance_sq (clamp t p) p

let pp fmt t =
  Format.fprintf fmt "[%g, %g]x[%g, %g]" t.min_x t.max_x t.min_y t.max_y
