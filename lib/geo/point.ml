type t = { x : float; y : float }

let make ~x ~y = { x; y }

let distance_sq a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  (dx *. dx) +. (dy *. dy)

let distance a b = sqrt (distance_sq a b)

let equal a b = a.x = b.x && a.y = b.y

let pp fmt p = Format.fprintf fmt "(%g, %g)" p.x p.y

let to_string p = Format.asprintf "%a" pp p
