(* CSR-style layout: points are bucketed by cell, bucket contents stored
   contiguously in [entries], with [starts.(c) .. starts.(c+1)-1] delimiting
   cell [c].  Two integer arrays; no per-cell allocation. *)
type t = {
  world : Bbox.t;
  cell : float;
  cols : int;
  rows : int;
  points : Point.t array;
  starts : int array;
  entries : int array;
}

let cell_of t (p : Point.t) =
  let clampi v lo hi = max lo (min hi v) in
  let cx = clampi (int_of_float ((p.x -. t.world.Bbox.min_x) /. t.cell)) 0 (t.cols - 1) in
  let cy = clampi (int_of_float ((p.y -. t.world.Bbox.min_y) /. t.cell)) 0 (t.rows - 1) in
  (cx, cy)

let build ~world ~cell points =
  if cell <= 0.0 then invalid_arg "Grid_index.build: cell must be positive";
  let cols = max 1 (int_of_float (Float.ceil (Bbox.width world /. cell))) in
  let rows = max 1 (int_of_float (Float.ceil (Bbox.height world /. cell))) in
  let t =
    {
      world;
      cell;
      cols;
      rows;
      points;
      starts = Array.make ((cols * rows) + 1) 0;
      entries = Array.make (Array.length points) 0;
    }
  in
  let counts = Array.make (cols * rows) 0 in
  let cell_id p =
    let cx, cy = cell_of t p in
    (cy * cols) + cx
  in
  Array.iter (fun p -> counts.(cell_id p) <- counts.(cell_id p) + 1) points;
  let acc = ref 0 in
  for c = 0 to (cols * rows) - 1 do
    t.starts.(c) <- !acc;
    acc := !acc + counts.(c)
  done;
  t.starts.(cols * rows) <- !acc;
  let cursor = Array.copy t.starts in
  Array.iteri
    (fun i p ->
      let c = cell_id p in
      t.entries.(cursor.(c)) <- i;
      cursor.(c) <- cursor.(c) + 1)
    points;
  t

let length t = Array.length t.entries

let iter_within t ~center ~radius f =
  let r_sq = radius *. radius in
  let cx, cy = cell_of t center in
  let span = max 1 (int_of_float (Float.ceil (radius /. t.cell))) in
  let x0 = max 0 (cx - span) and x1 = min (t.cols - 1) (cx + span) in
  let y0 = max 0 (cy - span) and y1 = min (t.rows - 1) (cy + span) in
  for gy = y0 to y1 do
    for gx = x0 to x1 do
      let c = (gy * t.cols) + gx in
      for k = t.starts.(c) to t.starts.(c + 1) - 1 do
        let i = t.entries.(k) in
        if Point.distance_sq t.points.(i) center <= r_sq then f i
      done
    done
  done

let iter_within_sorted t ~center ~radius f =
  let r_sq = radius *. radius in
  let cx, cy = cell_of t center in
  let span = max 1 (int_of_float (Float.ceil (radius /. t.cell))) in
  let x0 = max 0 (cx - span) and x1 = min (t.cols - 1) (cx + span) in
  let y0 = max 0 (cy - span) and y1 = min (t.rows - 1) (cy + span) in
  (* One cursor per non-empty visited cell run.  [build] fills each cell in
     point-index order, so every run is already ascending and a repeated
     head-min merge emits the union globally sorted — no buffering, no
     allocation beyond the two small cursor arrays (at most (2*span+1)^2
     runs, typically 9). *)
  let max_runs = (x1 - x0 + 1) * (y1 - y0 + 1) in
  let cur = Array.make (max 1 max_runs) 0 in
  let stop = Array.make (max 1 max_runs) 0 in
  let m = ref 0 in
  for gy = y0 to y1 do
    for gx = x0 to x1 do
      let c = (gy * t.cols) + gx in
      if t.starts.(c) < t.starts.(c + 1) then begin
        cur.(!m) <- t.starts.(c);
        stop.(!m) <- t.starts.(c + 1);
        incr m
      end
    done
  done;
  let m = !m in
  let exhausted = ref false in
  while not !exhausted do
    let best = ref (-1) in
    let best_v = ref max_int in
    for j = 0 to m - 1 do
      if cur.(j) < stop.(j) then begin
        let v = t.entries.(cur.(j)) in
        if v < !best_v then begin
          best := j;
          best_v := v
        end
      end
    done;
    if !best < 0 then exhausted := true
    else begin
      cur.(!best) <- cur.(!best) + 1;
      if Point.distance_sq t.points.(!best_v) center <= r_sq then f !best_v
    end
  done

let query_within t ~center ~radius =
  let acc = ref [] in
  iter_within t ~center ~radius (fun i -> acc := i :: !acc);
  (* Cells are visited row-major but indices within the union are not
     globally sorted; sort for a deterministic, documented order. *)
  List.sort compare !acc

let count_within t ~center ~radius =
  let n = ref 0 in
  iter_within t ~center ~radius (fun _ -> incr n);
  !n

let memory_words t =
  Array.length t.starts + Array.length t.entries + (3 * Array.length t.points)
