(** Axis-aligned bounding boxes.

    Used to describe worlds (the synthetic 1000x1000 grid, city extents) and
    to prune kd-tree traversals. *)

type t = { min_x : float; min_y : float; max_x : float; max_y : float }

val make : min_x:float -> min_y:float -> max_x:float -> max_y:float -> t
(** @raise Invalid_argument when the box is inverted. *)

val square : side:float -> t
(** [\[0, side\] x \[0, side\]]. *)

val width : t -> float
val height : t -> float
val contains : t -> Point.t -> bool

val of_points : Point.t list -> t
(** Smallest box containing all points.
    @raise Invalid_argument on an empty list. *)

val distance_sq_to_point : t -> Point.t -> float
(** Squared distance from a point to the box (0 when inside); the kd-tree
    range-query pruning bound. *)

val clamp : t -> Point.t -> Point.t
(** Nearest point of the box. *)

val pp : Format.formatter -> t -> unit
