(* Implicit kd-tree: [order] is a permutation of point indices arranged so
   that the median of every subrange splits it on the range's spread axis.
   Node metadata (split axis, bounding boxes) is recomputed during traversal
   from stored per-range axes, keeping the structure at two int arrays. *)
type t = {
  points : Point.t array;
  order : int array;
  axes : Bytes.t;  (* axes.(node slot) = 0 for x-split, 1 for y-split *)
}

let length t = Array.length t.order

let coord (p : Point.t) axis = if axis = 0 then p.x else p.y

(* In-place quickselect of the k-th element of order[lo..hi] by coordinate
   on [axis].  Median-of-three pivot avoids quadratic behaviour on the
   sorted/duplicated inputs the city generator produces. *)
let rec select points order axis lo hi k =
  if lo < hi then begin
    let swap i j =
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    in
    let key i = coord points.(order.(i)) axis in
    if hi - lo = 1 then begin
      (* The Hoare partition below needs >= 3 elements for its sentinels. *)
      if key hi < key lo then swap lo hi
    end
    else begin
    let mid = lo + ((hi - lo) / 2) in
    if key mid < key lo then swap mid lo;
    if key hi < key lo then swap hi lo;
    if key hi < key mid then swap hi mid;
    let pivot = key mid in
    swap mid (hi - 1);
    let i = ref lo in
    let j = ref (hi - 1) in
    (try
       while true do
         incr i;
         while key !i < pivot do
           incr i
         done;
         decr j;
         while key !j > pivot do
           decr j
         done;
         if !i >= !j then raise Exit;
         swap !i !j
       done
     with Exit -> ());
    swap !i (hi - 1);
    if k < !i then select points order axis lo (!i - 1) k
    else if k > !i then select points order axis (!i + 1) hi k
    end
  end

let build points =
  let n = Array.length points in
  let order = Array.init n (fun i -> i) in
  let axes = Bytes.make (max n 1) '\000' in
  let rec layout lo hi =
    if hi - lo >= 1 then begin
      (* Split on the axis with the larger coordinate spread. *)
      let min_x = ref infinity and max_x = ref neg_infinity in
      let min_y = ref infinity and max_y = ref neg_infinity in
      for i = lo to hi do
        let p = points.(order.(i)) in
        if p.Point.x < !min_x then min_x := p.Point.x;
        if p.Point.x > !max_x then max_x := p.Point.x;
        if p.Point.y < !min_y then min_y := p.Point.y;
        if p.Point.y > !max_y then max_y := p.Point.y
      done;
      let axis = if !max_x -. !min_x >= !max_y -. !min_y then 0 else 1 in
      let mid = lo + ((hi - lo) / 2) in
      select points order axis lo hi mid;
      Bytes.set axes mid (Char.chr axis);
      layout lo (mid - 1);
      layout (mid + 1) hi
    end
  in
  if n > 1 then layout 0 (n - 1);
  { points; order; axes }

let iter_within t ~center ~radius f =
  let r_sq = radius *. radius in
  let rec visit lo hi =
    if lo <= hi then begin
      let mid = lo + ((hi - lo) / 2) in
      let idx = t.order.(mid) in
      let p = t.points.(idx) in
      if Point.distance_sq p center <= r_sq then f idx;
      if lo < hi then begin
        let axis = Char.code (Bytes.get t.axes mid) in
        let diff = coord center axis -. coord p axis in
        (* Recurse into the near side always, the far side only when the
           splitting plane is within the radius. *)
        if diff <= 0.0 then begin
          visit lo (mid - 1);
          if diff *. diff <= r_sq then visit (mid + 1) hi
        end
        else begin
          visit (mid + 1) hi;
          if diff *. diff <= r_sq then visit lo (mid - 1)
        end
      end
    end
  in
  let n = Array.length t.order in
  if n > 0 then visit 0 (n - 1)

let query_within t ~center ~radius =
  let acc = ref [] in
  iter_within t ~center ~radius (fun i -> acc := i :: !acc);
  List.sort compare !acc

let nearest t query =
  let n = Array.length t.order in
  if n = 0 then None
  else begin
    let best = ref t.order.(0) in
    let best_d = ref infinity in
    let rec visit lo hi =
      if lo <= hi then begin
        let mid = lo + ((hi - lo) / 2) in
        let idx = t.order.(mid) in
        let d = Point.distance_sq t.points.(idx) query in
        if d < !best_d then begin
          best_d := d;
          best := idx
        end;
        if lo < hi then begin
          let axis = Char.code (Bytes.get t.axes mid) in
          let diff = coord query axis -. coord t.points.(idx) axis in
          if diff <= 0.0 then begin
            visit lo (mid - 1);
            if diff *. diff < !best_d then visit (mid + 1) hi
          end
          else begin
            visit (mid + 1) hi;
            if diff *. diff < !best_d then visit lo (mid - 1)
          end
        end
      end
    in
    visit 0 (n - 1);
    Some !best
  end

let memory_words t =
  Array.length t.order + (Bytes.length t.axes / (Sys.word_size / 8))
  + (3 * Array.length t.points)
