(** Uniform-grid spatial index over a fixed point set.

    The candidate-task lookup "all tasks within [dmax] of the worker's
    check-in" runs once per worker arrival, i.e. hundreds of thousands of
    times per experiment.  A uniform grid with cell side [dmax] answers the
    query by scanning at most nine cells, which is the natural fit for the
    paper's world model (task density is bounded and the radius is fixed per
    experiment).  See {!Kd_tree} for the tree-based alternative compared in
    the [ablation-index] bench. *)

type t

val build : world:Bbox.t -> cell:float -> Point.t array -> t
(** [build ~world ~cell points] indexes [points] (identified by their array
    index).  Points outside [world] are clamped into the boundary cells, so
    queries remain correct for slightly out-of-range data.
    @raise Invalid_argument when [cell <= 0]. *)

val length : t -> int
(** Number of indexed points. *)

val iter_within : t -> center:Point.t -> radius:float -> (int -> unit) -> unit
(** [iter_within t ~center ~radius f] calls [f i] for every indexed point [i]
    at Euclidean distance [<= radius] from [center], in ascending index
    order within each visited cell (cells are visited row-major).  [radius]
    may exceed the build-time cell size; the scan widens accordingly. *)

val iter_within_sorted :
  t -> center:Point.t -> radius:float -> (int -> unit) -> unit
(** Like {!iter_within} but in globally ascending point-index order: the
    per-cell runs (each already ascending) are merged head-min on the fly,
    so the sorted order costs no list materialisation or sort — the policy
    layer's documented lower-index tie-break comes for free. *)

val query_within : t -> center:Point.t -> radius:float -> int list
(** Materialised {!iter_within}, ascending point-index order. *)

val count_within : t -> center:Point.t -> radius:float -> int

val memory_words : t -> int
(** Approximate heap footprint of the index, for the memory panels. *)
