(** Indexed binary min-heap over node ids with float keys.

    Purpose-built priority queue for Dijkstra inside {!Mcmf}: nodes are small
    integers, keys are distances, and [decrease] updates a node's priority in
    place — no stale entries, no per-push tuple allocation.  All storage is
    three flat arrays sized by the node count. *)

type t

val create : n:int -> t
(** Heap over node ids [0 .. n-1], initially empty. *)

val capacity : t -> int
(** Current node-id bound (the [n] of {!create}, possibly grown). *)

val ensure_capacity : t -> n:int -> unit
(** Grows the heap to accept node ids [0 .. n-1], preserving queued
    entries.  Never shrinks.  Lets one heap serve a whole run of solves
    over graphs of varying node counts ({!Mcmf}'s reusable workspace). *)

val clear : t -> unit
(** O(size): empties the heap for reuse. *)

val is_empty : t -> bool
val size : t -> int

val mem : t -> int -> bool
(** Is the node currently queued? *)

val push_or_decrease : t -> int -> float -> unit
(** Insert the node with the given key, or lower its key if already queued
    with a larger one.  Raising a queued node's key is a no-op (Dijkstra
    never needs it).  @raise Invalid_argument on an out-of-range node. *)

val pop_min : t -> (int * float) option
(** Remove and return the minimum-key node. *)
