type arc = int

type t = {
  mutable n : int;
  mutable len : int;  (* number of arc slots in use (2 per forward arc) *)
  mutable heads : int array;  (* heads.(a): node arc [a] points to *)
  mutable tails : int array;
  mutable caps : int array;   (* caps.(a): residual capacity of [a] *)
  mutable costs : float array;
  mutable next : int array;   (* intrusive adjacency list: next arc at tail *)
  mutable first : int array;  (* first.(v): latest arc added at node v, -1 *)
}

let create ~n =
  if n <= 0 then invalid_arg "Graph.create: n must be positive";
  {
    n;
    len = 0;
    heads = Array.make 16 0;
    tails = Array.make 16 0;
    caps = Array.make 16 0;
    costs = Array.make 16 0.0;
    next = Array.make 16 (-1);
    first = Array.make n (-1);
  }

let node_count t = t.n
let arc_count t = t.len / 2

let ensure_arc_slots t cap =
  if cap > Array.length t.heads then begin
    let extend a fill =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 t.len;
      b
    in
    t.heads <- extend t.heads 0;
    t.tails <- extend t.tails 0;
    t.caps <- extend t.caps 0;
    t.next <- extend t.next (-1);
    let costs = Array.make cap 0.0 in
    Array.blit t.costs 0 costs 0 t.len;
    t.costs <- costs
  end

let ensure_nodes t nodes =
  if nodes > Array.length t.first then begin
    let first = Array.make nodes (-1) in
    Array.blit t.first 0 first 0 (Array.length t.first);
    t.first <- first
  end

let grow t = ensure_arc_slots t (2 * Array.length t.heads)

let reserve t ~nodes ~arcs =
  if nodes < 0 || arcs < 0 then invalid_arg "Graph.reserve: negative size";
  ensure_nodes t nodes;
  ensure_arc_slots t (2 * arcs)

let clear t ~n =
  if n <= 0 then invalid_arg "Graph.clear: n must be positive";
  (* Only nodes < t.n can hold stale adjacency heads. *)
  Array.fill t.first 0 t.n (-1);
  ensure_nodes t n;
  t.n <- n;
  t.len <- 0

let grow_nodes t ~n =
  if n <= 0 then invalid_arg "Graph.grow_nodes: n must be positive";
  if n > t.n then begin
    (* Callers grow one node at a time (incremental sessions), so over-
       allocate geometrically — [ensure_nodes] sizes exactly. *)
    if n > Array.length t.first then
      ensure_nodes t (max n (2 * Array.length t.first));
    t.n <- n
  end

let arc_slots t = t.len

let append t ~src ~dst ~cap ~cost =
  if t.len = Array.length t.heads then grow t;
  let a = t.len in
  t.len <- a + 1;
  t.heads.(a) <- dst;
  t.tails.(a) <- src;
  t.caps.(a) <- cap;
  t.costs.(a) <- cost;
  t.next.(a) <- t.first.(src);
  t.first.(src) <- a;
  a

let add_arc t ~src ~dst ~cap ~cost =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Graph.add_arc: node out of range";
  if cap < 0 then invalid_arg "Graph.add_arc: negative capacity";
  let a = append t ~src ~dst ~cap ~cost in
  let (_ : arc) = append t ~src:dst ~dst:src ~cap:0 ~cost:(-.cost) in
  a

let truncate t len =
  if len < 0 || len > t.len || len land 1 = 1 then
    invalid_arg "Graph.truncate: bad arc-slot checkpoint";
  (* Arcs are appended LIFO per node, so the globally last arc is always
     the head of its tail's adjacency chain: popping from the end restores
     each chain to exactly its pre-append state. *)
  for a = t.len - 1 downto len do
    t.first.(t.tails.(a)) <- t.next.(a)
  done;
  t.len <- len

let check_arc t a =
  if a < 0 || a >= t.len then invalid_arg "Graph: arc out of range"

let set_capacity t a cap =
  check_arc t a;
  if a land 1 = 1 then invalid_arg "Graph.set_capacity: backward arc";
  if cap < 0 then invalid_arg "Graph.set_capacity: negative capacity";
  t.caps.(a) <- cap;
  t.caps.(a lxor 1) <- 0

let src t a =
  check_arc t a;
  t.tails.(a)

let dst t a =
  check_arc t a;
  t.heads.(a)

let cost t a =
  check_arc t a;
  t.costs.(a)

let residual t a =
  check_arc t a;
  t.caps.(a)

let flow t a =
  check_arc t a;
  if a land 1 = 1 then invalid_arg "Graph.flow: backward arc";
  (* The reverse arc starts at capacity 0; its residual equals the flow. *)
  t.caps.(a lxor 1)

let push t a x =
  check_arc t a;
  if x < 0 || x > t.caps.(a) then invalid_arg "Graph.push: exceeds residual";
  t.caps.(a) <- t.caps.(a) - x;
  t.caps.(a lxor 1) <- t.caps.(a lxor 1) + x

let iter_arcs_from t v f =
  let rec go a =
    if a <> -1 then begin
      f a;
      go t.next.(a)
    end
  in
  go t.first.(v)

let iter_forward_arcs t f =
  let rec go a =
    if a < t.len then begin
      f a;
      go (a + 2)
    end
  in
  go 0

let memory_words t =
  (* Five int arrays + one float array sized by the reserved arc capacity,
     plus the reserved node array — [clear] keeps the arena, so the reserved
     sizes (not the live prefix) are what the process actually holds. *)
  (6 * Array.length t.heads) + Array.length t.first

type raw = {
  r_heads : int array;
  r_caps : int array;
  r_costs : float array;
  r_next : int array;
  r_first : int array;
  r_len : int;
}

let raw t =
  {
    r_heads = t.heads;
    r_caps = t.caps;
    r_costs = t.costs;
    r_next = t.next;
    r_first = t.first;
    r_len = t.len;
  }
