(** Minimum-cost maximum-flow via the Successive Shortest Path Algorithm.

    This is the solver the paper plugs into MCF-LTC (Sec. III): "we apply the
    Successive Shortest Path Algorithm (SSPA) to calculate the minimum cost
    flow [...] SSPA is suitable for large-scale data and many-to-many
    matching with real-valued arc costs".

    Implementation: node potentials initialised by Bellman-Ford (the LTC
    networks carry negative arc costs [-Acc*]) — or, for layered batch
    networks, by a single topological relaxation sweep ({!potential_init}) —
    then repeated Dijkstra on reduced costs with a binary heap, augmenting
    one shortest path per round.  Dijkstra stops as soon as the sink
    settles; potentials of unsettled nodes advance by the sink distance
    (Goldberg's early-exit variant), preserving reduced-cost
    non-negativity.  A small epsilon absorbs floating-point drift in the
    reduced costs.

    {b Hot path.}  All per-solve scratch (potential, distance, predecessor
    and settled labels, the Dijkstra heap) lives in a {!workspace} that can
    be reused across solves, and distance labels are validated by an epoch
    stamp rather than O(V) fills per shortest-path pass — a caller that
    solves one batch after another (MCF-LTC's [run_batches]) allocates
    nothing after the first batch.  See DESIGN.md §9. *)

type result = {
  flow : int;      (** total units routed from source to sink *)
  cost : float;    (** total cost of the routed flow *)
  rounds : int;    (** number of augmenting iterations *)
  exhausted : bool;
      (** the anytime budget stopped the search before the solver proved
          the flow maximal — the result is a valid partial (prefix-optimal)
          flow, not necessarily a maximum one.  Always [false] without a
          [budget]. *)
}

type budget =
  | Rounds of int
      (** stop after at most this many augmenting rounds (>= 0) *)
  | Deadline_s of float
      (** stop starting new rounds once this much wall time elapsed since
          the call, measured with {!Ltc_util.Fault.Clock} so tests and the
          chaos harness can virtualise it (>= 0) *)
(** Anytime cutoff for {!run}.  The budget is checked {e between}
    shortest-path passes, so the routed units always form a minimum-cost
    [k]-flow for the [k] actually routed (SSPA routes cheapest paths in
    non-decreasing cost order); the caller can greedily complete the
    remainder.  A budget can only truncate the augmentation sequence —
    with a budget that never fires the run is identical to an unbudgeted
    one. *)

(** {2 Reusable workspace} *)

type workspace
(** Solver scratch: potentials, labels, heap, and the queue/counter arrays
    {!Mcmf_spfa} shares.  One workspace serves any sequence of solves (its
    arrays grow on demand and never shrink); it must not be shared between
    concurrently running solves. *)

val create_workspace : ?hint:int -> unit -> workspace
(** An empty workspace, pre-sized for graphs of [hint] nodes (default 16;
    it grows transparently). *)

val workspace_capacity : workspace -> int
(** Current node capacity of the workspace arrays. *)

val borrow_potentials : workspace -> float array
(** The workspace's {e live} node-potential array — a borrow, not a copy.
    After {!run} returns, entries [0 .. node_count - 1] hold the final
    potentials of that solve, which the next solve may reuse via
    [`Warm_start] (or keep alive via [`Keep]).  The borrow is invalidated
    by the next solve: the array is overwritten, and {e replaced entirely}
    when the workspace grows — a caller holding the old array would then
    silently read stale values.  Read or copy what you need before solving
    again; use {!copy_potentials} to keep values across solves. *)

val copy_potentials : workspace -> n:int -> float array
(** [copy_potentials ws ~n] is a fresh copy of the first [n] potentials —
    safe to hold across later solves, unlike {!borrow_potentials}.
    @raise Invalid_argument when [n] exceeds {!workspace_capacity}. *)

(** {2 Potential initialisation} *)

type potential_init =
  [ `Bellman_ford
    (** Iterated relaxation over all residual arcs; correct on any input
        without negative cycles.  The default. *)
  | `Dag_topo
    (** One relaxation sweep in arc-insertion order.  {b Precondition}:
        arcs were added in topological order of their source nodes (true of
        every LTC batch network: source -> workers -> tasks -> sink).  On
        such graphs the sweep performs exactly Bellman-Ford's first-round
        relaxation sequence and lands on the same fixpoint bit-for-bit,
        skipping only the convergence re-scan — half the initialisation
        cost, same potentials, same flow, same cost.  On a graph violating
        the precondition the potentials are silently non-optimal and the
        min-cost guarantee is lost. *)
  | `Warm_start of float array
    (** Candidate potentials (length >= node count), e.g. {!potentials} of
        a structurally similar previous solve.  Validated in one O(E)
        reduced-cost scan: accepted when every residual arc keeps
        non-negative reduced cost (within epsilon), otherwise the solver
        falls back to [`Bellman_ford].  Results are min-cost either way,
        but an accepted warm start may resolve sub-epsilon cost ties along
        a different shortest path than the fresh-init solve would.
        @raise Invalid_argument when the array is shorter than the node
        count. *)
  | `Keep
    (** Trust the workspace potentials exactly as the caller maintained
        them — no initialisation, no validation scan.  This is the
        incremental-resolve mode ({!Solver}'s session protocol): the
        caller keeps the residual network and potentials alive across
        solves and repairs reduced-cost feasibility itself when inserting
        arcs.  [`Keep] also switches the per-round potential update to a
        sparse walk of the nodes the shortest-path pass touched (the dense
        update is O(V) per round and would defeat sub-linear resolves);
        the sparse form differs from the dense one only by a uniform
        per-round shift, which no reduced cost or path cost can observe.
        {b Precondition}: every residual arc has non-negative reduced cost
        (within epsilon) under the current workspace potentials; violating
        it silently loses the min-cost guarantee. *) ]

val run :
  ?max_flow:int ->
  ?stop_on_nonnegative:bool ->
  ?workspace:workspace ->
  ?init:potential_init ->
  ?budget:budget ->
  Graph.t ->
  source:int ->
  sink:int ->
  result
(** [run g ~source ~sink] augments along successive cheapest paths until the
    sink is unreachable (a {e maximum} flow of minimum cost), mutating [g]'s
    residual capacities; read per-arc results with {!Graph.flow}.

    [max_flow] caps the total units routed.  [stop_on_nonnegative] (default
    [false]) additionally stops when the cheapest augmenting path has cost
    [>= 0], yielding a {e minimum-cost} flow instead (never routes
    cost-increasing flow).

    [workspace] supplies the per-solve scratch; without it a fresh one is
    allocated for this call.  [init] selects the potential initialiser
    (default [`Bellman_ford]); see {!potential_init}.  [budget] bounds the
    search ({!budget}); when it fires, the result carries
    [exhausted = true] and the routed units are a minimum-cost flow of
    their own value.

    @raise Invalid_argument when [source = sink], nodes are out of range,
    or the budget is negative. *)

(**/**)

(* Solver-internal plumbing: {!Mcmf_spfa} shares this workspace (distance /
   predecessor / stamp labels, its FIFO ring and relaxation counters).  Not
   part of the public API. *)

val ensure_workspace : workspace -> n:int -> unit
val ensure_spfa_scratch : workspace -> n:int -> unit
val ws_dist : workspace -> float array
val ws_pred : workspace -> int array
val ws_stamp : workspace -> int array
val ws_flag : workspace -> Bytes.t
val ws_ring : workspace -> int array
val ws_counts : workspace -> int array
val ws_epoch : workspace -> int
val ws_set_epoch : workspace -> int -> unit

(**/**)
