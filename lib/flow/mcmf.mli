(** Minimum-cost maximum-flow via the Successive Shortest Path Algorithm.

    This is the solver the paper plugs into MCF-LTC (Sec. III): "we apply the
    Successive Shortest Path Algorithm (SSPA) to calculate the minimum cost
    flow [...] SSPA is suitable for large-scale data and many-to-many
    matching with real-valued arc costs".

    Implementation: node potentials initialised by Bellman-Ford (the LTC
    networks carry negative arc costs [-Acc*]), then repeated Dijkstra on
    reduced costs with a binary heap, augmenting one shortest path per
    round.  Dijkstra stops as soon as the sink settles; potentials of
    unsettled nodes advance by the sink distance (Goldberg's early-exit
    variant), preserving reduced-cost non-negativity.  A small epsilon
    absorbs floating-point drift in the reduced costs. *)

type result = {
  flow : int;      (** total units routed from source to sink *)
  cost : float;    (** total cost of the routed flow *)
  rounds : int;    (** number of augmenting iterations *)
}

val run :
  ?max_flow:int ->
  ?stop_on_nonnegative:bool ->
  Graph.t ->
  source:int ->
  sink:int ->
  result
(** [run g ~source ~sink] augments along successive cheapest paths until the
    sink is unreachable (a {e maximum} flow of minimum cost), mutating [g]'s
    residual capacities; read per-arc results with {!Graph.flow}.

    [max_flow] caps the total units routed.  [stop_on_nonnegative] (default
    [false]) additionally stops when the cheapest augmenting path has cost
    [>= 0], yielding a {e minimum-cost} flow instead (never routes
    cost-increasing flow).

    @raise Invalid_argument when [source = sink] or nodes are out of
    range. *)
