(* Registered once; incr/add are no-ops while metrics are disabled. *)
let m_runs =
  Ltc_util.Metrics.counter ~help:"Dinic invocations"
    "ltc_flow_dinic_runs_total"

let m_bfs =
  Ltc_util.Metrics.counter ~help:"Dinic level-graph (BFS) rebuilds"
    "ltc_flow_dinic_bfs_rounds_total"

let m_paths =
  Ltc_util.Metrics.counter ~help:"Dinic augmenting paths found"
    "ltc_flow_dinic_augmenting_paths_total"

let m_flow =
  Ltc_util.Metrics.counter ~help:"Total flow units pushed by Dinic"
    "ltc_flow_dinic_pushed_flow_total"

let max_flow g ~source ~sink =
  let n = Graph.node_count g in
  if source < 0 || source >= n || sink < 0 || sink >= n then
    invalid_arg "Dinic.max_flow: node out of range";
  if source = sink then invalid_arg "Dinic.max_flow: source = sink";
  let raw = Graph.raw g in
  let heads = raw.Graph.r_heads
  and caps = raw.Graph.r_caps
  and next = raw.Graph.r_next
  and first = raw.Graph.r_first in
  let level = Array.make n (-1) in
  let cursor = Array.make n (-1) in
  let queue = Array.make n 0 in
  (* BFS on residual arcs; true iff the sink is reachable. *)
  let build_levels () =
    Array.fill level 0 n (-1);
    level.(source) <- 0;
    queue.(0) <- source;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      let a = ref first.(u) in
      while !a <> -1 do
        let arc = !a in
        a := next.(arc);
        if caps.(arc) > 0 then begin
          let v = heads.(arc) in
          if level.(v) < 0 then begin
            level.(v) <- level.(u) + 1;
            queue.(!tail) <- v;
            incr tail
          end
        end
      done
    done;
    level.(sink) >= 0
  in
  (* DFS for one augmenting path in the level graph, advancing each node's
     arc cursor so dead arcs are never rescanned (the standard "current
     arc" optimisation that gives Dinic its bound). *)
  let rec dfs u limit =
    if u = sink then limit
    else begin
      let pushed = ref 0 in
      while !pushed = 0 && cursor.(u) <> -1 do
        let arc = cursor.(u) in
        let v = heads.(arc) in
        if caps.(arc) > 0 && level.(v) = level.(u) + 1 then begin
          let got = dfs v (min limit caps.(arc)) in
          if got > 0 then begin
            Graph.push g arc got;
            pushed := got
          end
          else cursor.(u) <- next.(arc)
        end
        else cursor.(u) <- next.(arc)
      done;
      !pushed
    end
  in
  Ltc_util.Metrics.Counter.incr m_runs;
  let total = ref 0 in
  while
    Ltc_util.Metrics.Counter.incr m_bfs;
    build_levels ()
  do
    Array.blit first 0 cursor 0 n;
    let continue = ref true in
    while !continue do
      let got = dfs source max_int in
      if got = 0 then continue := false
      else begin
        Ltc_util.Metrics.Counter.incr m_paths;
        total := !total + got
      end
    done
  done;
  Ltc_util.Metrics.Counter.add m_flow !total;
  !total
