(** Flow networks with residual arcs.

    The representation follows the classic competitive-programming layout:
    arcs are appended in pairs (forward at even id, backward at odd id, so
    [a lxor 1] is the reverse of [a]) into flat arrays, with per-node
    adjacency as an intrusive linked list.  Capacities are integers — the
    LTC reduction only needs capacities [K], [1] and [ceil(delta - S[t])] —
    while costs are floats, because arc costs are (negated) real-valued
    [Acc*] scores. *)

type t

type arc = int
(** Arc identifier, stable across the graph's lifetime. *)

val create : n:int -> t
(** A network with nodes [0 .. n-1] and no arcs.
    @raise Invalid_argument when [n <= 0]. *)

val clear : t -> n:int -> unit
(** [clear t ~n] empties the graph and re-dimensions it to nodes
    [0 .. n-1], {e keeping the underlying arc and node arrays} so the next
    batch of {!add_arc} calls runs allocation-free in the already-reserved
    arena.  Arc ids restart at 0.  Previously returned arc ids and {!raw}
    views are invalidated.  @raise Invalid_argument when [n <= 0]. *)

val reserve : t -> nodes:int -> arcs:int -> unit
(** Pre-sizes the arena for at least [nodes] nodes and [arcs] {e forward}
    arcs (2 slots each), so subsequent {!add_arc}/{!clear} calls within
    those bounds never reallocate.  Never shrinks.  Invalidates {!raw}
    views.  @raise Invalid_argument on negative sizes. *)

val grow_nodes : t -> n:int -> unit
(** [grow_nodes t ~n] extends the node range to [0 .. n-1] {e without}
    touching existing arcs (unlike {!clear}); new nodes start with empty
    adjacency.  Never shrinks.  Invalidates {!raw} views.  The incremental
    solver session uses this to stack transient per-batch worker nodes on
    top of a persistent task plane.  @raise Invalid_argument when
    [n <= 0]. *)

val node_count : t -> int

val arc_count : t -> int
(** Number of {e forward} arcs added with {!add_arc}. *)

val arc_slots : t -> int
(** Number of arc {e slots} in use (2 per forward arc) — a checkpoint
    token for {!truncate}. *)

val truncate : t -> int -> unit
(** [truncate t len] retracts every arc appended after the {!arc_slots}
    checkpoint [len], restoring each touched node's adjacency chain to its
    pre-append state (arcs are appended LIFO per node, so popping from the
    end is exact).  Retracted arc ids become invalid; {!raw} views are
    invalidated.  Any flow routed through a retracted arc pair is
    discarded with it — push back first if the residual state of surviving
    arcs must stay consistent.  @raise Invalid_argument when [len] is
    negative, odd, or beyond the current slot count. *)

val add_arc : t -> src:int -> dst:int -> cap:int -> cost:float -> arc
(** Adds a forward arc and its zero-capacity reverse.  Returns the forward
    arc id.  @raise Invalid_argument on out-of-range nodes or negative
    capacity. *)

val src : t -> arc -> int
val dst : t -> arc -> int
val cost : t -> arc -> float

val residual : t -> arc -> int
(** Remaining capacity (applies to forward and backward arcs alike). *)

val flow : t -> arc -> int
(** Flow currently routed through a forward arc.
    @raise Invalid_argument on a backward (odd) arc id. *)

val push : t -> arc -> int -> unit
(** [push t a x] routes [x] more units through [a] (and removes them from its
    reverse).  @raise Invalid_argument when [x] exceeds the residual. *)

val set_capacity : t -> arc -> int -> unit
(** [set_capacity t a cap] re-dimensions forward arc [a] to capacity [cap]
    and zeroes its reverse residual — i.e. discards any flow currently
    routed through the pair and makes the arc fresh again.  The incremental
    solver session uses this to re-capacitate persistent task->sink arcs
    between batches.  @raise Invalid_argument on a backward (odd) arc id or
    negative capacity. *)

val iter_arcs_from : t -> int -> (arc -> unit) -> unit
(** All arcs (forward and backward) leaving a node, most recent first. *)

val iter_forward_arcs : t -> (arc -> unit) -> unit
(** All forward arcs in insertion order. *)

val memory_words : t -> int
(** Approximate heap footprint, for the memory panels of Figs. 3-4.
    Reports the {e reserved} arena (array capacities, which {!clear} keeps
    and {!reserve} grows), not merely the live arc prefix — that is what
    the process actually holds when the graph is reused across batches. *)

(** {2 Solver access}

    Read-only views of the internal arrays for performance-critical solvers
    ({!Mcmf}'s inner loops run millions of arc inspections; going through
    the checked accessors above costs ~4x).  Slots [0 .. r_len - 1] are
    valid; even slots are forward arcs, [a lxor 1] is the reverse of [a].
    The view is invalidated by the next {!add_arc}, {!clear} or {!reserve}
    (the arrays may be reallocated); capacities must only be mutated
    through {!push}. *)

type raw = private {
  r_heads : int array;  (** destination node per arc *)
  r_caps : int array;   (** residual capacity per arc *)
  r_costs : float array;
  r_next : int array;   (** adjacency chain per arc *)
  r_first : int array;  (** head of each node's adjacency chain, -1 if none *)
  r_len : int;          (** number of arc slots in use *)
}

val raw : t -> raw
