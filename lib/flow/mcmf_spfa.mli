(** Reference min-cost max-flow solver: SPFA (queue-based Bellman-Ford)
    path search without potentials.

    Slower than {!Mcmf} (no reduced costs, no early exit) but structurally
    independent from it: no potential maintenance, no float-epsilon
    subtleties in reduced costs.  The test-suite cross-checks both solvers
    on random instances, and the [ablation-solver] bench measures the gap.
    Results are interchangeable with {!Mcmf.run}'s.

    The optional [workspace] is {!Mcmf}'s: both solvers draw their labels,
    FIFO ring and relaxation counters from the same reusable scratch, so a
    caller that switches backends still allocates one workspace per run. *)

val run :
  ?max_flow:int ->
  ?stop_on_nonnegative:bool ->
  ?workspace:Mcmf.workspace ->
  ?budget:Mcmf.budget ->
  Graph.t ->
  source:int ->
  sink:int ->
  Mcmf.result
(** Same contract as {!Mcmf.run} (modulo [init]: SPFA needs no
    potentials), including the anytime [budget]. *)
