(** Reference min-cost max-flow solver: SPFA (queue-based Bellman-Ford)
    path search without potentials.

    Slower than {!Mcmf} (no reduced costs, no early exit) but structurally
    independent from it: no potential maintenance, no float-epsilon
    subtleties in reduced costs.  The test-suite cross-checks both solvers
    on random instances, and the [ablation-solver] bench measures the gap.
    Results are interchangeable with {!Mcmf.run}'s. *)

val run :
  ?max_flow:int ->
  ?stop_on_nonnegative:bool ->
  Graph.t ->
  source:int ->
  sink:int ->
  Mcmf.result
(** Same contract as {!Mcmf.run}. *)
