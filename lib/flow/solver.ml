type capabilities = {
  solver_name : string;
  incremental : bool;
  potentials : bool;
  anytime : bool;
}

(* The incremental session keeps one residual network alive across batches:

     node 0        source
     node 1        sink
     nodes 2..     persistent unit (task) nodes, one per [set_unit] id
     nodes above   transient worker nodes of the open batch

   Persistent arcs (unit -> sink) occupy the arena prefix [0, base_len);
   batch arcs (source -> worker, worker -> unit) are appended above it and
   retracted by [Graph.truncate] at [end_batch].  The workspace potentials
   are never re-initialised ([`Keep]): feasibility (non-negative reduced
   costs on every residual arc) is maintained by local repairs —
     - a new worker starts at the source's potential (its 0-cost arc from
       the source is then tight);
     - inserting a link lowers the unit's potential to [pot(worker) + cost]
       when the new arc undercuts it, and [sink_bound] accumulates the
       lowest such value so the sink's potential can be lowered once per
       resolve (the sink has no residual out-arcs between batches, so
       lowering it cannot break anything);
     - [set_unit] raises a re-capacitated unit's potential back to the
       sink's (its fresh 0-cost sink arc needs [pot(unit) >= pot(sink)];
       raising is safe because between batches a unit node has no residual
       in-arcs).  *)
type session = {
  sg : Graph.t;
  sws : Mcmf.workspace;
  mutable unit_node : int array;  (* unit id -> node, -1 undeclared *)
  mutable unit_arc : int array;   (* unit id -> its sink arc *)
  mutable n_units : int;
  mutable base_len : int;         (* arc slots of the persistent plane *)
  mutable stage : [ `Idle | `Open | `Solved ];
  mutable worker_base : int;      (* first worker node of the open batch *)
  mutable n_workers : int;
  mutable sink_bound : float;     (* pending sink-potential repair *)
}

type impl =
  | Scratch_sspa of Mcmf.workspace
  | Scratch_spfa of Mcmf.workspace
  | Incremental of session

type t = {
  caps : capabilities;
  impl : impl;
}

let source = 0
let sink = 1

let caps_sspa =
  { solver_name = "sspa"; incremental = false; potentials = true;
    anytime = true }

let caps_spfa =
  { solver_name = "spfa"; incremental = false; potentials = false;
    anytime = true }

let caps_incremental =
  { solver_name = "incremental"; incremental = true; potentials = false;
    anytime = true }

let registry = [ caps_sspa; caps_spfa; caps_incremental ]
let names () = List.map (fun c -> c.solver_name) registry
let all_capabilities () = registry

let m_resolves =
  Ltc_util.Metrics.counter ~help:"incremental batch resolves"
    ~labels:[ ("solver", "incremental") ]
    "ltc_flow_incremental_resolves_total"

let m_links =
  Ltc_util.Metrics.counter ~help:"links inserted into incremental batches"
    ~labels:[ ("solver", "incremental") ]
    "ltc_flow_incremental_links_total"

let create_session ~hint =
  let sws = Mcmf.create_workspace ~hint:(max hint 2) () in
  Mcmf.ensure_workspace sws ~n:2;
  let sg = Graph.create ~n:2 in
  Graph.reserve sg ~nodes:(max hint 2) ~arcs:(max hint 2);
  {
    sg;
    sws;
    unit_node = Array.make (max hint 16) (-1);
    unit_arc = Array.make (max hint 16) (-1);
    n_units = 0;
    base_len = 0;
    stage = `Idle;
    worker_base = 2;
    n_workers = 0;
    sink_bound = infinity;
  }

let create ?(hint = 16) name =
  match String.lowercase_ascii name with
  | "sspa" ->
    { caps = caps_sspa; impl = Scratch_sspa (Mcmf.create_workspace ~hint ()) }
  | "spfa" ->
    { caps = caps_spfa; impl = Scratch_spfa (Mcmf.create_workspace ~hint ()) }
  | "incremental" ->
    { caps = caps_incremental; impl = Incremental (create_session ~hint) }
  | other ->
    invalid_arg
      (Printf.sprintf "Solver.create: unknown solver %S (try: %s)" other
         (String.concat ", " (names ())))

let name t = t.caps.solver_name
let capabilities t = t.caps

let borrow_potentials t =
  match t.impl with
  | Scratch_sspa ws | Scratch_spfa ws -> Mcmf.borrow_potentials ws
  | Incremental s -> Mcmf.borrow_potentials s.sws

let memory_words t =
  match t.impl with
  | Scratch_sspa _ | Scratch_spfa _ -> 0
  | Incremental s ->
    Graph.memory_words s.sg
    + (8 * Graph.node_count s.sg)
    + (2 * Array.length s.unit_node)

let solve t ?max_flow ?stop_on_nonnegative ?init ?budget g ~source ~sink =
  match t.impl with
  | Scratch_sspa ws ->
    Mcmf.run ?max_flow ?stop_on_nonnegative ~workspace:ws ?init ?budget g
      ~source ~sink
  | Scratch_spfa ws ->
    Mcmf_spfa.run ?max_flow ?stop_on_nonnegative ~workspace:ws ?budget g
      ~source ~sink
  | Incremental _ ->
    invalid_arg
      "Solver.solve: the incremental solver keeps live session state; use \
       the resolve protocol"

(* ------------------------------------------------- incremental session *)

let session t op =
  match t.impl with
  | Incremental s -> s
  | Scratch_sspa _ | Scratch_spfa _ ->
    invalid_arg
      (Printf.sprintf "Solver.%s: %S is not an incremental solver" op
         t.caps.solver_name)

let ensure_units s u =
  let len = Array.length s.unit_node in
  if u >= len then begin
    let cap = max (u + 1) (2 * len) in
    let grow a =
      let b = Array.make cap (-1) in
      Array.blit a 0 b 0 len;
      b
    in
    s.unit_node <- grow s.unit_node;
    s.unit_arc <- grow s.unit_arc
  end

type link = Graph.arc

let set_unit t ~unit_id ~cap =
  let s = session t "set_unit" in
  if s.stage <> `Idle then
    invalid_arg "Solver.set_unit: batch in progress";
  if unit_id < 0 then invalid_arg "Solver.set_unit: negative unit id";
  if cap < 0 then invalid_arg "Solver.set_unit: negative capacity";
  ensure_units s unit_id;
  if s.unit_node.(unit_id) = -1 then begin
    let node = 2 + s.n_units in
    s.n_units <- s.n_units + 1;
    Graph.grow_nodes s.sg ~n:(node + 1);
    let arc = Graph.add_arc s.sg ~src:node ~dst:sink ~cap ~cost:0.0 in
    s.unit_node.(unit_id) <- node;
    s.unit_arc.(unit_id) <- arc;
    s.base_len <- Graph.arc_slots s.sg;
    Mcmf.ensure_workspace s.sws ~n:(node + 1);
    let pot = Mcmf.borrow_potentials s.sws in
    (* Feasible and tight for the fresh 0-cost sink arc. *)
    pot.(node) <- pot.(sink)
  end
  else begin
    let node = s.unit_node.(unit_id) in
    Graph.set_capacity s.sg s.unit_arc.(unit_id) cap;
    let pot = Mcmf.borrow_potentials s.sws in
    (* Raising is safe: between batches a unit node has no residual
       in-arcs (worker arcs are retracted, its sink reverse was zeroed
       just now). *)
    if cap > 0 && pot.(node) < pot.(sink) then pot.(node) <- pot.(sink)
  end

let begin_batch t =
  let s = session t "begin_batch" in
  if s.stage <> `Idle then invalid_arg "Solver.begin_batch: batch already open";
  s.stage <- `Open;
  s.worker_base <- 2 + s.n_units;
  s.n_workers <- 0;
  s.sink_bound <- infinity

let add_worker t ~cap =
  let s = session t "add_worker" in
  if s.stage <> `Open then invalid_arg "Solver.add_worker: no open batch";
  if cap < 0 then invalid_arg "Solver.add_worker: negative capacity";
  let node = s.worker_base + s.n_workers in
  s.n_workers <- s.n_workers + 1;
  Graph.grow_nodes s.sg ~n:(node + 1);
  ignore (Graph.add_arc s.sg ~src:source ~dst:node ~cap ~cost:0.0);
  Mcmf.ensure_workspace s.sws ~n:(node + 1);
  let pot = Mcmf.borrow_potentials s.sws in
  (* Tight for the 0-cost source arc; link insertions repair below it. *)
  pot.(node) <- pot.(source);
  s.n_workers - 1

let add_link t ~worker ~unit_id ~cost =
  let s = session t "add_link" in
  if s.stage <> `Open then invalid_arg "Solver.add_link: no open batch";
  if worker < 0 || worker >= s.n_workers then
    invalid_arg "Solver.add_link: unknown worker handle";
  let tnode =
    if unit_id >= 0 && unit_id < Array.length s.unit_node then
      s.unit_node.(unit_id)
    else -1
  in
  if tnode = -1 then invalid_arg "Solver.add_link: undeclared unit";
  let wnode = s.worker_base + worker in
  let arc = Graph.add_arc s.sg ~src:wnode ~dst:tnode ~cap:1 ~cost in
  Ltc_util.Metrics.Counter.incr m_links;
  let pot = Mcmf.borrow_potentials s.sws in
  (* Reduced-cost revalidation: the new arc needs
     [cost + pot(w) - pot(unit) >= 0].  Lowering [pot(unit)] cannot break
     other arcs (in-arcs only gain slack; the unit's only residual
     out-arc is its sink arc, covered by the deferred sink repair). *)
  let bound = pot.(wnode) +. cost in
  if bound < pot.(tnode) then begin
    pot.(tnode) <- bound;
    if bound < s.sink_bound then s.sink_bound <- bound
  end;
  arc

let resolve t ?budget () =
  let s = session t "resolve" in
  if s.stage <> `Open then invalid_arg "Solver.resolve: no open batch";
  Ltc_util.Metrics.Counter.incr m_resolves;
  let pot = Mcmf.borrow_potentials s.sws in
  (* Deferred dirty-frontier repair: the sink chases the lowest unit
     potential the batch's insertions produced.  Safe to over-lower — the
     sink has no residual out-arcs between batches. *)
  if s.sink_bound < pot.(sink) then pot.(sink) <- s.sink_bound;
  s.sink_bound <- infinity;
  s.stage <- `Solved;
  Mcmf.run s.sg ~workspace:s.sws ~init:`Keep ?budget ~source ~sink

let link_flow t link =
  let s = session t "link_flow" in
  if s.stage <> `Solved then invalid_arg "Solver.link_flow: resolve first";
  Graph.flow s.sg link

let end_batch t =
  let s = session t "end_batch" in
  if s.stage = `Idle then invalid_arg "Solver.end_batch: no open batch";
  Graph.truncate s.sg s.base_len;
  s.stage <- `Idle;
  s.n_workers <- 0
