type t = {
  mutable keys : float array;  (* keys.(node): current key, valid when queued *)
  mutable nodes : int array;   (* heap slots -> node id *)
  mutable pos : int array;     (* node id -> heap slot, -1 when not queued *)
  mutable size : int;
}

let create ~n =
  if n <= 0 then invalid_arg "Node_heap.create: n must be positive";
  {
    keys = Array.make n infinity;
    nodes = Array.make n 0;
    pos = Array.make n (-1);
    size = 0;
  }

let capacity t = Array.length t.pos

let ensure_capacity t ~n =
  let old = Array.length t.pos in
  if n > old then begin
    let keys = Array.make n infinity in
    Array.blit t.keys 0 keys 0 old;
    t.keys <- keys;
    let nodes = Array.make n 0 in
    Array.blit t.nodes 0 nodes 0 old;
    t.nodes <- nodes;
    let pos = Array.make n (-1) in
    Array.blit t.pos 0 pos 0 old;
    t.pos <- pos
  end

let clear t =
  for i = 0 to t.size - 1 do
    t.pos.(t.nodes.(i)) <- -1
  done;
  t.size <- 0

let is_empty t = t.size = 0
let size t = t.size
let mem t v = t.pos.(v) >= 0

let swap t i j =
  let a = t.nodes.(i) and b = t.nodes.(j) in
  t.nodes.(i) <- b;
  t.nodes.(j) <- a;
  t.pos.(b) <- i;
  t.pos.(a) <- j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.keys.(t.nodes.(i)) < t.keys.(t.nodes.(parent)) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest =
    if l < t.size && t.keys.(t.nodes.(l)) < t.keys.(t.nodes.(i)) then l else i
  in
  let smallest =
    if r < t.size && t.keys.(t.nodes.(r)) < t.keys.(t.nodes.(smallest)) then r
    else smallest
  in
  if smallest <> i then begin
    swap t i smallest;
    sift_down t smallest
  end

let push_or_decrease t v key =
  if v < 0 || v >= Array.length t.pos then
    invalid_arg "Node_heap: node out of range";
  if t.pos.(v) < 0 then begin
    t.keys.(v) <- key;
    t.nodes.(t.size) <- v;
    t.pos.(v) <- t.size;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)
  end
  else if key < t.keys.(v) then begin
    t.keys.(v) <- key;
    sift_up t t.pos.(v)
  end

let pop_min t =
  if t.size = 0 then None
  else begin
    let v = t.nodes.(0) in
    let key = t.keys.(v) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      let last = t.nodes.(t.size) in
      t.nodes.(0) <- last;
      t.pos.(last) <- 0
    end;
    t.pos.(v) <- -1;
    if t.size > 0 then sift_down t 0;
    Some (v, key)
  end
