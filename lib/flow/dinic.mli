(** Dinic's maximum-flow algorithm (BFS level graph + blocking DFS).

    Cost-free companion to {!Mcmf}: used where only the {e amount} of
    routable flow matters, e.g. the supply screen of
    {!Ltc_algo.Feasibility}, which decides whether an instance can possibly
    complete before any assignment algorithm runs.  O(V^2 E) worst case;
    near-linear on the unit-capacity bipartite networks LTC produces. *)

val max_flow : Graph.t -> source:int -> sink:int -> int
(** Saturates the network (mutating residual capacities; read per-arc flow
    with {!Graph.flow}) and returns the total routed amount.
    @raise Invalid_argument when [source = sink] or out of range. *)
