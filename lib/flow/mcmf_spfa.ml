let epsilon = 1e-9

(* Same metric names as {!Mcmf}, distinguished by the [solver] label. *)
let labels = [ ("solver", "spfa") ]

let m_runs =
  Ltc_util.Metrics.counter ~help:"min-cost-flow solver invocations" ~labels
    "ltc_flow_mcmf_runs_total"

let m_rounds =
  Ltc_util.Metrics.counter ~help:"augmenting rounds (shortest-path solves)"
    ~labels "ltc_flow_mcmf_rounds_total"

let m_flow =
  Ltc_util.Metrics.counter ~help:"total flow units pushed" ~labels
    "ltc_flow_mcmf_pushed_flow_total"

let m_spfa =
  Ltc_util.Metrics.counter ~help:"SPFA shortest-path passes" ~labels
    "ltc_flow_mcmf_spfa_passes_total"

let run ?(max_flow = max_int) ?(stop_on_nonnegative = false) ?workspace
    ?budget g ~source ~sink =
  let n = Graph.node_count g in
  if source < 0 || source >= n || sink < 0 || sink >= n then
    invalid_arg "Mcmf_spfa.run: node out of range";
  if source = sink then invalid_arg "Mcmf_spfa.run: source = sink";
  let raw = Graph.raw g in
  let heads = raw.Graph.r_heads
  and caps = raw.Graph.r_caps
  and costs = raw.Graph.r_costs
  and next = raw.Graph.r_next
  and first = raw.Graph.r_first in
  let ws =
    match workspace with
    | Some ws -> ws
    | None -> Mcmf.create_workspace ~hint:n ()
  in
  Mcmf.ensure_spfa_scratch ws ~n;
  let dist = Mcmf.ws_dist ws
  and pred = Mcmf.ws_pred ws
  and stamp = Mcmf.ws_stamp ws
  and in_queue = Mcmf.ws_flag ws
  and ring = Mcmf.ws_ring ws
  and relax_count = Mcmf.ws_counts ws in
  let cap_ring = Array.length ring in
  let epoch = ref (Mcmf.ws_epoch ws) in
  (* Shortest path by SPFA; handles negative arcs, detects negative cycles
     by the n-relaxations rule.  FIFO order matches the previous
     Queue-based implementation; the ring never overflows because
     [in_queue] admits each node at most once at a time (occupancy <= n
     <= cap_ring). *)
  let spfa () =
    incr epoch;
    let ep = !epoch in
    let head = ref 0 and size = ref 0 in
    let push v =
      ring.((!head + !size) mod cap_ring) <- v;
      incr size
    in
    let pop () =
      let v = ring.(!head) in
      head := (!head + 1) mod cap_ring;
      decr size;
      v
    in
    dist.(source) <- 0.0;
    pred.(source) <- -1;
    stamp.(source) <- ep;
    relax_count.(source) <- 0;
    push source;
    Bytes.set in_queue source '\001';
    while !size > 0 do
      let u = pop () in
      Bytes.set in_queue u '\000';
      let du = dist.(u) in
      let a = ref first.(u) in
      while !a <> -1 do
        let arc = !a in
        a := next.(arc);
        if caps.(arc) > 0 then begin
          let v = heads.(arc) in
          let nd = du +. costs.(arc) in
          let stamped = stamp.(v) = ep in
          let dv = if stamped then dist.(v) else infinity in
          if nd < dv -. epsilon then begin
            if not stamped then begin
              stamp.(v) <- ep;
              relax_count.(v) <- 0;
              Bytes.set in_queue v '\000'
            end;
            dist.(v) <- nd;
            pred.(v) <- arc;
            if Bytes.get in_queue v = '\000' then begin
              relax_count.(v) <- relax_count.(v) + 1;
              if relax_count.(v) > n then
                invalid_arg "Mcmf_spfa: negative-cost cycle in input";
              push v;
              Bytes.set in_queue v '\001'
            end
          end
        end
      done
    done;
    stamp.(sink) = ep && dist.(sink) < infinity
  in
  Ltc_util.Metrics.Counter.incr m_runs;
  let total_flow = ref 0 in
  let total_cost = ref 0.0 in
  let rounds = ref 0 in
  let continue = ref true in
  (* Same anytime semantics as {!Mcmf.run}: checked between passes, so the
     routed units are always a min-cost flow of their own value. *)
  let round_budget, deadline =
    match budget with
    | None -> (max_int, infinity)
    | Some (Mcmf.Rounds r) ->
      if r < 0 then invalid_arg "Mcmf_spfa.run: negative round budget";
      (r, infinity)
    | Some (Mcmf.Deadline_s d) ->
      if not (d >= 0.0) then
        invalid_arg "Mcmf_spfa.run: negative deadline budget";
      (max_int, Ltc_util.Fault.Clock.now_s () +. d)
  in
  let exhausted = ref false in
  let within_budget () =
    if
      !rounds >= round_budget
      || (deadline < infinity && Ltc_util.Fault.Clock.now_s () > deadline)
    then begin
      exhausted := true;
      false
    end
    else true
  in
  while
    !continue && !total_flow < max_flow
    && within_budget ()
    &&
    (Ltc_util.Metrics.Counter.incr m_spfa;
     spfa ())
  do
    let path_cost = dist.(sink) in
    if stop_on_nonnegative && path_cost >= -.epsilon then continue := false
    else begin
      incr rounds;
      let rec bottleneck v acc =
        if v = source then acc
        else begin
          let a = pred.(v) in
          bottleneck heads.(a lxor 1) (min acc caps.(a))
        end
      in
      let amount = min (bottleneck sink max_int) (max_flow - !total_flow) in
      let rec augment v =
        if v <> source then begin
          let a = pred.(v) in
          Graph.push g a amount;
          augment heads.(a lxor 1)
        end
      in
      augment sink;
      total_flow := !total_flow + amount;
      total_cost := !total_cost +. (float_of_int amount *. path_cost)
    end
  done;
  Mcmf.ws_set_epoch ws !epoch;
  Ltc_util.Metrics.Counter.add m_rounds !rounds;
  Ltc_util.Metrics.Counter.add m_flow !total_flow;
  { Mcmf.flow = !total_flow; cost = !total_cost; rounds = !rounds;
    exhausted = !exhausted }
