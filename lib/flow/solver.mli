(** Pluggable min-cost-flow solver backends behind one first-class
    interface.

    Before this module, every caller hard-wired a backend: [Mcmf.run] here,
    [Mcmf_spfa.run] there, each with its own [potential_init] plumbing.  A
    {!t} instead bundles a named backend with its reusable workspace, and a
    name-keyed registry (mirroring [Ltc_algo.Algorithm]) lets callers —
    MCF-LTC's config, the CLI, benches — select SSPA, SPFA or the
    incremental session solver without code changes.  Future backends
    (cost-scaling, bucket-Dijkstra) plug in by adding a registry entry.

    Two protocols, discriminated by {!capabilities}:

    - {b Scratch} ([sspa], [spfa]): the caller builds a {!Graph.t} per
      problem and calls {!solve}; the instance only carries the reused
      workspace.
    - {b Incremental} ([incremental]): the instance owns a persistent
      residual network and live potentials.  The caller declares demand
      units once ({!set_unit}), then per batch stacks transient worker
      nodes on top ({!begin_batch} / {!add_worker} / {!add_link}),
      {!resolve}s, reads flows ({!link_flow}) and retracts the batch
      ({!end_batch}).  Between batches only the touched subgraph is
      repaired, so a resolve costs what the delta touches — not the plane
      size.  See DESIGN.md §15 for the potential-repair invariants. *)

type capabilities = {
  solver_name : string;  (** registry key, lowercase *)
  incremental : bool;
      (** supports the session protocol ({!set_unit} .. {!end_batch});
          when [false] those calls raise and {!solve} is the entry point *)
  potentials : bool;
      (** honours {!Mcmf.potential_init} hints passed to {!solve} (SSPA);
          backends without potentials ignore [init] *)
  anytime : bool;  (** honours an {!Mcmf.budget} cutoff *)
}

type t
(** A solver instance: a backend plus its private reusable state (scratch
    workspace, or the incremental session).  Not domain-safe; one instance
    per concurrent run. *)

val names : unit -> string list
(** Registered backend names, registry order: [["sspa"; "spfa";
    "incremental"]]. *)

val all_capabilities : unit -> capabilities list
(** Capability records of every registered backend, registry order. *)

val create : ?hint:int -> string -> t
(** [create name] instantiates a registered backend (name matched
    case-insensitively); [hint] pre-sizes its workspace.
    @raise Invalid_argument on an unknown name, listing the registry. *)

val name : t -> string
val capabilities : t -> capabilities

val borrow_potentials : t -> float array
(** The backend workspace's live potential array, with exactly the
    {!Mcmf.borrow_potentials} caveats (overwritten by the next
    solve/resolve, replaced when the workspace grows).  Meaningful after a
    solve on a potential-maintaining backend (SSPA warm starts) or on the
    incremental session (whose potentials are always live). *)

val memory_words : t -> int
(** Approximate footprint of solver-owned persistent state: the
    incremental session's residual network and unit maps (for memory
    tracking panels).  0 for scratch backends — their graph is
    caller-owned and already charged by the caller. *)

val solve :
  t ->
  ?max_flow:int ->
  ?stop_on_nonnegative:bool ->
  ?init:Mcmf.potential_init ->
  ?budget:Mcmf.budget ->
  Graph.t ->
  source:int ->
  sink:int ->
  Mcmf.result
(** One from-scratch solve over a caller-built graph, with the contract of
    {!Mcmf.run}.  [init] is honoured only when [capabilities.potentials];
    SPFA ignores it.  @raise Invalid_argument on an incremental instance —
    a session's potentials must never be clobbered by a scratch solve; use
    {!resolve}. *)

(** {2 Incremental session protocol}

    Calls below raise [Invalid_argument] on a non-incremental instance,
    and enforce the stage discipline [idle -> open -> solved -> idle]:
    {!set_unit} only while idle, {!add_worker}/{!add_link} only while
    open, {!link_flow} only after {!resolve}, {!end_batch} closes either
    way.

    {b Caller obligation}: after a resolve, every unit whose link carried
    flow (or whose demand otherwise changed) must be re-declared with
    {!set_unit} before the next {!begin_batch} — that is what resets its
    residual capacity and repairs its potential.  MCF-LTC tracks exactly
    the tasks it recorded progress against. *)

type link = Graph.arc
(** Token returned by {!add_link}, valid until {!end_batch}. *)

val set_unit : t -> unit_id:int -> cap:int -> unit
(** Declare (first call) or re-dimension (later calls) a demand unit — an
    LTC task: a persistent node with a [cap]-capacity, zero-cost arc to the
    sink.  Re-dimensioning discards any flow previously routed through the
    unit's sink arc and repairs its potential.  [cap = 0] retires the unit
    (it may be revived later).  Unit ids are caller-chosen small
    non-negative ints (task ids).  @raise Invalid_argument while a batch is
    open, or on negative arguments. *)

val begin_batch : t -> unit
(** Open a batch: subsequent workers and links stack above the persistent
    plane and will be retracted by {!end_batch}. *)

val add_worker : t -> cap:int -> int
(** Add a transient supply node with a [cap]-capacity, zero-cost arc from
    the source; returns its batch-local handle (0, 1, ...). *)

val add_link : t -> worker:int -> unit_id:int -> cost:float -> link
(** Add a transient capacity-1 arc from a batch worker to a declared unit,
    revalidating reduced-cost feasibility on insertion (the unit's — and
    transitively the sink's — potential is lowered when the new arc
    undercuts it).  @raise Invalid_argument on an unknown worker handle or
    an undeclared unit. *)

val resolve : t -> ?budget:Mcmf.budget -> unit -> Mcmf.result
(** Solve the current batch incrementally: Dijkstra repair over the live
    potentials ([`Keep]), limited to the subgraph the new arcs make
    reachable.  [budget] is the anytime cutoff of {!Mcmf.run}. *)

val link_flow : t -> link -> int
(** Flow routed through a link by the last {!resolve} (0 or 1). *)

val end_batch : t -> unit
(** Retract the batch's workers and links from the network (the persistent
    plane, its flow residuals and potentials stay live) and return to
    idle. *)
