type result = {
  flow : int;
  cost : float;
  rounds : int;
  exhausted : bool;
}

type budget =
  | Rounds of int
  | Deadline_s of float

(* Tolerance for reduced-cost non-negativity under float arithmetic. *)
let epsilon = 1e-9

(* Shared solver metrics, one series per solver backend; registered once
   and free while metrics are disabled. *)
let solver_metrics solver =
  let labels = [ ("solver", solver) ] in
  ( Ltc_util.Metrics.counter ~help:"min-cost-flow solver invocations" ~labels
      "ltc_flow_mcmf_runs_total",
    Ltc_util.Metrics.counter ~help:"augmenting rounds (shortest-path solves)"
      ~labels "ltc_flow_mcmf_rounds_total",
    Ltc_util.Metrics.counter ~help:"total flow units pushed" ~labels
      "ltc_flow_mcmf_pushed_flow_total" )

let m_runs, m_rounds, m_flow = solver_metrics "sspa"

let m_bf_rounds =
  Ltc_util.Metrics.counter
    ~help:"Bellman-Ford relaxation sweeps while initialising potentials"
    ~labels:[ ("solver", "sspa") ]
    "ltc_flow_mcmf_bellman_ford_rounds_total"

let m_dijkstra =
  Ltc_util.Metrics.counter ~help:"Dijkstra passes over the reduced graph"
    ~labels:[ ("solver", "sspa") ]
    "ltc_flow_mcmf_dijkstra_passes_total"

let m_dag_inits =
  Ltc_util.Metrics.counter
    ~help:"single-pass topological potential initialisations"
    ~labels:[ ("solver", "sspa") ]
    "ltc_flow_mcmf_dag_inits_total"

let m_warm_accepted =
  Ltc_util.Metrics.counter
    ~help:"warm-start potential candidates accepted after validation"
    ~labels:[ ("solver", "sspa") ]
    "ltc_flow_mcmf_warm_accepted_total"

let m_warm_rejected =
  Ltc_util.Metrics.counter
    ~help:"warm-start potential candidates rejected (fell back to fresh init)"
    ~labels:[ ("solver", "sspa") ]
    "ltc_flow_mcmf_warm_rejected_total"

(* ------------------------------------------------------ reusable workspace *)

(* Per-solve scratch: potentials, Dijkstra labels and heap, plus the SPFA
   ring/counters {!Mcmf_spfa} borrows.  Labels are validated by an epoch
   stamp instead of O(n) fills, so a shortest-path pass touching few nodes
   costs what it touches, not the node count. *)
type workspace = {
  mutable pot : float array;
  mutable dist : float array;
  mutable pred : int array;
  mutable stamp : int array;   (* dist/pred/flag valid iff stamp.(v) = epoch *)
  mutable flag : Bytes.t;      (* Dijkstra: settled; SPFA: in-queue *)
  mutable epoch : int;
  heap : Node_heap.t;
  mutable ring : int array;    (* SPFA FIFO ring buffer *)
  mutable counts : int array;  (* SPFA relaxation counters *)
  (* Nodes stamped by the current Dijkstra pass, recorded only under
     [`Keep] so the potential update can walk the touched set instead of
     all n nodes — the part that makes incremental resolves sub-linear. *)
  mutable touched : int array;
  mutable n_touched : int;
}

let create_workspace ?(hint = 16) () =
  let hint = max hint 1 in
  {
    pot = Array.make hint 0.0;
    dist = Array.make hint infinity;
    pred = Array.make hint (-1);
    stamp = Array.make hint 0;
    flag = Bytes.make hint '\000';
    epoch = 0;
    heap = Node_heap.create ~n:hint;
    ring = [||];
    counts = [||];
    touched = Array.make hint 0;
    n_touched = 0;
  }

let workspace_capacity ws = Array.length ws.pot

let ensure_workspace ws ~n =
  let old = Array.length ws.pot in
  if n > old then begin
    let cap = max n (2 * old) in
    let pot = Array.make cap 0.0 in
    Array.blit ws.pot 0 pot 0 old;
    ws.pot <- pot;
    let dist = Array.make cap infinity in
    Array.blit ws.dist 0 dist 0 old;
    ws.dist <- dist;
    let pred = Array.make cap (-1) in
    Array.blit ws.pred 0 pred 0 old;
    ws.pred <- pred;
    (* Fresh stamps are 0 and the epoch only grows from 0, so grown slots
       can never masquerade as currently-valid labels. *)
    let stamp = Array.make cap 0 in
    Array.blit ws.stamp 0 stamp 0 old;
    ws.stamp <- stamp;
    let flag = Bytes.make cap '\000' in
    Bytes.blit ws.flag 0 flag 0 old;
    ws.flag <- flag;
    (* The touched list is reset per pass; stale contents never survive. *)
    ws.touched <- Array.make cap 0;
    Node_heap.ensure_capacity ws.heap ~n:cap
  end

let borrow_potentials ws = ws.pot

let copy_potentials ws ~n =
  if n < 0 || n > Array.length ws.pot then
    invalid_arg "Mcmf.copy_potentials: n out of range";
  Array.sub ws.pot 0 n

(* SPFA-side scratch (ring + relax counters); stale contents are masked by
   the epoch stamp, so growth can drop old values. *)
let ensure_spfa_scratch ws ~n =
  ensure_workspace ws ~n;
  if Array.length ws.ring < n then begin
    let cap = Array.length ws.pot in
    ws.ring <- Array.make cap 0;
    ws.counts <- Array.make cap 0
  end

let ws_dist ws = ws.dist
let ws_pred ws = ws.pred
let ws_stamp ws = ws.stamp
let ws_flag ws = ws.flag
let ws_ring ws = ws.ring
let ws_counts ws = ws.counts
let ws_epoch ws = ws.epoch
let ws_set_epoch ws e = ws.epoch <- e

(* ---------------------------------------------------- potential initialisers *)

type potential_init =
  [ `Bellman_ford | `Dag_topo | `Warm_start of float array | `Keep ]

(* Bellman-Ford over residual arcs; fills [pot] with shortest-path distances
   from [source] (unreachable nodes keep 0, which is safe: they can only be
   reached later through reachable nodes, whose potentials are exact). *)
let bellman_ford (raw : Graph.raw) ~n ~source pot =
  Array.fill pot 0 n infinity;
  pot.(source) <- 0.0;
  let changed = ref true in
  let round = ref 0 in
  while !changed && !round < n do
    changed := false;
    incr round;
    Ltc_util.Metrics.Counter.incr m_bf_rounds;
    for a = 0 to raw.Graph.r_len - 1 do
      if raw.Graph.r_caps.(a) > 0 then begin
        (* The source of arc [a] is the head of its reverse. *)
        let u = raw.Graph.r_heads.(a lxor 1) in
        let v = raw.Graph.r_heads.(a) in
        if pot.(u) < infinity then begin
          let d = pot.(u) +. raw.Graph.r_costs.(a) in
          if d < pot.(v) -. epsilon then begin
            pot.(v) <- d;
            changed := true
          end
        end
      end
    done
  done;
  if !changed then invalid_arg "Mcmf: negative-cost cycle in input";
  for v = 0 to n - 1 do
    if pot.(v) = infinity then pot.(v) <- 0.0
  done

(* Single relaxation sweep in arc-insertion order.  When arcs were appended
   in topological order of their tails — true of every LTC batch network:
   source -> workers -> tasks -> sink — one sweep reaches the exact
   Bellman-Ford fixpoint (BF's first round performs this identical
   relaxation sequence and its second round only verifies convergence), so
   the potentials are bit-for-bit the Bellman-Ford ones at half the cost
   and without the convergence re-scan. *)
let dag_topo_init (raw : Graph.raw) ~n ~source pot =
  Ltc_util.Metrics.Counter.incr m_dag_inits;
  Array.fill pot 0 n infinity;
  pot.(source) <- 0.0;
  for a = 0 to raw.Graph.r_len - 1 do
    if raw.Graph.r_caps.(a) > 0 then begin
      let u = raw.Graph.r_heads.(a lxor 1) in
      let v = raw.Graph.r_heads.(a) in
      if pot.(u) < infinity then begin
        let d = pot.(u) +. raw.Graph.r_costs.(a) in
        if d < pot.(v) -. epsilon then pot.(v) <- d
      end
    end
  done;
  for v = 0 to n - 1 do
    if pot.(v) = infinity then pot.(v) <- 0.0
  done

(* A candidate potential vector is usable iff every residual arc has
   non-negative reduced cost (within epsilon) — the invariant Dijkstra on
   reduced costs needs.  One O(E) scan decides. *)
let warm_candidate_valid (raw : Graph.raw) cand =
  let ok = ref true in
  let a = ref 0 in
  while !ok && !a < raw.Graph.r_len do
    let arc = !a in
    incr a;
    if raw.Graph.r_caps.(arc) > 0 then begin
      let u = raw.Graph.r_heads.(arc lxor 1) in
      let v = raw.Graph.r_heads.(arc) in
      if raw.Graph.r_costs.(arc) +. cand.(u) -. cand.(v) < -.epsilon then
        ok := false
    end
  done;
  !ok

let init_potentials (raw : Graph.raw) ~n ~source ~init pot =
  match init with
  | `Keep -> ()
  | `Bellman_ford -> bellman_ford raw ~n ~source pot
  | `Dag_topo -> dag_topo_init raw ~n ~source pot
  | `Warm_start cand ->
    if Array.length cand < n then
      invalid_arg "Mcmf.run: warm-start potentials shorter than node count";
    if warm_candidate_valid raw cand then begin
      Ltc_util.Metrics.Counter.incr m_warm_accepted;
      if cand != pot then Array.blit cand 0 pot 0 n
    end
    else begin
      Ltc_util.Metrics.Counter.incr m_warm_rejected;
      bellman_ford raw ~n ~source pot
    end

(* --------------------------------------------------------------------- run *)

let run ?(max_flow = max_int) ?(stop_on_nonnegative = false) ?workspace
    ?(init = `Bellman_ford) ?budget g ~source ~sink =
  let n = Graph.node_count g in
  if source < 0 || source >= n || sink < 0 || sink >= n then
    invalid_arg "Mcmf.run: node out of range";
  if source = sink then invalid_arg "Mcmf.run: source = sink";
  let raw = Graph.raw g in
  let heads = raw.Graph.r_heads
  and caps = raw.Graph.r_caps
  and costs = raw.Graph.r_costs
  and next = raw.Graph.r_next
  and first = raw.Graph.r_first in
  let ws =
    match workspace with
    | Some ws ->
      ensure_workspace ws ~n;
      ws
    | None -> create_workspace ~hint:n ()
  in
  let pot = ws.pot
  and dist = ws.dist
  and pred = ws.pred
  and stamp = ws.stamp
  and settled = ws.flag
  and touched = ws.touched
  and heap = ws.heap in
  init_potentials raw ~n ~source ~init pot;
  (* [`Keep] doubles as the incremental-resolve mode: potentials are
     trusted as-is {e and} the per-round potential update walks only the
     nodes this pass touched.  That sparse update differs from the dense
     one by a uniform [-d_sink] shift across all nodes (untouched nodes
     advance by [d_sink] in the dense form, by [0] here), and uniform
     shifts leave every reduced cost — and the [path_cost] difference
     below — unchanged, so flows and costs agree with the dense update in
     exact arithmetic. *)
  let sparse = match init with `Keep -> true | _ -> false in
  (* Dijkstra on reduced costs, stopping as soon as the sink settles.
     Labels are valid only where [stamp.(v)] equals this pass's epoch —
     unstamped nodes read as dist = infinity, unsettled, which replaces the
     three O(n) fills the allocation-per-run solver paid per pass.
     Returns true when the sink is reachable. *)
  let epoch = ref ws.epoch in
  let dijkstra () =
    incr epoch;
    let ep = !epoch in
    Node_heap.clear heap;
    Array.unsafe_set dist source 0.0;
    Array.unsafe_set stamp source ep;
    Bytes.unsafe_set settled source '\000';
    if sparse then begin
      Array.unsafe_set touched 0 source;
      ws.n_touched <- 1
    end;
    Node_heap.push_or_decrease heap source 0.0;
    let reached_sink = ref false in
    let continue = ref true in
    while !continue do
      match Node_heap.pop_min heap with
      | None -> continue := false
      | Some (u, d) ->
        Bytes.unsafe_set settled u '\001';
        if u = sink then begin
          reached_sink := true;
          continue := false
        end
        else begin
          let pot_u = Array.unsafe_get pot u in
          let a = ref (Array.unsafe_get first u) in
          while !a <> -1 do
            let arc = !a in
            a := Array.unsafe_get next arc;
            if Array.unsafe_get caps arc > 0 then begin
              let v = Array.unsafe_get heads arc in
              let stamped = Array.unsafe_get stamp v = ep in
              if
                (not stamped) || Bytes.unsafe_get settled v = '\000'
              then begin
                let reduced =
                  Array.unsafe_get costs arc
                  +. pot_u
                  -. Array.unsafe_get pot v
                in
                let reduced = if reduced < 0.0 then 0.0 else reduced in
                let nd = d +. reduced in
                let dv =
                  if stamped then Array.unsafe_get dist v else infinity
                in
                if nd < dv -. epsilon then begin
                  Array.unsafe_set dist v nd;
                  Array.unsafe_set pred v arc;
                  if not stamped then begin
                    Array.unsafe_set stamp v ep;
                    Bytes.unsafe_set settled v '\000';
                    if sparse then begin
                      Array.unsafe_set touched ws.n_touched v;
                      ws.n_touched <- ws.n_touched + 1
                    end
                  end;
                  Node_heap.push_or_decrease heap v nd
                end
              end
            end
          done
        end
    done;
    !reached_sink
  in
  Ltc_util.Metrics.Counter.incr m_runs;
  let total_flow = ref 0 in
  let total_cost = ref 0.0 in
  let rounds = ref 0 in
  let continue = ref true in
  (* Anytime budget: checked before each shortest-path pass, so a budgeted
     run always returns a flow that is a valid prefix of the exact run's
     augmentation sequence (SSPA's prefix-optimality: the first k routed
     units form a min-cost k-flow). *)
  let round_budget, deadline =
    match budget with
    | None -> (max_int, infinity)
    | Some (Rounds r) ->
      if r < 0 then invalid_arg "Mcmf.run: negative round budget";
      (r, infinity)
    | Some (Deadline_s d) ->
      if not (d >= 0.0) then invalid_arg "Mcmf.run: negative deadline budget";
      (max_int, Ltc_util.Fault.Clock.now_s () +. d)
  in
  let exhausted = ref false in
  let within_budget () =
    if
      !rounds >= round_budget
      || (deadline < infinity && Ltc_util.Fault.Clock.now_s () > deadline)
    then begin
      exhausted := true;
      false
    end
    else true
  in
  while
    !continue && !total_flow < max_flow
    && within_budget ()
    &&
    (Ltc_util.Metrics.Counter.incr m_dijkstra;
     dijkstra ())
  do
    let ep = !epoch in
    (* True (unreduced) cost of the found path. *)
    let path_cost = dist.(sink) +. pot.(sink) -. pot.(source) in
    if stop_on_nonnegative && path_cost >= -.epsilon then continue := false
    else begin
      incr rounds;
      (* Early-exit potential update: unsettled nodes advance by the sink
         distance, settled ones by their own distance.  In sparse mode the
         same update is applied modulo a uniform [-d_sink] shift, visiting
         only touched nodes (untouched ones advance by 0 instead of
         [d_sink]); reduced costs are identical either way. *)
      let d_sink = dist.(sink) in
      if sparse then
        for k = 0 to ws.n_touched - 1 do
          let v = Array.unsafe_get touched k in
          let dv = Array.unsafe_get dist v in
          if dv < d_sink then pot.(v) <- pot.(v) +. (dv -. d_sink)
        done
      else
        for v = 0 to n - 1 do
          let dv =
            if Array.unsafe_get stamp v = ep then Array.unsafe_get dist v
            else infinity
          in
          pot.(v) <- pot.(v) +. Float.min dv d_sink
        done;
      (* Bottleneck along the predecessor chain. *)
      let rec bottleneck v acc =
        if v = source then acc
        else begin
          let a = pred.(v) in
          bottleneck heads.(a lxor 1) (min acc caps.(a))
        end
      in
      let amount = min (bottleneck sink max_int) (max_flow - !total_flow) in
      let rec augment v =
        if v <> source then begin
          let a = pred.(v) in
          Graph.push g a amount;
          augment heads.(a lxor 1)
        end
      in
      augment sink;
      total_flow := !total_flow + amount;
      total_cost := !total_cost +. (float_of_int amount *. path_cost)
    end
  done;
  ws.epoch <- !epoch;
  Ltc_util.Metrics.Counter.add m_rounds !rounds;
  Ltc_util.Metrics.Counter.add m_flow !total_flow;
  { flow = !total_flow; cost = !total_cost; rounds = !rounds;
    exhausted = !exhausted }
