type result = {
  flow : int;
  cost : float;
  rounds : int;
}

(* Tolerance for reduced-cost non-negativity under float arithmetic. *)
let epsilon = 1e-9

(* Shared solver metrics, one series per solver backend; registered once
   and free while metrics are disabled. *)
let solver_metrics solver =
  let labels = [ ("solver", solver) ] in
  ( Ltc_util.Metrics.counter ~help:"min-cost-flow solver invocations" ~labels
      "ltc_flow_mcmf_runs_total",
    Ltc_util.Metrics.counter ~help:"augmenting rounds (shortest-path solves)"
      ~labels "ltc_flow_mcmf_rounds_total",
    Ltc_util.Metrics.counter ~help:"total flow units pushed" ~labels
      "ltc_flow_mcmf_pushed_flow_total" )

let m_runs, m_rounds, m_flow = solver_metrics "sspa"

let m_bf_rounds =
  Ltc_util.Metrics.counter
    ~help:"Bellman-Ford relaxation sweeps while initialising potentials"
    ~labels:[ ("solver", "sspa") ]
    "ltc_flow_mcmf_bellman_ford_rounds_total"

let m_dijkstra =
  Ltc_util.Metrics.counter ~help:"Dijkstra passes over the reduced graph"
    ~labels:[ ("solver", "sspa") ]
    "ltc_flow_mcmf_dijkstra_passes_total"

(* Bellman-Ford over residual arcs; fills [pot] with shortest-path distances
   from [source] (unreachable nodes keep 0, which is safe: they can only be
   reached later through reachable nodes, whose potentials are exact). *)
let bellman_ford (raw : Graph.raw) ~n ~source pot =
  Array.fill pot 0 n infinity;
  pot.(source) <- 0.0;
  let changed = ref true in
  let round = ref 0 in
  while !changed && !round < n do
    changed := false;
    incr round;
    Ltc_util.Metrics.Counter.incr m_bf_rounds;
    for a = 0 to raw.Graph.r_len - 1 do
      if raw.Graph.r_caps.(a) > 0 then begin
        (* The source of arc [a] is the head of its reverse. *)
        let u = raw.Graph.r_heads.(a lxor 1) in
        let v = raw.Graph.r_heads.(a) in
        if pot.(u) < infinity then begin
          let d = pot.(u) +. raw.Graph.r_costs.(a) in
          if d < pot.(v) -. epsilon then begin
            pot.(v) <- d;
            changed := true
          end
        end
      end
    done
  done;
  if !changed then invalid_arg "Mcmf: negative-cost cycle in input";
  for v = 0 to n - 1 do
    if pot.(v) = infinity then pot.(v) <- 0.0
  done

let run ?(max_flow = max_int) ?(stop_on_nonnegative = false) g ~source ~sink =
  let n = Graph.node_count g in
  if source < 0 || source >= n || sink < 0 || sink >= n then
    invalid_arg "Mcmf.run: node out of range";
  if source = sink then invalid_arg "Mcmf.run: source = sink";
  let raw = Graph.raw g in
  let heads = raw.Graph.r_heads
  and caps = raw.Graph.r_caps
  and costs = raw.Graph.r_costs
  and next = raw.Graph.r_next
  and first = raw.Graph.r_first in
  let pot = Array.make n 0.0 in
  bellman_ford raw ~n ~source pot;
  let dist = Array.make n infinity in
  let settled = Bytes.make n '\000' in
  let pred = Array.make n (-1) in
  let heap = Node_heap.create ~n in
  (* Dijkstra on reduced costs, stopping as soon as the sink settles.
     Returns true when the sink is reachable. *)
  let dijkstra () =
    Array.fill dist 0 n infinity;
    Bytes.fill settled 0 n '\000';
    Array.fill pred 0 n (-1);
    Node_heap.clear heap;
    dist.(source) <- 0.0;
    Node_heap.push_or_decrease heap source 0.0;
    let reached_sink = ref false in
    let continue = ref true in
    while !continue do
      match Node_heap.pop_min heap with
      | None -> continue := false
      | Some (u, d) ->
        Bytes.unsafe_set settled u '\001';
        if u = sink then begin
          reached_sink := true;
          continue := false
        end
        else begin
          let pot_u = Array.unsafe_get pot u in
          let a = ref (Array.unsafe_get first u) in
          while !a <> -1 do
            let arc = !a in
            a := Array.unsafe_get next arc;
            if Array.unsafe_get caps arc > 0 then begin
              let v = Array.unsafe_get heads arc in
              if Bytes.unsafe_get settled v = '\000' then begin
                let reduced =
                  Array.unsafe_get costs arc
                  +. pot_u
                  -. Array.unsafe_get pot v
                in
                let reduced = if reduced < 0.0 then 0.0 else reduced in
                let nd = d +. reduced in
                if nd < Array.unsafe_get dist v -. epsilon then begin
                  Array.unsafe_set dist v nd;
                  Array.unsafe_set pred v arc;
                  Node_heap.push_or_decrease heap v nd
                end
              end
            end
          done
        end
    done;
    !reached_sink
  in
  Ltc_util.Metrics.Counter.incr m_runs;
  let total_flow = ref 0 in
  let total_cost = ref 0.0 in
  let rounds = ref 0 in
  let continue = ref true in
  while
    !continue && !total_flow < max_flow
    &&
    (Ltc_util.Metrics.Counter.incr m_dijkstra;
     dijkstra ())
  do
    (* True (unreduced) cost of the found path. *)
    let path_cost = dist.(sink) +. pot.(sink) -. pot.(source) in
    if stop_on_nonnegative && path_cost >= -.epsilon then continue := false
    else begin
      incr rounds;
      (* Early-exit potential update: unsettled nodes advance by the sink
         distance, settled ones by their own distance. *)
      let d_sink = dist.(sink) in
      for v = 0 to n - 1 do
        pot.(v) <- pot.(v) +. Float.min dist.(v) d_sink
      done;
      (* Bottleneck along the predecessor chain. *)
      let rec bottleneck v acc =
        if v = source then acc
        else begin
          let a = pred.(v) in
          bottleneck heads.(a lxor 1) (min acc caps.(a))
        end
      in
      let amount = min (bottleneck sink max_int) (max_flow - !total_flow) in
      let rec augment v =
        if v <> source then begin
          let a = pred.(v) in
          Graph.push g a amount;
          augment heads.(a lxor 1)
        end
      in
      augment sink;
      total_flow := !total_flow + amount;
      total_cost := !total_cost +. (float_of_int amount *. path_cost)
    end
  done;
  Ltc_util.Metrics.Counter.add m_rounds !rounds;
  Ltc_util.Metrics.Counter.add m_flow !total_flow;
  { flow = !total_flow; cost = !total_cost; rounds = !rounds }
