exception Parse_error of { line : int; message : string }

let parse_error ~line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

let fp = Printf.sprintf "%.17g"

type sink = string -> unit

(* ------------------------------------------------------------- writing *)

(* All writers emit through a string sink so channels and buffers share the
   same code path. *)
let emit_instance sink (instance : Instance.t) =
  let pf fmt = Printf.ksprintf sink fmt in
  pf "ltc-instance v1\n";
  pf "epsilon %s\n" (fp instance.epsilon);
  (match instance.accuracy with
  | Accuracy.Sigmoid { dmax } -> pf "accuracy sigmoid %s\n" (fp dmax)
  | Accuracy.Historical -> pf "accuracy historical\n"
  | Accuracy.Custom { name; _ } ->
    invalid_arg
      (Printf.sprintf
         "Serialize: custom accuracy model %S cannot be saved" name));
  (match instance.scoring with
  | Quality.Hoeffding -> pf "scoring hoeffding\n"
  | Quality.Sum_accuracy { threshold } ->
    pf "scoring sum_accuracy %s\n" (fp threshold));
  (match instance.candidate_radius with
  | None -> pf "radius none\n"
  | Some r -> pf "radius %s\n" (fp r));
  pf "tasks %d\n" (Array.length instance.tasks);
  Array.iter
    (fun (task : Task.t) ->
      match task.epsilon with
      | None ->
        pf "t %d %s %s\n" task.id
          (fp task.loc.Ltc_geo.Point.x)
          (fp task.loc.Ltc_geo.Point.y)
      | Some e ->
        pf "t %d %s %s %s\n" task.id
          (fp task.loc.Ltc_geo.Point.x)
          (fp task.loc.Ltc_geo.Point.y)
          (fp e))
    instance.tasks;
  pf "workers %d\n" (Array.length instance.workers);
  Array.iter
    (fun (w : Worker.t) ->
      pf "w %d %s %s %s %d\n" w.index
        (fp w.loc.Ltc_geo.Point.x)
        (fp w.loc.Ltc_geo.Point.y)
        (fp w.accuracy) w.capacity)
    instance.workers

let emit_arrangement sink arrangement =
  let pf fmt = Printf.ksprintf sink fmt in
  pf "ltc-arrangement v1\n";
  pf "assignments %d\n" (Arrangement.size arrangement);
  List.iter
    (fun (a : Arrangement.assignment) -> pf "a %d %d\n" a.worker a.task)
    (Arrangement.to_list arrangement)

let write_instance oc instance = emit_instance (output_string oc) instance
let write_arrangement oc a = emit_arrangement (output_string oc) a

(* ------------------------------------------------------------- reading *)

(* A source of significant lines (comments and blanks stripped), tracking
   line numbers and byte offsets for error reporting.  [next_raw] returns
   each raw line together with the byte offset of its first character, so
   consumers embedded in binary-ish streams (the service journal) can
   report corruption positions exactly. *)
type source = {
  next_raw : unit -> (string * int) option;
  mutable line_no : int;
  mutable line_offset : int;
}

let source_of_channel ic =
  let next_raw () =
    let off = pos_in ic in
    Option.map (fun l -> (l, off)) (In_channel.input_line ic)
  in
  { next_raw; line_no = 0; line_offset = 0 }

let source_of_string s =
  let lines = ref (String.split_on_char '\n' s) in
  let offset = ref 0 in
  let next_raw () =
    match !lines with
    | [] -> None
    | l :: rest ->
      lines := rest;
      let off = !offset in
      offset := off + String.length l + 1;
      Some (l, off)
  in
  { next_raw; line_no = 0; line_offset = 0 }

let rec next_line_opt src =
  match src.next_raw () with
  | None -> None
  | Some (line, offset) ->
    src.line_no <- src.line_no + 1;
    src.line_offset <- offset;
    let line =
      match String.index_opt line '#' with
      | None -> line
      | Some i -> String.sub line 0 i
    in
    let line = String.trim line in
    if line = "" then next_line_opt src else Some line

let next_line src =
  match next_line_opt src with
  | None -> parse_error ~line:src.line_no "unexpected end of input"
  | Some line -> line

let line_number src = src.line_no
let line_offset src = src.line_offset

let fields line = String.split_on_char ' ' line |> List.filter (( <> ) "")

let float_field src s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> parse_error ~line:src.line_no "expected a float, got %S" s

let int_field src s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> parse_error ~line:src.line_no "expected an integer, got %S" s

let parse_instance src =
  (match next_line src with
  | "ltc-instance v1" -> ()
  | other -> parse_error ~line:src.line_no "bad header %S" other);
  let epsilon =
    match fields (next_line src) with
    | [ "epsilon"; e ] -> float_field src e
    | _ -> parse_error ~line:src.line_no "expected 'epsilon <float>'"
  in
  let accuracy =
    match fields (next_line src) with
    | [ "accuracy"; "sigmoid"; dmax ] ->
      Accuracy.Sigmoid { dmax = float_field src dmax }
    | [ "accuracy"; "historical" ] -> Accuracy.Historical
    | _ -> parse_error ~line:src.line_no "expected an accuracy line"
  in
  let scoring =
    match fields (next_line src) with
    | [ "scoring"; "hoeffding" ] -> Quality.Hoeffding
    | [ "scoring"; "sum_accuracy"; t ] ->
      Quality.Sum_accuracy { threshold = float_field src t }
    | _ -> parse_error ~line:src.line_no "expected a scoring line"
  in
  let radius =
    match fields (next_line src) with
    | [ "radius"; "none" ] -> None
    | [ "radius"; x ] -> Some (float_field src x)
    | _ -> parse_error ~line:src.line_no "expected a radius line"
  in
  let n_tasks =
    match fields (next_line src) with
    | [ "tasks"; n ] -> int_field src n
    | _ -> parse_error ~line:src.line_no "expected 'tasks <count>'"
  in
  let tasks =
    Array.init n_tasks (fun _ ->
        match fields (next_line src) with
        | [ "t"; id; x; y ] ->
          Task.make ~id:(int_field src id)
            ~loc:(Ltc_geo.Point.make ~x:(float_field src x) ~y:(float_field src y))
            ()
        | [ "t"; id; x; y; eps ] ->
          Task.make
            ~epsilon:(float_field src eps)
            ~id:(int_field src id)
            ~loc:(Ltc_geo.Point.make ~x:(float_field src x) ~y:(float_field src y))
            ()
        | _ -> parse_error ~line:src.line_no "expected a task line")
  in
  let n_workers =
    match fields (next_line src) with
    | [ "workers"; n ] -> int_field src n
    | _ -> parse_error ~line:src.line_no "expected 'workers <count>'"
  in
  let workers =
    Array.init n_workers (fun _ ->
        match fields (next_line src) with
        | [ "w"; index; x; y; accuracy; capacity ] ->
          Worker.make ~index:(int_field src index)
            ~loc:(Ltc_geo.Point.make ~x:(float_field src x) ~y:(float_field src y))
            ~accuracy:(float_field src accuracy)
            ~capacity:(int_field src capacity)
        | _ -> parse_error ~line:src.line_no "expected a worker line")
  in
  Instance.create ~accuracy ~scoring ~candidate_radius:radius ~tasks ~workers
    ~epsilon ()

let parse_arrangement src =
  (match next_line src with
  | "ltc-arrangement v1" -> ()
  | other -> parse_error ~line:src.line_no "bad header %S" other);
  let n =
    match fields (next_line src) with
    | [ "assignments"; n ] -> int_field src n
    | _ -> parse_error ~line:src.line_no "expected 'assignments <count>'"
  in
  let arrangement = ref Arrangement.empty in
  for _ = 1 to n do
    match fields (next_line src) with
    | [ "a"; worker; task ] ->
      arrangement :=
        Arrangement.add !arrangement ~worker:(int_field src worker)
          ~task:(int_field src task)
    | _ -> parse_error ~line:src.line_no "expected an assignment line"
  done;
  !arrangement

let read_instance ic = parse_instance (source_of_channel ic)
let read_arrangement ic = parse_arrangement (source_of_channel ic)

(* ------------------------------------------------------------- helpers *)

let with_file_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let with_file_in path f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let save_instance ~path instance =
  with_file_out path (fun oc -> write_instance oc instance)

let load_instance ~path = with_file_in path read_instance

let save_arrangement ~path arrangement =
  with_file_out path (fun oc -> write_arrangement oc arrangement)

let load_arrangement ~path = with_file_in path read_arrangement

let to_string_with emit x =
  let buf = Buffer.create 4096 in
  emit (Buffer.add_string buf) x;
  Buffer.contents buf

let instance_to_string instance = to_string_with emit_instance instance
let instance_of_string s = parse_instance (source_of_string s)
let arrangement_to_string a = to_string_with emit_arrangement a
let arrangement_of_string s = parse_arrangement (source_of_string s)

(* ---------------------------------------------------- snapshot payloads *)

(* Progress and Rng state are the mutable halves of a streaming session;
   the service layer embeds these blocks in its journal snapshots.  Both
   use the same round-trip float precision as instances, so a restored
   tracker answers [sum_remaining]/[max_remaining] bit-identically. *)

let emit_progress sink progress =
  let snap = Progress.snapshot progress in
  let pf fmt = Printf.ksprintf sink fmt in
  let n = Array.length snap.Progress.thresholds in
  pf "ltc-progress v1\n";
  pf "tasks %d\n" n;
  pf "sum_remaining %s\n" (fp snap.Progress.sum_remaining);
  for task = 0 to n - 1 do
    pf "p %s %s\n"
      (fp snap.Progress.thresholds.(task))
      (fp snap.Progress.scores.(task))
  done

let parse_progress src =
  (match next_line src with
  | "ltc-progress v1" -> ()
  | other -> parse_error ~line:src.line_no "bad header %S" other);
  let n =
    match fields (next_line src) with
    | [ "tasks"; n ] -> int_field src n
    | _ -> parse_error ~line:src.line_no "expected 'tasks <count>'"
  in
  let sum_remaining =
    match fields (next_line src) with
    | [ "sum_remaining"; x ] -> float_field src x
    | _ -> parse_error ~line:src.line_no "expected 'sum_remaining <float>'"
  in
  let thresholds = Array.make n 0.0 in
  let scores = Array.make n 0.0 in
  for task = 0 to n - 1 do
    match fields (next_line src) with
    | [ "p"; threshold; score ] ->
      thresholds.(task) <- float_field src threshold;
      scores.(task) <- float_field src score
    | _ -> parse_error ~line:src.line_no "expected a progress line"
  done;
  match Progress.of_snapshot { Progress.thresholds; scores; sum_remaining } with
  | progress -> progress
  | exception Invalid_argument message ->
    parse_error ~line:src.line_no "invalid progress snapshot: %s" message

let emit_rng sink rng =
  Printf.ksprintf sink "ltc-rng v1\nstate %Ld\n" (Ltc_util.Rng.state rng)

let parse_rng src =
  (match next_line src with
  | "ltc-rng v1" -> ()
  | other -> parse_error ~line:src.line_no "bad header %S" other);
  match fields (next_line src) with
  | [ "state"; s ] -> (
    match Int64.of_string_opt s with
    | Some state -> Ltc_util.Rng.of_state state
    | None -> parse_error ~line:src.line_no "expected an int64, got %S" s)
  | _ -> parse_error ~line:src.line_no "expected 'state <int64>'"

let progress_to_string p = to_string_with emit_progress p
let progress_of_string s = parse_progress (source_of_string s)
let rng_to_string rng = to_string_with emit_rng rng
let rng_of_string s = parse_rng (source_of_string s)
