exception Parse_error of { line : int; message : string }

let parse_error ~line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

let fp = Printf.sprintf "%.17g"

type sink = string -> unit

(* ------------------------------------------------------------- writing *)

(* All writers emit through a string sink so channels and buffers share the
   same code path. *)
let emit_instance sink (instance : Instance.t) =
  let pf fmt = Printf.ksprintf sink fmt in
  pf "ltc-instance v1\n";
  pf "epsilon %s\n" (fp instance.epsilon);
  (match instance.accuracy with
  | Accuracy.Sigmoid { dmax } -> pf "accuracy sigmoid %s\n" (fp dmax)
  | Accuracy.Historical -> pf "accuracy historical\n"
  | Accuracy.Custom { name; _ } ->
    invalid_arg
      (Printf.sprintf
         "Serialize: custom accuracy model %S cannot be saved" name));
  (match instance.scoring with
  | Quality.Hoeffding -> pf "scoring hoeffding\n"
  | Quality.Sum_accuracy { threshold } ->
    pf "scoring sum_accuracy %s\n" (fp threshold));
  (match instance.candidate_radius with
  | None -> pf "radius none\n"
  | Some r -> pf "radius %s\n" (fp r));
  pf "tasks %d\n" (Array.length instance.tasks);
  Array.iter
    (fun (task : Task.t) ->
      match task.epsilon with
      | None ->
        pf "t %d %s %s\n" task.id
          (fp task.loc.Ltc_geo.Point.x)
          (fp task.loc.Ltc_geo.Point.y)
      | Some e ->
        pf "t %d %s %s %s\n" task.id
          (fp task.loc.Ltc_geo.Point.x)
          (fp task.loc.Ltc_geo.Point.y)
          (fp e))
    instance.tasks;
  pf "workers %d\n" (Array.length instance.workers);
  Array.iter
    (fun (w : Worker.t) ->
      pf "w %d %s %s %s %d\n" w.index
        (fp w.loc.Ltc_geo.Point.x)
        (fp w.loc.Ltc_geo.Point.y)
        (fp w.accuracy) w.capacity)
    instance.workers

let emit_arrangement sink arrangement =
  let pf fmt = Printf.ksprintf sink fmt in
  pf "ltc-arrangement v1\n";
  pf "assignments %d\n" (Arrangement.size arrangement);
  List.iter
    (fun (a : Arrangement.assignment) -> pf "a %d %d\n" a.worker a.task)
    (Arrangement.to_list arrangement)

let write_instance oc instance = emit_instance (output_string oc) instance
let write_arrangement oc a = emit_arrangement (output_string oc) a

(* ------------------------------------------------------------- reading *)

(* A source of significant lines (comments and blanks stripped), tracking
   line numbers and byte offsets for error reporting.  [next_raw] returns
   each raw line together with the byte offset of its first character, so
   consumers embedded in binary-ish streams (the service journal) can
   report corruption positions exactly. *)
type source = {
  next_raw : unit -> (string * int) option;
  mutable line_no : int;
  mutable line_offset : int;
}

let source_of_channel ic =
  let next_raw () =
    let off = pos_in ic in
    Option.map (fun l -> (l, off)) (In_channel.input_line ic)
  in
  { next_raw; line_no = 0; line_offset = 0 }

let source_of_string s =
  let lines = ref (String.split_on_char '\n' s) in
  let offset = ref 0 in
  let next_raw () =
    match !lines with
    | [] -> None
    | l :: rest ->
      lines := rest;
      let off = !offset in
      offset := off + String.length l + 1;
      Some (l, off)
  in
  { next_raw; line_no = 0; line_offset = 0 }

let rec next_line_opt src =
  match src.next_raw () with
  | None -> None
  | Some (line, offset) ->
    src.line_no <- src.line_no + 1;
    src.line_offset <- offset;
    let line =
      match String.index_opt line '#' with
      | None -> line
      | Some i -> String.sub line 0 i
    in
    let line = String.trim line in
    if line = "" then next_line_opt src else Some line

let next_line src =
  match next_line_opt src with
  | None -> parse_error ~line:src.line_no "unexpected end of input"
  | Some line -> line

let line_number src = src.line_no
let line_offset src = src.line_offset

let fields line = String.split_on_char ' ' line |> List.filter (( <> ) "")

let float_field src s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> parse_error ~line:src.line_no "expected a float, got %S" s

let int_field src s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> parse_error ~line:src.line_no "expected an integer, got %S" s

let parse_instance src =
  (match next_line src with
  | "ltc-instance v1" -> ()
  | other -> parse_error ~line:src.line_no "bad header %S" other);
  let epsilon =
    match fields (next_line src) with
    | [ "epsilon"; e ] -> float_field src e
    | _ -> parse_error ~line:src.line_no "expected 'epsilon <float>'"
  in
  let accuracy =
    match fields (next_line src) with
    | [ "accuracy"; "sigmoid"; dmax ] ->
      Accuracy.Sigmoid { dmax = float_field src dmax }
    | [ "accuracy"; "historical" ] -> Accuracy.Historical
    | _ -> parse_error ~line:src.line_no "expected an accuracy line"
  in
  let scoring =
    match fields (next_line src) with
    | [ "scoring"; "hoeffding" ] -> Quality.Hoeffding
    | [ "scoring"; "sum_accuracy"; t ] ->
      Quality.Sum_accuracy { threshold = float_field src t }
    | _ -> parse_error ~line:src.line_no "expected a scoring line"
  in
  let radius =
    match fields (next_line src) with
    | [ "radius"; "none" ] -> None
    | [ "radius"; x ] -> Some (float_field src x)
    | _ -> parse_error ~line:src.line_no "expected a radius line"
  in
  let n_tasks =
    match fields (next_line src) with
    | [ "tasks"; n ] -> int_field src n
    | _ -> parse_error ~line:src.line_no "expected 'tasks <count>'"
  in
  let tasks =
    Array.init n_tasks (fun _ ->
        match fields (next_line src) with
        | [ "t"; id; x; y ] ->
          Task.make ~id:(int_field src id)
            ~loc:(Ltc_geo.Point.make ~x:(float_field src x) ~y:(float_field src y))
            ()
        | [ "t"; id; x; y; eps ] ->
          Task.make
            ~epsilon:(float_field src eps)
            ~id:(int_field src id)
            ~loc:(Ltc_geo.Point.make ~x:(float_field src x) ~y:(float_field src y))
            ()
        | _ -> parse_error ~line:src.line_no "expected a task line")
  in
  let n_workers =
    match fields (next_line src) with
    | [ "workers"; n ] -> int_field src n
    | _ -> parse_error ~line:src.line_no "expected 'workers <count>'"
  in
  let workers =
    Array.init n_workers (fun _ ->
        match fields (next_line src) with
        | [ "w"; index; x; y; accuracy; capacity ] ->
          Worker.make ~index:(int_field src index)
            ~loc:(Ltc_geo.Point.make ~x:(float_field src x) ~y:(float_field src y))
            ~accuracy:(float_field src accuracy)
            ~capacity:(int_field src capacity)
        | _ -> parse_error ~line:src.line_no "expected a worker line")
  in
  Instance.create ~accuracy ~scoring ~candidate_radius:radius ~tasks ~workers
    ~epsilon ()

let parse_arrangement src =
  (match next_line src with
  | "ltc-arrangement v1" -> ()
  | other -> parse_error ~line:src.line_no "bad header %S" other);
  let n =
    match fields (next_line src) with
    | [ "assignments"; n ] -> int_field src n
    | _ -> parse_error ~line:src.line_no "expected 'assignments <count>'"
  in
  let arrangement = ref Arrangement.empty in
  for _ = 1 to n do
    match fields (next_line src) with
    | [ "a"; worker; task ] ->
      arrangement :=
        Arrangement.add !arrangement ~worker:(int_field src worker)
          ~task:(int_field src task)
    | _ -> parse_error ~line:src.line_no "expected an assignment line"
  done;
  !arrangement

let read_instance ic = parse_instance (source_of_channel ic)
let read_arrangement ic = parse_arrangement (source_of_channel ic)

(* ------------------------------------------------------------- helpers *)

let with_file_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let with_file_in path f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let save_instance ~path instance =
  with_file_out path (fun oc -> write_instance oc instance)

let load_instance ~path = with_file_in path read_instance

let save_arrangement ~path arrangement =
  with_file_out path (fun oc -> write_arrangement oc arrangement)

let load_arrangement ~path = with_file_in path read_arrangement

let to_string_with emit x =
  let buf = Buffer.create 4096 in
  emit (Buffer.add_string buf) x;
  Buffer.contents buf

let instance_to_string instance = to_string_with emit_instance instance
let instance_of_string s = parse_instance (source_of_string s)
let arrangement_to_string a = to_string_with emit_arrangement a
let arrangement_of_string s = parse_arrangement (source_of_string s)

(* ---------------------------------------------------- snapshot payloads *)

(* Progress and Rng state are the mutable halves of a streaming session;
   the service layer embeds these blocks in its journal snapshots.  Both
   use the same round-trip float precision as instances, so a restored
   tracker answers [sum_remaining]/[max_remaining] bit-identically. *)

let emit_progress sink progress =
  let snap = Progress.snapshot progress in
  let pf fmt = Printf.ksprintf sink fmt in
  let n = Array.length snap.Progress.thresholds in
  pf "ltc-progress v1\n";
  pf "tasks %d\n" n;
  pf "sum_remaining %s\n" (fp snap.Progress.sum_remaining);
  for task = 0 to n - 1 do
    pf "p %s %s\n"
      (fp snap.Progress.thresholds.(task))
      (fp snap.Progress.scores.(task))
  done

let parse_progress src =
  (match next_line src with
  | "ltc-progress v1" -> ()
  | other -> parse_error ~line:src.line_no "bad header %S" other);
  let n =
    match fields (next_line src) with
    | [ "tasks"; n ] -> int_field src n
    | _ -> parse_error ~line:src.line_no "expected 'tasks <count>'"
  in
  let sum_remaining =
    match fields (next_line src) with
    | [ "sum_remaining"; x ] -> float_field src x
    | _ -> parse_error ~line:src.line_no "expected 'sum_remaining <float>'"
  in
  let thresholds = Array.make n 0.0 in
  let scores = Array.make n 0.0 in
  for task = 0 to n - 1 do
    match fields (next_line src) with
    | [ "p"; threshold; score ] ->
      thresholds.(task) <- float_field src threshold;
      scores.(task) <- float_field src score
    | _ -> parse_error ~line:src.line_no "expected a progress line"
  done;
  match Progress.of_snapshot { Progress.thresholds; scores; sum_remaining } with
  | progress -> progress
  | exception Invalid_argument message ->
    parse_error ~line:src.line_no "invalid progress snapshot: %s" message

let emit_rng sink rng =
  Printf.ksprintf sink "ltc-rng v1\nstate %Ld\n" (Ltc_util.Rng.state rng)

let parse_rng src =
  (match next_line src with
  | "ltc-rng v1" -> ()
  | other -> parse_error ~line:src.line_no "bad header %S" other);
  match fields (next_line src) with
  | [ "state"; s ] -> (
    match Int64.of_string_opt s with
    | Some state -> Ltc_util.Rng.of_state state
    | None -> parse_error ~line:src.line_no "expected an int64, got %S" s)
  | _ -> parse_error ~line:src.line_no "expected 'state <int64>'"

let progress_to_string p = to_string_with emit_progress p
let progress_of_string s = parse_progress (source_of_string s)
let rng_to_string rng = to_string_with emit_rng rng
let rng_of_string s = parse_rng (source_of_string s)

(* --------------------------------------------------------- binary codec *)

module Binary = struct
  (* CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the same
     checksum gzip and PNG use — computed slicing-by-8: eight derived
     tables let one loop iteration fold eight input bytes, and the state
     lives in a native [int] (every intermediate fits in 32 bits, so
     63-bit arithmetic agrees with the 32-bit definition) rather than a
     boxed [Int32].  Snapshot-sized payloads made the naive
     byte-at-a-time version the single hottest spot on the journal
     commit path. *)
  let crc_tables =
    lazy
      begin
        let t = Array.make_matrix 8 256 0 in
        for n = 0 to 255 do
          let c = ref n in
          for _ = 0 to 7 do
            c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1)
                 else !c lsr 1
          done;
          t.(0).(n) <- !c
        done;
        (* t.(k) advances a byte through the CRC k extra positions:
           t.(k).(n) = crc-shift-by-one-byte of t.(k-1).(n). *)
        for k = 1 to 7 do
          for n = 0 to 255 do
            let p = t.(k - 1).(n) in
            t.(k).(n) <- (p lsr 8) lxor t.(0).(p land 0xff)
          done
        done;
        t
      end

  let crc32 s =
    let t = Lazy.force crc_tables in
    let t0 = t.(0) and t1 = t.(1) and t2 = t.(2) and t3 = t.(3)
    and t4 = t.(4) and t5 = t.(5) and t6 = t.(6) and t7 = t.(7) in
    let byte k = Char.code (String.unsafe_get s k) in
    let len = String.length s in
    let c = ref 0xFFFFFFFF in
    let i = ref 0 in
    while !i + 8 <= len do
      let k = !i in
      let lo =
        !c
        lxor (byte k
              lor (byte (k + 1) lsl 8)
              lor (byte (k + 2) lsl 16)
              lor (byte (k + 3) lsl 24))
      in
      let hi =
        byte (k + 4)
        lor (byte (k + 5) lsl 8)
        lor (byte (k + 6) lsl 16)
        lor (byte (k + 7) lsl 24)
      in
      c :=
        Array.unsafe_get t7 (lo land 0xff)
        lxor Array.unsafe_get t6 ((lo lsr 8) land 0xff)
        lxor Array.unsafe_get t5 ((lo lsr 16) land 0xff)
        lxor Array.unsafe_get t4 ((lo lsr 24) land 0xff)
        lxor Array.unsafe_get t3 (hi land 0xff)
        lxor Array.unsafe_get t2 ((hi lsr 8) land 0xff)
        lxor Array.unsafe_get t1 ((hi lsr 16) land 0xff)
        lxor Array.unsafe_get t0 ((hi lsr 24) land 0xff);
      i := k + 8
    done;
    while !i < len do
      c := Array.unsafe_get t0 ((!c lxor byte !i) land 0xff) lxor (!c lsr 8);
      incr i
    done;
    Int32.of_int (lnot !c land 0xFFFFFFFF)

  (* ------------------------------------------------------- primitives *)

  (* Binary decode errors reuse Parse_error with line 0: framing has
     already located the record by byte offset, so the line field carries
     no information here. *)
  let bin_error fmt = parse_error ~line:0 fmt

  let add_u8 buf n = Buffer.add_char buf (Char.chr (n land 0xff))

  (* Unsigned LEB128; every integer in a journal record (indices, counts,
     capacities, task ids) is non-negative. *)
  let add_varint buf n =
    if n < 0 then invalid_arg "Serialize.Binary.add_varint: negative";
    let rec go n =
      if n < 0x80 then Buffer.add_char buf (Char.chr n)
      else begin
        Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
        go (n lsr 7)
      end
    in
    go n

  let add_f64 buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)
  let add_i64 buf n = Buffer.add_int64_le buf n

  type cursor = { data : string; mutable pos : int }

  let cursor data = { data; pos = 0 }
  let at_end c = c.pos >= String.length c.data

  let u8 c =
    if at_end c then bin_error "unexpected end of binary payload";
    let b = Char.code c.data.[c.pos] in
    c.pos <- c.pos + 1;
    b

  let varint c =
    let rec go shift acc =
      if shift > 62 then bin_error "varint overflows the integer range";
      let b = u8 c in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let i64 c =
    if c.pos + 8 > String.length c.data then
      bin_error "unexpected end of binary payload";
    let v = String.get_int64_le c.data c.pos in
    c.pos <- c.pos + 8;
    v

  let f64 c = Int64.float_of_bits (i64 c)

  (* ---------------------------------------------------------- records *)

  type event = {
    e_worker : Worker.t;
    e_degraded : bool;
    e_assigned : int list;
    e_answered : int list;
  }

  type snapshot = {
    s_consumed : int;
    s_policy : int64;
    s_noshow : int64;
    s_progress : Progress.t;
    s_arrangement : Arrangement.t;
  }

  type record = Event of event | Snapshot of snapshot

  let tag_event = Char.code 'E'
  let tag_snapshot = Char.code 'S'

  let add_int_list buf l =
    add_varint buf (List.length l);
    List.iter (add_varint buf) l

  let read_int_list c =
    let n = varint c in
    if n > String.length c.data then
      bin_error "list length %d exceeds the payload" n;
    List.init n (fun _ -> varint c)

  let emit_record buf = function
    | Event e ->
      let w = e.e_worker in
      add_u8 buf tag_event;
      add_varint buf w.Worker.index;
      add_f64 buf w.Worker.loc.Ltc_geo.Point.x;
      add_f64 buf w.Worker.loc.Ltc_geo.Point.y;
      add_f64 buf w.Worker.accuracy;
      add_varint buf w.Worker.capacity;
      add_u8 buf (if e.e_degraded then 1 else 0);
      add_int_list buf e.e_assigned;
      add_int_list buf e.e_answered
    | Snapshot s ->
      add_u8 buf tag_snapshot;
      add_varint buf s.s_consumed;
      add_i64 buf s.s_policy;
      add_i64 buf s.s_noshow;
      let snap = Progress.snapshot s.s_progress in
      let n = Array.length snap.Progress.thresholds in
      add_varint buf n;
      add_f64 buf snap.Progress.sum_remaining;
      for task = 0 to n - 1 do
        add_f64 buf snap.Progress.thresholds.(task);
        add_f64 buf snap.Progress.scores.(task)
      done;
      let assignments = Arrangement.to_list s.s_arrangement in
      add_varint buf (List.length assignments);
      List.iter
        (fun (a : Arrangement.assignment) ->
          add_varint buf a.Arrangement.worker;
          add_varint buf a.Arrangement.task)
        assignments

  let record_of_payload payload =
    let c = cursor payload in
    let record =
      match u8 c with
      | tag when tag = tag_event ->
        let index = varint c in
        let x = f64 c in
        let y = f64 c in
        let accuracy = f64 c in
        let capacity = varint c in
        let e_degraded =
          match u8 c with
          | 0 -> false
          | 1 -> true
          | b -> bin_error "bad degraded flag byte 0x%02x" b
        in
        let e_assigned = read_int_list c in
        let e_answered = read_int_list c in
        let e_worker =
          try
            Worker.make ~index
              ~loc:(Ltc_geo.Point.make ~x ~y)
              ~accuracy ~capacity
          with Invalid_argument m -> bin_error "invalid worker: %s" m
        in
        Event { e_worker; e_degraded; e_assigned; e_answered }
      | tag when tag = tag_snapshot ->
        let s_consumed = varint c in
        let s_policy = i64 c in
        let s_noshow = i64 c in
        let n = varint c in
        if n > String.length payload then
          bin_error "snapshot task count %d exceeds the payload" n;
        let sum_remaining = f64 c in
        let thresholds = Array.make n 0.0 in
        let scores = Array.make n 0.0 in
        for task = 0 to n - 1 do
          thresholds.(task) <- f64 c;
          scores.(task) <- f64 c
        done;
        let s_progress =
          match
            Progress.of_snapshot { Progress.thresholds; scores; sum_remaining }
          with
          | p -> p
          | exception Invalid_argument m ->
            bin_error "invalid progress snapshot: %s" m
        in
        let n_assignments = varint c in
        if n_assignments > String.length payload then
          bin_error "assignment count %d exceeds the payload" n_assignments;
        let s_arrangement = ref Arrangement.empty in
        for _ = 1 to n_assignments do
          let worker = varint c in
          let task = varint c in
          s_arrangement := Arrangement.add !s_arrangement ~worker ~task
        done;
        Snapshot
          {
            s_consumed;
            s_policy;
            s_noshow;
            s_progress;
            s_arrangement = !s_arrangement;
          }
      | tag -> bin_error "unknown record tag 0x%02x" tag
    in
    if not (at_end c) then
      bin_error "%d trailing bytes after the record"
        (String.length payload - c.pos);
    record

  (* ---------------------------------------------------------- framing *)

  (* Frame layout: [u32le payload length][u32le crc32(payload)][payload].
     The length prefix makes replay a streaming read with no line
     splitting; the CRC separates interior corruption (a complete frame
     whose bytes are wrong) from a torn tail (a frame the crash cut
     short, necessarily at end of file). *)

  let max_frame_bytes = 1 lsl 26 (* 64 MiB — far beyond any real record *)

  let add_frame buf payload =
    if String.length payload > max_frame_bytes then
      invalid_arg "Serialize.Binary.add_frame: payload too large";
    Buffer.add_int32_le buf (Int32.of_int (String.length payload));
    Buffer.add_int32_le buf (crc32 payload);
    Buffer.add_string buf payload

  let add_record_frame buf record =
    let scratch = Buffer.create 256 in
    emit_record scratch record;
    add_frame buf (Buffer.contents scratch)

  type frame =
    | Frame of string  (** complete, CRC-verified payload *)
    | Eof  (** clean end of input, on a frame boundary *)
    | Torn  (** incomplete frame at end of input — crash damage *)
    | Invalid of string  (** complete frame with wrong bytes — corruption *)

  (* [input ic] returns 0 only at end of file, so a short read below
     really is a torn tail, not a transient condition. *)
  let read_exact ic buf len =
    let rec go off =
      if off >= len then off
      else
        match input ic buf off (len - off) with
        | 0 -> off
        | n -> go (off + n)
    in
    go 0

  let input_frame ic =
    let header = Bytes.create 8 in
    match read_exact ic header 8 with
    | 0 -> Eof
    | n when n < 8 -> Torn
    | _ ->
      let len = Int32.to_int (Bytes.get_int32_le header 0) in
      let expected = Bytes.get_int32_le header 4 in
      if len < 0 || len > max_frame_bytes then
        Invalid (Printf.sprintf "implausible frame length %d" len)
      else begin
        let payload = Bytes.create len in
        if read_exact ic payload len < len then Torn
        else begin
          let payload = Bytes.unsafe_to_string payload in
          let actual = crc32 payload in
          if actual <> expected then
            Invalid
              (Printf.sprintf "CRC mismatch: stored %08lx, computed %08lx"
                 expected actual)
          else Frame payload
        end
      end

  let frame_of_string s pos =
    if pos >= String.length s then Eof
    else if pos + 8 > String.length s then Torn
    else
      let len = Int32.to_int (String.get_int32_le s pos) in
      let expected = String.get_int32_le s (pos + 4) in
      if len < 0 || len > max_frame_bytes then
        Invalid (Printf.sprintf "implausible frame length %d" len)
      else if pos + 8 + len > String.length s then Torn
      else
        let payload = String.sub s (pos + 8) len in
        let actual = crc32 payload in
        if actual <> expected then
          Invalid
            (Printf.sprintf "CRC mismatch: stored %08lx, computed %08lx"
               expected actual)
        else Frame payload
end
