(** Mutable completion state: the paper's accumulator array [S].

    [S\[t\]] is the score task [t] has accumulated so far; a task is complete
    once [S\[t\] >= threshold].  Beyond the plain array the structure
    maintains, incrementally, the two aggregates AAM consults on every
    arrival (Algorithm 3 lines 4-5):

    - [sum_remaining = sum over incomplete t of (threshold - S\[t\])], and
    - [max_remaining], served by a lazily-pruned max-heap so a query costs
      amortised O(log |T|) instead of the paper's O(|T|) rescan. *)

type t

val create : threshold:float -> n_tasks:int -> t
(** All accumulators at 0, every task sharing one threshold (the paper's
    constant-epsilon platform).  @raise Invalid_argument when
    [threshold <= 0] or [n_tasks < 0]. *)

val create_per_task : thresholds:float array -> t
(** Per-task thresholds (Definition 1's general [t = <l_t, epsilon>] form);
    the array is copied.  @raise Invalid_argument on a non-positive
    threshold. *)

val threshold_of : t -> int -> float
(** The given task's completion threshold. *)

val n_tasks : t -> int

val accumulated : t -> int -> float
(** Current [S\[t\]]. *)

val remaining : t -> int -> float
(** [max 0 (threshold - S[t])]. *)

val is_complete : t -> int -> bool
val all_complete : t -> bool

val incomplete_count : t -> int

val record : t -> task:int -> score:float -> unit
(** Accumulate [score] onto task [task].  [score] must be [>= 0]. *)

val sum_remaining : t -> float
(** Total outstanding score over incomplete tasks. *)

val max_remaining : t -> float
(** Largest outstanding score over incomplete tasks; [0] when all are
    complete. *)

val iter_incomplete : t -> (int -> unit) -> unit
(** Every incomplete task id, in {b ascending id order} — a guarantee, not
    an accident: MCF-LTC numbers its batch network's task nodes straight
    off this iteration, so the ordering pins down the arc layout (and with
    it the solver's tie-breaking) deterministically.  The callback must not
    call {!record}. *)

val fold_incomplete : t -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Fold over {!iter_incomplete}, same ascending-id order. *)

val memory_words : t -> int

(** {2 Snapshots}

    The service layer checkpoints progress state into its journal and must
    rebuild it bit-for-bit: the snapshot therefore carries the {e raw}
    running [sum_remaining] (accumulated one arrival at a time, so float
    summation order matters to AAM) rather than recomputing it from the
    accumulator array. *)

type snapshot = {
  thresholds : float array;
  scores : float array;  (** the accumulator array [S], one slot per task *)
  sum_remaining : float;  (** raw running total, not clamped at 0 *)
}

val snapshot : t -> snapshot
(** Immutable copy of the observable state (arrays are fresh). *)

val of_snapshot : snapshot -> t
(** Rebuild a progress tracker equivalent to the one {!snapshot} captured:
    same accumulators, same incomplete set in ascending-id order, same
    [sum_remaining] and [max_remaining] answers.  @raise Invalid_argument
    on length mismatch, non-positive thresholds or negative scores. *)
