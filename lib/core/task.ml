type t = {
  id : int;
  loc : Ltc_geo.Point.t;
  epsilon : float option;
}

let make ?epsilon ~id ~loc () =
  (match epsilon with
  | Some e when e <= 0.0 || e >= 1.0 ->
    invalid_arg "Task.make: epsilon must lie in (0, 1)"
  | Some _ | None -> ());
  { id; loc; epsilon }

let pp fmt t =
  match t.epsilon with
  | None -> Format.fprintf fmt "t%d@%a" t.id Ltc_geo.Point.pp t.loc
  | Some e -> Format.fprintf fmt "t%d@%a(eps=%g)" t.id Ltc_geo.Point.pp t.loc e

type answer = Yes | No

let answer_sign = function Yes -> 1.0 | No -> -1.0
let negate = function Yes -> No | No -> Yes
let answer_equal a b = match (a, b) with
  | Yes, Yes | No, No -> true
  | Yes, No | No, Yes -> false
