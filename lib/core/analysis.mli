(** Post-hoc analysis of arrangements.

    The paper reports a single number per run (the latency); a platform
    operator cares about more: how evenly work spreads over workers, how
    far workers would travel, how much quality margin tasks ended up with.
    This module computes those summaries from an arrangement — used by the
    CLI's [--report] flag and the examples, and handy when comparing
    algorithms beyond the headline metric. *)

type t = {
  assignments : int;
  workers_used : int;          (** workers with at least one task *)
  latency : int;
  (* Worker-side *)
  load_mean : float;           (** tasks per recruited worker *)
  load_max : int;
  load_gini : float;
      (** Gini coefficient of per-recruited-worker load: 0 = perfectly
          even, 1 = one worker does everything *)
  travel_mean : float;         (** mean worker-to-task distance *)
  travel_max : float;
  (* Task-side *)
  votes_mean : float;          (** workers per task *)
  votes_min : int;
  votes_max : int;
  margin_mean : float;
      (** mean accumulated score above the threshold (over-provisioning) *)
  margin_min : float;
  error_bound_worst : float;
      (** worst per-task Hoeffding bound [exp(-S_t / 2)] under Hoeffding
          scoring (meaningless for other scorings; still reported) *)
}

val of_arrangement : Instance.t -> Arrangement.t -> t
(** Summarise a (possibly incomplete) arrangement.  O(assignments +
    |T| + |W|). *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable report. *)
