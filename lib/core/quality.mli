(** Quality model: completion thresholds and result aggregation
    (Definition 4 and the Hoeffding argument below it).

    A task assigned to workers [W_t] is decided by weighted majority voting
    with weights [2 Acc(w,t) - 1].  By Hoeffding's inequality, when the
    accumulated [Acc* = (2 Acc - 1)^2] over [W_t] reaches
    [delta = 2 ln(1/epsilon)], the voting error probability is below
    [epsilon].  The {!scoring} value makes the per-assignment score and the
    completion threshold pluggable, which lets the test-suite reproduce the
    paper's Example 1 (raw accuracy sum vs. threshold 2.92) alongside the
    default Hoeffding model. *)

type scoring =
  | Hoeffding
      (** score [Acc*(w,t)]; threshold [delta epsilon]. *)
  | Sum_accuracy of { threshold : float }
      (** score [Acc(w,t)]; fixed threshold (Example 1 uses 2.92). *)

val delta : epsilon:float -> float
(** [2 ln(1/epsilon)].  @raise Invalid_argument unless [0 < epsilon < 1]. *)

val threshold : scoring -> epsilon:float -> float
(** Accumulated score a task must reach to count as completed. *)

val score : scoring -> Accuracy.t -> Worker.t -> Task.t -> float
(** Contribution of one assignment towards the task's threshold. *)

val vote_weight : Accuracy.t -> Worker.t -> Task.t -> float
(** The voting weight [2 Acc(w,t) - 1] of Definition 4. *)

val majority :
  (float * Task.answer) list -> Task.answer option
(** [majority votes] is the weighted majority decision over
    [(weight, answer)] pairs; [None] on an empty list or an exact tie. *)

val hoeffding_error_bound : acc_star_sum:float -> float
(** The Hoeffding bound [exp(-acc_star_sum / 2)] on the voting error
    probability; [<= epsilon] exactly when [acc_star_sum >= delta]. *)

val pp_scoring : Format.formatter -> scoring -> unit
