(** Truth inference: estimating historical accuracies from raw answers.

    The LTC model assumes every worker arrives with a known historical
    accuracy [p_w] (Definition 2).  On a real platform that number must be
    {e inferred} from the worker's past answers, without ground truth —
    the "Truth Inference" line of work the paper cites in Sec. VI-A.  This
    module implements the classic one-coin Dawid–Skene EM for binary tasks:

    - E-step: posterior [q_t = P(truth_t = Yes | answers, p)] from the
      current accuracy estimates;
    - M-step: [p_w] = expected fraction of [w]'s answers that agree with
      the posterior truths.

    Accuracies are clamped into [\[0.51, 0.99\]]: the one-coin likelihood is
    symmetric under flipping all labels and all accuracies below ½; anchoring
    workers as better-than-coin selects the intended mode (platforms drop
    sub-coin workers anyway — the paper's 0.66 spam rule).

    The [ext-inference] bench closes the loop: estimate accuracies from [h]
    historical answers per worker, hand the {e estimates} to the LTC
    algorithms, and measure how much task quality and latency degrade
    compared to running with the true [p_w]. *)

type observation = {
  worker : int;  (** 1-based worker index *)
  task : int;    (** 0-based task id *)
  answer : Task.answer;
}

type result = {
  accuracies : float array;
      (** estimated [p_w], indexed by [worker - 1]; workers with no
          observations keep the prior *)
  posteriors : float array;
      (** [P(truth_t = Yes)] per task; 0.5 for unobserved tasks *)
  labels : Task.answer option array;
      (** posterior argmax; [None] for unobserved tasks or exact ties *)
  iterations : int;
  converged : bool;
}

val run :
  ?max_iterations:int ->
  ?tolerance:float ->
  ?prior_accuracy:float ->
  n_workers:int ->
  n_tasks:int ->
  observation list ->
  result
(** Defaults: 100 iterations max, tolerance 1e-6 (max absolute accuracy
    change), prior accuracy 0.75.  @raise Invalid_argument on out-of-range
    observations or non-positive dimensions with observations present. *)

val majority_baseline :
  n_workers:int -> n_tasks:int -> observation list -> result
(** Unweighted majority voting with accuracies scored against the majority
    labels — the baseline EM should beat; same result shape
    ([iterations = 0]). *)

(** {2 Two-coin model}

    The full Dawid–Skene binary model: a worker has separate {e
    sensitivity} [alpha = P(says Yes | truth Yes)] and {e specificity}
    [beta = P(says No | truth No)].  Captures asymmetric answerers ("says
    Yes to everything") that the one-coin model averages away; LTC's [p_w]
    corresponds to the balanced accuracy [(alpha + beta) / 2]. *)

type two_coin_result = {
  sensitivities : float array;  (** alpha per worker *)
  specificities : float array;  (** beta per worker *)
  tc_accuracies : float array;  (** balanced accuracy, the LTC [p_w] *)
  tc_posteriors : float array;
  tc_labels : Task.answer option array;
  tc_iterations : int;
  tc_converged : bool;
  prevalence : float;  (** estimated P(truth = Yes) *)
}

val run_two_coin :
  ?max_iterations:int ->
  ?tolerance:float ->
  ?prior_accuracy:float ->
  n_workers:int ->
  n_tasks:int ->
  observation list ->
  two_coin_result
(** Same contract as {!run}; parameters are clamped into [\[0.51, 0.99\]]
    (the identifiability anchor — flipping all labels swaps
    [alpha <-> 1 - beta]). *)
