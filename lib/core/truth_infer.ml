type observation = {
  worker : int;
  task : int;
  answer : Task.answer;
}

type result = {
  accuracies : float array;
  posteriors : float array;
  labels : Task.answer option array;
  iterations : int;
  converged : bool;
}

let clamp_accuracy p = Float.max 0.51 (Float.min 0.99 p)

let validate ~n_workers ~n_tasks observations =
  List.iter
    (fun o ->
      if o.worker < 1 || o.worker > n_workers then
        invalid_arg "Truth_infer: worker index out of range";
      if o.task < 0 || o.task >= n_tasks then
        invalid_arg "Truth_infer: task id out of range")
    observations

(* Group observations by task once; each entry is (worker-1, is_yes). *)
let by_task ~n_tasks observations =
  let per_task = Array.make (max n_tasks 1) [] in
  List.iter
    (fun o ->
      per_task.(o.task) <-
        (o.worker - 1, Task.answer_equal o.answer Task.Yes) :: per_task.(o.task))
    observations;
  per_task

let labels_of_posteriors posteriors per_task =
  Array.mapi
    (fun task q ->
      if per_task.(task) = [] then None
      else if q > 0.5 then Some Task.Yes
      else if q < 0.5 then Some Task.No
      else None)
    posteriors

(* E-step for one task: posterior of Yes under the one-coin model with a
   flat truth prior.  Log-space for numeric safety on many-vote tasks. *)
let posterior_yes accuracies votes =
  match votes with
  | [] -> 0.5
  | _ ->
    let log_yes = ref 0.0 and log_no = ref 0.0 in
    List.iter
      (fun (worker, is_yes) ->
        let p = accuracies.(worker) in
        if is_yes then begin
          log_yes := !log_yes +. log p;
          log_no := !log_no +. log (1.0 -. p)
        end
        else begin
          log_yes := !log_yes +. log (1.0 -. p);
          log_no := !log_no +. log p
        end)
      votes;
    let m = Float.max !log_yes !log_no in
    let yes = exp (!log_yes -. m) and no = exp (!log_no -. m) in
    yes /. (yes +. no)

let run ?(max_iterations = 100) ?(tolerance = 1e-6) ?(prior_accuracy = 0.75)
    ~n_workers ~n_tasks observations =
  if max_iterations < 1 then invalid_arg "Truth_infer.run: max_iterations < 1";
  validate ~n_workers ~n_tasks observations;
  let per_task = by_task ~n_tasks observations in
  let accuracies = Array.make (max n_workers 1) (clamp_accuracy prior_accuracy) in
  let posteriors = Array.make (max n_tasks 1) 0.5 in
  (* Per-worker accumulators for the M-step. *)
  let agreement = Array.make (max n_workers 1) 0.0 in
  let answered = Array.make (max n_workers 1) 0 in
  List.iter (fun o -> answered.(o.worker - 1) <- answered.(o.worker - 1) + 1)
    observations;
  let iterations = ref 0 in
  let converged = ref false in
  while (not !converged) && !iterations < max_iterations do
    incr iterations;
    (* E-step. *)
    for task = 0 to n_tasks - 1 do
      posteriors.(task) <- posterior_yes accuracies per_task.(task)
    done;
    (* M-step: expected agreement of each worker with the posterior. *)
    Array.fill agreement 0 (Array.length agreement) 0.0;
    Array.iteri
      (fun task votes ->
        let q = posteriors.(task) in
        ignore task;
        List.iter
          (fun (worker, is_yes) ->
            agreement.(worker) <-
              agreement.(worker) +. (if is_yes then q else 1.0 -. q))
          votes)
      per_task;
    let delta = ref 0.0 in
    for worker = 0 to n_workers - 1 do
      if answered.(worker) > 0 then begin
        let updated =
          clamp_accuracy (agreement.(worker) /. float_of_int answered.(worker))
        in
        delta := Float.max !delta (Float.abs (updated -. accuracies.(worker)));
        accuracies.(worker) <- updated
      end
    done;
    if !delta < tolerance then converged := true
  done;
  {
    accuracies = Array.sub accuracies 0 (max n_workers 1);
    posteriors = Array.sub posteriors 0 (max n_tasks 1);
    labels = labels_of_posteriors posteriors per_task;
    iterations = !iterations;
    converged = !converged;
  }

type two_coin_result = {
  sensitivities : float array;
  specificities : float array;
  tc_accuracies : float array;
  tc_posteriors : float array;
  tc_labels : Task.answer option array;
  tc_iterations : int;
  tc_converged : bool;
  prevalence : float;
}

let run_two_coin ?(max_iterations = 100) ?(tolerance = 1e-6)
    ?(prior_accuracy = 0.75) ~n_workers ~n_tasks observations =
  if max_iterations < 1 then
    invalid_arg "Truth_infer.run_two_coin: max_iterations < 1";
  validate ~n_workers ~n_tasks observations;
  let per_task = by_task ~n_tasks observations in
  let p0 = clamp_accuracy prior_accuracy in
  let alpha = Array.make (max n_workers 1) p0 in
  let beta = Array.make (max n_workers 1) p0 in
  let posteriors = Array.make (max n_tasks 1) 0.5 in
  let prevalence = ref 0.5 in
  (* M-step accumulators. *)
  let yes_mass = Array.make (max n_workers 1) 0.0 in
  let yes_total = Array.make (max n_workers 1) 0.0 in
  let no_mass = Array.make (max n_workers 1) 0.0 in
  let no_total = Array.make (max n_workers 1) 0.0 in
  let iterations = ref 0 in
  let converged = ref false in
  while (not !converged) && !iterations < max_iterations do
    incr iterations;
    (* E-step: posterior truth per task under the current parameters. *)
    for task = 0 to n_tasks - 1 do
      match per_task.(task) with
      | [] -> posteriors.(task) <- !prevalence
      | votes ->
        let log_yes = ref (log !prevalence) in
        let log_no = ref (log (1.0 -. !prevalence)) in
        List.iter
          (fun (worker, is_yes) ->
            if is_yes then begin
              log_yes := !log_yes +. log alpha.(worker);
              log_no := !log_no +. log (1.0 -. beta.(worker))
            end
            else begin
              log_yes := !log_yes +. log (1.0 -. alpha.(worker));
              log_no := !log_no +. log beta.(worker)
            end)
          votes;
        let m = Float.max !log_yes !log_no in
        let yes = exp (!log_yes -. m) and no = exp (!log_no -. m) in
        posteriors.(task) <- yes /. (yes +. no)
    done;
    (* M-step. *)
    Array.fill yes_mass 0 (Array.length yes_mass) 0.0;
    Array.fill yes_total 0 (Array.length yes_total) 0.0;
    Array.fill no_mass 0 (Array.length no_mass) 0.0;
    Array.fill no_total 0 (Array.length no_total) 0.0;
    let prevalence_sum = ref 0.0 in
    let observed_tasks = ref 0 in
    Array.iteri
      (fun task votes ->
        if votes <> [] then begin
          incr observed_tasks;
          prevalence_sum := !prevalence_sum +. posteriors.(task)
        end;
        let q = posteriors.(task) in
        List.iter
          (fun (worker, is_yes) ->
            yes_total.(worker) <- yes_total.(worker) +. q;
            no_total.(worker) <- no_total.(worker) +. (1.0 -. q);
            if is_yes then yes_mass.(worker) <- yes_mass.(worker) +. q
            else no_mass.(worker) <- no_mass.(worker) +. (1.0 -. q))
          votes)
      per_task;
    let delta = ref 0.0 in
    for worker = 0 to n_workers - 1 do
      if yes_total.(worker) > 1e-12 then begin
        let a = clamp_accuracy (yes_mass.(worker) /. yes_total.(worker)) in
        delta := Float.max !delta (Float.abs (a -. alpha.(worker)));
        alpha.(worker) <- a
      end;
      if no_total.(worker) > 1e-12 then begin
        let b = clamp_accuracy (no_mass.(worker) /. no_total.(worker)) in
        delta := Float.max !delta (Float.abs (b -. beta.(worker)));
        beta.(worker) <- b
      end
    done;
    if !observed_tasks > 0 then
      prevalence :=
        Float.max 0.05
          (Float.min 0.95 (!prevalence_sum /. float_of_int !observed_tasks));
    if !delta < tolerance then converged := true
  done;
  {
    sensitivities = Array.sub alpha 0 (max n_workers 1);
    specificities = Array.sub beta 0 (max n_workers 1);
    tc_accuracies =
      Array.init (max n_workers 1) (fun w -> (alpha.(w) +. beta.(w)) /. 2.0);
    tc_posteriors = Array.sub posteriors 0 (max n_tasks 1);
    tc_labels = labels_of_posteriors posteriors per_task;
    tc_iterations = !iterations;
    tc_converged = !converged;
    prevalence = !prevalence;
  }

let majority_baseline ~n_workers ~n_tasks observations =
  validate ~n_workers ~n_tasks observations;
  let per_task = by_task ~n_tasks observations in
  let posteriors =
    Array.map
      (fun votes ->
        match votes with
        | [] -> 0.5
        | _ ->
          let yes = List.length (List.filter snd votes) in
          let total = List.length votes in
          float_of_int yes /. float_of_int total)
      per_task
  in
  let labels = labels_of_posteriors posteriors per_task in
  let agreement = Array.make (max n_workers 1) 0 in
  let answered = Array.make (max n_workers 1) 0 in
  Array.iteri
    (fun task votes ->
      List.iter
        (fun (worker, is_yes) ->
          match labels.(task) with
          | None -> ()
          | Some label ->
            answered.(worker) <- answered.(worker) + 1;
            if Task.answer_equal label (if is_yes then Task.Yes else Task.No)
            then agreement.(worker) <- agreement.(worker) + 1)
        votes)
    per_task;
  let accuracies =
    Array.init (max n_workers 1) (fun worker ->
        if answered.(worker) = 0 then 0.75
        else
          clamp_accuracy
            (float_of_int agreement.(worker) /. float_of_int answered.(worker)))
  in
  { accuracies; posteriors; labels; iterations = 0; converged = true }
