(** Task-worker arrangements [M] and their validation.

    An arrangement is the output of every LTC algorithm: the ordered list of
    irrevocable [(worker, task)] assignments.  {!latency} is the paper's
    objective [MinMax(M) = max_t max_{w in W_t} o_w] — the arrival index of
    the last recruited worker. *)

type assignment = { worker : int; task : int }
(** [worker] is the 1-based arrival index, [task] the 0-based task id. *)

type t

val empty : t

val add : t -> worker:int -> task:int -> t
(** Appends an assignment (persistent; O(1)). *)

val size : t -> int
(** Total number of assignments. *)

val latency : t -> int
(** Max worker arrival index over all assignments; [0] when empty. *)

val to_list : t -> assignment list
(** Assignments in insertion order. *)

val tasks_of_worker : t -> int -> int list
(** Ascending task ids assigned to a worker. O(size). *)

val workers_of_task : t -> int -> int list
(** Ascending worker indexes assigned to a task. O(size). *)

type violation =
  | Worker_out_of_range of assignment
  | Task_out_of_range of assignment
  | Duplicate_assignment of assignment
  | Capacity_exceeded of { worker : int; assigned : int; capacity : int }
  | Not_a_candidate of assignment
      (** the task is outside the worker's candidate radius *)
  | Task_incomplete of { task : int; accumulated : float; threshold : float }

val validate : Instance.t -> t -> (unit, violation list) result
(** Checks every constraint of Definition 6: well-formedness, the capacity
    constraint, the candidate rule and the error-rate (completion)
    constraint.  An arrangement returned by any algorithm in {!Ltc_algo}
    must validate whenever enough workers were supplied. *)

val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> t -> unit
