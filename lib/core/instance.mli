(** A full LTC problem instance (Definitions 6-7).

    Bundles the task set, the worker arrival sequence, the tolerable error
    rate, the accuracy model, the scoring rule and the candidate rule.  The
    same value describes both scenarios: offline algorithms may read
    [workers] in full, online ones must consume it in order (enforced by
    {!Ltc_algo.Engine}, not here).

    {b Candidate rule.}  When [candidate_radius] is set (the default
    workloads use [dmax]), a worker may only be assigned tasks within that
    Euclidean distance of their check-in — the paper's "questions about the
    nearby POIs".  Beyond [dmax] the sigmoid model predicts [Acc < p_w/2 <=
    0.5], i.e. a worse-than-coin-flip answer whose Hoeffding weight would be
    spurious.  Candidate lookup is served by a {!Ltc_geo.Grid_index} built
    once per instance. *)

type t = private {
  tasks : Task.t array;
  workers : Worker.t array;  (** in arrival order; [workers.(i).index = i+1] *)
  epsilon : float;
  accuracy : Accuracy.t;
  scoring : Quality.scoring;
  candidate_radius : float option;
  task_index : Ltc_geo.Grid_index.t option;
}

val create :
  ?accuracy:Accuracy.t ->
  ?scoring:Quality.scoring ->
  ?candidate_radius:float option ->
  tasks:Task.t array ->
  workers:Worker.t array ->
  epsilon:float ->
  unit ->
  t
(** Defaults: [accuracy = Sigmoid {dmax = 30.}], [scoring = Hoeffding],
    [candidate_radius = Some dmax] (where [dmax] is taken from the accuracy
    model when it is a sigmoid, otherwise no radius).

    @raise Invalid_argument when [epsilon] is outside (0,1), a task id does
    not match its position, or workers are not in 1-based contiguous arrival
    order. *)

val task_count : t -> int
val worker_count : t -> int

val threshold : t -> float
(** The instance-wide completion threshold ([delta epsilon] under Hoeffding
    scoring) — what tasks without a per-task override must accumulate. *)

val threshold_of : t -> int -> float
(** [threshold_of t task_id]: the task's own threshold, honouring its
    [Task.epsilon] override under Hoeffding scoring (fixed-threshold
    scorings ignore per-task rates). *)

val thresholds : t -> float array
(** All per-task thresholds, indexed by task id (fresh array). *)

val score : t -> Worker.t -> int -> float
(** [score t w task_id]: contribution of assigning task [task_id] to [w]. *)

val acc : t -> Worker.t -> int -> float
(** Predicted accuracy [Acc(w, task_id)]. *)

val candidates : t -> Worker.t -> int list
(** Task ids assignable to [w], ascending (all tasks when no radius). *)

val iter_candidates : t -> Worker.t -> (int -> unit) -> unit
(** Like {!candidates} but without materialising the list; ascending order
    is NOT guaranteed here (grid cells are visited row-major). *)

val iter_candidates_sorted : t -> Worker.t -> (int -> unit) -> unit
(** {!candidates} order ({e ascending} task id) without the list: grid cell
    runs are merged on the fly.  This is the per-arrival path of the online
    policies — their documented prefer-the-lower-task-index tie-break falls
    out of the iteration order. *)

val count_candidates : t -> Worker.t -> int

val memory_words : t -> int
(** Approximate footprint of the instance data (tasks, workers, index); the
    workload-side baseline shared by every algorithm. *)

val pp : Format.formatter -> t -> unit
(** One-line summary (cardinalities and parameters). *)
