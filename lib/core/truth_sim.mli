(** Monte-Carlo validation of the quality model (Definition 4).

    The paper's guarantee is statistical: when the accumulated
    [Acc* = (2 Acc - 1)^2] of a task reaches [delta = 2 ln(1/epsilon)],
    weighted majority voting errs with probability at most [epsilon]
    (Hoeffding).  This simulator draws a ground truth per task, samples each
    assigned worker's answer (correct with probability [Acc(w,t)]), applies
    the weighted vote of Definition 4 and reports empirical error rates —
    used by the [hoeffding] bench and the property tests to check that the
    engine's completion rule really delivers the promised accuracy. *)

type task_report = {
  task : int;
  votes : int;            (** number of workers assigned to the task *)
  acc_star_sum : float;   (** accumulated Hoeffding weight *)
  error_rate : float;     (** empirical voting error over all trials *)
}

type report = {
  trials : int;
  epsilon : float;        (** the bound the instance promises *)
  tasks : task_report array;
  mean_error : float;
  max_error : float;
}

val run :
  ?trials:int ->
  ?actual_accuracy:(Worker.t -> Task.t -> float) ->
  Ltc_util.Rng.t ->
  Instance.t ->
  Arrangement.t ->
  report
(** [run rng instance arrangement] simulates [trials] (default 1000)
    independent question/answer rounds.  Ties in the vote count as errors
    (conservative).  Tasks with no assigned workers have error rate 1.

    [actual_accuracy] decouples reality from belief: answers are sampled
    with this probability of correctness while vote weights still use the
    instance's (believed) accuracy model.  Defaults to the instance model
    (belief = reality, the paper's setting).  Use it to measure what
    happens when the platform's [p_w] estimates are wrong — see the
    [ext-inference] bench. *)

val pp : Format.formatter -> report -> unit
