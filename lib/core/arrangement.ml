type assignment = { worker : int; task : int }

type t = {
  rev_assignments : assignment list;
  size : int;
  latency : int;
}

let empty = { rev_assignments = []; size = 0; latency = 0 }

let add t ~worker ~task =
  {
    rev_assignments = { worker; task } :: t.rev_assignments;
    size = t.size + 1;
    latency = max t.latency worker;
  }

let size t = t.size
let latency t = t.latency
let to_list t = List.rev t.rev_assignments

let tasks_of_worker t worker =
  List.sort compare
    (List.filter_map
       (fun a -> if a.worker = worker then Some a.task else None)
       t.rev_assignments)

let workers_of_task t task =
  List.sort compare
    (List.filter_map
       (fun a -> if a.task = task then Some a.worker else None)
       t.rev_assignments)

type violation =
  | Worker_out_of_range of assignment
  | Task_out_of_range of assignment
  | Duplicate_assignment of assignment
  | Capacity_exceeded of { worker : int; assigned : int; capacity : int }
  | Not_a_candidate of assignment
  | Task_incomplete of { task : int; accumulated : float; threshold : float }

let validate (instance : Instance.t) t =
  let n_tasks = Instance.task_count instance in
  let n_workers = Instance.worker_count instance in
  let violations = ref [] in
  let report v = violations := v :: !violations in
  let load = Array.make (n_workers + 1) 0 in
  let accumulated = Array.make (max n_tasks 1) 0.0 in
  let seen = Hashtbl.create (2 * t.size) in
  let check a =
    if a.worker < 1 || a.worker > n_workers then Worker_out_of_range a |> report
    else if a.task < 0 || a.task >= n_tasks then Task_out_of_range a |> report
    else begin
      let w = instance.Instance.workers.(a.worker - 1) in
      if Hashtbl.mem seen (a.worker, a.task) then Duplicate_assignment a |> report
      else begin
        Hashtbl.add seen (a.worker, a.task) ();
        load.(a.worker) <- load.(a.worker) + 1;
        accumulated.(a.task) <-
          accumulated.(a.task) +. Instance.score instance w a.task;
        let is_candidate =
          match instance.Instance.candidate_radius with
          | None -> true
          | Some radius ->
            Ltc_geo.Point.distance w.Worker.loc
              instance.Instance.tasks.(a.task).Task.loc
            <= radius +. 1e-9
        in
        if not is_candidate then Not_a_candidate a |> report
      end
    end
  in
  List.iter check (to_list t);
  Array.iteri
    (fun i (w : Worker.t) ->
      let assigned = load.(i + 1) in
      if assigned > w.capacity then
        report
          (Capacity_exceeded
             { worker = w.index; assigned; capacity = w.capacity }))
    instance.Instance.workers;
  for task = 0 to n_tasks - 1 do
    let threshold = Instance.threshold_of instance task in
    if accumulated.(task) < threshold -. 1e-9 then
      report (Task_incomplete { task; accumulated = accumulated.(task); threshold })
  done;
  match List.rev !violations with
  | [] -> Ok ()
  | vs -> Error vs

let pp_violation fmt = function
  | Worker_out_of_range a ->
    Format.fprintf fmt "worker %d out of range (task %d)" a.worker a.task
  | Task_out_of_range a ->
    Format.fprintf fmt "task %d out of range (worker %d)" a.task a.worker
  | Duplicate_assignment a ->
    Format.fprintf fmt "duplicate assignment (w%d, t%d)" a.worker a.task
  | Capacity_exceeded { worker; assigned; capacity } ->
    Format.fprintf fmt "worker %d assigned %d tasks, capacity %d" worker
      assigned capacity
  | Not_a_candidate a ->
    Format.fprintf fmt "task %d is not a candidate for worker %d" a.task
      a.worker
  | Task_incomplete { task; accumulated; threshold } ->
    Format.fprintf fmt "task %d incomplete: %.4f < %.4f" task accumulated
      threshold

let pp fmt t =
  Format.fprintf fmt "arrangement{%d assignments, latency=%d}" t.size
    t.latency
