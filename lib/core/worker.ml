type t = {
  index : int;
  loc : Ltc_geo.Point.t;
  accuracy : float;
  capacity : int;
}

let make ~index ~loc ~accuracy ~capacity =
  if index < 1 then invalid_arg "Worker.make: index must be >= 1";
  if capacity < 1 then invalid_arg "Worker.make: capacity must be >= 1";
  if accuracy < 0.0 || accuracy > 1.0 then
    invalid_arg "Worker.make: accuracy out of [0, 1]";
  { index; loc; accuracy; capacity }

let min_trusted_accuracy = 0.66

let is_trusted w = w.accuracy >= min_trusted_accuracy

let pp fmt w =
  Format.fprintf fmt "w%d@%a(p=%.2f, K=%d)" w.index Ltc_geo.Point.pp w.loc
    w.accuracy w.capacity
