type task_report = {
  task : int;
  votes : int;
  acc_star_sum : float;
  error_rate : float;
}

type report = {
  trials : int;
  epsilon : float;
  tasks : task_report array;
  mean_error : float;
  max_error : float;
}

let run ?(trials = 1000) ?actual_accuracy rng (instance : Instance.t)
    arrangement =
  if trials <= 0 then invalid_arg "Truth_sim.run: trials must be positive";
  let n_tasks = Instance.task_count instance in
  let actual =
    match actual_accuracy with
    | Some f -> f
    | None -> fun w task -> Accuracy.acc instance.Instance.accuracy w task
  in
  (* Per task: list of (vote weight, correctness probability).  Weights come
     from the believed model, correctness from [actual]. *)
  let voters = Array.make (max n_tasks 1) [] in
  List.iter
    (fun (a : Arrangement.assignment) ->
      let w = instance.Instance.workers.(a.worker - 1) in
      let believed = Instance.acc instance w a.task in
      let weight = (2.0 *. believed) -. 1.0 in
      let correctness = actual w instance.Instance.tasks.(a.task) in
      voters.(a.task) <- (weight, correctness) :: voters.(a.task))
    (Arrangement.to_list arrangement);
  let errors = Array.make (max n_tasks 1) 0 in
  for _ = 1 to trials do
    for task = 0 to n_tasks - 1 do
      match voters.(task) with
      | [] -> errors.(task) <- errors.(task) + 1
      | vs ->
        (* By symmetry of the binary answer, fix the truth to Yes. *)
        let total =
          List.fold_left
            (fun sum (weight, acc) ->
              let answer =
                if Ltc_util.Rng.bernoulli rng acc then Task.Yes else Task.No
              in
              sum +. (weight *. Task.answer_sign answer))
            0.0 vs
        in
        if total <= 0.0 then errors.(task) <- errors.(task) + 1
    done
  done;
  let model = instance.Instance.accuracy in
  let tasks =
    Array.init n_tasks (fun task ->
        let assigned = Arrangement.workers_of_task arrangement task in
        let acc_star_sum =
          List.fold_left
            (fun sum worker ->
              let w = instance.Instance.workers.(worker - 1) in
              sum +. Accuracy.acc_star model w instance.Instance.tasks.(task))
            0.0 assigned
        in
        {
          task;
          votes = List.length assigned;
          acc_star_sum;
          error_rate = float_of_int errors.(task) /. float_of_int trials;
        })
  in
  let error_rates = Array.map (fun r -> r.error_rate) tasks in
  {
    trials;
    epsilon = instance.Instance.epsilon;
    tasks;
    mean_error = (if n_tasks = 0 then 0.0 else Ltc_util.Stats.mean error_rates);
    max_error = Array.fold_left (fun m r -> Float.max m r.error_rate) 0.0 tasks;
  }

let pp fmt r =
  Format.fprintf fmt
    "truth-sim{trials=%d, eps=%g, mean_err=%.4f, max_err=%.4f, tasks=%d}"
    r.trials r.epsilon r.mean_error r.max_error (Array.length r.tasks)
