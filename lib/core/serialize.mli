(** Plain-text persistence for instances and arrangements.

    A line-oriented format so that generated workloads can be saved,
    shipped and replayed bit-for-bit (the CLI's [ltc generate] /
    [ltc run --load] flow), and arrangements can be archived next to the
    numbers they produced:

    {v
    ltc-instance v1
    epsilon 0.14
    accuracy sigmoid 30
    scoring hoeffding
    radius 30
    tasks 2
    t 0 105.5 20.5
    t 1 10 17 0.02          # trailing field = per-task epsilon
    workers 1
    w 1 3 4.5 0.86 6        # index x y accuracy capacity
    v}

    Floats are printed with round-trip precision.  [Custom] accuracy models
    embed arbitrary OCaml closures and are rejected at save time. *)

exception Parse_error of { line : int; message : string }

val write_instance : out_channel -> Instance.t -> unit
(** @raise Invalid_argument on a [Custom] accuracy model. *)

val read_instance : in_channel -> Instance.t
(** @raise Parse_error on malformed input. *)

val save_instance : path:string -> Instance.t -> unit
val load_instance : path:string -> Instance.t

val write_arrangement : out_channel -> Arrangement.t -> unit
val read_arrangement : in_channel -> Arrangement.t
val save_arrangement : path:string -> Arrangement.t -> unit
val load_arrangement : path:string -> Arrangement.t

val instance_to_string : Instance.t -> string
val instance_of_string : string -> Instance.t
val arrangement_to_string : Arrangement.t -> string
val arrangement_of_string : string -> Arrangement.t

(** {2 Snapshot payloads}

    The streaming service ({!Ltc_service}) journals session state as
    embedded blocks in the same line-oriented format: [Progress] snapshots
    (thresholds, accumulators and the raw running [sum_remaining]) and
    [Rng] state.  Floats round-trip exactly, so a restored session answers
    every aggregate query bit-identically. *)

val progress_to_string : Progress.t -> string
val progress_of_string : string -> Progress.t
val rng_to_string : Ltc_util.Rng.t -> string
val rng_of_string : string -> Ltc_util.Rng.t

(** {2 Low-level emit/parse}

    Composable building blocks for formats that embed instances,
    arrangements or snapshot payloads inside a larger stream (the service
    journal).  A [sink] receives output chunks; a [source] yields
    significant lines (comments and blanks stripped) and tracks line
    numbers for {!Parse_error} reports. *)

type sink = string -> unit

type source

val source_of_channel : in_channel -> source
val source_of_string : string -> source

val next_line : source -> string
(** Next significant line.  @raise Parse_error at end of input. *)

val next_line_opt : source -> string option
(** Next significant line, or [None] at end of input. *)

val line_number : source -> int
(** Line number of the last line returned (for error reports). *)

val line_offset : source -> int
(** Byte offset of the first character of the last line returned ([0]
    before any read).  The service journal's corruption diagnostics name
    this offset, so operators can inspect the damage with [dd]/[xxd]. *)

val fields : string -> string list
(** Whitespace-split, empty fields dropped. *)

val float_field : source -> string -> float
val int_field : source -> string -> int
(** Parse one field; @raise Parse_error with the source's current line on
    malformed input. *)

val emit_instance : sink -> Instance.t -> unit
val parse_instance : source -> Instance.t
val emit_arrangement : sink -> Arrangement.t -> unit
val parse_arrangement : source -> Arrangement.t
val emit_progress : sink -> Progress.t -> unit
val parse_progress : source -> Progress.t
val emit_rng : sink -> Ltc_util.Rng.t -> unit
val parse_rng : source -> Ltc_util.Rng.t

(** {2 Binary record codec}

    A compact length-prefixed binary encoding for the streaming-service
    journal's per-event records (the hot append path) and snapshots.
    Each record is framed as

    {v [u32le payload length][u32le crc32(payload)][payload] v}

    so replay is a streaming read — no line splitting — and the CRC
    separates {e interior corruption} (a complete frame whose bytes are
    wrong: {!Binary.Invalid}) from a {e torn tail} (a frame the crash cut
    short, necessarily at end of file: {!Binary.Torn}).  Floats are
    stored as IEEE-754 bit patterns, so every value round-trips exactly;
    non-negative integers use unsigned LEB128 varints. *)

module Binary : sig
  val crc32 : string -> int32
  (** IEEE 802.3 CRC32 (the gzip/PNG polynomial). *)

  (** {3 Primitives} *)

  val add_u8 : Buffer.t -> int -> unit
  val add_varint : Buffer.t -> int -> unit
  (** Unsigned LEB128.  @raise Invalid_argument on a negative value. *)

  val add_f64 : Buffer.t -> float -> unit
  (** IEEE-754 bit pattern, little-endian — exact round-trip. *)

  val add_i64 : Buffer.t -> int64 -> unit

  type cursor
  (** Read position over a decoded payload. *)

  val cursor : string -> cursor
  val at_end : cursor -> bool

  val u8 : cursor -> int
  val varint : cursor -> int
  val f64 : cursor -> float
  val i64 : cursor -> int64
  (** Decoders; @raise Parse_error (line [0]) on a short or overflowing
      payload. *)

  (** {3 Journal records} *)

  type event = {
    e_worker : Worker.t;
    e_degraded : bool;
    e_assigned : int list;
    e_answered : int list;
  }
  (** One arrival and its decision, fused into a single record (the text
      codec's [w]/[d] line pair): a torn append can never journal an
      arrival without its decision. *)

  type snapshot = {
    s_consumed : int;
    s_policy : int64;
    s_noshow : int64;
    s_progress : Progress.t;
    s_arrangement : Arrangement.t;
  }
  (** Full session state at a checkpoint. *)

  type record = Event of event | Snapshot of snapshot

  val emit_record : Buffer.t -> record -> unit
  (** Append the (unframed) record payload. *)

  val record_of_payload : string -> record
  (** Decode one record payload (as carried by a frame).
      @raise Parse_error on an unknown tag, short payload, implausible
      count or trailing bytes — on a CRC-verified frame any of these
      means corruption, not a tear. *)

  (** {3 Framing} *)

  val add_frame : Buffer.t -> string -> unit
  (** Append one framed payload (length prefix + CRC + bytes). *)

  val add_record_frame : Buffer.t -> record -> unit
  (** [emit_record] + [add_frame] in one step. *)

  type frame =
    | Frame of string  (** complete, CRC-verified payload *)
    | Eof  (** clean end of input, on a frame boundary *)
    | Torn  (** incomplete frame at end of input — crash damage *)
    | Invalid of string  (** complete frame with wrong bytes — corruption *)

  val input_frame : in_channel -> frame
  (** Read the next frame from the channel's current position. *)

  val frame_of_string : string -> int -> frame
  (** Same, over a string starting at a byte offset. *)
end
