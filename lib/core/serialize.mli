(** Plain-text persistence for instances and arrangements.

    A line-oriented format so that generated workloads can be saved,
    shipped and replayed bit-for-bit (the CLI's [ltc generate] /
    [ltc run --load] flow), and arrangements can be archived next to the
    numbers they produced:

    {v
    ltc-instance v1
    epsilon 0.14
    accuracy sigmoid 30
    scoring hoeffding
    radius 30
    tasks 2
    t 0 105.5 20.5
    t 1 10 17 0.02          # trailing field = per-task epsilon
    workers 1
    w 1 3 4.5 0.86 6        # index x y accuracy capacity
    v}

    Floats are printed with round-trip precision.  [Custom] accuracy models
    embed arbitrary OCaml closures and are rejected at save time. *)

exception Parse_error of { line : int; message : string }

val write_instance : out_channel -> Instance.t -> unit
(** @raise Invalid_argument on a [Custom] accuracy model. *)

val read_instance : in_channel -> Instance.t
(** @raise Parse_error on malformed input. *)

val save_instance : path:string -> Instance.t -> unit
val load_instance : path:string -> Instance.t

val write_arrangement : out_channel -> Arrangement.t -> unit
val read_arrangement : in_channel -> Arrangement.t
val save_arrangement : path:string -> Arrangement.t -> unit
val load_arrangement : path:string -> Arrangement.t

val instance_to_string : Instance.t -> string
val instance_of_string : string -> Instance.t
