(** Plain-text persistence for instances and arrangements.

    A line-oriented format so that generated workloads can be saved,
    shipped and replayed bit-for-bit (the CLI's [ltc generate] /
    [ltc run --load] flow), and arrangements can be archived next to the
    numbers they produced:

    {v
    ltc-instance v1
    epsilon 0.14
    accuracy sigmoid 30
    scoring hoeffding
    radius 30
    tasks 2
    t 0 105.5 20.5
    t 1 10 17 0.02          # trailing field = per-task epsilon
    workers 1
    w 1 3 4.5 0.86 6        # index x y accuracy capacity
    v}

    Floats are printed with round-trip precision.  [Custom] accuracy models
    embed arbitrary OCaml closures and are rejected at save time. *)

exception Parse_error of { line : int; message : string }

val write_instance : out_channel -> Instance.t -> unit
(** @raise Invalid_argument on a [Custom] accuracy model. *)

val read_instance : in_channel -> Instance.t
(** @raise Parse_error on malformed input. *)

val save_instance : path:string -> Instance.t -> unit
val load_instance : path:string -> Instance.t

val write_arrangement : out_channel -> Arrangement.t -> unit
val read_arrangement : in_channel -> Arrangement.t
val save_arrangement : path:string -> Arrangement.t -> unit
val load_arrangement : path:string -> Arrangement.t

val instance_to_string : Instance.t -> string
val instance_of_string : string -> Instance.t
val arrangement_to_string : Arrangement.t -> string
val arrangement_of_string : string -> Arrangement.t

(** {2 Snapshot payloads}

    The streaming service ({!Ltc_service}) journals session state as
    embedded blocks in the same line-oriented format: [Progress] snapshots
    (thresholds, accumulators and the raw running [sum_remaining]) and
    [Rng] state.  Floats round-trip exactly, so a restored session answers
    every aggregate query bit-identically. *)

val progress_to_string : Progress.t -> string
val progress_of_string : string -> Progress.t
val rng_to_string : Ltc_util.Rng.t -> string
val rng_of_string : string -> Ltc_util.Rng.t

(** {2 Low-level emit/parse}

    Composable building blocks for formats that embed instances,
    arrangements or snapshot payloads inside a larger stream (the service
    journal).  A [sink] receives output chunks; a [source] yields
    significant lines (comments and blanks stripped) and tracks line
    numbers for {!Parse_error} reports. *)

type sink = string -> unit

type source

val source_of_channel : in_channel -> source
val source_of_string : string -> source

val next_line : source -> string
(** Next significant line.  @raise Parse_error at end of input. *)

val next_line_opt : source -> string option
(** Next significant line, or [None] at end of input. *)

val line_number : source -> int
(** Line number of the last line returned (for error reports). *)

val line_offset : source -> int
(** Byte offset of the first character of the last line returned ([0]
    before any read).  The service journal's corruption diagnostics name
    this offset, so operators can inspect the damage with [dd]/[xxd]. *)

val fields : string -> string list
(** Whitespace-split, empty fields dropped. *)

val float_field : source -> string -> float
val int_field : source -> string -> int
(** Parse one field; @raise Parse_error with the source's current line on
    malformed input. *)

val emit_instance : sink -> Instance.t -> unit
val parse_instance : source -> Instance.t
val emit_arrangement : sink -> Arrangement.t -> unit
val parse_arrangement : source -> Arrangement.t
val emit_progress : sink -> Progress.t -> unit
val parse_progress : source -> Progress.t
val emit_rng : sink -> Ltc_util.Rng.t -> unit
val parse_rng : source -> Ltc_util.Rng.t
