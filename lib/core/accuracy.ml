type t =
  | Sigmoid of { dmax : float }
  | Historical
  | Custom of { name : string; f : Worker.t -> Task.t -> float }

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

let acc t (w : Worker.t) (task : Task.t) =
  match t with
  | Sigmoid { dmax } ->
    let d = Ltc_geo.Point.distance w.loc task.loc in
    clamp01 (w.accuracy /. (1.0 +. exp (-.(dmax -. d))))
  | Historical -> clamp01 w.accuracy
  | Custom { f; _ } -> clamp01 (f w task)

let acc_star t w task =
  let a = acc t w task in
  let x = (2.0 *. a) -. 1.0 in
  x *. x

let default_dmax = 30.0

let pp fmt = function
  | Sigmoid { dmax } -> Format.fprintf fmt "sigmoid(dmax=%g)" dmax
  | Historical -> Format.fprintf fmt "historical"
  | Custom { name; _ } -> Format.fprintf fmt "custom(%s)" name
