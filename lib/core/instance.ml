type t = {
  tasks : Task.t array;
  workers : Worker.t array;
  epsilon : float;
  accuracy : Accuracy.t;
  scoring : Quality.scoring;
  candidate_radius : float option;
  task_index : Ltc_geo.Grid_index.t option;
}

let default_radius accuracy =
  match accuracy with
  | Accuracy.Sigmoid { dmax } -> Some dmax
  | Accuracy.Historical | Accuracy.Custom _ -> None

let create ?(accuracy = Accuracy.Sigmoid { dmax = Accuracy.default_dmax })
    ?(scoring = Quality.Hoeffding) ?candidate_radius ~tasks ~workers ~epsilon
    () =
  if epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Instance.create: epsilon must lie in (0, 1)";
  Array.iteri
    (fun i (task : Task.t) ->
      if task.id <> i then
        invalid_arg "Instance.create: task ids must match their positions")
    tasks;
  Array.iteri
    (fun i (w : Worker.t) ->
      if w.index <> i + 1 then
        invalid_arg
          "Instance.create: workers must be in contiguous 1-based arrival \
           order")
    workers;
  let candidate_radius =
    match candidate_radius with
    | Some r -> r
    | None -> default_radius accuracy
  in
  let task_index =
    match candidate_radius with
    | None -> None
    | Some radius ->
      if Array.length tasks = 0 then None
      else begin
        let points = Array.map (fun (task : Task.t) -> task.loc) tasks in
        let world = Ltc_geo.Bbox.of_points (Array.to_list points) in
        Some (Ltc_geo.Grid_index.build ~world ~cell:radius points)
      end
  in
  { tasks; workers; epsilon; accuracy; scoring; candidate_radius; task_index }

let task_count t = Array.length t.tasks
let worker_count t = Array.length t.workers

let threshold t = Quality.threshold t.scoring ~epsilon:t.epsilon

let threshold_of t task_id =
  match (t.scoring, t.tasks.(task_id).Task.epsilon) with
  | Quality.Hoeffding, Some epsilon -> Quality.threshold t.scoring ~epsilon
  | Quality.Hoeffding, None | Quality.Sum_accuracy _, _ -> threshold t

let thresholds t = Array.init (Array.length t.tasks) (threshold_of t)

let score t w task_id = Quality.score t.scoring t.accuracy w t.tasks.(task_id)

let acc t w task_id = Accuracy.acc t.accuracy w t.tasks.(task_id)

let iter_candidates t (w : Worker.t) f =
  match (t.candidate_radius, t.task_index) with
  | Some radius, Some index ->
    Ltc_geo.Grid_index.iter_within index ~center:w.loc ~radius f
  | None, _ | _, None ->
    for i = 0 to Array.length t.tasks - 1 do
      f i
    done

let iter_candidates_sorted t (w : Worker.t) f =
  match (t.candidate_radius, t.task_index) with
  | Some radius, Some index ->
    Ltc_geo.Grid_index.iter_within_sorted index ~center:w.loc ~radius f
  | None, _ | _, None ->
    for i = 0 to Array.length t.tasks - 1 do
      f i
    done

let candidates t (w : Worker.t) =
  match (t.candidate_radius, t.task_index) with
  | Some radius, Some index ->
    Ltc_geo.Grid_index.query_within index ~center:w.loc ~radius
  | None, _ | _, None -> List.init (Array.length t.tasks) (fun i -> i)

let count_candidates t (w : Worker.t) =
  match (t.candidate_radius, t.task_index) with
  | Some radius, Some index ->
    Ltc_geo.Grid_index.count_within index ~center:w.loc ~radius
  | None, _ | _, None -> Array.length t.tasks

let memory_words t =
  let index_words =
    match t.task_index with
    | None -> 0
    | Some index -> Ltc_geo.Grid_index.memory_words index
  in
  (* Tasks: id + 2 float coords (boxed point record ~ 5 words); workers:
     index, accuracy, capacity, point ~ 8 words. *)
  (5 * Array.length t.tasks) + (8 * Array.length t.workers) + index_words

let pp fmt t =
  Format.fprintf fmt
    "instance{|T|=%d, |W|=%d, eps=%g, acc=%a, scoring=%a, radius=%s}"
    (task_count t) (worker_count t) t.epsilon Accuracy.pp t.accuracy
    Quality.pp_scoring t.scoring
    (match t.candidate_radius with
    | None -> "none"
    | Some r -> string_of_float r)
