(** Micro tasks (Definition 1).

    A task is a binary question anchored at a POI location.  Definition 1
    gives each task its own tolerable error rate [t = <l_t, epsilon>];
    assumption (ii) of the paper then specializes to a platform-wide
    constant.  Both views are supported: [epsilon = None] (the common case)
    defers to the instance-wide rate, [Some e] overrides it for this task —
    e.g. safety-critical questions demanding a stricter guarantee. *)

type t = {
  id : int;  (** position in the instance's task array, [0]-based *)
  loc : Ltc_geo.Point.t;
  epsilon : float option;
      (** per-task tolerable error rate; [None] = the instance's rate *)
}

val make : ?epsilon:float -> id:int -> loc:Ltc_geo.Point.t -> unit -> t
(** @raise Invalid_argument when [epsilon] is outside (0, 1). *)

val pp : Format.formatter -> t -> unit

type answer = Yes | No
(** The paper encodes a binary answer as +1 ("YES") / -1 ("NO"). *)

val answer_sign : answer -> float
val negate : answer -> answer
val answer_equal : answer -> answer -> bool
