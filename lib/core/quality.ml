type scoring =
  | Hoeffding
  | Sum_accuracy of { threshold : float }

let delta ~epsilon =
  if epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Quality.delta: epsilon must lie in (0, 1)";
  2.0 *. log (1.0 /. epsilon)

let threshold scoring ~epsilon =
  match scoring with
  | Hoeffding -> delta ~epsilon
  | Sum_accuracy { threshold } -> threshold

let score scoring model w t =
  match scoring with
  | Hoeffding -> Accuracy.acc_star model w t
  | Sum_accuracy _ -> Accuracy.acc model w t

let vote_weight model w t = (2.0 *. Accuracy.acc model w t) -. 1.0

let majority votes =
  match votes with
  | [] -> None
  | _ ->
    let total =
      List.fold_left
        (fun acc (weight, answer) -> acc +. (weight *. Task.answer_sign answer))
        0.0 votes
    in
    if total > 0.0 then Some Task.Yes
    else if total < 0.0 then Some Task.No
    else None

let hoeffding_error_bound ~acc_star_sum = exp (-.acc_star_sum /. 2.0)

let pp_scoring fmt = function
  | Hoeffding -> Format.fprintf fmt "hoeffding"
  | Sum_accuracy { threshold } -> Format.fprintf fmt "sum-accuracy(>=%g)" threshold
