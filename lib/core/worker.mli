(** Crowd workers (Definition 2).

    A worker is the [index]-th person to check in ([index] is 1-based, the
    paper's arrival order [o_w]), at location [loc], with historical accuracy
    [accuracy] ([p_w]) and per-check-in capacity [capacity] ([K]). *)

type t = {
  index : int;     (** arrival order [o_w], 1-based *)
  loc : Ltc_geo.Point.t;
  accuracy : float;
  capacity : int;
}

val make :
  index:int -> loc:Ltc_geo.Point.t -> accuracy:float -> capacity:int -> t
(** @raise Invalid_argument when [index < 1], [capacity < 1] or [accuracy]
    is outside [\[0, 1\]]. *)

val min_trusted_accuracy : float
(** The paper's spam threshold: workers with [p_w < 0.66] are ignored by the
    platform. *)

val is_trusted : t -> bool

val pp : Format.formatter -> t -> unit
