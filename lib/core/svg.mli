(** SVG rendering of instances and arrangements.

    One picture of a spatial-crowdsourcing run says more than any latency
    table: where the POIs sit, where check-ins cluster, which workers served
    which tasks.  [ltc run --svg out.svg] and [ltc generate --svg] use this;
    the output is self-contained SVG 1.1 (no external assets).

    Visual encoding: tasks are circles (green = completed, red = not, by
    the arrangement if one is given) with a light halo showing the
    candidate radius; workers are small dots with opacity scaled by
    historical accuracy; assignments are thin lines from worker to task. *)

val render :
  ?size:int ->
  ?arrangement:Arrangement.t ->
  ?show_radius:bool ->
  Instance.t ->
  string
(** [size] is the image's larger dimension in pixels (default 800).
    [show_radius] (default [true]) draws the candidate-radius halo around
    tasks when the instance has one. *)

val save :
  path:string ->
  ?size:int ->
  ?arrangement:Arrangement.t ->
  ?show_radius:bool ->
  Instance.t ->
  unit
