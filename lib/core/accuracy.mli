(** Predicted accuracy models (Definition 3).

    The paper's default is the distance-damped sigmoid of Eq. (1):

    {[ Acc(w,t) = p_w / (1 + exp(-(dmax - ||l_w - l_t||))) ]}

    where [dmax] is the largest distance at which workers still answer with
    high accuracy (30 grid units = 300 m in the evaluation).  "Other accuracy
    functions can also apply" — hence the model is a first-class value; the
    [Historical] model (distance-independent [p_w]) reproduces the paper's
    running example, whose Table I lists raw historical accuracies. *)

type t =
  | Sigmoid of { dmax : float }
      (** Eq. (1).  @see <https://doi.org/10.1109/ICDE.2018.00027> Sec. II-A *)
  | Historical
      (** [Acc(w,t) = p_w]: the worker is assumed familiar with every
          candidate POI (running example, Tables I-II). *)
  | Custom of { name : string; f : Worker.t -> Task.t -> float }

val acc : t -> Worker.t -> Task.t -> float
(** Predicted accuracy, clamped into [\[0, 1\]]. *)

val acc_star : t -> Worker.t -> Task.t -> float
(** The Hoeffding weight [Acc* = (2 Acc - 1)^2] used by every algorithm in
    the paper. *)

val default_dmax : float
(** 30 grid units (300 m), the evaluation's setting. *)

val pp : Format.formatter -> t -> unit
