type t = {
  thresholds : float array;
  s : float array;
  version : int array;  (* bumped on every record; invalidates heap entries *)
  (* Order-preserving set of incomplete task ids: the live prefix is kept
     sorted ascending (removal shifts the tail left), which is the
     ordering guarantee [iter_incomplete] documents — MCF-LTC builds its
     batch node numbering straight off this iteration. *)
  incomplete : int array;      (* first [n_incomplete] entries are live *)
  position : int array;        (* position.(task) in [incomplete], -1 if done *)
  mutable n_incomplete : int;
  mutable sum_remaining : float;
  (* Lazy max-heap over (remaining, task, version). *)
  heap : (float * int * int) Ltc_util.Heap.t;
}

let create_per_task ~thresholds =
  let n_tasks = Array.length thresholds in
  Array.iter
    (fun threshold ->
      if threshold <= 0.0 then
        invalid_arg "Progress.create_per_task: thresholds must be positive")
    thresholds;
  let heap_leq (a, _, _) (b, _, _) = (a : float) >= b in
  let t =
    {
      thresholds = Array.copy thresholds;
      s = Array.make (max n_tasks 1) 0.0;
      version = Array.make (max n_tasks 1) 0;
      incomplete = Array.init (max n_tasks 1) (fun i -> i);
      position = Array.init (max n_tasks 1) (fun i -> i);
      n_incomplete = n_tasks;
      sum_remaining = Array.fold_left ( +. ) 0.0 thresholds;
      heap = Ltc_util.Heap.create ~capacity:(2 * max n_tasks 1) ~leq:heap_leq ();
    }
  in
  for task = 0 to n_tasks - 1 do
    Ltc_util.Heap.push t.heap (thresholds.(task), task, 0)
  done;
  t

let create ~threshold ~n_tasks =
  if threshold <= 0.0 then invalid_arg "Progress.create: threshold <= 0";
  if n_tasks < 0 then invalid_arg "Progress.create: negative n_tasks";
  create_per_task ~thresholds:(Array.make n_tasks threshold)

let threshold_of t task = t.thresholds.(task)
let n_tasks t = Array.length t.s
let accumulated t task = t.s.(task)
let remaining t task = Float.max 0.0 (t.thresholds.(task) -. t.s.(task))
let is_complete t task = t.s.(task) >= t.thresholds.(task)
let all_complete t = t.n_incomplete = 0
let incomplete_count t = t.n_incomplete
let sum_remaining t = Float.max 0.0 t.sum_remaining

let remove_incomplete t task =
  let pos = t.position.(task) in
  if pos >= 0 then begin
    let last = t.n_incomplete - 1 in
    Array.blit t.incomplete (pos + 1) t.incomplete pos (last - pos);
    for i = pos to last - 1 do
      t.position.(t.incomplete.(i)) <- i
    done;
    t.position.(task) <- -1;
    t.n_incomplete <- last
  end

let record t ~task ~score =
  if score < 0.0 then invalid_arg "Progress.record: negative score";
  if not (is_complete t task) then begin
    let before = remaining t task in
    t.s.(task) <- t.s.(task) +. score;
    let after = remaining t task in
    t.sum_remaining <- t.sum_remaining -. (before -. after);
    t.version.(task) <- t.version.(task) + 1;
    if after <= 0.0 then remove_incomplete t task
    else Ltc_util.Heap.push t.heap (after, task, t.version.(task))
  end
  else t.s.(task) <- t.s.(task) +. score

let rec max_remaining t =
  match Ltc_util.Heap.peek t.heap with
  | None -> 0.0
  | Some (r, task, version) ->
    if t.version.(task) = version && not (is_complete t task) then r
    else begin
      ignore (Ltc_util.Heap.pop t.heap);
      max_remaining t
    end

let iter_incomplete t f =
  for i = 0 to t.n_incomplete - 1 do
    f t.incomplete.(i)
  done

let fold_incomplete t ~init ~f =
  let acc = ref init in
  iter_incomplete t (fun task -> acc := f !acc task);
  !acc

let memory_words t =
  (* thresholds + s (floats) + version + incomplete + position + heap
     triples (~6 words each including the tuple block). *)
  (5 * Array.length t.s) + (6 * Ltc_util.Heap.length t.heap)

type snapshot = {
  thresholds : float array;
  scores : float array;
  sum_remaining : float;
}

let snapshot (t : t) =
  (* [t.s] is padded to [max n 1]; the thresholds array carries the true
     task count. *)
  let n = Array.length t.thresholds in
  {
    thresholds = Array.copy t.thresholds;
    scores = Array.sub t.s 0 n;
    sum_remaining = t.sum_remaining;
  }

let of_snapshot (snap : snapshot) =
  let n = Array.length snap.thresholds in
  if Array.length snap.scores <> n then
    invalid_arg "Progress.of_snapshot: scores/thresholds length mismatch";
  Array.iter
    (fun s ->
      if s < 0.0 then invalid_arg "Progress.of_snapshot: negative score")
    snap.scores;
  let t = create_per_task ~thresholds:snap.thresholds in
  for task = 0 to n - 1 do
    record t ~task ~score:snap.scores.(task)
  done;
  (* [record] re-derived the running total from a zero base; the live run
     accumulated it one arrival at a time, and AAM's average is sensitive
     to that float summation order, so restore the captured value. *)
  t.sum_remaining <- snap.sum_remaining;
  t
