type t = {
  assignments : int;
  workers_used : int;
  latency : int;
  load_mean : float;
  load_max : int;
  load_gini : float;
  travel_mean : float;
  travel_max : float;
  votes_mean : float;
  votes_min : int;
  votes_max : int;
  margin_mean : float;
  margin_min : float;
  error_bound_worst : float;
}

(* Gini over the loads of recruited workers, by the sorted-rank formula
   G = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n  with 1-based ranks. *)
let gini loads =
  let n = Array.length loads in
  if n = 0 then 0.0
  else begin
    let xs = Array.map float_of_int loads in
    Array.sort compare xs;
    let total = Array.fold_left ( +. ) 0.0 xs in
    if total <= 0.0 then 0.0
    else begin
      let weighted = ref 0.0 in
      Array.iteri
        (fun i x -> weighted := !weighted +. (float_of_int (i + 1) *. x))
        xs;
      let nf = float_of_int n in
      (2.0 *. !weighted /. (nf *. total)) -. ((nf +. 1.0) /. nf)
    end
  end

let of_arrangement (instance : Instance.t) arrangement =
  let n_tasks = Instance.task_count instance in
  let n_workers = Instance.worker_count instance in
  let load = Array.make (n_workers + 1) 0 in
  let votes = Array.make (max n_tasks 1) 0 in
  let score_sum = Array.make (max n_tasks 1) 0.0 in
  let travel_total = ref 0.0 in
  let travel_max = ref 0.0 in
  let assignments = Arrangement.to_list arrangement in
  List.iter
    (fun (a : Arrangement.assignment) ->
      let w = instance.Instance.workers.(a.worker - 1) in
      load.(a.worker) <- load.(a.worker) + 1;
      votes.(a.task) <- votes.(a.task) + 1;
      score_sum.(a.task) <-
        score_sum.(a.task) +. Instance.score instance w a.task;
      let d =
        Ltc_geo.Point.distance w.Worker.loc
          instance.Instance.tasks.(a.task).Task.loc
      in
      travel_total := !travel_total +. d;
      if d > !travel_max then travel_max := d)
    assignments;
  let recruited = Array.of_list (List.filter (fun l -> l > 0) (Array.to_list load)) in
  let n_recruited = Array.length recruited in
  let n_assign = Arrangement.size arrangement in
  let margin task = score_sum.(task) -. Instance.threshold_of instance task in
  let fold_tasks f init =
    let acc = ref init in
    for task = 0 to n_tasks - 1 do
      acc := f !acc task
    done;
    !acc
  in
  {
    assignments = n_assign;
    workers_used = n_recruited;
    latency = Arrangement.latency arrangement;
    load_mean =
      (if n_recruited = 0 then 0.0
       else float_of_int n_assign /. float_of_int n_recruited);
    load_max = Array.fold_left max 0 load;
    load_gini = gini recruited;
    travel_mean =
      (if n_assign = 0 then 0.0 else !travel_total /. float_of_int n_assign);
    travel_max = !travel_max;
    votes_mean =
      (if n_tasks = 0 then 0.0
       else float_of_int n_assign /. float_of_int n_tasks);
    votes_min =
      (if n_tasks = 0 then 0 else Array.fold_left min max_int votes);
    votes_max = Array.fold_left max 0 votes;
    margin_mean =
      (if n_tasks = 0 then 0.0
       else fold_tasks (fun acc task -> acc +. margin task) 0.0
            /. float_of_int n_tasks);
    margin_min =
      (if n_tasks = 0 then 0.0
       else fold_tasks (fun acc task -> Float.min acc (margin task)) infinity);
    error_bound_worst =
      (if n_tasks = 0 then 0.0
       else
         fold_tasks
           (fun acc task ->
             Float.max acc
               (Quality.hoeffding_error_bound ~acc_star_sum:score_sum.(task)))
           0.0);
  }

let pp fmt a =
  Format.fprintf fmt
    "@[<v>assignments        %d@,workers recruited  %d@,latency            \
     %d@,load mean/max      %.2f / %d (gini %.3f)@,travel mean/max    %.2f \
     / %.2f@,votes mean/min/max %.2f / %d / %d@,margin mean/min    %.3f / \
     %.3f@,worst error bound  %.4f@]"
    a.assignments a.workers_used a.latency a.load_mean a.load_max a.load_gini
    a.travel_mean a.travel_max a.votes_mean a.votes_min a.votes_max
    a.margin_mean a.margin_min a.error_bound_worst
