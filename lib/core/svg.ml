let header ~width ~height =
  Printf.sprintf
    "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
     <svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %d %d\">\n\
     <rect width=\"%d\" height=\"%d\" fill=\"#fcfcf8\"/>\n"
    width height width height width height

(* World-to-pixel transform over the bounding box of all locations, with a
   small margin; y is flipped so north is up. *)
type view = {
  scale : float;
  off_x : float;
  off_y : float;
  height : int;
}

let margin = 20.0

let make_view ~size (instance : Instance.t) =
  let points =
    Array.to_list (Array.map (fun (t : Task.t) -> t.loc) instance.tasks)
    @ Array.to_list
        (Array.map (fun (w : Worker.t) -> w.loc) instance.workers)
  in
  let box =
    match points with
    | [] -> Ltc_geo.Bbox.square ~side:1.0
    | _ -> Ltc_geo.Bbox.of_points points
  in
  let w = Float.max 1e-9 (Ltc_geo.Bbox.width box) in
  let h = Float.max 1e-9 (Ltc_geo.Bbox.height box) in
  let inner = float_of_int size -. (2.0 *. margin) in
  let scale = inner /. Float.max w h in
  let width = int_of_float ((w *. scale) +. (2.0 *. margin)) in
  let height = int_of_float ((h *. scale) +. (2.0 *. margin)) in
  ( { scale; off_x = box.Ltc_geo.Bbox.min_x; off_y = box.Ltc_geo.Bbox.min_y;
      height },
    width,
    height )

let px view (p : Ltc_geo.Point.t) =
  let x = margin +. ((p.x -. view.off_x) *. view.scale) in
  let y =
    float_of_int view.height -. (margin +. ((p.y -. view.off_y) *. view.scale))
  in
  (x, y)

let render ?(size = 800) ?arrangement ?(show_radius = true)
    (instance : Instance.t) =
  let view, width, height = make_view ~size instance in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf (header ~width ~height);
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* Completion state per task under the given arrangement. *)
  let progress =
    Progress.create_per_task ~thresholds:(Instance.thresholds instance)
  in
  (match arrangement with
  | None -> ()
  | Some a ->
    List.iter
      (fun (asgn : Arrangement.assignment) ->
        let w = instance.workers.(asgn.worker - 1) in
        Progress.record progress ~task:asgn.task
          ~score:(Instance.score instance w asgn.task))
      (Arrangement.to_list a));
  (* Layer 1: candidate-radius halos. *)
  (match (show_radius, instance.candidate_radius) with
  | true, Some radius ->
    Array.iter
      (fun (t : Task.t) ->
        let x, y = px view t.loc in
        add
          "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"#4a90d9\" \
           fill-opacity=\"0.06\" stroke=\"#4a90d9\" stroke-opacity=\"0.25\" \
           stroke-width=\"0.5\"/>\n"
          x y (radius *. view.scale))
      instance.tasks
  | true, None | false, _ -> ());
  (* Layer 2: workers (under the assignment lines). *)
  Array.iter
    (fun (w : Worker.t) ->
      let x, y = px view w.loc in
      add
        "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"1.2\" fill=\"#555555\" \
         fill-opacity=\"%.2f\"/>\n"
        x y
        (0.15 +. (0.5 *. Float.max 0.0 (w.accuracy -. 0.5)) /. 0.5))
    instance.workers;
  (* Layer 3: assignments. *)
  (match arrangement with
  | None -> ()
  | Some a ->
    List.iter
      (fun (asgn : Arrangement.assignment) ->
        let w = instance.workers.(asgn.worker - 1) in
        let t = instance.tasks.(asgn.task) in
        let x1, y1 = px view w.loc and x2, y2 = px view t.loc in
        add
          "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
           stroke=\"#e09f3e\" stroke-width=\"0.6\" stroke-opacity=\"0.55\"/>\n"
          x1 y1 x2 y2)
      (Arrangement.to_list a));
  (* Layer 4: tasks on top. *)
  Array.iter
    (fun (t : Task.t) ->
      let x, y = px view t.loc in
      let fill =
        match arrangement with
        | None -> "#4a90d9"
        | Some _ ->
          if Progress.is_complete progress t.id then "#2d9d3a" else "#d0342c"
      in
      add
        "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"4\" fill=\"%s\" \
         stroke=\"#ffffff\" stroke-width=\"1\"/>\n"
        x y fill)
    instance.tasks;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let save ~path ?size ?arrangement ?show_radius instance =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (render ?size ?arrangement ?show_radius instance))
