open Ltc_core

(* Shared skeleton: score unfinished candidates, keep the top K. *)
let greedy_policy ~score instance _tracker progress (w : Worker.t) =
  let heap = Ltc_util.Bounded_heap.create ~k:w.capacity () in
  List.iter
    (fun task ->
      if not (Progress.is_complete progress task) then
        Ltc_util.Bounded_heap.push heap
          ~score:(score instance progress w task)
          task)
    (Instance.candidates instance w);
  List.map snd (Ltc_util.Bounded_heap.pop_all heap)

let lgf_score instance progress w task =
  Float.min (Instance.score instance w task) (Progress.remaining progress task)

let lrf_score _instance progress _w task = Progress.remaining progress task

let nearest_score (instance : Instance.t) _progress (w : Worker.t) task =
  (* Bounded heap keeps the largest scores; negate so nearest wins. *)
  -.Ltc_geo.Point.distance w.loc instance.Instance.tasks.(task).Task.loc

let lgf_policy instance tracker progress =
  greedy_policy ~score:lgf_score instance tracker progress

let lrf_policy instance tracker progress =
  greedy_policy ~score:lrf_score instance tracker progress

let nearest_policy instance tracker progress =
  greedy_policy ~score:nearest_score instance tracker progress

let lgf instance = Engine.run ~name:"LGF-only" lgf_policy instance
let lrf instance = Engine.run ~name:"LRF-only" lrf_policy instance
let nearest_first instance = Engine.run ~name:"Nearest" nearest_policy instance
