open Ltc_core

(* Shared skeleton: score unfinished candidates, keep the top K. *)
let greedy_policy ~score instance _tracker progress (w : Worker.t) =
  let heap = Ltc_util.Bounded_heap.create ~k:w.capacity () in
  List.iter
    (fun task ->
      if not (Progress.is_complete progress task) then
        Ltc_util.Bounded_heap.push heap
          ~score:(score instance progress w task)
          task)
    (Instance.candidates instance w);
  List.map snd (Ltc_util.Bounded_heap.pop_all heap)

let lgf_score instance progress w task =
  Float.min (Instance.score instance w task) (Progress.remaining progress task)

let lrf_score _instance progress _w task = Progress.remaining progress task

let lgf instance =
  Engine.run_policy ~name:"LGF-only" (greedy_policy ~score:lgf_score) instance

let lrf instance =
  Engine.run_policy ~name:"LRF-only" (greedy_policy ~score:lrf_score) instance

let nearest_score (instance : Instance.t) _progress (w : Worker.t) task =
  (* Bounded heap keeps the largest scores; negate so nearest wins. *)
  -.Ltc_geo.Point.distance w.loc instance.Instance.tasks.(task).Task.loc

let nearest_first instance =
  Engine.run_policy ~name:"Nearest" (greedy_policy ~score:nearest_score)
    instance

let lgf_algorithm =
  { Algorithm.name = "LGF-only"; kind = Algorithm.Online; run = lgf }

let lrf_algorithm =
  { Algorithm.name = "LRF-only"; kind = Algorithm.Online; run = lrf }

let nearest_first_algorithm =
  { Algorithm.name = "Nearest"; kind = Algorithm.Online; run = nearest_first }
