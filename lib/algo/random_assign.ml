open Ltc_core

let name = "Random"

let policy ~seed instance _tracker progress =
  let rng = Ltc_util.Rng.create ~seed in
  fun (w : Worker.t) ->
    let unfinished =
      List.filter
        (fun task -> not (Progress.is_complete progress task))
        (Instance.candidates instance w)
    in
    let pool = Array.of_list unfinished in
    let n = Array.length pool in
    let k = min w.capacity n in
    (* Partial Fisher-Yates: the first [k] slots become the sample. *)
    for i = 0 to k - 1 do
      let j = i + Ltc_util.Rng.int rng (n - i) in
      let tmp = pool.(i) in
      pool.(i) <- pool.(j);
      pool.(j) <- tmp
    done;
    Array.to_list (Array.sub pool 0 k)

let run ~seed instance = Engine.run_policy ~name (policy ~seed) instance
