open Ltc_core

let name = "Random"

let policy_with_rng rng instance _tracker progress =
  fun (w : Worker.t) ->
    let unfinished =
      List.filter
        (fun task -> not (Progress.is_complete progress task))
        (Instance.candidates instance w)
    in
    let pool = Array.of_list unfinished in
    let n = Array.length pool in
    let k = min w.capacity n in
    (* Partial Fisher-Yates: the first [k] slots become the sample. *)
    for i = 0 to k - 1 do
      let j = i + Ltc_util.Rng.int rng (n - i) in
      let tmp = pool.(i) in
      pool.(i) <- pool.(j);
      pool.(j) <- tmp
    done;
    Array.to_list (Array.sub pool 0 k)

(* The generator is created at full application, once per run, so a
   partially-applied [policy ~seed] yields identical runs every time. *)
let policy ~seed instance tracker progress =
  policy_with_rng (Ltc_util.Rng.create ~seed) instance tracker progress
let run ~seed instance = Engine.run ~name (policy ~seed) instance
