(** The two halves of AAM as standalone online policies.

    AAM (Algorithm 3) switches between Largest Gain First and Largest
    Remaining First based on its [avg] vs [maxRemain] test.  Running each
    strategy {e alone} isolates what the hybrid buys: LGF alone wastes the
    endgame on nearly-finished tasks, LRF alone wastes accurate workers on
    easy tasks early.  The [ablation-strategy] bench compares LGF-only,
    LRF-only, AAM and LAF on the default workload. *)

val lgf_policy : Engine.policy
(** Largest Gain First only: rank unfinished candidates by
    [min (Acc*(w,t), remaining t)]. *)

val lrf_policy : Engine.policy
(** Largest Remaining First only: rank unfinished candidates by
    [remaining t]. *)

val nearest_policy : Engine.policy
(** Nearest First: assign the [K] spatially closest unfinished candidate
    tasks.  Not from the paper — a natural spatial-crowdsourcing heuristic
    (distance is the dominant accuracy factor under Eq. 1) included as an
    extra baseline; under the sigmoid model it behaves like LAF with ties
    broken by distance instead of historical accuracy. *)

val lgf : Ltc_core.Instance.t -> Engine.outcome
val lrf : Ltc_core.Instance.t -> Engine.outcome
val nearest_first : Ltc_core.Instance.t -> Engine.outcome
(** One-shot runs of the corresponding policy.  The registry entries for
    these strategies live in {!Algorithm}. *)
