open Ltc_core

let name = "MCF-LTC"

type config = {
  first_batch_factor : float;
  batch_factor : float;
  warm_start : bool;
  solver : string;
  budget : Ltc_flow.Mcmf.budget option;
}

let default_config =
  {
    first_batch_factor = 1.5;
    batch_factor = 1.0;
    warm_start = false;
    solver = "sspa";
    budget = None;
  }

let m_batches =
  Ltc_util.Metrics.counter ~help:"MCF-LTC batches solved"
    "ltc_mcf_batches_total"

let m_batch_workers =
  Ltc_util.Metrics.histogram ~help:"workers per MCF-LTC batch"
    ~buckets:[| 1.0; 4.0; 16.0; 64.0; 256.0; 1024.0; 4096.0; 16384.0 |]
    "ltc_mcf_batch_workers"

let m_batch_seconds =
  Ltc_util.Metrics.histogram ~help:"wall time per MCF-LTC batch solve (s)"
    "ltc_mcf_batch_seconds"

(* Deterministic preference for earlier workers among cost ties; see .mli. *)
let tie_cost ~n_workers (w : Worker.t) =
  5e-8 *. float_of_int w.index /. float_of_int (max 1 n_workers)

(* Per-run scratch shared by every batch of one [run_batches] call: the
   flow-graph arena, the solver workspace, and the task-indexed maps that
   replace the per-batch hashtables.  Everything here is allocated once
   (or grows monotonically); after the first batch the hot path allocates
   only the per-worker assignment lists. *)
type scratch = {
  g : Ltc_flow.Graph.t;            (* arena, [Graph.clear]ed per batch *)
  sol : Ltc_flow.Solver.t;         (* registry-selected backend *)
  node_of : int array;             (* task -> flow node, valid iff stamped *)
  node_stamp : int array;
  mark : int array;                (* task -> epoch of per-worker marks *)
  task_ids : int array;            (* prefix [0, n_inc): incomplete ids *)
  (* Worker->task arcs as parallel growable arrays (was a cons list). *)
  mutable wt_arc : int array;
  mutable wt_bi : int array;
  mutable wt_task : int array;
  mutable wt_score : float array;
  mutable wt_len : int;
  mutable epoch : int;             (* stamp source for node_stamp / mark *)
  (* Warm-start state: final potentials of the previous batch, keyed by
     task id (the only nodes whose identity is stable across batches). *)
  task_pot : float array;
  mutable sink_pot : float;
  mutable have_warm : bool;
  mutable cand : float array;      (* node-indexed candidate, grown on demand *)
  mutable accounted : int;         (* arena words currently charged *)
  (* Incremental-session bookkeeping: tasks whose progress changed since
     the last [Solver.set_unit] sync, deduplicated by [sync_mark]. *)
  mutable inc_ready : bool;        (* units declared on the session plane *)
  sync_ids : int array;
  mutable n_sync : int;
  sync_mark : Bytes.t;
  (* Anytime accounting: batches whose solver budget fired. *)
  m_degraded : Ltc_util.Metrics.Counter.t;
  mutable degraded_batches : int;
}

let create_scratch ~name ~solver ~n_tasks =
  let n = max n_tasks 1 in
  {
    g = Ltc_flow.Graph.create ~n:1;
    sol = Ltc_flow.Solver.create ~hint:(n + 2) solver;
    node_of = Array.make n (-1);
    node_stamp = Array.make n 0;
    mark = Array.make n 0;
    task_ids = Array.make n 0;
    wt_arc = Array.make 16 0;
    wt_bi = Array.make 16 0;
    wt_task = Array.make 16 0;
    wt_score = Array.make 16 0.0;
    wt_len = 0;
    epoch = 0;
    task_pot = Array.make n 0.0;
    sink_pot = 0.0;
    have_warm = false;
    cand = [||];
    accounted = 0;
    inc_ready = false;
    sync_ids = Array.make n 0;
    n_sync = 0;
    sync_mark = Bytes.make n '\000';
    m_degraded = Engine.degraded_counter name "solver-anytime";
    degraded_batches = 0;
  }

let push_wt scratch ~arc ~bi ~task ~score =
  let len = scratch.wt_len in
  if len = Array.length scratch.wt_arc then begin
    let cap = 2 * len in
    let grow_i a = let b = Array.make cap 0 in Array.blit a 0 b 0 len; b in
    scratch.wt_arc <- grow_i scratch.wt_arc;
    scratch.wt_bi <- grow_i scratch.wt_bi;
    scratch.wt_task <- grow_i scratch.wt_task;
    let b = Array.make cap 0.0 in
    Array.blit scratch.wt_score 0 b 0 len;
    scratch.wt_score <- b
  end;
  scratch.wt_arc.(len) <- arc;
  scratch.wt_bi.(len) <- bi;
  scratch.wt_task.(len) <- task;
  scratch.wt_score.(len) <- score;
  scratch.wt_len <- len + 1

(* Solve one batch through the configured solver backend: build the flow
   network over incomplete tasks (in the reused arena for scratch
   backends; as a delta against the live session plane for the incremental
   one), solve — optionally under an anytime budget — record the resulting
   assignments, then greedily spend leftover capacity.  When the budget
   fires mid-solve the partial flow is extracted as-is and the leftover
   pass below doubles as the greedy completion: every un-routed unit of
   worker capacity is spent on the most reliable unfinished tasks, so the
   batch always yields a feasible assignment.  Returns the updated
   arrangement. *)
let solve_batch instance tracker progress arrangement ~warm_start ~budget
    scratch batch =
  Ltc_util.Trace.with_span "mcf-ltc.batch" @@ fun () ->
  let t_batch = Ltc_util.Timer.start () in
  let n_workers = Instance.worker_count instance in
  let n_batch = Array.length batch in
  let caps = Ltc_flow.Solver.capabilities scratch.sol in
  (* Incomplete tasks get contiguous node ids after the worker nodes.
     [Progress.iter_incomplete] enumerates ascending task ids, so the
     numbering — and with it the arc layout and solver tie-breaking — is
     deterministic. *)
  let task_ids = scratch.task_ids in
  let n_inc = Progress.incomplete_count progress in
  let fill = ref 0 in
  Progress.iter_incomplete progress (fun task ->
      task_ids.(!fill) <- task;
      incr fill);
  assert (!fill = n_inc);
  scratch.epoch <- scratch.epoch + 1;
  let batch_ep = scratch.epoch in
  for i = 0 to n_inc - 1 do
    let task = task_ids.(i) in
    scratch.node_of.(task) <- 1 + n_batch + i;
    scratch.node_stamp.(task) <- batch_ep
  done;
  let use_warm = warm_start && caps.Ltc_flow.Solver.potentials in
  (* Charge the tracker for arena growth only: the high-water mark counts
     the reservation once per run, not once per batch. *)
  let charge now =
    if now > scratch.accounted then begin
      Ltc_util.Mem.Tracker.add_words tracker (now - scratch.accounted);
      scratch.accounted <- now
    end
  in
  scratch.wt_len <- 0;
  let flow_result, link_flow =
    if caps.Ltc_flow.Solver.incremental then begin
      (* Incremental path: the session's residual network and potentials
         stay alive across batches; only the delta is declared.  Units are
         created once (first batch), then only tasks whose progress changed
         since the last batch — recorded in [sync_ids] by the extraction
         and greedy passes below — are re-dimensioned. *)
      if not scratch.inc_ready then begin
        for i = 0 to n_inc - 1 do
          let task = task_ids.(i) in
          let cap =
            int_of_float (Float.ceil (Progress.remaining progress task))
          in
          Ltc_flow.Solver.set_unit scratch.sol ~unit_id:task ~cap:(max cap 1)
        done;
        scratch.inc_ready <- true
      end
      else begin
        for j = 0 to scratch.n_sync - 1 do
          let task = scratch.sync_ids.(j) in
          Bytes.set scratch.sync_mark task '\000';
          let cap =
            if Progress.is_complete progress task then 0
            else
              max
                (int_of_float (Float.ceil (Progress.remaining progress task)))
                1
          in
          Ltc_flow.Solver.set_unit scratch.sol ~unit_id:task ~cap
        done;
        scratch.n_sync <- 0
      end;
      Ltc_flow.Solver.begin_batch scratch.sol;
      Array.iteri
        (fun bi (w : Worker.t) ->
          let h = Ltc_flow.Solver.add_worker scratch.sol ~cap:w.capacity in
          assert (h = bi);
          Instance.iter_candidates instance w (fun task ->
              if scratch.node_stamp.(task) = batch_ep then begin
                let score = Instance.score instance w task in
                let cost = -.score +. tie_cost ~n_workers w in
                let link =
                  Ltc_flow.Solver.add_link scratch.sol ~worker:bi
                    ~unit_id:task ~cost
                in
                push_wt scratch ~arc:link ~bi ~task ~score
              end))
        batch;
      charge (Ltc_flow.Solver.memory_words scratch.sol);
      let r =
        Ltc_util.Trace.with_span "mcmf.solve" (fun () ->
            Ltc_flow.Solver.resolve scratch.sol ?budget ())
      in
      (r, fun arc -> Ltc_flow.Solver.link_flow scratch.sol arc)
    end
    else begin
      (* Scratch path: build the batch network in the reused arena. *)
      let source = 0 in
      let sink = 1 + n_batch + n_inc in
      let g = scratch.g in
      Ltc_flow.Graph.clear g ~n:(sink + 1);
      Array.iteri
        (fun bi (w : Worker.t) ->
          ignore
            (Ltc_flow.Graph.add_arc g ~src:source ~dst:(1 + bi)
               ~cap:w.capacity ~cost:0.0))
        batch;
      (* Worker->task arcs; each entry remembers (batch slot, task, score)
         per arc so the extraction below never recomputes Instance.score —
         each (worker, task) score is evaluated exactly once per batch. *)
      Array.iteri
        (fun bi (w : Worker.t) ->
          Instance.iter_candidates instance w (fun task ->
              if scratch.node_stamp.(task) = batch_ep then begin
                let node = scratch.node_of.(task) in
                let score = Instance.score instance w task in
                let cost = -.score +. tie_cost ~n_workers w in
                let arc =
                  Ltc_flow.Graph.add_arc g ~src:(1 + bi) ~dst:node ~cap:1
                    ~cost
                in
                push_wt scratch ~arc ~bi ~task ~score
              end))
        batch;
      for i = 0 to n_inc - 1 do
        let task = task_ids.(i) in
        let cap =
          int_of_float (Float.ceil (Progress.remaining progress task))
        in
        ignore
          (Ltc_flow.Graph.add_arc g ~src:(1 + n_batch + i) ~dst:sink
             ~cap:(max cap 1) ~cost:0.0)
      done;
      charge
        (Ltc_flow.Graph.memory_words g + (8 * Ltc_flow.Graph.node_count g));
      let init =
        if use_warm && scratch.have_warm then begin
          let nodes = sink + 1 in
          if Array.length scratch.cand < nodes then
            scratch.cand <-
              Array.make (max nodes (2 * Array.length scratch.cand)) 0.0;
          let cand = scratch.cand in
          cand.(source) <- 0.0;
          for bi = 0 to n_batch - 1 do
            cand.(1 + bi) <- 0.0
          done;
          for i = 0 to n_inc - 1 do
            cand.(1 + n_batch + i) <- scratch.task_pot.(task_ids.(i))
          done;
          cand.(sink) <- scratch.sink_pot;
          `Warm_start cand
        end
        else `Dag_topo
      in
      let r =
        Ltc_util.Trace.with_span "mcmf.solve" (fun () ->
            Ltc_flow.Solver.solve scratch.sol ~init ?budget g ~source ~sink)
      in
      if use_warm then begin
        let pot = Ltc_flow.Solver.borrow_potentials scratch.sol in
        for i = 0 to n_inc - 1 do
          scratch.task_pot.(task_ids.(i)) <- pot.(1 + n_batch + i)
        done;
        scratch.sink_pot <- pot.(sink);
        scratch.have_warm <- true
      end;
      (r, fun arc -> Ltc_flow.Graph.flow g arc)
    end
  in
  (* A fired anytime budget is a degradation *inside* the solver: the
     partial flow is kept and the greedy pass below completes the batch.
     Counted per batch, separately from the engine's fallback-policy
     degradations (same metric family, distinct fallback label). *)
  if flow_result.Ltc_flow.Mcmf.exhausted then begin
    scratch.degraded_batches <- scratch.degraded_batches + 1;
    Ltc_util.Metrics.Counter.incr scratch.m_degraded;
    Logs.debug ~src:Ltc_util.Log.algo (fun m ->
        m "MCF-LTC batch: solver budget exhausted after %d rounds; greedy \
           completion takes over"
          flow_result.Ltc_flow.Mcmf.rounds)
  end;
  Logs.debug ~src:Ltc_util.Log.algo (fun m ->
      m "MCF-LTC batch: %d workers, %d open tasks, %d links -> flow %d, cost %.3f (%d rounds)"
        n_batch n_inc scratch.wt_len
        flow_result.Ltc_flow.Mcmf.flow flow_result.Ltc_flow.Mcmf.cost
        flow_result.Ltc_flow.Mcmf.rounds);
  (* Record which tasks' progress changes, so the incremental session can
     re-dimension exactly the touched units before the next batch. *)
  let touch task =
    if
      caps.Ltc_flow.Solver.incremental
      && Bytes.get scratch.sync_mark task = '\000'
    then begin
      Bytes.set scratch.sync_mark task '\001';
      scratch.sync_ids.(scratch.n_sync) <- task;
      scratch.n_sync <- scratch.n_sync + 1
    end
  in
  (* Extract the arrangement M' of this batch, per worker. *)
  let assigned = Array.make n_batch 0 in
  let per_worker = Array.make n_batch [] in
  for k = 0 to scratch.wt_len - 1 do
    if link_flow scratch.wt_arc.(k) = 1 then begin
      let bi = scratch.wt_bi.(k) in
      per_worker.(bi) <-
        (scratch.wt_task.(k), scratch.wt_score.(k)) :: per_worker.(bi);
      assigned.(bi) <- assigned.(bi) + 1
    end
  done;
  if caps.Ltc_flow.Solver.incremental then
    Ltc_flow.Solver.end_batch scratch.sol;
  let arrangement = ref arrangement in
  Array.iteri
    (fun bi (w : Worker.t) ->
      List.iter
        (fun (task, score) ->
          Progress.record progress ~task ~score;
          touch task;
          arrangement := Arrangement.add !arrangement ~worker:w.index ~task)
        (List.sort compare per_worker.(bi)))
    batch;
  (* Lines 8-15: leftover capacity goes to the most reliable unfinished
     tasks this worker has not performed in this batch. *)
  Array.iteri
    (fun bi (w : Worker.t) ->
      let leftover = w.capacity - assigned.(bi) in
      if leftover > 0 && not (Progress.all_complete progress) then begin
        scratch.epoch <- scratch.epoch + 1;
        let ep = scratch.epoch in
        List.iter (fun (task, _) -> scratch.mark.(task) <- ep) per_worker.(bi);
        let heap = Ltc_util.Bounded_heap.create ~k:leftover () in
        Instance.iter_candidates_sorted instance w (fun task ->
            if
              (not (Progress.is_complete progress task))
              && scratch.mark.(task) <> ep
            then
              Ltc_util.Bounded_heap.push heap
                ~score:(Instance.score instance w task)
                task);
        List.iter
          (fun (score, task) ->
            Progress.record progress ~task ~score;
            touch task;
            arrangement := Arrangement.add !arrangement ~worker:w.index ~task)
          (Ltc_util.Bounded_heap.pop_all heap)
      end)
    batch;
  Ltc_util.Metrics.Counter.incr m_batches;
  Ltc_util.Metrics.Histogram.observe m_batch_workers (float_of_int n_batch);
  Ltc_util.Metrics.Histogram.observe m_batch_seconds
    (Ltc_util.Timer.elapsed_s t_batch);
  !arrangement

(* Shared batch loop: [batch_size ~first] gives each batch's width. *)
let run_batches ~name ~batch_size ?(warm_start = false) ?(solver = "sspa")
    ?budget instance =
  Ltc_util.Trace.with_span ("engine:" ^ name) @@ fun () ->
  let n_tasks = Instance.task_count instance in
  let workers = instance.Instance.workers in
  let n_workers = Array.length workers in
  let tracker = Ltc_util.Mem.Tracker.create () in
  if n_tasks = 0 || n_workers = 0 then
    Engine.of_arrangement ~name ~workers_consumed:0 ~tracker instance
      Arrangement.empty
  else begin
    let progress =
      Progress.create_per_task ~thresholds:(Instance.thresholds instance)
    in
    Ltc_util.Mem.Tracker.set_baseline_words tracker
      (Progress.memory_words progress);
    let scratch = create_scratch ~name ~solver ~n_tasks in
    let arrangement = ref Arrangement.empty in
    let cursor = ref 0 in
    let first = ref true in
    while (not (Progress.all_complete progress)) && !cursor < n_workers do
      let size = min (batch_size ~first:!first) (n_workers - !cursor) in
      first := false;
      let batch = Array.sub workers !cursor size in
      cursor := !cursor + size;
      arrangement :=
        solve_batch instance tracker progress !arrangement ~warm_start ~budget
          scratch batch
    done;
    Ltc_util.Mem.Tracker.remove_words tracker scratch.accounted;
    Engine.of_arrangement ~name ~workers_consumed:!cursor ~tracker
      ~telemetry:
        { Engine.no_telemetry with degraded = scratch.degraded_batches }
      instance !arrangement
  end

(* Theorem-2 batch width m = |T| ceil(delta) / K, using the strictest
   per-task threshold (conservative: larger batches only add choice). *)
let theorem2_m instance =
  let n_tasks = Instance.task_count instance in
  let workers = instance.Instance.workers in
  let k = if Array.length workers = 0 then 1 else workers.(0).Worker.capacity in
  let delta =
    Array.fold_left Float.max (Instance.threshold instance)
      (Instance.thresholds instance)
  in
  float_of_int n_tasks *. Float.ceil delta /. float_of_int k

let run ?(config = default_config) instance =
  if config.first_batch_factor <= 0.0 || config.batch_factor <= 0.0 then
    invalid_arg "Mcf_ltc.run: batch factors must be positive";
  let m = theorem2_m instance in
  let batch_size ~first =
    let factor =
      if first then config.first_batch_factor else config.batch_factor
    in
    max 1 (int_of_float (factor *. m))
  in
  run_batches ~name ~batch_size ~warm_start:config.warm_start
    ~solver:config.solver ?budget:config.budget instance

let run_buffered ~buffer instance =
  if buffer < 1 then invalid_arg "Mcf_ltc.run_buffered: buffer must be >= 1";
  run_batches
    ~name:(Printf.sprintf "Buffered(%d)" buffer)
    ~batch_size:(fun ~first:_ -> buffer)
    instance
