open Ltc_core

let name = "MCF-LTC"

type config = {
  first_batch_factor : float;
  batch_factor : float;
}

let default_config = { first_batch_factor = 1.5; batch_factor = 1.0 }

let m_batches =
  Ltc_util.Metrics.counter ~help:"MCF-LTC batches solved"
    "ltc_mcf_batches_total"

let m_batch_workers =
  Ltc_util.Metrics.histogram ~help:"workers per MCF-LTC batch"
    ~buckets:[| 1.0; 4.0; 16.0; 64.0; 256.0; 1024.0; 4096.0; 16384.0 |]
    "ltc_mcf_batch_workers"

let m_batch_seconds =
  Ltc_util.Metrics.histogram ~help:"wall time per MCF-LTC batch solve (s)"
    "ltc_mcf_batch_seconds"

(* Deterministic preference for earlier workers among cost ties; see .mli. *)
let tie_cost ~n_workers (w : Worker.t) =
  5e-8 *. float_of_int w.index /. float_of_int (max 1 n_workers)

(* Solve one batch: build the flow network over incomplete tasks, run SSPA,
   record the resulting assignments, then greedily spend leftover capacity.
   Returns the updated arrangement. *)
let solve_batch instance tracker progress arrangement batch =
  Ltc_util.Trace.with_span "mcf-ltc.batch" @@ fun () ->
  let t_batch = Ltc_util.Timer.start () in
  let n_workers = Instance.worker_count instance in
  let n_batch = Array.length batch in
  (* Incomplete tasks get contiguous node ids after the worker nodes. *)
  let task_ids =
    Progress.fold_incomplete progress ~init:[] ~f:(fun acc task -> task :: acc)
  in
  let task_ids = Array.of_list (List.sort compare task_ids) in
  let n_inc = Array.length task_ids in
  let node_of_task = Hashtbl.create (2 * max n_inc 1) in
  Array.iteri (fun i task -> Hashtbl.add node_of_task task (1 + n_batch + i)) task_ids;
  let source = 0 in
  let sink = 1 + n_batch + n_inc in
  let g = Ltc_flow.Graph.create ~n:(sink + 1) in
  Array.iteri
    (fun bi (w : Worker.t) ->
      ignore
        (Ltc_flow.Graph.add_arc g ~src:source ~dst:(1 + bi) ~cap:w.capacity
           ~cost:0.0))
    batch;
  (* Worker->task arcs; each entry remembers (batch slot, task, score) per
     arc so the extraction below never recomputes Instance.score — each
     (worker, task) score is evaluated exactly once per batch. *)
  let worker_task_arcs = ref [] in
  Array.iteri
    (fun bi (w : Worker.t) ->
      Instance.iter_candidates instance w (fun task ->
          match Hashtbl.find_opt node_of_task task with
          | None -> ()
          | Some node ->
            let score = Instance.score instance w task in
            let cost = -.score +. tie_cost ~n_workers w in
            let arc =
              Ltc_flow.Graph.add_arc g ~src:(1 + bi) ~dst:node ~cap:1 ~cost
            in
            worker_task_arcs := (arc, bi, task, score) :: !worker_task_arcs))
    batch;
  Array.iteri
    (fun i task ->
      let cap = int_of_float (Float.ceil (Progress.remaining progress task)) in
      ignore
        (Ltc_flow.Graph.add_arc g ~src:(1 + n_batch + i) ~dst:sink
           ~cap:(max cap 1) ~cost:0.0))
    task_ids;
  let graph_words =
    Ltc_flow.Graph.memory_words g + (8 * Ltc_flow.Graph.node_count g)
  in
  Ltc_util.Mem.Tracker.add_words tracker graph_words;
  let flow_result =
    Ltc_util.Trace.with_span "mcmf.solve" (fun () ->
        Ltc_flow.Mcmf.run g ~source ~sink)
  in
  Logs.debug ~src:Ltc_util.Log.algo (fun m ->
      m "MCF-LTC batch: %d workers, %d open tasks, %d arcs -> flow %d, cost %.3f (%d rounds)"
        n_batch n_inc
        (Ltc_flow.Graph.arc_count g)
        flow_result.Ltc_flow.Mcmf.flow flow_result.Ltc_flow.Mcmf.cost
        flow_result.Ltc_flow.Mcmf.rounds);
  (* Extract the arrangement M' of this batch, per worker. *)
  let performed = Hashtbl.create 64 in
  let assigned = Array.make n_batch 0 in
  let per_worker = Array.make n_batch [] in
  List.iter
    (fun (arc, bi, task, score) ->
      if Ltc_flow.Graph.flow g arc = 1 then begin
        per_worker.(bi) <- (task, score) :: per_worker.(bi);
        assigned.(bi) <- assigned.(bi) + 1;
        Hashtbl.add performed (bi, task) ()
      end)
    !worker_task_arcs;
  let arrangement = ref arrangement in
  Array.iteri
    (fun bi (w : Worker.t) ->
      List.iter
        (fun (task, score) ->
          Progress.record progress ~task ~score;
          arrangement := Arrangement.add !arrangement ~worker:w.index ~task)
        (List.sort compare per_worker.(bi)))
    batch;
  (* Lines 8-15: leftover capacity goes to the most reliable unfinished
     tasks this worker has not performed in this batch. *)
  Array.iteri
    (fun bi (w : Worker.t) ->
      let leftover = w.capacity - assigned.(bi) in
      if leftover > 0 && not (Progress.all_complete progress) then begin
        let heap = Ltc_util.Bounded_heap.create ~k:leftover () in
        Instance.iter_candidates_sorted instance w (fun task ->
            if
              (not (Progress.is_complete progress task))
              && not (Hashtbl.mem performed (bi, task))
            then
              Ltc_util.Bounded_heap.push heap
                ~score:(Instance.score instance w task)
                task);
        List.iter
          (fun (score, task) ->
            Progress.record progress ~task ~score;
            arrangement := Arrangement.add !arrangement ~worker:w.index ~task)
          (Ltc_util.Bounded_heap.pop_all heap)
      end)
    batch;
  Ltc_util.Mem.Tracker.remove_words tracker graph_words;
  Ltc_util.Metrics.Counter.incr m_batches;
  Ltc_util.Metrics.Histogram.observe m_batch_workers (float_of_int n_batch);
  Ltc_util.Metrics.Histogram.observe m_batch_seconds
    (Ltc_util.Timer.elapsed_s t_batch);
  !arrangement

(* Shared batch loop: [batch_size ~first] gives each batch's width. *)
let run_batches ~name ~batch_size instance =
  Ltc_util.Trace.with_span ("engine:" ^ name) @@ fun () ->
  let n_tasks = Instance.task_count instance in
  let workers = instance.Instance.workers in
  let n_workers = Array.length workers in
  let tracker = Ltc_util.Mem.Tracker.create () in
  if n_tasks = 0 || n_workers = 0 then
    Engine.of_arrangement ~name ~workers_consumed:0 ~tracker instance
      Arrangement.empty
  else begin
    let progress =
      Progress.create_per_task ~thresholds:(Instance.thresholds instance)
    in
    Ltc_util.Mem.Tracker.set_baseline_words tracker
      (Progress.memory_words progress);
    let arrangement = ref Arrangement.empty in
    let cursor = ref 0 in
    let first = ref true in
    while (not (Progress.all_complete progress)) && !cursor < n_workers do
      let size = min (batch_size ~first:!first) (n_workers - !cursor) in
      first := false;
      let batch = Array.sub workers !cursor size in
      cursor := !cursor + size;
      arrangement := solve_batch instance tracker progress !arrangement batch
    done;
    Engine.of_arrangement ~name ~workers_consumed:!cursor ~tracker instance
      !arrangement
  end

(* Theorem-2 batch width m = |T| ceil(delta) / K, using the strictest
   per-task threshold (conservative: larger batches only add choice). *)
let theorem2_m instance =
  let n_tasks = Instance.task_count instance in
  let workers = instance.Instance.workers in
  let k = if Array.length workers = 0 then 1 else workers.(0).Worker.capacity in
  let delta =
    Array.fold_left Float.max (Instance.threshold instance)
      (Instance.thresholds instance)
  in
  float_of_int n_tasks *. Float.ceil delta /. float_of_int k

let run ?(config = default_config) instance =
  if config.first_batch_factor <= 0.0 || config.batch_factor <= 0.0 then
    invalid_arg "Mcf_ltc.run: batch factors must be positive";
  let m = theorem2_m instance in
  let batch_size ~first =
    let factor =
      if first then config.first_batch_factor else config.batch_factor
    in
    max 1 (int_of_float (factor *. m))
  in
  run_batches ~name ~batch_size instance

let run_buffered ~buffer instance =
  if buffer < 1 then invalid_arg "Mcf_ltc.run_buffered: buffer must be >= 1";
  run_batches
    ~name:(Printf.sprintf "Buffered(%d)" buffer)
    ~batch_size:(fun ~first:_ -> buffer)
    instance
