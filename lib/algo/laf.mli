(** Largest Acc First — Algorithm 2 (online, competitive ratio 7.967).

    On each arrival, assign the [K] unfinished candidate tasks with the
    largest [Acc*(w, t)], ties broken towards the lower task id (this is the
    tie-break that makes the paper's Example 3 trace end at latency 8). *)

val name : string

val policy : Engine.policy

val run : Ltc_core.Instance.t -> Engine.outcome
