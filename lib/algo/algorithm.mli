(** Registry of the five algorithms compared in the paper's evaluation.

    The list order matches the legends of Figs. 3-4: Base-off, MCF-LTC,
    Random, LAF, AAM. *)

type kind = Offline | Online

type t = {
  name : string;
  kind : kind;
  run : Ltc_core.Instance.t -> Engine.outcome;
}

val base_off : t
val mcf_ltc : t
val random : seed:int -> t
val laf : t
val aam : t

val all : seed:int -> t list
(** All five, in the paper's plot order.  [seed] feeds the Random
    baseline. *)

val find : seed:int -> string -> t option
(** Case-insensitive lookup by name. *)

val pp_kind : Format.formatter -> kind -> unit
