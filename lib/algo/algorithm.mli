(** The algorithm registry — the one dispatch surface over every
    assignment algorithm in the repo.

    The CLI ([ltc run]/[ltc serve]), the sweep {!Runner} and the streaming
    service all resolve algorithms by name through {!find}; per-algorithm
    modules export bare [policy]/[run] values and register here.
    {!paper} lists the five algorithms of the paper's evaluation in the
    legend order of Figs. 3-4: Base-off, MCF-LTC, Random, LAF, AAM. *)

type kind = Offline | Online

type t = {
  name : string;
  kind : kind;
  run : seed:int -> Ltc_core.Instance.t -> Engine.outcome;
      (** One-shot batch run.  Deterministic algorithms ignore [seed];
          seeded baselines (Random, Random-dyn) derive their stream from
          it, so a sweep's per-repetition seed reaches them uniformly. *)
  policy : (Ltc_util.Rng.t -> Engine.policy) option;
      (** Arrival-at-a-time form for the streaming service: the service
          owns the generator (journaled and restored across crashes) and
          the policy draws from it.  [None] for algorithms that need the
          whole arrival sequence upfront (offline ones, dynamic-release
          wrappers) — those cannot serve a live stream. *)
}

val base_off : t
val mcf_ltc : t
val random : t
val laf : t
val aam : t
val lgf : t
val lrf : t
val nearest_first : t
val laf_dyn : t
val aam_dyn : t
val random_dyn : t

val paper : t list
(** The paper's five, in plot order.  Default algorithm set of [ltc run]
    and {!Runner.sweep}. *)

val all : t list
(** Every registered algorithm: {!paper} then the strategy ablations
    (LGF-only, LRF-only, Nearest) and the dynamic-arrival variants
    (LAF-dyn, AAM-dyn, Random-dyn with an all-zero release vector). *)

val names : unit -> string list
(** Registry names in {!all} order (for error messages and [--help]). *)

val find : string -> t
(** Case-insensitive lookup.  @raise Invalid_argument with the known-name
    list on a miss. *)

val find_opt : string -> t option

val pp_kind : Format.formatter -> kind -> unit
