let lower ~n_tasks ~delta ~k = float_of_int n_tasks *. delta /. float_of_int k

let upper ~n_tasks ~delta ~k =
  (10.0 *. float_of_int n_tasks *. delta /. float_of_int k)
  +. (float_of_int n_tasks /. float_of_int k)
  +. 1.0

let mcnaughton ~n_tasks ~delta ~k ~r =
  if r <= 0.0 then invalid_arg "Bounds.mcnaughton: r must be positive";
  let per_task = int_of_float (Float.ceil (delta /. r)) in
  let spread =
    int_of_float
      (Float.ceil (float_of_int (n_tasks * per_task) /. float_of_int k))
  in
  max spread per_task

let of_instance instance =
  let open Ltc_core in
  let n_tasks = Instance.task_count instance in
  let delta = Instance.threshold instance in
  let k =
    if Instance.worker_count instance = 0 then 1
    else instance.Instance.workers.(0).Worker.capacity
  in
  (lower ~n_tasks ~delta ~k, upper ~n_tasks ~delta ~k)
