open Ltc_core

exception Budget_exceeded

(* Enumerate the subsets of size [size] of [items], calling [f] with each
   (as a list).  Stops early when [f] returns true; returns whether any call
   did. *)
let exists_subset items size f =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let chosen = Array.make (max size 1) 0 in
  let rec go start depth =
    if depth = size then f (Array.to_list (Array.sub chosen 0 size))
    else begin
      let rec try_from i =
        if i > n - (size - depth) then false
        else begin
          chosen.(depth) <- arr.(i);
          if go (i + 1) (depth + 1) then true else try_from (i + 1)
        end
      in
      try_from start
    end
  in
  if size = 0 then f [] else go 0 0

let feasible_with ?(max_nodes = 5_000_000) instance l =
  let n_tasks = Instance.task_count instance in
  let workers = instance.Instance.workers in
  let l = min l (Array.length workers) in
  let thresholds = Instance.thresholds instance in
  let candidates =
    Array.init l (fun i -> Instance.candidates instance workers.(i))
  in
  (* suffix.(i).(t): total score workers i.. could still add to task t. *)
  let suffix = Array.make_matrix (l + 1) (max n_tasks 1) 0.0 in
  for i = l - 1 downto 0 do
    Array.blit suffix.(i + 1) 0 suffix.(i) 0 n_tasks;
    List.iter
      (fun task ->
        suffix.(i).(task) <-
          suffix.(i).(task) +. Instance.score instance workers.(i) task)
      candidates.(i)
  done;
  let s = Array.make (max n_tasks 1) 0.0 in
  let nodes = ref 0 in
  let solution = ref [] in
  let eps = 1e-9 in
  let complete task = s.(task) >= thresholds.(task) -. eps in
  let all_complete () =
    let rec go task = task >= n_tasks || (complete task && go (task + 1)) in
    go 0
  in
  let rec dfs i acc =
    incr nodes;
    if !nodes > max_nodes then raise Budget_exceeded;
    if all_complete () then begin
      solution := acc;
      true
    end
    else if i >= l then false
    else begin
      (* Prune: some task can no longer be completed even with all future
         contributions. *)
      let doomed = ref false in
      for task = 0 to n_tasks - 1 do
        if
          (not (complete task))
          && s.(task) +. suffix.(i).(task) < thresholds.(task) -. eps
        then doomed := true
      done;
      if !doomed then false
      else begin
        let w = workers.(i) in
        let open_tasks = List.filter (fun t -> not (complete t)) candidates.(i) in
        let size = min w.Worker.capacity (List.length open_tasks) in
        exists_subset open_tasks size (fun subset ->
            List.iter
              (fun task -> s.(task) <- s.(task) +. Instance.score instance w task)
              subset;
            let found =
              dfs (i + 1) (List.map (fun task -> (w.Worker.index, task)) subset :: acc)
            in
            if not found then
              List.iter
                (fun task ->
                  s.(task) <- s.(task) -. Instance.score instance w task)
                subset;
            found)
      end
    end
  in
  if dfs 0 [] then begin
    let arrangement =
      List.fold_left
        (fun m (worker, task) -> Arrangement.add m ~worker ~task)
        Arrangement.empty
        (List.concat (List.rev !solution))
    in
    Some arrangement
  end
  else None

let solve ?max_nodes instance =
  let n = Instance.worker_count instance in
  match feasible_with ?max_nodes instance n with
  | None -> None
  | Some _ ->
    (* Binary search the minimal feasible latency (feasibility is monotone
       in the prefix length). *)
    let rec search lo hi best =
      (* Invariant: hi is feasible with witness [best]; lo - 1 infeasible. *)
      if lo >= hi then (hi, best)
      else begin
        let mid = (lo + hi) / 2 in
        match feasible_with ?max_nodes instance mid with
        | Some a -> search lo mid a
        | None -> search (mid + 1) hi best
      end
    in
    let witness =
      match feasible_with ?max_nodes instance n with
      | Some a -> a
      | None -> assert false
    in
    let latency, arrangement = search 1 n witness in
    (* The witness may finish earlier than the searched bound. *)
    Some (min latency (Arrangement.latency arrangement), arrangement)
