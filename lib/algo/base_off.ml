open Ltc_core

let name = "Base-off"

(* Precomputed per task: ascending arrival indexes of its nearby workers,
   with a cursor marking how many have already arrived.  [remaining] is then
   an O(1) pointer difference (amortising the cursor advance over the run). *)
type future = {
  arrivals : int array array;  (* arrivals.(task): sorted worker indexes *)
  cursor : int array;
}

let build_future instance =
  let n_tasks = Instance.task_count instance in
  let buckets = Array.make (max n_tasks 1) [] in
  Array.iter
    (fun (w : Worker.t) ->
      Instance.iter_candidates instance w (fun task ->
          buckets.(task) <- w.index :: buckets.(task)))
    instance.Instance.workers;
  {
    (* Workers were scanned in arrival order, so reversing each bucket
       yields ascending indexes without sorting. *)
    arrivals = Array.map (fun b -> Array.of_list (List.rev b)) buckets;
    cursor = Array.make (max n_tasks 1) 0;
  }

let remaining_nearby future ~task ~arrived_index =
  let arr = future.arrivals.(task) in
  let len = Array.length arr in
  while future.cursor.(task) < len && arr.(future.cursor.(task)) <= arrived_index do
    future.cursor.(task) <- future.cursor.(task) + 1
  done;
  len - future.cursor.(task)

let future_words future =
  Array.fold_left
    (fun acc arr -> acc + Array.length arr + 1)
    (Array.length future.cursor)
    future.arrivals

let policy instance tracker progress =
  let future = build_future instance in
  Ltc_util.Mem.Tracker.add_words tracker (future_words future);
  fun (w : Worker.t) ->
    let heap = Ltc_util.Bounded_heap.create ~k:w.capacity () in
    List.iter
      (fun task ->
        if not (Progress.is_complete progress task) then begin
          let supply = remaining_nearby future ~task ~arrived_index:w.index in
          (* Scarcest-first: fewer future helpers = higher priority. *)
          Ltc_util.Bounded_heap.push heap ~score:(-.float_of_int supply) task
        end)
      (Instance.candidates instance w);
    List.map snd (Ltc_util.Bounded_heap.pop_all heap)

let run instance = Engine.run ~name policy instance
