(** Average And Max — Algorithm 3 (online, competitive ratio 7.738).

    A hybrid greedy inspired by McNaughton's rule.  Per arrival it compares

    - [avg = (sum over unfinished t of (delta - S[t])) / K], the average
      number of workers still needed, with
    - [maxRemain = max over unfinished t of (delta - S[t])], the demand of
      the hardest task,

    and ranks candidates by Largest Gain First
    ([min(Acc*(w,t), delta - S[t])]) while [avg >= maxRemain], switching to
    Largest Remaining First ([delta - S[t]]) once some difficult task becomes
    the bottleneck.  Reproduces the paper's Example 4 trace (latency 7). *)

val name : string

val policy : Engine.policy

val run : Ltc_core.Instance.t -> Engine.outcome
