type kind = Offline | Online

type t = {
  name : string;
  kind : kind;
  run : seed:int -> Ltc_core.Instance.t -> Engine.outcome;
  policy : (Ltc_util.Rng.t -> Engine.policy) option;
}

(* Deterministic algorithms ignore the seed; keeping it in the signature
   lets one dispatch surface drive both them and the seeded baselines with
   the caller's per-repetition seed (Runner threads it through every
   sweep cell). *)

let base_off =
  {
    name = Base_off.name;
    kind = Offline;
    run = (fun ~seed:_ i -> Base_off.run i);
    policy = None;
  }

let mcf_ltc =
  {
    name = Mcf_ltc.name;
    kind = Offline;
    run = (fun ~seed:_ i -> Mcf_ltc.run i);
    policy = None;
  }

let random =
  {
    name = Random_assign.name;
    kind = Online;
    run = (fun ~seed i -> Random_assign.run ~seed i);
    policy = Some Random_assign.policy_with_rng;
  }

let laf =
  {
    name = Laf.name;
    kind = Online;
    run = (fun ~seed:_ i -> Laf.run i);
    policy = Some (fun _rng -> Laf.policy);
  }

let aam =
  {
    name = Aam.name;
    kind = Online;
    run = (fun ~seed:_ i -> Aam.run i);
    policy = Some (fun _rng -> Aam.policy);
  }

let lgf =
  {
    name = "LGF-only";
    kind = Online;
    run = (fun ~seed:_ i -> Strategies.lgf i);
    policy = Some (fun _rng -> Strategies.lgf_policy);
  }

let lrf =
  {
    name = "LRF-only";
    kind = Online;
    run = (fun ~seed:_ i -> Strategies.lrf i);
    policy = Some (fun _rng -> Strategies.lrf_policy);
  }

let nearest_first =
  {
    name = "Nearest";
    kind = Online;
    run = (fun ~seed:_ i -> Strategies.nearest_first i);
    policy = Some (fun _rng -> Strategies.nearest_policy);
  }

(* Dynamic-arrival variants run the online strategies with every task
   released upfront when invoked through the registry (release vector all
   zero); their full release-schedule form stays on {!Dynamic.run}.  No
   [policy]: the service's session protocol has no release events yet. *)
let dynamic name strategy_of =
  {
    name;
    kind = Online;
    run =
      (fun ~seed i ->
        let n = Array.length i.Ltc_core.Instance.tasks in
        (Dynamic.run ~strategy:(strategy_of ~seed) ~release:(Array.make n 0) i)
          .Dynamic.engine);
    policy = None;
  }

let laf_dyn = dynamic "LAF-dyn" (fun ~seed:_ -> Dynamic.Laf_d)
let aam_dyn = dynamic "AAM-dyn" (fun ~seed:_ -> Dynamic.Aam_d)
let random_dyn = dynamic "Random-dyn" (fun ~seed -> Dynamic.Random_d seed)

let paper = [ base_off; mcf_ltc; random; laf; aam ]

let all =
  paper @ [ lgf; lrf; nearest_first; laf_dyn; aam_dyn; random_dyn ]

let names () = List.map (fun t -> t.name) all

let find_opt name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun t -> String.lowercase_ascii t.name = target) all

let find name =
  match find_opt name with
  | Some t -> t
  | None ->
    invalid_arg
      (Printf.sprintf "unknown algorithm %S (try: %s)" name
         (String.concat ", " (names ())))

let pp_kind fmt = function
  | Offline -> Format.fprintf fmt "offline"
  | Online -> Format.fprintf fmt "online"
