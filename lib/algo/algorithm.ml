type kind = Offline | Online

type t = {
  name : string;
  kind : kind;
  run : Ltc_core.Instance.t -> Engine.outcome;
}

let base_off = { name = Base_off.name; kind = Offline; run = Base_off.run }

let mcf_ltc =
  { name = Mcf_ltc.name; kind = Offline; run = (fun i -> Mcf_ltc.run i) }

let random ~seed =
  { name = Random_assign.name; kind = Online; run = Random_assign.run ~seed }

let laf = { name = Laf.name; kind = Online; run = Laf.run }
let aam = { name = Aam.name; kind = Online; run = Aam.run }

let all ~seed = [ base_off; mcf_ltc; random ~seed; laf; aam ]

let find ~seed name =
  let target = String.lowercase_ascii name in
  List.find_opt
    (fun t -> String.lowercase_ascii t.name = target)
    (all ~seed)

let pp_kind fmt = function
  | Offline -> Format.fprintf fmt "offline"
  | Online -> Format.fprintf fmt "online"
