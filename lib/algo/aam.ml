open Ltc_core

let name = "AAM"

let policy instance tracker progress =
  let heap_budget (w : Worker.t) = 4 * w.capacity in
  fun (w : Worker.t) ->
    (* Lines 4-5: both aggregates are maintained incrementally by
       [Progress], so the per-arrival cost is O(candidates * log K). *)
    let avg = Progress.sum_remaining progress /. float_of_int w.capacity in
    let max_remain = Progress.max_remaining progress in
    let use_lgf = avg >= max_remain in
    let heap = Ltc_util.Bounded_heap.create ~k:w.capacity () in
    Ltc_util.Mem.Tracker.add_words tracker (heap_budget w);
    List.iter
      (fun task ->
        if not (Progress.is_complete progress task) then begin
          let score =
            if use_lgf then
              Float.min
                (Instance.score instance w task)
                (Progress.remaining progress task)
            else Progress.remaining progress task
          in
          Ltc_util.Bounded_heap.push heap ~score task
        end)
      (Instance.candidates instance w);
    let chosen = List.map snd (Ltc_util.Bounded_heap.pop_all heap) in
    Ltc_util.Mem.Tracker.remove_words tracker (heap_budget w);
    chosen

let run instance = Engine.run ~name policy instance
