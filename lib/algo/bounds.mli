(** Latency bounds from Theorem 2 and McNaughton's rule.

    With [|T| >= K], the optimal maximum latency lies in
    [\[ |T| delta / K,  10 |T| delta / K + |T| / K + 1 \]]; both ends follow
    from McNaughton's rule applied with the extreme per-assignment scores
    ([Acc* = 1] and [Acc* > 0.1], the floor implied by the 0.66 trust
    threshold).  MCF-LTC sizes its batches with the lower bound; the
    [ablation-approx] bench reports measured latencies against both. *)

val lower : n_tasks:int -> delta:float -> k:int -> float
(** [|T| delta / K]. *)

val upper : n_tasks:int -> delta:float -> k:int -> float
(** [10 |T| delta / K + |T| / K + 1]. *)

val mcnaughton : n_tasks:int -> delta:float -> k:int -> r:float -> int
(** Optimal latency when every assignment scores exactly [r]:
    [max (ceil (|T| * ceil(delta/r) / K)) (ceil (delta/r))]. *)

val of_instance : Ltc_core.Instance.t -> float * float
(** [(lower, upper)] for an instance (uses the first worker's capacity, the
    paper's uniform [K]). *)
