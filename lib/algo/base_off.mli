(** Base-off — the paper's offline baseline (Sec. V-A).

    "tasks with fewer workers nearby (from the remaining workers) are
    greedily assigned to the new worker when s/he arrives": the baseline
    walks the arrival sequence like an online algorithm but consults the
    future — each arriving worker receives the [K] unfinished candidate
    tasks with the {e fewest} not-yet-arrived nearby workers, i.e. the tasks
    whose supply of helpers is about to dry up. *)

val name : string

val run : Ltc_core.Instance.t -> Engine.outcome
