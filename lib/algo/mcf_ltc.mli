(** MCF-LTC — Algorithm 1 (offline, 7.5-approximation).

    Processes the known arrival sequence in batches sized by the Theorem-2
    lower bound [m = |T| * ceil(delta) / K] (first batch [1.5 m]).  Each
    batch is reduced to a min-cost max-flow instance

    {v st -[cap K, cost 0]-> w -[cap 1, cost -Acc(w,t)^star]-> t
                                 -[cap ceil(delta - S[t]), cost 0]-> ed v}

    solved with {!Ltc_flow.Mcmf} (SSPA); leftover worker capacity is then
    spent greedily on the highest-[Acc*] unfinished tasks (Algorithm 1 lines
    8-15).  A tie-break perturbation of [5e-8 * index / |W|] on the [w->t]
    arc costs prefers earlier workers among equally accurate ones — it can
    only lower the latency objective and pins down Example 2's answer (6).

    The batch factors are exposed for the [ablation-batch] bench, which
    reproduces the paper's observation that large batches can make MCF-LTC
    lose to AAM (Sec. V-B1). *)

val name : string

type config = {
  first_batch_factor : float;  (** paper: 1.5 *)
  batch_factor : float;        (** paper: 1.0 *)
}

val default_config : config

val run : ?config:config -> Ltc_core.Instance.t -> Engine.outcome
(** @raise Invalid_argument when a batch factor is not positive. *)

val run_buffered : buffer:int -> Ltc_core.Instance.t -> Engine.outcome
(** Buffered-online relaxation: Definition 7 only requires a decision "a
    short time after" each arrival, so a platform may hold a small buffer
    of [buffer] workers and solve the same min-cost-flow sub-problem per
    buffer.  [buffer = 1] is a per-worker flow greedy (close to LAF);
    [buffer >= |T| ceil(delta) / K] recovers MCF-LTC's batch regime.  The
    [ext-buffer] bench sweeps the buffer size to price the value of
    waiting.  @raise Invalid_argument when [buffer < 1]. *)
