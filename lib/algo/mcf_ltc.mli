(** MCF-LTC — Algorithm 1 (offline, 7.5-approximation).

    Processes the known arrival sequence in batches sized by the Theorem-2
    lower bound [m = |T| * ceil(delta) / K] (first batch [1.5 m]).  Each
    batch is reduced to a min-cost max-flow instance

    {v st -[cap K, cost 0]-> w -[cap 1, cost -Acc(w,t)^star]-> t
                                 -[cap ceil(delta - S[t]), cost 0]-> ed v}

    solved through the {!Ltc_flow.Solver} backend named by [config.solver]
    (SSPA by default); leftover worker capacity is then
    spent greedily on the highest-[Acc*] unfinished tasks (Algorithm 1 lines
    8-15).  A tie-break perturbation of [5e-8 * index / |W|] on the [w->t]
    arc costs prefers earlier workers among equally accurate ones — it can
    only lower the latency objective and pins down Example 2's answer (6).

    {b Hot path.}  All per-batch state lives in one per-run scratch: the
    flow graph is an arena ({!Ltc_flow.Graph.clear}ed, never reallocated),
    the solver reuses one {!Ltc_flow.Mcmf.workspace}, task-id-indexed int
    arrays replace the old per-batch hashtables, and potentials are seeded
    by the single-sweep [`Dag_topo] initialiser (bit-identical to
    Bellman-Ford on these layered networks).  After the first batch the
    loop is allocation-free up to the per-worker assignment lists.  See
    DESIGN.md §9.

    The batch factors are exposed for the [ablation-batch] bench, which
    reproduces the paper's observation that large batches can make MCF-LTC
    lose to AAM (Sec. V-B1). *)

val name : string

type config = {
  first_batch_factor : float;  (** paper: 1.5 *)
  batch_factor : float;        (** paper: 1.0 *)
  warm_start : bool;
      (** Seed each batch's potentials from the previous batch's finals
          (task nodes are the stable identities; validated and fallen back
          to Bellman-Ford by {!Ltc_flow.Mcmf.run}).  Default [false]: an
          {e accepted} warm start can legitimately resolve sub-epsilon
          cost ties along a different path, and for [|W| > 50] the
          {!tie_cost} gap between adjacent workers is below the solver
          epsilon — so warm starts trade exact tie-break reproducibility
          for speed.  The [flow-batch-reuse] bench prices that trade.
          Only honoured by backends whose
          {!Ltc_flow.Solver.capabilities} report [potentials] (SSPA). *)
  solver : string;
      (** {!Ltc_flow.Solver} registry name selecting the per-batch flow
          backend: ["sspa"] (default), ["spfa"], or ["incremental"] — the
          session solver that keeps the residual network and potentials
          alive across batches and re-dimensions only the tasks whose
          progress changed.  All backends produce the same arrangement up
          to sub-epsilon cost ties. *)
  budget : Ltc_flow.Mcmf.budget option;
      (** Anytime cutoff handed to every batch solve.  [None] (default)
          solves each batch exactly.  When the budget fires, the partial
          flow is kept — it is an optimal routing of the units it did
          route — and the greedy leftover pass (Algorithm 1 lines 8-15)
          completes the batch into a feasible assignment; the batch is
          counted in [telemetry.degraded] and the
          [ltc_engine_degraded_total{fallback="solver-anytime"}] metric,
          separate from the engine's fallback-policy degradations. *)
}

val default_config : config

val tie_cost : n_workers:int -> Ltc_core.Worker.t -> float
(** The deterministic tie-break perturbation added to worker [w]'s arc
    costs: [5e-8 * w.index / max 1 n_workers].

    Interplay with the solver tolerance ({!Ltc_flow.Mcmf}'s
    [epsilon = 1e-9]): for the perturbation to steer the solver, the cost
    gap between two workers must exceed the reduced-cost tolerance, i.e.
    [5e-8 * (i - j) / |W| > 1e-9], which holds between {e adjacent} workers
    only while [|W| < 50].  Above that the preference still orders distant
    workers ([i - j > |W| / 50]) and keeps the objective deterministic for
    a fixed arc layout, but adjacent ties fall below epsilon and are
    resolved by path-search order instead.  The scale 5e-8 is deliberately
    tiny so that summed over a worker's capacity it can never outweigh a
    genuine accuracy difference (scores are O(1)); tests pin both bounds
    ([test_algo]'s tie-cost suite). *)

val run : ?config:config -> Ltc_core.Instance.t -> Engine.outcome
(** @raise Invalid_argument when a batch factor is not positive or
    [config.solver] is not a registered {!Ltc_flow.Solver} name. *)

val run_buffered : buffer:int -> Ltc_core.Instance.t -> Engine.outcome
(** Buffered-online relaxation: Definition 7 only requires a decision "a
    short time after" each arrival, so a platform may hold a small buffer
    of [buffer] workers and solve the same min-cost-flow sub-problem per
    buffer.  [buffer = 1] is a per-worker flow greedy (close to LAF);
    [buffer >= |T| ceil(delta) / K] recovers MCF-LTC's batch regime.  The
    [ext-buffer] bench sweeps the buffer size to price the value of
    waiting.  @raise Invalid_argument when [buffer < 1]. *)
