(** Exact optimum by branch-and-bound — for micro instances only.

    Offline LTC is NP-hard (Theorem 1), so this solver is exponential; it
    exists to anchor the tests (Example 1's optimum of 5) and the
    [ablation-approx] bench, which measures MCF-LTC's empirical
    approximation ratio and the online algorithms' empirical competitive
    ratios against the true optimum on small random instances.

    Search: binary search on the latency [L] over a monotone feasibility
    test.  Feasibility of [L] is decided by depth-first search over workers
    [1..L]; since scores are non-negative, assigning {e more} tasks never
    hurts feasibility, so only maximal candidate subsets are enumerated.
    Infeasible prefixes are pruned with per-task suffix bounds (the best
    score every future worker could still contribute). *)

exception Budget_exceeded
(** Raised when the node budget is exhausted; enlarge [max_nodes] or shrink
    the instance. *)

val feasible_with : ?max_nodes:int -> Ltc_core.Instance.t -> int ->
  Ltc_core.Arrangement.t option
(** [feasible_with instance l] completes all tasks using only workers
    [1..l], or returns [None].  [max_nodes] (default [5_000_000]) bounds the
    DFS. *)

val solve : ?max_nodes:int -> Ltc_core.Instance.t ->
  (int * Ltc_core.Arrangement.t) option
(** Minimum latency and a witnessing arrangement; [None] when even the full
    worker set cannot complete the tasks. *)
