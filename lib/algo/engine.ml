open Ltc_core

type telemetry = {
  decisions : int;
  decision_seconds_total : float;
  decision_seconds_max : float;
  degraded : int;
}

let no_telemetry =
  {
    decisions = 0;
    decision_seconds_total = 0.0;
    decision_seconds_max = 0.0;
    degraded = 0;
  }

type outcome = {
  name : string;
  arrangement : Arrangement.t;
  completed : bool;
  latency : int;
  workers_consumed : int;
  peak_memory_mb : float;
  telemetry : telemetry;
}

type policy =
  Instance.t -> Ltc_util.Mem.Tracker.t -> Progress.t -> Worker.t -> int list

exception Invalid_decision of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid_decision s)) fmt

let check_decisions instance (w : Worker.t) tasks =
  let n_tasks = Instance.task_count instance in
  if List.length tasks > w.capacity then
    invalid "worker %d given %d tasks, capacity %d" w.index
      (List.length tasks) w.capacity;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun task ->
      if task < 0 || task >= n_tasks then
        invalid "worker %d given out-of-range task %d" w.index task;
      if Hashtbl.mem seen task then
        invalid "worker %d given task %d twice" w.index task;
      Hashtbl.add seen task ();
      match instance.Instance.candidate_radius with
      | None -> ()
      | Some radius ->
        let d =
          Ltc_geo.Point.distance w.loc instance.Instance.tasks.(task).Task.loc
        in
        if d > radius +. 1e-9 then
          invalid "worker %d given non-candidate task %d (distance %.3f > %g)"
            w.index task d radius)
    tasks

(* Per-algorithm engine metrics; registration is a hashtable lookup, done
   once per run, and every mutation below is a no-op while disabled. *)
let engine_metrics name =
  let labels = [ ("algo", name) ] in
  ( Ltc_util.Metrics.counter ~help:"worker arrivals processed" ~labels
      "ltc_engine_arrivals_total",
    Ltc_util.Metrics.counter ~help:"assignments recorded" ~labels
      "ltc_engine_assignments_total",
    Ltc_util.Metrics.histogram ~help:"per-arrival decision latency (s)"
      ~labels "ltc_engine_decision_seconds",
    Ltc_util.Metrics.histogram ~help:"tasks assigned per arriving worker"
      ~buckets:[| 0.0; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0 |]
      ~labels "ltc_engine_assignments_per_arrival" )

let stop_counter name reason =
  Ltc_util.Metrics.counter ~help:"engine stop-rule firings by reason"
    ~labels:[ ("algo", name); ("reason", reason) ]
    "ltc_engine_stops_total"

type degrade = {
  budget_s : float;
  fallback_name : string;
  fallback : policy;
}

let degraded_counter name fallback_name =
  Ltc_util.Metrics.counter
    ~help:"arrivals decided by the fallback after a deadline miss"
    ~labels:[ ("algo", name); ("fallback", fallback_name) ]
    "ltc_engine_degraded_total"

(* Shared driver: [answered w task] decides whether an assignment actually
   produces an answer (always true in the paper's model). *)
let drive ~name ~answered ?tracker ?degrade policy instance =
  Ltc_util.Trace.with_span ("engine:" ^ name) @@ fun () ->
  let m_arrivals, m_assignments, m_decision, m_per_arrival =
    engine_metrics name
  in
  let progress =
    Progress.create_per_task ~thresholds:(Instance.thresholds instance)
  in
  let tracker =
    match tracker with
    | Some tracker -> tracker
    | None -> Ltc_util.Mem.Tracker.create ()
  in
  Ltc_util.Mem.Tracker.set_baseline_words tracker (Progress.memory_words progress);
  let decide = policy instance tracker progress in
  (* The deadline machinery is instantiated once per run: the fallback
     policy shares the engine-owned progress/tracker, so a degraded
     arrival sees exactly the state the fallback algorithm would see had
     it been running standalone up to the same progress. *)
  let degrade =
    Option.map
      (fun d ->
        if d.budget_s <= 0.0 then
          invalid_arg "Engine.run: deadline budget must be > 0";
        (d, d.fallback instance tracker progress,
         degraded_counter name d.fallback_name))
      degrade
  in
  let arrangement = ref Arrangement.empty in
  let consumed = ref 0 in
  let workers = instance.Instance.workers in
  let n = Array.length workers in
  (* Clock reads are gated on the registry switch: two gettimeofday calls
     per arrival would be measurable against sub-microsecond decisions.
     A configured deadline needs the clock unconditionally — but then the
     caller opted into per-arrival measurement anyway.  Deadline reads go
     through Fault.Clock so tests and the chaos harness can virtualise
     time (and inject solver slowdowns) deterministically. *)
  let timing = Ltc_util.Metrics.enabled () in
  let decisions = ref 0 in
  let dt_total = ref 0.0 in
  let dt_max = ref 0.0 in
  let n_degraded = ref 0 in
  let observe dt =
    if timing then begin
      dt_total := !dt_total +. dt;
      if dt > !dt_max then dt_max := dt;
      Ltc_util.Metrics.Histogram.observe m_decision dt
    end
  in
  let i = ref 0 in
  while (not (Progress.all_complete progress)) && !i < n do
    let w = workers.(!i) in
    incr i;
    incr consumed;
    incr decisions;
    let tasks =
      match degrade with
      | None ->
        if not timing then decide w
        else begin
          let t0 = Ltc_util.Timer.start () in
          let tasks = decide w in
          observe (Ltc_util.Timer.elapsed_s t0);
          tasks
        end
      | Some (d, fallback_decide, m_degraded) ->
        let t0 = Ltc_util.Fault.Clock.now_s () in
        let tasks = decide w in
        Ltc_util.Fault.check "engine.decide";
        let dt = Float.max 0.0 (Ltc_util.Fault.Clock.now_s () -. t0) in
        observe dt;
        if dt > d.budget_s then begin
          (* The primary's answer arrived past the budget: an online
             platform has already moved on, so the cheap fallback decides
             this arrival and the stream keeps flowing. *)
          incr n_degraded;
          Ltc_util.Metrics.Counter.incr m_degraded;
          Logs.debug ~src:Ltc_util.Log.algo (fun m ->
              m "%s: arrival %d blew the %.6fs budget (%.6fs); %s decides"
                name w.Worker.index d.budget_s dt d.fallback_name);
          fallback_decide w
        end
        else tasks
    in
    Ltc_util.Metrics.Counter.incr m_arrivals;
    check_decisions instance w tasks;
    let assigned = ref 0 in
    List.iter
      (fun task ->
        if answered w task then begin
          let score = Instance.score instance w task in
          Progress.record progress ~task ~score;
          arrangement := Arrangement.add !arrangement ~worker:w.index ~task;
          incr assigned
        end)
      tasks;
    Ltc_util.Metrics.Counter.add m_assignments !assigned;
    Ltc_util.Metrics.Histogram.observe m_per_arrival (float_of_int !assigned)
  done;
  let completed = Progress.all_complete progress in
  Ltc_util.Metrics.Counter.incr
    (stop_counter name (if completed then "completed" else "exhausted"));
  Logs.debug ~src:Ltc_util.Log.algo (fun m ->
      m "%s: %s after %d arrivals (latency %d, %d assignments)" name
        (if completed then "completed" else "ran out of workers")
        !consumed
        (Arrangement.latency !arrangement)
        (Arrangement.size !arrangement));
  Logs.debug ~src:Ltc_util.Log.obs (fun m ->
      m "%s: %d decisions, %.6f s total, %.6f s max" name !decisions !dt_total
        !dt_max);
  {
    name;
    arrangement = !arrangement;
    completed;
    latency = Arrangement.latency !arrangement;
    workers_consumed = !consumed;
    peak_memory_mb = Ltc_util.Mem.Tracker.high_water_mb tracker;
    telemetry =
      {
        decisions = !decisions;
        decision_seconds_total = !dt_total;
        decision_seconds_max = !dt_max;
        degraded = !n_degraded;
      };
  }

type config = {
  accept_rate : float option;
  rng : Ltc_util.Rng.t option;
  tracker : Ltc_util.Mem.Tracker.t option;
  degrade : degrade option;
}

let default_config =
  { accept_rate = None; rng = None; tracker = None; degrade = None }

(* Shared with the streaming service (Ltc_service.Session), which applies
   the same answer-gating per fed arrival: one bernoulli draw per assigned
   task, in assignment order. *)
let answered_of ~accept_rate ~rng =
  match accept_rate with
  | None -> fun _ _ -> true
  | Some q ->
    if q <= 0.0 || q > 1.0 then
      invalid_arg "Engine.run: accept_rate must be in (0, 1]";
    (match rng with
    | None -> invalid_arg "Engine.run: accept_rate requires an rng"
    | Some rng -> fun _ _ -> Ltc_util.Rng.bernoulli rng q)

let run ?(config = default_config) ~name policy instance =
  drive ~name
    ~answered:(answered_of ~accept_rate:config.accept_rate ~rng:config.rng)
    ?tracker:config.tracker ?degrade:config.degrade policy instance

let of_arrangement ~name ?workers_consumed ?tracker
    ?(telemetry = no_telemetry) instance arrangement =
  let progress =
    Progress.create_per_task ~thresholds:(Instance.thresholds instance)
  in
  List.iter
    (fun (a : Arrangement.assignment) ->
      let w = instance.Instance.workers.(a.worker - 1) in
      Progress.record progress ~task:a.task
        ~score:(Instance.score instance w a.task))
    (Arrangement.to_list arrangement);
  let latency = Arrangement.latency arrangement in
  {
    name;
    arrangement;
    completed = Progress.all_complete progress;
    latency;
    workers_consumed = Option.value workers_consumed ~default:latency;
    peak_memory_mb =
      (match tracker with
      | None -> 0.0
      | Some tr -> Ltc_util.Mem.Tracker.high_water_mb tr);
    telemetry;
  }

let pp_outcome fmt o =
  Format.fprintf fmt
    "%s: latency=%d assignments=%d completed=%b consumed=%d mem=%.2fMB" o.name
    o.latency
    (Arrangement.size o.arrangement)
    o.completed o.workers_consumed o.peak_memory_mb;
  (* Only shown when something actually degraded, so the common-case line
     stays stable for scripts and cram pins. *)
  if o.telemetry.degraded > 0 then
    Format.fprintf fmt " degraded=%d" o.telemetry.degraded
