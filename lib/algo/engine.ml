open Ltc_core

type outcome = {
  name : string;
  arrangement : Arrangement.t;
  completed : bool;
  latency : int;
  workers_consumed : int;
  peak_memory_mb : float;
}

type policy =
  Instance.t -> Ltc_util.Mem.Tracker.t -> Progress.t -> Worker.t -> int list

exception Invalid_decision of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid_decision s)) fmt

let check_decisions instance (w : Worker.t) tasks =
  let n_tasks = Instance.task_count instance in
  if List.length tasks > w.capacity then
    invalid "worker %d given %d tasks, capacity %d" w.index
      (List.length tasks) w.capacity;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun task ->
      if task < 0 || task >= n_tasks then
        invalid "worker %d given out-of-range task %d" w.index task;
      if Hashtbl.mem seen task then
        invalid "worker %d given task %d twice" w.index task;
      Hashtbl.add seen task ();
      match instance.Instance.candidate_radius with
      | None -> ()
      | Some radius ->
        let d =
          Ltc_geo.Point.distance w.loc instance.Instance.tasks.(task).Task.loc
        in
        if d > radius +. 1e-9 then
          invalid "worker %d given non-candidate task %d (distance %.3f > %g)"
            w.index task d radius)
    tasks

(* Shared driver: [answered w task] decides whether an assignment actually
   produces an answer (always true in the paper's model). *)
let drive ~name ~answered policy instance =
  let progress =
    Progress.create_per_task ~thresholds:(Instance.thresholds instance)
  in
  let tracker = Ltc_util.Mem.Tracker.create () in
  Ltc_util.Mem.Tracker.set_baseline_words tracker (Progress.memory_words progress);
  let decide = policy instance tracker progress in
  let arrangement = ref Arrangement.empty in
  let consumed = ref 0 in
  let workers = instance.Instance.workers in
  let n = Array.length workers in
  let i = ref 0 in
  while (not (Progress.all_complete progress)) && !i < n do
    let w = workers.(!i) in
    incr i;
    incr consumed;
    let tasks = decide w in
    check_decisions instance w tasks;
    List.iter
      (fun task ->
        if answered w task then begin
          let score = Instance.score instance w task in
          Progress.record progress ~task ~score;
          arrangement := Arrangement.add !arrangement ~worker:w.index ~task
        end)
      tasks
  done;
  let completed = Progress.all_complete progress in
  Logs.debug ~src:Ltc_util.Log.algo (fun m ->
      m "%s: %s after %d arrivals (latency %d, %d assignments)" name
        (if completed then "completed" else "ran out of workers")
        !consumed
        (Arrangement.latency !arrangement)
        (Arrangement.size !arrangement));
  {
    name;
    arrangement = !arrangement;
    completed;
    latency = Arrangement.latency !arrangement;
    workers_consumed = !consumed;
    peak_memory_mb = Ltc_util.Mem.Tracker.high_water_mb tracker;
  }

let run_policy ~name policy instance =
  drive ~name ~answered:(fun _ _ -> true) policy instance

let run_policy_with_noshow ~name ~accept_rate ~rng policy instance =
  if accept_rate <= 0.0 || accept_rate > 1.0 then
    invalid_arg "Engine.run_policy_with_noshow: accept_rate must be in (0, 1]";
  drive ~name
    ~answered:(fun _ _ -> Ltc_util.Rng.bernoulli rng accept_rate)
    policy instance

let of_arrangement ~name ?workers_consumed ?tracker instance arrangement =
  let progress =
    Progress.create_per_task ~thresholds:(Instance.thresholds instance)
  in
  List.iter
    (fun (a : Arrangement.assignment) ->
      let w = instance.Instance.workers.(a.worker - 1) in
      Progress.record progress ~task:a.task
        ~score:(Instance.score instance w a.task))
    (Arrangement.to_list arrangement);
  let latency = Arrangement.latency arrangement in
  {
    name;
    arrangement;
    completed = Progress.all_complete progress;
    latency;
    workers_consumed = Option.value workers_consumed ~default:latency;
    peak_memory_mb =
      (match tracker with
      | None -> 0.0
      | Some tr -> Ltc_util.Mem.Tracker.high_water_mb tr);
  }

let pp_outcome fmt o =
  Format.fprintf fmt
    "%s: latency=%d assignments=%d completed=%b consumed=%d mem=%.2fMB" o.name
    o.latency
    (Arrangement.size o.arrangement)
    o.completed o.workers_consumed o.peak_memory_mb
