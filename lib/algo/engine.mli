(** Arrival-stream execution engine.

    The engine owns everything an online LTC algorithm must not control: the
    accumulator array [S] (a {!Ltc_core.Progress.t}), the growing
    arrangement, the stopping rule ("stop once every task reached the
    threshold", Algorithms 2-3 line 11/16) and the enforcement of the
    capacity / invariable / candidate constraints.  A policy only ranks
    tasks; a buggy policy therefore raises instead of silently producing an
    invalid arrangement.

    Offline algorithms (MCF-LTC, Base-off) build their outcome themselves
    and wrap it with {!of_arrangement} so all five algorithms report through
    the same {!outcome} record. *)

open Ltc_core

type telemetry = {
  decisions : int;  (** arrivals the policy decided on *)
  decision_seconds_total : float;
      (** summed per-arrival decision wall time *)
  decision_seconds_max : float;  (** slowest single decision *)
  degraded : int;
      (** decisions that degraded: arrivals decided by the fallback
          because the primary blew its deadline, or — for offline MCF-LTC
          via {!of_arrangement} — batches whose anytime solver budget
          fired (0 without a [degrade] config / solver budget) *)
}
(** Per-run decision-cost summary from {!run}.  [decisions] is always
    counted; the two
    timing fields require the {!Ltc_util.Metrics} registry to be enabled
    when the run starts (per-arrival clock reads are skipped otherwise and
    both stay [0.]).  The same observations also feed the [ltc_engine_*]
    metric series. *)

val no_telemetry : telemetry
(** All-zero telemetry, used by {!of_arrangement} (offline algorithms have
    no per-arrival decisions). *)

type outcome = {
  name : string;
  arrangement : Arrangement.t;
  completed : bool;   (** did every task reach the threshold? *)
  latency : int;      (** the objective: max arrival index in the arrangement *)
  workers_consumed : int;
      (** arrivals processed before stopping (>= latency for online runs) *)
  peak_memory_mb : float;
      (** high-water footprint of algorithm-owned structures *)
  telemetry : telemetry;
}

type policy =
  Instance.t -> Ltc_util.Mem.Tracker.t -> Progress.t -> Worker.t -> int list
(** [policy instance tracker progress] is partially applied once per run;
    the resulting function maps each arriving worker to the task ids to
    assign (at most the worker's capacity, candidates only).  [progress] is
    read-only for the policy: the engine performs all {!Progress.record}
    calls. *)

exception Invalid_decision of string
(** Raised when a policy over-assigns, repeats a task or picks a
    non-candidate. *)

val check_decisions : Instance.t -> Worker.t -> int list -> unit
(** Validate one arrival's decisions against the capacity / no-repeat /
    candidate-radius constraints the engine enforces; the streaming service
    applies the same check per fed arrival.  @raise Invalid_decision on a
    violation. *)

type degrade = {
  budget_s : float;
      (** per-arrival decision budget in seconds (> 0).  Elapsed time is
          measured with {!Ltc_util.Fault.Clock}, so tests and the chaos
          harness can virtualise it; production reads the real clock. *)
  fallback_name : string;  (** for telemetry, metric labels and logs *)
  fallback : policy;
      (** the cheap policy that decides an arrival whose primary decision
          arrived late (e.g. greedy LAF or Nearest from the
          {!Algorithm} registry).  It is partially applied over the same
          engine-owned progress/tracker as the primary, so a degraded
          decision equals what the fallback algorithm would have produced
          standalone given the same progress state. *)
}
(** Graceful degradation under a per-arrival solve deadline.  The primary
    policy always runs (it cannot be interrupted mid-decision); when its
    answer arrives past [budget_s], the answer is discarded, the fallback
    decides instead, and the miss is recorded in [telemetry.degraded] and
    the [ltc_engine_degraded_total] metric.  Note the primary still
    consumed its RNG draws — replay/restore paths must preserve that. *)

val degraded_counter : string -> string -> Ltc_util.Metrics.Counter.t
(** [degraded_counter algo fallback] is the [ltc_engine_degraded_total]
    counter labelled for that (primary, fallback) pair — shared with the
    streaming service so batch and serve deadline misses land in one
    metric family. *)

type config = {
  accept_rate : float option;
      (** [Some q] simulates no-show noise: each assignment is actually
          answered only with probability [q].  Unanswered assignments still
          consume the worker's capacity (the question was sent) but
          contribute no score, do not enter the returned arrangement, and
          are invisible to the policy — the platform only observes answers.
          Requires [rng]; even [q = 1.0] draws once per assignment, so the
          consumed RNG stream is a function of the assignment sequence
          alone, not of [q]. *)
  rng : Ltc_util.Rng.t option;
      (** Source for the no-show draws (one bernoulli per assigned task, in
          assignment order).  Advanced in place. *)
  tracker : Ltc_util.Mem.Tracker.t option;
      (** Memory tracker to charge; the engine creates a private one when
          absent.  Either way its baseline is (re)set to the progress
          array's footprint at run start. *)
  degrade : degrade option;
      (** Per-arrival deadline with fallback; [None] (the default) never
          degrades. *)
}
(** Execution options for {!run}.  {!default_config} is the paper's model:
    every assignment answered, no injected RNG, private tracker, no
    deadline. *)

val default_config : config

val run : ?config:config -> name:string -> policy -> Instance.t -> outcome
(** The single entry point for arrival-stream execution: feeds
    [instance]'s workers to [policy] in arrival order until every task is
    complete or the stream is exhausted.  @raise Invalid_argument when
    [config.accept_rate] is outside (0, 1] or set without an [rng], or
    when [config.degrade] carries a non-positive budget.

    (The deprecated [run_policy] / [run_policy_with_noshow] wrappers were
    removed; [run] with a {!config} covers both.) *)

val of_arrangement :
  name:string ->
  ?workers_consumed:int ->
  ?tracker:Ltc_util.Mem.Tracker.t ->
  ?telemetry:telemetry ->
  Instance.t ->
  Arrangement.t ->
  outcome
(** Wraps an arrangement produced by an offline algorithm, recomputing
    completion and latency.  [workers_consumed] defaults to the
    arrangement's latency.  [telemetry] (default {!no_telemetry}) lets an
    offline algorithm report solver-side degradations — MCF-LTC counts
    batches whose anytime budget fired in [telemetry.degraded]. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** One line with every scalar field:
    [name: latency=L assignments=A completed=B consumed=C mem=M.MMMB]. *)
