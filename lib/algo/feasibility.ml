open Ltc_core

type verdict = {
  feasible_maybe : bool;
  required_units : int;
  routable_units : int;
  starved_tasks : int list;
}

let screen instance =
  let n_tasks = Instance.task_count instance in
  let workers = instance.Instance.workers in
  let n_workers = Array.length workers in
  let thresholds = Instance.thresholds instance in
  (* One pass over all candidate pairs: per-task best score and supply. *)
  let best_score = Array.make (max n_tasks 1) 0.0 in
  let supply = Array.make (max n_tasks 1) 0 in
  Array.iter
    (fun (w : Worker.t) ->
      Instance.iter_candidates instance w (fun task ->
          supply.(task) <- supply.(task) + 1;
          let s = Instance.score instance w task in
          if s > best_score.(task) then best_score.(task) <- s))
    workers;
  let demand =
    Array.init n_tasks (fun task ->
        if best_score.(task) <= 0.0 then max_int
        else int_of_float (Float.ceil (thresholds.(task) /. best_score.(task))))
  in
  let starved_tasks =
    List.filter
      (fun task -> demand.(task) = max_int || supply.(task) < demand.(task))
      (List.init n_tasks (fun task -> task))
  in
  if starved_tasks <> [] then
    {
      feasible_maybe = false;
      required_units =
        Array.fold_left
          (fun acc d -> if d = max_int then acc else acc + d)
          0 demand;
      routable_units = 0;
      starved_tasks;
    }
  else begin
    let required_units = Array.fold_left ( + ) 0 demand in
    let source = 0 and sink = 1 + n_workers + n_tasks in
    let g = Ltc_flow.Graph.create ~n:(sink + 1) in
    Array.iteri
      (fun i (w : Worker.t) ->
        ignore
          (Ltc_flow.Graph.add_arc g ~src:source ~dst:(1 + i) ~cap:w.capacity
             ~cost:0.0))
      workers;
    Array.iteri
      (fun i (w : Worker.t) ->
        Instance.iter_candidates instance w (fun task ->
            ignore
              (Ltc_flow.Graph.add_arc g ~src:(1 + i)
                 ~dst:(1 + n_workers + task) ~cap:1 ~cost:0.0)))
      workers;
    Array.iteri
      (fun task d ->
        ignore
          (Ltc_flow.Graph.add_arc g ~src:(1 + n_workers + task) ~dst:sink
             ~cap:d ~cost:0.0))
      demand;
    let routable_units = Ltc_flow.Dinic.max_flow g ~source ~sink in
    {
      feasible_maybe = routable_units >= required_units;
      required_units;
      routable_units;
      starved_tasks = [];
    }
  end

(* Shared with [screen]: can the worker prefix [1..l] route every task's
   relaxed demand?  [demand] must already be starvation-free. *)
let prefix_routes_demand instance demand required_units l =
  let workers = instance.Instance.workers in
  let n_workers = l in
  let n_tasks = Array.length demand in
  let source = 0 and sink = 1 + n_workers + n_tasks in
  let g = Ltc_flow.Graph.create ~n:(sink + 1) in
  for i = 0 to n_workers - 1 do
    ignore
      (Ltc_flow.Graph.add_arc g ~src:source ~dst:(1 + i)
         ~cap:workers.(i).Worker.capacity ~cost:0.0);
    Instance.iter_candidates instance workers.(i) (fun task ->
        ignore
          (Ltc_flow.Graph.add_arc g ~src:(1 + i) ~dst:(1 + n_workers + task)
             ~cap:1 ~cost:0.0))
  done;
  Array.iteri
    (fun task d ->
      ignore
        (Ltc_flow.Graph.add_arc g ~src:(1 + n_workers + task) ~dst:sink ~cap:d
           ~cost:0.0))
    demand;
  Ltc_flow.Dinic.max_flow g ~source ~sink >= required_units

let latency_lower_bound instance =
  let n_tasks = Instance.task_count instance in
  let n_workers = Instance.worker_count instance in
  if n_tasks = 0 then Some 0
  else
  let thresholds = Instance.thresholds instance in
  let best_score = Array.make (max n_tasks 1) 0.0 in
  Array.iter
    (fun (w : Worker.t) ->
      Instance.iter_candidates instance w (fun task ->
          let s = Instance.score instance w task in
          if s > best_score.(task) then best_score.(task) <- s))
    instance.Instance.workers;
  if Array.exists (fun s -> s <= 0.0) best_score then None
  else begin
    let demand =
      Array.init n_tasks (fun task ->
          int_of_float (Float.ceil (thresholds.(task) /. best_score.(task))))
    in
    let required_units = Array.fold_left ( + ) 0 demand in
    if not (prefix_routes_demand instance demand required_units n_workers)
    then None
    else begin
      (* Binary search the smallest routable prefix (monotone in l). *)
      let rec search lo hi =
        if lo >= hi then hi
        else begin
          let mid = (lo + hi) / 2 in
          if prefix_routes_demand instance demand required_units mid then
            search lo mid
          else search (mid + 1) hi
        end
      in
      Some (search 1 n_workers)
    end
  end

let pp_verdict fmt v =
  Format.fprintf fmt "%s (routed %d of %d demand units%s)"
    (if v.feasible_maybe then "may be feasible" else "certified infeasible")
    v.routable_units v.required_units
    (match v.starved_tasks with
    | [] -> ""
    | ts -> Printf.sprintf "; %d starved tasks" (List.length ts))
