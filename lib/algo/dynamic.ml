open Ltc_core

type strategy =
  | Laf_d
  | Aam_d
  | Random_d of int

type outcome = {
  engine : Engine.outcome;
  mean_response : float;
  max_response : int;
  completed_tasks : int;
}

(* Mutable state over the released subset of tasks; [Progress] cannot be
   reused directly because its aggregates range over every task, released
   or not. *)
type state = {
  thresholds : float array;
  s : float array;
  released : Bytes.t;
  completion : int array;   (* completion arrival index, -1 while open *)
  mutable open_released : int;   (* released and not complete *)
  mutable unreleased : int;
  mutable sum_remaining : float; (* over released, incomplete tasks *)
  mutable max_dirty : bool;
  mutable max_cache : float;
}

let remaining st task = Float.max 0.0 (st.thresholds.(task) -. st.s.(task))
let is_released st task = Bytes.get st.released task = '\001'
let is_complete st task = st.s.(task) >= st.thresholds.(task)

let max_remaining st =
  if st.max_dirty then begin
    (* Recompute lazily; amortised fine because completions and releases
       are the only invalidators and both are bounded by |T|. *)
    let mx = ref 0.0 in
    Array.iteri
      (fun task _ ->
        if is_released st task && not (is_complete st task) then
          mx := Float.max !mx (remaining st task))
      st.s;
    st.max_cache <- !mx;
    st.max_dirty <- false
  end;
  st.max_cache

let release st task =
  if not (is_released st task) then begin
    Bytes.set st.released task '\001';
    st.unreleased <- st.unreleased - 1;
    if not (is_complete st task) then begin
      st.open_released <- st.open_released + 1;
      st.sum_remaining <- st.sum_remaining +. remaining st task;
      st.max_dirty <- true
    end
  end

let record st ~task ~score ~arrival =
  let before = remaining st task in
  st.s.(task) <- st.s.(task) +. score;
  let after = remaining st task in
  st.sum_remaining <- Float.max 0.0 (st.sum_remaining -. (before -. after));
  st.max_dirty <- true;
  if after <= 0.0 && st.completion.(task) < 0 then begin
    st.completion.(task) <- arrival;
    st.open_released <- st.open_released - 1
  end

let uniform_releases rng ~n_tasks ~horizon ~upfront_fraction =
  if upfront_fraction < 0.0 || upfront_fraction > 1.0 then
    invalid_arg "Dynamic.uniform_releases: fraction out of [0, 1]";
  let upfront =
    int_of_float (Float.ceil (upfront_fraction *. float_of_int n_tasks))
  in
  Array.init n_tasks (fun task ->
      if task < upfront then 0 else 1 + Ltc_util.Rng.int rng (max 1 horizon))

let strategy_name = function
  | Laf_d -> "LAF-dyn"
  | Aam_d -> "AAM-dyn"
  | Random_d _ -> "Random-dyn"

let run ~strategy ~release:releases (instance : Instance.t) =
  Ltc_util.Trace.with_span ("dynamic:" ^ strategy_name strategy) @@ fun () ->
  let n_tasks = Instance.task_count instance in
  if Array.length releases <> n_tasks then
    invalid_arg "Dynamic.run: release array must have one entry per task";
  Array.iter
    (fun r -> if r < 0 then invalid_arg "Dynamic.run: negative release")
    releases;
  let st =
    {
      thresholds = Instance.thresholds instance;
      s = Array.make (max n_tasks 1) 0.0;
      released = Bytes.make (max n_tasks 1) '\000';
      completion = Array.make (max n_tasks 1) (-1);
      open_released = 0;
      unreleased = n_tasks;
      sum_remaining = 0.0;
      max_dirty = true;
      max_cache = 0.0;
    }
  in
  Array.iteri (fun task r -> if r = 0 then release st task) releases;
  let rng =
    match strategy with
    | Random_d seed -> Some (Ltc_util.Rng.create ~seed)
    | Laf_d | Aam_d -> None
  in
  let arrangement = ref Arrangement.empty in
  let consumed = ref 0 in
  let workers = instance.Instance.workers in
  let n_workers = Array.length workers in
  (* Reusable candidate scratch: refilled per arrival in ascending task-id
     order ([iter_candidates_sorted]), matching the sorted list
     [Instance.candidates] used to allocate — same iteration order, same
     RNG draw sequence for [Random_d], zero per-arrival allocation. *)
  let cand = Array.make (max n_tasks 1) 0 in
  let all_done () = st.open_released = 0 && st.unreleased = 0 in
  let i = ref 0 in
  while (not (all_done ())) && !i < n_workers do
    let w = workers.(!i) in
    incr i;
    incr consumed;
    (* Release everything due at this arrival. *)
    Array.iteri
      (fun task r -> if r = w.Worker.index then release st task)
      releases;
    let n_cand = ref 0 in
    Instance.iter_candidates_sorted instance w (fun task ->
        if is_released st task && not (is_complete st task) then begin
          cand.(!n_cand) <- task;
          incr n_cand
        end);
    let n_cand = !n_cand in
    let chosen =
      match strategy with
      | Laf_d ->
        let heap = Ltc_util.Bounded_heap.create ~k:w.Worker.capacity () in
        for c = 0 to n_cand - 1 do
          let task = cand.(c) in
          Ltc_util.Bounded_heap.push heap
            ~score:(Instance.score instance w task)
            task
        done;
        List.map snd (Ltc_util.Bounded_heap.pop_all heap)
      | Aam_d ->
        let avg = st.sum_remaining /. float_of_int w.Worker.capacity in
        let use_lgf = avg >= max_remaining st in
        let heap = Ltc_util.Bounded_heap.create ~k:w.Worker.capacity () in
        for c = 0 to n_cand - 1 do
          let task = cand.(c) in
          let score =
            if use_lgf then
              Float.min (Instance.score instance w task) (remaining st task)
            else remaining st task
          in
          Ltc_util.Bounded_heap.push heap ~score task
        done;
        List.map snd (Ltc_util.Bounded_heap.pop_all heap)
      | Random_d _ ->
        let rng = Option.get rng in
        let k = min w.Worker.capacity n_cand in
        for slot = 0 to k - 1 do
          let j = slot + Ltc_util.Rng.int rng (n_cand - slot) in
          let tmp = cand.(slot) in
          cand.(slot) <- cand.(j);
          cand.(j) <- tmp
        done;
        List.init k (fun slot -> cand.(slot))
    in
    List.iter
      (fun task ->
        record st ~task
          ~score:(Instance.score instance w task)
          ~arrival:w.Worker.index;
        arrangement := Arrangement.add !arrangement ~worker:w.Worker.index ~task)
      chosen
  done;
  let completed_tasks = ref 0 in
  let response_sum = ref 0 in
  let response_max = ref 0 in
  for task = 0 to n_tasks - 1 do
    if st.completion.(task) >= 0 then begin
      incr completed_tasks;
      let response = st.completion.(task) - releases.(task) in
      response_sum := !response_sum + response;
      response_max := max !response_max response
    end
  done;
  {
    engine =
      {
        Engine.name = strategy_name strategy;
        arrangement = !arrangement;
        completed = !completed_tasks = n_tasks;
        latency = Arrangement.latency !arrangement;
        workers_consumed = !consumed;
        peak_memory_mb = 0.0;
        telemetry = Engine.no_telemetry;
      };
    mean_response =
      (if !completed_tasks = 0 then 0.0
       else float_of_int !response_sum /. float_of_int !completed_tasks);
    max_response = !response_max;
    completed_tasks = !completed_tasks;
  }

let pp_outcome fmt o =
  Format.fprintf fmt "%a; response mean %.1f max %d (%d tasks done)"
    Engine.pp_outcome o.engine o.mean_response o.max_response
    o.completed_tasks
