(** Fast infeasibility screen.

    LTC algorithms silently run out of workers when an instance cannot be
    completed at all (a starved task with too few nearby check-ins).  This
    screen decides "provably impossible" {e before} running any algorithm,
    by a necessary-condition relaxation:

    - every task [t] needs at least [d_t = ceil (threshold_t / s_t)]
      {e distinct} workers, where [s_t] is the best score any candidate
      worker of [t] can contribute;
    - a completing arrangement therefore induces an integral flow of value
      [sum d_t] in the bipartite network [source -(K)-> workers -(1)->
      tasks -(d_t)-> sink] restricted to candidate pairs.

    If the {!Ltc_flow.Dinic} maximum flow falls short, no arrangement
    exists.  The converse does not hold (real-valued scores are coarser
    than the relaxation), hence [feasible_maybe]. *)

type verdict = {
  feasible_maybe : bool;
      (** [false] = certified infeasible; [true] = the screen passes *)
  required_units : int;  (** [sum over tasks of d_t] *)
  routable_units : int;  (** max flow achieved by the relaxation *)
  starved_tasks : int list;
      (** tasks with fewer candidate workers than their [d_t] (a cheap
          sufficient reason for infeasibility; may be empty even when the
          screen fails for global-capacity reasons) *)
}

val screen : Ltc_core.Instance.t -> verdict

val latency_lower_bound : Ltc_core.Instance.t -> int option
(** Geometry-aware lower bound on the optimal latency: the smallest prefix
    length [L] such that workers [1..L] can route the full demand of the
    relaxation above ([None] when even the full worker set cannot).  Every
    completing arrangement of latency [L'] certifies the relaxation at
    [L'], so [latency_lower_bound <= OPT]; unlike Theorem 2's [|T| d / K]
    this accounts for the candidate radius, which makes it much tighter on
    sparse or clustered workloads.  Cost: O(log |W|) max-flow runs. *)

val pp_verdict : Format.formatter -> verdict -> unit
