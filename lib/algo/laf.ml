open Ltc_core

let name = "LAF"

let policy instance tracker progress =
  (* The only structure LAF owns is the K-bounded heap (paper: Q). *)
  let heap_budget (w : Worker.t) = 4 * w.capacity in
  fun (w : Worker.t) ->
    let heap = Ltc_util.Bounded_heap.create ~k:w.capacity () in
    Ltc_util.Mem.Tracker.add_words tracker (heap_budget w);
    (* Candidates arrive in ascending task-id order, so the bounded heap's
       stable tie-break implements "prefer the lower task index". *)
    Instance.iter_candidates_sorted instance w (fun task ->
        if not (Progress.is_complete progress task) then
          Ltc_util.Bounded_heap.push heap
            ~score:(Instance.score instance w task)
            task);
    let chosen = List.map snd (Ltc_util.Bounded_heap.pop_all heap) in
    Ltc_util.Mem.Tracker.remove_words tracker (heap_budget w);
    chosen

let run instance = Engine.run ~name policy instance
