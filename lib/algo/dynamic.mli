(** Dynamic task arrival — relaxing the paper's assumption (i).

    The paper fixes the task set up front ("tasks are known in advance to
    the platform").  Real platforms add questions continuously; this module
    runs the online scenario when task [t] only becomes assignable after
    the [release.(t)]-th worker has arrived (release 0 = known upfront).
    Unreleased tasks are invisible to the strategy and receive no
    assignments.

    Latency (max recruited index) keeps its meaning; additionally each
    task's {e response time} — completion index minus release index — is
    reported, which is the latency a late-posted question actually
    experiences.

    Strategies are the online ones of Sec. IV re-derived over the released
    task set (AAM's [avg]/[maxRemain] aggregates only range over released,
    unfinished tasks). *)

type strategy =
  | Laf_d
  | Aam_d
  | Random_d of int  (** seed *)

type outcome = {
  engine : Engine.outcome;
  mean_response : float;
      (** average (completion index - release index) over completed tasks *)
  max_response : int;
  completed_tasks : int;
}

val run :
  strategy:strategy -> release:int array -> Ltc_core.Instance.t -> outcome
(** [release] must have one entry per task, each [>= 0].
    @raise Invalid_argument on shape mismatch or negative releases. *)

val uniform_releases :
  Ltc_util.Rng.t ->
  n_tasks:int ->
  horizon:int ->
  upfront_fraction:float ->
  int array
(** Helper: a [ceil (upfront_fraction * n_tasks)]-sized prefix released at
    0, the rest uniformly over [\[1, horizon\]]. *)

val pp_outcome : Format.formatter -> outcome -> unit
