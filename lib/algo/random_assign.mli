(** Random — the paper's naive online baseline (Sec. V-A).

    "tasks nearby are assigned randomly to the worker when s/he arrives":
    up to [K] unfinished candidate tasks drawn uniformly without
    replacement. *)

val name : string

val policy_with_rng : Ltc_util.Rng.t -> Engine.policy
(** Draw the samples from a caller-owned generator — the streaming service
    journals that generator's state so a restored session resumes the exact
    sample sequence. *)

val policy : seed:int -> Engine.policy
(** [policy_with_rng] over a fresh generator: identical seeds reproduce the
    run exactly. *)

val run : seed:int -> Ltc_core.Instance.t -> Engine.outcome
