(** Random — the paper's naive online baseline (Sec. V-A).

    "tasks nearby are assigned randomly to the worker when s/he arrives":
    up to [K] unfinished candidate tasks drawn uniformly without
    replacement. *)

val name : string

val policy : seed:int -> Engine.policy
(** Each run seeds its own {!Ltc_util.Rng.t}; identical seeds reproduce the
    run exactly. *)

val run : seed:int -> Ltc_core.Instance.t -> Engine.outcome
