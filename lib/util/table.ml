type align = Left | Right

type cell =
  | Str of string
  | Int of int
  | Float of float

let cell_to_string ~float_digits = function
  | Str s -> s
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 && float_digits = 0
    then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.*f" float_digits f

let is_numeric = function Str _ -> false | Int _ | Float _ -> true

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render ?(float_digits = 2) ~header ?align rows =
  let ncols = List.length header in
  List.iteri
    (fun i row ->
      if List.length row <> ncols then
        invalid_arg
          (Printf.sprintf "Table.render: row %d has %d cells, expected %d" i
             (List.length row) ncols))
    rows;
  let string_rows =
    List.map (List.map (cell_to_string ~float_digits)) rows
  in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> Array.of_list a
    | Some _ -> invalid_arg "Table.render: align length mismatch"
    | None ->
      (* Default: a column is right-aligned when every cell in it is numeric. *)
      Array.init ncols (fun c ->
          let numeric =
            rows <> []
            && List.for_all (fun row -> is_numeric (List.nth row c)) rows
          in
          if numeric then Right else Left)
  in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (List.iteri (fun c s -> widths.(c) <- max widths.(c) (String.length s)))
    string_rows;
  let buf = Buffer.create 1024 in
  let emit_row cells align_of =
    List.iteri
      (fun c s ->
        if c > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (align_of c) widths.(c) s))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row header (fun _ -> Left);
  let rule = List.init ncols (fun c -> String.make widths.(c) '-') in
  emit_row rule (fun _ -> Left);
  List.iter (fun row -> emit_row row (fun c -> aligns.(c))) string_rows;
  Buffer.contents buf

let print ?float_digits ~header ?align rows =
  print_string (render ?float_digits ~header ?align rows)
