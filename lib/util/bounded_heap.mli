(** Keeper of the [k] largest elements of a stream.

    LAF and AAM scan every unfinished task per worker arrival and must retain
    only the [K] best-scoring candidates (Algorithm 2 lines 4-7, Algorithm 3
    lines 6-12).  This structure is a size-capped min-heap: pushing a stream
    of [n] scored items costs [O(n log k)] and the heap never holds more than
    [k] items, which is why the online algorithms match the Random baseline's
    memory footprint in Fig. 3i-l. *)

type 'a t

val create : k:int -> unit -> 'a t
(** [k] must be positive.  @raise Invalid_argument otherwise. *)

val push : 'a t -> score:float -> 'a -> unit
(** Offer an element; evicts the current lowest-scored element when the heap
    already holds [k].  Ties are broken towards the {e earlier-pushed}
    element (stable), matching the paper's lowest-task-index tie-break when
    tasks are pushed in index order. *)

val length : 'a t -> int

val pop_all : 'a t -> (float * 'a) list
(** Remove and return the retained elements sorted by {e descending} score
    (stable for ties).  The heap becomes empty. *)

val clear : 'a t -> unit
