(** Fixed-size domain pool for embarrassingly parallel index ranges.

    The experiment harness fans independent (figure cell x repetition)
    runs over OCaml 5 domains; this module owns the domains.  A pool of
    [jobs] lanes runs {!map}/{!iter} bodies on [jobs - 1] long-lived
    worker domains plus the calling domain, claiming indices from a
    shared atomic cursor.  Results are delivered {e in input-index
    order}, so callers see exactly the sequential semantics regardless
    of how indices were interleaved across domains.

    A [jobs = 1] pool spawns no domains at all: {!map} and {!iter}
    degenerate to a plain sequential [for] loop on the calling domain,
    which is both the fallback on single-core machines and the
    reference behaviour the parallel path must reproduce bit-for-bit
    (see DESIGN.md, "Parallelism").

    Pools are not re-entrant: a {!map}/{!iter} body must not submit
    work to the pool that is running it.  Task bodies run on worker
    domains, so anything they touch must be domain-safe (the
    observability layer — {!Metrics}, {!Trace}, {!Mem.Tracker} — is). *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the CLI default for
    [--jobs]. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains that sleep until
    work arrives.  @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int
(** Number of lanes (worker domains + the caller). *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map pool n f] computes [[| f 0; ...; f (n-1) |]].  Indices are
    claimed dynamically by the pool's lanes; the result array is ordered
    by index, not by completion.  If one or more bodies raise, the
    remaining unclaimed indices are abandoned, every in-flight body
    finishes, and the exception of the lowest-indexed failing body is
    re-raised on the calling domain. *)

val iter : t -> int -> (int -> unit) -> unit
(** [iter pool n f] is [map] without the result array. *)

val shutdown : t -> unit
(** Joins the worker domains.  The pool must not be used afterwards;
    idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down on
    the way out, also when [f] raises. *)

val run : jobs:int -> int -> (int -> 'a) -> 'a array
(** One-shot [with_pool ~jobs (fun p -> map p n f)]. *)
