(** Fixed-size domain pool for embarrassingly parallel index ranges.

    The experiment harness fans independent (figure cell x repetition)
    runs over OCaml 5 domains; this module owns the domains.  A pool of
    [jobs] lanes runs {!map}/{!iter} bodies on [jobs - 1] long-lived
    worker domains plus the calling domain, claiming indices from a
    shared atomic cursor.  Results are delivered {e in input-index
    order}, so callers see exactly the sequential semantics regardless
    of how indices were interleaved across domains.

    A [jobs = 1] pool spawns no domains at all: {!map} and {!iter}
    degenerate to a plain sequential [for] loop on the calling domain,
    which is both the fallback on single-core machines and the
    reference behaviour the parallel path must reproduce bit-for-bit
    (see DESIGN.md, "Parallelism").

    Pools are not re-entrant: a {!map}/{!iter} body must not submit
    work to the pool that is running it.  Task bodies run on worker
    domains, so anything they touch must be domain-safe (the
    observability layer — {!Metrics}, {!Trace}, {!Mem.Tracker} — is). *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the CLI default for
    [--jobs]. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains that sleep until
    work arrives.  @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int
(** Number of lanes (worker domains + the caller). *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map pool n f] computes [[| f 0; ...; f (n-1) |]].  Indices are
    claimed dynamically by the pool's lanes; the result array is ordered
    by index, not by completion.  If one or more bodies raise, the
    remaining unclaimed indices are abandoned, every in-flight body
    finishes, and the exception of the lowest-indexed failing body is
    re-raised on the calling domain.

    An exception can never strand the pool: even one that escapes the
    per-body guard (e.g. an asynchronous exception) cancels the batch,
    every lane still checks in, and the exception is re-raised on the
    calling domain once the batch has quiesced — no domain is ever left
    blocked on an empty queue. *)

val iter : t -> int -> (int -> unit) -> unit
(** [iter pool n f] is [map] without the result array. *)

val shutdown : t -> unit
(** Joins the worker domains.  The pool must not be used afterwards;
    idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down on
    the way out, also when [f] raises. *)

val run : jobs:int -> int -> (int -> 'a) -> 'a array
(** One-shot [with_pool ~jobs (fun p -> map p n f)]. *)

(** Persistent worker lanes with bounded mailboxes.

    Where the batch pool above spreads one index range over whatever lane
    is free, a {!Workers.t} {e pins} work to lanes: lane [k] is one
    long-lived domain draining its own bounded FIFO mailbox through the
    shared handler.  Items pushed to the same lane are handled in push
    order, on the same domain, for the lifetime of the pool — which is
    exactly what stateful per-lane consumers (the sharded service runtime,
    one session per shard) need, and why they build on this module rather
    than bypassing the pool.

    Backpressure is explicit: {!push} to a full mailbox blocks until the
    lane catches up (counted in {!stalls}) — items are never silently
    dropped.

    Failure isolation: a handler exception marks its lane failed, moves
    that lane's queued items (the one that raised first) to a retained
    lost list, and wakes any blocked pusher — the remaining lanes keep
    running, so one dying worker can never leave the others (or the
    producer) blocked.  A later {!push} to the failed lane re-raises the
    handler's exception on the pushing domain; {!shutdown} re-raises the
    first still-standing failure (by lane index) after joining every
    domain.

    Recovery: {!restart} clears a lane's failure and returns the lost
    items in push order, after which the lane consumes again on its
    original domain — the hook the shard supervisor
    ({!Ltc_service.Supervisor}) builds crash isolation and online
    restore on. *)
module Workers : sig
  type 'a t

  val create :
    lanes:int -> capacity:int -> handler:(lane:int -> 'a -> unit) -> 'a t
  (** [create ~lanes ~capacity ~handler] spawns [lanes] domains, each
      draining a [capacity]-slot mailbox through [handler ~lane].
      @raise Invalid_argument when [lanes < 1] or [capacity < 1]. *)

  val lanes : 'a t -> int

  val push : 'a t -> lane:int -> 'a -> unit
  (** Enqueue an item on [lane], blocking while its mailbox is full
      (bumping {!stalls} once per blocked push).  Single producer: do not
      call concurrently with {!shutdown}.
      @raise Invalid_argument on an unknown lane or after {!shutdown};
      re-raises the lane handler's exception if the lane has failed. *)

  val try_push : 'a t -> lane:int -> 'a -> bool
  (** Non-blocking {!push}: [false] when the lane's mailbox is full (the
      item is not enqueued, no stall is counted) — the primitive behind
      shed-style admission control.  Same contract as {!push}
      otherwise. *)

  val quiesce : 'a t -> unit
  (** Block until every lane has handled (or, for failed lanes,
      discarded) everything pushed so far. *)

  val failure : 'a t -> lane:int -> (exn * Printexc.raw_backtrace) option
  (** The lane's standing handler failure, if any. *)

  val restart : 'a t -> lane:int -> 'a list
  (** Clear the lane's failure and return the items it lost — the item
      whose handling raised, then everything discarded from its mailbox,
      in push order ([[]] when the lane never failed).  The lane's
      domain (which parks, it never exits, on failure) resumes consuming
      subsequent pushes.  Call between {!quiesce} points, from the
      producer side. *)

  val stalls : 'a t -> int
  (** Pushes that found their mailbox full and had to block. *)

  val first_failure : 'a t -> (exn * Printexc.raw_backtrace) option
  (** Lowest-lane-index handler failure so far, if any. *)

  val shutdown : 'a t -> unit
  (** Drain every mailbox, join every domain, and re-raise the first lane
      failure if one occurred.  Idempotent (later calls are no-ops). *)
end
