type span = {
  id : int;
  parent : int;
  depth : int;
  name : string;
  start_s : float;
  duration_s : float;
}

let dummy =
  { id = -1; parent = -1; depth = 0; name = ""; start_s = 0.0; duration_s = 0.0 }

(* Spans may open and close on pool worker domains (see Pool): ids come from
   an atomic, the open-span stack is domain-local, and the completed-span
   ring is guarded by a mutex.  The disabled path stays a single atomic
   load. *)
let enabled_flag = Atomic.make false
let epoch = ref 0.0

let ring_mutex = Mutex.create ()
(* Protected by [ring_mutex]. *)
let ring = ref (Array.make 1024 dummy)
let completed = ref 0  (* total completed spans since clear *)

let next_id = Atomic.make 0

(* Ids of open spans, innermost first; nesting is per-domain. *)
let stack_key : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let enabled () = Atomic.get enabled_flag

let set_enabled b =
  if b && not (Atomic.get enabled_flag) then epoch := Unix.gettimeofday ();
  Atomic.set enabled_flag b

let clear () =
  Mutex.lock ring_mutex;
  completed := 0;
  Atomic.set next_id 0;
  Domain.DLS.get stack_key := [];
  Mutex.unlock ring_mutex

let set_capacity n =
  if n <= 0 then invalid_arg "Trace.set_capacity: capacity must be positive";
  Mutex.lock ring_mutex;
  ring := Array.make n dummy;
  completed := 0;
  Atomic.set next_id 0;
  Domain.DLS.get stack_key := [];
  Mutex.unlock ring_mutex

let with_span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let id = Atomic.fetch_and_add next_id 1 in
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with [] -> -1 | p :: _ -> p in
    let depth = List.length !stack in
    stack := id :: !stack;
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let duration_s = Float.max 0.0 (Unix.gettimeofday () -. t0) in
        (match !stack with s :: rest when s = id -> stack := rest | _ -> ());
        Mutex.lock ring_mutex;
        let r = !ring in
        r.(!completed mod Array.length r) <-
          {
            id;
            parent;
            depth;
            name;
            start_s = Float.max 0.0 (t0 -. !epoch);
            duration_s;
          };
        incr completed;
        Mutex.unlock ring_mutex)
      f
  end

let dropped () =
  Mutex.lock ring_mutex;
  let d = max 0 (!completed - Array.length !ring) in
  Mutex.unlock ring_mutex;
  d

let spans () =
  Mutex.lock ring_mutex;
  let r = !ring in
  let n = min !completed (Array.length r) in
  let out = ref [] in
  for i = 0 to n - 1 do
    out := r.(i) :: !out
  done;
  Mutex.unlock ring_mutex;
  List.sort (fun a b -> compare a.id b.id) !out

let pp_tree fmt () =
  List.iter
    (fun s ->
      Format.fprintf fmt "%s%s %.6fs@."
        (String.make (2 * s.depth) ' ')
        s.name s.duration_s)
    (spans ())

let to_json () =
  let span_json s =
    Printf.sprintf
      "{\"id\":%d,\"parent\":%d,\"depth\":%d,\"name\":\"%s\",\"start_s\":%.9f,\"duration_s\":%.9f}"
      s.id s.parent s.depth (String.escaped s.name) s.start_s s.duration_s
  in
  "[" ^ String.concat "," (List.map span_json (spans ())) ^ "]"

(* Chrome trace-event JSON array: one complete ("X") event per span with
   microsecond timestamps, loadable as-is in chrome://tracing and
   Perfetto.  All spans share one pid/tid; the viewer reconstructs the
   nesting from ts/dur containment. *)
let to_chrome_json () =
  let ev s =
    Printf.sprintf
      "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":1,\"args\":{\"id\":%d,\"parent\":%d,\"depth\":%d}}"
      (String.escaped s.name)
      (s.start_s *. 1e6)
      (s.duration_s *. 1e6)
      s.id s.parent s.depth
  in
  "[" ^ String.concat ",\n " (List.map ev (spans ())) ^ "]\n"
