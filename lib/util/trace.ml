type span = {
  id : int;
  parent : int;
  depth : int;
  name : string;
  start_s : float;
  duration_s : float;
}

let dummy =
  { id = -1; parent = -1; depth = 0; name = ""; start_s = 0.0; duration_s = 0.0 }

let enabled_flag = ref false
let epoch = ref 0.0
let ring = ref (Array.make 1024 dummy)
let completed = ref 0  (* total completed spans since clear *)
let next_id = ref 0
let stack = ref []     (* ids of open spans, innermost first *)

let enabled () = !enabled_flag

let set_enabled b =
  if b && not !enabled_flag then epoch := Unix.gettimeofday ();
  enabled_flag := b

let clear () =
  completed := 0;
  next_id := 0;
  stack := []

let set_capacity n =
  if n <= 0 then invalid_arg "Trace.set_capacity: capacity must be positive";
  ring := Array.make n dummy;
  clear ()

let with_span name f =
  if not !enabled_flag then f ()
  else begin
    let id = !next_id in
    incr next_id;
    let parent = match !stack with [] -> -1 | p :: _ -> p in
    let depth = List.length !stack in
    stack := id :: !stack;
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let duration_s = Float.max 0.0 (Unix.gettimeofday () -. t0) in
        (match !stack with s :: rest when s = id -> stack := rest | _ -> ());
        let r = !ring in
        r.(!completed mod Array.length r) <-
          {
            id;
            parent;
            depth;
            name;
            start_s = Float.max 0.0 (t0 -. !epoch);
            duration_s;
          };
        incr completed)
      f
  end

let dropped () = max 0 (!completed - Array.length !ring)

let spans () =
  let r = !ring in
  let n = min !completed (Array.length r) in
  let out = ref [] in
  for i = 0 to n - 1 do
    out := r.(i) :: !out
  done;
  List.sort (fun a b -> compare a.id b.id) !out

let pp_tree fmt () =
  List.iter
    (fun s ->
      Format.fprintf fmt "%s%s %.6fs@."
        (String.make (2 * s.depth) ' ')
        s.name s.duration_s)
    (spans ())

let to_json () =
  let span_json s =
    Printf.sprintf
      "{\"id\":%d,\"parent\":%d,\"depth\":%d,\"name\":\"%s\",\"start_s\":%.9f,\"duration_s\":%.9f}"
      s.id s.parent s.depth (String.escaped s.name) s.start_s s.duration_s
  in
  "[" ^ String.concat "," (List.map span_json (spans ())) ^ "]"
