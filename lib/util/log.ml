let algo = Logs.Src.create "ltc.algo" ~doc:"LTC assignment algorithms"
let flow = Logs.Src.create "ltc.flow" ~doc:"min-cost-flow solvers"
let workload = Logs.Src.create "ltc.workload" ~doc:"workload generators"
let obs = Logs.Src.create "ltc.obs" ~doc:"observability layer (metrics, traces)"

let reporter () =
  let report src level ~over k msgf =
    let k _ =
      over ();
      k ()
    in
    msgf (fun ?header ?tags fmt ->
        ignore tags;
        let ppf = Format.err_formatter in
        Format.kfprintf k ppf
          ("[%s] %s%s @[" ^^ fmt ^^ "@]@.")
          (Logs.level_to_string (Some level))
          (Logs.Src.name src)
          (match header with None -> "" | Some h -> " " ^ h))
  in
  { Logs.report }

let set_src_level (name, lvl) =
  let matches src =
    let n = Logs.Src.name src in
    n = name || n = "ltc." ^ name
  in
  match List.filter matches (Logs.Src.list ()) with
  | [] -> invalid_arg (Printf.sprintf "Log.setup: unknown log source %S" name)
  | srcs -> List.iter (fun src -> Logs.Src.set_level src (Some lvl)) srcs

let setup ?level ?(src_levels = []) () =
  Logs.set_reporter (reporter ());
  (match level with None -> () | Some l -> Logs.set_level (Some l));
  List.iter set_src_level src_levels
