let algo = Logs.Src.create "ltc.algo" ~doc:"LTC assignment algorithms"
let flow = Logs.Src.create "ltc.flow" ~doc:"min-cost-flow solvers"
let workload = Logs.Src.create "ltc.workload" ~doc:"workload generators"

let reporter () =
  let report src level ~over k msgf =
    let k _ =
      over ();
      k ()
    in
    msgf (fun ?header ?tags fmt ->
        ignore tags;
        let ppf = Format.err_formatter in
        Format.kfprintf k ppf
          ("[%s] %s%s @[" ^^ fmt ^^ "@]@.")
          (Logs.level_to_string (Some level))
          (Logs.Src.name src)
          (match header with None -> "" | Some h -> " " ^ h))
  in
  { Logs.report }

let setup ?level () =
  Logs.set_reporter (reporter ());
  match level with None -> () | Some l -> Logs.set_level (Some l)
