type series = {
  name : string;
  points : (float * float) list;
}

let markers = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let finite (x, y) = Float.is_finite x && Float.is_finite y

let render ?(width = 64) ?(height = 16) ?title ?(connect = true) series =
  let series =
    List.filter_map
      (fun s ->
        match List.filter finite s.points with
        | [] -> None
        | points ->
          Some { s with points = List.sort compare points })
      series
  in
  if series = [] then ""
  else begin
    let all = List.concat_map (fun s -> s.points) series in
    let xs = List.map fst all and ys = List.map snd all in
    let fold f = function x :: rest -> List.fold_left f x rest | [] -> 0.0 in
    let min_x = fold Float.min xs and max_x = fold Float.max xs in
    let min_y = fold Float.min ys and max_y = fold Float.max ys in
    (* Degenerate ranges still draw: widen them symmetrically. *)
    let span lo hi = if hi -. lo <= 0.0 then (lo -. 1.0, hi +. 1.0) else (lo, hi) in
    let min_x, max_x = span min_x max_x in
    let min_y, max_y = span min_y max_y in
    let grid = Array.make_matrix height width ' ' in
    let col x =
      let c =
        int_of_float
          (Float.round ((x -. min_x) /. (max_x -. min_x) *. float_of_int (width - 1)))
      in
      max 0 (min (width - 1) c)
    in
    let row y =
      let r =
        int_of_float
          (Float.round
             ((y -. min_y) /. (max_y -. min_y) *. float_of_int (height - 1)))
      in
      (* Row 0 is the top line. *)
      height - 1 - max 0 (min (height - 1) r)
    in
    let draw_segment (x0, y0) (x1, y1) =
      (* Bresenham-ish: step along the longer axis. *)
      let c0 = col x0 and r0 = row y0 and c1 = col x1 and r1 = row y1 in
      let steps = max (abs (c1 - c0)) (abs (r1 - r0)) in
      for k = 1 to steps - 1 do
        let t = float_of_int k /. float_of_int steps in
        let c = c0 + int_of_float (Float.round (t *. float_of_int (c1 - c0))) in
        let r = r0 + int_of_float (Float.round (t *. float_of_int (r1 - r0))) in
        if grid.(r).(c) = ' ' then grid.(r).(c) <- '.'
      done
    in
    List.iteri
      (fun i s ->
        let marker = markers.(i mod Array.length markers) in
        (if connect then
           match s.points with
           | [] -> ()
           | first :: rest ->
             ignore
               (List.fold_left
                  (fun prev next ->
                    draw_segment prev next;
                    next)
                  first rest));
        List.iter (fun (x, y) -> grid.(row y).(col x) <- marker) s.points;
        ignore marker)
      series;
    let buf = Buffer.create ((width + 16) * (height + 4)) in
    (match title with
    | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
    | None -> ());
    let y_label r =
      if r = 0 then Printf.sprintf "%10.4g |" max_y
      else if r = height - 1 then Printf.sprintf "%10.4g |" min_y
      else String.make 10 ' ' ^ " |"
    in
    Array.iteri
      (fun r line ->
        Buffer.add_string buf (y_label r);
        Buffer.add_string buf (String.init width (Array.get line));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (String.make 11 ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%s%-10.4g%s%10.4g\n" (String.make 12 ' ') min_x
         (String.make (max 1 (width - 20)) ' ')
         max_x);
    Buffer.add_string buf "  legend: ";
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_char buf markers.(i mod Array.length markers);
        Buffer.add_char buf '=';
        Buffer.add_string buf s.name)
      series;
    Buffer.add_char buf '\n';
    Buffer.contents buf
  end
