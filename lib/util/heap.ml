(* The backing store is an ['a option array]: [None] marks unused slots.
   This avoids manufacturing dummy values of an arbitrary ['a] (unsafe for
   [float], whose arrays are unboxed). *)
type 'a t = {
  leq : 'a -> 'a -> bool;
  mutable data : 'a option array;
  mutable size : int;
}

let create ?(capacity = 16) ~leq () =
  { leq; data = Array.make (max capacity 1) None; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let clear t =
  Array.fill t.data 0 t.size None;
  t.size <- 0

let get t i =
  match t.data.(i) with
  | Some x -> x
  | None -> assert false

let grow t =
  let data = Array.make (2 * Array.length t.data) None in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if not (t.leq (get t parent) (get t i)) then begin
      swap t parent i;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.size && not (t.leq (get t i) (get t l)) then l else i in
  let smallest =
    if r < t.size && not (t.leq (get t smallest) (get t r)) then r else smallest
  in
  if smallest <> i then begin
    swap t smallest i;
    sift_down t smallest
  end

let push t x =
  if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- Some x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let root = t.data.(0) in
    t.size <- t.size - 1;
    t.data.(0) <- t.data.(t.size);
    t.data.(t.size) <- None;
    if t.size > 0 then sift_down t 0;
    root
  end

let pop_exn t =
  match pop t with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let to_list t =
  let rec collect i acc =
    if i < 0 then acc else collect (i - 1) (get t i :: acc)
  in
  collect (t.size - 1) []

let of_array ~leq a =
  let size = Array.length a in
  let data = Array.make (max size 1) None in
  for i = 0 to size - 1 do
    data.(i) <- Some a.(i)
  done;
  let t = { leq; data; size } in
  for i = (size / 2) - 1 downto 0 do
    sift_down t i
  done;
  t
