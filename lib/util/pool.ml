(* A batch is one map/iter call: lanes claim indices from [next] until it
   passes [n] or a body raises ([cancelled] stops further claims; indices
   already claimed still finish). *)
type batch = {
  body : int -> unit;  (* wrapped by [map]/[iter]; never raises *)
  n : int;
  next : int Atomic.t;
  cancelled : bool Atomic.t;
}

type t = {
  lanes : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  (* All fields below are protected by [mutex]. *)
  mutable current : batch option;
  mutable generation : int;  (* bumped once per batch; workers run each once *)
  mutable finished : int;    (* workers done with the current generation *)
  mutable poison : (exn * Printexc.raw_backtrace) option;
      (* an exception that escaped a batch body on some lane; [submit]
         re-raises it after the batch quiesces, so a misbehaving body can
         kill its batch but never strand the other lanes *)
  mutable stop : bool;
  mutable domains : unit Domain.t array;
}

let default_jobs () = Domain.recommended_domain_count ()

let drain batch =
  let rec claim () =
    let i = Atomic.fetch_and_add batch.next 1 in
    if i < batch.n && not (Atomic.get batch.cancelled) then begin
      batch.body i;
      claim ()
    end
  in
  claim ()

(* Drain a batch, trapping any exception that escapes a body.  [map]/[iter]
   wrap bodies in [guarded] so nothing should ever get here — but if
   something does (a rogue body handed to a future entry point, an
   asynchronous exception), the batch is cancelled, the exception is
   parked in [t.poison], and the lane still counts itself finished.
   Without this, one raising lane would skip its finished-increment and
   leave every other domain (and the caller) blocked on an empty queue. *)
let drain_trapped t batch =
  match drain batch with
  | () -> ()
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    Atomic.set batch.cancelled true;
    Mutex.lock t.mutex;
    if t.poison = None then t.poison <- Some (e, bt);
    Mutex.unlock t.mutex

(* Worker domains process every generation exactly once (possibly claiming
   zero indices) so the caller can join on a plain finished-count. *)
let worker_loop t =
  let seen = ref 0 in
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stop then Mutex.unlock t.mutex
    else if t.generation = !seen then begin
      Condition.wait t.work_ready t.mutex;
      loop ()
    end
    else begin
      seen := t.generation;
      let batch = Option.get t.current in
      Mutex.unlock t.mutex;
      drain_trapped t batch;
      Mutex.lock t.mutex;
      t.finished <- t.finished + 1;
      if t.finished = Array.length t.domains then Condition.signal t.work_done;
      loop ()
    end
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      lanes = jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      current = None;
      generation = 0;
      finished = 0;
      poison = None;
      stop = false;
      domains = [||];
    }
  in
  t.domains <-
    Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.lanes

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.domains;
  t.domains <- [||]

(* Hand [batch] to the workers, drain it on the calling domain too, and
   return once every lane is done with it. *)
let submit t batch =
  Mutex.lock t.mutex;
  if t.stop then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool: used after shutdown"
  end;
  t.current <- Some batch;
  t.finished <- 0;
  t.generation <- t.generation + 1;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  drain_trapped t batch;
  Mutex.lock t.mutex;
  while t.finished < Array.length t.domains do
    Condition.wait t.work_done t.mutex
  done;
  t.current <- None;
  let poison = t.poison in
  t.poison <- None;
  Mutex.unlock t.mutex;
  match poison with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* Wraps [f] so bodies never raise across domains: the first failure by
   *index* (not completion order) is kept, so the exception [map] re-raises
   is deterministic whenever the failing body is. *)
let guarded f cancelled =
  let failure = ref None in
  let failure_mutex = Mutex.create () in
  let body i =
    match f i with
    | () -> ()
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Atomic.set cancelled true;
      Mutex.lock failure_mutex;
      (match !failure with
      | Some (j, _, _) when j < i -> ()
      | _ -> failure := Some (i, e, bt));
      Mutex.unlock failure_mutex
  in
  (body, failure)

let parallel_iter t n f =
  let cancelled = Atomic.make false in
  let body, failure = guarded f cancelled in
  submit t { body; n; next = Atomic.make 0; cancelled };
  match !failure with
  | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let map t n f =
  if n < 0 then invalid_arg "Pool.map: negative range";
  if n = 0 then [||]
  else if t.lanes = 1 || n = 1 then Array.init n f
  else begin
    let results = Array.make n None in
    parallel_iter t n (fun i -> results.(i) <- Some (f i));
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every index ran: no failure was raised *))
      results
  end

let iter t n f =
  if n < 0 then invalid_arg "Pool.iter: negative range";
  if n = 0 then ()
  else if t.lanes = 1 || n = 1 then
    for i = 0 to n - 1 do
      f i
    done
  else parallel_iter t n f

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run ~jobs n f =
  if jobs <= 1 || n <= 1 then begin
    if n < 0 then invalid_arg "Pool.run: negative range";
    Array.init n f
  end
  else with_pool ~jobs (fun t -> map t n f)

(* ------------------------------------------------------ persistent lanes *)

(* Unlike the batch pool above — where every lane claims indices from one
   shared cursor — a [Workers.t] pins work to lanes: each lane owns a
   bounded FIFO mailbox and a long-lived domain draining it through one
   handler.  This is the shape the sharded service runtime needs (a shard's
   session must only ever be touched by its own domain), so the service
   layer builds on this instead of bypassing the pool. *)
module Workers = struct
  type 'a lane = {
    ring : 'a option array;  (* mailbox slots, ring buffer *)
    mutable head : int;      (* next slot to pop *)
    mutable len : int;
    mutable pushed : int;    (* total accepted by [push] *)
    mutable done_ : int;     (* total handled or discarded *)
    mutable failure : (exn * Printexc.raw_backtrace) option;
    mutable lost : 'a list;  (* items discarded by a failure, newest first *)
    mutable domain : unit Domain.t option;
  }

  type 'a t = {
    capacity : int;
    handler : lane:int -> 'a -> unit;
    lanes : 'a lane array;
    mutex : Mutex.t;  (* guards every mutable lane field + [stop] *)
    not_full : Condition.t;
    not_empty : Condition.t;
    idle : Condition.t;  (* some lane caught up: done_ = pushed *)
    stalls : int Atomic.t;
    mutable stop : bool;
  }

  let stalls t = Atomic.get t.stalls
  let lanes t = Array.length t.lanes

  (* Called with [t.mutex] held.  Discards everything still queued on a
     failed lane — retaining the items in [lane.lost] so a supervisor can
     [restart] the lane and re-feed them — counting the items handled so
     [quiesce] terminates and blocked pushers wake up instead of waiting
     on a dead consumer. *)
  let discard_queue t lane =
    if lane.len > 0 then begin
      let cap = Array.length lane.ring in
      for i = 0 to lane.len - 1 do
        let slot = (lane.head + i) mod cap in
        (match lane.ring.(slot) with
        | Some item -> lane.lost <- item :: lane.lost
        | None -> ());
        lane.ring.(slot) <- None
      done;
      lane.done_ <- lane.done_ + lane.len;
      lane.head <- (lane.head + lane.len) mod cap;
      lane.len <- 0;
      Condition.broadcast t.not_full
    end;
    if lane.done_ = lane.pushed then Condition.broadcast t.idle

  let lane_loop t k =
    let lane = t.lanes.(k) in
    Mutex.lock t.mutex;
    let rec loop () =
      if lane.failure <> None then begin
        discard_queue t lane;
        if t.stop then Mutex.unlock t.mutex
        else begin
          Condition.wait t.not_empty t.mutex;
          loop ()
        end
      end
      else if lane.len > 0 then begin
        let item = Option.get lane.ring.(lane.head) in
        lane.ring.(lane.head) <- None;
        lane.head <- (lane.head + 1) mod Array.length lane.ring;
        lane.len <- lane.len - 1;
        Condition.broadcast t.not_full;
        Mutex.unlock t.mutex;
        (match t.handler ~lane:k item with
        | () -> Mutex.lock t.mutex
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock t.mutex;
          if lane.failure = None then lane.failure <- Some (e, bt);
          (* The item that killed the handler heads the lost list: a
             restart re-feeds it first. *)
          lane.lost <- item :: lane.lost;
          discard_queue t lane);
        lane.done_ <- lane.done_ + 1;
        if lane.done_ = lane.pushed then Condition.broadcast t.idle;
        loop ()
      end
      else if t.stop then Mutex.unlock t.mutex
      else begin
        Condition.wait t.not_empty t.mutex;
        loop ()
      end
    in
    loop ()

  let create ~lanes ~capacity ~handler =
    if lanes < 1 then invalid_arg "Pool.Workers.create: lanes must be >= 1";
    if capacity < 1 then
      invalid_arg "Pool.Workers.create: capacity must be >= 1";
    let t =
      {
        capacity;
        handler;
        lanes =
          Array.init lanes (fun _ ->
              {
                ring = Array.make capacity None;
                head = 0;
                len = 0;
                pushed = 0;
                done_ = 0;
                failure = None;
                lost = [];
                domain = None;
              });
        mutex = Mutex.create ();
        not_full = Condition.create ();
        not_empty = Condition.create ();
        idle = Condition.create ();
        stalls = Atomic.make 0;
        stop = false;
      }
    in
    Array.iteri
      (fun k lane -> lane.domain <- Some (Domain.spawn (fun () -> lane_loop t k)))
      t.lanes;
    t

  let push t ~lane item =
    if lane < 0 || lane >= Array.length t.lanes then
      invalid_arg "Pool.Workers.push: no such lane";
    let l = t.lanes.(lane) in
    Mutex.lock t.mutex;
    if t.stop then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.Workers: used after shutdown"
    end;
    let stalled = ref false in
    while l.len = t.capacity && l.failure = None do
      if not !stalled then begin
        stalled := true;
        Atomic.incr t.stalls
      end;
      Condition.wait t.not_full t.mutex
    done;
    match l.failure with
    | Some (e, bt) ->
      Mutex.unlock t.mutex;
      Printexc.raise_with_backtrace e bt
    | None ->
      l.ring.((l.head + l.len) mod t.capacity) <- Some item;
      l.len <- l.len + 1;
      l.pushed <- l.pushed + 1;
      Condition.broadcast t.not_empty;
      Mutex.unlock t.mutex

  let try_push t ~lane item =
    if lane < 0 || lane >= Array.length t.lanes then
      invalid_arg "Pool.Workers.try_push: no such lane";
    let l = t.lanes.(lane) in
    Mutex.lock t.mutex;
    if t.stop then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.Workers: used after shutdown"
    end;
    match l.failure with
    | Some (e, bt) ->
      Mutex.unlock t.mutex;
      Printexc.raise_with_backtrace e bt
    | None when l.len = t.capacity ->
      Mutex.unlock t.mutex;
      false
    | None ->
      l.ring.((l.head + l.len) mod t.capacity) <- Some item;
      l.len <- l.len + 1;
      l.pushed <- l.pushed + 1;
      Condition.broadcast t.not_empty;
      Mutex.unlock t.mutex;
      true

  let failure t ~lane =
    if lane < 0 || lane >= Array.length t.lanes then
      invalid_arg "Pool.Workers.failure: no such lane";
    Mutex.lock t.mutex;
    let f = t.lanes.(lane).failure in
    Mutex.unlock t.mutex;
    f

  let restart t ~lane =
    if lane < 0 || lane >= Array.length t.lanes then
      invalid_arg "Pool.Workers.restart: no such lane";
    let l = t.lanes.(lane) in
    Mutex.lock t.mutex;
    if t.stop then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.Workers: used after shutdown"
    end;
    let lost = List.rev l.lost in
    l.lost <- [];
    l.failure <- None;
    (* The lane domain is parked on [not_empty]; wake it so it resumes
       consuming as soon as new items arrive (or immediately, if a racing
       push already queued some). *)
    Condition.broadcast t.not_empty;
    Mutex.unlock t.mutex;
    lost

  let quiesce t =
    Mutex.lock t.mutex;
    while Array.exists (fun l -> l.done_ < l.pushed) t.lanes do
      Condition.wait t.idle t.mutex
    done;
    Mutex.unlock t.mutex

  let first_failure t =
    Mutex.lock t.mutex;
    let f =
      Array.fold_left
        (fun acc l -> match acc with Some _ -> acc | None -> l.failure)
        None t.lanes
    in
    Mutex.unlock t.mutex;
    f

  let shutdown t =
    Mutex.lock t.mutex;
    let fresh = not t.stop in
    t.stop <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full;
    Mutex.unlock t.mutex;
    if fresh then
      Array.iter
        (fun l ->
          Option.iter Domain.join l.domain;
          l.domain <- None)
        t.lanes;
    match first_failure t with
    | Some (e, bt) when fresh -> Printexc.raise_with_backtrace e bt
    | _ -> ()
end
