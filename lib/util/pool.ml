(* A batch is one map/iter call: lanes claim indices from [next] until it
   passes [n] or a body raises ([cancelled] stops further claims; indices
   already claimed still finish). *)
type batch = {
  body : int -> unit;  (* wrapped by [map]/[iter]; never raises *)
  n : int;
  next : int Atomic.t;
  cancelled : bool Atomic.t;
}

type t = {
  lanes : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  (* All fields below are protected by [mutex]. *)
  mutable current : batch option;
  mutable generation : int;  (* bumped once per batch; workers run each once *)
  mutable finished : int;    (* workers done with the current generation *)
  mutable stop : bool;
  mutable domains : unit Domain.t array;
}

let default_jobs () = Domain.recommended_domain_count ()

let drain batch =
  let rec claim () =
    let i = Atomic.fetch_and_add batch.next 1 in
    if i < batch.n && not (Atomic.get batch.cancelled) then begin
      batch.body i;
      claim ()
    end
  in
  claim ()

(* Worker domains process every generation exactly once (possibly claiming
   zero indices) so the caller can join on a plain finished-count. *)
let worker_loop t =
  let seen = ref 0 in
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stop then Mutex.unlock t.mutex
    else if t.generation = !seen then begin
      Condition.wait t.work_ready t.mutex;
      loop ()
    end
    else begin
      seen := t.generation;
      let batch = Option.get t.current in
      Mutex.unlock t.mutex;
      drain batch;
      Mutex.lock t.mutex;
      t.finished <- t.finished + 1;
      if t.finished = Array.length t.domains then Condition.signal t.work_done;
      loop ()
    end
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      lanes = jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      current = None;
      generation = 0;
      finished = 0;
      stop = false;
      domains = [||];
    }
  in
  t.domains <-
    Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.lanes

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.domains;
  t.domains <- [||]

(* Hand [batch] to the workers, drain it on the calling domain too, and
   return once every lane is done with it. *)
let submit t batch =
  Mutex.lock t.mutex;
  if t.stop then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool: used after shutdown"
  end;
  t.current <- Some batch;
  t.finished <- 0;
  t.generation <- t.generation + 1;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  drain batch;
  Mutex.lock t.mutex;
  while t.finished < Array.length t.domains do
    Condition.wait t.work_done t.mutex
  done;
  t.current <- None;
  Mutex.unlock t.mutex

(* Wraps [f] so bodies never raise across domains: the first failure by
   *index* (not completion order) is kept, so the exception [map] re-raises
   is deterministic whenever the failing body is. *)
let guarded f cancelled =
  let failure = ref None in
  let failure_mutex = Mutex.create () in
  let body i =
    match f i with
    | () -> ()
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Atomic.set cancelled true;
      Mutex.lock failure_mutex;
      (match !failure with
      | Some (j, _, _) when j < i -> ()
      | _ -> failure := Some (i, e, bt));
      Mutex.unlock failure_mutex
  in
  (body, failure)

let parallel_iter t n f =
  let cancelled = Atomic.make false in
  let body, failure = guarded f cancelled in
  submit t { body; n; next = Atomic.make 0; cancelled };
  match !failure with
  | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let map t n f =
  if n < 0 then invalid_arg "Pool.map: negative range";
  if n = 0 then [||]
  else if t.lanes = 1 || n = 1 then Array.init n f
  else begin
    let results = Array.make n None in
    parallel_iter t n (fun i -> results.(i) <- Some (f i));
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every index ran: no failure was raised *))
      results
  end

let iter t n f =
  if n < 0 then invalid_arg "Pool.iter: negative range";
  if n = 0 then ()
  else if t.lanes = 1 || n = 1 then
    for i = 0 to n - 1 do
      f i
    done
  else parallel_iter t n f

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run ~jobs n f =
  if jobs <= 1 || n <= 1 then begin
    if n < 0 then invalid_arg "Pool.run: negative range";
    Array.init n f
  end
  else with_pool ~jobs (fun t -> map t n f)
