let bytes_per_word = Sys.word_size / 8

let words_to_mb words = float_of_int (words * bytes_per_word) /. (1024.0 *. 1024.0)

let live_mb () =
  let stat = Gc.quick_stat () in
  words_to_mb stat.Gc.heap_words

module Tracker = struct
  (* One accounting cell per domain that touched the tracker.  All cell
     fields are protected by the tracker mutex: the operations are a few
     integer updates, so an uncontended lock (the common case — algorithm
     runs own their tracker) costs nothing measurable, and cross-domain
     reads of [high_water_mb] are race-free. *)
  type cell = {
    domain : int;
    mutable current : int;
    mutable baseline : int;
    mutable peak : int;
  }

  type t = {
    mutex : Mutex.t;
    mutable cells : cell list;  (* newest first; typically length 1 *)
  }

  let create () = { mutex = Mutex.create (); cells = [] }

  let cell t =
    let id = (Domain.self () :> int) in
    let rec find = function
      | c :: _ when c.domain = id -> c
      | _ :: rest -> find rest
      | [] ->
        let c = { domain = id; current = 0; baseline = 0; peak = 0 } in
        t.cells <- c :: t.cells;
        c
    in
    find t.cells

  let refresh_peak c =
    let total = c.current + c.baseline in
    if total > c.peak then c.peak <- total

  let add_words t n =
    Mutex.lock t.mutex;
    let c = cell t in
    c.current <- c.current + n;
    refresh_peak c;
    Mutex.unlock t.mutex

  let remove_words t n =
    Mutex.lock t.mutex;
    let c = cell t in
    c.current <- max 0 (c.current - n);
    Mutex.unlock t.mutex

  let set_baseline_words t n =
    Mutex.lock t.mutex;
    let c = cell t in
    c.baseline <- n;
    refresh_peak c;
    Mutex.unlock t.mutex

  (* Merged peak: the sum of per-domain high-water marks.  Equal to the
     true peak when one domain uses the tracker (the engine's case), an
     upper bound on concurrent usage otherwise. *)
  let high_water_mb t =
    Mutex.lock t.mutex;
    let words = List.fold_left (fun acc c -> acc + c.peak) 0 t.cells in
    Mutex.unlock t.mutex;
    words_to_mb words
end
