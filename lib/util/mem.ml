let bytes_per_word = Sys.word_size / 8

let words_to_mb words = float_of_int (words * bytes_per_word) /. (1024.0 *. 1024.0)

let live_mb () =
  let stat = Gc.quick_stat () in
  words_to_mb stat.Gc.heap_words

module Tracker = struct
  type t = {
    mutable current : int;
    mutable baseline : int;
    mutable peak : int;
  }

  let create () = { current = 0; baseline = 0; peak = 0 }

  let refresh_peak t =
    let total = t.current + t.baseline in
    if total > t.peak then t.peak <- total

  let add_words t n =
    t.current <- t.current + n;
    refresh_peak t

  let remove_words t n = t.current <- max 0 (t.current - n)

  let set_baseline_words t n =
    t.baseline <- n;
    refresh_peak t

  let high_water_mb t = words_to_mb t.peak
end
