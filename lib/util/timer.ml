type t = float

let start () = Unix.gettimeofday ()

(* [gettimeofday] is wall-clock time and can step backwards under NTP
   adjustment; clamp so callers never see a negative duration. *)
let elapsed_s t = Float.max 0.0 (Unix.gettimeofday () -. t)

let time f =
  let t = start () in
  let result = f () in
  (result, elapsed_s t)
