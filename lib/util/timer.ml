type t = float

let start () = Unix.gettimeofday ()
let elapsed_s t = Unix.gettimeofday () -. t

let time f =
  let t = start () in
  let result = f () in
  (result, elapsed_s t)
