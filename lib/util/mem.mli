(** Memory-footprint estimation for the memory panels of Figs. 3i-l / 4i-l.

    The paper reports the memory cost of each algorithm (measured on their C++
    implementation).  We reproduce the semantics — {e how much memory the
    algorithm's own data structures occupy at their peak} — with two
    complementary estimators:

    - {!live_mb}: GC-reported live heap words, a whole-process measurement
      used to sanity-check the structural estimates;
    - {!Tracker}: an explicit high-water accounting object that algorithms
      feed with the sizes of the structures they allocate (flow networks,
      heaps, score arrays).  This isolates the algorithm from the workload
      (tasks/workers are inputs and identical across algorithms, exactly as
      in the paper where all algorithms load the same dataset). *)

val live_mb : unit -> float
(** Current live heap size in MB ([Gc.quick_stat] based; cheap). *)

val words_to_mb : int -> float
(** Convert a word count to MB on this platform. *)

module Tracker : sig
  type t
  (** Domain-safe: each domain that touches the tracker gets its own
      accounting cell, and {!high_water_mb} reports the merged peak (the
      sum of per-domain high-water marks — exactly the single-domain peak
      when only one domain used the tracker, an upper bound on concurrent
      usage otherwise). *)

  val create : unit -> t

  val add_words : t -> int -> unit
  (** Grow the current structural footprint by [n] words. *)

  val remove_words : t -> int -> unit

  val set_baseline_words : t -> int -> unit
  (** Footprint that exists for the whole run (e.g. the score array [S]). *)

  val high_water_mb : t -> float
  (** Peak footprint observed so far, in MB, including the baseline. *)
end
