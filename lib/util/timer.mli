(** Wall-clock timing for the runtime panels of Figs. 3-4.

    Based on [Unix.gettimeofday], i.e. {e wall-clock} time: the clock can
    be stepped backwards (NTP adjustment, manual reset), so measurements
    spanning such a step under-report.  Elapsed times are clamped to [>= 0]
    so a step never yields a negative duration. *)

type t

val start : unit -> t

val elapsed_s : t -> float
(** Seconds since [start]; never negative. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result together with the elapsed wall
    time in seconds (never negative). *)
