(** Wall-clock timing for the runtime panels of Figs. 3-4. *)

type t

val start : unit -> t

val elapsed_s : t -> float
(** Seconds since [start]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result together with the elapsed wall
    time in seconds. *)
