(** Probability distributions used by the workload generators.

    Table IV of the paper draws historical worker accuracies from either a
    Normal(mu, 0.05) or a Uniform distribution with a given mean; both are
    truncated to the platform's admissible accuracy band (the paper ignores
    workers with [p_w < 0.66] as spam, and accuracy can never exceed 1). *)

type t =
  | Uniform of { lo : float; hi : float }
      (** Uniform over [\[lo, hi\]]. *)
  | Normal of { mu : float; sigma : float }
      (** Gaussian with mean [mu] and standard deviation [sigma]. *)
  | Truncated of { dist : t; lo : float; hi : float }
      (** Rejection-resample [dist] until the draw lands in [\[lo, hi\]]. *)
  | Constant of float

val sample : Rng.t -> t -> float

val mean : t -> float
(** Analytical mean for [Uniform]/[Normal]/[Constant]; for [Truncated] the
    mean of the underlying distribution (adequate for the mild truncations
    used here, where clipping is nearly symmetric). *)

val accuracy_normal : mu:float -> t
(** The paper's Normal accuracy model: Normal(mu, 0.05) truncated to
    [\[0.66, 1.0\]]. *)

val accuracy_uniform : mean:float -> t
(** The paper's Uniform accuracy model: a uniform distribution centred on
    [mean] with half-width 0.08, clipped into [\[0.66, 1.0\]]. *)

val pp : Format.formatter -> t -> unit
