(** Logging sources for the library.

    All libraries log through these {!Logs} sources; applications choose
    what to see.  The CLI and the bench harness call {!setup} (Fmt reporter
    on stderr); embedders can install their own reporter instead and tune
    per-source levels with [Logs.Src.set_level]. *)

val algo : Logs.src
(** Algorithm events: batch solves, completion, engine stops. *)

val flow : Logs.src
(** Solver internals: augmentation rounds, Bellman-Ford passes. *)

val workload : Logs.src
(** Generator events: hot-spot mixtures, cardinalities. *)

val obs : Logs.src
(** Observability layer: metric snapshots, trace summaries, engine
    telemetry. *)

val setup :
  ?level:Logs.level -> ?src_levels:(string * Logs.level) list -> unit -> unit
(** Install a [Format]-based reporter on stderr and set the global level
    ([None] semantics: pass no [level] to leave reporting off).

    [src_levels] then overrides individual sources by name — the [ltc.]
    prefix is optional, so [("obs", Logs.Debug)] turns on solver-trace
    logging without drowning in [flow] debug lines.
    @raise Invalid_argument on an unknown source name. *)
