(** Logging sources for the library.

    All libraries log through these {!Logs} sources; applications choose
    what to see.  The CLI and the bench harness call {!setup} (Fmt reporter
    on stderr); embedders can install their own reporter instead and tune
    per-source levels with [Logs.Src.set_level]. *)

val algo : Logs.src
(** Algorithm events: batch solves, completion, engine stops. *)

val flow : Logs.src
(** Solver internals: augmentation rounds, Bellman-Ford passes. *)

val workload : Logs.src
(** Generator events: hot-spot mixtures, cardinalities. *)

val setup : ?level:Logs.level -> unit -> unit
(** Install a [Format]-based reporter on stderr and set the global level
    ([None] semantics: pass no [level] to leave reporting off). *)
