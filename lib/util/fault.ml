type action = Crash | Io_error | Torn_write of int | Delay of float

type fault = { site : string; hit : int; action : action }
type plan = fault list

exception Injected_crash of { site : string; hit : int }
exception Injected_io of { site : string; hit : int }

type stats = {
  crashes : int;
  io_errors : int;
  torn_writes : int;
  delays : int;
}

let no_stats = { crashes = 0; io_errors = 0; torn_writes = 0; delays = 0 }

(* One mutable cell per pending fault so firing is O(matching faults) per
   probe and a fault can never fire twice. *)
type armed_fault = { f : fault; mutable fired : bool }

type state = {
  (* Armed faults indexed by (site, hit) so each probe is O(1) — loadgen
     arms one Delay per arrival, and a linear scan would make every probe
     O(|plan|). *)
  index : (string * int, armed_fault) Hashtbl.t;
  counters : (string, int ref) Hashtbl.t;
  mutable stats : stats;
  (* [None]: real time.  [Some t]: virtual time, advanced explicitly. *)
  mutable vnow : float option;
}

(* All of [state] is guarded by [lock]: probes may run concurrently from
   shard domains once a plan is armed.  Exceptions are raised and the
   virtual clock advanced only *outside* the critical section, so a fired
   Crash can never leak the lock. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
    Mutex.unlock lock;
    v
  | exception e ->
    Mutex.unlock lock;
    raise e

let state =
  {
    index = Hashtbl.create 64;
    counters = Hashtbl.create 16;
    stats = no_stats;
    vnow = None;
  }

(* The hot-path switch: a single atomic load + branch while disarmed. *)
let is_armed = Atomic.make false

(* ----------------------------------------------------------------- scope *)

(* A domain-local site prefix: while a scope [s] is set, every probe for
   [site] is accounted against ["s/site"] instead.  The supervised sharded
   server scopes each shard domain to its shard name, giving every shard a
   single-writer (hence deterministic) hit sequence that plans can target
   individually.  Unscoped domains — everything outside supervision —
   behave exactly as before. *)
let scope_key : string option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let scope_site ~scope site = scope ^ "/" ^ site

let resolve site =
  match Domain.DLS.get scope_key with
  | None -> site
  | Some scope -> scope_site ~scope site

let with_scope scope f =
  let prev = Domain.DLS.get scope_key in
  Domain.DLS.set scope_key (Some scope);
  Fun.protect ~finally:(fun () -> Domain.DLS.set scope_key prev) f

let current_scope () = Domain.DLS.get scope_key

(* --------------------------------------------------------------- arming *)

let arm plan =
  locked (fun () ->
      Hashtbl.reset state.index;
      (* First fault wins on a duplicate (site, hit) pair, like the
         previous list scan. *)
      List.iter
        (fun f ->
          let key = (f.site, f.hit) in
          if not (Hashtbl.mem state.index key) then
            Hashtbl.add state.index key { f; fired = false })
        plan;
      Hashtbl.reset state.counters;
      state.stats <- no_stats);
  Atomic.set is_armed true

let disarm () = Atomic.set is_armed false
let armed () = Atomic.get is_armed

let hits site =
  let site = resolve site in
  locked (fun () ->
      match Hashtbl.find_opt state.counters site with
      | Some r -> !r
      | None -> 0)

let stats () = locked (fun () -> state.stats)

(* ----------------------------------------------------------- the probes *)

(* Called with [lock] held. *)
let bump site =
  match Hashtbl.find_opt state.counters site with
  | Some r ->
    incr r;
    !r
  | None ->
    Hashtbl.add state.counters site (ref 1);
    1

(* Called with [lock] held. *)
let pending site hit =
  match Hashtbl.find_opt state.index (site, hit) with
  | Some af when not af.fired -> Some af
  | _ -> None

module Clock = struct
  let now_s () =
    match locked (fun () -> state.vnow) with
    | Some t -> t
    | None -> Unix.gettimeofday ()

  let set_virtual t = locked (fun () -> state.vnow <- Some t)

  let advance dt =
    if dt < 0.0 then invalid_arg "Fault.Clock.advance: negative amount";
    locked (fun () ->
        match state.vnow with
        | None -> ()
        | Some t -> state.vnow <- Some (t +. dt))

  let clear () = locked (fun () -> state.vnow <- None)
  let is_virtual () = locked (fun () -> state.vnow <> None)
end

let sleep dt = if Clock.is_virtual () then Clock.advance dt else Unix.sleepf dt

(* What a probe decided to do, computed under the lock (counter bump,
   fired flag, stats) and executed after releasing it. *)
type decision = Pass | Raise_crash of int | Raise_io of int | Advance of float

(* Called with [lock] held. *)
let decide af ~hit =
  let s = state.stats in
  match af.f.action with
  | Crash ->
    af.fired <- true;
    state.stats <- { s with crashes = s.crashes + 1 };
    Raise_crash hit
  | Io_error ->
    af.fired <- true;
    state.stats <- { s with io_errors = s.io_errors + 1 };
    Raise_io hit
  | Delay dt ->
    af.fired <- true;
    state.stats <- { s with delays = s.delays + 1 };
    Advance dt
  | Torn_write _ ->
    (* Only [check_write] can honour a torn write; a plain site leaves it
       pending (it will never fire — the counter passes [hit] once). *)
    Pass

let execute site = function
  | Pass -> ()
  | Raise_crash hit -> raise (Injected_crash { site; hit })
  | Raise_io hit -> raise (Injected_io { site; hit })
  | Advance dt -> Clock.advance dt

let check site =
  if Atomic.get is_armed then begin
    let site = resolve site in
    locked (fun () ->
        let hit = bump site in
        match pending site hit with None -> Pass | Some af -> decide af ~hit)
    |> execute site
  end

let check_write site ~len =
  if not (Atomic.get is_armed) then None
  else begin
    let site = resolve site in
    let torn, dec =
      locked (fun () ->
          let hit = bump site in
          match pending site hit with
          | None -> (None, Pass)
          | Some af -> (
            match af.f.action with
            | Torn_write n ->
              af.fired <- true;
              let s = state.stats in
              state.stats <- { s with torn_writes = s.torn_writes + 1 };
              (* Keep a strict prefix so the record on disk is genuinely
                 torn. *)
              (Some (min n (max 0 (len - 1))), Pass)
            | Crash | Io_error | Delay _ -> (None, decide af ~hit)))
    in
    execute site dec;
    torn
  end

let crash site =
  let site = resolve site in
  let hit =
    locked (fun () ->
        match Hashtbl.find_opt state.counters site with
        | Some r -> !r
        | None -> 0)
  in
  raise (Injected_crash { site; hit })

(* ------------------------------------------------------ plan generation *)

let pp_action fmt = function
  | Crash -> Format.fprintf fmt "crash"
  | Io_error -> Format.fprintf fmt "io-error"
  | Torn_write n -> Format.fprintf fmt "torn-write(%d)" n
  | Delay s -> Format.fprintf fmt "delay(%gs)" s

let pp_fault fmt f =
  Format.fprintf fmt "%s@%d %a" f.site f.hit pp_action f.action

let plan ?(crashes = 0) ?(io_errors = 0) ?(torn_writes = 0) ?(delays = 0)
    ?(horizon = 100) ?(delay_s = 0.25) ~seed ~sites ~write_sites ~delay_sites
    () =
  if horizon < 1 then invalid_arg "Fault.plan: horizon must be >= 1";
  let rng = Rng.create ~seed in
  let taken = Hashtbl.create 16 in
  let pick_slot pool =
    (* Distinct (site, hit) pairs so no fault shadows another; the pool is
       small and horizon large, so the rejection loop terminates fast. *)
    let rec go budget =
      let site = List.nth pool (Rng.int rng (List.length pool)) in
      let hit = 1 + Rng.int rng horizon in
      if Hashtbl.mem taken (site, hit) && budget > 0 then go (budget - 1)
      else begin
        Hashtbl.replace taken (site, hit) ();
        (site, hit)
      end
    in
    go 1000
  in
  let gen n pool action_of =
    if pool = [] then []
    else
      List.init n (fun _ ->
          let site, hit = pick_slot pool in
          { site; hit; action = action_of () })
  in
  let faults =
    gen crashes (sites @ write_sites) (fun () -> Crash)
    @ gen io_errors (sites @ write_sites) (fun () -> Io_error)
    @ gen torn_writes write_sites (fun () -> Torn_write (Rng.int rng 80))
    @ gen delays delay_sites (fun () -> Delay delay_s)
  in
  List.sort
    (fun a b ->
      match compare a.site b.site with 0 -> compare a.hit b.hit | c -> c)
    faults

(* ---------------------------------------------------------------- retry *)

module Retry = struct
  type spec = { attempts : int; base_s : float; factor : float; max_s : float }

  let default = { attempts = 5; base_s = 0.001; factor = 2.0; max_s = 0.016 }

  let backoff_s spec k =
    Float.min spec.max_s (spec.base_s *. (spec.factor ** float_of_int (k - 1)))

  let is_transient = function
    | Injected_io _ -> true
    | Unix.Unix_error ((EINTR | EAGAIN | EWOULDBLOCK | ENOSPC), _, _) -> true
    | _ -> false

  let with_backoff ?(spec = default) ?(on_retry = fun ~attempt:_ _ -> ()) f =
    if spec.attempts < 1 then
      invalid_arg "Fault.Retry.with_backoff: attempts must be >= 1";
    let rec go attempt =
      try f ()
      with e when is_transient e && attempt < spec.attempts ->
        on_retry ~attempt e;
        sleep (backoff_s spec attempt);
        go (attempt + 1)
    in
    go 1
end
