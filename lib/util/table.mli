(** Plain-text table rendering for the benchmark harness.

    Every figure of the paper is a family of series (one per algorithm) over a
    swept parameter; we print them as aligned text tables so the harness
    output reads like the paper's plots transposed to rows. *)

type align = Left | Right

type cell =
  | Str of string
  | Int of int
  | Float of float  (** rendered with {!render}'s [float_digits] *)

val render :
  ?float_digits:int ->
  header:string list ->
  ?align:align list ->
  cell list list ->
  string
(** [render ~header rows] produces a table with a separator line under the
    header.  Missing [align] entries default to [Right] for numeric-looking
    columns and [Left] otherwise.
    @raise Invalid_argument if a row's width differs from the header's. *)

val print :
  ?float_digits:int ->
  header:string list ->
  ?align:align list ->
  cell list list ->
  unit
