(** Process-global metric registry: counters, gauges and fixed-bucket
    histograms, in the Prometheus data model.

    Instruments are registered once per (name, label set) — re-registering
    returns the existing instrument, so call sites can look their series up
    at run start without coordinating.  The mutation paths ({!Counter.incr},
    {!Histogram.observe}, ...) are allocation-free: a branch on the global
    enable flag plus mutable-field updates, so leaving them compiled into
    hot loops costs nothing measurable while the registry is disabled
    (the default).

    Every operation is domain-safe: counters and gauges are atomic cells,
    histograms and the registry are mutex-guarded.  Concurrent increments
    from pool worker domains (see {!Pool}) sum exactly; snapshots render a
    coherent view of each series.

    Snapshots ({!to_json}, {!to_prometheus}) render every registered series
    in a deterministic order (name, then labels), which is what the test
    suite and the cram tests pin. *)

type labels = (string * string) list
(** Label key/value pairs; order is irrelevant (canonicalised on
    registration).  Values must not contain newlines. *)

val set_enabled : bool -> unit
(** Master switch; starts [false].  While disabled every mutation is a
    no-op, so snapshots stay at registration defaults. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Zeroes every registered series (counts, sums, gauge values) without
    dropping registrations.  Meant for tests and for per-run isolation in
    harnesses. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  (** Monotone increment; [add] with a negative amount raises
      [Invalid_argument]. *)

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  (** Adds the observation to the first bucket whose upper bound is [>=] the
      value (cumulative buckets are computed at snapshot time, like
      Prometheus client libraries).  Non-finite observations (NaN or an
      infinity, e.g. from a zero-duration timer division) are dropped and
      counted in [ltc_metrics_dropped_observations_total] instead of
      corrupting the bucket sums. *)

  val count : t -> int
  val sum : t -> float
end

(** HDR-style log-bucketed latency histogram with bounded relative error.

    Values are recorded into geometric buckets of ratio
    [(1 + rel_error)^2]; {!Hdr.percentile} reconstructs at the geometric
    bucket midpoint, so every quantile estimate is within [rel_error] of
    the exact rank-based percentile of the recorded finite values (the
    exact observed min/max are tracked and always returned exactly).

    Unlike {!Histogram}, an [Hdr] is a standalone, always-on instrument:
    it is not part of the registry and ignores {!set_enabled}, which lets
    the load generator depend on it unconditionally.  All operations are
    mutex-guarded and domain-safe. *)
module Hdr : sig
  type t

  val create :
    ?rel_error:float -> ?min_value:float -> ?max_value:float -> unit -> t
  (** [create ()] tracks values in [[min_value, max_value]] (defaults
      [1e-9 .. 1e5] seconds) with relative error [rel_error] (default
      [0.01], i.e. 1%).  Values outside the range clamp into the edge
      buckets; the exact extremes still come back through
      {!min_observed}/{!max_observed}.
      @raise Invalid_argument when [rel_error] is outside [(0, 1)],
      [min_value <= 0] or [max_value <= min_value]. *)

  val observe : t -> float -> unit
  (** Records a value.  Non-finite values are dropped (counted by
      {!dropped} and [ltc_metrics_dropped_observations_total]). *)

  val count : t -> int
  (** Finite observations recorded. *)

  val sum : t -> float
  (** Exact sum of the recorded values (not bucket-quantised). *)

  val mean : t -> float
  (** [sum / count]; NaN while empty. *)

  val dropped : t -> int
  (** Non-finite observations dropped. *)

  val min_observed : t -> float
  (** Exact smallest recorded value; [+Inf] while empty. *)

  val max_observed : t -> float
  (** Exact largest recorded value; [-Inf] while empty. *)

  val percentile : t -> float -> float
  (** [percentile t p] for [p] in [[0, 100]] is the value at rank
      [ceil (p/100 * count)] (rank 1 for [p = 0]), reconstructed to
      within [rel_error] relative error and clamped into
      [[min_observed, max_observed]].  NaN while empty.
      @raise Invalid_argument when [p] is outside [[0, 100]]. *)

  val merge : into:t -> t -> unit
  (** [merge ~into src] adds [src]'s recorded state into [into]
      (bucket-exact: equivalent to having observed the concatenation).
      [src] is unchanged.
      @raise Invalid_argument when the two instruments were created with
      different [rel_error]/[min_value]/[max_value], or [into == src]. *)

  val rel_error : t -> float
end

val default_buckets : float array
(** Log-spaced seconds buckets [1e-6 .. 10.0], suitable for decision and
    solve latencies. *)

val counter : ?help:string -> ?labels:labels -> string -> Counter.t
val gauge : ?help:string -> ?labels:labels -> string -> Gauge.t

val histogram :
  ?help:string -> ?labels:labels -> ?buckets:float array -> string ->
  Histogram.t
(** [buckets] must be strictly increasing and non-empty (defaults to
    {!default_buckets}); an implicit [+Inf] bucket is always appended.

    All three registration functions raise [Invalid_argument] when [name]
    is already registered with a different instrument kind, or — for
    histograms — with different buckets. *)

val dropped_observations : unit -> int
(** Total non-finite observations dropped across all histograms (the value
    of [ltc_metrics_dropped_observations_total], which is registered on
    the first drop).  Subject to {!set_enabled} like any counter. *)

val to_prometheus : unit -> string
(** Prometheus text exposition format (version 0.0.4): [# HELP] / [# TYPE]
    per metric name, then one line per series, deterministically ordered
    (name, then sorted labels; label values escaped per the exposition
    format). *)

val to_json : unit -> string
(** JSON array of series objects:
    [{"name":..,"type":..,"help":..,"labels":{..},..}] with kind-specific
    payload ([value] for counters/gauges, [buckets]/[sum]/[count] for
    histograms).  Deterministically ordered like {!to_prometheus}. *)
