(** Process-global metric registry: counters, gauges and fixed-bucket
    histograms, in the Prometheus data model.

    Instruments are registered once per (name, label set) — re-registering
    returns the existing instrument, so call sites can look their series up
    at run start without coordinating.  The mutation paths ({!Counter.incr},
    {!Histogram.observe}, ...) are allocation-free: a branch on the global
    enable flag plus mutable-field updates, so leaving them compiled into
    hot loops costs nothing measurable while the registry is disabled
    (the default).

    Every operation is domain-safe: counters and gauges are atomic cells,
    histograms and the registry are mutex-guarded.  Concurrent increments
    from pool worker domains (see {!Pool}) sum exactly; snapshots render a
    coherent view of each series.

    Snapshots ({!to_json}, {!to_prometheus}) render every registered series
    in a deterministic order (name, then labels), which is what the test
    suite and the cram tests pin. *)

type labels = (string * string) list
(** Label key/value pairs; order is irrelevant (canonicalised on
    registration).  Values must not contain newlines. *)

val set_enabled : bool -> unit
(** Master switch; starts [false].  While disabled every mutation is a
    no-op, so snapshots stay at registration defaults. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Zeroes every registered series (counts, sums, gauge values) without
    dropping registrations.  Meant for tests and for per-run isolation in
    harnesses. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  (** Monotone increment; [add] with a negative amount raises
      [Invalid_argument]. *)

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  (** Adds the observation to the first bucket whose upper bound is [>=] the
      value (cumulative buckets are computed at snapshot time, like
      Prometheus client libraries). *)

  val count : t -> int
  val sum : t -> float
end

val default_buckets : float array
(** Log-spaced seconds buckets [1e-6 .. 10.0], suitable for decision and
    solve latencies. *)

val counter : ?help:string -> ?labels:labels -> string -> Counter.t
val gauge : ?help:string -> ?labels:labels -> string -> Gauge.t

val histogram :
  ?help:string -> ?labels:labels -> ?buckets:float array -> string ->
  Histogram.t
(** [buckets] must be strictly increasing and non-empty (defaults to
    {!default_buckets}); an implicit [+Inf] bucket is always appended.

    All three registration functions raise [Invalid_argument] when [name]
    is already registered with a different instrument kind, or — for
    histograms — with different buckets. *)

val to_prometheus : unit -> string
(** Prometheus text exposition format (version 0.0.4): [# HELP] / [# TYPE]
    per metric name, then one line per series, deterministically ordered. *)

val to_json : unit -> string
(** JSON array of series objects:
    [{"name":..,"type":..,"help":..,"labels":{..},..}] with kind-specific
    payload ([value] for counters/gauges, [buckets]/[sum]/[count] for
    histograms).  Deterministically ordered like {!to_prometheus}. *)
