type labels = (string * string) list

(* Sweep cells run on pool domains (see Pool), so every mutation path must
   be domain-safe: counters and gauges are atomics, histograms and the
   registry take a mutex.  The disabled path stays a single atomic load. *)
let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

module Counter = struct
  type t = { c : int Atomic.t }

  let incr t = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add t.c 1)

  let add t n =
    if n < 0 then invalid_arg "Metrics.Counter.add: negative amount";
    if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add t.c n)

  let value t = Atomic.get t.c
end

module Gauge = struct
  type t = { g : float Atomic.t }

  let set t v = if Atomic.get enabled_flag then Atomic.set t.g v

  let add t v =
    if Atomic.get enabled_flag then begin
      let rec cas () =
        let cur = Atomic.get t.g in
        if not (Atomic.compare_and_set t.g cur (cur +. v)) then cas ()
      in
      cas ()
    end

  let value t = Atomic.get t.g
end

module Histogram = struct
  type t = {
    mutex : Mutex.t;
    bounds : float array;  (* strictly increasing finite upper bounds *)
    counts : int array;    (* per-bucket, length = |bounds| + 1 (+Inf last) *)
    mutable total : int;
    mutable hsum : float;
  }

  let observe t v =
    if Atomic.get enabled_flag then begin
      let n = Array.length t.bounds in
      let i = ref 0 in
      (* Linear scan: bucket lists are short and this stays allocation-free. *)
      while !i < n && v > Array.unsafe_get t.bounds !i do incr i done;
      Mutex.lock t.mutex;
      t.counts.(!i) <- t.counts.(!i) + 1;
      t.total <- t.total + 1;
      t.hsum <- t.hsum +. v;
      Mutex.unlock t.mutex
    end

  let count t =
    Mutex.lock t.mutex;
    let n = t.total in
    Mutex.unlock t.mutex;
    n

  let sum t =
    Mutex.lock t.mutex;
    let s = t.hsum in
    Mutex.unlock t.mutex;
    s

  (* Coherent (counts, total, sum) triple for snapshot rendering. *)
  let read t =
    Mutex.lock t.mutex;
    let r = (Array.copy t.counts, t.total, t.hsum) in
    Mutex.unlock t.mutex;
    r
end

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0 |]

type instrument =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t

type series = {
  s_name : string;
  s_labels : labels;  (* canonical: sorted by key *)
  s_help : string;
  s_inst : instrument;
}

(* Per-name metadata fixed by the first registration; later registrations
   (any label set) must agree on kind and buckets. *)
type meta = {
  m_kind : [ `Counter | `Gauge | `Histogram ];
  m_help : string;
  m_buckets : float array;  (* empty unless histogram *)
}

(* [registry_mutex] guards both tables; instruments themselves synchronise
   their own mutations, so the lock is only held for registration and for
   building snapshot series lists. *)
let registry_mutex = Mutex.create ()
let registry : (string * labels, series) Hashtbl.t = Hashtbl.create 64
let metas : (string, meta) Hashtbl.t = Hashtbl.create 64

let canonical_labels name labels =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  let rec dup = function
    | (a, _) :: ((b, _) :: _ as rest) -> if a = b then Some a else dup rest
    | _ -> None
  in
  (match dup sorted with
  | Some k ->
    invalid_arg
      (Printf.sprintf "Metrics: duplicate label key %S on metric %S" k name)
  | None -> ());
  sorted

let kind_name = function
  | `Counter -> "counter"
  | `Gauge -> "gauge"
  | `Histogram -> "histogram"

let register ~name ~help ~labels ~kind ~buckets make =
  let labels = canonical_labels name labels in
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) @@ fun () ->
  (match Hashtbl.find_opt metas name with
  | None -> Hashtbl.add metas name { m_kind = kind; m_help = help; m_buckets = buckets }
  | Some m ->
    if m.m_kind <> kind then
      invalid_arg
        (Printf.sprintf "Metrics: %S already registered as a %s" name
           (kind_name m.m_kind));
    if kind = `Histogram && m.m_buckets <> buckets then
      invalid_arg
        (Printf.sprintf "Metrics: %S already registered with other buckets"
           name));
  match Hashtbl.find_opt registry (name, labels) with
  | Some s -> s.s_inst
  | None ->
    let inst = make () in
    let help =
      match Hashtbl.find_opt metas name with
      | Some m -> m.m_help
      | None -> help
    in
    Hashtbl.add registry (name, labels)
      { s_name = name; s_labels = labels; s_help = help; s_inst = inst };
    inst

let counter ?(help = "") ?(labels = []) name =
  match
    register ~name ~help ~labels ~kind:`Counter ~buckets:[||] (fun () ->
        C { Counter.c = Atomic.make 0 })
  with
  | C c -> c
  | G _ | H _ -> assert false

let gauge ?(help = "") ?(labels = []) name =
  match
    register ~name ~help ~labels ~kind:`Gauge ~buckets:[||] (fun () ->
        G { Gauge.g = Atomic.make 0.0 })
  with
  | G g -> g
  | C _ | H _ -> assert false

let histogram ?(help = "") ?(labels = []) ?(buckets = default_buckets) name =
  if Array.length buckets = 0 then
    invalid_arg "Metrics.histogram: empty bucket list";
  Array.iteri
    (fun i b ->
      if not (Float.is_finite b) then
        invalid_arg "Metrics.histogram: buckets must be finite";
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must be strictly increasing")
    buckets;
  match
    register ~name ~help ~labels ~kind:`Histogram ~buckets (fun () ->
        H
          {
            Histogram.mutex = Mutex.create ();
            bounds = Array.copy buckets;
            counts = Array.make (Array.length buckets + 1) 0;
            total = 0;
            hsum = 0.0;
          })
  with
  | H h -> h
  | C _ | G _ -> assert false

let all_series () =
  Mutex.lock registry_mutex;
  let out = Hashtbl.fold (fun _ s acc -> s :: acc) registry [] in
  Mutex.unlock registry_mutex;
  out

let reset () =
  List.iter
    (fun s ->
      match s.s_inst with
      | C c -> Atomic.set c.Counter.c 0
      | G g -> Atomic.set g.Gauge.g 0.0
      | H h ->
        Mutex.lock h.Histogram.mutex;
        Array.fill h.Histogram.counts 0 (Array.length h.Histogram.counts) 0;
        h.Histogram.total <- 0;
        h.Histogram.hsum <- 0.0;
        Mutex.unlock h.Histogram.mutex)
    (all_series ())

(* ------------------------------------------------------------- snapshots *)

let sorted_series () =
  all_series ()
  |> List.sort (fun a b ->
         match compare a.s_name b.s_name with
         | 0 -> compare a.s_labels b.s_labels
         | c -> c)

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let prom_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k (escape_label v)) labels)
    ^ "}"

(* Labels with one extra pair appended (for histogram [le]). *)
let prom_labels_le labels le =
  prom_labels (labels @ [ ("le", le) ])

let to_prometheus () =
  let buf = Buffer.create 1024 in
  let last_name = ref "" in
  List.iter
    (fun s ->
      if s.s_name <> !last_name then begin
        last_name := s.s_name;
        if s.s_help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" s.s_name s.s_help);
        let kind =
          match s.s_inst with
          | C _ -> "counter"
          | G _ -> "gauge"
          | H _ -> "histogram"
        in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" s.s_name kind)
      end;
      match s.s_inst with
      | C c ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %d\n" s.s_name (prom_labels s.s_labels)
             (Counter.value c))
      | G g ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" s.s_name (prom_labels s.s_labels)
             (float_str (Gauge.value g)))
      | H h ->
        let counts, total, hsum = Histogram.read h in
        let cumulative = ref 0 in
        Array.iteri
          (fun i n ->
            cumulative := !cumulative + n;
            let le =
              if i < Array.length h.Histogram.bounds then
                float_str h.Histogram.bounds.(i)
              else "+Inf"
            in
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" s.s_name
                 (prom_labels_le s.s_labels le)
                 !cumulative))
          counts;
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" s.s_name (prom_labels s.s_labels)
             (float_str hsum));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" s.s_name (prom_labels s.s_labels)
             total))
    (sorted_series ());
  Buffer.contents buf

let json_string s = "\"" ^ escape_label s ^ "\""

let json_float v = if Float.is_finite v then float_str v else "null"

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> json_string k ^ ":" ^ json_string v) labels)
  ^ "}"

let to_json () =
  let series_json s =
    let common kind =
      Printf.sprintf "\"name\":%s,\"type\":\"%s\",\"help\":%s,\"labels\":%s"
        (json_string s.s_name) kind (json_string s.s_help)
        (json_labels s.s_labels)
    in
    match s.s_inst with
    | C c ->
      Printf.sprintf "{%s,\"value\":%d}" (common "counter") (Counter.value c)
    | G g ->
      Printf.sprintf "{%s,\"value\":%s}" (common "gauge")
        (json_float (Gauge.value g))
    | H h ->
      let counts, total, hsum = Histogram.read h in
      let cumulative = ref 0 in
      let buckets =
        Array.to_list
          (Array.mapi
             (fun i n ->
               cumulative := !cumulative + n;
               let le =
                 if i < Array.length h.Histogram.bounds then
                   json_float h.Histogram.bounds.(i)
                 else "\"+Inf\""
               in
               Printf.sprintf "{\"le\":%s,\"count\":%d}" le !cumulative)
             counts)
      in
      Printf.sprintf "{%s,\"buckets\":[%s],\"sum\":%s,\"count\":%d}"
        (common "histogram")
        (String.concat "," buckets)
        (json_float hsum) total
  in
  "[" ^ String.concat "," (List.map series_json (sorted_series ())) ^ "]"
