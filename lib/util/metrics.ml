type labels = (string * string) list

(* Sweep cells run on pool domains (see Pool), so every mutation path must
   be domain-safe: counters and gauges are atomics, histograms and the
   registry take a mutex.  The disabled path stays a single atomic load. *)
let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

module Counter = struct
  type t = { c : int Atomic.t }

  let incr t = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add t.c 1)

  let add t n =
    if n < 0 then invalid_arg "Metrics.Counter.add: negative amount";
    if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add t.c n)

  let value t = Atomic.get t.c
end

module Gauge = struct
  type t = { g : float Atomic.t }

  let set t v = if Atomic.get enabled_flag then Atomic.set t.g v

  let add t v =
    if Atomic.get enabled_flag then begin
      let rec cas () =
        let cur = Atomic.get t.g in
        if not (Atomic.compare_and_set t.g cur (cur +. v)) then cas ()
      in
      cas ()
    end

  let value t = Atomic.get t.g
end

(* Forward reference to the lazily registered drop counter: [Histogram] is
   defined before the registry functions, so the binding is tied after
   [counter] exists (bottom of the registration section). *)
let note_dropped = ref (fun () -> ())

module Histogram = struct
  type t = {
    mutex : Mutex.t;
    bounds : float array;  (* strictly increasing finite upper bounds *)
    counts : int array;    (* per-bucket, length = |bounds| + 1 (+Inf last) *)
    mutable total : int;
    mutable hsum : float;
  }

  let observe t v =
    if Atomic.get enabled_flag then begin
      if not (Float.is_finite v) then !note_dropped ()
      else begin
        let n = Array.length t.bounds in
        let i = ref 0 in
        (* Linear scan: bucket lists are short and this stays allocation-free. *)
        while !i < n && v > Array.unsafe_get t.bounds !i do incr i done;
        Mutex.lock t.mutex;
        t.counts.(!i) <- t.counts.(!i) + 1;
        t.total <- t.total + 1;
        t.hsum <- t.hsum +. v;
        Mutex.unlock t.mutex
      end
    end

  let count t =
    Mutex.lock t.mutex;
    let n = t.total in
    Mutex.unlock t.mutex;
    n

  let sum t =
    Mutex.lock t.mutex;
    let s = t.hsum in
    Mutex.unlock t.mutex;
    s

  (* Coherent (counts, total, sum) triple for snapshot rendering. *)
  let read t =
    Mutex.lock t.mutex;
    let r = (Array.copy t.counts, t.total, t.hsum) in
    Mutex.unlock t.mutex;
    r
end

module Hdr = struct
  (* Log-bucketed (HDR-style) histogram with a guaranteed relative error.
     Bucket [i] covers [(min_value * gamma^i, min_value * gamma^(i+1)]]
     with [gamma = (1 + rel_error)^2]; reconstructing at the geometric
     midpoint [min_value * gamma^i * (1 + rel_error)] keeps the quantile
     estimate within [rel_error] of any value in the bucket.  Unlike
     {!Histogram} this is a standalone instrument — it is not registered
     and not gated on the enable flag, so a load generator can always
     rely on it. *)
  type t = {
    mutex : Mutex.t;
    rel_error : float;
    min_value : float;
    max_value : float;
    gamma : float;
    inv_log_gamma : float;
    counts : int array;
    mutable total : int;
    mutable vsum : float;
    mutable n_dropped : int;
    mutable lo : float;  (* exact observed min, +Inf while empty *)
    mutable hi : float;  (* exact observed max, -Inf while empty *)
  }

  let create ?(rel_error = 0.01) ?(min_value = 1e-9) ?(max_value = 1e5) () =
    if not (Float.is_finite rel_error) || rel_error <= 0.0 || rel_error >= 1.0
    then invalid_arg "Metrics.Hdr.create: rel_error must be in (0, 1)";
    if not (Float.is_finite min_value) || min_value <= 0.0 then
      invalid_arg "Metrics.Hdr.create: min_value must be finite and > 0";
    if not (Float.is_finite max_value) || max_value <= min_value then
      invalid_arg "Metrics.Hdr.create: max_value must be > min_value";
    let gamma = (1.0 +. rel_error) *. (1.0 +. rel_error) in
    let buckets =
      1 + int_of_float (ceil (log (max_value /. min_value) /. log gamma))
    in
    {
      mutex = Mutex.create ();
      rel_error;
      min_value;
      max_value;
      gamma;
      inv_log_gamma = 1.0 /. log gamma;
      counts = Array.make buckets 0;
      total = 0;
      vsum = 0.0;
      n_dropped = 0;
      lo = Float.infinity;
      hi = Float.neg_infinity;
    }

  let rel_error t = t.rel_error

  (* Smallest [i] with [v <= min_value * gamma^(i+1)]; values outside
     [[min_value, max_value]] clamp into the edge buckets (the exact
     [lo]/[hi] bounds recover the true extremes at read time). *)
  let bucket_of t v =
    let v = Float.min t.max_value (Float.max t.min_value v) in
    let i = int_of_float (ceil (log (v /. t.min_value) *. t.inv_log_gamma)) - 1 in
    if i < 0 then 0
    else if i >= Array.length t.counts then Array.length t.counts - 1
    else i

  let observe t v =
    if not (Float.is_finite v) then begin
      Mutex.lock t.mutex;
      t.n_dropped <- t.n_dropped + 1;
      Mutex.unlock t.mutex;
      !note_dropped ()
    end
    else begin
      let i = bucket_of t v in
      Mutex.lock t.mutex;
      t.counts.(i) <- t.counts.(i) + 1;
      t.total <- t.total + 1;
      t.vsum <- t.vsum +. v;
      if v < t.lo then t.lo <- v;
      if v > t.hi then t.hi <- v;
      Mutex.unlock t.mutex
    end

  let locked t f =
    Mutex.lock t.mutex;
    let r = f () in
    Mutex.unlock t.mutex;
    r

  let count t = locked t (fun () -> t.total)
  let sum t = locked t (fun () -> t.vsum)
  let dropped t = locked t (fun () -> t.n_dropped)
  let min_observed t = locked t (fun () -> t.lo)
  let max_observed t = locked t (fun () -> t.hi)

  let mean t =
    locked t (fun () ->
        if t.total = 0 then Float.nan else t.vsum /. float_of_int t.total)

  let percentile t p =
    if not (Float.is_finite p) || p < 0.0 || p > 100.0 then
      invalid_arg "Metrics.Hdr.percentile: p must be in [0, 100]";
    locked t (fun () ->
        if t.total = 0 then Float.nan
        else begin
          let rank =
            max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int t.total)))
          in
          let i = ref 0 and seen = ref t.counts.(0) in
          while !seen < rank do
            incr i;
            seen := !seen + t.counts.(!i)
          done;
          let est =
            t.min_value *. (t.gamma ** float_of_int !i) *. (1.0 +. t.rel_error)
          in
          (* The true value lies in [[lo, hi]], so clamping only helps. *)
          Float.min t.hi (Float.max t.lo est)
        end)

  let merge ~into src =
    if into == src then invalid_arg "Metrics.Hdr.merge: into == src";
    if
      into.rel_error <> src.rel_error
      || into.min_value <> src.min_value
      || into.max_value <> src.max_value
    then invalid_arg "Metrics.Hdr.merge: incompatible configurations";
    let counts, total, vsum, n_dropped, lo, hi =
      locked src (fun () ->
          ( Array.copy src.counts,
            src.total,
            src.vsum,
            src.n_dropped,
            src.lo,
            src.hi ))
    in
    locked into (fun () ->
        Array.iteri (fun i n -> into.counts.(i) <- into.counts.(i) + n) counts;
        into.total <- into.total + total;
        into.vsum <- into.vsum +. vsum;
        into.n_dropped <- into.n_dropped + n_dropped;
        if lo < into.lo then into.lo <- lo;
        if hi > into.hi then into.hi <- hi)
end

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0 |]

type instrument =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t

type series = {
  s_name : string;
  s_labels : labels;  (* canonical: sorted by key *)
  s_help : string;
  s_inst : instrument;
}

(* Per-name metadata fixed by the first registration; later registrations
   (any label set) must agree on kind and buckets. *)
type meta = {
  m_kind : [ `Counter | `Gauge | `Histogram ];
  m_help : string;
  m_buckets : float array;  (* empty unless histogram *)
}

(* [registry_mutex] guards both tables; instruments themselves synchronise
   their own mutations, so the lock is only held for registration and for
   building snapshot series lists. *)
let registry_mutex = Mutex.create ()
let registry : (string * labels, series) Hashtbl.t = Hashtbl.create 64
let metas : (string, meta) Hashtbl.t = Hashtbl.create 64

let canonical_labels name labels =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  let rec dup = function
    | (a, _) :: ((b, _) :: _ as rest) -> if a = b then Some a else dup rest
    | _ -> None
  in
  (match dup sorted with
  | Some k ->
    invalid_arg
      (Printf.sprintf "Metrics: duplicate label key %S on metric %S" k name)
  | None -> ());
  sorted

let kind_name = function
  | `Counter -> "counter"
  | `Gauge -> "gauge"
  | `Histogram -> "histogram"

let register ~name ~help ~labels ~kind ~buckets make =
  let labels = canonical_labels name labels in
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) @@ fun () ->
  (match Hashtbl.find_opt metas name with
  | None -> Hashtbl.add metas name { m_kind = kind; m_help = help; m_buckets = buckets }
  | Some m ->
    if m.m_kind <> kind then
      invalid_arg
        (Printf.sprintf "Metrics: %S already registered as a %s" name
           (kind_name m.m_kind));
    if kind = `Histogram && m.m_buckets <> buckets then
      invalid_arg
        (Printf.sprintf "Metrics: %S already registered with other buckets"
           name));
  match Hashtbl.find_opt registry (name, labels) with
  | Some s -> s.s_inst
  | None ->
    let inst = make () in
    let help =
      match Hashtbl.find_opt metas name with
      | Some m -> m.m_help
      | None -> help
    in
    Hashtbl.add registry (name, labels)
      { s_name = name; s_labels = labels; s_help = help; s_inst = inst };
    inst

let counter ?(help = "") ?(labels = []) name =
  match
    register ~name ~help ~labels ~kind:`Counter ~buckets:[||] (fun () ->
        C { Counter.c = Atomic.make 0 })
  with
  | C c -> c
  | G _ | H _ -> assert false

let gauge ?(help = "") ?(labels = []) name =
  match
    register ~name ~help ~labels ~kind:`Gauge ~buckets:[||] (fun () ->
        G { Gauge.g = Atomic.make 0.0 })
  with
  | G g -> g
  | C _ | H _ -> assert false

let histogram ?(help = "") ?(labels = []) ?(buckets = default_buckets) name =
  if Array.length buckets = 0 then
    invalid_arg "Metrics.histogram: empty bucket list";
  Array.iteri
    (fun i b ->
      if not (Float.is_finite b) then
        invalid_arg "Metrics.histogram: buckets must be finite";
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must be strictly increasing")
    buckets;
  match
    register ~name ~help ~labels ~kind:`Histogram ~buckets (fun () ->
        H
          {
            Histogram.mutex = Mutex.create ();
            bounds = Array.copy buckets;
            counts = Array.make (Array.length buckets + 1) 0;
            total = 0;
            hsum = 0.0;
          })
  with
  | H h -> h
  | C _ | G _ -> assert false

(* Registered on the first drop only, so snapshots stay unchanged for runs
   that never observe a non-finite value. *)
let dropped_counter =
  lazy
    (counter
       ~help:"non-finite observations dropped instead of recorded"
       "ltc_metrics_dropped_observations_total")

let () = note_dropped := fun () -> Counter.incr (Lazy.force dropped_counter)

let dropped_observations () =
  if Lazy.is_val dropped_counter then Counter.value (Lazy.force dropped_counter)
  else 0

let all_series () =
  Mutex.lock registry_mutex;
  let out = Hashtbl.fold (fun _ s acc -> s :: acc) registry [] in
  Mutex.unlock registry_mutex;
  out

let reset () =
  List.iter
    (fun s ->
      match s.s_inst with
      | C c -> Atomic.set c.Counter.c 0
      | G g -> Atomic.set g.Gauge.g 0.0
      | H h ->
        Mutex.lock h.Histogram.mutex;
        Array.fill h.Histogram.counts 0 (Array.length h.Histogram.counts) 0;
        h.Histogram.total <- 0;
        h.Histogram.hsum <- 0.0;
        Mutex.unlock h.Histogram.mutex)
    (all_series ())

(* ------------------------------------------------------------- snapshots *)

let sorted_series () =
  all_series ()
  |> List.sort (fun a b ->
         match compare a.s_name b.s_name with
         | 0 -> compare a.s_labels b.s_labels
         | c -> c)

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* Exposition format: label values are quoted by hand around the escaped
   text — [%S] would OCaml-escape the backslashes a second time — and pairs
   are sorted so inserted labels (histogram [le]) land deterministically. *)
let prom_labels = function
  | [] -> ""
  | labels ->
    let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> k ^ "=\"" ^ escape_label v ^ "\"") labels)
    ^ "}"

(* Labels with one extra pair appended (for histogram [le]). *)
let prom_labels_le labels le =
  prom_labels (labels @ [ ("le", le) ])

let to_prometheus () =
  let buf = Buffer.create 1024 in
  let last_name = ref "" in
  List.iter
    (fun s ->
      if s.s_name <> !last_name then begin
        last_name := s.s_name;
        if s.s_help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" s.s_name s.s_help);
        let kind =
          match s.s_inst with
          | C _ -> "counter"
          | G _ -> "gauge"
          | H _ -> "histogram"
        in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" s.s_name kind)
      end;
      match s.s_inst with
      | C c ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %d\n" s.s_name (prom_labels s.s_labels)
             (Counter.value c))
      | G g ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" s.s_name (prom_labels s.s_labels)
             (float_str (Gauge.value g)))
      | H h ->
        let counts, total, hsum = Histogram.read h in
        let cumulative = ref 0 in
        Array.iteri
          (fun i n ->
            cumulative := !cumulative + n;
            let le =
              if i < Array.length h.Histogram.bounds then
                float_str h.Histogram.bounds.(i)
              else "+Inf"
            in
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" s.s_name
                 (prom_labels_le s.s_labels le)
                 !cumulative))
          counts;
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" s.s_name (prom_labels s.s_labels)
             (float_str hsum));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" s.s_name (prom_labels s.s_labels)
             total))
    (sorted_series ());
  Buffer.contents buf

let json_string s = "\"" ^ escape_label s ^ "\""

let json_float v = if Float.is_finite v then float_str v else "null"

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> json_string k ^ ":" ^ json_string v) labels)
  ^ "}"

let to_json () =
  let series_json s =
    let common kind =
      Printf.sprintf "\"name\":%s,\"type\":\"%s\",\"help\":%s,\"labels\":%s"
        (json_string s.s_name) kind (json_string s.s_help)
        (json_labels s.s_labels)
    in
    match s.s_inst with
    | C c ->
      Printf.sprintf "{%s,\"value\":%d}" (common "counter") (Counter.value c)
    | G g ->
      Printf.sprintf "{%s,\"value\":%s}" (common "gauge")
        (json_float (Gauge.value g))
    | H h ->
      let counts, total, hsum = Histogram.read h in
      let cumulative = ref 0 in
      let buckets =
        Array.to_list
          (Array.mapi
             (fun i n ->
               cumulative := !cumulative + n;
               let le =
                 if i < Array.length h.Histogram.bounds then
                   json_float h.Histogram.bounds.(i)
                 else "\"+Inf\""
               in
               Printf.sprintf "{\"le\":%s,\"count\":%d}" le !cumulative)
             counts)
      in
      Printf.sprintf "{%s,\"buckets\":[%s],\"sum\":%s,\"count\":%d}"
        (common "histogram")
        (String.concat "," buckets)
        (json_float hsum) total
  in
  "[" ^ String.concat "," (List.map series_json (sorted_series ())) ^ "]"
