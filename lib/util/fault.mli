(** Deterministic fault injection for crash/recovery testing.

    A {!plan} scripts faults against named sites: code under test calls
    {!check} (or {!check_write} around a write) at each site, and the
    armed plan decides — purely from the per-site hit counter, never from
    wall time or real randomness — whether that particular visit crashes,
    fails transiently, tears the write or slows the solver down.  The
    same plan against the same workload therefore replays the exact same
    failure history, which is what the chaos harness
    ({!Ltc_service.Chaos}, [ltc chaos]) and the service test suite build
    on.

    While disarmed (the default) every probe is a single load of a
    [bool ref] and a branch — safe to leave compiled into hot paths.

    The module also owns the two clocks that make failure handling
    deterministic under test: a {!Clock} that the engine's per-arrival
    deadline reads (virtualisable, advanced by [Delay] faults) and a
    {!sleep} used by {!Retry.with_backoff} (a virtual clock advance when
    the clock is virtual, so backoff schedules cost no real time in
    tests).

    State is process-global and mutex-guarded: arm a plan from one
    domain, then probe it from as many domains as the scenario runs —
    hit counting, firing and the virtual clock are all atomic with
    respect to concurrent probes.  Arm/disarm themselves are setup
    steps; call them from a single coordinating domain.

    Concurrent probing of one {e shared} site interleaves the domains'
    visits into one counter, so which domain reaches a scripted hit is
    racy.  Where determinism matters — the sharded chaos harness — give
    each domain its own counter space with {!with_scope}: a scoped
    domain probing [site] is accounted against ["scope/site"], a
    single-writer counter whose hit sequence is reproducible.  Plans
    target a scoped site by naming it explicitly ({!scope_site}). *)

(** {1 Fault plans} *)

type action =
  | Crash  (** raise {!Injected_crash} at the site — simulated process death *)
  | Io_error
      (** raise {!Injected_io} — a transient I/O failure
          ([EINTR]/[ENOSPC]-style) that {!Retry.with_backoff} retries *)
  | Torn_write of int
      (** at a write site: persist only the first [n] bytes of the
          payload, then crash.  Ignored by plain {!check} sites. *)
  | Delay of float
      (** advance the virtual {!Clock} by this many seconds — an injected
          solver slowdown.  Ignored when the clock is real. *)

type fault = {
  site : string;  (** site name, e.g. ["journal.append"] *)
  hit : int;  (** 1-based visit number of [site] at which to fire *)
  action : action;
}
(** One scripted fault.  Each fault fires at most once: when [site]'s hit
    counter reaches [hit] while the fault is still pending.  Two faults on
    the same [(site, hit)] pair would shadow each other, so {!plan}
    generates distinct pairs. *)

type plan = fault list

exception Injected_crash of { site : string; hit : int }
(** Simulated process death.  Callers that survive it (the chaos harness)
    must treat all in-memory state as lost and recover from disk. *)

exception Injected_io of { site : string; hit : int }
(** Simulated transient I/O error; {!Retry.is_transient} recognises it. *)

val arm : plan -> unit
(** Install [plan] and zero all hit counters and fired-fault statistics.
    Arming an empty plan still enables counting (useful to trace site
    traffic). *)

val disarm : unit -> unit
(** Back to zero-overhead pass-through.  Counters and {!stats} keep their
    final values until the next {!arm}. *)

val armed : unit -> bool

val check : string -> unit
(** Probe a named site.  Disarmed: free.  Armed: bump the site's hit
    counter and fire the pending fault scheduled for this visit, if any.
    [Torn_write] faults do not fire here (they need a write payload).
    @raise Injected_crash / Injected_io as scripted. *)

val check_write : string -> len:int -> int option
(** Probe a write site about to persist [len] bytes.  [None]: write all
    of it.  [Some n] ([n < len]): a torn write fired — the caller must
    persist exactly the first [n] bytes, make them visible (flush), and
    then call {!crash} on the same site.
    @raise Injected_crash / Injected_io as scripted for non-torn
    faults. *)

val crash : string -> 'a
(** Raise {!Injected_crash} for [site] at its current hit count — the
    second half of the torn-write protocol. *)

val hits : string -> int
(** Current hit counter of a site (0 when never probed since {!arm}).
    Scope-resolved like the probes: under {!with_scope} it reads the
    scoped counter. *)

(** {1 Per-domain scopes} *)

val with_scope : string -> (unit -> 'a) -> 'a
(** [with_scope scope f] runs [f] with every probe on the calling domain
    accounted against [scope ^ "/" ^ site] instead of [site].  Scopes
    are domain-local and nest (the innermost wins); the previous scope
    is restored when [f] returns or raises.  A scoped domain is the
    single writer of its counters, so its hit sequence — and therefore
    which of its visits a plan can hit — is deterministic even with
    other domains probing concurrently. *)

val scope_site : scope:string -> string -> string
(** [scope_site ~scope site] is the site name a probe under
    [with_scope scope] resolves [site] to — use it to aim plan entries
    at one scoped domain, e.g.
    [scope_site ~scope:"shard0" "journal.append"]. *)

val current_scope : unit -> string option
(** The calling domain's active scope, if any. *)

type stats = {
  crashes : int;
  io_errors : int;
  torn_writes : int;
  delays : int;
}
(** Faults actually fired since the last {!arm} (a plan can script more
    than the workload reaches). *)

val stats : unit -> stats
val no_stats : stats

val plan :
  ?crashes:int ->
  ?io_errors:int ->
  ?torn_writes:int ->
  ?delays:int ->
  ?horizon:int ->
  ?delay_s:float ->
  seed:int ->
  sites:string list ->
  write_sites:string list ->
  delay_sites:string list ->
  unit ->
  plan
(** Generate a seeded scenario: [crashes]+[io_errors] faults over
    [sites @ write_sites], [torn_writes] over [write_sites] (torn length
    uniform in 0..79 bytes) and [delays] of [delay_s] seconds (default
    [0.25]) over [delay_sites], each at a distinct [(site, hit)] pair
    with hits uniform in [1..horizon] (default [100]).  Equal seeds yield
    equal plans; faults are returned sorted by site then hit.  Classes
    whose site list is empty generate nothing. *)

val pp_fault : Format.formatter -> fault -> unit
(** [site@hit action], e.g. [journal.append@17 torn-write(23)]. *)

(** {1 Deterministic time} *)

(** The clock behind per-arrival solve deadlines.  Real mode reads
    [Unix.gettimeofday]; virtual mode reads a counter advanced only by
    {!Clock.advance}, [Delay] faults and virtual {!sleep}s, making
    deadline tests and chaos runs time-independent. *)
module Clock : sig
  val now_s : unit -> float

  val set_virtual : float -> unit
  (** Enter virtual mode at this time. *)

  val advance : float -> unit
  (** Move a virtual clock forward; no-op in real mode.
      @raise Invalid_argument on a negative amount. *)

  val clear : unit -> unit
  (** Back to the real clock. *)

  val is_virtual : unit -> bool
end

val sleep : float -> unit
(** Back-off sleep: [Unix.sleepf] in real mode, {!Clock.advance} in
    virtual mode (deterministic and instantaneous). *)

(** {1 Bounded-backoff retries} *)

module Retry : sig
  type spec = {
    attempts : int;  (** total tries, including the first (>= 1) *)
    base_s : float;  (** delay before the first retry *)
    factor : float;  (** exponential growth per retry *)
    max_s : float;  (** per-retry delay cap *)
  }

  val default : spec
  (** 5 attempts, 1 ms base, doubling, 16 ms cap: worst case adds 15 ms
      of (virtual or real) sleep to one journal operation. *)

  val backoff_s : spec -> int -> float
  (** Delay before retry [k] (1-based):
      [min max_s (base_s *. factor ^ (k-1))].  Pure — the schedule is a
      function of the spec alone, which the determinism test pins. *)

  val is_transient : exn -> bool
  (** [Injected_io], and real [Unix.Unix_error] with [EINTR], [EAGAIN],
      [EWOULDBLOCK] or [ENOSPC] (a filling disk may drain). *)

  val with_backoff :
    ?spec:spec -> ?on_retry:(attempt:int -> exn -> unit) -> (unit -> 'a) -> 'a
  (** Run the thunk, retrying transient failures up to
      [spec.attempts - 1] times with {!backoff_s} sleeps between tries;
      [on_retry ~attempt exn] fires before each sleep ([attempt] is the
      1-based try that just failed).  Non-transient exceptions and the
      final transient failure propagate unchanged. *)
end
