(** Mutable array-backed binary heap.

    The ordering is supplied at creation time: [Heap.create ~leq] builds a
    heap whose [pop] returns the {e smallest} element under [leq].  Pass a
    reversed predicate for a max-heap.  Used as the priority queue of the
    SSPA/Dijkstra augmentation inside {!Ltc_flow.Mcmf} and as the task
    selector of the online algorithms. *)

type 'a t

val create : ?capacity:int -> leq:('a -> 'a -> bool) -> unit -> 'a t
(** [leq a b] must hold iff [a] sorts before or equal to [b]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val to_list : 'a t -> 'a list
(** Elements in unspecified order; the heap is unchanged. *)

val of_array : leq:('a -> 'a -> bool) -> 'a array -> 'a t
(** Linear-time heapify. *)
