(** Lightweight nested tracing: wall-clock spans in a bounded ring buffer.

    Tracing is off by default; while disabled, {!with_span} is a single
    branch plus the traced function call — no clock reads, no allocation,
    no recorded state — so instrumentation can stay compiled into hot
    paths.  When enabled, each completed span records its name, nesting
    depth, parent, start offset and duration into a fixed-capacity ring
    buffer (oldest spans are overwritten; {!dropped} counts the loss).

    Spans use {!Unix.gettimeofday} and share {!Timer}'s caveat: wall time
    can step backwards, so durations are clamped to [>= 0].

    Tracing is domain-safe: span ids come from an atomic counter, the
    open-span stack (and thus [parent]/[depth] nesting) is per-domain, and
    the completed-span ring is mutex-guarded.  Spans recorded by different
    domains interleave in the ring; {!spans} still returns them ordered by
    start ([id]).  {!clear} and {!set_capacity} reset the calling domain's
    open-span stack only — call them with no spans open elsewhere. *)

type span = {
  id : int;          (** monotonically increasing start order *)
  parent : int;      (** [id] of the enclosing span, [-1] at top level *)
  depth : int;       (** nesting depth, [0] at top level *)
  name : string;
  start_s : float;   (** seconds since {!set_enabled}[ true] *)
  duration_s : float;
}

val set_enabled : bool -> unit
(** Enabling (re)starts the trace clock; disabling keeps recorded spans
    readable. *)

val enabled : unit -> bool

val clear : unit -> unit
(** Drops all recorded spans and resets the id counter. *)

val set_capacity : int -> unit
(** Ring-buffer capacity (default 1024).  Implies {!clear}.
    @raise Invalid_argument when not positive. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span.  The span is recorded even
    when [f] raises (the exception is re-raised).  A no-op wrapper when
    tracing is disabled. *)

val spans : unit -> span list
(** Completed spans that are still in the ring, ordered by start ([id]). *)

val dropped : unit -> int
(** Completed spans lost to ring overwrite since the last {!clear}. *)

val pp_tree : Format.formatter -> unit -> unit
(** Indented per-span rendering of {!spans}, one line per span. *)

val to_json : unit -> string
(** JSON array of span objects
    [{"id":..,"parent":..,"depth":..,"name":..,"start_s":..,"duration_s":..}]
    in {!spans} order. *)

val to_chrome_json : unit -> string
(** Chrome trace-event JSON array (one ["ph":"X"] complete event per span,
    timestamps and durations in microseconds) in {!spans} order — loadable
    directly in [chrome://tracing] or Perfetto. *)
