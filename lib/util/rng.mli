(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the library (workload generation, the
    [Random] baseline, Monte-Carlo voting simulation) draws from an explicit
    [Rng.t] so that experiments are exactly reproducible from a seed, across
    machines and OCaml versions.  The implementation is the splitmix64
    generator of Steele, Lea and Flood, which passes BigCrush and supports
    cheap stream splitting. *)

type t

val create : seed:int -> t
(** [create ~seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy at the current position of the stream. *)

val state : t -> int64
(** The full internal state.  Splitmix64 carries exactly one 64-bit word,
    so [state]/{!of_state} capture and resume a stream losslessly — the
    checkpoint/restore path of {!Ltc_service} journals this word and
    reproduces the remaining draws bit-for-bit. *)

val of_state : int64 -> t
(** A generator resuming exactly at [state] (inverse of {!state}). *)

val set_state : t -> int64 -> unit
(** Rewind/advance an existing generator to a captured [state]. *)

val split : t -> t
(** [split rng] advances [rng] and returns a generator whose stream is
    statistically independent from the remainder of [rng]'s stream.  Use it to
    give sub-components their own stream without coupling their consumption
    rates. *)

val split_seed : t -> int
(** [split_seed rng] advances [rng] and returns an integer seed for an
    independent child stream — [create ~seed:(split_seed rng)] is {!split}
    up to the int/int64 truncation.  The experiment harness derives one
    such seed per repetition so that results are a function of the base
    seed alone, independent of parallel scheduling. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int rng n] is uniform over [\[0, n-1\]].  Raises [Invalid_argument] when
    [n <= 0]. *)

val float : t -> float -> float
(** [float rng x] is uniform over [\[0, x)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli rng p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
