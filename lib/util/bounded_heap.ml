(* Elements carry a push sequence number so that equal scores keep the
   earliest-pushed element: the resident element wins against a tying
   newcomer, and [pop_all] sorts ties by ascending sequence. *)
type 'a entry = { score : float; seq : int; value : 'a }

type 'a t = {
  k : int;
  heap : 'a entry Heap.t;
  mutable next_seq : int;
}

(* Min-heap by score; among equal scores the *later* push is the smaller
   element, i.e. the first evicted. *)
let entry_leq a b = a.score < b.score || (a.score = b.score && a.seq > b.seq)

let create ~k () =
  if k <= 0 then invalid_arg "Bounded_heap.create: k must be positive";
  { k; heap = Heap.create ~capacity:(k + 1) ~leq:entry_leq (); next_seq = 0 }

let push t ~score value =
  let e = { score; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  Heap.push t.heap e;
  if Heap.length t.heap > t.k then ignore (Heap.pop t.heap)

let length t = Heap.length t.heap

let pop_all t =
  let rec drain acc =
    match Heap.pop t.heap with
    | None -> acc
    | Some e -> drain (e :: acc)
  in
  let ascending = List.rev (drain []) in
  (* [drain] yields ascending score order (min-heap pops), reversed to
     descending by the accumulator; re-sort only to stabilise equal scores by
     push order. *)
  let descending =
    List.sort
      (fun a b ->
        if a.score = b.score then compare a.seq b.seq else compare b.score a.score)
      ascending
  in
  List.map (fun e -> (e.score, e.value)) descending

let clear t = Heap.clear t.heap
