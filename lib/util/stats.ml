type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then nan else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let sq = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (sq /. float_of_int (n - 1))
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty array";
  {
    n;
    mean = mean xs;
    stddev = stddev xs;
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs;
  }

let pp_summary fmt s =
  Format.fprintf fmt "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" s.n s.mean
    s.stddev s.min s.max
