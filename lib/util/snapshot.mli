(** Combined observability snapshot: every registered {!Metrics} series
    plus the {!Trace} ring, rendered for export.  Shared by [bin/ltc] and
    the bench harness. *)

type format =
  | Json         (** [{"metrics":[..],"spans":[..],"dropped_spans":n}] *)
  | Prometheus   (** text exposition format; spans are not representable *)

val format_of_string : string -> (format, string) result
(** Accepts ["json"] and ["prom"] / ["prometheus"]. *)

val pp_format : Format.formatter -> format -> unit

val render : format -> string

val write : path:string -> format -> unit
(** Writes {!render} to [path]; ["-"] means stdout.  Logs the destination
    on the {!Log.obs} source at info level. *)
