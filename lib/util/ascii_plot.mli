(** Terminal line charts.

    The paper's evaluation is 24 plot panels; tables carry the numbers, but
    trends and crossovers (e.g. AAM overtaking MCF-LTC at large [|T|]) are
    easier to see drawn.  This renders multi-series scatter/line charts in
    plain text — the bench harness attaches one to every panel when run
    with [--plot]. *)

type series = {
  name : string;
  points : (float * float) list;  (** (x, y), any order *)
}

val markers : char array
(** Marker assigned to series [i] is [markers.(i mod Array.length markers)]. *)

val render :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?connect:bool ->
  series list ->
  string
(** [render series] draws all series over a shared frame ([width] x
    [height] interior cells, defaults 64 x 16), with y-axis bounds printed
    on the left, x-axis bounds below, and a marker legend.  [connect]
    (default [true]) links consecutive points (sorted by x) with line
    segments.  Series with fewer than one point, NaN or infinite values are
    skipped.  Returns [""] when nothing is drawable. *)
