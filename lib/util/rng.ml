type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let state t = t.state
let of_state state = { state }
let set_state t state = t.state <- state

(* Finalizer of splitmix64: two xor-shift-multiply rounds. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let split_seed t = Int64.to_int (bits64 t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the top bits to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let rec draw () =
    let bits = Int64.shift_right_logical (bits64 t) 1 in
    let value = Int64.rem bits n64 in
    if Int64.sub bits value > Int64.sub (Int64.sub Int64.max_int n64) 1L
    then draw ()
    else Int64.to_int value
  in
  draw ()

let float t x =
  (* 53 uniform mantissa bits. *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
