type format = Json | Prometheus

let format_of_string = function
  | "json" -> Ok Json
  | "prom" | "prometheus" -> Ok Prometheus
  | s -> Error (Printf.sprintf "unknown metrics format %S (try: prom, json)" s)

let pp_format fmt = function
  | Json -> Format.pp_print_string fmt "json"
  | Prometheus -> Format.pp_print_string fmt "prom"

let render = function
  | Prometheus -> Metrics.to_prometheus ()
  | Json ->
    Printf.sprintf "{\"metrics\":%s,\"spans\":%s,\"dropped_spans\":%d}\n"
      (Metrics.to_json ()) (Trace.to_json ()) (Trace.dropped ())

let write ~path format =
  let body = render format in
  if path = "-" then print_string body
  else begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc body)
  end;
  Logs.info ~src:Log.obs (fun m ->
      m "metrics snapshot (%a) written to %s" pp_format format
        (if path = "-" then "<stdout>" else path))
