type t =
  | Uniform of { lo : float; hi : float }
  | Normal of { mu : float; sigma : float }
  | Truncated of { dist : t; lo : float; hi : float }
  | Constant of float

let rec sample rng = function
  | Constant c -> c
  | Uniform { lo; hi } -> lo +. Rng.float rng (hi -. lo)
  | Normal { mu; sigma } ->
    (* Box-Muller; one draw per call keeps the stream position independent of
       how callers interleave distributions. *)
    let u1 = 1.0 -. Rng.float rng 1.0 in
    let u2 = Rng.float rng 1.0 in
    let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
    mu +. (sigma *. z)
  | Truncated { dist; lo; hi } ->
    let rec draw attempts =
      if attempts = 0 then Float.min hi (Float.max lo (sample rng dist))
      else
        let x = sample rng dist in
        if x >= lo && x <= hi then x else draw (attempts - 1)
    in
    draw 1000

let rec mean = function
  | Constant c -> c
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Normal { mu; _ } -> mu
  | Truncated { dist; _ } -> mean dist

let min_accuracy = 0.66

let accuracy_normal ~mu =
  Truncated { dist = Normal { mu; sigma = 0.05 }; lo = min_accuracy; hi = 1.0 }

let accuracy_uniform ~mean =
  let lo = Float.max min_accuracy (mean -. 0.08) in
  let hi = Float.min 1.0 (mean +. 0.08) in
  Uniform { lo; hi }

let rec pp fmt = function
  | Constant c -> Format.fprintf fmt "Constant(%g)" c
  | Uniform { lo; hi } -> Format.fprintf fmt "Uniform[%g, %g]" lo hi
  | Normal { mu; sigma } -> Format.fprintf fmt "Normal(%g, %g)" mu sigma
  | Truncated { dist; lo; hi } ->
    Format.fprintf fmt "%a|[%g, %g]" pp dist lo hi
