(** Summary statistics over float samples.

    The paper repeats every experimental setting 30 times and reports
    averages (Sec. V-A); {!summarize} feeds those panels. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
}

val mean : float array -> float
val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]]; linear interpolation between
    order statistics.  @raise Invalid_argument on an empty array. *)

val summarize : float array -> summary
(** @raise Invalid_argument on an empty array. *)

val pp_summary : Format.formatter -> summary -> unit
