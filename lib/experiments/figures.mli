(** The experiment registry: one entry per column of Fig. 3 / Fig. 4 plus
    the ablations and the Hoeffding validation (see DESIGN.md §4).

    Every entry regenerates the paper panels at a configurable [scale]
    (density-preserving shrink of the workload; [1.0] = the paper's exact
    cardinalities) and [reps] repetitions (paper: 30).  Entries return
    printable tables — latency, runtime and memory, i.e. the three panel
    rows of the paper's figures. *)

type t = {
  id : string;          (** harness name, e.g. ["fig3-T"] *)
  panels : string;      (** the paper panels this regenerates *)
  description : string;
  default_scale : float;
      (** scale at which the experiment runs in a few minutes on a laptop *)
  run : jobs:int -> scale:float -> reps:int -> seed:int -> Runner.output list;
      (** [jobs] parallelizes the entry's independent
          measurement cells over that many domains (see
          {!Runner.sweep}).  Latency/memory/completion outputs are
          bit-identical for every [jobs]; wall-clock runtime columns vary
          run to run, as they do sequentially.  Entries whose measurements
          are themselves wall-clock micro-benchmarks ([ablation-index],
          [ablation-solver]) and the sequentially-coupled [ext-inference]
          ignore [jobs] by design. *)
}

val all : t list
val find : string -> t option

val ids : unit -> string list
