open Ltc_workload

type t = {
  id : string;
  panels : string;
  description : string;
  default_scale : float;
  run : jobs:int -> scale:float -> reps:int -> seed:int -> Runner.output list;
}

(* ------------------------------------------------- synthetic panel sweeps *)

let synthetic_instance ~seed spec =
  Synthetic.generate (Ltc_util.Rng.create ~seed) spec

(* Parallel map over a list of independent measurement cells; results come
   back in input order, so aggregation below is identical for every
   [jobs]. *)
let pmap ~jobs xs f =
  let arr = Array.of_list xs in
  Array.to_list (Ltc_util.Pool.run ~jobs (Array.length arr) (fun i -> f arr.(i)))

let standard_tables ~id ~x_header points =
  [
    Runner.latency_table ~title:(id ^ ": latency (max worker index)")
      ~x_header points;
    Runner.runtime_table ~title:(id ^ ": runtime (s)") ~x_header points;
    Runner.memory_table ~title:(id ^ ": memory (MB)") ~x_header points;
  ]

(* A sweep over synthetic specs derived from the bold defaults of Table IV:
   [vary] installs the swept value, then the whole spec is shrunk by
   [scale]. *)
let synthetic_sweep ~id ~x_header ~xs ~vary ~label ~jobs ~scale ~reps ~seed =
  let spec_of x = Spec.scale_synthetic scale (vary Spec.default_synthetic x) in
  let points =
    Runner.sweep ~jobs ~reps ~seed ~xs
      ~label:(fun x -> label (spec_of x))
      ~instance_of:(fun ~seed x -> synthetic_instance ~seed (spec_of x))
      ()
  in
  standard_tables ~id ~x_header points

let fig3_t =
  {
    id = "fig3-T";
    panels = "Fig 3a, 3e, 3i";
    description = "latency/runtime/memory while varying |T| (1000..5000)";
    default_scale = 0.2;
    run =
      (fun ~jobs ~scale ~reps ~seed ->
        synthetic_sweep ~id:"fig3-T" ~x_header:"|T|" ~xs:Spec.n_tasks_sweep
          ~vary:(fun spec n_tasks -> { spec with Spec.n_tasks })
          ~label:(fun spec -> string_of_int spec.Spec.n_tasks)
          ~jobs ~scale ~reps ~seed);
  }

let fig3_k =
  {
    id = "fig3-K";
    panels = "Fig 3b, 3f, 3j";
    description = "latency/runtime/memory while varying capacity K (4..8)";
    default_scale = 0.2;
    run =
      (fun ~jobs ~scale ~reps ~seed ->
        synthetic_sweep ~id:"fig3-K" ~x_header:"K" ~xs:Spec.capacity_sweep
          ~vary:(fun spec capacity -> { spec with Spec.capacity })
          ~label:(fun spec -> string_of_int spec.Spec.capacity)
          ~jobs ~scale ~reps ~seed);
  }

let fig3_acc_normal =
  {
    id = "fig3-accN";
    panels = "Fig 3c, 3g, 3k";
    description =
      "latency/runtime/memory with Normal(mu, 0.05) accuracies, mu 0.82..0.90";
    default_scale = 0.2;
    run =
      (fun ~jobs ~scale ~reps ~seed ->
        synthetic_sweep ~id:"fig3-accN" ~x_header:"mu"
          ~xs:Spec.normal_mu_sweep
          ~vary:(fun spec mu -> { spec with Spec.accuracy = Spec.Normal_acc mu })
          ~label:(fun spec ->
            match spec.Spec.accuracy with
            | Spec.Normal_acc mu -> Printf.sprintf "%.2f" mu
            | Spec.Uniform_acc m -> Printf.sprintf "%.2f" m)
          ~jobs ~scale ~reps ~seed);
  }

let fig3_acc_uniform =
  {
    id = "fig3-accU";
    panels = "Fig 3d, 3h, 3l";
    description =
      "latency/runtime/memory with Uniform accuracies, mean 0.82..0.90";
    default_scale = 0.2;
    run =
      (fun ~jobs ~scale ~reps ~seed ->
        synthetic_sweep ~id:"fig3-accU" ~x_header:"mean"
          ~xs:Spec.uniform_mean_sweep
          ~vary:(fun spec mean ->
            { spec with Spec.accuracy = Spec.Uniform_acc mean })
          ~label:(fun spec ->
            match spec.Spec.accuracy with
            | Spec.Normal_acc mu -> Printf.sprintf "%.2f" mu
            | Spec.Uniform_acc m -> Printf.sprintf "%.2f" m)
          ~jobs ~scale ~reps ~seed);
  }

let fig4_eps =
  {
    id = "fig4-eps";
    panels = "Fig 4a, 4e, 4i";
    description =
      "latency/runtime/memory while varying the tolerable error rate";
    default_scale = 0.2;
    run =
      (fun ~jobs ~scale ~reps ~seed ->
        synthetic_sweep ~id:"fig4-eps" ~x_header:"eps"
          ~xs:Spec.epsilon_sweep
          ~vary:(fun spec epsilon -> { spec with Spec.epsilon })
          ~label:(fun spec -> Printf.sprintf "%.2f" spec.Spec.epsilon)
          ~jobs ~scale ~reps ~seed);
  }

let fig4_scalability =
  {
    id = "fig4-scal";
    panels = "Fig 4b, 4f, 4j";
    description = "scalability: |T| = 10k..100k with |W| = 400k";
    default_scale = 0.02;
    run =
      (fun ~jobs ~scale ~reps ~seed ->
        synthetic_sweep ~id:"fig4-scal" ~x_header:"|T|"
          ~xs:Spec.scalability_sweep
          ~vary:(fun spec (n_tasks, n_workers) ->
            { spec with Spec.n_tasks; n_workers })
          ~label:(fun spec ->
            Printf.sprintf "%d (|W|=%d)" spec.Spec.n_tasks spec.Spec.n_workers)
          ~jobs ~scale ~reps ~seed);
  }

(* ------------------------------------------------------------ city sweeps *)

let city_sweep ~id ~city ~jobs ~scale ~reps ~seed =
  let spec_of epsilon =
    Spec.scale_city scale { city with Spec.c_epsilon = epsilon }
  in
  let points =
    Runner.sweep ~jobs ~reps ~seed ~xs:Spec.epsilon_sweep
      ~label:(fun epsilon -> Printf.sprintf "%.2f" epsilon)
      ~instance_of:(fun ~seed epsilon ->
        City.generate (Ltc_util.Rng.create ~seed) (spec_of epsilon))
      ()
  in
  standard_tables ~id ~x_header:"eps" points

let fig4_new_york =
  {
    id = "fig4-ny";
    panels = "Fig 4c, 4g, 4k";
    description = "New York city workload (Table V), varying error rate";
    default_scale = 0.15;
    run =
      (fun ~jobs ~scale ~reps ~seed ->
        city_sweep ~id:"fig4-ny" ~city:Spec.new_york ~jobs ~scale ~reps ~seed);
  }

let fig4_tokyo =
  {
    id = "fig4-tokyo";
    panels = "Fig 4d, 4h, 4l";
    description = "Tokyo city workload (Table V), varying error rate";
    default_scale = 0.08;
    run =
      (fun ~jobs ~scale ~reps ~seed ->
        city_sweep ~id:"fig4-tokyo" ~city:Spec.tokyo ~jobs ~scale ~reps ~seed);
  }

(* -------------------------------------------------------------- ablations *)

let ablation_batch =
  {
    id = "ablation-batch";
    panels = "Sec. V-B1 (batch-size discussion)";
    description =
      "MCF-LTC latency/runtime as a function of its batch-size factor, \
       with AAM as the online reference";
    default_scale = 0.2;
    run =
      (fun ~jobs ~scale ~reps ~seed ->
        let factors = [ 0.5; 1.0; 1.5; 2.0 ] in
        let spec = Spec.scale_synthetic scale Spec.default_synthetic in
        let algorithms factor =
          [
            {
              Ltc_algo.Algorithm.name = "MCF-LTC";
              kind = Ltc_algo.Algorithm.Offline;
              run =
                (fun ~seed:_ ->
                  Ltc_algo.Mcf_ltc.run
                    ~config:
                      {
                        Ltc_algo.Mcf_ltc.default_config with
                        first_batch_factor = 1.5 *. factor;
                        batch_factor = factor;
                      });
              policy = None;
            };
            Ltc_algo.Algorithm.aam;
          ]
        in
        let points =
          List.concat_map
            (fun factor ->
              Runner.sweep
                ~algorithms:(algorithms factor)
                ~jobs ~reps ~seed ~xs:[ factor ]
                ~label:(Printf.sprintf "%.1f x m")
                ~instance_of:(fun ~seed _ -> synthetic_instance ~seed spec)
                ())
            factors
        in
        [
          Runner.latency_table
            ~title:"ablation-batch: latency vs batch factor" ~x_header:"batch"
            points;
          Runner.runtime_table
            ~title:"ablation-batch: runtime (s) vs batch factor"
            ~x_header:"batch" points;
        ]);
  }

let ablation_strategy =
  {
    id = "ablation-strategy";
    panels = "Sec. IV-B design rationale (LGF vs LRF vs hybrid)";
    description =
      "AAM against its two component strategies run alone, plus LAF";
    default_scale = 0.2;
    run =
      (fun ~jobs ~scale ~reps ~seed ->
        let algorithms =
          [
            Ltc_algo.Algorithm.lgf;
            Ltc_algo.Algorithm.lrf;
            Ltc_algo.Algorithm.nearest_first;
            Ltc_algo.Algorithm.laf;
            Ltc_algo.Algorithm.aam;
          ]
        in
        let spec_of n_tasks =
          Spec.scale_synthetic scale
            { Spec.default_synthetic with Spec.n_tasks }
        in
        let points =
          Runner.sweep ~algorithms ~jobs ~reps ~seed ~xs:Spec.n_tasks_sweep
            ~label:(fun n -> string_of_int (spec_of n).Spec.n_tasks)
            ~instance_of:(fun ~seed n -> synthetic_instance ~seed (spec_of n))
            ()
        in
        [
          Runner.latency_table
            ~title:"ablation-strategy: latency, AAM vs its components"
            ~x_header:"|T|" points;
        ]);
  }

let ablation_approx =
  {
    id = "ablation-approx";
    panels = "Theorems 3, 5, 6 (empirical ratios)";
    description =
      "empirical approximation/competitive ratios against the exact optimum \
       on micro instances";
    default_scale = 1.0;
    run =
      (fun ~jobs ~scale ~reps ~seed ->
        let n_instances = max 4 (int_of_float (scale *. float_of_int (10 * reps))) in
        let bound = function
          | "MCF-LTC" -> Some 7.5
          | "LAF" -> Some 7.967
          | "AAM" -> Some 7.738
          | _ -> None
        in
        let algos = Ltc_algo.Algorithm.paper in
        let spec =
          {
            Spec.default_synthetic with
            Spec.n_tasks = 3;
            n_workers = 40;
            capacity = 2;
            epsilon = 0.2;
            world_side = 14.0;
          }
        in
        (* Each micro instance is solved independently (exact optimum plus
           every algorithm); the ratios are merged afterwards in instance
           order, so the table is the same for every [jobs]. *)
        let per_instance =
          pmap ~jobs (List.init n_instances Fun.id) (fun k ->
              let instance = synthetic_instance ~seed:((seed * 7919) + k) spec in
              match Ltc_algo.Optimal.solve instance with
              | None | Some (0, _) -> None
              | Some (opt, _) ->
                let flow_lb =
                  Option.map
                    (fun low -> float_of_int low /. float_of_int opt)
                    (Ltc_algo.Feasibility.latency_lower_bound instance)
                in
                let ratios =
                  List.filter_map
                    (fun (algo : Ltc_algo.Algorithm.t) ->
                      let o = algo.run ~seed instance in
                      if o.Ltc_algo.Engine.completed then
                        Some
                          ( algo.name,
                            float_of_int o.Ltc_algo.Engine.latency
                            /. float_of_int opt )
                      else None)
                    algos
                in
                Some (flow_lb, ratios))
        in
        let sum = Hashtbl.create 8 in
        let wins = ref 0 in
        let solved = ref 0 in
        let record name ratio =
          let s, mx, n =
            match Hashtbl.find_opt sum name with
            | Some slot -> slot
            | None ->
              let slot = (ref 0.0, ref 0.0, ref 0) in
              Hashtbl.add sum name slot;
              slot
          in
          s := !s +. ratio;
          mx := Float.max !mx ratio;
          incr n
        in
        List.iter
          (function
            | None -> ()
            | Some (flow_lb, ratios) ->
              incr solved;
              Option.iter (record "Flow-LB") flow_lb;
              List.iter
                (fun (name, ratio) ->
                  record name ratio;
                  if ratio <= 1.0 then incr wins)
                ratios)
          per_instance;
        let row_of name =
          match Hashtbl.find_opt sum name with
          | None -> None
          | Some (s, mx, n) ->
            Some
              [
                Ltc_util.Table.Str name;
                Ltc_util.Table.Float (!s /. float_of_int !n);
                Ltc_util.Table.Float !mx;
                (match bound name with
                | Some b -> Ltc_util.Table.Float b
                | None -> Ltc_util.Table.Str "-");
              ]
        in
        let rows =
          List.filter_map
            (fun (algo : Ltc_algo.Algorithm.t) -> row_of algo.name)
            algos
          @ Option.to_list (row_of "Flow-LB")
        in
        [
          {
            Runner.title =
              Printf.sprintf
                "ablation-approx: latency ratio vs exact optimum (%d solved \
                 micro instances)"
                !solved;
            header = [ "algorithm"; "mean ratio"; "max ratio"; "proved bound" ];
            rows;
            float_digits = 3;
          };
        ]);
  }

let ablation_index =
  {
    id = "ablation-index";
    panels = "substrate ablation (candidate lookup)";
    description =
      "candidate-task lookup: uniform grid vs kd-tree vs linear scan";
    default_scale = 1.0;
    run =
      (fun ~jobs ~scale ~reps ~seed ->
        (* The measurement IS wall-clock time per index structure; running
           the structures concurrently would skew the very numbers the
           table reports, so this entry stays sequential. *)
        ignore jobs;
        ignore reps;
        let queries = 20_000 in
        let radius = Spec.default_synthetic.Spec.dmax in
        let side = Spec.default_synthetic.Spec.world_side in
        let rows =
          List.map
            (fun n_tasks_paper ->
              let n_tasks =
                max 10
                  (int_of_float (scale *. float_of_int n_tasks_paper))
              in
              let rng = Ltc_util.Rng.create ~seed in
              let points =
                Array.init n_tasks (fun _ ->
                    Ltc_geo.Point.make
                      ~x:(Ltc_util.Rng.float rng side)
                      ~y:(Ltc_util.Rng.float rng side))
              in
              let centers =
                Array.init queries (fun _ ->
                    Ltc_geo.Point.make
                      ~x:(Ltc_util.Rng.float rng side)
                      ~y:(Ltc_util.Rng.float rng side))
              in
              let count = ref 0 in
              let time_structure build query =
                let s, build_t = Ltc_util.Timer.time build in
                let (), query_t =
                  Ltc_util.Timer.time (fun () ->
                      Array.iter (fun c -> query s c) centers)
                in
                build_t +. query_t
              in
              let grid_t =
                time_structure
                  (fun () ->
                    Ltc_geo.Grid_index.build
                      ~world:(Ltc_geo.Bbox.square ~side)
                      ~cell:radius points)
                  (fun g c ->
                    Ltc_geo.Grid_index.iter_within g ~center:c ~radius
                      (fun _ -> incr count))
              in
              let kd_t =
                time_structure
                  (fun () -> Ltc_geo.Kd_tree.build points)
                  (fun t c ->
                    Ltc_geo.Kd_tree.iter_within t ~center:c ~radius (fun _ ->
                        incr count))
              in
              let linear_t =
                time_structure
                  (fun () -> points)
                  (fun pts c ->
                    let r_sq = radius *. radius in
                    Array.iter
                      (fun p ->
                        if Ltc_geo.Point.distance_sq p c <= r_sq then
                          incr count)
                      pts)
              in
              [
                Ltc_util.Table.Int n_tasks;
                Ltc_util.Table.Float (grid_t *. 1000.0);
                Ltc_util.Table.Float (kd_t *. 1000.0);
                Ltc_util.Table.Float (linear_t *. 1000.0);
              ])
            Spec.n_tasks_sweep
        in
        [
          {
            Runner.title =
              Printf.sprintf
                "ablation-index: %d range queries, build+query time (ms)"
                queries;
            header = [ "|T|"; "grid"; "kd-tree"; "linear" ];
            rows;
            float_digits = 1;
          };
        ]);
  }

let ablation_solver =
  {
    id = "ablation-solver";
    panels = "substrate ablation (min-cost-flow solver)";
    description =
      "SSPA-with-potentials vs queue-based SPFA on MCF-LTC batch networks";
    default_scale = 1.0;
    run =
      (fun ~jobs ~scale ~reps ~seed ->
        (* Solver wall-clock comparison: sequential for the same reason as
           ablation-index. *)
        ignore jobs;
        ignore reps;
        (* Build the exact network MCF-LTC would build for one batch of the
           default workload, at several batch sizes. *)
        let build ~n_workers ~n_tasks ~rng =
          let source = 0 and sink = 1 + n_workers + n_tasks in
          let g = Ltc_flow.Graph.create ~n:(sink + 1) in
          for w = 1 to n_workers do
            ignore (Ltc_flow.Graph.add_arc g ~src:source ~dst:w ~cap:6 ~cost:0.0)
          done;
          (* ~9 candidate tasks per worker, as in the default density. *)
          for w = 1 to n_workers do
            for _ = 1 to 9 do
              let t = 1 + n_workers + Ltc_util.Rng.int rng n_tasks in
              ignore
                (Ltc_flow.Graph.add_arc g ~src:w ~dst:t ~cap:1
                   ~cost:(-0.3 -. Ltc_util.Rng.float rng 0.5))
            done
          done;
          for t = 1 + n_workers to n_workers + n_tasks do
            ignore (Ltc_flow.Graph.add_arc g ~src:t ~dst:sink ~cap:4 ~cost:0.0)
          done;
          (g, source, sink)
        in
        let rows =
          List.map
            (fun base_workers ->
              let n_workers =
                max 10 (int_of_float (scale *. float_of_int base_workers))
              in
              let n_tasks = max 5 (n_workers * 3 / 2) in
              let rng1 = Ltc_util.Rng.create ~seed in
              let rng2 = Ltc_util.Rng.create ~seed in
              let g1, source, sink = build ~n_workers ~n_tasks ~rng:rng1 in
              let g2, _, _ = build ~n_workers ~n_tasks ~rng:rng2 in
              (* Both backends through the registry-selected solver API. *)
              let sspa = Ltc_flow.Solver.create "sspa" in
              let spfa = Ltc_flow.Solver.create "spfa" in
              let r1, t1 =
                Ltc_util.Timer.time (fun () ->
                    Ltc_flow.Solver.solve sspa g1 ~source ~sink)
              in
              let r2, t2 =
                Ltc_util.Timer.time (fun () ->
                    Ltc_flow.Solver.solve spfa g2 ~source ~sink)
              in
              [
                Ltc_util.Table.Int n_workers;
                Ltc_util.Table.Int r1.Ltc_flow.Mcmf.flow;
                Ltc_util.Table.Float (t1 *. 1000.0);
                Ltc_util.Table.Float (t2 *. 1000.0);
                Ltc_util.Table.Str
                  (if
                     r1.Ltc_flow.Mcmf.flow = r2.Ltc_flow.Mcmf.flow
                     && Float.abs (r1.Ltc_flow.Mcmf.cost -. r2.Ltc_flow.Mcmf.cost)
                        < 1e-6
                   then "yes"
                   else "NO")
              ])
            [ 100; 200; 400; 800 ]
        in
        [
          {
            Runner.title =
              "ablation-solver: one MCF-LTC batch, SSPA vs SPFA (ms)";
            header = [ "workers"; "flow"; "SSPA"; "SPFA"; "agree" ];
            rows;
            float_digits = 1;
          };
        ]);
  }

let ext_noshow =
  {
    id = "ext-noshow";
    panels = "robustness extension (not in the paper)";
    description =
      "online algorithms when assignments are only answered with \
       probability q (the paper assumes q = 1)";
    default_scale = 0.2;
    run =
      (fun ~jobs ~scale ~reps ~seed ->
        let spec = Spec.scale_synthetic scale Spec.default_synthetic in
        let rates = [ 1.0; 0.9; 0.8; 0.7; 0.6 ] in
        let noshow name policy_of rate =
          {
            Ltc_algo.Algorithm.name;
            kind = Ltc_algo.Algorithm.Online;
            run =
              (fun ~seed instance ->
                Ltc_algo.Engine.run
                  ~config:
                    {
                      Ltc_algo.Engine.default_config with
                      accept_rate = Some rate;
                      rng = Some (Ltc_util.Rng.create ~seed:(seed + 17));
                    }
                  ~name (policy_of ~seed) instance);
            policy = None;
          }
        in
        let algorithms rate =
          [
            noshow "Random"
              (fun ~seed -> Ltc_algo.Random_assign.policy ~seed)
              rate;
            noshow "LAF" (fun ~seed:_ -> Ltc_algo.Laf.policy) rate;
            noshow "AAM" (fun ~seed:_ -> Ltc_algo.Aam.policy) rate;
          ]
        in
        let points =
          List.concat_map
            (fun rate ->
              Runner.sweep
                ~algorithms:(algorithms rate)
                ~jobs ~reps ~seed ~xs:[ rate ]
                ~label:(Printf.sprintf "%.1f")
                ~instance_of:(fun ~seed _ -> synthetic_instance ~seed spec)
                ())
            rates
        in
        [
          Runner.latency_table
            ~title:"ext-noshow: latency vs answer (accept) rate"
            ~x_header:"q" points;
        ]);
  }

let ext_buffer =
  {
    id = "ext-buffer";
    panels = "buffered-online extension (Def. 7's deadline relaxation)";
    description =
      "latency when the platform may hold a small buffer of workers before \
       committing, from per-worker (B=1) up to MCF-LTC's batch regime";
    default_scale = 0.2;
    run =
      (fun ~jobs ~scale ~reps ~seed ->
        let spec = Spec.scale_synthetic scale Spec.default_synthetic in
        let buffers = [ 1; 10; 50; 200; 1000 ] in
        let algorithms buffer =
          [
            {
              Ltc_algo.Algorithm.name = Printf.sprintf "Buffered";
              kind = Ltc_algo.Algorithm.Online;
              run = (fun ~seed:_ -> Ltc_algo.Mcf_ltc.run_buffered ~buffer);
              policy = None;
            };
            Ltc_algo.Algorithm.aam;
            Ltc_algo.Algorithm.mcf_ltc;
          ]
        in
        let points =
          List.concat_map
            (fun buffer ->
              Runner.sweep
                ~algorithms:(algorithms buffer)
                ~jobs ~reps ~seed ~xs:[ buffer ] ~label:string_of_int
                ~instance_of:(fun ~seed _ -> synthetic_instance ~seed spec)
                ())
            buffers
        in
        [
          Runner.latency_table
            ~title:
              "ext-buffer: latency vs buffer size (AAM = no buffer, MCF-LTC \
               = Theorem-2 batches)"
            ~x_header:"B" points;
          Runner.runtime_table ~title:"ext-buffer: runtime (s)" ~x_header:"B"
            points;
        ]);
  }

let ext_dynamic =
  {
    id = "ext-dynamic";
    panels = "dynamic-task extension (assumption (i) relaxed)";
    description =
      "tasks posted over the worker stream instead of known upfront: \
       makespan and per-task response time vs the upfront fraction";
    default_scale = 0.2;
    run =
      (fun ~jobs ~scale ~reps ~seed ->
        let spec = Spec.scale_synthetic scale Spec.default_synthetic in
        let fractions = [ 1.0; 0.75; 0.5; 0.25; 0.0 ] in
        let strategies =
          [ Ltc_algo.Dynamic.Laf_d; Ltc_algo.Dynamic.Aam_d ]
        in
        (* Each fraction row replays the same per-rep seeds, so rows are
           independent cells: fan them over the pool. *)
        let rows =
          pmap ~jobs fractions
            (fun fraction ->
              let make_cells strategy =
                let makespans = ref 0.0 and responses = ref 0.0 in
                let all_completed = ref true in
                for rep = 0 to reps - 1 do
                  let rseed = (seed * 611) + rep in
                  let instance = synthetic_instance ~seed:rseed spec in
                  (* Horizon ~ the static latency regime so releases matter. *)
                  let horizon =
                    max 1 (Ltc_core.Instance.worker_count instance / 4)
                  in
                  let release =
                    Ltc_algo.Dynamic.uniform_releases
                      (Ltc_util.Rng.create ~seed:(rseed + 1))
                      ~n_tasks:(Ltc_core.Instance.task_count instance)
                      ~horizon ~upfront_fraction:fraction
                  in
                  let o = Ltc_algo.Dynamic.run ~strategy ~release instance in
                  makespans :=
                    !makespans
                    +. float_of_int o.Ltc_algo.Dynamic.engine.Ltc_algo.Engine.latency;
                  responses := !responses +. o.Ltc_algo.Dynamic.mean_response;
                  all_completed :=
                    !all_completed
                    && o.Ltc_algo.Dynamic.engine.Ltc_algo.Engine.completed
                done;
                let n = float_of_int reps in
                ( !makespans /. n,
                  !responses /. n,
                  !all_completed )
              in
              let cells =
                List.concat_map
                  (fun strategy ->
                    let makespan, response, ok = make_cells strategy in
                    [
                      (if ok then Ltc_util.Table.Float makespan
                       else
                         Ltc_util.Table.Str
                           (Printf.sprintf "%.1f*" makespan));
                      Ltc_util.Table.Float response;
                    ])
                  strategies
              in
              Ltc_util.Table.Str (Printf.sprintf "%.2f" fraction) :: cells)
        in
        [
          {
            Runner.title =
              "ext-dynamic: makespan and mean response vs upfront fraction";
            header =
              [ "upfront"; "LAF-dyn span"; "LAF-dyn resp"; "AAM-dyn span";
                "AAM-dyn resp" ];
            rows;
            float_digits = 1;
          };
        ]);
  }

let ext_inference =
  {
    id = "ext-inference";
    panels = "truth-inference extension (Sec. VI-A, closed loop)";
    description =
      "estimate worker accuracies from h historical answers (one-coin \
       Dawid-Skene EM), run AAM on the estimates, measure latency and real \
       task quality against the known-p_w run";
    default_scale = 1.0;
    run =
      (fun ~jobs ~scale ~reps ~seed ->
        (* The history rows consume ONE shared rng stream in h order (each
           row's warm-up answers continue where the previous row stopped),
           so the rows are sequentially coupled by construction. *)
        ignore jobs;
        ignore reps;
        let trials = max 200 (int_of_float (scale *. 2000.0)) in
        let spec =
          {
            Spec.default_synthetic with
            Spec.n_tasks = 40;
            n_workers = 4000;
            world_side = 120.0;
            epsilon = 0.1;
          }
        in
        let truth_instance = synthetic_instance ~seed spec in
        let workers = truth_instance.Ltc_core.Instance.workers in
        let n_workers = Array.length workers in
        let rng = Ltc_util.Rng.create ~seed:(seed + 3) in
        (* Reference run: the platform knows the true p_w. *)
        let reference = Ltc_algo.Aam.run truth_instance in
        let ref_report =
          Ltc_core.Truth_sim.run ~trials
            (Ltc_util.Rng.create ~seed:(seed + 4))
            truth_instance reference.Ltc_algo.Engine.arrangement
        in
        let history_sizes = [ 3; 5; 10; 20; 40 ] in
        let rows =
          List.map
            (fun h ->
              (* Historical phase: every worker answers h shared warm-up
                 questions; answers sampled from the true accuracies. *)
              let n_hist = max h 8 in
              let observations =
                List.concat
                  (List.init n_workers (fun wi ->
                       let w = workers.(wi) in
                       List.init h (fun _ ->
                           let task = Ltc_util.Rng.int rng n_hist in
                           let correct =
                             Ltc_util.Rng.bernoulli rng w.Ltc_core.Worker.accuracy
                           in
                           (* Ground truth of warm-up task fixed to Yes by
                              symmetry. *)
                           {
                             Ltc_core.Truth_infer.worker = wi + 1;
                             task;
                             answer =
                               (if correct then Ltc_core.Task.Yes
                                else Ltc_core.Task.No);
                           })))
              in
              let inferred =
                Ltc_core.Truth_infer.run ~n_workers ~n_tasks:n_hist
                  observations
              in
              let estimation_error =
                let total = ref 0.0 in
                Array.iteri
                  (fun wi (w : Ltc_core.Worker.t) ->
                    total :=
                      !total
                      +. Float.abs
                           (inferred.Ltc_core.Truth_infer.accuracies.(wi)
                           -. w.accuracy))
                  workers;
                !total /. float_of_int n_workers
              in
              (* The platform now believes the estimates. *)
              let believed_workers =
                Array.mapi
                  (fun wi (w : Ltc_core.Worker.t) ->
                    Ltc_core.Worker.make ~index:w.index ~loc:w.loc
                      ~accuracy:inferred.Ltc_core.Truth_infer.accuracies.(wi)
                      ~capacity:w.capacity)
                  workers
              in
              let believed_instance =
                Ltc_core.Instance.create
                  ~accuracy:truth_instance.Ltc_core.Instance.accuracy
                  ~tasks:truth_instance.Ltc_core.Instance.tasks
                  ~workers:believed_workers ~epsilon:spec.Spec.epsilon ()
              in
              let outcome = Ltc_algo.Aam.run believed_instance in
              (* Reality check: answers sampled from TRUE accuracies. *)
              let actual_accuracy (w : Ltc_core.Worker.t) task =
                let true_w = workers.(w.index - 1) in
                Ltc_core.Accuracy.acc
                  truth_instance.Ltc_core.Instance.accuracy
                  {
                    w with
                    Ltc_core.Worker.accuracy = true_w.Ltc_core.Worker.accuracy;
                  }
                  task
              in
              let report =
                Ltc_core.Truth_sim.run ~trials ~actual_accuracy
                  (Ltc_util.Rng.create ~seed:(seed + 5))
                  believed_instance outcome.Ltc_algo.Engine.arrangement
              in
              [
                Ltc_util.Table.Int h;
                Ltc_util.Table.Float estimation_error;
                Ltc_util.Table.Int outcome.Ltc_algo.Engine.latency;
                Ltc_util.Table.Float report.Ltc_core.Truth_sim.mean_error;
                Ltc_util.Table.Float report.Ltc_core.Truth_sim.max_error;
                Ltc_util.Table.Str
                  (if report.Ltc_core.Truth_sim.max_error <= spec.Spec.epsilon
                   then "yes"
                   else "NO");
              ])
            history_sizes
        in
        [
          {
            Runner.title =
              Printf.sprintf
                "ext-inference: AAM with EM-estimated p_w (reference: \
                 latency %d, mean err %.4f, eps %.2f)"
                reference.Ltc_algo.Engine.latency
                ref_report.Ltc_core.Truth_sim.mean_error spec.Spec.epsilon;
            header =
              [ "h"; "mean |p-p^|"; "latency"; "mean err"; "max err";
                "within eps" ];
            rows;
            float_digits = 4;
          };
        ]);
  }

let hoeffding =
  {
    id = "hoeffding";
    panels = "Definition 4 / quality guarantee";
    description =
      "Monte-Carlo check that completed arrangements meet the tolerable \
       error rate";
    default_scale = 1.0;
    run =
      (fun ~jobs ~scale ~reps ~seed ->
        let trials = max 200 (int_of_float (scale *. 2000.0)) in
        ignore reps;
        (* Every epsilon row builds its instance and Monte-Carlo streams
           from the seed alone — independent cells, pool-friendly. *)
        let rows =
          pmap ~jobs Spec.epsilon_sweep
            (fun epsilon ->
              let spec =
                {
                  Spec.default_synthetic with
                  Spec.n_tasks = 40;
                  n_workers = 4000;
                  world_side = 120.0;
                  epsilon;
                }
              in
              let instance = synthetic_instance ~seed spec in
              let outcome = Ltc_algo.Aam.run instance in
              let report =
                Ltc_core.Truth_sim.run ~trials
                  (Ltc_util.Rng.create ~seed:(seed + 1))
                  instance outcome.Ltc_algo.Engine.arrangement
              in
              [
                Ltc_util.Table.Float epsilon;
                Ltc_util.Table.Float (Ltc_core.Quality.delta ~epsilon);
                Ltc_util.Table.Float report.Ltc_core.Truth_sim.mean_error;
                Ltc_util.Table.Float report.Ltc_core.Truth_sim.max_error;
                Ltc_util.Table.Str
                  (if report.Ltc_core.Truth_sim.max_error <= epsilon then "yes"
                   else "NO");
              ])
        in
        [
          {
            Runner.title =
              Printf.sprintf
                "hoeffding: empirical voting error of AAM arrangements (%d \
                 trials)"
                trials;
            header = [ "eps"; "delta"; "mean err"; "max err"; "within eps" ];
            rows;
            float_digits = 3;
          };
        ]);
  }

let all =
  [
    fig3_t;
    fig3_k;
    fig3_acc_normal;
    fig3_acc_uniform;
    fig4_eps;
    fig4_scalability;
    fig4_new_york;
    fig4_tokyo;
    ablation_batch;
    ablation_strategy;
    ablation_approx;
    ablation_index;
    ablation_solver;
    ext_noshow;
    ext_buffer;
    ext_dynamic;
    ext_inference;
    hoeffding;
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids () = List.map (fun e -> e.id) all
