(** Sweep runner: the measurement loop behind every panel of Figs. 3-4.

    For each x-axis value the runner generates [reps] independent instances
    (fresh RNG stream per repetition, as the paper repeats every setting and
    averages), runs every algorithm on each, and aggregates the three
    metrics of the evaluation:

    - {b latency} — max arrival index of a recruited worker (Fig. 3a-d, 4a-d),
    - {b runtime} — wall-clock seconds (Fig. 3e-h, 4e-h),
    - {b memory} — instance footprint + the algorithm's own peak structures,
      in MB (Fig. 3i-l, 4i-l). *)

type aggregated = {
  algorithm : string;
  mean_latency : float;
  mean_runtime_s : float;
  mean_memory_mb : float;
  all_completed : bool;  (** false if any repetition failed to complete *)
}

type point = {
  label : string;  (** x-axis value, e.g. ["3000"] *)
  algos : aggregated list;  (** one entry per algorithm, in given order *)
}

type output = {
  title : string;
  header : string list;
  rows : Ltc_util.Table.cell list list;
  float_digits : int;  (** printed precision of [Float] cells *)
}
(** One printable table (one paper panel). *)

val sweep :
  ?algorithms:Ltc_algo.Algorithm.t list ->
  ?jobs:int ->
  reps:int ->
  seed:int ->
  xs:'a list ->
  label:('a -> string) ->
  instance_of:(seed:int -> 'a -> Ltc_core.Instance.t) ->
  unit ->
  point list
(** [instance_of ~seed x] must generate the instance for x-value [x] from
    the given per-repetition seed.  [algorithms] defaults to
    {!Ltc_algo.Algorithm.paper}; each entry's [run] receives the
    per-repetition seed, so seeded baselines stay a pure function of
    [(seed, rep)].

    [jobs] (default [1]) fans the (x value, repetition) cells over an
    {!Ltc_util.Pool} of that many domains.  Per-repetition seeds are split
    off one root stream up front and results are aggregated in input
    order, so latencies, memory and completion flags are bit-identical for
    every [jobs] — only the measured wall-clock runtimes vary, exactly as
    they do between two sequential runs.  [instance_of] and [algorithms]
    must be safe to call from multiple domains (pure generation from the
    seed, as all registered workloads are). *)

val runs_executed : unit -> int
(** Algorithm executions {!sweep} performed since {!reset_runs} (process
    total, all sweeps); the bench harness's throughput denominator. *)

val reset_runs : unit -> unit

val latency_table : title:string -> x_header:string -> point list -> output
(** Latencies; cells of runs that did not always complete are suffixed
    with ["*"]. *)

val runtime_table : title:string -> x_header:string -> point list -> output
val memory_table : title:string -> x_header:string -> point list -> output

val render : output -> string
val print : output -> unit

val to_plot : output -> string option
(** ASCII chart of the table: first column as x (numeric prefix of the
    label, falling back to the row index), every other numeric column as a
    series.  [None] when the table has no plottable series. *)

val to_csv : output -> string
(** RFC-4180-style CSV: header row then data rows; fields containing
    commas, quotes or newlines are quoted, quotes doubled.  Floats keep
    full [%.17g] precision (CSV is for downstream plotting, not display). *)

val write_csv : dir:string -> output -> string
(** Writes the CSV under [dir] (created if missing) as
    [<slugified title>.csv] and returns the path. *)
