type aggregated = {
  algorithm : string;
  mean_latency : float;
  mean_runtime_s : float;
  mean_memory_mb : float;
  all_completed : bool;
}

type point = {
  label : string;
  algos : aggregated list;
}

type output = {
  title : string;
  header : string list;
  rows : Ltc_util.Table.cell list list;
  float_digits : int;
}

(* One derived seed per repetition, shared across x values: sweeping a
   parameter (e.g. epsilon) then compares the SAME workload at every x, as
   the paper does, instead of adding generation noise to the trend. *)
let rep_seed ~seed ~rep = (seed * 1_000_003) + rep

(* Per-algorithm sweep metrics; attached to every run so a snapshot taken
   after a sweep carries the full measurement series. *)
let run_metrics algo =
  let labels = [ ("algo", algo) ] in
  ( Ltc_util.Metrics.counter ~help:"sweep runs executed" ~labels
      "ltc_runner_runs_total",
    Ltc_util.Metrics.histogram ~help:"wall time per sweep run (s)" ~labels
      "ltc_runner_runtime_seconds" )

let sweep ?(algorithms = fun ~seed -> Ltc_algo.Algorithm.all ~seed) ~reps
    ~seed ~xs ~label ~instance_of () =
  if reps <= 0 then invalid_arg "Runner.sweep: reps must be positive";
  List.map
    (fun x ->
      (* metric accumulators per algorithm name, in first-seen order *)
      let order = ref [] in
      let acc : (string, float ref * float ref * float ref * bool ref) Hashtbl.t
          =
        Hashtbl.create 8
      in
      for rep = 0 to reps - 1 do
        let rseed = rep_seed ~seed ~rep in
        let instance = instance_of ~seed:rseed x in
        let instance_mb =
          Ltc_util.Mem.words_to_mb (Ltc_core.Instance.memory_words instance)
        in
        List.iter
          (fun (algo : Ltc_algo.Algorithm.t) ->
            let outcome, runtime =
              Ltc_util.Timer.time (fun () ->
                  Ltc_util.Trace.with_span ("sweep:" ^ algo.name) (fun () ->
                      algo.run instance))
            in
            let m_runs, m_runtime = run_metrics algo.name in
            Ltc_util.Metrics.Counter.incr m_runs;
            Ltc_util.Metrics.Histogram.observe m_runtime runtime;
            let lat, time, mem, comp =
              match Hashtbl.find_opt acc algo.name with
              | Some slot -> slot
              | None ->
                let slot = (ref 0.0, ref 0.0, ref 0.0, ref true) in
                Hashtbl.add acc algo.name slot;
                order := algo.name :: !order;
                slot
            in
            lat := !lat +. float_of_int outcome.Ltc_algo.Engine.latency;
            time := !time +. runtime;
            mem :=
              !mem +. instance_mb +. outcome.Ltc_algo.Engine.peak_memory_mb;
            comp := !comp && outcome.Ltc_algo.Engine.completed)
          (algorithms ~seed:rseed)
      done;
      let n = float_of_int reps in
      let algos =
        List.rev_map
          (fun name ->
            let lat, time, mem, comp = Hashtbl.find acc name in
            {
              algorithm = name;
              mean_latency = !lat /. n;
              mean_runtime_s = !time /. n;
              mean_memory_mb = !mem /. n;
              all_completed = !comp;
            })
          !order
      in
      { label = label x; algos })
    xs

let table ~title ~x_header ~digits ~cell points =
  match points with
  | [] -> { title; header = [ x_header ]; rows = []; float_digits = digits }
  | first :: _ ->
    let names = List.map (fun a -> a.algorithm) first.algos in
    let header = x_header :: names in
    let rows =
      List.map
        (fun p ->
          Ltc_util.Table.Str p.label :: List.map (fun a -> cell a) p.algos)
        points
    in
    { title; header; rows; float_digits = digits }

let latency_cell a =
  if a.all_completed then Ltc_util.Table.Float a.mean_latency
  else
    (* A starred latency marks repetitions that ran out of workers. *)
    Ltc_util.Table.Str (Printf.sprintf "%.1f*" a.mean_latency)

let latency_table ~title ~x_header points =
  table ~title ~x_header ~digits:1 ~cell:latency_cell points

let runtime_table ~title ~x_header points =
  table ~title ~x_header ~digits:4
    ~cell:(fun a -> Ltc_util.Table.Float a.mean_runtime_s)
    points

let memory_table ~title ~x_header points =
  table ~title ~x_header ~digits:2
    ~cell:(fun a -> Ltc_util.Table.Float a.mean_memory_mb)
    points

let render o =
  Printf.sprintf "== %s ==\n%s" o.title
    (Ltc_util.Table.render ~float_digits:o.float_digits ~header:o.header
       o.rows)

(* Numeric prefix of a label ("2000 (|W|=8000)" -> 2000.). *)
let numeric_prefix s =
  let is_num c = (c >= '0' && c <= '9') || c = '.' || c = '-' || c = 'e' in
  let n = String.length s in
  let rec stop i = if i < n && is_num s.[i] then stop (i + 1) else i in
  let len = stop 0 in
  if len = 0 then None else float_of_string_opt (String.sub s 0 len)

let cell_value = function
  | Ltc_util.Table.Int i -> Some (float_of_int i)
  | Ltc_util.Table.Float f -> Some f
  | Ltc_util.Table.Str s -> numeric_prefix s

let to_plot o =
  match (o.header, o.rows) with
  | _ :: series_names, _ :: _ when series_names <> [] ->
    let x_of row_idx row =
      match row with
      | first :: _ -> (
        match cell_value first with
        | Some x -> x
        | None -> float_of_int row_idx)
      | [] -> float_of_int row_idx
    in
    let series =
      List.mapi
        (fun col name ->
          let points =
            List.mapi
              (fun row_idx row ->
                match List.nth_opt row (col + 1) with
                | Some cell -> (
                  match cell_value cell with
                  | Some y -> Some (x_of row_idx row, y)
                  | None -> None)
                | None -> None)
              o.rows
            |> List.filter_map Fun.id
          in
          { Ltc_util.Ascii_plot.name; points })
        series_names
    in
    let plot = Ltc_util.Ascii_plot.render ~title:o.title series in
    if plot = "" then None else Some plot
  | _ -> None

let csv_field s =
  let needs_quoting =
    String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let csv_cell = function
  | Ltc_util.Table.Str s -> csv_field s
  | Ltc_util.Table.Int i -> string_of_int i
  | Ltc_util.Table.Float f -> Printf.sprintf "%.17g" f

let to_csv o =
  let buf = Buffer.create 1024 in
  let emit fields =
    Buffer.add_string buf (String.concat "," fields);
    Buffer.add_char buf '\n'
  in
  emit (List.map csv_field o.header);
  List.iter (fun row -> emit (List.map csv_cell row)) o.rows;
  Buffer.contents buf

let slugify title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    title

let write_csv ~dir o =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (slugify o.title ^ ".csv") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv o));
  path

let print o = print_endline (render o)
