type aggregated = {
  algorithm : string;
  mean_latency : float;
  mean_runtime_s : float;
  mean_memory_mb : float;
  all_completed : bool;
}

type point = {
  label : string;
  algos : aggregated list;
}

type output = {
  title : string;
  header : string list;
  rows : Ltc_util.Table.cell list list;
  float_digits : int;
}

(* One derived seed per repetition, shared across x values: sweeping a
   parameter (e.g. epsilon) then compares the SAME workload at every x, as
   the paper does, instead of adding generation noise to the trend.  Seeds
   come from splitting one root stream, so they are a function of [seed]
   and [rep] alone — parallel scheduling cannot perturb them. *)
let rep_seeds ~seed ~reps =
  let root = Ltc_util.Rng.create ~seed in
  Array.init reps (fun _ -> Ltc_util.Rng.split_seed root)

(* Per-algorithm sweep metrics; attached to every run so a snapshot taken
   after a sweep carries the full measurement series. *)
let run_metrics algo =
  let labels = [ ("algo", algo) ] in
  ( Ltc_util.Metrics.counter ~help:"sweep runs executed" ~labels
      "ltc_runner_runs_total",
    Ltc_util.Metrics.histogram ~help:"wall time per sweep run (s)" ~labels
      "ltc_runner_runtime_seconds" )

(* Total algorithm executions since [reset_runs]; feeds the bench harness's
   throughput report (--json). *)
let runs_total = Atomic.make 0
let runs_executed () = Atomic.get runs_total
let reset_runs () = Atomic.set runs_total 0
let count_run () = ignore (Atomic.fetch_and_add runs_total 1)

(* One measurement: algorithm name, latency, wall time, memory, completed. *)
type run_result = {
  r_name : string;
  r_latency : float;
  r_runtime : float;
  r_memory : float;
  r_completed : bool;
}

let sweep ?(algorithms = Ltc_algo.Algorithm.paper) ?(jobs = 1) ~reps ~seed ~xs
    ~label ~instance_of () =
  if reps <= 0 then invalid_arg "Runner.sweep: reps must be positive";
  let xs = Array.of_list xs in
  let seeds = rep_seeds ~seed ~reps in
  (* Fan (x value, repetition) cells over the domain pool.  Each cell is a
     pure function of its derived seed — generation, the five algorithm
     runs, the memory estimate — so only the wall-clock [r_runtime] differs
     between parallel and sequential execution. *)
  let cell k =
    let x = xs.(k / reps) in
    let rseed = seeds.(k mod reps) in
    let instance = instance_of ~seed:rseed x in
    let instance_mb =
      Ltc_util.Mem.words_to_mb (Ltc_core.Instance.memory_words instance)
    in
    List.map
      (fun (algo : Ltc_algo.Algorithm.t) ->
        let outcome, runtime =
          Ltc_util.Timer.time (fun () ->
              Ltc_util.Trace.with_span ("sweep:" ^ algo.name) (fun () ->
                  algo.run ~seed:rseed instance))
        in
        count_run ();
        let m_runs, m_runtime = run_metrics algo.name in
        Ltc_util.Metrics.Counter.incr m_runs;
        Ltc_util.Metrics.Histogram.observe m_runtime runtime;
        {
          r_name = algo.name;
          r_latency = float_of_int outcome.Ltc_algo.Engine.latency;
          r_runtime = runtime;
          r_memory = instance_mb +. outcome.Ltc_algo.Engine.peak_memory_mb;
          r_completed = outcome.Ltc_algo.Engine.completed;
        })
      algorithms
  in
  let cells = Ltc_util.Pool.run ~jobs (Array.length xs * reps) cell in
  (* Aggregate sequentially in (x, rep, algorithm) order — the float
     summation order of the sequential loop, so means are bit-identical
     regardless of [jobs]. *)
  List.init (Array.length xs) (fun xi ->
      (* metric accumulators per algorithm name, in first-seen order *)
      let order = ref [] in
      let acc : (string, float ref * float ref * float ref * bool ref) Hashtbl.t
          =
        Hashtbl.create 8
      in
      for rep = 0 to reps - 1 do
        List.iter
          (fun r ->
            let lat, time, mem, comp =
              match Hashtbl.find_opt acc r.r_name with
              | Some slot -> slot
              | None ->
                let slot = (ref 0.0, ref 0.0, ref 0.0, ref true) in
                Hashtbl.add acc r.r_name slot;
                order := r.r_name :: !order;
                slot
            in
            lat := !lat +. r.r_latency;
            time := !time +. r.r_runtime;
            mem := !mem +. r.r_memory;
            comp := !comp && r.r_completed)
          cells.((xi * reps) + rep)
      done;
      let n = float_of_int reps in
      let algos =
        List.rev_map
          (fun name ->
            let lat, time, mem, comp = Hashtbl.find acc name in
            {
              algorithm = name;
              mean_latency = !lat /. n;
              mean_runtime_s = !time /. n;
              mean_memory_mb = !mem /. n;
              all_completed = !comp;
            })
          !order
      in
      { label = label xs.(xi); algos })

let table ~title ~x_header ~digits ~cell points =
  match points with
  | [] -> { title; header = [ x_header ]; rows = []; float_digits = digits }
  | first :: _ ->
    let names = List.map (fun a -> a.algorithm) first.algos in
    let header = x_header :: names in
    let rows =
      List.map
        (fun p ->
          Ltc_util.Table.Str p.label :: List.map (fun a -> cell a) p.algos)
        points
    in
    { title; header; rows; float_digits = digits }

let latency_cell a =
  if a.all_completed then Ltc_util.Table.Float a.mean_latency
  else
    (* A starred latency marks repetitions that ran out of workers. *)
    Ltc_util.Table.Str (Printf.sprintf "%.1f*" a.mean_latency)

let latency_table ~title ~x_header points =
  table ~title ~x_header ~digits:1 ~cell:latency_cell points

let runtime_table ~title ~x_header points =
  table ~title ~x_header ~digits:4
    ~cell:(fun a -> Ltc_util.Table.Float a.mean_runtime_s)
    points

let memory_table ~title ~x_header points =
  table ~title ~x_header ~digits:2
    ~cell:(fun a -> Ltc_util.Table.Float a.mean_memory_mb)
    points

let render o =
  Printf.sprintf "== %s ==\n%s" o.title
    (Ltc_util.Table.render ~float_digits:o.float_digits ~header:o.header
       o.rows)

(* Numeric prefix of a label ("2000 (|W|=8000)" -> 2000.). *)
let numeric_prefix s =
  let is_num c = (c >= '0' && c <= '9') || c = '.' || c = '-' || c = 'e' in
  let n = String.length s in
  let rec stop i = if i < n && is_num s.[i] then stop (i + 1) else i in
  let len = stop 0 in
  if len = 0 then None else float_of_string_opt (String.sub s 0 len)

let cell_value = function
  | Ltc_util.Table.Int i -> Some (float_of_int i)
  | Ltc_util.Table.Float f -> Some f
  | Ltc_util.Table.Str s -> numeric_prefix s

let to_plot o =
  match (o.header, o.rows) with
  | _ :: series_names, _ :: _ when series_names <> [] ->
    let x_of row_idx row =
      match row with
      | first :: _ -> (
        match cell_value first with
        | Some x -> x
        | None -> float_of_int row_idx)
      | [] -> float_of_int row_idx
    in
    let series =
      List.mapi
        (fun col name ->
          let points =
            List.mapi
              (fun row_idx row ->
                match List.nth_opt row (col + 1) with
                | Some cell -> (
                  match cell_value cell with
                  | Some y -> Some (x_of row_idx row, y)
                  | None -> None)
                | None -> None)
              o.rows
            |> List.filter_map Fun.id
          in
          { Ltc_util.Ascii_plot.name; points })
        series_names
    in
    let plot = Ltc_util.Ascii_plot.render ~title:o.title series in
    if plot = "" then None else Some plot
  | _ -> None

let csv_field s =
  let needs_quoting =
    String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let csv_cell = function
  | Ltc_util.Table.Str s -> csv_field s
  | Ltc_util.Table.Int i -> string_of_int i
  | Ltc_util.Table.Float f -> Printf.sprintf "%.17g" f

let to_csv o =
  let buf = Buffer.create 1024 in
  let emit fields =
    Buffer.add_string buf (String.concat "," fields);
    Buffer.add_char buf '\n'
  in
  emit (List.map csv_field o.header);
  List.iter (fun row -> emit (List.map csv_cell row)) o.rows;
  Buffer.contents buf

let slugify title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    title

let write_csv ~dir o =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (slugify o.title ^ ".csv") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv o));
  path

let print o = print_endline (render o)
