open Ltc_core

let zipf_weights n =
  let raw = Array.init n (fun i -> 1.0 /. float_of_int (i + 1)) in
  let total = Array.fold_left ( +. ) 0.0 raw in
  Array.map (fun w -> w /. total) raw

let hotspots rng (spec : Spec.city) =
  let weights = zipf_weights spec.c_clusters in
  Array.init spec.c_clusters (fun i ->
      let coord () = Ltc_util.Rng.float rng spec.c_side in
      (Ltc_geo.Point.make ~x:(coord ()) ~y:(coord ()), weights.(i)))

(* Inverse-CDF draw over mixture components. *)
let pick_component rng cumulative =
  let u = Ltc_util.Rng.float rng 1.0 in
  let n = Array.length cumulative in
  let rec bsearch lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if cumulative.(mid) < u then bsearch (mid + 1) hi else bsearch lo mid
    end
  in
  min (bsearch 0 (n - 1)) (n - 1)

let clamp lo hi v = Float.max lo (Float.min hi v)

let hotspot_point rng spec hotspots cumulative ~sigma =
  let centre, _ = hotspots.(pick_component rng cumulative) in
  let gauss = Ltc_util.Distribution.Normal { mu = 0.0; sigma } in
  let jitter () = Ltc_util.Distribution.sample rng gauss in
  Ltc_geo.Point.make
    ~x:(clamp 0.0 spec.Spec.c_side (centre.Ltc_geo.Point.x +. jitter ()))
    ~y:(clamp 0.0 spec.Spec.c_side (centre.Ltc_geo.Point.y +. jitter ()))

(* Tasks are questions about POIs, and POIs sit at the heart of the
   neighbourhoods workers frequent (the paper generates task locations from
   POIs "within the convex region of the workers"); so tasks get a tighter
   jitter than check-ins and no uniform background component. *)
let task_point rng spec hotspots cumulative =
  hotspot_point rng spec hotspots cumulative
    ~sigma:(spec.Spec.c_cluster_sigma /. 3.0)

let worker_point rng spec hotspots cumulative =
  if Ltc_util.Rng.float rng 1.0 < spec.Spec.c_background then begin
    let coord () = Ltc_util.Rng.float rng spec.Spec.c_side in
    Ltc_geo.Point.make ~x:(coord ()) ~y:(coord ())
  end
  else
    hotspot_point rng spec hotspots cumulative
      ~sigma:spec.Spec.c_cluster_sigma

let generate rng (spec : Spec.city) =
  let spots = hotspots rng spec in
  Logs.debug ~src:Ltc_util.Log.workload (fun m ->
      m "city %s: %d hot-spots, |T|=%d, |W|=%d over %.0fx%.0f" spec.city_name
        (Array.length spots) spec.c_n_tasks spec.c_n_workers spec.c_side
        spec.c_side);
  let cumulative = Array.make (Array.length spots) 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i (_, w) ->
      acc := !acc +. w;
      cumulative.(i) <- !acc)
    spots;
  let tasks =
    Array.init spec.c_n_tasks (fun id ->
        Task.make ~id ~loc:(task_point rng spec spots cumulative) ())
  in
  let accuracy_dist = Ltc_util.Distribution.accuracy_normal ~mu:spec.c_mu in
  let workers =
    Array.init spec.c_n_workers (fun i ->
        Worker.make ~index:(i + 1)
          ~loc:(worker_point rng spec spots cumulative)
          ~accuracy:(Ltc_util.Distribution.sample rng accuracy_dist)
          ~capacity:spec.c_capacity)
  in
  Instance.create
    ~accuracy:(Accuracy.Sigmoid { dmax = spec.c_dmax })
    ~tasks ~workers ~epsilon:spec.c_epsilon ()
