(** Synthetic workloads (Table IV).

    "The locations of tasks and workers are randomly generated from a
    1000x1000 2D grid" — both populations are uniform over the grid's cell
    centres; historical accuracies follow the spec's Normal or Uniform
    model, truncated to the trusted band [\[0.66, 1\]]. *)

val generate : Ltc_util.Rng.t -> Spec.synthetic -> Ltc_core.Instance.t
(** Deterministic in the RNG state.  The instance uses the sigmoid accuracy
    model with the spec's [dmax] (also the candidate radius) and Hoeffding
    scoring. *)
