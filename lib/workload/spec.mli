(** Workload specifications: Tables IV and V of the paper, as data.

    The defaults are the bold entries of Table IV: [|T| = 3000],
    [|W| = 40000], [K = 6], Normal(0.86, 0.05) accuracy, [epsilon = 0.14],
    over a 1000x1000 grid of 10 m cells with [dmax = 30] (300 m).  Sweep
    lists carry the exact x-axes of Figs. 3-4. *)

type accuracy_model =
  | Normal_acc of float   (** mu; sigma fixed at 0.05 as in Table IV *)
  | Uniform_acc of float  (** mean *)

type synthetic = {
  n_tasks : int;
  n_workers : int;
  capacity : int;
  epsilon : float;
  accuracy : accuracy_model;
  world_side : float;  (** grid side length, in 10 m units *)
  dmax : float;
}

val default_synthetic : synthetic

(** Sweeps of Table IV (x-axes of Fig. 3 and Fig. 4a-b). *)

val n_tasks_sweep : int list
(** 1000 .. 5000 *)

val capacity_sweep : int list
(** 4 .. 8 *)

val normal_mu_sweep : float list
(** 0.82 .. 0.90 *)

val uniform_mean_sweep : float list
(** 0.82 .. 0.90 *)

val epsilon_sweep : float list
(** 0.06 .. 0.22 *)

val scalability_sweep : (int * int) list
(** [(|T|, |W|)] pairs: 10k..100k tasks with 400k workers. *)

type city = {
  city_name : string;
  c_n_tasks : int;
  c_n_workers : int;
  c_capacity : int;
  c_epsilon : float;
  c_mu : float;           (** Normal(mu, 0.05) accuracy, as in Table V *)
  c_side : float;         (** city extent in 10 m grid units *)
  c_clusters : int;       (** POI hot-spot count of the mixture model *)
  c_cluster_sigma : float;(** spatial spread of a hot spot *)
  c_background : float;   (** fraction of check-ins placed uniformly *)
  c_dmax : float;
}

val new_york : city
(** Table V row 1: [|T| = 3717], [|W| = 227428]. *)

val tokyo : city
(** Table V row 2: [|T| = 9317], [|W| = 573703]. *)

val scale_synthetic : float -> synthetic -> synthetic
(** Shrink (or grow) a synthetic spec by a factor while preserving task and
    worker {e densities}: cardinalities scale linearly, the world side by
    [sqrt factor].  Identity at factor 1. *)

val scale_city : float -> city -> city
(** Same density-preserving scaling for city specs (cluster count scales
    linearly too). *)

val pp_synthetic : Format.formatter -> synthetic -> unit
val pp_city : Format.formatter -> city -> unit
