open Ltc_core

let accuracy_distribution = function
  | Spec.Normal_acc mu -> Ltc_util.Distribution.accuracy_normal ~mu
  | Spec.Uniform_acc mean -> Ltc_util.Distribution.accuracy_uniform ~mean

(* Uniform draw from the grid's cell centres (integer lattice + 0.5). *)
let grid_point rng ~side =
  let cells = max 1 (int_of_float side) in
  let coord () = float_of_int (Ltc_util.Rng.int rng cells) +. 0.5 in
  Ltc_geo.Point.make ~x:(coord ()) ~y:(coord ())

let generate rng (spec : Spec.synthetic) =
  let dist = accuracy_distribution spec.accuracy in
  let tasks =
    Array.init spec.n_tasks (fun id ->
        Task.make ~id ~loc:(grid_point rng ~side:spec.world_side) ())
  in
  let workers =
    Array.init spec.n_workers (fun i ->
        Worker.make ~index:(i + 1)
          ~loc:(grid_point rng ~side:spec.world_side)
          ~accuracy:(Ltc_util.Distribution.sample rng dist)
          ~capacity:spec.capacity)
  in
  Instance.create
    ~accuracy:(Accuracy.Sigmoid { dmax = spec.dmax })
    ~tasks ~workers ~epsilon:spec.epsilon ()
