(** Clustered-city check-in workloads — the Table V substitute.

    The paper evaluates on Foursquare check-in dumps of New York and Tokyo
    [17].  Those dumps are not shipped here, so this module simulates the
    properties the LTC algorithms can actually observe in them:

    - {b POI clustering}: POI hot spots are drawn as a Gaussian mixture over
      the city extent, with Zipf-distributed popularity (a few
      neighbourhoods absorb most activity);
    - {b tasks at POIs}: task locations are sampled from the same mixture
      with half the check-in jitter and no background component — POIs sit
      at the heart of the neighbourhoods workers frequent ("the coordinates
      of POIs within the convex region of the workers"), which keeps every
      task within reach of enough check-ins to be completable;
    - {b check-ins near POIs}: each worker checks in around a
      popularity-weighted hot spot, plus a uniform background fraction;
    - {b chronological arrival}: the generated order {e is} the arrival
      order, as the paper orders workers by check-in timestamp;
    - {b synthetic accuracies}: Normal(0.86, 0.05) — the paper itself
      generates accuracies, since the dumps contain none.

    The Table V cardinalities ([|T|], [|W|]) are kept exactly. *)

val generate : Ltc_util.Rng.t -> Spec.city -> Ltc_core.Instance.t

val hotspots : Ltc_util.Rng.t -> Spec.city -> (Ltc_geo.Point.t * float) array
(** The mixture underlying a generation run: [(centre, weight)] pairs with
    weights summing to 1.  Exposed for tests and the example programs;
    calling it with an RNG in the same state as {!generate} yields the same
    hot spots. *)
