type kind =
  | Constant
  | Ramp of { from_rate : float; over_s : float }
  | Diurnal of { amplitude : float; period_s : float }
  | Burst of { factor : float; at_s : float; dur_s : float }
  | Pausing of { on_s : float; off_s : float }

type t = { kind : kind; rate : float; poisson : bool }

let positive what v =
  if not (Float.is_finite v) || v <= 0.0 then
    invalid_arg (Printf.sprintf "Shape.make: %s must be finite and > 0" what)

let make ?(poisson = false) ~rate kind =
  positive "rate" rate;
  (match kind with
  | Constant -> ()
  | Ramp { from_rate; over_s } ->
    positive "from_rate" from_rate;
    positive "over_s" over_s
  | Diurnal { amplitude; period_s } ->
    if not (Float.is_finite amplitude) || amplitude < 0.0 || amplitude >= 1.0
    then invalid_arg "Shape.make: amplitude must be in [0, 1)";
    positive "period_s" period_s
  | Burst { factor; at_s; dur_s } ->
    positive "factor" factor;
    if not (Float.is_finite at_s) || at_s < 0.0 then
      invalid_arg "Shape.make: at_s must be finite and >= 0";
    positive "dur_s" dur_s
  | Pausing { on_s; off_s } ->
    positive "on_s" on_s;
    positive "off_s" off_s);
  { kind; rate; poisson }

let rate_at t now =
  match t.kind with
  | Constant -> t.rate
  | Ramp { from_rate; over_s } ->
    if now >= over_s then t.rate
    else from_rate +. ((t.rate -. from_rate) *. (now /. over_s))
  | Diurnal { amplitude; period_s } ->
    t.rate *. (1.0 +. (amplitude *. sin (2.0 *. Float.pi *. now /. period_s)))
  | Burst { factor; at_s; dur_s } ->
    if now >= at_s && now < at_s +. dur_s then t.rate *. factor else t.rate
  | Pausing { on_s; off_s } ->
    let pos = Float.rem now (on_s +. off_s) in
    if pos < on_s then t.rate else 0.0

(* End of the current piecewise-constant segment, when the shape has one.
   Smooth shapes (constant tail, ramp, diurnal) return [None] and are
   integrated with the rate-at-cursor approximation instead — their rate
   is bounded away from zero, so the approximation stays sane. *)
let segment_end t now =
  match t.kind with
  | Constant | Diurnal _ -> None
  | Ramp { over_s; _ } -> if now < over_s then Some over_s else None
  | Burst { at_s; dur_s; _ } ->
    if now < at_s then Some at_s
    else if now < at_s +. dur_s then Some (at_s +. dur_s)
    else None
  | Pausing { on_s; off_s } ->
    let cycle = on_s +. off_s in
    let pos = Float.rem now cycle in
    if pos < on_s then Some (now +. (on_s -. pos))
    else Some (now +. (cycle -. pos))

(* Advance the cursor until [u] units of [integral lambda dt] have been
   consumed: one arrival is one unit (or an exponential draw under
   Poisson jitter).  Piecewise-constant segments are integrated exactly —
   in particular an arrival can never be scheduled inside a pausing
   lull — and smooth segments use the rate at the cursor. *)
let advance t cursor u =
  let rec go cursor u guard =
    if guard = 0 then cursor +. (u /. Float.max 1e-9 (rate_at t cursor))
    else
      let r = rate_at t cursor in
      if r <= 0.0 then
        match segment_end t cursor with
        | Some b -> go b u (guard - 1)
        | None -> invalid_arg "Shape.advance: rate stuck at zero"
      else
        match segment_end t cursor with
        | None -> cursor +. (u /. r)
        | Some b ->
          let capacity = r *. (b -. cursor) in
          if capacity >= u then cursor +. (u /. r)
          else go b (u -. capacity) (guard - 1)
  in
  go cursor u 100_000

(* Exponential(1) via inversion; [Rng.float rng 1.0] is in [0, 1) so the
   argument of [log] stays in (0, 1]. *)
let exp_draw rng = -.log (1.0 -. Ltc_util.Rng.float rng 1.0)

let times t ~seed ~n =
  if n < 0 then invalid_arg "Shape.times: n must be >= 0";
  let rng = Ltc_util.Rng.create ~seed in
  let out = Array.make (max n 1) 0.0 in
  let cursor = ref 0.0 in
  for i = 0 to n - 1 do
    let u = if t.poisson then exp_draw rng else 1.0 in
    cursor := advance t !cursor u;
    out.(i) <- !cursor
  done;
  if n = 0 then [||] else Array.sub out 0 n

(* ------------------------------------------------------------- rendering *)

let g = Printf.sprintf "%g"

let to_string t =
  let body =
    match t.kind with
    | Constant -> Printf.sprintf "constant(rate=%s)" (g t.rate)
    | Ramp { from_rate; over_s } ->
      Printf.sprintf "rampup(rate=%s,from=%s,over=%s)" (g t.rate) (g from_rate)
        (g over_s)
    | Diurnal { amplitude; period_s } ->
      Printf.sprintf "diurnal(rate=%s,amp=%s,period=%s)" (g t.rate)
        (g amplitude) (g period_s)
    | Burst { factor; at_s; dur_s } ->
      Printf.sprintf "burst(rate=%s,factor=%s,at=%s,dur=%s)" (g t.rate)
        (g factor) (g at_s) (g dur_s)
    | Pausing { on_s; off_s } ->
      Printf.sprintf "pausing(rate=%s,on=%s,off=%s)" (g t.rate) (g on_s)
        (g off_s)
  in
  if t.poisson then body ^ "+poisson" else body

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* --------------------------------------------------------------- parsing *)

let of_string ~rate spec =
  let ( let* ) = Result.bind in
  let name, params =
    match String.index_opt spec ':' with
    | None -> (spec, "")
    | Some i ->
      ( String.sub spec 0 i,
        String.sub spec (i + 1) (String.length spec - i - 1) )
  in
  let* pairs =
    if params = "" then Ok []
    else
      String.split_on_char ',' params
      |> List.fold_left
           (fun acc kv ->
             let* acc = acc in
             match String.index_opt kv '=' with
             | None -> Error (Printf.sprintf "expected key=value, got %S" kv)
             | Some i ->
               let k = String.sub kv 0 i in
               let v = String.sub kv (i + 1) (String.length kv - i - 1) in
               Ok ((k, v) :: acc))
           (Ok [])
      |> Result.map List.rev
  in
  let known = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace known k v) pairs;
  let float_param key default =
    match Hashtbl.find_opt known key with
    | None -> Ok default
    | Some v -> (
      Hashtbl.remove known key;
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "bad value %S for %s" v key))
  in
  let bool_param key default =
    match Hashtbl.find_opt known key with
    | None -> Ok default
    | Some v -> (
      Hashtbl.remove known key;
      match bool_of_string_opt v with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "bad value %S for %s" v key))
  in
  let* poisson = bool_param "poisson" false in
  let* kind =
    match name with
    | "constant" | "fixed" -> Ok Constant
    | "rampup" | "ramp" ->
      let* from_rate = float_param "from" (rate /. 4.0) in
      let* over_s = float_param "over" 10.0 in
      Ok (Ramp { from_rate; over_s })
    | "diurnal" | "sine" ->
      let* amplitude = float_param "amp" 0.5 in
      let* period_s = float_param "period" 60.0 in
      Ok (Diurnal { amplitude; period_s })
    | "burst" | "flash" ->
      let* factor = float_param "factor" 8.0 in
      let* at_s = float_param "at" 10.0 in
      let* dur_s = float_param "dur" 5.0 in
      Ok (Burst { factor; at_s; dur_s })
    | "pausing" | "pause" ->
      let* on_s = float_param "on" 5.0 in
      let* off_s = float_param "off" 5.0 in
      Ok (Pausing { on_s; off_s })
    | other ->
      Error
        (Printf.sprintf
           "unknown shape %S (try: constant, rampup, diurnal, burst, pausing)"
           other)
  in
  match Hashtbl.fold (fun k _ acc -> k :: acc) known [] with
  | k :: _ -> Error (Printf.sprintf "unknown parameter %S for shape %s" k name)
  | [] -> (
    match make ~poisson ~rate kind with
    | t -> Ok t
    | exception Invalid_argument m -> Error m)
