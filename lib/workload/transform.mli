(** Instance transformations.

    Definition 2 assumes a uniform capacity [K] and argues that "any worker
    who is willing to answer more questions during each check-in can be
    viewed as multiple workers".  {!uniform_capacity} performs exactly that
    reduction, so heterogeneous-capacity data can be fed to the algorithms
    (whose guarantees are stated for uniform [K]). *)

val uniform_capacity : k:int -> Ltc_core.Instance.t -> Ltc_core.Instance.t
(** [uniform_capacity ~k instance] replaces every worker of capacity
    [c > k] by [ceil(c / k)] consecutive clones at the same location with
    the same historical accuracy (capacities [k, ..., k, c mod k]); workers
    with [c <= k] are kept as-is.  Arrival order is preserved, indexes are
    re-assigned contiguously.  Latencies measured on the transformed
    instance count clone arrivals — the paper's notion when it applies this
    view.  @raise Invalid_argument when [k < 1]. *)

val restrict_workers : Ltc_core.Instance.t -> prefix:int -> Ltc_core.Instance.t
(** Keep only the first [prefix] arrivals (clamped to the worker count);
    useful to replay the offline scenario on the stream a given latency
    actually consumed. *)
