type accuracy_model =
  | Normal_acc of float
  | Uniform_acc of float

type synthetic = {
  n_tasks : int;
  n_workers : int;
  capacity : int;
  epsilon : float;
  accuracy : accuracy_model;
  world_side : float;
  dmax : float;
}

let default_synthetic =
  {
    n_tasks = 3000;
    n_workers = 40000;
    capacity = 6;
    epsilon = 0.14;
    accuracy = Normal_acc 0.86;
    world_side = 1000.0;
    dmax = 30.0;
  }

let n_tasks_sweep = [ 1000; 2000; 3000; 4000; 5000 ]
let capacity_sweep = [ 4; 5; 6; 7; 8 ]
let normal_mu_sweep = [ 0.82; 0.84; 0.86; 0.88; 0.90 ]
let uniform_mean_sweep = [ 0.82; 0.84; 0.86; 0.88; 0.90 ]
let epsilon_sweep = [ 0.06; 0.10; 0.14; 0.18; 0.22 ]

let scalability_sweep =
  List.map
    (fun n_tasks -> (n_tasks, 400_000))
    [ 10_000; 20_000; 30_000; 40_000; 50_000; 100_000 ]

type city = {
  city_name : string;
  c_n_tasks : int;
  c_n_workers : int;
  c_capacity : int;
  c_epsilon : float;
  c_mu : float;
  c_side : float;
  c_clusters : int;
  c_cluster_sigma : float;
  c_background : float;
  c_dmax : float;
}

(* Cluster counts and extents approximate the check-in geography of the
   Foursquare dumps of [17]: New York's activity concentrates in fewer,
   denser neighbourhoods than Tokyo's, whose metropolitan area is larger. *)
let new_york =
  {
    city_name = "New York";
    c_n_tasks = 3717;
    c_n_workers = 227_428;
    c_capacity = 6;
    c_epsilon = 0.14;
    c_mu = 0.86;
    c_side = 2500.0;
    c_clusters = 60;
    c_cluster_sigma = 60.0;
    c_background = 0.10;
    c_dmax = 30.0;
  }

let tokyo =
  {
    city_name = "Tokyo";
    c_n_tasks = 9317;
    c_n_workers = 573_703;
    c_capacity = 6;
    c_epsilon = 0.14;
    c_mu = 0.86;
    c_side = 4000.0;
    c_clusters = 120;
    c_cluster_sigma = 60.0;
    c_background = 0.10;
    c_dmax = 30.0;
  }

let scale_count factor n = max 1 (int_of_float (Float.round (factor *. float_of_int n)))

let scale_synthetic factor spec =
  if factor <= 0.0 then invalid_arg "Spec.scale_synthetic: factor <= 0";
  {
    spec with
    n_tasks = scale_count factor spec.n_tasks;
    n_workers = scale_count factor spec.n_workers;
    world_side = spec.world_side *. sqrt factor;
  }

let scale_city factor spec =
  if factor <= 0.0 then invalid_arg "Spec.scale_city: factor <= 0";
  {
    spec with
    c_n_tasks = scale_count factor spec.c_n_tasks;
    c_n_workers = scale_count factor spec.c_n_workers;
    c_side = spec.c_side *. sqrt factor;
    c_clusters = scale_count factor spec.c_clusters;
  }

let pp_accuracy fmt = function
  | Normal_acc mu -> Format.fprintf fmt "Normal(%.2f, 0.05)" mu
  | Uniform_acc mean -> Format.fprintf fmt "Uniform(mean=%.2f)" mean

let pp_synthetic fmt s =
  Format.fprintf fmt
    "synthetic{|T|=%d, |W|=%d, K=%d, eps=%.2f, acc=%a, side=%g, dmax=%g}"
    s.n_tasks s.n_workers s.capacity s.epsilon pp_accuracy s.accuracy
    s.world_side s.dmax

let pp_city fmt c =
  Format.fprintf fmt
    "city{%s, |T|=%d, |W|=%d, K=%d, eps=%.2f, mu=%.2f, side=%g, clusters=%d}"
    c.city_name c.c_n_tasks c.c_n_workers c.c_capacity c.c_epsilon c.c_mu
    c.c_side c.c_clusters
