open Ltc_core

let rebuild (instance : Instance.t) workers =
  Instance.create ~accuracy:instance.accuracy ~scoring:instance.scoring
    ~candidate_radius:instance.candidate_radius ~tasks:instance.tasks ~workers
    ~epsilon:instance.epsilon ()

let uniform_capacity ~k (instance : Instance.t) =
  if k < 1 then invalid_arg "Transform.uniform_capacity: k must be >= 1";
  let clones = ref [] in
  let next_index = ref 0 in
  let push ~loc ~accuracy ~capacity =
    incr next_index;
    clones := Worker.make ~index:!next_index ~loc ~accuracy ~capacity :: !clones
  in
  Array.iter
    (fun (w : Worker.t) ->
      let rec split remaining =
        if remaining > 0 then begin
          push ~loc:w.loc ~accuracy:w.accuracy ~capacity:(min k remaining);
          split (remaining - k)
        end
      in
      split w.capacity)
    instance.workers;
  rebuild instance (Array.of_list (List.rev !clones))

let restrict_workers (instance : Instance.t) ~prefix =
  let n = max 0 (min prefix (Array.length instance.workers)) in
  rebuild instance (Array.sub instance.workers 0 n)
