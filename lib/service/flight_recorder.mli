(** Per-arrival flight recorder: a fixed-capacity ring of structured
    arrival records, cheap enough to leave on for every load-generator
    run.  When the ring is full the oldest record is overwritten
    ({!dropped} counts the loss), so after an SLO breach the recorder
    holds the [capacity] most recent arrivals — the black box to dump
    ({!to_ndjson}, {!dump}) for post-mortem analysis, or to export as a
    Chrome trace ({!to_chrome_json}) for Perfetto. *)

type record = {
  seq : int;  (** arrival sequence number (worker index) *)
  offered_s : float;  (** intended (scheduled) arrival time *)
  actual_s : float;  (** when the arrival was actually fed *)
  done_s : float;  (** when its decision came back *)
  latency_s : float;
      (** decision latency from the {e intended} arrival time
          ([done_s - offered_s]): the coordinated-omission-corrected
          number *)
  assigned : int;  (** tasks assigned by the decision *)
  degraded : bool;  (** decided by the deadline fallback *)
  journal_bytes : int;  (** journal size after the decision ([0] in-memory) *)
}

type t

val create : capacity:int -> t
(** @raise Invalid_argument when [capacity < 1]. *)

val record : t -> record -> unit
(** Append, overwriting the oldest record when full. *)

val capacity : t -> int

val length : t -> int
(** Records currently held ([<= capacity]). *)

val total : t -> int
(** Records ever appended. *)

val dropped : t -> int
(** Records lost to overwrite ([total - length]). *)

val iter : (record -> unit) -> t -> unit
(** Oldest surviving record first. *)

val to_ndjson : t -> string
(** One JSON object per line, oldest first, schema
    [{"seq":..,"offered_s":..,"actual_s":..,"done_s":..,"latency_s":..,
    "assigned":..,"degraded":..,"journal_bytes":..}]. *)

val dump : t -> path:string -> unit
(** Write {!to_ndjson} to [path] (truncates). *)

val to_chrome_json : t -> string
(** Chrome trace-event JSON array: per arrival one ["X"] slice [decide]
    from [actual_s] to [done_s] (annotated with seq/assigned/degraded),
    preceded by a [queued] slice from [offered_s] to [actual_s] when the
    arrival was fed late.  Timestamps in microseconds; loadable in
    [chrome://tracing] or Perfetto. *)
