(** Crash-recovery verification: replay a workload under a scripted
    {!Ltc_util.Fault} plan, killing and restoring the session at every
    injected crash, and diff the surviving decision stream against a
    fault-free baseline.

    The harness runs the same arrival stream twice over the virtual
    {!Ltc_util.Fault.Clock}:

    + {b baseline} — journal-less session, armed with only the plan's
      [Delay] faults (the one class that is {e allowed} to influence
      decisions, via a deadline);
    + {b chaos} — journaled session armed with the full plan.  Every
      {!Ltc_util.Fault.Injected_crash} (and any transient error that
      outlives its retry budget) kills the session; the harness restores
      from the journal and resumes the stream from the last durable
      arrival.

    Decisions are captured through the session's [on_decision] hook, which
    fires before the journal append — so even a decision whose append
    crashed is accounted for, re-made deterministically after the restore,
    and verified to come out the same.

    Without a deadline the two streams must be byte-identical: crashes,
    torn writes, I/O errors and delays all have {e zero} effect on the
    decision stream.  With a deadline and [Delay] faults, degradation is
    part of the decision stream; identity then additionally requires that
    no crash re-decides an arrival (re-deciding shifts the
    ["session.decide"] hit counter the delays are keyed on).  [ltc chaos]
    therefore runs without a deadline unless explicitly asked. *)

type report = {
  identical : bool;
      (** surviving stream and final state match the baseline exactly *)
  divergence : string option;  (** first difference, when not identical *)
  arrivals : int;  (** workers fed (same for both runs) *)
  crashes : int;  (** session kills the harness recovered from *)
  restores : int;  (** successful {!Session.restore} calls *)
  degraded : int;  (** surviving decisions made by the deadline fallback *)
  stats : Ltc_util.Fault.stats;  (** faults that actually fired *)
  baseline : Session.decision array;  (** by arrival, fault-free *)
  survived : Session.decision array;  (** by arrival, under the plan *)
}

val run :
  ?accept_rate:float ->
  ?deadline:Session.deadline ->
  ?checkpoint_every:int ->
  ?format:Session.codec ->
  ?group_commit:int ->
  ?max_restores:int ->
  plan:Ltc_util.Fault.plan ->
  algorithm:Ltc_algo.Algorithm.t ->
  seed:int ->
  journal:string ->
  Ltc_core.Instance.t ->
  report
(** [run ~plan ~algorithm ~seed ~journal instance] feeds
    [instance.workers] (which must be non-empty) through both runs and
    reports.  [journal] is the chaos run's journal path (truncated at
    start); [format] and [group_commit] configure its codec and commit
    batching exactly as {!Session.create} does — crashes then lose the
    buffered group, which restore treats as a torn tail.  [max_restores] (default [10 + 4 ×] plan size) bounds the
    kill/restore loop; exceeding it raises [Failure] — a correctly
    one-shot plan cannot reach it.  Always leaves the fault plan
    disarmed and the virtual clock cleared, even on exceptions.

    @raise Invalid_argument on an empty worker array or an offline
    [algorithm]/fallback.
    @raise Session.Corrupt_journal if a restore finds real corruption —
    under injected faults alone this indicates a journal-layer bug. *)
