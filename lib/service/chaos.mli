(** Crash-recovery verification: replay a workload under a scripted
    {!Ltc_util.Fault} plan, killing and restoring the session at every
    injected crash, and diff the surviving decision stream against a
    fault-free baseline.

    The harness runs the same arrival stream twice over the virtual
    {!Ltc_util.Fault.Clock}:

    + {b baseline} — journal-less session, armed with only the plan's
      [Delay] faults (the one class that is {e allowed} to influence
      decisions, via a deadline);
    + {b chaos} — journaled session armed with the full plan.  Every
      {!Ltc_util.Fault.Injected_crash} (and any transient error that
      outlives its retry budget) kills the session; the harness restores
      from the journal and resumes the stream from the last durable
      arrival.

    Decisions are captured through the session's [on_decision] hook, which
    fires before the journal append — so even a decision whose append
    crashed is accounted for, re-made deterministically after the restore,
    and verified to come out the same.

    Without a deadline the two streams must be byte-identical: crashes,
    torn writes, I/O errors and delays all have {e zero} effect on the
    decision stream.  With a deadline and [Delay] faults, degradation is
    part of the decision stream; identity then additionally requires that
    no crash re-decides an arrival (re-deciding shifts the
    ["session.decide"] hit counter the delays are keyed on).  [ltc chaos]
    therefore runs without a deadline unless explicitly asked. *)

type report = {
  identical : bool;
      (** surviving stream and final state match the baseline exactly *)
  divergence : string option;  (** first difference, when not identical *)
  arrivals : int;  (** workers fed (same for both runs) *)
  crashes : int;  (** session kills the harness recovered from *)
  restores : int;  (** successful {!Session.restore} calls *)
  degraded : int;  (** surviving decisions made by the deadline fallback *)
  stats : Ltc_util.Fault.stats;  (** faults that actually fired *)
  baseline : Session.decision array;  (** by arrival, fault-free *)
  survived : Session.decision array;  (** by arrival, under the plan *)
}

val run :
  ?accept_rate:float ->
  ?deadline:Session.deadline ->
  ?checkpoint_every:int ->
  ?format:Session.codec ->
  ?group_commit:int ->
  ?max_restores:int ->
  plan:Ltc_util.Fault.plan ->
  algorithm:Ltc_algo.Algorithm.t ->
  seed:int ->
  journal:string ->
  Ltc_core.Instance.t ->
  report
(** [run ~plan ~algorithm ~seed ~journal instance] feeds
    [instance.workers] (which must be non-empty) through both runs and
    reports.  [journal] is the chaos run's journal path (truncated at
    start); [format] and [group_commit] configure its codec and commit
    batching exactly as {!Session.create} does — crashes then lose the
    buffered group, which restore treats as a torn tail.  [max_restores] (default [10 + 4 ×] plan size) bounds the
    kill/restore loop; exceeding it raises [Failure] — a correctly
    one-shot plan cannot reach it.  Always leaves the fault plan
    disarmed and the virtual clock cleared, even on exceptions.

    @raise Invalid_argument on an empty worker array or an offline
    [algorithm]/fallback.
    @raise Session.Corrupt_journal if a restore finds real corruption —
    under injected faults alone this indicates a journal-layer bug. *)

(** {1 Sharded chaos}

    The sharded harness points the same discipline at the concurrent
    runtime: a {e supervised} [`Domains] {!Shard_server} under a
    per-shard scoped plan, killing individual shard domains mid-stream
    and letting the supervisor restore them online, against an inline,
    journal-less, unsupervised baseline of the same sharded computation.
    Without quarantines the merged stream must be byte-identical — every
    crash is absorbed by restore + re-feed with zero lost or duplicated
    decisions.  The sharded harness runs deadline-free, so [Delay]
    faults (scoped, hence invisible to the unscoped baseline) are
    decision-inert. *)

type sharded_report = {
  s_identical : bool;
  s_divergence : string option;
  s_arrivals : int;
  s_shards : int;
  s_restarts : int;  (** online shard restores across all shards *)
  s_shard_restarts : int array;
  s_quarantined : int;  (** shards that exhausted their restart budget *)
  s_shed : int;
  s_degraded : int;
      (** degraded decisions in the surviving stream (quarantine/shed
          acks included) *)
  s_stats : Ltc_util.Fault.stats;
  s_baseline : Session.decision array;
  s_survived : Session.decision array;
}

val sharded_plan :
  ?crashes:int ->
  ?io_errors:int ->
  ?torn_writes:int ->
  ?delays:int ->
  ?horizon:int ->
  ?delay_s:float ->
  seed:int ->
  shards:int ->
  unit ->
  Ltc_util.Fault.plan
(** A seeded per-shard scoped plan: shard [k] gets its own
    {!Ltc_util.Fault.plan} (fault counts are {e per shard}) over its
    ["shard<k>/..."] journal sites, with a sub-seed split from [seed].
    Defaults: 1 crash per shard, horizon 40.  ["journal.header"] is
    excluded — the initial create runs unsupervised. *)

val run_sharded :
  ?accept_rate:float ->
  ?checkpoint_every:int ->
  ?format:Session.codec ->
  ?group_commit:int ->
  ?mailbox:int ->
  ?supervise:Supervisor.config ->
  plan:Ltc_util.Fault.plan ->
  shards:int ->
  algorithm:Ltc_algo.Algorithm.t ->
  seed:int ->
  journal:string ->
  Ltc_core.Instance.t ->
  sharded_report
(** [run_sharded ~plan ~shards ~algorithm ~seed ~journal instance] feeds
    [instance.workers] (non-empty) through both runs and reports.
    [journal] is the chaos run's manifest path ([journal.shard<k>] per
    shard, all truncated at start); the chaos run uses [fsync:true].
    [supervise] defaults to {!Supervisor.default} with a restart budget
    generous enough for the plan ([10 +] plan size), so a one-shot plan
    can never quarantine; pass a tighter config to exercise quarantine.
    [checkpoint_every] defaults to [64].  Always leaves the fault plan
    disarmed and the virtual clock cleared.

    @raise Invalid_argument on an empty worker array or an offline
    [algorithm]. *)
