(** Open-loop load generator over a {!Session}.

    The generator precomputes the intended arrival schedule from a
    {!Ltc_workload.Shape} and replays it against the session, measuring
    each decision's latency from the {e intended} arrival time — not from
    when the arrival was actually fed — so a slow decision that backs up
    the queue penalises every arrival scheduled behind it
    (coordinated-omission correction).  Latencies land in a
    {!Ltc_util.Metrics.Hdr} histogram and every arrival is recorded in a
    {!Flight_recorder} ring.

    Two timing modes:

    - [Virtual] (the default, deterministic): the run executes on the
      virtual {!Ltc_util.Fault.Clock} and each arrival's service time is
      drawn from a seeded distribution and injected as a [Delay] fault at
      the ["session.decide"] site — so the session's deadline/degradation
      machinery reacts to the synthetic times exactly as it would to real
      ones, and the whole report is a pure function of the config.
      {!run} owns the fault plan and the clock for the duration (arming
      its own plan and clearing both on exit).
    - [Wall]: real time; the generator sleeps until each intended arrival
      and measures the policy's actual compute latency.  Not
      deterministic; no service-time injection. *)

type service =
  | Fixed of float  (** every decision takes exactly this many seconds *)
  | Exponential of float  (** i.i.d. exponential with this mean *)

type timing = Virtual | Wall

type config = {
  shape : Ltc_workload.Shape.t;
  arrivals : int;  (** arrivals to offer (capped by available workers) *)
  service : service;  (** synthetic decide time ([Virtual] only) *)
  seed : int;  (** seeds the schedule jitter and the service draws *)
  timing : timing;
  slo_s : float option;
      (** corrected-latency SLO threshold; breaches are counted and the
          first one fires [on_breach] *)
  recorder_capacity : int;  (** flight-recorder ring size *)
}

val default_config : shape:Ltc_workload.Shape.t -> config
(** [arrivals = 1000], [service = Fixed 1e-4], [seed = 0],
    [timing = Virtual], [slo_s = None], [recorder_capacity = 4096]. *)

type report = {
  r_shape : string;  (** canonical shape rendering *)
  r_timing : string;  (** ["virtual"] or ["wall"] *)
  r_algo : string;
  r_seed : int;
  r_offered : int;  (** arrivals offered to the session *)
  r_consumed : int;  (** arrivals the session consumed *)
  r_completed : bool;  (** session reached completion during the run *)
  r_degraded : int;  (** decisions made by the deadline fallback *)
  r_offered_per_s : float;  (** offered rate over the schedule span *)
  r_achieved_per_s : float;  (** consumed / makespan *)
  r_makespan_s : float;  (** clock time from start to last decision *)
  r_mean_s : float;
  r_p50_s : float;
  r_p99_s : float;
  r_p999_s : float;
  r_max_s : float;  (** exact worst corrected latency *)
  r_slo_s : float option;  (** the configured SLO threshold *)
  r_breaches : int;  (** arrivals whose corrected latency exceeded the SLO *)
  r_first_breach : int option;  (** seq of the first breach *)
  r_hdr : Ltc_util.Metrics.Hdr.t;  (** full latency distribution *)
  r_recorder : Flight_recorder.t;  (** the per-arrival black box *)
}

val run :
  ?on_breach:(seq:int -> Flight_recorder.t -> unit) ->
  session:Session.t ->
  workers:Ltc_core.Worker.t array ->
  config ->
  report
(** Drive [session] open-loop with [workers] (consecutive indices from 1,
    e.g. an instance's embedded worker array) as the arrival stream.  The
    run stops at [config.arrivals], at the end of [workers], or as soon as
    the session completes.  [on_breach] fires once, at the first SLO
    breach, with the recorder as it stood at the breach.

    Latency quantiles are also published to the registry as
    [ltc_service_loadgen_latency_seconds{quantile=..}] gauges (visible
    when {!Ltc_util.Metrics} is enabled).

    @raise Invalid_argument when [config.arrivals < 1], the session is not
    fresh ([consumed <> 0]), or [workers] is empty. *)

val pp_report : Format.formatter -> report -> unit
(** The stable multi-line rendering the CLI prints (and the cram tests
    pin). *)

(** {1 Sharded serving} *)

type shard_stats = {
  s_shard : int;
  s_arrivals : int;  (** decisions attributed to this shard *)
  s_p50_s : float;
  s_p99_s : float;
}

type sharded_report = {
  sr_report : report;
      (** merged view; its percentiles come from a fresh
          {!Ltc_util.Metrics.Hdr} built with the config-checked
          [Hdr.merge] over the per-shard histograms *)
  sr_shards : shard_stats array;  (** per-shard latency breakdown *)
  sr_stalls : int;  (** mailbox-full backpressure stalls during the run *)
  sr_restarts : int;
      (** online shard restores ({!Shard_server.restarts}; [0] when
          unsupervised) *)
  sr_quarantined : int;  (** shards quarantined during the run *)
  sr_shed : int;  (** arrivals shed by [Shed] admission control *)
}

val run_sharded :
  ?on_breach:(seq:int -> Flight_recorder.t -> unit) ->
  server:Shard_server.t ->
  workers:Ltc_core.Worker.t array ->
  config ->
  sharded_report
(** {!run} against a {!Shard_server}.  Corrected latency is measured per
    {e released} decision from its own arrival's intended time, so in
    [`Domains] mode a decision surfacing several feeds later carries the
    full pipeline delay; {!Shard_server.flush} is called after the last
    feed so every offered arrival is accounted.  [Virtual] timing
    requires an [`Inline]-mode server (the fault clock and Delay plan are
    process-global and single-domain); note the Delay hits then land on
    consuming arrivals in global feed order, which drifts from {!run}'s
    per-arrival numbering once any shard completes early.  The merged
    quantiles are published to the registry under the same
    [ltc_service_loadgen_latency_seconds] gauges as {!run}.

    @raise Invalid_argument as {!run}, when the server is not fresh, or
    on a [Virtual]-timing run over a [`Domains]-mode server. *)

val pp_sharded_report : Format.formatter -> sharded_report -> unit
(** {!pp_report} for the merged view, then one line per shard (arrivals,
    p50, p99) and the mailbox-stall / supervision counters. *)
