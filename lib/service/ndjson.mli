(** The serve wire format: newline-delimited flat JSON objects.

    Arrivals in (one worker per line), decisions out (one per processed
    arrival):

    {v
    {"index":1,"x":3.5,"y":4.0,"accuracy":0.86,"capacity":6}
    {"index":1,"assigned":[0,2],"answered":[0],"completed":false,"latency":1}
    v}

    Floats are printed at round-trip precision ([%.17g]).  The codec is
    deliberately minimal — flat objects of numbers, booleans and integer
    arrays; no nesting, no string escapes. *)

exception Malformed of string

exception Bad_input of { line : int; text : string; reason : string }
(** One arrival line the stream could not use, with its 1-based position
    in the input and the offending bytes (truncated to an excerpt).
    Raised by {!arrival_exn}; [ltc serve --on-bad-input] decides whether
    it kills the stream or skips the line. *)

val arrival_of_line : string -> Ltc_core.Worker.t
(** Parse one arrival event.  Requires keys [index], [x], [y], [accuracy],
    [capacity]; integer-valued fields must be whole numbers.
    @raise Malformed on syntax or schema violations, [Invalid_argument]
    when the field values violate {!Ltc_core.Worker.make}'s contract. *)

val arrival_exn : line:int -> string -> Ltc_core.Worker.t
(** {!arrival_of_line} with structured errors: syntax, schema and
    field-contract violations all surface as {!Bad_input} carrying [line]
    and the offending bytes.  Probes the ["ndjson.parse"]
    {!Ltc_util.Fault} site first.  @raise Bad_input as described. *)

val arrival_to_line : Ltc_core.Worker.t -> string
(** Inverse of {!arrival_of_line} (no trailing newline). *)

val decision_to_line :
  ?degraded:bool ->
  worker:int ->
  assigned:int list ->
  answered:int list ->
  completed:bool ->
  latency:int ->
  unit ->
  string
(** One decision line (no trailing newline).  [degraded] (default
    [false]) marks a deadline-degraded decision and is emitted only when
    true, keeping the fault-free wire format unchanged. *)

val decision_of_line :
  string -> int * int list * int list * bool * int * bool
(** Parse a decision line back into
    [(index, assigned, answered, completed, latency, degraded)] — the
    cram/test side of the codec; [degraded] defaults to [false] when
    absent.  @raise Malformed on syntax or schema violations. *)
