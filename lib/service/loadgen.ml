module Fault = Ltc_util.Fault
module Metrics = Ltc_util.Metrics
module Shape = Ltc_workload.Shape

type service = Fixed of float | Exponential of float
type timing = Virtual | Wall

type config = {
  shape : Shape.t;
  arrivals : int;
  service : service;
  seed : int;
  timing : timing;
  slo_s : float option;
  recorder_capacity : int;
}

let default_config ~shape =
  {
    shape;
    arrivals = 1000;
    service = Fixed 1e-4;
    seed = 0;
    timing = Virtual;
    slo_s = None;
    recorder_capacity = 4096;
  }

type report = {
  r_shape : string;
  r_timing : string;
  r_algo : string;
  r_seed : int;
  r_offered : int;
  r_consumed : int;
  r_completed : bool;
  r_degraded : int;
  r_offered_per_s : float;
  r_achieved_per_s : float;
  r_makespan_s : float;
  r_mean_s : float;
  r_p50_s : float;
  r_p99_s : float;
  r_p999_s : float;
  r_max_s : float;
  r_slo_s : float option;
  r_breaches : int;
  r_first_breach : int option;
  r_hdr : Metrics.Hdr.t;
  r_recorder : Flight_recorder.t;
}

let exp_draw rng = -.log (1.0 -. Ltc_util.Rng.float rng 1.0)

let validate config ~workers ~session =
  (match config.service with
  | Fixed s ->
    if not (Float.is_finite s) || s < 0.0 then
      invalid_arg "Loadgen.run: fixed service time must be finite and >= 0"
  | Exponential m ->
    if not (Float.is_finite m) || m <= 0.0 then
      invalid_arg "Loadgen.run: exponential service mean must be > 0");
  (match config.slo_s with
  | Some s when (not (Float.is_finite s)) || s <= 0.0 ->
    invalid_arg "Loadgen.run: slo_s must be finite and > 0"
  | _ -> ());
  if config.arrivals < 1 then invalid_arg "Loadgen.run: arrivals must be >= 1";
  if Array.length workers = 0 then
    invalid_arg "Loadgen.run: no workers to offer";
  if Session.consumed session <> 0 then
    invalid_arg "Loadgen.run: session must be fresh (consumed = 0)"

let publish_latency_gauges ~algo report =
  List.iter
    (fun (q, v) ->
      Metrics.Gauge.set
        (Metrics.gauge
           ~help:"loadgen corrected decision latency quantiles (s)"
           ~labels:[ ("algo", algo); ("quantile", q) ]
           "ltc_service_loadgen_latency_seconds")
        v)
    [
      ("0.5", report.r_p50_s);
      ("0.99", report.r_p99_s);
      ("0.999", report.r_p999_s);
      ("max", report.r_max_s);
    ]

let run ?on_breach ~session ~workers config =
  validate config ~workers ~session;
  let n = min config.arrivals (Array.length workers) in
  let intended = Shape.times config.shape ~seed:config.seed ~n in
  (* Service draws fork off the schedule seed so switching the service
     distribution never perturbs the arrival schedule. *)
  let service_s =
    let rng = Ltc_util.Rng.split (Ltc_util.Rng.create ~seed:config.seed) in
    Array.init n (fun _ ->
        match config.service with
        | Fixed s -> s
        | Exponential mean -> mean *. exp_draw rng)
  in
  let virtual_mode = config.timing = Virtual in
  (* The session probes "session.decide" exactly once per consuming
     arrival, so hit [i+1] injects arrival [i]'s service time — through
     the same machinery the deadline measures, which is what makes
     synthetic degradation honest. *)
  if virtual_mode then begin
    Fault.Clock.set_virtual 0.0;
    Fault.arm
      (List.init n (fun i ->
           {
             Fault.site = "session.decide";
             hit = i + 1;
             action = Fault.Delay service_s.(i);
           }))
  end;
  let epoch = if virtual_mode then 0.0 else Unix.gettimeofday () in
  let now () =
    if virtual_mode then Fault.Clock.now_s ()
    else Unix.gettimeofday () -. epoch
  in
  let hdr = Metrics.Hdr.create () in
  let recorder = Flight_recorder.create ~capacity:config.recorder_capacity in
  let degraded0 = Session.degraded_total session in
  let fed = ref 0 in
  let completed = ref false in
  let last_done = ref 0.0 in
  let breaches = ref 0 in
  let first_breach = ref None in
  Fun.protect
    ~finally:(fun () ->
      if virtual_mode then begin
        Fault.disarm ();
        Fault.Clock.clear ()
      end)
  @@ fun () ->
  (try
     for i = 0 to n - 1 do
       let t_intended = intended.(i) in
       let t_now = now () in
       (* Open loop: never feed ahead of schedule.  When the system is
          behind (t_now > t_intended) the arrival is fed immediately and
          its latency carries the queueing delay. *)
       if t_now < t_intended then
         if virtual_mode then Fault.Clock.advance (t_intended -. t_now)
         else Unix.sleepf (t_intended -. t_now);
       let actual = now () in
       let d = Session.feed session workers.(i) in
       let done_t = now () in
       let latency = Float.max 0.0 (done_t -. t_intended) in
       Metrics.Hdr.observe hdr latency;
       Flight_recorder.record recorder
         {
           Flight_recorder.seq = d.Session.worker;
           offered_s = t_intended;
           actual_s = actual;
           done_s = done_t;
           latency_s = latency;
           assigned = List.length d.Session.assigned;
           degraded = d.Session.degraded;
           journal_bytes = Session.journal_bytes session;
         };
       incr fed;
       last_done := done_t;
       (match config.slo_s with
       | Some slo when latency > slo ->
         incr breaches;
         if !first_breach = None then begin
           first_breach := Some d.Session.worker;
           match on_breach with
           | Some f -> f ~seq:d.Session.worker recorder
           | None -> ()
         end
       | _ -> ());
       if d.Session.completed then begin
         completed := true;
         raise Exit
       end
     done
   with Exit -> ());
  let offered = !fed in
  let consumed = Session.consumed session in
  let makespan = !last_done in
  let offered_span = if offered > 0 then intended.(offered - 1) else 0.0 in
  let per span count = if span > 0.0 then float_of_int count /. span else 0.0 in
  let p q = Metrics.Hdr.percentile hdr q in
  let algo = Session.algorithm_name session in
  let report =
    {
      r_shape = Shape.to_string config.shape;
      r_timing = (if virtual_mode then "virtual" else "wall");
      r_algo = algo;
      r_seed = config.seed;
      r_offered = offered;
      r_consumed = consumed;
      r_completed = !completed;
      r_degraded = Session.degraded_total session - degraded0;
      r_offered_per_s = per offered_span offered;
      r_achieved_per_s = per makespan consumed;
      r_makespan_s = makespan;
      r_mean_s = Metrics.Hdr.mean hdr;
      r_p50_s = p 50.0;
      r_p99_s = p 99.0;
      r_p999_s = p 99.9;
      r_max_s = Metrics.Hdr.max_observed hdr;
      r_slo_s = config.slo_s;
      r_breaches = !breaches;
      r_first_breach = !first_breach;
      r_hdr = hdr;
      r_recorder = recorder;
    }
  in
  publish_latency_gauges ~algo report;
  report

(* ------------------------------------------------------ sharded serving *)

type shard_stats = {
  s_shard : int;
  s_arrivals : int;
  s_p50_s : float;
  s_p99_s : float;
}

type sharded_report = {
  sr_report : report;
  sr_shards : shard_stats array;
  sr_stalls : int;
  sr_restarts : int;
  sr_quarantined : int;
  sr_shed : int;
}

let validate_sharded config ~workers ~server =
  (match config.service with
  | Fixed s ->
    if not (Float.is_finite s) || s < 0.0 then
      invalid_arg "Loadgen.run_sharded: fixed service time must be finite and >= 0"
  | Exponential m ->
    if not (Float.is_finite m) || m <= 0.0 then
      invalid_arg "Loadgen.run_sharded: exponential service mean must be > 0");
  (match config.slo_s with
  | Some s when (not (Float.is_finite s)) || s <= 0.0 ->
    invalid_arg "Loadgen.run_sharded: slo_s must be finite and > 0"
  | _ -> ());
  if config.arrivals < 1 then
    invalid_arg "Loadgen.run_sharded: arrivals must be >= 1";
  if Array.length workers = 0 then
    invalid_arg "Loadgen.run_sharded: no workers to offer";
  if Shard_server.consumed server <> 0 || Shard_server.resumed_at server <> 0
  then invalid_arg "Loadgen.run_sharded: server must be fresh (consumed = 0)";
  (* The virtual clock and the Delay plan are process-global and single
     domain; shard domains probing them concurrently would race. *)
  if config.timing = Virtual && Shard_server.mode server <> Shard_server.Inline
  then
    invalid_arg
      "Loadgen.run_sharded: virtual timing requires an Inline-mode server"

let run_sharded ?on_breach ~server ~workers config =
  validate_sharded config ~workers ~server;
  let n = min config.arrivals (Array.length workers) in
  let intended = Shape.times config.shape ~seed:config.seed ~n in
  let service_s =
    let rng = Ltc_util.Rng.split (Ltc_util.Rng.create ~seed:config.seed) in
    Array.init n (fun _ ->
        match config.service with
        | Fixed s -> s
        | Exponential mean -> mean *. exp_draw rng)
  in
  let virtual_mode = config.timing = Virtual in
  (* Delay hits land on the k-th CONSUMING arrival globally (shards probe
     "session.decide" in global feed order under Inline), which drifts
     from the single-session hit numbering once a shard completes early —
     deterministic within a sharded run, but not comparable arrival-for-
     arrival with [run]'s injection. *)
  if virtual_mode then begin
    Fault.Clock.set_virtual 0.0;
    Fault.arm
      (List.init n (fun i ->
           {
             Fault.site = "session.decide";
             hit = i + 1;
             action = Fault.Delay service_s.(i);
           }))
  end;
  let epoch = if virtual_mode then 0.0 else Unix.gettimeofday () in
  let now () =
    if virtual_mode then Fault.Clock.now_s ()
    else Unix.gettimeofday () -. epoch
  in
  let shards = Shard_server.shards server in
  let hdrs = Array.init shards (fun _ -> Metrics.Hdr.create ()) in
  let recorder = Flight_recorder.create ~capacity:config.recorder_capacity in
  let degraded0 = Shard_server.degraded_total server in
  let fed = ref 0 in
  let completed = ref false in
  let last_done = ref 0.0 in
  let breaches = ref 0 in
  let first_breach = ref None in
  (* Corrected latency of a released decision is measured from ITS
     arrival's intended time — in [`Domains] mode a decision can surface
     several feeds later and carries the full pipeline delay. *)
  let handle done_t (d : Session.decision) =
    let g = d.Session.worker in
    let latency = Float.max 0.0 (done_t -. intended.(g - 1)) in
    let k =
      Shard_server.shard_of_point server workers.(g - 1).Ltc_core.Worker.loc
    in
    Metrics.Hdr.observe hdrs.(k) latency;
    Flight_recorder.record recorder
      {
        Flight_recorder.seq = g;
        offered_s = intended.(g - 1);
        actual_s = done_t;
        done_s = done_t;
        latency_s = latency;
        assigned = List.length d.Session.assigned;
        degraded = d.Session.degraded;
        journal_bytes = Shard_server.journal_bytes server;
      };
    last_done := done_t;
    (match config.slo_s with
    | Some slo when latency > slo ->
      incr breaches;
      if !first_breach = None then begin
        first_breach := Some g;
        match on_breach with Some f -> f ~seq:g recorder | None -> ()
      end
    | _ -> ());
    if d.Session.completed then completed := true
  in
  Fun.protect
    ~finally:(fun () ->
      if virtual_mode then begin
        Fault.disarm ();
        Fault.Clock.clear ()
      end)
  @@ fun () ->
  let i = ref 0 in
  while (not !completed) && !i < n do
    let t_intended = intended.(!i) in
    let t_now = now () in
    if t_now < t_intended then
      if virtual_mode then Fault.Clock.advance (t_intended -. t_now)
      else Unix.sleepf (t_intended -. t_now);
    let ds = Shard_server.feed server workers.(!i) in
    incr fed;
    let done_t = now () in
    List.iter (handle done_t) ds;
    incr i
  done;
  let rest = Shard_server.flush server in
  let done_t = now () in
  List.iter (handle done_t) rest;
  let offered = !fed in
  let consumed = Shard_server.consumed server in
  let makespan = !last_done in
  let offered_span = if offered > 0 then intended.(offered - 1) else 0.0 in
  let per span count = if span > 0.0 then float_of_int count /. span else 0.0 in
  (* One fresh histogram over every shard's samples: the config-checked
     Hdr merge is the production aggregation path, exercised here. *)
  let merged = Metrics.Hdr.create () in
  Array.iter (fun h -> Metrics.Hdr.merge ~into:merged h) hdrs;
  let p q = Metrics.Hdr.percentile merged q in
  let report =
    {
      r_shape = Shape.to_string config.shape;
      r_timing = (if virtual_mode then "virtual" else "wall");
      r_algo = Shard_server.algorithm_name server;
      r_seed = config.seed;
      r_offered = offered;
      r_consumed = consumed;
      r_completed = !completed;
      r_degraded = Shard_server.degraded_total server - degraded0;
      r_offered_per_s = per offered_span offered;
      r_achieved_per_s = per makespan consumed;
      r_makespan_s = makespan;
      r_mean_s = Metrics.Hdr.mean merged;
      r_p50_s = p 50.0;
      r_p99_s = p 99.0;
      r_p999_s = p 99.9;
      r_max_s = Metrics.Hdr.max_observed merged;
      r_slo_s = config.slo_s;
      r_breaches = !breaches;
      r_first_breach = !first_breach;
      r_hdr = merged;
      r_recorder = recorder;
    }
  in
  publish_latency_gauges ~algo:report.r_algo report;
  {
    sr_report = report;
    sr_shards =
      Array.mapi
        (fun k h ->
          {
            s_shard = k;
            s_arrivals = Metrics.Hdr.count h;
            s_p50_s = Metrics.Hdr.percentile h 50.0;
            s_p99_s = Metrics.Hdr.percentile h 99.0;
          })
        hdrs;
    sr_stalls = Shard_server.stalls server;
    sr_restarts = Shard_server.restarts server;
    sr_quarantined = Shard_server.quarantined server;
    sr_shed = Shard_server.shed server;
  }

let pp_report fmt r =
  Format.fprintf fmt "loadgen: shape=%s timing=%s algo=%s seed=%d@." r.r_shape
    r.r_timing r.r_algo r.r_seed;
  Format.fprintf fmt "  arrivals: offered=%d consumed=%d completed=%b degraded=%d@."
    r.r_offered r.r_consumed r.r_completed r.r_degraded;
  Format.fprintf fmt
    "  throughput: offered=%.6g/s achieved=%.6g/s makespan=%.6gs@."
    r.r_offered_per_s r.r_achieved_per_s r.r_makespan_s;
  Format.fprintf fmt
    "  latency: mean=%.6gs p50=%.6gs p99=%.6gs p999=%.6gs max=%.6gs@."
    r.r_mean_s r.r_p50_s r.r_p99_s r.r_p999_s r.r_max_s;
  (match r.r_slo_s with
  | None -> ()
  | Some slo ->
    Format.fprintf fmt "  slo: threshold=%.6gs breaches=%d%s@." slo
      r.r_breaches
      (match r.r_first_breach with
      | None -> ""
      | Some seq -> Printf.sprintf " first=%d" seq));
  Format.fprintf fmt "  flight recorder: %d records (capacity %d, dropped %d)@."
    (Flight_recorder.length r.r_recorder)
    (Flight_recorder.capacity r.r_recorder)
    (Flight_recorder.dropped r.r_recorder)

let pp_sharded_report fmt sr =
  pp_report fmt sr.sr_report;
  Format.fprintf fmt
    "  shards: %d mailbox_stalls=%d restarts=%d quarantined=%d shed=%d@."
    (Array.length sr.sr_shards) sr.sr_stalls sr.sr_restarts sr.sr_quarantined
    sr.sr_shed;
  Array.iter
    (fun s ->
      Format.fprintf fmt "    shard %d: arrivals=%d p50=%.6gs p99=%.6gs@."
        s.s_shard s.s_arrivals s.s_p50_s s.s_p99_s)
    sr.sr_shards
